# ctest script: run a counting-model bench twice with the same configuration
# and assert (a) each run writes a structurally sane BENCH_<name>.json and
# (b) the two files are byte-identical — the determinism contract the
# PR-over-PR regression trail depends on.
#
# Invoked as:
#   cmake -DBENCH_BIN=<path> -DBENCH_NAME=<name> -DWORK_DIR=<dir>
#         -P check_bench_json.cmake

if(NOT BENCH_BIN OR NOT BENCH_NAME OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DBENCH_BIN=... -DBENCH_NAME=... -DWORK_DIR=... -P check_bench_json.cmake")
endif()

foreach(run run1 run2)
  set(dir "${WORK_DIR}/${run}")
  file(REMOVE_RECURSE "${dir}")
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "AMLOCK_BENCH_DIR=${dir}" "${BENCH_BIN}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    WORKING_DIRECTORY "${dir}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH_BIN} (${run}) exited ${rc}:\n${out}\n${err}")
  endif()
  if(NOT EXISTS "${dir}/BENCH_${BENCH_NAME}.json")
    message(FATAL_ERROR "${run} did not write BENCH_${BENCH_NAME}.json")
  endif()
endforeach()

set(json1 "${WORK_DIR}/run1/BENCH_${BENCH_NAME}.json")
set(json2 "${WORK_DIR}/run2/BENCH_${BENCH_NAME}.json")

# Schema: every top-level key present.
file(READ "${json1}" content)
foreach(key bench git_rev config samples summary tables)
  string(FIND "${content}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "BENCH_${BENCH_NAME}.json lacks top-level key \"${key}\":\n${content}")
  endif()
endforeach()
string(FIND "${content}" "\"bench\": \"${BENCH_NAME}\"" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "BENCH_${BENCH_NAME}.json has wrong bench name:\n${content}")
endif()

# Determinism: byte-identical across the two runs.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${json1}" "${json2}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "BENCH_${BENCH_NAME}.json differs between identical runs")
endif()

message(STATUS "BENCH_${BENCH_NAME}.json: schema ok, byte-identical across runs")
