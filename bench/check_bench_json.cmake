# ctest script: run a bench twice with the same configuration and assert
# (a) each run writes a structurally sane BENCH_<name>.json and (b) the two
# files agree — byte-identical for the deterministic counting-model benches,
# which is the contract the PR-over-PR regression trail depends on.
#
# Invoked as:
#   cmake -DBENCH_BIN=<path> -DBENCH_NAME=<name> -DWORK_DIR=<dir>
#         [-DNORMALIZE=ON] -P check_bench_json.cmake
#
# NORMALIZE=ON is for wall-clock benches (ipc_recovery, native_throughput):
# their values legitimately differ every run, so every digit run in both
# files is rewritten to 0 before the comparison. That still pins the report
# *shape* — a dropped measurement, a renamed summary key, or a table row
# that appears only sometimes fails the check — without failing on jitter.

if(NOT BENCH_BIN OR NOT BENCH_NAME OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DBENCH_BIN=... -DBENCH_NAME=... -DWORK_DIR=... [-DNORMALIZE=ON] -P check_bench_json.cmake")
endif()

foreach(run run1 run2)
  set(dir "${WORK_DIR}/${run}")
  file(REMOVE_RECURSE "${dir}")
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "AMLOCK_BENCH_DIR=${dir}" "${BENCH_BIN}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    WORKING_DIRECTORY "${dir}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH_BIN} (${run}) exited ${rc}:\n${out}\n${err}")
  endif()
  if(NOT EXISTS "${dir}/BENCH_${BENCH_NAME}.json")
    message(FATAL_ERROR "${run} did not write BENCH_${BENCH_NAME}.json")
  endif()
endforeach()

set(json1 "${WORK_DIR}/run1/BENCH_${BENCH_NAME}.json")
set(json2 "${WORK_DIR}/run2/BENCH_${BENCH_NAME}.json")

# Schema: every top-level key present.
file(READ "${json1}" content)
foreach(key bench git_rev config samples summary tables)
  string(FIND "${content}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "BENCH_${BENCH_NAME}.json lacks top-level key \"${key}\":\n${content}")
  endif()
endforeach()
string(FIND "${content}" "\"bench\": \"${BENCH_NAME}\"" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "BENCH_${BENCH_NAME}.json has wrong bench name:\n${content}")
endif()

if(NORMALIZE)
  # Wall-clock bench: zero every digit run (ints, decimals, exponents all
  # collapse to strings of zeros) in both files, then require the skeletons
  # to match. Applied identically to both sides, so structure — keys, rows,
  # value count — is still pinned.
  foreach(idx 1 2)
    file(READ "${json${idx}}" raw)
    string(REGEX REPLACE "[0-9]+" "0" raw "${raw}")
    file(WRITE "${WORK_DIR}/run${idx}/normalized.json" "${raw}")
    set(json${idx} "${WORK_DIR}/run${idx}/normalized.json")
  endforeach()
  set(contract "identical shape (values normalized)")
else()
  set(contract "byte-identical")
endif()

# Determinism contract across the two runs.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${json1}" "${json2}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "BENCH_${BENCH_NAME}.json not ${contract} between identical runs")
endif()

message(STATUS "BENCH_${BENCH_NAME}.json: schema ok, ${contract} across runs")
