// Table 1, "Space (#words)" column: shared-memory words allocated by each
// lock at construction, as N grows.
//
//   this paper, one-shot    O(N)      (queue + go array + O(N/W) tree)
//   this paper, long-lived  O(N^2)    (N+1 instances + N(N+1) spin nodes)
//   Jayanti                 O(N)      (tournament: ~N node words)
//   Lee                     O(N^2)    (paper row; our rendition allocates a
//                                      slot per attempt — budget-bound)
//   Scott                   unbounded (a node per attempt: reported per
//                                      attempt budget)
#include "table1_common.hpp"

#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/harness/report.hpp"

using namespace bench;

namespace {

template <typename MakeLock>
std::uint64_t words_for(std::uint32_t n, MakeLock&& make) {
  Model m(n);
  auto lock = make(m);
  (void)lock;
  return m.words_allocated();
}

}  // namespace

int main() {
  aml::harness::BenchReport br("table1_space");
  br.config("metric", "words allocated at construction");
  Table table("Table 1 / space column — words allocated at construction");
  table.headers({"lock", "N", "words", "words/N", "words/N^2"});
  auto add = [&](const std::string& name, std::uint32_t n,
                 std::uint64_t words) {
    table.row({name, fmt_u(n), fmt_u(words),
               Table::num(static_cast<double>(words) / n),
               Table::num(static_cast<double>(words) / n / n, 4)});
    br.sample("words", static_cast<double>(words));
  };

  for (std::uint32_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    add("ours one-shot W=2", n, words_for(n, [n](Model& m) {
          return std::make_unique<aml::core::OneShotLock<Model>>(m, n, 2);
        }));
    add("ours one-shot W=64", n, words_for(n, [n](Model& m) {
          return std::make_unique<aml::core::OneShotLock<Model>>(m, n, 64);
        }));
    add("tournament (Jayanti-class)", n, words_for(n, [n](Model& m) {
          return std::make_unique<TournamentCc>(m, n);
        }));
    add("MCS", n, words_for(n, [n](Model& m) {
          return std::make_unique<McsCc>(m, n);
        }));
    add("Scott (per-attempt budget 4N)", n, words_for(n, [n](Model& m) {
          return std::make_unique<ScottCc>(m, n, 4ull * n);
        }));
    add("Lee-style (per-attempt budget 4N)", n, words_for(n, [n](Model& m) {
          return std::make_unique<LeeCc>(m, n, 4ull * n);
        }));
  }

  // The long-lived lock is O(N^2): report at smaller N (the words/N^2
  // column converges to a constant).
  for (std::uint32_t n : {4u, 16u, 64u, 128u, 256u}) {
    add("ours long-lived W=64 (lazy reset)", n, words_for(n, [n](Model& m) {
          return std::make_unique<aml::core::LongLivedLock<Model>>(
              m, aml::core::LongLivedLock<Model>::Config{.nprocs = n,
                                                         .w = 64});
        }));
  }
  table.print();
  br.table(table);
  br.write();
  return 0;
}
