// Table 1, "Fairness" column: the one-shot lock is FCFS (doorway = the F&A
// on Tail); the long-lived transformation keeps starvation freedom but not
// FCFS. We audit:
//   (1) one-shot: zero order inversions between doorway (slot) order and CS
//       entry order across seeds and abort patterns;
//   (2) long-lived: every process completes its quota under contention
//       (starvation freedom) and per-process completion spread.
#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "table1_common.hpp"

#include "aml/core/oneshot.hpp"
#include "aml/harness/report.hpp"
#include "aml/sched/scheduler.hpp"

using namespace bench;
using aml::harness::AbortWhen;
using aml::model::Pid;

namespace {

std::uint64_t fcfs_inversions(std::uint32_t n, std::uint32_t aborters,
                              std::uint64_t seed) {
  Model m(n);
  aml::core::OneShotLock<Model> lock(m, n, 8);
  const auto plans =
      aml::harness::plan_random_k(n, aborters, seed, AbortWhen::kOnIdle);
  std::deque<std::atomic<bool>> signals(n);
  aml::sched::StepScheduler sched(n, {.seed = seed});
  std::size_t cursor = 0;
  sched.set_idle_callback([&]() {
    while (cursor < n) {
      const Pid p = static_cast<Pid>(cursor++);
      if (plans[p].when == AbortWhen::kOnIdle) {
        signals[p].store(true, std::memory_order_release);
        return true;
      }
    }
    return false;
  });
  std::mutex mu;
  std::vector<std::uint32_t> cs_order;
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    const auto r = lock.enter(p, &signals[p]);
    if (r.acquired) {
      {
        std::lock_guard<std::mutex> guard(mu);
        cs_order.push_back(r.slot);
      }
      lock.exit(p);
    }
  });
  m.set_hook(nullptr);
  std::uint64_t inversions = 0;
  for (std::size_t i = 1; i < cs_order.size(); ++i) {
    if (cs_order[i] < cs_order[i - 1]) ++inversions;
  }
  return inversions;
}

}  // namespace

int main() {
  aml::harness::BenchReport br("table1_fairness");
  br.config("fcfs_seeds_per_point", std::uint64_t{5});
  Table fcfs("Table 1 / fairness — one-shot FCFS audit (inversions between "
             "doorway order and CS order)");
  fcfs.headers({"N", "aborters", "seeds", "total inversions"});
  for (auto [n, a] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {16, 0}, {16, 7}, {64, 20}, {128, 60}, {256, 100}}) {
    std::uint64_t total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      total += fcfs_inversions(n, a, seed);
    }
    fcfs.row({fmt_u(n), fmt_u(a), "5", fmt_u(total)});
    br.sample("fcfs_inversions", static_cast<double>(total));
  }
  fcfs.print();

  Table sf("Table 1 / fairness — long-lived starvation freedom (completions "
           "per process)");
  sf.headers({"N", "rounds", "abort ppm", "min completions", "max "
              "completions", "mutex"});
  for (auto [n, rounds, ppm] :
       std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>{
           {2, 20, 0}, {4, 12, 300000}, {8, 8, 500000}, {16, 5, 200000}}) {
    aml::harness::LongLivedOptions opts;
    opts.n = n;
    opts.w = 8;
    opts.rounds = rounds;
    opts.abort_ppm = ppm;
    opts.seed = n * 3 + 1;
    const RunResult r =
        aml::harness::run_long_lived<aml::core::VersionedSpace>(opts);
    std::vector<std::uint64_t> completions(n, 0);
    for (const auto& rec : r.records) {
      if (rec.acquired) completions[rec.pid]++;
    }
    std::uint64_t mn = ~0ull, mx = 0;
    for (std::uint64_t c : completions) {
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    sf.row({fmt_u(n), fmt_u(rounds), fmt_u(ppm), fmt_u(mn), fmt_u(mx),
            r.mutex_ok ? "yes" : "NO"});
    br.sample("min_completions", static_cast<double>(mn))
        .sample("max_completions", static_cast<double>(mx));
  }
  sf.print();
  br.table(fcfs).table(sf);
  br.write();
  return 0;
}
