// The lock table preserves the lock's *adaptive* RMR bound: per-passage RMR
// under a Zipfian named-key workload depends on how many threads actually
// contend, not on how many are registered.
//
// Setup (counting CC model, deterministic scheduler): the table is sized for
// R registered threads (R grows across rows — the thread-pool capacity a
// service provisions), but only C of them run the workload (fixed —
// the live contention). If the table merely inherited a non-adaptive
// O(log N) lock, per-passage RMR would grow with R; with the paper's lock
// it must stay flat. The summary records the flatness ratio
// max(mean_rmr)/min(mean_rmr) across R and flags flat_within_2x, which the
// acceptance gate reads from BENCH_table_zipf.json.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "aml/harness/report.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"
#include "aml/sched/scheduler.hpp"
#include "aml/table/lock_table.hpp"

namespace {

using aml::harness::Summary;
using aml::harness::summarize;
using aml::harness::Table;
using aml::model::CountingCcModel;
using aml::model::Pid;

constexpr std::uint32_t kContenders = 4;   // C: threads that actually run
constexpr std::uint32_t kStripes = 8;      // S
constexpr std::uint32_t kKeys = 64;        // named resources
constexpr double kTheta = 0.99;            // YCSB-default skew
constexpr std::uint32_t kRounds = 16;      // passages per contender

struct ZipfResult {
  std::vector<std::uint64_t> passage_rmrs;  // enter+exit per passage
  std::uint64_t steps = 0;
};

ZipfResult run_zipf(std::uint32_t registered, std::uint64_t seed) {
  CountingCcModel model(registered);
  aml::table::LockTable<CountingCcModel> table(
      model, {.max_threads = registered,
              .stripes = kStripes,
              .tree_width = 8});
  aml::pal::ZipfDistribution zipf(kKeys, kTheta);
  model.reset_counters();

  ZipfResult result;
  std::vector<std::vector<std::uint64_t>> per_proc(registered);

  aml::sched::StepScheduler::Config cfg;
  cfg.seed = seed;
  aml::sched::StepScheduler scheduler(registered, std::move(cfg));
  model.set_hook(&scheduler);
  const auto run = scheduler.run([&](Pid p) {
    if (p >= kContenders) return;  // registered but idle: the point
    aml::pal::Xoshiro256 rng(seed * 131 + p);
    auto& counters = model.counters(p);
    for (std::uint32_t r = 0; r < kRounds; ++r) {
      const std::uint64_t key = zipf(rng);
      const std::uint64_t r0 = counters.rmrs;
      table.enter(p, key);
      table.exit(p, key);
      per_proc[p].push_back(counters.rmrs - r0);
    }
  });
  model.set_hook(nullptr);
  result.steps = run.steps;
  for (const auto& v : per_proc) {
    result.passage_rmrs.insert(result.passage_rmrs.end(), v.begin(), v.end());
  }
  return result;
}

}  // namespace

int main() {
  aml::harness::BenchReport br("table_zipf");
  br.config("contenders", std::uint64_t{kContenders})
      .config("stripes", std::uint64_t{kStripes})
      .config("keys", std::uint64_t{kKeys})
      .config("theta", kTheta)
      .config("rounds", std::uint64_t{kRounds});

  Table table("Lock table, Zipfian keys — per-passage RMR vs registered "
              "threads (C = 4 contenders fixed)");
  table.headers({"registered", "contending", "passages", "mean RMR",
                 "p99 RMR", "max RMR"});

  double min_mean = 0, max_mean = 0;
  bool first = true;
  for (std::uint32_t registered : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const ZipfResult r = run_zipf(registered, 1000 + registered);
    const Summary s = summarize(r.passage_rmrs);
    table.row({Table::num(std::uint64_t{registered}),
               Table::num(std::uint64_t{kContenders}),
               Table::num(std::uint64_t{s.count}), Table::num(s.mean),
               Table::num(s.p99), Table::num(s.max)});
    br.sample("registered", static_cast<double>(registered))
        .sample("mean_rmr", s.mean)
        .sample("p99_rmr", static_cast<double>(s.p99))
        .sample("max_rmr", static_cast<double>(s.max));
    if (first || s.mean < min_mean) min_mean = s.mean;
    if (first || s.mean > max_mean) max_mean = s.mean;
    first = false;
  }

  const double flatness = min_mean > 0 ? max_mean / min_mean : 0;
  br.summary("rmr_flatness_ratio", flatness)
      .summary("flat_within_2x", std::uint64_t{flatness <= 2.0 ? 1u : 0u});
  table.print();
  std::printf("\nflatness ratio max(mean)/min(mean) = %.3f (%s)\n", flatness,
              flatness <= 2.0 ? "flat within 2x — adaptive bound preserved"
                              : "NOT flat — adaptivity regression");
  br.table(table);
  br.write();
  // The flatness claim is this bench's contract; fail loudly when broken so
  // the CI smoke run catches adaptivity regressions, not just crashes.
  return flatness <= 2.0 ? 0 : 1;
}
