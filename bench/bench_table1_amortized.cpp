// Table 1, amortized column: the reproduction measurably beating the source
// paper on the workload it was never optimised for.
//
// Part 1 — steady no-abort passages on the counting CC model. The paper's
// long-lived lock pays the adaptive tree walk (O(log_W A) worst case) on
// every passage; Jayanti & Jayanti's queue lock (arxiv 1809.04561,
// baselines/jayanti.hpp) pays a constant handful of RMRs per passage when
// nobody aborts. Gate: the amortized lock's mean completed-passage RMR is at
// or below the paper lock's at every contention level.
//
// Part 2 — the hybrid table earning its keep. An abort-storm Zipf workload
// runs against LockTable in three configurations: pure paper stripes, pure
// amortized stripes, and the hybrid policy (start amortized, re-choose per
// stripe on resize from observed abort rates). Traffic is partitioned by
// phase-1 stripe: steady contenders draw Zipf keys hashing to stripes 0/2
// and never abort; stormy contenders hammer the keys of stripe 1 with
// mostly *marked* attempts — the abort signal is raised up front, so a
// marked attempt aborts the moment it would have to wait (a try-lock storm).
// Completers hold the lock across several scratch reads, so the stormy
// stripe is occupied most of the time and the storm's abort rate is high.
//
// The crossover the HybridPolicy threshold encodes, in this cost model: a
// completed amortized passage costs ~base (5-6 RMRs) plus ~3 RMRs per
// abandoned node it claims, i.e. base + 3*(STRANDED aborts per completion);
// the paper lock's completed passage costs ~22 flat (part 1), so the
// amortized lock keeps winning until stranded-aborts-per-completion reaches
// ~(22-6)/3 ~ 5. The policy, though, observes the abort *rate*, which
// counts every abort — and in a mark-and-retry storm almost no abort
// strands, because the aborter's next attempt revives its own abandoned
// node before any walker pays for it. Measured here: the stormy stripe's
// phase-1 abort rate is 0.88 while the pure-amortized stormy completion
// mean barely moves off the no-abort base (~5.8 RMRs) — nowhere near the
// crossover. Observed rate only implies stranding when it approaches 1
// (attempts that abort and never come back), so the bench pins the
// threshold at 0.95: above any retrying storm, reserving the flip to the
// paper lock for abandon-and-leave storms whose abandonments actually
// strand. (Per-stripe phase-1 rates are printed and exported so the
// re-choice's inputs are visible in the report.)
// A mid-run resize(8) applies the re-choice; steady stripes stay amortized
// either way. Gate: the hybrid configuration's mean completed-passage RMR
// is no worse than either pure configuration. Both gates return a nonzero
// exit code on regression so the CI bench smoke catches them, not just
// crashes.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <vector>

#include "aml/baselines/baselines.hpp"
#include "aml/harness/report.hpp"
#include "aml/harness/rmr_experiment.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"
#include "aml/sched/scheduler.hpp"
#include "aml/table/lock_table.hpp"

namespace {

using aml::harness::Summary;
using aml::harness::summarize;
using aml::harness::Table;
using aml::model::CountingCcModel;
using aml::model::Pid;

// --- Part 1: lock-vs-lock steady passages ----------------------------------

constexpr std::uint32_t kSteadyRounds = 16;  // passages per process

/// Paper lock, no aborts: reuse the harness's long-lived runner and keep only
/// the completed-passage enter+exit RMR totals.
std::vector<std::uint64_t> paper_steady(std::uint32_t n, std::uint64_t seed) {
  aml::harness::LongLivedOptions opts;
  opts.n = n;
  opts.w = 8;
  opts.find = aml::core::Find::kAdaptive;
  opts.rounds = kSteadyRounds;
  opts.abort_ppm = 0;
  opts.seed = seed;
  const auto run = aml::harness::run_long_lived<aml::core::VersionedSpace>(opts);
  std::vector<std::uint64_t> rmrs;
  for (const auto& rec : run.records) {
    if (rec.acquired) rmrs.push_back(rec.rmr_enter + rec.rmr_exit);
  }
  return rmrs;
}

/// Amortized lock, same shape: n processes, kSteadyRounds passages each under
/// the step scheduler, per-passage RMR deltas from the model counters.
std::vector<std::uint64_t> amortized_steady(std::uint32_t n,
                                            std::uint64_t seed) {
  CountingCcModel model(n);
  aml::baselines::JayantiAbortableLock<CountingCcModel> lock(model, n);
  model.reset_counters();

  std::vector<std::vector<std::uint64_t>> per_proc(n);
  aml::sched::StepScheduler::Config cfg;
  cfg.seed = seed;
  aml::sched::StepScheduler scheduler(n, std::move(cfg));
  model.set_hook(&scheduler);
  scheduler.run([&](Pid p) {
    auto& counters = model.counters(p);
    for (std::uint32_t r = 0; r < kSteadyRounds; ++r) {
      const std::uint64_t r0 = counters.rmrs;
      lock.enter(p, nullptr);
      lock.exit(p);
      per_proc[p].push_back(counters.rmrs - r0);
    }
  });
  model.set_hook(nullptr);

  std::vector<std::uint64_t> rmrs;
  for (const auto& v : per_proc) rmrs.insert(rmrs.end(), v.begin(), v.end());
  return rmrs;
}

// --- Part 2: abort-storm Zipf against the three table configurations --------

constexpr Pid kProcs = 8;          // 3 steady + 5 stormy contenders
constexpr Pid kSteadyProcs = 3;
constexpr std::uint32_t kStripes1 = 4;   // phase 1; resized to kStripes2
constexpr std::uint32_t kStripes2 = 8;
constexpr std::uint32_t kKeys = 64;
constexpr double kTheta = 0.99;          // YCSB-default skew within a bucket
constexpr std::uint32_t kPhaseRounds = 32;  // passages per process per phase
constexpr std::uint32_t kStormPpm = 950000;  // stormy attempts marked (try-lock)
constexpr std::uint32_t kHoldWords = 8;  // CS length: scratch reads per hold
constexpr double kCrossoverRate = 0.95;  // see the crossover derivation above

using CcTable = aml::table::LockTable<CountingCcModel>;

struct TableRun {
  std::vector<std::uint64_t> steady_rmrs;  // completed, steady contenders
  std::vector<std::uint64_t> stormy_rmrs;  // completed, stormy contenders
  std::uint64_t aborted = 0;
  std::uint64_t abort_rmrs = 0;
  std::uint32_t paper_stripes_after_resize = 0;
  std::vector<double> phase1_stripe_abort_rate;  // what HybridPolicy saw

  std::vector<std::uint64_t> all_completed() const {
    std::vector<std::uint64_t> all = steady_rmrs;
    all.insert(all.end(), stormy_rmrs.begin(), stormy_rmrs.end());
    return all;
  }
};

/// Keys whose phase-1 stripe is in `want`. Stripe growth appends mask bits,
/// so a phase-2 stripe's low bits still name the phase-1 parent: the
/// steady/stormy partition survives the resize.
std::vector<std::uint64_t> keys_on_stripes(
    std::initializer_list<std::uint32_t> want) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::uint32_t s =
        static_cast<std::uint32_t>(CcTable::hash_of(key)) & (kStripes1 - 1);
    for (std::uint32_t w : want) {
      if (s == w) {
        keys.push_back(key);
        break;
      }
    }
  }
  return keys;
}

void run_phase(CcTable& table, CountingCcModel& model,
               CountingCcModel::Word* const* scratch, std::uint64_t seed,
               TableRun& out) {
  // Steady traffic spreads over stripes 0 and 2; the storm concentrates on
  // stripe 1 (stripe 3 stays idle and just inherits its algorithm).
  const std::vector<std::uint64_t> steady_keys = keys_on_stripes({0, 2});
  const std::vector<std::uint64_t> stormy_keys = keys_on_stripes({1});

  // Per-(process, round) abort marking, fixed up front for determinism.
  // A marked attempt enters with its signal already raised: it aborts at the
  // first wait it would otherwise block on — a try-lock under contention.
  aml::pal::Xoshiro256 mark_rng(seed * 7919 + 13);
  std::vector<std::vector<bool>> marked(kProcs);
  for (Pid p = 0; p < kProcs; ++p) {
    marked[p].resize(kPhaseRounds, false);
    for (std::uint32_t r = 0; r < kPhaseRounds; ++r) {
      if (p >= kSteadyProcs) marked[p][r] = mark_rng.chance_ppm(kStormPpm);
    }
  }

  std::deque<std::atomic<bool>> signals(kProcs);

  aml::sched::StepScheduler::Config cfg;
  cfg.seed = seed;
  aml::sched::StepScheduler scheduler(kProcs, std::move(cfg));

  std::vector<std::vector<std::uint64_t>> per_proc(kProcs);
  std::vector<std::uint64_t> aborted(kProcs, 0);
  std::vector<std::uint64_t> abort_rmrs(kProcs, 0);

  model.set_hook(&scheduler);
  scheduler.run([&](Pid p) {
    const auto& bucket = p < kSteadyProcs ? steady_keys : stormy_keys;
    aml::pal::Xoshiro256 rng(seed * 131 + p);
    aml::pal::ZipfDistribution zipf(bucket.size(), kTheta);
    auto& counters = model.counters(p);
    for (std::uint32_t r = 0; r < kPhaseRounds; ++r) {
      const std::uint64_t key = bucket[zipf(rng) % bucket.size()];
      signals[p].store(marked[p][r], std::memory_order_release);
      const std::uint64_t r0 = counters.rmrs;
      const bool ok = table.enter(p, key, &signals[p]);
      if (ok) {
        // Hold the lock across a few gated reads so the stormy stripe stays
        // occupied and marked probes really do hit a busy lock. Same cost
        // for every configuration.
        for (std::uint32_t i = 0; i < kHoldWords; ++i) {
          model.read(p, *scratch[i]);
        }
        table.exit(p, key);
        per_proc[p].push_back(counters.rmrs - r0);
      } else {
        aborted[p]++;
        abort_rmrs[p] += counters.rmrs - r0;
      }
    }
  });
  model.set_hook(nullptr);

  for (Pid p = 0; p < kProcs; ++p) {
    auto& sink = p < kSteadyProcs ? out.steady_rmrs : out.stormy_rmrs;
    sink.insert(sink.end(), per_proc[p].begin(), per_proc[p].end());
    out.aborted += aborted[p];
    out.abort_rmrs += abort_rmrs[p];
  }
}

TableRun run_table(aml::table::StripeAlgo algo, bool hybrid_enabled,
                   std::uint64_t seed) {
  CountingCcModel model(kProcs);
  CcTable table(model, {.max_threads = kProcs,
                        .stripes = kStripes1,
                        .tree_width = 8,
                        .find = aml::core::Find::kAdaptive,
                        .algo = algo,
                        .hybrid = {.enabled = hybrid_enabled,
                                   .abort_rate_threshold = kCrossoverRate,
                                   .min_samples = 16}});
  std::vector<CountingCcModel::Word*> scratch(kHoldWords);
  for (auto& w : scratch) w = model.alloc(1, 0);
  model.reset_counters();

  TableRun out;
  run_phase(table, model, scratch.data(), seed, out);
  // The per-stripe rates the resize's HybridPolicy re-choice will see.
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    const auto st = table.stripe_stats(s);
    const std::uint64_t attempts = st.acquisitions + st.aborts;
    out.phase1_stripe_abort_rate.push_back(
        attempts == 0 ? 0.0
                      : static_cast<double>(st.aborts) /
                            static_cast<double>(attempts));
  }
  // Quiesced between phases: the resize re-chooses per-stripe algorithms
  // from phase-1 abort rates (a no-op re-choice for the pure configurations).
  if (!table.resize(kStripes2)) {
    std::fprintf(stderr, "resize(%u) refused\n", kStripes2);
    std::exit(2);
  }
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    if (table.stripe_algo(s) == aml::table::StripeAlgo::kPaper) {
      out.paper_stripes_after_resize++;
    }
  }
  run_phase(table, model, scratch.data(), seed + 1, out);
  return out;
}

}  // namespace

int main() {
  aml::harness::BenchReport br("table1_amortized");
  br.config("steady_rounds", std::uint64_t{kSteadyRounds})
      .config("table_procs", std::uint64_t{kProcs})
      .config("table_steady_procs", std::uint64_t{kSteadyProcs})
      .config("table_stripes_phase1", std::uint64_t{kStripes1})
      .config("table_stripes_phase2", std::uint64_t{kStripes2})
      .config("table_keys", std::uint64_t{kKeys})
      .config("table_theta", kTheta)
      .config("table_phase_rounds", std::uint64_t{kPhaseRounds})
      .config("table_storm_ppm", std::uint64_t{kStormPpm});

  // Part 1: steady no-abort passages, paper vs amortized, by contention.
  Table steady("Table 1, amortized column — completed-passage RMR, no aborts "
               "(counting CC)");
  steady.headers({"procs", "paper mean", "paper max", "amortized mean",
                  "amortized max"});
  bool part1_ok = true;
  for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
    const Summary paper = summarize(paper_steady(n, 500 + n));
    const Summary amort = summarize(amortized_steady(n, 900 + n));
    steady.row({Table::num(std::uint64_t{n}), Table::num(paper.mean),
                Table::num(paper.max), Table::num(amort.mean),
                Table::num(amort.max)});
    br.sample("steady_procs", static_cast<double>(n))
        .sample("steady_paper_mean_rmr", paper.mean)
        .sample("steady_amortized_mean_rmr", amort.mean);
    if (amort.mean > paper.mean) part1_ok = false;
  }
  steady.print();

  // Part 2: abort-storm Zipf through the table, three configurations.
  const TableRun pure_paper =
      run_table(aml::table::StripeAlgo::kPaper, /*hybrid=*/false, 7000);
  const TableRun pure_amortized =
      run_table(aml::table::StripeAlgo::kAmortized, /*hybrid=*/false, 7000);
  const TableRun hybrid =
      run_table(aml::table::StripeAlgo::kAmortized, /*hybrid=*/true, 7000);

  const Summary paper_s = summarize(pure_paper.all_completed());
  const Summary amort_s = summarize(pure_amortized.all_completed());
  const Summary hybrid_s = summarize(hybrid.all_completed());

  Table storm("Hybrid table — abort-storm Zipf, completed-passage RMR across "
              "both phases");
  storm.headers({"config", "completed", "aborted", "mean RMR",
                 "steady mean", "stormy mean", "paper stripes after resize"});
  const auto storm_row = [&](const char* name, const TableRun& r,
                             const Summary& s) {
    storm.row({name, Table::num(std::uint64_t{s.count}),
               Table::num(r.aborted), Table::num(s.mean),
               Table::num(summarize(r.steady_rmrs).mean),
               Table::num(summarize(r.stormy_rmrs).mean),
               Table::num(std::uint64_t{r.paper_stripes_after_resize})});
  };
  storm_row("pure paper", pure_paper, paper_s);
  storm_row("pure amortized", pure_amortized, amort_s);
  storm_row("hybrid", hybrid, hybrid_s);
  storm.print();
  std::printf("\nphase-1 per-stripe abort rate (hybrid run, what the resize's "
              "re-choice saw):\n");
  for (std::uint32_t s = 0; s < hybrid.phase1_stripe_abort_rate.size(); ++s) {
    std::printf("  stripe %u: %.3f\n", s, hybrid.phase1_stripe_abort_rate[s]);
    br.sample("hybrid_phase1_stripe", static_cast<double>(s))
        .sample("hybrid_phase1_abort_rate",
                hybrid.phase1_stripe_abort_rate[s]);
  }
  const std::uint64_t storm_attempts =
      hybrid.stormy_rmrs.size() + hybrid.aborted;
  const double storm_rate =
      storm_attempts == 0
          ? 0.0
          : static_cast<double>(hybrid.aborted) /
                static_cast<double>(storm_attempts);
  std::printf("\nstorm abort rate (hybrid run) = %.3f (crossover threshold "
              "%.2f)\n", storm_rate, kCrossoverRate);

  const bool part2_ok =
      hybrid_s.mean <= paper_s.mean && hybrid_s.mean <= amort_s.mean;
  br.summary("storm_paper_mean_rmr", paper_s.mean)
      .summary("storm_amortized_mean_rmr", amort_s.mean)
      .summary("storm_hybrid_mean_rmr", hybrid_s.mean)
      .summary("storm_abort_rate", storm_rate)
      .summary("hybrid_paper_stripes_after_resize",
               std::uint64_t{hybrid.paper_stripes_after_resize})
      .summary("amortized_leq_paper_steady", std::uint64_t{part1_ok ? 1u : 0u})
      .summary("hybrid_leq_both_storm", std::uint64_t{part2_ok ? 1u : 0u});

  std::printf("\nsteady: amortized <= paper at every contention level: %s\n",
              part1_ok ? "yes" : "NO — regression");
  std::printf("storm: hybrid <= min(pure paper, pure amortized): %s\n",
              part2_ok ? "yes" : "NO — regression");
  br.table(steady);
  br.table(storm);
  br.write();
  // Both claims are this bench's contract; fail the CI smoke run loudly.
  return part1_ok && part2_ok ? 0 : 1;
}
