// Section 5.4 micro-benches: Claim 20 (Remove is O(log_W R)) and Claim 21
// (AdaptiveFindNext is O(log_W R_p)), measured directly on the counting CC
// model at N = 4096 across W.
#include <string>

#include "aml/core/tree.hpp"
#include "aml/harness/report.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/bits.hpp"
#include "aml/pal/rng.hpp"

using aml::core::Tree;
using aml::harness::summarize;
using aml::harness::Table;
using aml::model::CountingCcModel;

namespace {

// Claim 20: total and per-op Remove cost as R removers execute.
void bench_remove(aml::harness::BenchReport& br, std::uint32_t w) {
  const std::uint32_t n = 4096;
  Table table("Claim 20 — Remove() RMR cost vs removers R (N=4096, W=" +
              std::to_string(w) + ")");
  table.headers({"R", "max RMR/remove", "mean RMR/remove",
                 "2+ceil(log_W R)"});
  for (std::uint32_t r : {2u, 8u, 64u, 512u, 4096u}) {
    CountingCcModel m(1);
    Tree<CountingCcModel> tree(m, n, w);
    // Remove a contiguous block (the worst case for ascent chains).
    std::vector<std::uint64_t> costs;
    for (std::uint32_t q = 0; q < r; ++q) {
      const std::uint64_t before = m.counters(0).rmrs;
      tree.remove(0, q);
      costs.push_back(m.counters(0).rmrs - before);
    }
    const auto s = summarize(costs);
    table.row({Table::num(std::uint64_t{r}), Table::num(s.max),
               Table::num(s.mean),
               Table::num(std::uint64_t{2 + aml::pal::ceil_log(r, w)})});
    br.sample("remove_max_rmr_w" + std::to_string(w),
              static_cast<double>(s.max));
  }
  table.print();
  br.table(table);
}

// Claim 21: AdaptiveFindNext cost as a function of R_p, from random callers.
void bench_adaptive_findnext(aml::harness::BenchReport& br,
                             std::uint32_t w) {
  const std::uint32_t n = 4096;
  Table table("Claim 21 — AdaptiveFindNext() RMR cost vs R_p (N=4096, W=" +
              std::to_string(w) + ")");
  table.headers({"R_p", "max RMRs", "mean RMRs", "2*(2+ceil(log_W R_p))"});
  aml::pal::Xoshiro256 rng(7);
  for (std::uint32_t r : {1u, 8u, 64u, 512u, 2048u}) {
    // Two processes: pid 0 removes, pid 1 measures — so the FindNext reads
    // are genuine RMRs rather than hits in the remover's own cache.
    CountingCcModel m(2);
    Tree<CountingCcModel> tree(m, n, w);
    // Remove r slots immediately after each of 16 random callers; caller
    // slots themselves stay alive so every caller yields a sample even
    // when the removal ranges overlap at large r.
    std::vector<std::uint32_t> callers;
    std::vector<bool> is_caller(n, false);
    std::vector<bool> removed(n, false);
    for (int i = 0; i < 16; ++i) {
      const auto p = static_cast<std::uint32_t>(rng.below(n - r - 2));
      callers.push_back(p);
      is_caller[p] = true;
    }
    for (std::uint32_t p : callers) {
      for (std::uint32_t q = p + 1; q <= p + r && q < n; ++q) {
        if (!removed[q] && !is_caller[q]) {
          tree.remove(0, q);
          removed[q] = true;
        }
      }
    }
    std::vector<std::uint64_t> costs;
    for (std::uint32_t p : callers) {
      const std::uint64_t before = m.counters(1).rmrs;
      (void)tree.adaptive_find_next(1, p);
      costs.push_back(m.counters(1).rmrs - before);
    }
    const auto s = summarize(costs);
    table.row(
        {Table::num(std::uint64_t{r}), Table::num(s.max), Table::num(s.mean),
         Table::num(std::uint64_t{2 * (2 + aml::pal::ceil_log(r, w)) + 2})});
    br.sample("findnext_max_rmr_w" + std::to_string(w),
              static_cast<double>(s.max));
  }
  table.print();
  br.table(table);
}

}  // namespace

int main() {
  aml::harness::BenchReport report("tree_ops");
  report.config("n", std::uint64_t{4096});
  for (std::uint32_t w : {2u, 4u, 16u, 64u}) bench_remove(report, w);
  for (std::uint32_t w : {2u, 4u, 16u, 64u}) {
    bench_adaptive_findnext(report, w);
  }
  report.write();
  return 0;
}
