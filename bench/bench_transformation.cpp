// Claim 28: the one-shot -> long-lived transformation preserves the RMR
// bound — the long-lived lock costs only O(1) more per passage than the
// one-shot lock it wraps (LockDesc F&As, the session-version read, V_w
// first-access reads), independent of N.
//
// Workload: no aborts; the one-shot lock serves each process once; the
// long-lived lock runs 4 rounds per process (amortizing instance switches).
#include "table1_common.hpp"

#include "aml/core/longlived.hpp"
#include "aml/harness/report.hpp"

using namespace bench;

int main() {
  aml::harness::BenchReport br("transformation");
  br.config("rounds", std::uint64_t{4}).config("abort_ppm", std::uint64_t{0});
  Table table("Claim 28 — transformation overhead (no aborts)");
  table.headers({"N", "W", "one-shot max RMR", "long-lived max RMR",
                 "long-lived mean RMR"});
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    for (std::uint32_t w : {8u, 64u}) {
      SinglePassOptions opts;
      opts.seed = n + w;
      opts.gate_cs = false;
      const RunResult oneshot =
          run_ours(n, w, aml::core::Find::kAdaptive, opts);

      aml::harness::LongLivedOptions ll;
      ll.n = n;
      ll.w = w;
      ll.rounds = 4;
      ll.abort_ppm = 0;
      ll.seed = n * 3 + w;
      const RunResult longlived =
          aml::harness::run_long_lived<aml::core::VersionedSpace>(ll);

      table.row({fmt_u(n), fmt_u(w),
                 fmt_u(oneshot.complete_summary().max),
                 fmt_u(longlived.complete_summary().max),
                 Table::num(longlived.complete_summary().mean)});
      br.sample("oneshot_max_rmr",
                static_cast<double>(oneshot.complete_summary().max))
          .sample("longlived_max_rmr",
                  static_cast<double>(longlived.complete_summary().max))
          .sample("longlived_switches",
                  static_cast<double>(longlived.switches));
    }
  }
  table.print();
  br.table(table);
  br.write();
  return 0;
}
