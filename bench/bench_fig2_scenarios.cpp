// Figure 2: the three possible FindNext(p) scenarios, constructed exactly
// with scripted schedules and reported with their RMR costs:
//
//   (a) FOUND  — a zero bit to the right leads to the next live leaf;
//   (b) BOTTOM — every leaf to the right is abandoned; the ascent reaches
//                the root without finding a zero bit;
//   (c) TOP    — the descent reads an EMPTY node because it crossed paths
//                with a Remove() still ascending that subtree.
#include <cstdio>

#include "aml/core/tree.hpp"
#include "aml/harness/report.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/scheduler.hpp"

using aml::core::FindResult;
using aml::core::Tree;
using aml::harness::Table;
using aml::model::CountingCcModel;
using aml::model::Pid;

namespace {

const char* kind_name(const FindResult& r) {
  if (r.is_found()) return "FOUND";
  if (r.is_top()) return "TOP";
  return "BOTTOM";
}

struct ScenarioResult {
  FindResult find;
  std::uint64_t rmrs;
};

// (a) Found: slots 1..2 removed beforehand; FindNext(0) finds slot 3.
// (The finder is a different process than the removers, so its reads are
// genuine RMRs rather than hits in the removers' cache.)
ScenarioResult scenario_found() {
  CountingCcModel m(2);
  Tree<CountingCcModel> tree(m, 8, 2);
  tree.remove(0, 1);
  tree.remove(0, 2);
  m.reset_counters();
  const FindResult r = tree.find_next(1, 0);
  return {r, m.counters(1).rmrs};
}

// (b) Bottom: every slot right of 0 removed beforehand.
ScenarioResult scenario_bottom() {
  CountingCcModel m(2);
  Tree<CountingCcModel> tree(m, 8, 2);
  for (std::uint32_t q = 1; q < 8; ++q) tree.remove(0, q);
  m.reset_counters();
  const FindResult r = tree.find_next(1, 0);
  return {r, m.counters(1).rmrs};
}

// (c) Top: a Remove() fills the subtree the FindNext is descending into,
// before setting the parent bit — the exact "crossed paths" interleaving,
// pinned by a scripted schedule (see tests/tree/tree_concurrent_test.cpp
// for the step-by-step account).
ScenarioResult scenario_top() {
  CountingCcModel m(4);
  Tree<CountingCcModel> tree(m, 4, 2);
  aml::sched::StepScheduler::Config cfg;
  cfg.policy = aml::sched::policies::script(
      {{1, 1}, {0, 2}, {2, 1}, {3, 1}, {0, 1}},
      aml::sched::policies::round_robin());
  aml::sched::StepScheduler sched(4, std::move(cfg));
  m.set_hook(&sched);
  FindResult result{};
  std::uint64_t rmrs = 0;
  sched.run([&](Pid p) {
    switch (p) {
      case 0: {
        const std::uint64_t before = m.counters(0).rmrs;
        result = tree.find_next(0, 0);
        rmrs = m.counters(0).rmrs - before;
        break;
      }
      case 1:
        tree.remove(1, 1);
        break;
      case 2:
        tree.remove(2, 2);
        break;
      case 3:
        tree.remove(3, 3);
        break;
    }
  });
  m.set_hook(nullptr);
  return {result, rmrs};
}

}  // namespace

int main() {
  Table table("Figure 2 — FindNext(p) scenarios (W=2)");
  table.headers({"scenario", "setup", "result", "slot", "RMRs"});

  const ScenarioResult found = scenario_found();
  table.row({"(a) next found", "N=8; slots 1,2 removed", kind_name(found.find),
             found.find.is_found() ? Table::num(std::uint64_t{found.find.slot})
                                   : "-",
             Table::num(found.rmrs)});

  const ScenarioResult bottom = scenario_bottom();
  table.row({"(b) all abandoned", "N=8; slots 1..7 removed",
             kind_name(bottom.find), "-", Table::num(bottom.rmrs)});

  const ScenarioResult top = scenario_top();
  table.row({"(c) crossed paths", "N=4; Remove(3) mid-flight",
             kind_name(top.find), "-", Table::num(top.rmrs)});

  table.print();

  const bool ok = found.find.is_found() && found.find.slot == 3 &&
                  bottom.find.is_bottom() && top.find.is_top();

  aml::harness::BenchReport report("fig2_scenarios");
  report.config("w", std::uint64_t{2})
      .sample("found_rmrs", static_cast<double>(found.rmrs))
      .sample("bottom_rmrs", static_cast<double>(bottom.rmrs))
      .sample("top_rmrs", static_cast<double>(top.rmrs))
      .summary("reproduced", std::uint64_t{ok ? 1u : 0u})
      .table(table);
  report.write();

  if (!ok) {
    std::fprintf(stderr, "figure-2 scenarios did not reproduce!\n");
    return 1;
  }
  std::printf("all three Figure 2 scenarios reproduced.\n");
  return 0;
}
