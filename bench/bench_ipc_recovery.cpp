// aml::ipc recovery and steady-state cost, measured on the real shm path.
//
// Two questions a deployer of the shm lock service asks:
//   1. What does routing acquire/release through the shm segment cost over
//      the in-process table? (steady-state per-passage latency, both paths)
//   2. When a holder dies, how long until a survivor has the lock back?
//      (recover_dead() sweep latency, repeated over fresh simulated deaths)
//
// Death is simulated in-process: a leased session enters a stripe to
// kHolding, its registry slot is re-tagged (debug_set_os_pid) with a forged
// pid that cannot exist, and a survivor sweeps. That exercises the identical
// code path a real SIGKILL takes (the fork/SIGKILL variant lives in
// tests/ipc/shm_fork_test.cpp and the CI multiproc job) while keeping the
// bench single-process and signal-free.
//
// Wall-clock numbers: nondeterministic run to run. BENCH_ipc_recovery.json
// is committed at the repo root and CI-diffed with every numeric value
// normalized to zero (like BENCH_native_throughput.json): the diff catches
// schema drift — dropped measurements, renamed summary keys — without
// failing on honest jitter. The raw report is also a CI artifact.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "aml/core/abortable_lock.hpp"
#include "aml/harness/report.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"
#include "aml/ipc/shm_table.hpp"

namespace {

using aml::harness::Summary;
using aml::harness::summarize;
using aml::harness::Table;
using aml::ipc::ShmNamedLockTable;
using aml::ipc::ShmTableConfig;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kKey = 7;
constexpr std::uint32_t kSteadyOps = 20'000;
constexpr std::uint32_t kRecoveryRounds = 200;
// A pid that can never name a live process (pid_max tops out well below
// 2^31 - 1 on stock kernels), so dead() sees ESRCH immediately.
constexpr std::uint64_t kForgedDeadPid = 0x7FFF'FFFF;

std::uint64_t elapsed_ns(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

ShmTableConfig bench_config() {
  ShmTableConfig cfg;
  cfg.nprocs = 4;
  cfg.stripes = 1;
  return cfg;
}

}  // namespace

int main() {
  aml::harness::BenchReport br("ipc_recovery");
  br.config("steady_ops", std::uint64_t{kSteadyOps})
      .config("recovery_rounds", std::uint64_t{kRecoveryRounds})
      .config("values", "wall-clock (nondeterministic); CI artifact only");

  const std::string seg = "/aml-bench-ipc-" + std::to_string(::getpid());
  std::string error;
  auto table = ShmNamedLockTable::create(seg, bench_config(), &error);
  if (table == nullptr) {
    std::fprintf(stderr, "shm create failed: %s\n", error.c_str());
    return 1;
  }

  bool ok = true;

  // --- Steady state: uncontended acquire/release through the shm segment.
  std::vector<std::uint64_t> shm_lat;
  shm_lat.reserve(kSteadyOps);
  {
    auto session = table->open_session();
    ok = ok && session.has_value();
    const auto wall0 = Clock::now();
    for (std::uint32_t op = 0; ok && op < kSteadyOps; ++op) {
      const auto t0 = Clock::now();
      { auto guard = session->acquire(kKey); }
      shm_lat.push_back(elapsed_ns(t0));
    }
    const double wall_s =
        static_cast<double>(elapsed_ns(wall0)) / 1e9;
    br.summary("shm_ops_per_sec",
               wall_s > 0 ? kSteadyOps / wall_s : 0.0);
  }

  // --- Reference: the same loop on the in-process AbortableLock.
  std::vector<std::uint64_t> native_lat;
  native_lat.reserve(kSteadyOps);
  {
    aml::AbortableLock lock(aml::LockConfig{.max_threads = 4});
    const auto wall0 = Clock::now();
    for (std::uint32_t op = 0; op < kSteadyOps; ++op) {
      const auto t0 = Clock::now();
      lock.enter(0);
      lock.exit(0);
      native_lat.push_back(elapsed_ns(t0));
    }
    const double wall_s =
        static_cast<double>(elapsed_ns(wall0)) / 1e9;
    br.summary("inprocess_ops_per_sec",
               wall_s > 0 ? kSteadyOps / wall_s : 0.0);
  }

  // --- Recovery: time from "survivor starts the sweep" to "dead holder's
  // passage forcibly exited and the slot reclaimed", repeated over fresh
  // victims. Includes the survivor's follow-up acquire to prove the lock is
  // actually free again.
  std::vector<std::uint64_t> sweep_lat;
  std::vector<std::uint64_t> reacquire_lat;
  sweep_lat.reserve(kRecoveryRounds);
  reacquire_lat.reserve(kRecoveryRounds);
  {
    auto survivor = table->open_session();
    ok = ok && survivor.has_value();
    for (std::uint32_t round = 0; ok && round < kRecoveryRounds; ++round) {
      auto victim = table->open_session();
      if (!victim.has_value()) {
        ok = false;
        break;
      }
      // Die holding: enter the stripe directly (no RAII guard to unwind),
      // then forge an ESRCH pid onto the victim's slot.
      const auto enter = table->stripe(0).enter(victim->id(), nullptr);
      ok = ok && enter.acquired;
      table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);

      const auto t0 = Clock::now();
      ok = ok && table->stripe_of(kKey) == 0 &&
           survivor->recover_dead() == 1;
      sweep_lat.push_back(elapsed_ns(t0));

      const auto t1 = Clock::now();
      auto guard = survivor->try_acquire_for(kKey, std::chrono::seconds(2));
      ok = ok && guard.has_value();
      reacquire_lat.push_back(elapsed_ns(t1));
    }
  }

  const Summary shm = summarize(shm_lat);
  const Summary native = summarize(native_lat);
  const Summary sweep = summarize(sweep_lat);
  const Summary reacquire = summarize(reacquire_lat);
  // The segment's own view of the same sweeps: the crash-surviving shm
  // histogram that aml_stat reports, cross-checked here against the
  // caller-side stopwatch (shm p50 ≤ caller p50 since it excludes the
  // registry scan that found the victim).
  const auto shm_sweep = table->shm_metrics().sweep_latency();
  br.summary("shm_latency_ns", shm)
      .summary("inprocess_latency_ns", native)
      .summary("recovery_sweep_ns", sweep)
      .summary("recovery_reacquire_ns", reacquire)
      .summary("shm_sweep_hist_count", std::uint64_t{shm_sweep.count})
      .summary("shm_sweep_hist_p50", std::uint64_t{shm_sweep.p50})
      .summary("shm_sweep_hist_p90", std::uint64_t{shm_sweep.p90})
      .summary("shm_sweep_hist_p99", std::uint64_t{shm_sweep.p99})
      .summary("recoveries_completed",
               std::uint64_t{table->recovery_stats().recovered_pids})
      .summary("forced_exits",
               std::uint64_t{table->recovery_stats().forced_exits})
      .summary("zombie_pids",
               std::uint64_t{table->recovery_stats().zombie_pids});

  Table t("aml::ipc per-passage latency and dead-holder recovery (ns)");
  t.headers({"measurement", "count", "p50", "p90", "p99", "max"});
  const auto add = [&t](const char* name, const Summary& s) {
    t.row({name, Table::num(s.count), Table::num(s.p50), Table::num(s.p90),
           Table::num(s.p99), Table::num(s.max)});
  };
  add("shm acquire/release", shm);
  add("in-process enter/exit", native);
  add("recovery sweep", sweep);
  add("post-recovery reacquire", reacquire);
  t.row({"sweep (shm histogram)", Table::num(shm_sweep.count),
         Table::num(shm_sweep.p50), Table::num(shm_sweep.p90),
         Table::num(shm_sweep.p99), "-"});
  t.print();
  br.table(t);
  br.write();

  ShmNamedLockTable::unlink(seg);
  if (!ok || table->recovery_stats().forced_exits != kRecoveryRounds) {
    std::fprintf(stderr, "FAIL: recovery contract violated (%llu/%u forced "
                         "exits)\n",
                 static_cast<unsigned long long>(
                     table->recovery_stats().forced_exits),
                 kRecoveryRounds);
    return 1;
  }
  // Every death here lands in a journaled window (kHolding), so the v3
  // recoverable-F&A arms must decide every single one — a nonzero zombie
  // count means a recovery regressed into the retire-and-park fallback.
  if (table->recovery_stats().zombie_pids != 0) {
    std::fprintf(stderr, "FAIL: %llu zombie pids (every bench death is "
                         "journal-decidable)\n",
                 static_cast<unsigned long long>(
                     table->recovery_stats().zombie_pids));
    return 1;
  }
  return 0;
}
