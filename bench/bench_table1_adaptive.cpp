// Table 1, "Adaptive bound" column: RMR cost of a passage as a function of
// the number of aborts A_i during the passage, at fixed N = 1024.
//
//   this paper      O(log_W A_i)  — grows logarithmically in A, base W
//   Lee             O(A_i * A_t)-class — linear-or-worse in A
//   Scott           O(#A)         — the successor walks A abandoned nodes
//   Jayanti-class   O(log N)      — flat in A (adaptive to point contention,
//                                   not to aborts; see DESIGN.md)
#include "table1_common.hpp"

#include "aml/harness/report.hpp"

using namespace bench;
using aml::harness::AbortWhen;
using aml::harness::BenchReport;
using aml::harness::plan_first_k;

namespace {

void report(Table& table, BenchReport& br, const std::string& name,
            std::uint32_t aborters, const RunResult& r) {
  table.row({name, fmt_u(aborters), fmt_u(r.complete_summary().max),
             fmt_u(r.aborted_summary().max), r.mutex_ok ? "yes" : "NO"});
  br.sample("max_complete_rmr",
            static_cast<double>(r.complete_summary().max));
}

}  // namespace

int main() {
  const std::uint32_t n = 1024;
  BenchReport br("table1_adaptive");
  br.config("n", std::uint64_t{n}).config("workload",
                                          "A aborters, kOnIdle");
  Table table(
      "Table 1 / adaptive column — passage RMRs vs aborters A (N=1024)");
  table.headers(
      {"lock", "A", "max complete RMR", "max aborted RMR", "mutex"});
  for (std::uint32_t a : {0u, 1u, 3u, 7u, 31u, 127u, 511u, 1022u}) {
    SinglePassOptions opts;
    opts.seed = 100 + a;
    opts.plans = plan_first_k(n, a, AbortWhen::kOnIdle);
    for (std::uint32_t w : {2u, 16u, 64u}) {
      report(table, br, "ours W=" + std::to_string(w) + " (adaptive)", a,
             run_ours(n, w, aml::core::Find::kAdaptive, opts));
    }
    report(table, br, "ours W=2 (plain)", a,
           run_ours(n, 2, aml::core::Find::kPlain, opts));
    report(table, br, "tournament (Jayanti-class)", a,
           run_simple<TournamentCc>(n, opts));
    report(table, br, "Scott (CLH-NB)", a, run_budgeted<ScottCc>(n, opts));
    report(table, br, "Lee-style (F&A queue)", a,
           run_budgeted<LeeCc>(n, opts));
  }
  table.print();
  br.table(table);
  br.write();
  return 0;
}
