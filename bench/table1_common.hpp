// Shared plumbing for the Table 1 reproduction benches: uniform runners for
// the paper's lock and every baseline row on the counting CC model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "aml/baselines/baselines.hpp"
#include "aml/harness/rmr_experiment.hpp"
#include "aml/harness/table.hpp"

namespace bench {

using aml::harness::RunResult;
using aml::harness::SinglePassOptions;
using aml::harness::Table;
using Model = aml::model::CountingCcModel;

/// The paper's one-shot lock (Section 3) with the given W and FindNext kind.
inline RunResult run_ours(std::uint32_t n, std::uint32_t w,
                          aml::core::Find find,
                          const SinglePassOptions& opts) {
  return aml::harness::oneshot_cc_run(n, w, find, opts);
}

/// Baselines constructible as Lock(model, nprocs).
template <typename Lock>
RunResult run_simple(std::uint32_t n, const SinglePassOptions& opts) {
  return aml::harness::single_pass_with<Model>(
      n,
      [n](Model& m) { return std::make_unique<Lock>(m, n); },
      opts);
}

/// Baselines with an attempt budget (Scott, Lee: Table 1 "unbounded space").
template <typename Lock>
RunResult run_budgeted(std::uint32_t n, const SinglePassOptions& opts) {
  return aml::harness::single_pass_with<Model>(
      n,
      [n](Model& m) {
        return std::make_unique<Lock>(m, n, 4ull * n + 16);
      },
      opts);
}

using McsCc = aml::baselines::McsLock<Model>;
using ClhCc = aml::baselines::ClhLock<Model>;
using TicketCc = aml::baselines::TicketLock<Model>;
using TasCc = aml::baselines::TasLock<Model>;
using TournamentCc = aml::baselines::TournamentAbortableLock<Model>;
using ScottCc = aml::baselines::ScottAbortableLock<Model>;
using LeeCc = aml::baselines::LeeStyleAbortableLock<Model>;

inline std::string fmt_u(std::uint64_t v) { return Table::num(v); }

}  // namespace bench
