// Multi-key transactions on the lock table (counting CC model): ordered
// acquisition cost and deadline-storm behavior.
//
// Every process runs T transactions, each acquiring the stripes of k
// Zipfian keys in ascending stripe order (deadlock-free). Two regimes per
// group size: no aborts, and an abort storm where a fraction of attempts
// have their signal raised mid-wait — the all-or-nothing path then releases
// the prefix and the attempt retries once unsignalled (the lock-manager
// "deadline passed, back off, try again" loop). Reported: per-transaction
// RMR (completed vs aborted attempts) and the retry traffic, all
// deterministic per seed (byte-identical JSON, ctest-enforced).
#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "aml/harness/report.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"
#include "aml/sched/scheduler.hpp"
#include "aml/table/lock_table.hpp"

namespace {

using aml::harness::Summary;
using aml::harness::summarize;
using aml::harness::Table;
using aml::model::CountingCcModel;
using aml::model::Pid;

constexpr Pid kProcs = 8;
constexpr std::uint32_t kStripes = 8;
constexpr std::uint32_t kKeys = 32;
constexpr double kTheta = 0.99;
constexpr std::uint32_t kTxPerProc = 12;

struct MultiKeyResult {
  std::vector<std::uint64_t> complete_rmrs;  // completed transactions
  std::vector<std::uint64_t> aborted_rmrs;   // attempts that aborted
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retries = 0;
  std::uint64_t stripes_locked = 0;  // sum of |plan| over completed tx
};

MultiKeyResult run_multikey(std::uint32_t group, std::uint32_t abort_ppm,
                            std::uint64_t seed) {
  CountingCcModel model(kProcs);
  aml::table::LockTable<CountingCcModel> table(
      model,
      {.max_threads = kProcs, .stripes = kStripes, .tree_width = 8});
  aml::pal::ZipfDistribution zipf(kKeys, kTheta);
  model.reset_counters();

  // Pre-marked abort plan per (proc, tx), as in the long-lived harness.
  aml::pal::Xoshiro256 mark_rng(seed * 7919 + 13);
  std::vector<std::vector<bool>> marked(kProcs);
  for (Pid p = 0; p < kProcs; ++p) {
    marked[p].resize(kTxPerProc);
    for (std::uint32_t t = 0; t < kTxPerProc; ++t) {
      marked[p][t] = mark_rng.chance_ppm(abort_ppm);
    }
  }

  std::deque<std::atomic<bool>> signals(kProcs);
  std::deque<std::atomic<std::uint8_t>> wants(kProcs);
  auto raise_one = [&]() {
    for (Pid p = 0; p < kProcs; ++p) {
      if (wants[p].load(std::memory_order_acquire) == 1 &&
          !signals[p].load(std::memory_order_relaxed)) {
        signals[p].store(true, std::memory_order_release);
        return true;
      }
    }
    return false;
  };

  aml::sched::StepScheduler::Config cfg;
  cfg.seed = seed;
  aml::sched::StepScheduler scheduler(kProcs, std::move(cfg));
  scheduler.set_step_callback([&](std::uint64_t step) {
    if (step % 61 == 0) raise_one();
  });
  scheduler.set_idle_callback([&]() { return raise_one(); });

  MultiKeyResult result;
  std::vector<MultiKeyResult> per_proc(kProcs);

  model.set_hook(&scheduler);
  scheduler.run([&](Pid p) {
    aml::pal::Xoshiro256 rng(seed * 977 + p);
    auto& counters = model.counters(p);
    MultiKeyResult& mine = per_proc[p];
    for (std::uint32_t t = 0; t < kTxPerProc; ++t) {
      std::vector<std::uint64_t> keys;
      for (std::uint32_t k = 0; k < group; ++k) keys.push_back(zipf(rng));
      const std::vector<std::uint32_t> order = table.plan(keys);

      signals[p].store(false, std::memory_order_release);
      wants[p].store(marked[p][t] ? 1 : 0, std::memory_order_release);
      const std::uint64_t r0 = counters.rmrs;
      bool ok = table.enter_all(p, order, &signals[p]);
      wants[p].store(0, std::memory_order_release);
      if (!ok) {
        mine.aborted_rmrs.push_back(counters.rmrs - r0);
        mine.aborted++;
        // Deadline passed: back off (nothing held), retry unsignalled.
        mine.retries++;
        const std::uint64_t r1 = counters.rmrs;
        ok = table.enter_all(p, order, nullptr);
        if (ok) {
          table.exit_all(p, order);
          mine.complete_rmrs.push_back(counters.rmrs - r1);
          mine.completed++;
          mine.stripes_locked += order.size();
        }
        continue;
      }
      table.exit_all(p, order);
      mine.complete_rmrs.push_back(counters.rmrs - r0);
      mine.completed++;
      mine.stripes_locked += order.size();
    }
  });
  model.set_hook(nullptr);

  for (Pid p = 0; p < kProcs; ++p) {
    const MultiKeyResult& mine = per_proc[p];
    result.complete_rmrs.insert(result.complete_rmrs.end(),
                                mine.complete_rmrs.begin(),
                                mine.complete_rmrs.end());
    result.aborted_rmrs.insert(result.aborted_rmrs.end(),
                               mine.aborted_rmrs.begin(),
                               mine.aborted_rmrs.end());
    result.completed += mine.completed;
    result.aborted += mine.aborted;
    result.retries += mine.retries;
    result.stripes_locked += mine.stripes_locked;
  }
  return result;
}

}  // namespace

int main() {
  aml::harness::BenchReport br("table_multikey");
  br.config("procs", std::uint64_t{kProcs})
      .config("stripes", std::uint64_t{kStripes})
      .config("keys", std::uint64_t{kKeys})
      .config("theta", kTheta)
      .config("tx_per_proc", std::uint64_t{kTxPerProc});

  Table table("Multi-key ordered acquisition — per-transaction RMR");
  table.headers({"keys/tx", "abort ppm", "completed", "aborted", "retries",
                 "mean RMR (done)", "max RMR (done)", "mean RMR (aborted)"});

  std::uint64_t total_completed = 0, total_aborted = 0, total_retries = 0;
  for (std::uint32_t group : {1u, 2u, 4u}) {
    for (std::uint32_t abort_ppm : {0u, 400000u}) {
      const MultiKeyResult r =
          run_multikey(group, abort_ppm, 31 + group * 7 + abort_ppm / 1000);
      const Summary done = summarize(r.complete_rmrs);
      const Summary ab = summarize(r.aborted_rmrs);
      table.row({Table::num(std::uint64_t{group}),
                 Table::num(std::uint64_t{abort_ppm}),
                 Table::num(r.completed), Table::num(r.aborted),
                 Table::num(r.retries), Table::num(done.mean),
                 Table::num(done.max), Table::num(ab.mean)});
      br.sample("group", static_cast<double>(group))
          .sample("abort_ppm", static_cast<double>(abort_ppm))
          .sample("mean_rmr_done", done.mean)
          .sample("max_rmr_done", static_cast<double>(done.max))
          .sample("mean_rmr_aborted", ab.mean)
          .sample("aborted", static_cast<double>(r.aborted));
      total_completed += r.completed;
      total_aborted += r.aborted;
      total_retries += r.retries;
    }
  }

  br.summary("total_completed", total_completed)
      .summary("total_aborted", total_aborted)
      .summary("total_retries", total_retries);
  table.print();
  br.table(table);
  br.write();
  return 0;
}
