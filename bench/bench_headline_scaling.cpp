// The paper's headline claim (abstract + Section 1): the lock's worst-case
// passage RMR cost is O(log_W N), which under different word-size regimes
// means:
//
//   W = 2            -> O(log N)                  (binary tree: the
//                                                  comparison-primitive
//                                                  world's Omega(log N))
//   W = Theta(log N) -> O(log N / log log N)      (the standard assumption)
//   W = Theta(N^eps) -> O(1)                      (realistic machines)
//
// We sweep N with each regime's W and measure the maximum complete-passage
// RMR count under the adversarial everyone-aborts workload, alongside the
// O(log N) abortable tournament baseline. The growth *rates* are the
// result: column 3 tracks log2, column 4 is clearly sublogarithmic, column
// 5 flattens.
#include <algorithm>
#include <cmath>
#include <string>

#include "table1_common.hpp"

#include "aml/harness/report.hpp"

using namespace bench;
using aml::harness::AbortWhen;
using aml::harness::plan_first_k;

namespace {

std::uint32_t w_log(std::uint32_t n) {
  const std::uint32_t w = static_cast<std::uint32_t>(std::ceil(std::log2(n)));
  return std::max(2u, std::min(64u, w));
}

std::uint32_t w_poly(std::uint32_t n) {  // W = N^(1/2)
  const std::uint32_t w =
      static_cast<std::uint32_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  return std::max(2u, std::min(64u, w));
}

std::uint64_t ours_worst(std::uint32_t n, std::uint32_t w) {
  SinglePassOptions opts;
  opts.seed = n * 31 + w;
  opts.plans = plan_first_k(n, n - 2, AbortWhen::kOnIdle);
  const RunResult r = run_ours(n, w, aml::core::Find::kAdaptive, opts);
  return r.complete_summary().max;
}

}  // namespace

int main() {
  aml::harness::BenchReport report("headline_scaling");
  report.config("workload", "all-but-two abort, kOnIdle")
      .config("find", "adaptive");

  Table table("Headline — worst-case passage RMRs vs N under the paper's "
              "word-size regimes (all-but-two abort)");
  table.headers({"N", "ours W=2 (log N)", "ours W=log2(N) (log/loglog)",
                 "ours W=sqrt(N) (O(1))", "tournament O(log N)"});
  for (std::uint32_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.plans = plan_first_k(n, n - 2, AbortWhen::kOnIdle);
    const RunResult tour = run_simple<TournamentCc>(n, opts);
    const std::uint64_t ours_w2 = ours_worst(n, 2);
    const std::uint64_t ours_wlog = ours_worst(n, w_log(n));
    const std::uint64_t ours_wpoly = ours_worst(n, w_poly(n));
    const std::uint64_t tour_max = tour.complete_summary().max;
    table.row({fmt_u(n), fmt_u(ours_w2), fmt_u(ours_wlog), fmt_u(ours_wpoly),
               fmt_u(tour_max)});
    report.sample("n", n)
        .sample("ours_w2_max_rmr", static_cast<double>(ours_w2))
        .sample("ours_wlog_max_rmr", static_cast<double>(ours_wlog))
        .sample("ours_wpoly_max_rmr", static_cast<double>(ours_wpoly))
        .sample("tournament_max_rmr", static_cast<double>(tour_max));
  }
  table.print();

  Table detail("Headline detail — the W used per regime");
  detail.headers({"N", "W=log2(N)", "W=sqrt(N)"});
  for (std::uint32_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    detail.row({fmt_u(n), fmt_u(w_log(n)), fmt_u(w_poly(n))});
  }
  detail.print();

  report.table(table).table(detail);
  report.write();
  return 0;
}
