// The paper's headline claim (abstract + Section 1): the lock's worst-case
// passage RMR cost is O(log_W N), which under different word-size regimes
// means:
//
//   W = 2            -> O(log N)                  (binary tree: the
//                                                  comparison-primitive
//                                                  world's Omega(log N))
//   W = Theta(log N) -> O(log N / log log N)      (the standard assumption)
//   W = Theta(N^eps) -> O(1)                      (realistic machines)
//
// We sweep N with each regime's W and measure the maximum complete-passage
// RMR count under the adversarial everyone-aborts workload, alongside the
// O(log N) abortable tournament baseline. The growth *rates* are the
// result: column 3 tracks log2, column 4 is clearly sublogarithmic, column
// 5 flattens.
#include <algorithm>
#include <cmath>
#include <string>

#include "table1_common.hpp"

using namespace bench;
using aml::harness::AbortWhen;
using aml::harness::plan_first_k;

namespace {

std::uint32_t w_log(std::uint32_t n) {
  const std::uint32_t w = static_cast<std::uint32_t>(std::ceil(std::log2(n)));
  return std::max(2u, std::min(64u, w));
}

std::uint32_t w_poly(std::uint32_t n) {  // W = N^(1/2)
  const std::uint32_t w =
      static_cast<std::uint32_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  return std::max(2u, std::min(64u, w));
}

std::uint64_t ours_worst(std::uint32_t n, std::uint32_t w) {
  SinglePassOptions opts;
  opts.seed = n * 31 + w;
  opts.plans = plan_first_k(n, n - 2, AbortWhen::kOnIdle);
  const RunResult r = run_ours(n, w, aml::core::Find::kAdaptive, opts);
  return r.complete_summary().max;
}

}  // namespace

int main() {
  Table table("Headline — worst-case passage RMRs vs N under the paper's "
              "word-size regimes (all-but-two abort)");
  table.headers({"N", "ours W=2 (log N)", "ours W=log2(N) (log/loglog)",
                 "ours W=sqrt(N) (O(1))", "tournament O(log N)"});
  for (std::uint32_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.plans = plan_first_k(n, n - 2, AbortWhen::kOnIdle);
    const RunResult tour = run_simple<TournamentCc>(n, opts);
    table.row({fmt_u(n), fmt_u(ours_worst(n, 2)),
               fmt_u(ours_worst(n, w_log(n))),
               fmt_u(ours_worst(n, w_poly(n))),
               fmt_u(tour.complete_summary().max)});
  }
  table.print();

  Table detail("Headline detail — the W used per regime");
  detail.headers({"N", "W=log2(N)", "W=sqrt(N)"});
  for (std::uint32_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    detail.row({fmt_u(n), fmt_u(w_log(n)), fmt_u(w_poly(n))});
  }
  detail.print();
  return 0;
}
