// Figure 4: comparison of FindNext() ascent algorithms.
//
// The paper's figure contrasts the non-adaptive ascent (climb to the lowest
// common ancestor, then descend) with the adaptive "sidestep" ascent. We
// regenerate it quantitatively: the caller sits on the rightmost leaf of a
// height-k subtree while its immediate right neighbour is alive; the plain
// ascent pays ~2k node reads, the adaptive one pays O(1).
//
// Second series: RMR cost as a function of the number of aborters A_i
// (Claim 21: adaptive is O(log_W A_i); plain is O(log_W N) regardless).
#include <cstdio>
#include <string>

#include "aml/core/tree.hpp"
#include "aml/harness/report.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/bits.hpp"

using aml::core::FindResult;
using aml::core::Tree;
using aml::harness::Table;
using aml::model::CountingCcModel;

namespace {

void bench_sidestep_vs_ascent(aml::harness::BenchReport& br) {
  Table table("Figure 4 — plain vs adaptive FindNext ascent (W=2, no aborts)");
  table.headers({"height H", "N=2^H", "caller p", "plain RMRs",
                 "adaptive RMRs", "ratio"});
  for (std::uint32_t h = 2; h <= 11; ++h) {
    const std::uint32_t n =
        static_cast<std::uint32_t>(aml::pal::pow_sat(2, h));
    CountingCcModel m(2);
    Tree<CountingCcModel> tree(m, n, 2);
    // Rightmost leaf of the left half: the worst ascent for plain FindNext.
    const std::uint32_t p = n / 2 - 1;

    const std::uint64_t p0 = m.counters(0).rmrs;
    const FindResult plain = tree.find_next(0, p);
    const std::uint64_t plain_cost = m.counters(0).rmrs - p0;

    const std::uint64_t a0 = m.counters(1).rmrs;
    const FindResult adaptive = tree.adaptive_find_next(1, p);
    const std::uint64_t adaptive_cost = m.counters(1).rmrs - a0;

    if (!plain.is_found() || !adaptive.is_found() ||
        plain.slot != adaptive.slot) {
      std::fprintf(stderr, "figure-4 bench: result mismatch at h=%u\n", h);
      continue;
    }
    table.row({Table::num(std::uint64_t{h}), Table::num(std::uint64_t{n}),
               Table::num(std::uint64_t{p}), Table::num(plain_cost),
               Table::num(adaptive_cost),
               Table::num(static_cast<double>(plain_cost) /
                          static_cast<double>(adaptive_cost))});
    br.sample("ascent_plain_rmrs", static_cast<double>(plain_cost))
        .sample("ascent_adaptive_rmrs", static_cast<double>(adaptive_cost));
  }
  table.print();
  br.table(table);
}

// Caller p is the rightmost leaf of the left half of the tree (the position
// where the plain ascent is forced to the root no matter what); the A slots
// immediately to its right are aborted. Plain pays ~2 log_W N regardless of
// A; adaptive pays O(log_W A).
void bench_cost_vs_aborters(aml::harness::BenchReport& br,
                            std::uint32_t w) {
  const std::uint32_t n = 4096;
  Table table("Figure 4 series — FindNext RMRs vs #aborters A (N=4096, W=" +
              std::to_string(w) + ", caller = rightmost leaf of left half)");
  table.headers({"A (aborters)", "plain RMRs", "adaptive RMRs",
                 "ceil(log_W(A+2))"});
  const std::uint32_t p = n / 2 - 1;
  for (std::uint32_t a : {0u, 1u, 3u, 7u, 15u, 63u, 255u, 1023u, 2047u}) {
    CountingCcModel m(2);
    Tree<CountingCcModel> tree(m, n, w);
    for (std::uint32_t q = p + 1; q <= p + a; ++q) tree.remove(0, q);
    m.reset_counters();
    const std::uint64_t p0 = m.counters(0).rmrs;
    const auto plain = tree.find_next(0, p);
    const std::uint64_t plain_cost = m.counters(0).rmrs - p0;
    const std::uint64_t a0 = m.counters(1).rmrs;
    const auto adaptive = tree.adaptive_find_next(1, p);
    const std::uint64_t adaptive_cost = m.counters(1).rmrs - a0;
    if (!plain.is_found() || plain.slot != p + a + 1 ||
        !adaptive.is_found() || adaptive.slot != plain.slot) {
      std::fprintf(stderr, "figure-4 series: result mismatch at A=%u\n", a);
      continue;
    }
    table.row({Table::num(std::uint64_t{a}), Table::num(plain_cost),
               Table::num(adaptive_cost),
               Table::num(std::uint64_t{aml::pal::ceil_log(a + 2, w)})});
    const std::string suffix = "_w" + std::to_string(w);
    br.sample("aborters_plain_rmrs" + suffix, static_cast<double>(plain_cost))
        .sample("aborters_adaptive_rmrs" + suffix,
                static_cast<double>(adaptive_cost));
  }
  table.print();
  br.table(table);
}

}  // namespace

int main() {
  aml::harness::BenchReport report("fig4_adaptive");
  report.config("n", std::uint64_t{4096});
  bench_sidestep_vs_ascent(report);
  bench_cost_vs_aborters(report, 2);
  bench_cost_vs_aborters(report, 8);
  bench_cost_vs_aborters(report, 64);
  report.write();
  return 0;
}
