// Table 1, "Worst-case" column: RMR cost of a passage when (almost)
// everyone aborts.
//
// Workload: N processes take queue slots in pid order; slots 1..N-2 abort
// while slot 0 holds the critical section; slot 0 then exits and hands off
// to slot N-1. The maximum complete-passage RMR count is dominated by the
// hand-off over the abandoned range — the regime where Table 1 separates:
//
//   this paper      O(log_W N)   (rows: W = 2, 4, 16, 64)
//   Jayanti-class   O(log N)     (tournament baseline)
//   Scott           unbounded    (successor walks the abandoned chain: ~N)
//   Lee             O(N^2)-class (hand-off scan over poisoned slots: ~N)
#include "table1_common.hpp"

#include "aml/harness/report.hpp"

using namespace bench;
using aml::harness::AbortWhen;
using aml::harness::BenchReport;
using aml::harness::plan_first_k;

namespace {

SinglePassOptions worst_opts(std::uint32_t n, std::uint64_t seed) {
  SinglePassOptions opts;
  opts.seed = seed;
  opts.plans = plan_first_k(n, n - 2, AbortWhen::kOnIdle);
  return opts;
}

void report(Table& table, BenchReport& br, const std::string& name,
            std::uint32_t n, const RunResult& r) {
  table.row({name, fmt_u(n), fmt_u(r.complete_summary().max),
             Table::num(r.complete_summary().mean),
             fmt_u(r.aborted_summary().max), r.mutex_ok ? "yes" : "NO"});
  br.sample("max_complete_rmr",
            static_cast<double>(r.complete_summary().max));
}

}  // namespace

int main() {
  BenchReport br("table1_worstcase");
  br.config("workload", "N-2 aborters, kOnIdle");
  Table table(
      "Table 1 / worst-case column — passage RMRs with N-2 aborters");
  table.headers({"lock", "N", "max complete RMR", "mean complete",
                 "max aborted RMR", "mutex"});
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    const SinglePassOptions opts = worst_opts(n, n);
    for (std::uint32_t w : {2u, 4u, 16u, 64u}) {
      report(table, br, "ours W=" + std::to_string(w) + " (adaptive)", n,
             run_ours(n, w, aml::core::Find::kAdaptive, opts));
    }
    report(table, br, "ours W=2 (plain)", n,
           run_ours(n, 2, aml::core::Find::kPlain, opts));
    report(table, br, "tournament (Jayanti-class)", n,
           run_simple<TournamentCc>(n, opts));
    report(table, br, "Scott (CLH-NB)", n, run_budgeted<ScottCc>(n, opts));
    report(table, br, "Lee-style (F&A queue)", n,
           run_budgeted<LeeCc>(n, opts));
  }
  table.print();
  br.table(table);
  br.write();
  return 0;
}
