// Shared glue for google-benchmark based native benches: run the usual
// console reporter, but also capture every run's adjusted real time into a
// BenchReport so the binary emits BENCH_<name>.json like the counting
// benches do.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "aml/harness/report.hpp"

namespace bench {

// ConsoleReporter subclass: forwards to the normal console output and
// records each successful run as a sample named after the benchmark.
class ReportingConsole : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsole(aml::harness::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_->sample(run.benchmark_name() + "/real_ns",
                      run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  aml::harness::BenchReport* report_;
};

// Custom main body for a gbench binary: initialize, run with the reporting
// console, then write BENCH_<name>.json. Native timings are inherently
// non-deterministic, so these reports are not expected to be byte-identical
// across runs (unlike the counting-model benches).
inline int run_gbench_with_report(int argc, char** argv, const char* name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  aml::harness::BenchReport report(name);
  report.config("deterministic", std::uint64_t{0});
  ReportingConsole console(&report);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&console);
  report.summary("benchmarks_run", static_cast<std::uint64_t>(ran));
  report.write();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
