// Native-hardware lock/unlock throughput: the production AbortableLock
// against std::mutex and the ticket-lock baseline, uncontended and under
// thread contention, with per-acquisition latency percentiles.
//
// Unlike the counting-model benches this measures wall-clock time, so the
// numbers vary run to run: the committed BENCH_native_throughput.json is a
// *schema-stable* record (CI diffs it with numeric values normalized, so
// structural drift fails the gate while honest jitter does not). Each run
// also self-checks mutual exclusion — every lock protects a plain counter
// whose final value must equal the op count — so the bench doubles as a
// native stress test.
//
// Note: on a single-core host the contended numbers measure hand-off through
// the OS scheduler rather than cache-line transfer; the RMR benches (the
// bench_table1_* binaries) are the paper-faithful comparison. These numbers
// establish that the lock is a practical, deployable artifact.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "aml/baselines/ticket.hpp"
#include "aml/core/abortable_lock.hpp"
#include "aml/harness/report.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/native.hpp"
#include "aml/pal/threading.hpp"

namespace {

using aml::harness::Summary;
using aml::harness::summarize;
using aml::harness::Table;
using aml::model::NativeModel;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kMaxThreads = 4;
constexpr std::uint32_t kOpsPerThread = 10'000;

struct RunResult {
  double ops_per_sec = 0;
  Summary latency_ns;  ///< per-acquisition enter..exit wall time
  bool exclusion_held = false;
};

/// Run `threads` workers, each doing kOpsPerThread enter/protected-increment/
/// exit rounds through the callables, timing every acquisition.
template <typename Enter, typename Exit>
RunResult run_one(std::uint32_t threads, Enter enter, Exit exit_fn) {
  std::vector<std::vector<std::uint64_t>> lat(threads);
  for (auto& v : lat) v.reserve(kOpsPerThread);
  std::uint64_t protected_counter = 0;  // plain: torn unless exclusion holds

  const auto wall0 = Clock::now();
  aml::pal::run_threads(threads, [&](std::uint32_t tid) {
    for (std::uint32_t op = 0; op < kOpsPerThread; ++op) {
      const auto t0 = Clock::now();
      enter(tid);
      protected_counter++;
      exit_fn(tid);
      const auto t1 = Clock::now();
      lat[tid].push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
  });
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  RunResult r;
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(threads) * kOpsPerThread;
  r.ops_per_sec = wall_s > 0 ? static_cast<double>(total_ops) / wall_s : 0;
  std::vector<std::uint64_t> all;
  all.reserve(total_ops);
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  r.latency_ns = summarize(all);
  r.exclusion_held = protected_counter == total_ops;
  return r;
}

RunResult run_lock(const std::string& lock, std::uint32_t threads) {
  if (lock == "amlock") {
    aml::AbortableLock l(aml::LockConfig{.max_threads = kMaxThreads});
    return run_one(
        threads, [&](std::uint32_t tid) { l.enter(tid); },
        [&](std::uint32_t tid) { l.exit(tid); });
  }
  if (lock == "amlock_seqcst") {
    // The A/B twin for the justified-relaxation gate: the identical lock
    // over the all-seq_cst native model (every edge in tools/edges.toml
    // forced back to a fence-pair). Relaxed must never lose to this.
    aml::BasicAbortableLock<aml::obs::NullMetrics,
                            aml::model::NativeModelSeqCst>
        l(aml::LockConfig{.max_threads = kMaxThreads});
    return run_one(
        threads, [&](std::uint32_t tid) { l.enter(tid); },
        [&](std::uint32_t tid) { l.exit(tid); });
  }
  if (lock == "std_mutex") {
    std::mutex m;
    return run_one(
        threads, [&](std::uint32_t) { m.lock(); },
        [&](std::uint32_t) { m.unlock(); });
  }
  // ticket
  NativeModel model(kMaxThreads);
  aml::baselines::TicketLock<NativeModel> l(model, kMaxThreads);
  return run_one(
      threads, [&](std::uint32_t tid) { l.enter(tid, nullptr); },
      [&](std::uint32_t tid) { l.exit(tid); });
}

}  // namespace

int main() {
  aml::harness::BenchReport br("native_throughput");
  br.config("max_threads", std::uint64_t{kMaxThreads})
      .config("ops_per_thread", std::uint64_t{kOpsPerThread})
      .config("locks", "amlock,amlock_seqcst,std_mutex,ticket")
      .config("values", "wall-clock (nondeterministic); CI diffs structure");

  Table table("Native enter/exit throughput and per-acquisition latency");
  table.headers({"lock", "threads", "ops/sec", "p50 ns", "p90 ns", "p99 ns",
                 "max ns"});

  bool ok = true;
  double relaxed_total = 0;  // amlock ops/sec summed over thread counts
  double seqcst_total = 0;   // amlock_seqcst likewise — the paired gate
  for (const std::string lock :
       {"amlock", "amlock_seqcst", "std_mutex", "ticket"}) {
    for (std::uint32_t threads : {1u, 2u, 4u}) {
      const RunResult r = run_lock(lock, threads);
      ok = ok && r.exclusion_held;
      if (lock == "amlock") relaxed_total += r.ops_per_sec;
      if (lock == "amlock_seqcst") seqcst_total += r.ops_per_sec;
      table.row({lock, Table::num(std::uint64_t{threads}),
                 Table::num(r.ops_per_sec),
                 Table::num(r.latency_ns.p50), Table::num(r.latency_ns.p90),
                 Table::num(r.latency_ns.p99), Table::num(r.latency_ns.max)});
      const std::string prefix = lock + "_t" + std::to_string(threads);
      br.summary(prefix + "_ops_per_sec", r.ops_per_sec)
          .summary(prefix + "_latency_ns", r.latency_ns);
    }
  }

  // The relaxation gate: the justified-relaxation build must at least match
  // the all-seq_cst twin. Wall-clock benches jitter (CI runners, single-core
  // hosts), so the gate takes the aggregate over thread counts and grants a
  // 25% noise band — a genuinely backwards relaxation (an edge that forces
  // extra fences or a bounce) loses by integer factors, not percent.
  const double ratio =
      seqcst_total > 0 ? relaxed_total / seqcst_total : 0.0;
  const bool relaxation_pays = ratio >= 0.75;
  std::printf("relaxation gate: relaxed/seq_cst aggregate ratio %.3f "
              "(floor 0.75): %s\n",
              ratio, relaxation_pays ? "ok" : "FAIL");

  table.print();
  br.summary("mutual_exclusion_held", std::uint64_t{ok ? 1u : 0u});
  br.summary("relaxed_vs_seqcst_ratio", ratio);
  br.summary("relaxation_gate_held",
             std::uint64_t{relaxation_pays ? 1u : 0u});
  br.table(table);
  br.write();
  if (!ok) {
    std::printf("FAIL: protected counter torn — mutual exclusion violated\n");
    return 1;
  }
  if (!relaxation_pays) {
    std::printf("FAIL: relaxed fast path slower than the seq_cst twin — a "
                "relaxation regressed into extra synchronization\n");
    return 1;
  }
  return 0;
}
