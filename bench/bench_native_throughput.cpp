// Native-hardware lock/unlock microbenchmarks (google-benchmark): the
// production AbortableLock against the classic baselines, uncontended and
// under thread contention.
//
// Note: on a single-core host the contended numbers measure hand-off through
// the OS scheduler rather than cache-line transfer; the RMR benches (the
// bench_table1_* binaries) are the paper-faithful comparison. These numbers
// establish that the lock is a practical, deployable artifact.
//
// Lock instances are function-local statics shared across the benchmark's
// thread-count variants: they are locks, so reuse across runs is safe, and
// this avoids any teardown race between benchmark threads.
#include <benchmark/benchmark.h>

#include <atomic>

#include "aml/baselines/baselines.hpp"
#include "aml/core/abortable_lock.hpp"
#include "aml/model/native.hpp"
#include "gbench_report.hpp"

namespace {

using aml::model::NativeModel;

constexpr std::uint32_t kMaxThreads = 8;

void BM_AmlockEnterExit(benchmark::State& state) {
  static aml::AbortableLock lock(
      aml::LockConfig{.max_threads = kMaxThreads});
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    lock.enter(tid);
    benchmark::DoNotOptimize(tid);
    lock.exit(tid);
  }
}
BENCHMARK(BM_AmlockEnterExit)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

template <typename Lock>
void BM_Baseline(benchmark::State& state) {
  static NativeModel model(kMaxThreads);
  static Lock lock(model, kMaxThreads);
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    lock.enter(tid, nullptr);
    benchmark::DoNotOptimize(tid);
    lock.exit(tid);
  }
}

BENCHMARK_TEMPLATE(BM_Baseline, aml::baselines::McsLock<NativeModel>)
    ->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Baseline, aml::baselines::ClhLock<NativeModel>)
    ->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Baseline, aml::baselines::TicketLock<NativeModel>)
    ->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Baseline, aml::baselines::TasLock<NativeModel>)
    ->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_Baseline,
                   aml::baselines::TournamentAbortableLock<NativeModel>)
    ->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return bench::run_gbench_with_report(argc, argv, "native_throughput");
}
