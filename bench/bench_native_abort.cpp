// Native abort-path microbenchmarks: bounded-abort latency (how fast an
// enter() returns once its signal is up while the lock is held) and mixed
// workloads with a given abort probability.
#include <benchmark/benchmark.h>

#include <atomic>

#include "aml/core/abortable_lock.hpp"
#include "aml/pal/rng.hpp"
#include "gbench_report.hpp"

namespace {

// Latency of an aborted acquisition attempt while the lock is held by
// thread 0 the whole time.
void BM_AbortLatencyWhileHeld(benchmark::State& state) {
  aml::AbortableLock lock(aml::LockConfig{.max_threads = 2});
  lock.enter(0);
  aml::AbortSignal sig;
  sig.raise();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.enter(1, sig));
  }
  lock.exit(0);
}
BENCHMARK(BM_AbortLatencyWhileHeld);

// Uncontended acquire/release with a pre-checked (never-raised) signal:
// the cost of abortability on the fast path.
void BM_EnterExitWithSignalCheck(benchmark::State& state) {
  aml::AbortableLock lock(aml::LockConfig{.max_threads = 1});
  aml::AbortSignal sig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.enter(0, sig));
    lock.exit(0);
  }
}
BENCHMARK(BM_EnterExitWithSignalCheck);

// Mixed: each iteration raises the signal with probability p before
// entering. Solo attempts always win the race with their own signal (the
// hand-off beats the abort check — footnote 2 of the paper), so the aborts
// counter stays 0; what this isolates is the fast-path cost of *carrying*
// a possibly-raised signal, across abort-marking rates.
void BM_MixedAbortRate(benchmark::State& state) {
  aml::AbortableLock lock(aml::LockConfig{.max_threads = 1});
  aml::AbortSignal sig;
  aml::pal::Xoshiro256 rng(42);
  const auto ppm = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t aborts = 0;
  for (auto _ : state) {
    sig.reset();
    if (rng.chance_ppm(ppm)) sig.raise();
    if (lock.enter(0, sig)) {
      lock.exit(0);
    } else {
      ++aborts;
    }
  }
  state.counters["aborts"] = static_cast<double>(aborts);
}
BENCHMARK(BM_MixedAbortRate)->Arg(0)->Arg(100000)->Arg(500000);

// Tree width ablation on the abort-free native fast path.
void BM_TreeWidth(benchmark::State& state) {
  aml::AbortableLock lock(aml::LockConfig{
      .max_threads = 1,
      .tree_width = static_cast<std::uint32_t>(state.range(0))});
  for (auto _ : state) {
    lock.enter(0);
    lock.exit(0);
  }
}
BENCHMARK(BM_TreeWidth)->Arg(2)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return bench::run_gbench_with_report(argc, argv, "native_abort");
}
