// Section 6.2 ablation: lazy (versioned) instance reset vs eager full reset.
//
// (1) Micro: RMR cost of recycling one instance (next_incarnation) as the
//     instance size s grows — eager pays O(s) writes per reuse, lazy pays
//     the O(s/2^(W-1)) wraparound quota.
// (2) Macro: long-lived lock throughput in RMRs per passage under churn,
//     lazy vs eager recycling.
#include <string>

#include "aml/core/eager_space.hpp"
#include "aml/core/versioned_space.hpp"
#include "aml/harness/report.hpp"
#include "aml/harness/rmr_experiment.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/counting_cc.hpp"

using aml::harness::Table;
using Model = aml::model::CountingCcModel;

namespace {

template <typename Space>
std::uint64_t recycle_cost(std::uint32_t words, std::uint32_t w) {
  Model m(1);
  Space space(m, 1, w);
  space.alloc(words, 0);
  // Warm up one incarnation, then measure a steady-state recycle.
  space.next_incarnation(0);
  m.reset_counters();
  space.next_incarnation(0);
  return m.counters(0).rmrs;
}

void micro(aml::harness::BenchReport& br, std::uint32_t w) {
  Table table("Ablation (micro) — RMRs to recycle an instance of s words "
              "(W=" + std::to_string(w) + ")");
  table.headers({"s (words)", "eager reset", "lazy reset (quota)"});
  for (std::uint32_t s : {64u, 256u, 1024u, 4096u, 16384u}) {
    const std::uint64_t eager =
        recycle_cost<aml::core::EagerSpace<Model>>(s, w);
    const std::uint64_t lazy =
        recycle_cost<aml::core::VersionedSpace<Model>>(s, w);
    table.row({Table::num(std::uint64_t{s}), Table::num(eager),
               Table::num(lazy)});
    br.sample("recycle_eager_rmr_w" + std::to_string(w),
              static_cast<double>(eager))
        .sample("recycle_lazy_rmr_w" + std::to_string(w),
                static_cast<double>(lazy));
  }
  table.print();
  br.table(table);
}

template <template <typename> class Policy>
aml::harness::Summary macro_rmr(std::uint32_t n, std::uint32_t w) {
  aml::harness::LongLivedOptions opts;
  opts.n = n;
  opts.w = w;
  opts.rounds = 8;
  opts.abort_ppm = 250000;
  opts.seed = 17;
  const auto r = aml::harness::run_long_lived<Policy>(opts);
  return r.complete_summary();
}

// The trade the paper's scheme makes: lazy reset adds +O(1) RMRs per first
// access of a word in a session (the V_w read) but removes the O(s(N))
// eager rewrite from the switching process' passage. So lazy has a slightly
// higher *mean* and a flat *max*, while eager's max passage grows linearly
// with the instance footprint.
void macro(aml::harness::BenchReport& br) {
  Table table("Ablation (macro) — complete-passage RMRs under churn, lazy "
              "vs eager recycling (8 rounds, 25% abort marking)");
  table.headers({"N", "W", "lazy mean", "lazy max", "eager mean",
                 "eager max"});
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    for (std::uint32_t w : {8u, 64u}) {
      const auto lazy = macro_rmr<aml::core::VersionedSpace>(n, w);
      const auto eager = macro_rmr<aml::core::EagerSpace>(n, w);
      table.row({Table::num(std::uint64_t{n}), Table::num(std::uint64_t{w}),
                 Table::num(lazy.mean), Table::num(lazy.max),
                 Table::num(eager.mean), Table::num(eager.max)});
      br.sample("macro_lazy_max_rmr", static_cast<double>(lazy.max))
          .sample("macro_eager_max_rmr", static_cast<double>(eager.max));
    }
  }
  table.print();
  br.table(table);
}

}  // namespace

int main() {
  aml::harness::BenchReport report("ablation_reset");
  report.config("macro_rounds", std::uint64_t{8})
      .config("macro_abort_ppm", std::uint64_t{250000});
  micro(report, 8);
  micro(report, 16);
  micro(report, 64);
  macro(report);
  report.write();
  return 0;
}
