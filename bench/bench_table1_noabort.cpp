// Table 1, "No aborts" column: RMR cost of a passage when nobody aborts,
// as N grows. Expected shapes:
//
//   this paper      O(1)         (flat across N and W)
//   Scott, Lee, MCS, CLH   O(1)  (queue locks hand off locally)
//   Jayanti-class   O(log N)     (tournament: one 2-process lock per level)
//   ticket / TAS    O(N)-class   (broadcast spin: every release invalidates
//                                 every waiter)
#include "table1_common.hpp"

#include "aml/harness/report.hpp"

using namespace bench;
using aml::harness::BenchReport;

namespace {

void report(Table& table, BenchReport& br, const std::string& name,
            std::uint32_t n, const RunResult& r) {
  table.row({name, fmt_u(n), fmt_u(r.complete_summary().max),
             Table::num(r.complete_summary().mean),
             r.mutex_ok ? "yes" : "NO"});
  br.sample("max_passage_rmr",
            static_cast<double>(r.complete_summary().max));
}

}  // namespace

int main() {
  BenchReport br("table1_noabort");
  br.config("workload", "zero aborts, no CS gate");
  Table table("Table 1 / no-aborts column — passage RMRs, zero aborts");
  table.headers({"lock", "N", "max passage RMR", "mean passage RMR",
                 "mutex"});
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = n + 1;
    opts.gate_cs = false;
    for (std::uint32_t w : {2u, 64u}) {
      report(table, br, "ours W=" + std::to_string(w) + " (adaptive)", n,
             run_ours(n, w, aml::core::Find::kAdaptive, opts));
    }
    report(table, br, "MCS", n, run_simple<McsCc>(n, opts));
    report(table, br, "CLH", n, run_simple<ClhCc>(n, opts));
    report(table, br, "tournament (Jayanti-class)", n,
           run_simple<TournamentCc>(n, opts));
    report(table, br, "Yang-Anderson (read/write)", n,
           run_simple<aml::baselines::YangAndersonLock<Model>>(n, opts));
    report(table, br, "Scott (CLH-NB)", n, run_budgeted<ScottCc>(n, opts));
    report(table, br, "Lee-style (F&A queue)", n,
           run_budgeted<LeeCc>(n, opts));
    report(table, br, "ticket", n, run_simple<TicketCc>(n, opts));
  }
  table.print();
  br.table(table);
  br.write();
  return 0;
}
