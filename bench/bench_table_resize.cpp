// Contention-aware stripe auto-grow pays for itself: a Zipf-hot workload on
// a deliberately under-striped table trips the grow policy mid-run, and the
// per-passage RMR cost to COMPLETE a passage after the grow is no worse than
// before it.
//
// Setup (counting CC model, deterministic scheduler): C contenders hammer a
// Zipfian key set on a table that starts with 2 stripes — every key collides
// into one of two locks, so StripeStats' attempt-depth high-water mark
// crosses the policy threshold almost immediately. The grow policy runs from
// the scheduler's step callback every kCheckInterval grants (the same
// sampling cadence NamedLockTable::note_op uses in production), doubling the
// stripe count up to kMaxStripes.
//
// What is measured — and why attempts are abortable. On the CC model a
// hand-off grant is CHEAPER per passage than an uncontended acquisition (the
// waiter parks on one local spin word while the exiting process pays the
// promotion), so raw grant cost alone would *reward* queueing. What queueing
// actually costs a caller is attempts that outlive their patience: every
// enter here carries an abort signal with a deadline of kPatienceSteps x
// attempt-number scheduler steps, raised by the step callback exactly like
// NamedLockTable's TimerWheel raises deadline signals in production. A
// timed-out attempt runs the paper's abort path (itself O(log N / log log N)
// RMRs) and retries; the recorded per-passage RMR spans ALL attempts until
// the passage completes. Pre-grow, two stripes queue deeper than the
// patience bound and passages pay for aborted attempts; post-grow the same
// workload fits the deadline on the first try.
//
// Each passage is tagged with the table phase at its first attempt: pre
// (epoch 0), transition (new epoch, old generation still draining — these
// passages bridge both generations and pay a second stripe acquisition),
// post (new epoch, drained).
//
// Contract, read by the acceptance gate from BENCH_table_resize.json:
// grow_triggered == 1 (the policy actually fired) and post_vs_pre_ratio <=
// 1.0 + epsilon (adapting the stripe count must not cost steady-state RMR;
// it should shed the abort/retry overhead, so the ratio is normally well
// below 1).
#include <cstdint>
#include <cstdio>
#include <atomic>
#include <deque>
#include <vector>

#include "aml/harness/report.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"
#include "aml/sched/scheduler.hpp"
#include "aml/table/lock_table.hpp"

namespace {

using aml::harness::Summary;
using aml::harness::summarize;
using aml::harness::Table;
using aml::model::CountingCcModel;
using aml::model::Pid;

constexpr Pid kContenders = 8;
constexpr std::uint32_t kInitialStripes = 2;  // deliberately under-striped
constexpr std::uint32_t kMaxStripes = 16;
constexpr std::uint32_t kThreshold = 3;       // stripe depth that = "hot"
constexpr std::uint64_t kCheckInterval = 64;  // steps between policy checks
constexpr std::uint32_t kKeys = 64;
constexpr double kTheta = 0.99;
constexpr std::uint32_t kRounds = 32;  // passages per contender
// Patience per attempt, in scheduler steps. One hand-off cycle on this
// workload is ~25 steps, so a queue of 4 (8 contenders on 2 stripes) blows
// the deadline while a queue of 1-2 (post-grow) fits comfortably. Patience
// scales linearly with the attempt number so every passage terminates.
constexpr std::uint64_t kPatienceSteps = 48;
// Policy checks only start after this many scheduler steps: the pre-grow
// phase must be measured at full contention (all contenders deep in the
// workload), or the handful of ramp-up passages would masquerade as the
// under-striped baseline.
constexpr std::uint64_t kWarmupSteps = 3000;

struct Phase {
  std::vector<std::uint64_t> pre;         // epoch 0
  std::vector<std::uint64_t> transition;  // new epoch, old gen draining
  std::vector<std::uint64_t> post;        // new epoch, drained
  std::uint64_t pre_retries = 0;          // aborted attempts per phase
  std::uint64_t transition_retries = 0;
  std::uint64_t post_retries = 0;
};

struct RunResult {
  Phase rmrs;
  std::uint64_t final_epoch = 0;
  std::uint32_t final_stripes = 0;
  std::uint64_t grow_step = 0;  // scheduler step of the first grow
  std::uint64_t steps = 0;
  std::uint64_t aborts = 0;  // table-wide, from StripeStats
};

// Per-process deadline slot, the bench-local analogue of a TimerWheel entry:
// the worker arms it before each attempt, the step callback raises the
// signal once the deadline step passes. Raising the stop flag makes the
// parked process runnable again (the scheduler re-checks it), which is
// exactly how a timed-out attempt wakes into the abort path.
struct PatienceSlot {
  std::atomic<bool> signal{false};
  std::atomic<std::uint64_t> deadline{0};
  std::atomic<bool> armed{false};
};

RunResult run(std::uint64_t seed) {
  CountingCcModel model(kContenders);
  aml::table::LockTable<CountingCcModel> table(
      model, {.max_threads = kContenders,
              .stripes = kInitialStripes,
              .tree_width = 8});
  aml::pal::ZipfDistribution zipf(kKeys, kTheta);
  model.reset_counters();

  RunResult result;
  std::vector<Phase> per_proc(kContenders);
  std::deque<PatienceSlot> patience(kContenders);
  std::atomic<std::uint64_t> now{0};

  aml::sched::StepScheduler::Config cfg;
  cfg.seed = seed;
  aml::sched::StepScheduler scheduler(kContenders, std::move(cfg));
  // The callback runs while every process is parked at a model gate, exactly
  // like NamedLockTable's note_op sampling runs outside any critical
  // section. It plays two production roles: the TimerWheel (raise deadline
  // signals for armed attempts whose patience ran out) and the auto-grow
  // cadence (every kCheckInterval grants, evaluate the policy against the
  // live StripeStats).
  scheduler.set_step_callback([&](std::uint64_t step) {
    now.store(step, std::memory_order_relaxed);
    for (Pid p = 0; p < kContenders; ++p) {
      PatienceSlot& slot = patience[p];
      if (slot.armed.load(std::memory_order_acquire) &&
          step >= slot.deadline.load(std::memory_order_relaxed)) {
        slot.signal.store(true, std::memory_order_release);
      }
    }
    if (step < kWarmupSteps || step % kCheckInterval != 0) return;
    if (table.maybe_grow(
            {.inflight_threshold = kThreshold, .max_stripes = kMaxStripes}) &&
        result.grow_step == 0) {
      result.grow_step = step;
    }
  });

  model.set_hook(&scheduler);
  const auto sched_result = scheduler.run([&](Pid p) {
    aml::pal::Xoshiro256 rng(seed * 977 + p);
    auto& counters = model.counters(p);
    PatienceSlot& slot = patience[p];
    for (std::uint32_t r = 0; r < kRounds; ++r) {
      const std::uint64_t key = zipf(rng);
      const std::uint64_t epoch_at_enter = table.epoch();
      const bool draining_at_enter = table.draining();
      const std::uint64_t r0 = counters.rmrs;
      std::uint64_t tries = 0;
      for (;;) {
        ++tries;
        slot.signal.store(false, std::memory_order_relaxed);
        slot.deadline.store(
            now.load(std::memory_order_relaxed) + kPatienceSteps * tries,
            std::memory_order_relaxed);
        slot.armed.store(true, std::memory_order_release);
        const bool ok = table.enter(p, key, &slot.signal);
        slot.armed.store(false, std::memory_order_release);
        if (ok) break;  // raised-on-free still grants: hand-off wins ties
      }
      table.exit(p, key);
      const std::uint64_t rmr = counters.rmrs - r0;
      if (epoch_at_enter == 0) {
        per_proc[p].pre.push_back(rmr);
        per_proc[p].pre_retries += tries - 1;
      } else if (draining_at_enter) {
        per_proc[p].transition.push_back(rmr);
        per_proc[p].transition_retries += tries - 1;
      } else {
        per_proc[p].post.push_back(rmr);
        per_proc[p].post_retries += tries - 1;
      }
    }
  });
  model.set_hook(nullptr);

  result.steps = sched_result.steps;
  result.final_epoch = table.epoch();
  result.final_stripes = table.stripe_count();
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    result.aborts += table.stripe_stats(s).aborts;
  }
  for (const Phase& ph : per_proc) {
    result.rmrs.pre.insert(result.rmrs.pre.end(), ph.pre.begin(),
                           ph.pre.end());
    result.rmrs.transition.insert(result.rmrs.transition.end(),
                                  ph.transition.begin(), ph.transition.end());
    result.rmrs.post.insert(result.rmrs.post.end(), ph.post.begin(),
                            ph.post.end());
    result.rmrs.pre_retries += ph.pre_retries;
    result.rmrs.transition_retries += ph.transition_retries;
    result.rmrs.post_retries += ph.post_retries;
  }
  return result;
}

double retries_per_passage(std::uint64_t retries, std::size_t passages) {
  return passages == 0 ? 0.0
                       : static_cast<double>(retries) /
                             static_cast<double>(passages);
}

}  // namespace

int main() {
  aml::harness::BenchReport br("table_resize");
  br.config("contenders", std::uint64_t{kContenders})
      .config("initial_stripes", std::uint64_t{kInitialStripes})
      .config("max_stripes", std::uint64_t{kMaxStripes})
      .config("inflight_threshold", std::uint64_t{kThreshold})
      .config("check_interval", kCheckInterval)
      .config("patience_steps", kPatienceSteps)
      .config("keys", std::uint64_t{kKeys})
      .config("theta", kTheta)
      .config("rounds", std::uint64_t{kRounds});

  const RunResult r = run(4242);
  const Summary pre = summarize(r.rmrs.pre);
  const Summary transition = summarize(r.rmrs.transition);
  const Summary post = summarize(r.rmrs.post);
  const double pre_rpp = retries_per_passage(r.rmrs.pre_retries,
                                             r.rmrs.pre.size());
  const double transition_rpp = retries_per_passage(
      r.rmrs.transition_retries, r.rmrs.transition.size());
  const double post_rpp = retries_per_passage(r.rmrs.post_retries,
                                              r.rmrs.post.size());

  Table table("Adaptive stripe grow under Zipf-hot keys — per-passage RMR "
              "(all attempts) by phase");
  table.headers({"phase", "passages", "mean RMR", "p99 RMR", "max RMR",
                 "retries/passage"});
  table.row({"pre-grow", Table::num(std::uint64_t{pre.count}),
             Table::num(pre.mean), Table::num(pre.p99), Table::num(pre.max),
             Table::num(pre_rpp)});
  table.row({"transition", Table::num(std::uint64_t{transition.count}),
             Table::num(transition.mean), Table::num(transition.p99),
             Table::num(transition.max), Table::num(transition_rpp)});
  table.row({"post-grow", Table::num(std::uint64_t{post.count}),
             Table::num(post.mean), Table::num(post.p99),
             Table::num(post.max), Table::num(post_rpp)});

  br.samples("pre_rmrs", r.rmrs.pre)
      .samples("transition_rmrs", r.rmrs.transition)
      .samples("post_rmrs", r.rmrs.post);

  const bool grew = r.final_epoch >= 1;
  const double ratio = (grew && pre.mean > 0 && post.count > 0)
                           ? post.mean / pre.mean
                           : 0.0;
  const bool ratio_ok = grew && post.count > 0 && ratio <= 1.05;
  br.summary("grow_triggered", std::uint64_t{grew ? 1u : 0u})
      .summary("grow_step", r.grow_step)
      .summary("final_epoch", r.final_epoch)
      .summary("final_stripes", std::uint64_t{r.final_stripes})
      .summary("sched_steps", r.steps)
      .summary("aborts", r.aborts)
      .summary("pre_mean_rmr", pre.mean)
      .summary("transition_mean_rmr", transition.mean)
      .summary("post_mean_rmr", post.mean)
      .summary("pre_retries_per_passage", pre_rpp)
      .summary("transition_retries_per_passage", transition_rpp)
      .summary("post_retries_per_passage", post_rpp)
      .summary("post_vs_pre_ratio", ratio)
      .summary("post_no_worse_than_pre",
               std::uint64_t{ratio_ok ? 1u : 0u});
  table.print();
  std::printf(
      "\ngrow: %s at step %llu -> %u stripes (epoch %llu); "
      "post/pre mean RMR = %.3f (%s)\n",
      grew ? "triggered" : "NOT TRIGGERED",
      static_cast<unsigned long long>(r.grow_step), r.final_stripes,
      static_cast<unsigned long long>(r.final_epoch), ratio,
      ratio_ok ? "no worse than pre-grow" : "REGRESSION");
  br.table(table);
  br.write();
  // Contract: the policy must fire on this workload and completing a
  // passage must not cost more RMRs after the grow. Fail loudly so CI smoke
  // catches it.
  return (grew && ratio_ok) ? 0 : 1;
}
