// Section 3, DSM variant: on the DSM cost model, the CC algorithm busy-waits
// on remote go slots (unbounded RMRs — we report the episode count), while
// the announce/spin-bit variant spins only on process-local bits.
#include "aml/harness/report.hpp"
#include "aml/harness/rmr_experiment.hpp"
#include "aml/harness/table.hpp"

using aml::harness::AbortWhen;
using aml::harness::plan_first_k;
using aml::harness::RunResult;
using aml::harness::SinglePassOptions;
using aml::harness::Table;

int main() {
  aml::harness::BenchReport br("dsm_variant");
  br.config("w", std::uint64_t{8});
  Table table("DSM model — CC algorithm vs DSM variant (Section 3)");
  table.headers({"algorithm", "N", "aborters", "remote-spin episodes",
                 "max complete RMR", "mutex"});
  for (std::uint32_t n : {8u, 32u, 128u}) {
    for (std::uint32_t aborters : {0u, n / 4}) {
      SinglePassOptions opts;
      opts.seed = n + aborters;
      if (aborters > 0) {
        opts.plans = plan_first_k(n, aborters, AbortWhen::kOnIdle);
      } else {
        opts.gate_cs = false;
      }
      for (bool dsm_variant : {false, true}) {
        const RunResult r = aml::harness::oneshot_dsm_run(
            n, 8, aml::core::Find::kAdaptive, dsm_variant, opts);
        table.row({dsm_variant ? "DSM variant (announce/spin-bit)"
                               : "CC algorithm on DSM",
                   Table::num(std::uint64_t{n}),
                   Table::num(std::uint64_t{aborters}),
                   Table::num(r.total_remote_spin_episodes()),
                   Table::num(r.complete_summary().max),
                   r.mutex_ok ? "yes" : "NO"});
        br.sample(dsm_variant ? "dsm_remote_spin_episodes"
                              : "cc_on_dsm_remote_spin_episodes",
                  static_cast<double>(r.total_remote_spin_episodes()));
      }
    }
  }
  table.print();
  br.table(table);
  br.write();
  return 0;
}
