// Use case (2) from the paper's introduction: database systems use aborts
// to recover from deadlocks.
//
// Two resources (A and B), each guarded by an AbortableLock. "Transactions"
// acquire the two locks in opposite orders — the textbook deadlock. With
// ordinary locks this wedges; here every transaction gives its second
// acquisition a deadline (a watchdog raises the abort signal), releases what
// it holds on abort, and retries — the standard deadlock-recovery loop a
// database lock manager runs, built directly on the bounded-abort guarantee.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "aml/amlock.hpp"

namespace {

constexpr std::uint32_t kThreads = 4;
constexpr int kTransactionsPerThread = 400;

struct Resource {
  aml::AbortableLock lock{aml::LockConfig{.max_threads = kThreads}};
  std::uint64_t value = 0;  // guarded
};

}  // namespace

int main() {
  Resource res_a, res_b;
  std::atomic<std::uint64_t> committed{0}, recoveries{0};
  std::atomic<bool> watchdog_stop{false};
  std::vector<std::unique_ptr<aml::AbortSignal>> signals;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    signals.push_back(std::make_unique<aml::AbortSignal>());
  }
  std::vector<std::atomic<std::int64_t>> deadline_us(kThreads);

  // A single watchdog thread implements acquisition deadlines: when a
  // worker arms a deadline and it expires, the watchdog raises that
  // worker's signal — exactly the "lock manager timeout" of a database.
  std::thread watchdog([&] {
    while (!watchdog_stop.load(std::memory_order_acquire)) {
      const auto now = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
      for (std::uint32_t t = 0; t < kThreads; ++t) {
        const std::int64_t dl = deadline_us[t].load(std::memory_order_acquire);
        if (dl != 0 && now >= dl) signals[t]->raise();
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Half the threads lock A then B; the other half B then A.
      Resource* first = (t % 2 == 0) ? &res_a : &res_b;
      Resource* second = (t % 2 == 0) ? &res_b : &res_a;
      for (int txn = 0; txn < kTransactionsPerThread; ++txn) {
        for (;;) {
          // First lock: wait unconditionally (no deadlock risk yet).
          first->lock.enter(t);
          // Second lock: bounded wait; abort => deadlock recovery.
          signals[t]->reset();
          const auto dl =
              std::chrono::steady_clock::now().time_since_epoch() +
              std::chrono::microseconds(300);
          deadline_us[t].store(
              std::chrono::duration_cast<std::chrono::microseconds>(dl)
                  .count(),
              std::memory_order_release);
          const bool got = second->lock.enter(t, *signals[t]);
          deadline_us[t].store(0, std::memory_order_release);
          if (got) {
            first->value++;
            second->value++;
            second->lock.exit(t);
            first->lock.exit(t);
            committed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          // Recovery: release everything, back off, retry.
          first->lock.exit(t);
          recoveries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  watchdog_stop.store(true, std::memory_order_release);
  watchdog.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kTransactionsPerThread;
  std::printf("transactions committed: %llu / %llu\n",
              static_cast<unsigned long long>(committed.load()),
              static_cast<unsigned long long>(expected));
  std::printf("deadlock recoveries (abort + retry): %llu\n",
              static_cast<unsigned long long>(recoveries.load()));
  std::printf("resource A value: %llu, resource B value: %llu "
              "(each must equal committed)\n",
              static_cast<unsigned long long>(res_a.value),
              static_cast<unsigned long long>(res_b.value));
  return (committed.load() == expected && res_a.value == expected &&
          res_b.value == expected)
             ? 0
             : 1;
}
