// Use case (3) from the paper's introduction: low-priority processes abort
// their lock acquisition attempts to expedite hand-off to a high-priority
// process.
//
// Background threads continuously contend for a lock; occasionally a
// high-priority thread arrives and broadcasts "yield!" — every waiting
// low-priority thread aborts its attempt (in a bounded number of steps,
// Theorem 2's bounded-abort property), clearing the queue so the
// high-priority thread reaches the critical section quickly. We measure the
// high-priority acquisition latency with and without the yield broadcast.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "aml/amlock.hpp"

namespace {

constexpr std::uint32_t kLowPrio = 6;
constexpr std::uint32_t kThreads = kLowPrio + 1;  // +1 high-priority
constexpr std::uint32_t kHighTid = kLowPrio;

double measure_high_prio_latency(bool broadcast_yield, int rounds) {
  aml::AbortableLock lock(aml::LockConfig{.max_threads = kThreads});
  std::deque<aml::AbortSignal> yield(kLowPrio);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> low_work{0};

  std::vector<std::thread> low;
  for (std::uint32_t t = 0; t < kLowPrio; ++t) {
    low.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        yield[t].reset();
        if (lock.enter(t, yield[t])) {
          low_work.fetch_add(1, std::memory_order_relaxed);
          lock.exit(t);
        }
        // When told to yield we land here quickly and back off a little,
        // leaving the lock to the high-priority thread.
        if (yield[t].raised()) std::this_thread::yield();
      }
    });
  }

  double total_us = 0;
  for (int r = 0; r < rounds; ++r) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (broadcast_yield) {
      for (auto& sig : yield) sig.raise();
    }
    const auto start = std::chrono::steady_clock::now();
    lock.enter(kHighTid);
    const auto got_it = std::chrono::steady_clock::now();
    lock.exit(kHighTid);
    total_us += std::chrono::duration<double, std::micro>(got_it - start)
                    .count();
  }
  stop.store(true, std::memory_order_release);
  for (auto& sig : yield) sig.raise();  // unblock anyone still waiting
  for (auto& t : low) t.join();
  (void)low_work;
  return total_us / rounds;
}

}  // namespace

int main() {
  const double with_yield = measure_high_prio_latency(true, 50);
  const double without_yield = measure_high_prio_latency(false, 50);
  std::printf("high-priority acquisition latency (mean over 50 rounds):\n");
  std::printf("  low-priority waiters abort on request: %8.1f us\n",
              with_yield);
  std::printf("  classic behaviour (no aborting):       %8.1f us\n",
              without_yield);
  std::printf("(the abortable lock lets the queue drain ahead of the "
              "high-priority thread)\n");
  return 0;
}
