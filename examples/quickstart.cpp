// Quickstart: the 60-second tour of aml::AbortableLock.
//
//   * enter(tid, signal) blocks until the lock is acquired, or returns
//     false if `signal` is raised while waiting (bounded abort);
//   * enter(tid) acquires unconditionally;
//   * exit(tid) releases in a bounded number of steps.
//
// Four threads increment a shared counter under the lock; a watchdog aborts
// one thread's attempt to show the abort path.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "aml/amlock.hpp"

int main() {
  constexpr std::uint32_t kThreads = 4;
  aml::AbortableLock lock(aml::LockConfig{.max_threads = kThreads});

  std::uint64_t protected_counter = 0;  // guarded by `lock`
  std::atomic<std::uint64_t> completed{0}, aborted{0};

  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      aml::AbortSignal signal;
      for (int i = 0; i < 10000; ++i) {
        // Give the attempt a deadline: raise the signal from a watchdog if
        // it takes too long (here: pre-raise on a pseudo-random subset to
        // keep the example self-contained).
        signal.reset();
        if ((t + i) % 97 == 0) signal.raise();

        if (lock.enter(t, signal)) {
          ++protected_counter;  // the critical section
          lock.exit(t);
          completed.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Attempt abandoned: do something else with the time.
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::printf("completed passages: %llu\n",
              static_cast<unsigned long long>(completed.load()));
  std::printf("aborted attempts:   %llu\n",
              static_cast<unsigned long long>(aborted.load()));
  std::printf("protected counter:  %llu (must equal completed)\n",
              static_cast<unsigned long long>(protected_counter));
  return protected_counter == completed.load() ? 0 : 1;
}
