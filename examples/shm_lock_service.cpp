// Cross-process named-lock service demo: a shared counter service over
// aml::ipc.
//
// The parent forks three workers, then creates two shm segments: the
// ShmNamedLockTable ("the lock service") and a small ShmArena data segment
// holding the state the locks protect — a deliberately non-atomic shadow
// counter (read, spin, write back: torn under any mutual-exclusion failure),
// per-worker completion counts, and a recovery tally. Workers attach to
// both, lease a session pid each, and increment the shadow counter under the
// named key. Worker 0 crashes (_exit, destructors skipped) while HOLDING the
// lock halfway through; the survivors' deadline-bounded acquires time out
// against the dead holder, their recover_dead() sweep forces the victim's
// exit, and the run completes.
//
// Self-checks at the end (exit nonzero on violation, so the demo doubles as
// an integration test): the shadow counter equals the sum of completed
// increments (mutual exclusion held, including across the recovery), the
// exact expected total landed (no increment lost or duplicated by the forced
// exit), and at least one survivor performed a recovery.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "aml/ipc/shm_arena.hpp"
#include "aml/ipc/shm_table.hpp"
#include "aml/ipc/stat_snapshot.hpp"

using namespace std::chrono_literals;
using aml::ipc::ShmArena;
using aml::ipc::ShmNamedLockTable;
using aml::ipc::ShmTableConfig;

namespace {

constexpr int kWorkers = 3;
constexpr int kIters = 60;
constexpr int kCrashAt = kIters / 2;
constexpr std::uint64_t kKey = 1;  // every worker contends on one name
constexpr std::uint64_t kDataHash = 0xDA7A;

ShmTableConfig service_config() {
  ShmTableConfig cfg;
  cfg.nprocs = 4;   // three workers + headroom for the reclaimed pid
  cfg.stripes = 1;
  return cfg;
}

/// The protected state, in its own tiny arena. Allocation order is the
/// replay contract between parent and workers.
struct SharedState {
  std::atomic<std::uint64_t>* shadow;      // non-atomic-discipline counter
  std::atomic<std::uint64_t>* counts;      // per-worker completed increments
  std::atomic<std::uint64_t>* recoveries;  // recover_dead() wins
  std::atomic<std::uint64_t>* started;     // start barrier

  explicit SharedState(ShmArena& arena)
      : shadow(arena.alloc_array<std::atomic<std::uint64_t>>(1)),
        counts(arena.alloc_array<std::atomic<std::uint64_t>>(kWorkers)),
        recoveries(arena.alloc_array<std::atomic<std::uint64_t>>(1)),
        started(arena.alloc_array<std::atomic<std::uint64_t>>(1)) {}
};

/// Retry-attach until the parent (which forks first, creates second) has
/// sealed the segments.
template <typename Open>
auto attach_with_retry(Open open) -> decltype(open(nullptr)) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  std::string error;
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto handle = open(&error)) return handle;
    std::this_thread::sleep_for(10ms);
  }
  std::fprintf(stderr, "worker attach failed: %s\n", error.c_str());
  return nullptr;
}

int worker_main(int index, const std::string& lock_seg,
                const std::string& data_seg) {
  auto table = attach_with_retry([&](std::string* e) {
    return ShmNamedLockTable::attach(lock_seg, service_config(), e, 1s);
  });
  if (table == nullptr) return 20;
  auto data = attach_with_retry([&](std::string* e) {
    return ShmArena::attach(data_seg, kDataHash, e, 1s);
  });
  if (data == nullptr) return 21;
  SharedState state(*data);
  if (!data->verify_replay(nullptr)) return 22;

  auto session = table->open_session();
  if (!session.has_value()) return 23;

  // Deadline-bounded acquire with the client-side recovery loop: a timeout
  // means the holder is slow *or dead* — sweep for dead holders and retry.
  auto acquire_with_recovery = [&]() {
    for (;;) {
      if (auto guard = session->try_acquire_for(kKey, 100ms)) return guard;
      if (session->recover_dead() > 0) {
        state.recoveries[0].fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  // Start barrier: nobody races ahead before every worker has attached and
  // leased a pid (otherwise fast survivors can finish before the crash and
  // leave nobody around to recover it).
  state.started[0].fetch_add(1, std::memory_order_acq_rel);
  while (state.started[0].load(std::memory_order_acquire) < kWorkers) {
    std::this_thread::sleep_for(1ms);
  }

  for (int i = 0; i < kIters; ++i) {
    const auto guard = acquire_with_recovery();
    if (index == 0 && i == kCrashAt) {
      ::_exit(42);  // crash while holding: no release, no destructors
    }
    // Critical section: a read-modify-write that tears unless mutual
    // exclusion holds across processes (and across the recovery path).
    const std::uint64_t v = state.shadow[0].load(std::memory_order_relaxed);
    for (int spin = 0; spin < 64; ++spin) {
      asm volatile("");
    }
    state.shadow[0].store(v + 1, std::memory_order_relaxed);
    state.counts[index].fetch_add(1, std::memory_order_relaxed);
  }

  // Drain: survivors stay on duty until someone has swept the crashed
  // holder, so the run always exercises the recovery path no matter how the
  // iteration schedules interleaved.
  while (state.recoveries[0].load(std::memory_order_acquire) == 0) {
    if (auto guard = session->try_acquire_for(kKey, 100ms)) {
      std::this_thread::sleep_for(1ms);  // let the crasher make progress
      continue;
    }
    if (session->recover_dead() > 0) {
      state.recoveries[0].fetch_add(1, std::memory_order_relaxed);
    }
  }
  return 0;
}

}  // namespace

int main() {
  const std::string suffix = std::to_string(::getpid());
  const std::string lock_seg = "/aml-demo-locks-" + suffix;
  const std::string data_seg = "/aml-demo-data-" + suffix;

  // Fork first: constructing the table spawns a timer thread, and forking a
  // multithreaded process is asking for an inherited allocator lock.
  pid_t workers[kWorkers];
  for (int w = 0; w < kWorkers; ++w) {
    workers[w] = ::fork();
    if (workers[w] == 0) ::_exit(worker_main(w, lock_seg, data_seg));
  }

  std::string error;
  auto table = ShmNamedLockTable::create(lock_seg, service_config(), &error);
  if (table == nullptr) {
    std::fprintf(stderr, "create(%s): %s\n", lock_seg.c_str(), error.c_str());
    return 1;
  }
  auto data = ShmArena::create(data_seg, 1 << 16, kDataHash, &error);
  if (data == nullptr) {
    std::fprintf(stderr, "create(%s): %s\n", data_seg.c_str(), error.c_str());
    return 1;
  }
  SharedState state(*data);
  data->seal();

  // Reap the crasher first: until it is reaped its pid is a zombie, not
  // ESRCH, and the survivors' death detection correctly waits it out.
  bool ok = true;
  int status = 0;
  ::waitpid(workers[0], &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 42) {
    std::fprintf(stderr, "crasher exited %d, want 42\n", WEXITSTATUS(status));
    ok = false;
  }
  for (int w = 1; w < kWorkers; ++w) {
    ::waitpid(workers[w], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "worker %d exited %d, want 0\n", w,
                   WEXITSTATUS(status));
      ok = false;
    }
  }

  // The service stayed healthy through the crash: the parent can acquire.
  if (auto session = table->open_session()) {
    auto guard = session->try_acquire_for(kKey, 2s);
    if (!guard.has_value()) {
      std::fprintf(stderr, "FAIL: table wedged after recovery\n");
      ok = false;
    }
  }

  const std::uint64_t shadow = state.shadow[0].load();
  const std::uint64_t recoveries = state.recoveries[0].load();
  std::uint64_t completed = 0;
  std::printf("workers=%d iters=%d crash_at=%d\n", kWorkers, kIters,
              kCrashAt);
  for (int w = 0; w < kWorkers; ++w) {
    const std::uint64_t c = state.counts[w].load();
    completed += c;
    std::printf("  worker %d: %llu increments%s\n", w,
                static_cast<unsigned long long>(c),
                w == 0 ? " (crashed holding the lock)" : "");
  }
  std::printf("shadow counter=%llu recoveries=%llu\n",
              static_cast<unsigned long long>(shadow),
              static_cast<unsigned long long>(recoveries));

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kCrashAt) +
      static_cast<std::uint64_t>(kWorkers - 1) * kIters;
  if (shadow != completed) {
    std::fprintf(stderr, "FAIL: shadow %llu != completed %llu "
                         "(mutual exclusion violated)\n",
                 static_cast<unsigned long long>(shadow),
                 static_cast<unsigned long long>(completed));
    ok = false;
  }
  if (shadow != expected) {
    std::fprintf(stderr, "FAIL: shadow %llu != expected %llu "
                         "(lost or duplicated increments)\n",
                 static_cast<unsigned long long>(shadow),
                 static_cast<unsigned long long>(expected));
    ok = false;
  }
  if (recoveries == 0) {
    std::fprintf(stderr, "FAIL: no survivor recovered the dead holder\n");
    ok = false;
  }

  // Post-recovery observability snapshot, straight from the shm segment:
  // the same JSON `tools/aml_stat <segment>` would print. It shows the
  // crashed worker's lease already reclaimed and the recovery dispatch
  // counters the survivors' sweep bumped.
  std::printf("--- aml_stat snapshot ---\n");
  aml::ipc::StatOptions stat_opt;
  stat_opt.ring_tail = 16;
  aml::ipc::write_stat_json(std::cout, *table, stat_opt);

  // AML_DEMO_KEEP=1 leaves the segments behind (names printed below) so an
  // external inspector — CI runs `aml_stat` here — can attach post-mortem.
  if (std::getenv("AML_DEMO_KEEP") != nullptr) {
    std::printf("keeping segments: %s %s\n", lock_seg.c_str(),
                data_seg.c_str());
  } else {
    ShmNamedLockTable::unlink(lock_seg);
    ShmArena::unlink(data_seg);
  }
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
