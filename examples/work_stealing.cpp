// Use case (1) from the paper's introduction: a process blocked on a lock
// abandons its work chunk and switches to one that is not serialized.
//
// A pool of workers drains several task queues, each guarded by an
// AbortableLock. A worker tries the queue it is pointed at; if the lock does
// not come quickly (a timer raises the abort signal), it *aborts* and steals
// from another queue instead of idling in line. A classic (non-abortable)
// lock would pin the worker behind the current holder.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "aml/amlock.hpp"

namespace {

constexpr std::uint32_t kWorkers = 4;
constexpr std::uint32_t kQueues = 3;
constexpr int kTasksPerQueue = 3000;

struct TaskQueue {
  aml::AbortableLock lock{aml::LockConfig{.max_threads = kWorkers}};
  std::deque<int> tasks;  // guarded by lock
};

// A timer thread that raises a signal after a deadline, unless disarmed.
class Deadline {
 public:
  explicit Deadline(aml::AbortSignal& sig, std::chrono::microseconds budget)
      : sig_(sig), deadline_(std::chrono::steady_clock::now() + budget) {}
  void poll() {
    if (!sig_.raised() && std::chrono::steady_clock::now() >= deadline_) {
      sig_.raise();
    }
  }

 private:
  aml::AbortSignal& sig_;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

int main() {
  std::vector<std::unique_ptr<TaskQueue>> queues;
  for (std::uint32_t q = 0; q < kQueues; ++q) {
    queues.push_back(std::make_unique<TaskQueue>());
    for (int i = 0; i < kTasksPerQueue; ++i) {
      queues.back()->tasks.push_back(i);
    }
  }

  std::atomic<std::uint64_t> done{0}, steals{0};
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      std::uint32_t my_queue = t % kQueues;
      aml::AbortSignal signal;
      while (done.load(std::memory_order_relaxed) <
             static_cast<std::uint64_t>(kQueues) * kTasksPerQueue) {
        TaskQueue& tq = *queues[my_queue];
        signal.reset();
        // Try the current queue, but do not wait in line forever: a raised
        // signal bounds the wait (bounded abort, Theorem 2).
        Deadline deadline(signal, std::chrono::microseconds(200));
        bool got = false;
        // Poll-the-deadline pattern: raise() can come from any thread; here
        // the worker polls its own deadline between attempts.
        deadline.poll();
        got = tq.lock.enter(t, signal);
        if (got) {
          bool worked = false;
          if (!tq.tasks.empty()) {
            tq.tasks.pop_front();
            worked = true;
          }
          tq.lock.exit(t);
          if (worked) {
            done.fetch_add(1, std::memory_order_relaxed);
            continue;  // stay on a productive queue
          }
        } else {
          steals.fetch_add(1, std::memory_order_relaxed);
        }
        // Queue contended or empty: steal — move to the next queue.
        my_queue = (my_queue + 1) % kQueues;
      }
    });
  }
  for (auto& w : workers) w.join();

  std::printf("tasks completed: %llu\n",
              static_cast<unsigned long long>(done.load()));
  std::printf("abort-and-steal events: %llu\n",
              static_cast<unsigned long long>(steals.load()));
  return done.load() == static_cast<std::uint64_t>(kQueues) * kTasksPerQueue
             ? 0
             : 1;
}
