// RMR microscope: watch the paper's cost model at work.
//
// Runs the one-shot lock on the RMR-counting CC model under the
// deterministic scheduler and prints, per process, exactly how many remote
// memory references its passage cost — first with no aborts (everything is
// O(1)), then with half the processes aborting (the survivors' hand-offs
// cost O(log_W A)). A compact demonstration of what "RMR complexity" means
// and of the library's measurement substrate. The second run also binds an
// aml::obs::Metrics sink and prints the event stream and counters it
// collected — the observability layer at work.
#include <cstdio>
#include <string>

#include "aml/harness/rmr_experiment.hpp"
#include "aml/harness/table.hpp"
#include "aml/obs/metrics.hpp"

using aml::harness::AbortWhen;
using aml::harness::plan_first_k;
using aml::harness::RunResult;
using aml::harness::SinglePassOptions;
using aml::harness::Table;

namespace {

void show(const std::string& title, const RunResult& r) {
  Table table(title);
  table.headers({"pid", "slot", "outcome", "enter RMRs", "exit RMRs",
                 "total"});
  for (const auto& rec : r.records) {
    table.row({Table::num(std::uint64_t{rec.pid}),
               Table::num(std::uint64_t{rec.slot}),
               rec.acquired ? "entered CS" : "aborted",
               Table::num(rec.rmr_enter), Table::num(rec.rmr_exit),
               Table::num(rec.rmr_total())});
  }
  table.print();
  std::printf("scheduler steps: %llu   mutual exclusion: %s\n\n",
              static_cast<unsigned long long>(r.steps),
              r.mutex_ok ? "preserved" : "VIOLATED");
}

}  // namespace

int main() {
  const std::uint32_t n = 12;
  const std::uint32_t w = 4;

  SinglePassOptions quiet;
  quiet.seed = 1;
  quiet.gate_cs = false;
  show("one-shot lock, N=12, W=4 — nobody aborts (every passage O(1))",
       aml::harness::oneshot_cc_run(n, w, aml::core::Find::kAdaptive, quiet));

  SinglePassOptions stormy;
  stormy.seed = 2;
  stormy.plans = plan_first_k(n, 6, AbortWhen::kOnIdle);
  aml::obs::Metrics metrics(n, /*ring_capacity=*/256);
  stormy.metrics = &metrics;
  show("one-shot lock, N=12, W=4 — slots 1..6 abort mid-wait",
       aml::harness::oneshot_cc_run(n, w, aml::core::Find::kAdaptive,
                                    stormy));

  // What the observability sink saw during the stormy run.
  Table events("obs event ring — the stormy run, in logical-clock order");
  events.headers({"tick", "event", "pid", "slot"});
  for (const auto& e : metrics.ring().snapshot()) {
    events.row({Table::num(e.tick), aml::obs::event_kind_name(e.kind),
                Table::num(std::uint64_t{e.pid}),
                e.slot == aml::obs::kNoSlot
                    ? "-"
                    : Table::num(std::uint64_t{e.slot})});
  }
  events.print();

  const aml::obs::Counters totals = metrics.totals();
  const auto handoff = metrics.handoff().snapshot();
  std::printf(
      "obs counters: %llu acquisitions, %llu aborts, %llu spin-loop checks,\n"
      "%llu FindNext ascents; hand-off latency (logical ticks): "
      "p50<=%llu, max<=%llu over %llu hand-offs\n\n",
      static_cast<unsigned long long>(totals.acquisitions),
      static_cast<unsigned long long>(totals.aborts),
      static_cast<unsigned long long>(totals.spin_iterations),
      static_cast<unsigned long long>(totals.findnext_ascents),
      static_cast<unsigned long long>(handoff.p50),
      static_cast<unsigned long long>(handoff.max),
      static_cast<unsigned long long>(handoff.count));

  std::printf(
      "Reading the tables: slot 0 acquires instantly; in the second run its\n"
      "exit pays the tree walk that skips the 6 abandoned slots — about\n"
      "log_W(A) node reads — while every other completer still pays O(1).\n");
  return 0;
}
