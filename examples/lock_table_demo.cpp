// NamedLockTable demo: a miniature account service.
//
// A pool of worker threads transfers money between named accounts. Every
// transfer locks both account keys atomically (acquire_all: distinct stripes
// in ascending order — deadlock-free), every audit read uses a deadline so a
// slow stripe cannot stall it, and sessions are opened per burst to show the
// thread-id leasing that makes the table usable from pools. At the end the
// demo self-checks conservation of the total balance and prints the
// per-stripe observability rollup (the instrumented flavor gives each stripe
// its own sink). Exits nonzero on any invariant violation, so it doubles as
// an end-to-end integration test.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "aml/amlock.hpp"

using namespace std::chrono_literals;

int main() {
  constexpr std::uint32_t kWorkers = 8;
  constexpr std::uint32_t kAccounts = 24;
  constexpr std::int64_t kInitial = 1000;
  constexpr int kTransfersPerWorker = 400;

  aml::table::ObservedNamedLockTable table(
      {.max_threads = kWorkers, .stripes = 8});
  std::vector<std::int64_t> balance(kAccounts, kInitial);
  std::atomic<std::uint64_t> transfers{0};
  std::atomic<std::uint64_t> audits{0};
  std::atomic<std::uint64_t> audit_timeouts{0};
  std::atomic<bool> negative_seen{false};

  auto account_key = [](std::uint64_t i) {
    return std::string("acct:") + std::to_string(i);
  };

  aml::pal::run_threads(kWorkers, [&](std::uint32_t w) {
    aml::pal::Xoshiro256 rng(w * 2654435761u + 3);
    aml::pal::ZipfDistribution zipf(kAccounts, 0.9);  // hot accounts
    int done = 0;
    while (done < kTransfersPerWorker) {
      // A fresh session per burst: the registry recycles dense ids, the way
      // a pooled executor would use the table.
      auto session = table.open_session();
      const int burst = 1 + static_cast<int>(rng.below(32));
      for (int b = 0; b < burst && done < kTransfersPerWorker; ++b) {
        const std::uint64_t from = zipf(rng);
        std::uint64_t to = zipf(rng);
        if (to == from) to = (to + 1) % kAccounts;
        if (rng.chance_ppm(100000)) {
          // Audit: deadline-bounded single-key read of a hot account.
          const std::uint64_t who = zipf(rng);
          if (auto g = session.try_acquire_for(
                  std::string_view(account_key(who)), 500us)) {
            if (balance[who] + static_cast<std::int64_t>(
                                   kAccounts * kInitial) < 0) {
              negative_seen.store(true);
            }
            audits.fetch_add(1, std::memory_order_relaxed);
          } else {
            audit_timeouts.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        // Transfer: both accounts atomically, budget sliced so a jam cannot
        // stall the worker (deadline-abort as deadlock avoidance).
        std::vector<std::string> keys{account_key(from), account_key(to)};
        std::vector<std::string_view> views{keys[0], keys[1]};
        auto tx = session.try_acquire_all_for(views, 50ms, 2ms);
        if (!tx) continue;  // budget exhausted; drop this transfer
        const std::int64_t amount =
            static_cast<std::int64_t>(rng.below(100));
        balance[from] -= amount;
        balance[to] += amount;
        transfers.fetch_add(1, std::memory_order_relaxed);
        ++done;
      }
    }
  });

  std::int64_t total = 0;
  for (const std::int64_t b : balance) total += b;
  const std::int64_t expected =
      static_cast<std::int64_t>(kAccounts) * kInitial;

  std::printf("workers=%u accounts=%u stripes=%u\n", kWorkers, kAccounts,
              table.stripe_count());
  std::printf("transfers=%llu audits=%llu audit_timeouts=%llu\n",
              static_cast<unsigned long long>(transfers.load()),
              static_cast<unsigned long long>(audits.load()),
              static_cast<unsigned long long>(audit_timeouts.load()));
  std::printf("total balance: %lld (expected %lld)\n",
              static_cast<long long>(total),
              static_cast<long long>(expected));

  std::printf("\nper-stripe rollup (acquisitions / aborts / mean handoff):\n");
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    const auto totals = table.stripe_metrics(s).totals();
    const auto handoff = table.stripe_metrics(s).handoff().snapshot();
    std::printf("  stripe %u: %8llu acq  %8llu abort  %8.1f ticks\n", s,
                static_cast<unsigned long long>(totals.acquisitions),
                static_cast<unsigned long long>(totals.aborts),
                handoff.count != 0 ? handoff.mean : 0.0);
  }

  bool ok = true;
  if (total != expected) {
    std::printf("FAIL: balance not conserved\n");
    ok = false;
  }
  if (negative_seen.load()) {
    std::printf("FAIL: audit observed torn state\n");
    ok = false;
  }
  if (transfers.load() == 0) {
    std::printf("FAIL: no transfer completed\n");
    ok = false;
  }
  if (table.live_sessions() != 0) {
    std::printf("FAIL: leaked sessions\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
