// Timed and standard-compatible lock APIs built on the abortable lock's
// bounded-abort guarantee:
//
//   * TimedAbortableLock::try_enter_for — acquire-with-deadline, the call
//     every database lock manager and RPC handler wants;
//   * StdAbortableMutex — drop-in for std::lock_guard / std::unique_lock.
//
// The demo holds the lock from one thread and shows timed attempts failing
// within their budget, then succeeding once released; finally a std::
// scoped section runs with plain standard-library syntax.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "aml/amlock.hpp"

using namespace std::chrono_literals;

int main() {
  // --- timed attempts -----------------------------------------------------
  aml::TimedAbortableLock timed(aml::LockConfig{.max_threads = 2});
  timed.enter(0);  // thread id 0 holds the lock

  std::thread contender([&] {
    const auto t0 = std::chrono::steady_clock::now();
    const bool first = timed.try_enter_for(1, 5ms);
    const auto waited =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("while held:  try_enter_for(5ms) -> %s after %.1f ms\n",
                first ? "acquired (?!)" : "timed out", waited);
  });
  contender.join();

  timed.exit(0);
  std::thread winner([&] {
    const bool second = timed.try_enter_for(1, 5ms);
    std::printf("after exit:  try_enter_for(5ms) -> %s\n",
                second ? "acquired" : "timed out (?!)");
    if (second) timed.exit(1);
  });
  winner.join();

  // --- standard-library syntax --------------------------------------------
  aml::StdAbortableMutex mutex(4);
  std::uint64_t shared = 0;
  std::thread a([&] {
    for (int i = 0; i < 100000; ++i) {
      std::lock_guard<aml::StdAbortableMutex> guard(mutex);
      ++shared;
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 100000; ++i) {
      std::unique_lock<aml::StdAbortableMutex> ul(mutex);
      ++shared;
    }
  });
  a.join();
  b.join();
  std::printf("std-guard protected counter: %llu (expected 200000)\n",
              static_cast<unsigned long long>(shared));
  return shared == 200000 ? 0 : 1;
}
