file(REMOVE_RECURSE
  "CMakeFiles/timed_lock.dir/timed_lock.cpp.o"
  "CMakeFiles/timed_lock.dir/timed_lock.cpp.o.d"
  "timed_lock"
  "timed_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timed_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
