# Empty compiler generated dependencies file for timed_lock.
# This may be replaced when dependencies are built.
