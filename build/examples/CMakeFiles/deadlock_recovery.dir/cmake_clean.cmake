file(REMOVE_RECURSE
  "CMakeFiles/deadlock_recovery.dir/deadlock_recovery.cpp.o"
  "CMakeFiles/deadlock_recovery.dir/deadlock_recovery.cpp.o.d"
  "deadlock_recovery"
  "deadlock_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
