file(REMOVE_RECURSE
  "CMakeFiles/rmr_microscope.dir/rmr_microscope.cpp.o"
  "CMakeFiles/rmr_microscope.dir/rmr_microscope.cpp.o.d"
  "rmr_microscope"
  "rmr_microscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmr_microscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
