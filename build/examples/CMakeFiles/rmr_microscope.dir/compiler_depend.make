# Empty compiler generated dependencies file for rmr_microscope.
# This may be replaced when dependencies are built.
