# Empty dependencies file for priority_handoff.
# This may be replaced when dependencies are built.
