file(REMOVE_RECURSE
  "CMakeFiles/priority_handoff.dir/priority_handoff.cpp.o"
  "CMakeFiles/priority_handoff.dir/priority_handoff.cpp.o.d"
  "priority_handoff"
  "priority_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
