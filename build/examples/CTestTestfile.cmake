# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;aml_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_work_stealing "/root/repo/build/examples/work_stealing")
set_tests_properties(example_work_stealing PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;aml_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_priority_handoff "/root/repo/build/examples/priority_handoff")
set_tests_properties(example_priority_handoff PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;aml_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deadlock_recovery "/root/repo/build/examples/deadlock_recovery")
set_tests_properties(example_deadlock_recovery PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;aml_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rmr_microscope "/root/repo/build/examples/rmr_microscope")
set_tests_properties(example_rmr_microscope PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;16;aml_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timed_lock "/root/repo/build/examples/timed_lock")
set_tests_properties(example_timed_lock PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;17;aml_example;/root/repo/examples/CMakeLists.txt;0;")
