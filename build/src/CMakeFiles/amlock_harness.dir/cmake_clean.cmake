file(REMOVE_RECURSE
  "CMakeFiles/amlock_harness.dir/aml/harness/audit.cpp.o"
  "CMakeFiles/amlock_harness.dir/aml/harness/audit.cpp.o.d"
  "CMakeFiles/amlock_harness.dir/aml/harness/stats.cpp.o"
  "CMakeFiles/amlock_harness.dir/aml/harness/stats.cpp.o.d"
  "CMakeFiles/amlock_harness.dir/aml/harness/table.cpp.o"
  "CMakeFiles/amlock_harness.dir/aml/harness/table.cpp.o.d"
  "CMakeFiles/amlock_harness.dir/aml/harness/workload.cpp.o"
  "CMakeFiles/amlock_harness.dir/aml/harness/workload.cpp.o.d"
  "libamlock_harness.a"
  "libamlock_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amlock_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
