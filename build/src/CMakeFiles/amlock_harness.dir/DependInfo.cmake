
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aml/harness/audit.cpp" "src/CMakeFiles/amlock_harness.dir/aml/harness/audit.cpp.o" "gcc" "src/CMakeFiles/amlock_harness.dir/aml/harness/audit.cpp.o.d"
  "/root/repo/src/aml/harness/stats.cpp" "src/CMakeFiles/amlock_harness.dir/aml/harness/stats.cpp.o" "gcc" "src/CMakeFiles/amlock_harness.dir/aml/harness/stats.cpp.o.d"
  "/root/repo/src/aml/harness/table.cpp" "src/CMakeFiles/amlock_harness.dir/aml/harness/table.cpp.o" "gcc" "src/CMakeFiles/amlock_harness.dir/aml/harness/table.cpp.o.d"
  "/root/repo/src/aml/harness/workload.cpp" "src/CMakeFiles/amlock_harness.dir/aml/harness/workload.cpp.o" "gcc" "src/CMakeFiles/amlock_harness.dir/aml/harness/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
