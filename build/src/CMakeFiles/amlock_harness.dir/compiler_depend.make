# Empty compiler generated dependencies file for amlock_harness.
# This may be replaced when dependencies are built.
