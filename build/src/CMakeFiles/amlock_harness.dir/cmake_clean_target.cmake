file(REMOVE_RECURSE
  "libamlock_harness.a"
)
