file(REMOVE_RECURSE
  "CMakeFiles/bench_native_abort.dir/bench_native_abort.cpp.o"
  "CMakeFiles/bench_native_abort.dir/bench_native_abort.cpp.o.d"
  "bench_native_abort"
  "bench_native_abort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_abort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
