# Empty dependencies file for bench_table1_adaptive.
# This may be replaced when dependencies are built.
