file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_noabort.dir/bench_table1_noabort.cpp.o"
  "CMakeFiles/bench_table1_noabort.dir/bench_table1_noabort.cpp.o.d"
  "bench_table1_noabort"
  "bench_table1_noabort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_noabort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
