# Empty compiler generated dependencies file for bench_table1_worstcase.
# This may be replaced when dependencies are built.
