file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_worstcase.dir/bench_table1_worstcase.cpp.o"
  "CMakeFiles/bench_table1_worstcase.dir/bench_table1_worstcase.cpp.o.d"
  "bench_table1_worstcase"
  "bench_table1_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
