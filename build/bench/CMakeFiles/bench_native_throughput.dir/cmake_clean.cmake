file(REMOVE_RECURSE
  "CMakeFiles/bench_native_throughput.dir/bench_native_throughput.cpp.o"
  "CMakeFiles/bench_native_throughput.dir/bench_native_throughput.cpp.o.d"
  "bench_native_throughput"
  "bench_native_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
