# Empty dependencies file for bench_headline_scaling.
# This may be replaced when dependencies are built.
