file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_scaling.dir/bench_headline_scaling.cpp.o"
  "CMakeFiles/bench_headline_scaling.dir/bench_headline_scaling.cpp.o.d"
  "bench_headline_scaling"
  "bench_headline_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
