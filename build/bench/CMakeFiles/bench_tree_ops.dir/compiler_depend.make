# Empty compiler generated dependencies file for bench_tree_ops.
# This may be replaced when dependencies are built.
