file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_adaptive.dir/bench_fig4_adaptive.cpp.o"
  "CMakeFiles/bench_fig4_adaptive.dir/bench_fig4_adaptive.cpp.o.d"
  "bench_fig4_adaptive"
  "bench_fig4_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
