# Empty dependencies file for bench_fig4_adaptive.
# This may be replaced when dependencies are built.
