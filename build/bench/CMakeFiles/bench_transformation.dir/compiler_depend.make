# Empty compiler generated dependencies file for bench_transformation.
# This may be replaced when dependencies are built.
