file(REMOVE_RECURSE
  "CMakeFiles/bench_transformation.dir/bench_transformation.cpp.o"
  "CMakeFiles/bench_transformation.dir/bench_transformation.cpp.o.d"
  "bench_transformation"
  "bench_transformation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transformation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
