file(REMOVE_RECURSE
  "CMakeFiles/bench_dsm_variant.dir/bench_dsm_variant.cpp.o"
  "CMakeFiles/bench_dsm_variant.dir/bench_dsm_variant.cpp.o.d"
  "bench_dsm_variant"
  "bench_dsm_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsm_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
