# Empty compiler generated dependencies file for bench_dsm_variant.
# This may be replaced when dependencies are built.
