# Empty dependencies file for longlived_test.
# This may be replaced when dependencies are built.
