
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/longlived/longlived_models_test.cpp" "tests/CMakeFiles/longlived_test.dir/longlived/longlived_models_test.cpp.o" "gcc" "tests/CMakeFiles/longlived_test.dir/longlived/longlived_models_test.cpp.o.d"
  "/root/repo/tests/longlived/longlived_native_test.cpp" "tests/CMakeFiles/longlived_test.dir/longlived/longlived_native_test.cpp.o" "gcc" "tests/CMakeFiles/longlived_test.dir/longlived/longlived_native_test.cpp.o.d"
  "/root/repo/tests/longlived/longlived_sched_test.cpp" "tests/CMakeFiles/longlived_test.dir/longlived/longlived_sched_test.cpp.o" "gcc" "tests/CMakeFiles/longlived_test.dir/longlived/longlived_sched_test.cpp.o.d"
  "/root/repo/tests/longlived/spin_pool_test.cpp" "tests/CMakeFiles/longlived_test.dir/longlived/spin_pool_test.cpp.o" "gcc" "tests/CMakeFiles/longlived_test.dir/longlived/spin_pool_test.cpp.o.d"
  "/root/repo/tests/longlived/versioned_space_test.cpp" "tests/CMakeFiles/longlived_test.dir/longlived/versioned_space_test.cpp.o" "gcc" "tests/CMakeFiles/longlived_test.dir/longlived/versioned_space_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amlock_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
