file(REMOVE_RECURSE
  "CMakeFiles/longlived_test.dir/longlived/longlived_models_test.cpp.o"
  "CMakeFiles/longlived_test.dir/longlived/longlived_models_test.cpp.o.d"
  "CMakeFiles/longlived_test.dir/longlived/longlived_native_test.cpp.o"
  "CMakeFiles/longlived_test.dir/longlived/longlived_native_test.cpp.o.d"
  "CMakeFiles/longlived_test.dir/longlived/longlived_sched_test.cpp.o"
  "CMakeFiles/longlived_test.dir/longlived/longlived_sched_test.cpp.o.d"
  "CMakeFiles/longlived_test.dir/longlived/spin_pool_test.cpp.o"
  "CMakeFiles/longlived_test.dir/longlived/spin_pool_test.cpp.o.d"
  "CMakeFiles/longlived_test.dir/longlived/versioned_space_test.cpp.o"
  "CMakeFiles/longlived_test.dir/longlived/versioned_space_test.cpp.o.d"
  "longlived_test"
  "longlived_test.pdb"
  "longlived_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longlived_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
