
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tree/geometry_test.cpp" "tests/CMakeFiles/tree_test.dir/tree/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/tree_test.dir/tree/geometry_test.cpp.o.d"
  "/root/repo/tests/tree/tree_concurrent_test.cpp" "tests/CMakeFiles/tree_test.dir/tree/tree_concurrent_test.cpp.o" "gcc" "tests/CMakeFiles/tree_test.dir/tree/tree_concurrent_test.cpp.o.d"
  "/root/repo/tests/tree/tree_equivalence_test.cpp" "tests/CMakeFiles/tree_test.dir/tree/tree_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/tree_test.dir/tree/tree_equivalence_test.cpp.o.d"
  "/root/repo/tests/tree/tree_invariant_test.cpp" "tests/CMakeFiles/tree_test.dir/tree/tree_invariant_test.cpp.o" "gcc" "tests/CMakeFiles/tree_test.dir/tree/tree_invariant_test.cpp.o.d"
  "/root/repo/tests/tree/tree_sequential_test.cpp" "tests/CMakeFiles/tree_test.dir/tree/tree_sequential_test.cpp.o" "gcc" "tests/CMakeFiles/tree_test.dir/tree/tree_sequential_test.cpp.o.d"
  "/root/repo/tests/tree/tree_wide_test.cpp" "tests/CMakeFiles/tree_test.dir/tree/tree_wide_test.cpp.o" "gcc" "tests/CMakeFiles/tree_test.dir/tree/tree_wide_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amlock_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
