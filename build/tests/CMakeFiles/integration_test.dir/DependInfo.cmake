
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/adapters_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/adapters_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/adapters_test.cpp.o.d"
  "/root/repo/tests/integration/audit_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/audit_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/audit_test.cpp.o.d"
  "/root/repo/tests/integration/harness_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/harness_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/harness_test.cpp.o.d"
  "/root/repo/tests/integration/native_stress_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/native_stress_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/native_stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amlock_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
