file(REMOVE_RECURSE
  "CMakeFiles/model_test.dir/model/counting_cc_test.cpp.o"
  "CMakeFiles/model_test.dir/model/counting_cc_test.cpp.o.d"
  "CMakeFiles/model_test.dir/model/counting_dsm_test.cpp.o"
  "CMakeFiles/model_test.dir/model/counting_dsm_test.cpp.o.d"
  "CMakeFiles/model_test.dir/model/model_conformance_test.cpp.o"
  "CMakeFiles/model_test.dir/model/model_conformance_test.cpp.o.d"
  "CMakeFiles/model_test.dir/model/native_test.cpp.o"
  "CMakeFiles/model_test.dir/model/native_test.cpp.o.d"
  "CMakeFiles/model_test.dir/model/scheduled_model_test.cpp.o"
  "CMakeFiles/model_test.dir/model/scheduled_model_test.cpp.o.d"
  "model_test"
  "model_test.pdb"
  "model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
