
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/counting_cc_test.cpp" "tests/CMakeFiles/model_test.dir/model/counting_cc_test.cpp.o" "gcc" "tests/CMakeFiles/model_test.dir/model/counting_cc_test.cpp.o.d"
  "/root/repo/tests/model/counting_dsm_test.cpp" "tests/CMakeFiles/model_test.dir/model/counting_dsm_test.cpp.o" "gcc" "tests/CMakeFiles/model_test.dir/model/counting_dsm_test.cpp.o.d"
  "/root/repo/tests/model/model_conformance_test.cpp" "tests/CMakeFiles/model_test.dir/model/model_conformance_test.cpp.o" "gcc" "tests/CMakeFiles/model_test.dir/model/model_conformance_test.cpp.o.d"
  "/root/repo/tests/model/native_test.cpp" "tests/CMakeFiles/model_test.dir/model/native_test.cpp.o" "gcc" "tests/CMakeFiles/model_test.dir/model/native_test.cpp.o.d"
  "/root/repo/tests/model/scheduled_model_test.cpp" "tests/CMakeFiles/model_test.dir/model/scheduled_model_test.cpp.o" "gcc" "tests/CMakeFiles/model_test.dir/model/scheduled_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amlock_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
