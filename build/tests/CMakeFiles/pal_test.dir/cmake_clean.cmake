file(REMOVE_RECURSE
  "CMakeFiles/pal_test.dir/pal/bits_test.cpp.o"
  "CMakeFiles/pal_test.dir/pal/bits_test.cpp.o.d"
  "CMakeFiles/pal_test.dir/pal/cache_test.cpp.o"
  "CMakeFiles/pal_test.dir/pal/cache_test.cpp.o.d"
  "CMakeFiles/pal_test.dir/pal/rng_test.cpp.o"
  "CMakeFiles/pal_test.dir/pal/rng_test.cpp.o.d"
  "CMakeFiles/pal_test.dir/pal/threading_test.cpp.o"
  "CMakeFiles/pal_test.dir/pal/threading_test.cpp.o.d"
  "pal_test"
  "pal_test.pdb"
  "pal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
