
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_native_test.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_native_test.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_native_test.cpp.o.d"
  "/root/repo/tests/baselines/baselines_sched_test.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_sched_test.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_sched_test.cpp.o.d"
  "/root/repo/tests/baselines/yang_anderson_test.cpp" "tests/CMakeFiles/baselines_test.dir/baselines/yang_anderson_test.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/yang_anderson_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amlock_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
