file(REMOVE_RECURSE
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_adversarial_test.cpp.o"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_adversarial_test.cpp.o.d"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_basic_test.cpp.o"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_basic_test.cpp.o.d"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_dsm_test.cpp.o"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_dsm_test.cpp.o.d"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_fcfs_test.cpp.o"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_fcfs_test.cpp.o.d"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_responsibility_test.cpp.o"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_responsibility_test.cpp.o.d"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_sched_test.cpp.o"
  "CMakeFiles/oneshot_test.dir/oneshot/oneshot_sched_test.cpp.o.d"
  "oneshot_test"
  "oneshot_test.pdb"
  "oneshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
