# Empty dependencies file for oneshot_test.
# This may be replaced when dependencies are built.
