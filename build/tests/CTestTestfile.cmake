# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pal_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/oneshot_test[1]_include.cmake")
include("/root/repo/build/tests/longlived_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
