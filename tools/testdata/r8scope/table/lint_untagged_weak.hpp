// amlint fixture: R8 must bite on its own. The only violation here is a
// sub-seq_cst atomic op in a table/ path with no AML_V_EDGE / AML_X_EDGE /
// AML_RELAXED annotation anywhere near it — invisible to every other rule
// (the order IS named, so R1 is satisfied; no blocking, no atomic arrays,
// not model-gated, not shm-placed).
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct UntaggedWeak {
  std::atomic<std::uint64_t> word{0};

  std::uint64_t peek() {
    return word.load(std::memory_order_acquire);
  }

  // A mis-kinded annotation must bite too: a V (release-side) tag cannot
  // justify a pure acquire load.
  std::uint64_t peek_mistagged() {
    return word.load(std::memory_order_acquire);  // AML_V_EDGE(fixture.wrongkind)
  }
};

}  // namespace fixture
