// amlint fixture: deliberate R6 violation, and ONLY an R6 violation — the
// sink emits on_enter but never a terminal hook (no on_granted+on_exit pair,
// no on_abort), so every passage this lock opens is invisible to the
// metrics' outcome counters. This is the bug shape R6 exists for (the
// amortized stripe path that zeroed its acquisition counts): a WILL_FAIL
// ctest proves the rule bites on its own, with no other rule involved.
#pragma once

#include <cstdint>

namespace lintbad {

struct Sink {
  void on_enter(std::uint32_t pid, std::uint32_t slot);
  void on_granted(std::uint32_t pid, std::uint32_t slot);
  void on_exit(std::uint32_t pid, std::uint32_t slot);
  void on_abort(std::uint32_t pid, std::uint32_t slot);
};

class HalfInstrumentedLock {
 public:
  bool enter(std::uint32_t pid) {
    obs_.on_enter(pid, 0);  // R6: opened through obs_ ...
    return try_take(pid);   // ... but no path ever terminates through it
  }

  void exit(std::uint32_t pid) {
    release(pid);  // the on_exit that should be here was forgotten
  }

 private:
  bool try_take(std::uint32_t pid);
  void release(std::uint32_t pid);

  Sink obs_;
};

}  // namespace lintbad
