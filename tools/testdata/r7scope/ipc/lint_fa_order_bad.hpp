// amlint fixture: deliberate R7 violations, and ONLY R7 violations — a
// journaled phase store weaker than seq_cst, and a stamping CAS issued
// before its recoverable-F&A announcement store in the same function. The
// first breaks the single-total-order assumption the recovery decision
// predicate leans on; the second re-opens exactly the unjournalable window
// the announce-then-stamp protocol closes. A WILL_FAIL ctest proves the
// rule bites on its own, with no other rule involved (explicit memory
// orders everywhere keep R1 quiet; no shm region markers, no hooks).
#pragma once

#include <atomic>
#include <cstdint>

namespace lintbad {

struct Journal {
  std::atomic<std::uint64_t> phase;
  std::atomic<std::uint64_t> ann_desc;
};

class SloppyRecoverableFa {
 public:
  void journal_phase(std::uint64_t p) {
    my_.phase.store(p, std::memory_order_relaxed);  // R7: not seq_cst
  }

  bool join(std::atomic<std::uint64_t>& word) {
    std::uint64_t w = word.load(std::memory_order_seq_cst);
    // R7: the stamping CAS runs before the announcement store — a death
    // between the two leaves no journal to decide the op by.
    if (!word.compare_exchange_strong(w, w + 1,
                                      std::memory_order_seq_cst)) {
      return false;
    }
    my_.ann_desc.store(1, std::memory_order_seq_cst);
    return true;
  }

 private:
  Journal my_;
};

}  // namespace lintbad
