// amlint R5 fixture: deliberate violations of the shm-placement rule, and
// ONLY that rule — every atomic op names its order and nothing here is in a
// hot-path or model-gated directory, so a finding from this file proves the
// ipc/ AML_SHM_REGION scope specifically still bites.
//
// Each violation below would be a real cross-process bug: the segment maps
// at a different base in every process, so absolute pointers, references,
// and vtable pointers stored in it dangle everywhere but the writer.
#pragma once

#include <atomic>
#include <cstdint>

namespace amlint_testdata {

// AML_SHM_REGION_BEGIN
struct BadShmNode {
  std::atomic<std::uint64_t> word;  // fine: atomics place in shm
  std::uint64_t* next;              // VIOLATION: raw pointer member
  const std::uint64_t& origin;      // VIOLATION: reference member
  virtual void poke();              // VIOLATION: vtable pointer in shm
};
// AML_SHM_REGION_END

// Outside the markers the same declarations are not R5's business (they are
// ordinary process-local code): no finding may fire here.
struct LocalOnlyNode {
  std::uint64_t* next = nullptr;
  virtual ~LocalOnlyNode() = default;
};

}  // namespace amlint_testdata
