// Deliberate amlint violation — test fixture only, never included by the
// build. This file lives under a baselines/ directory with a "jayanti" name
// so it falls inside R4's extended model-gated scope (core/ plus
// baselines/jayanti*); the dedicated CI test runs amlint over
// tools/testdata/r4scope alone (rel paths keep the baselines/ prefix) and
// asserts it FAILS, proving the scope extension bites. Only R4 applies here:
// every atomic op spells its memory order (no R1), and baselines/ is not a
// hot path (no R2/R3).
#pragma once

#include <atomic>
#include <cstdint>

namespace amlint_testdata {

class BadJayantiNode {
 public:
  void release() { status_.store(1, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> status_{0};  // R4: plain atomic, model-gated
};

}  // namespace amlint_testdata
