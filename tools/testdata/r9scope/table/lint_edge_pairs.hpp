// amlint fixture: R9 must bite on its own. Every op here is correctly
// R8-tagged (compatible kind, adjacent comment), so without --edges the file
// is clean; against testdata/r9scope/edges.toml the manifest cross-check
// finds three violations:
//   * fixture.unpaired has a release-side (V) tag but no acquire side,
//   * fixture.unknown is tagged in code but not declared in the manifest,
//   * fixture.ghost is declared in the manifest but never tagged in code.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct EdgePairs {
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};

  void publish() {
    a.store(1, std::memory_order_release);  // AML_V_EDGE(fixture.unpaired)
  }

  std::uint64_t observe() {
    return b.load(std::memory_order_acquire);  // AML_X_EDGE(fixture.unknown)
  }
};

}  // namespace fixture
