// Deliberate amlint violations — test fixture only, never included by the
// build. The CI lint test runs amlint over tools/testdata and asserts it
// FAILS, proving the rules actually bite:
//   R1: implicit-seq_cst atomic ops (no std::memory_order argument)
//   R2: a mutex in a path amlint treats as hot (this file is under core/)
//   R3: an unpadded vector of atomics
//   R4: plain std::atomic state in model-gated code
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace amlint_testdata {

class BadCounter {
 public:
  void hit() {
    count_.fetch_add(1);                 // R1: implicit seq_cst
    last_ = count_.load();               // R1: implicit seq_cst
    ready_.store(true);                  // R1: implicit seq_cst
  }

  void locked_hit() {
    std::lock_guard<std::mutex> lk(mu_); // R2: blocking in a hot path
    ++last_;
  }

 private:
  std::atomic<std::uint64_t> count_{0};  // R4: plain atomic in core code
  std::atomic<bool> ready_{false};       // R4
  std::vector<std::atomic<int>> slots_;  // R3: unpadded atomic array
  std::mutex mu_;                        // R2
  std::uint64_t last_ = 0;
};

}  // namespace amlint_testdata
