// aml_replay — replay and explore the registered model-checking workloads.
//
//   aml_replay --list
//       Print the workload registry (name, nprocs, description).
//
//   aml_replay --replay <trace-file>
//       Load an aml-trace-v1 file (as emitted by the explorer on a failing
//       execution or by the scheduler on a fatal liveness violation), rebuild
//       the workload it names from the registry, and drive one execution
//       through exactly the recorded choice sequence. Exit 0 when the replay
//       reproduces the recorded failure (or the trace recorded none and the
//       replay is clean), 3 when it does not reproduce.
//
//   aml_replay --explore <workload> [--dpor] [--bound N] [--max N]
//              [--trace-dir DIR]
//       Run the explorer over a registered workload. Exit 0 when no failing
//       execution was found, 4 when one was (its trace path is printed) —
//       the CI nightly deep-exploration job is built on this.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "aml/analysis/trace.hpp"
#include "aml/analysis/workloads.hpp"
#include "aml/sched/explorer.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: aml_replay --list\n"
         "       aml_replay --replay <trace-file>\n"
         "       aml_replay --explore <workload> [--dpor] [--bound N]\n"
         "                  [--max N] [--trace-dir DIR]\n";
  return 2;
}

int list_workloads() {
  for (const auto& w : aml::analysis::workload_registry()) {
    std::cout << w.name << " (nprocs=" << static_cast<unsigned>(w.nprocs)
              << ")\n    " << w.description << "\n";
  }
  return 0;
}

int replay(const std::string& path) {
  aml::analysis::TraceFile trace;
  std::string error;
  if (!aml::analysis::load_trace(path, &trace, &error)) {
    std::cerr << "aml_replay: cannot load " << path << ": " << error << "\n";
    return 2;
  }
  const auto* w = aml::analysis::find_workload(trace.workload);
  if (w == nullptr) {
    std::cerr << "aml_replay: trace names unknown workload '" << trace.workload
              << "' (see --list)\n";
    return 2;
  }
  std::cout << "replaying " << path << ": workload=" << trace.workload
            << " nprocs=" << static_cast<unsigned>(trace.nprocs) << " steps="
            << trace.choices.size() << "\n";
  if (!trace.reason.empty()) {
    std::cout << "recorded failure: " << trace.reason << "\n";
  }
  aml::sched::ExploreConfig config;
  config.nprocs = w->nprocs;
  config.workload = w->name;
  config.replay_choices = trace.choices;
  const auto stats = aml::sched::explore(config, w->factory);
  if (stats.failed) {
    std::cout << "replay failed as recorded: " << stats.failure << "\n";
    return 0;
  }
  std::cout << "replay completed cleanly\n";
  return trace.reason.empty() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::string operand;
  aml::sched::ExploreConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list" || arg == "--replay" || arg == "--explore") {
      mode = arg;
      if (arg != "--list") {
        if (i + 1 >= argc) return usage();
        operand = argv[++i];
      }
    } else if (arg == "--dpor") {
      config.reduction = aml::sched::Reduction::kDpor;
    } else if (arg == "--bound" && i + 1 < argc) {
      config.preemption_bound =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--max" && i + 1 < argc) {
      config.max_executions = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--trace-dir" && i + 1 < argc) {
      config.trace_dir = argv[++i];
    } else {
      return usage();
    }
  }
  if (mode == "--list") return list_workloads();
  if (mode == "--replay") return replay(operand);
  if (mode != "--explore") return usage();

  const auto* w = aml::analysis::find_workload(operand);
  if (w == nullptr) {
    std::cerr << "aml_replay: unknown workload '" << operand
              << "' (see --list)\n";
    return 2;
  }
  config.nprocs = w->nprocs;
  config.workload = w->name;
  const auto stats = aml::sched::explore(config, w->factory);
  std::cout << "explored " << stats.executions << " execution(s), "
            << stats.decisions_explored << " decision(s)"
            << (config.reduction == aml::sched::Reduction::kDpor
                    ? " [dpor]"
                    : " [unreduced]")
            << (stats.truncated ? " [truncated]" : "") << "\n";
  if (stats.failed) {
    std::cout << "failure at execution " << stats.failing_execution << ": "
              << stats.failure << "\n";
    if (!stats.trace_path.empty()) {
      std::cout << "trace: " << stats.trace_path << "\n";
    }
    return 4;
  }
  std::cout << "no failures\n";
  return 0;
}
