// amlint — the repo's atomics-discipline lint.
//
// Walks a source tree (normally src/aml) and enforces the concurrency house
// rules that generic linters cannot express:
//
//   R1  every atomic operation names an explicit std::memory_order — an
//       implicit seq_cst is indistinguishable from an unconsidered one, and
//       this codebase documents every fence choice (seq_cst pairs are
//       load-bearing, e.g. the lock table's pin/drain Dekker).
//   R2  no blocking primitives (std::mutex, condition_variable, lock/
//       unique/scoped guards, sleeps) in the hot paths: src/aml/core and
//       src/aml/table. The paper's algorithms are busy-wait local-spin;
//       a hidden mutex would invalidate every RMR claim.
//   R3  no unpadded arrays of atomics (std::vector/std::array of
//       std::atomic) in the hot paths — shared per-slot state must be
//       pal::CachePadded to avoid false sharing, which would corrupt the
//       cache-coherent RMR accounting story.
//   R4  model-gated code (src/aml/core and the model-checked baseline
//       src/aml/baselines/jayanti.hpp) keeps its shared state in the word
//       spaces (paper primitives: read/write/FAA/CAS/wait on model words).
//       A plain std::atomic member bypasses the schedule gate, the RMR
//       accounting and the DPOR footprints. Pointers/references to atomics
//       are allowed: the paper's abort signal is exactly such an interface.
//   R5  shm-placed structures (src/aml/ipc, inside the
//       AML_SHM_REGION_BEGIN/END markers) must not contain raw pointers,
//       references, or virtual functions. A shared segment maps at a
//       different base address in every process, so an absolute pointer or
//       a vtable pointer is only meaningful in the process that wrote it —
//       cross-segment links must use offset_ptr/offset_span, and behavior
//       must live outside the placed data. Member functions (declarations
//       containing a parameter list) are exempt: resolvers returning T*
//       against a caller-supplied base are exactly the intended idiom.
//   R6  instrumentation pairing in the instrumented layers (src/aml/core,
//       src/aml/table, src/aml/ipc): a sink object that emits `on_enter`
//       must also emit terminal hooks — `on_granted` AND `on_exit`, or
//       `on_abort` — somewhere in the same file. An attempt that is opened
//       but never terminated through the same sink produces metrics that
//       silently undercount grants/aborts (the class of bug where the
//       table's amortized stripe path zeroed its acquisition counters).
//       The check is per-receiver per-file — a token lint cannot prove
//       all-paths coverage, but a receiver with an enter and no terminal at
//       all is exactly the observed failure shape.
//   R7  recoverable-F&A journaling discipline (src/aml/ipc): every store
//       through a `phase` journal member must name memory_order_seq_cst —
//       the recovery arms read phases cross-process and the post-mortem
//       decision proofs in shm_lock.hpp assume one total order over phase
//       stores and lock-word CASes. And in any function body that both
//       announces a recoverable F&A (an `ann_desc….store(`) and issues a
//       CAS, the announcement store must precede the first CAS: a lock-word
//       CAS issued before its announcement is exactly the unjournalable
//       window the protocol exists to close.
//
// Findings can be suppressed through an allowlist file (one entry per line):
//
//   <rule>|<path-substring>|<line-substring>|<justification>
//
// Blank lines and lines starting with '#' are ignored. Every entry must
// justify itself; unused entries are reported as warnings so the list cannot
// rot. Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// The scanner is token-based, not a real C++ parser: comments, string and
// character literals are blanked before matching, and calls may span lines.
// It is deliberately strict — prefer fixing the code or adding a justified
// allowlist entry over weakening a rule.

#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;   // path relative to the scanned root
  std::size_t line;   // 1-based
  std::string rule;   // "R1".."R7"
  std::string message;
  std::string excerpt;  // the offending source line (trimmed)
};

struct AllowEntry {
  std::string rule;
  std::string path_part;
  std::string line_part;
  std::string why;
  bool used = false;
};

/// Blank comments and the contents of string/char literals, preserving
/// offsets and newlines so positions keep mapping to lines.
std::string blank_noncode(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChr } st = St::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChr;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n' && n != '\0') out[++i] = ' ';
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n' && n != '\0') out[++i] = ' ';
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

/// The source line containing `pos`, whitespace-trimmed (for excerpts; taken
/// from the original text so comments show).
std::string excerpt_at(const std::string& original, std::size_t pos) {
  std::size_t begin = original.rfind('\n', pos);
  begin = begin == std::string::npos ? 0 : begin + 1;
  std::size_t end = original.find('\n', pos);
  if (end == std::string::npos) end = original.size();
  std::string line = original.substr(begin, end - begin);
  const std::size_t a = line.find_first_not_of(" \t");
  const std::size_t b = line.find_last_not_of(" \t\r");
  if (a == std::string::npos) return {};
  return line.substr(a, b - a + 1);
}

/// Span [open, close] of the parenthesized argument list starting at the
/// '(' at `open`; npos when unbalanced.
std::size_t close_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// R1: every atomic member-function call must name a memory order.
void check_r1(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  static const char* kOps[] = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_or",
      "fetch_and",     "fetch_xor",
      "test_and_set",  "compare_exchange_weak",
      "compare_exchange_strong",
  };
  for (const char* op : kOps) {
    const std::string needle = std::string(op) + "(";
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += needle.size();
      // Must be a member call: preceded by '.' or '->', and not a longer
      // identifier (e.g. reload().
      if (at == 0 || ident_char(code[at - 1]) ||
          !(code[at - 1] == '.' ||
            (code[at - 1] == '>' && at >= 2 && code[at - 2] == '-'))) {
        continue;
      }
      const std::size_t open = at + needle.size() - 1;
      const std::size_t close = close_paren(code, open);
      if (close == std::string::npos) continue;
      const std::string args = code.substr(open, close - open + 1);
      if (args.find("memory_order") != std::string::npos) continue;
      findings->push_back({rel, line_of(code, at), "R1",
                           std::string("atomic ") + op +
                               "() without an explicit std::memory_order",
                           excerpt_at(original, at)});
    }
  }
  // Free fences, too.
  std::size_t pos = 0;
  while ((pos = code.find("atomic_thread_fence(", pos)) != std::string::npos) {
    const std::size_t open = code.find('(', pos);
    const std::size_t close = close_paren(code, open);
    const std::string args =
        close == std::string::npos ? "" : code.substr(open, close - open + 1);
    if (args.find("memory_order") == std::string::npos) {
      findings->push_back({rel, line_of(code, pos), "R1",
                           "atomic_thread_fence without an explicit "
                           "std::memory_order",
                           excerpt_at(original, pos)});
    }
    pos = open;
    ++pos;
  }
}

/// R2: no blocking primitives in hot paths.
void check_r2(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  static const char* kBlocked[] = {
      "std::mutex",         "std::shared_mutex",
      "std::timed_mutex",   "std::recursive_mutex",
      "std::condition_variable", "std::lock_guard",
      "std::unique_lock",   "std::scoped_lock",
      "std::this_thread::sleep", "usleep(", "nanosleep(",
  };
  for (const char* tok : kBlocked) {
    std::size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      findings->push_back({rel, line_of(code, pos), "R2",
                           std::string("blocking primitive in a hot path: ") +
                               tok,
                           excerpt_at(original, pos)});
      pos += std::string(tok).size();
    }
  }
}

/// R3: arrays of atomics must be cache-line padded.
void check_r3(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  static const char* kBad[] = {"std::vector<std::atomic",
                               "std::array<std::atomic",
                               "std::deque<std::atomic"};
  for (const char* tok : kBad) {
    std::size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      findings->push_back(
          {rel, line_of(code, pos), "R3",
           "unpadded array of atomics (wrap the element in pal::CachePadded)",
           excerpt_at(original, pos)});
      pos += std::string(tok).size();
    }
  }
}

/// R4: no plain std::atomic state in model-gated code (pointers/references
/// to atomics — the abort-signal interface — are fine).
void check_r4(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  const std::string needle = "std::atomic<";
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += needle.size();
    // Inside another template argument list (std::vector<std::atomic<...>):
    // R3's business; don't double-report.
    if (at > 0 && code[at - 1] == '<') continue;
    // Find the matching '>' of the atomic's template argument.
    int depth = 0;
    std::size_t i = at + needle.size() - 1;
    for (; i < code.size(); ++i) {
      if (code[i] == '<') ++depth;
      if (code[i] == '>' && --depth == 0) break;
    }
    if (i >= code.size()) continue;
    ++i;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i])) != 0) {
      ++i;
    }
    if (i < code.size() && (code[i] == '*' || code[i] == '&')) continue;
    findings->push_back({rel, line_of(code, at), "R4",
                         "plain std::atomic state in model-gated code (use "
                         "the word-space primitives)",
                         excerpt_at(original, at)});
  }
}

/// R5: no raw pointers, references, or virtuals in shm-placed data. The
/// region markers live in comments, so they are located in `original`
/// (blanking preserves offsets); the member scan runs over the blanked
/// `code` in the same span.
void check_r5(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  std::size_t cursor = 0;
  while ((cursor = original.find("AML_SHM_REGION_BEGIN", cursor)) !=
         std::string::npos) {
    const std::size_t begin = original.find('\n', cursor);
    std::size_t end = original.find("AML_SHM_REGION_END", cursor);
    if (begin == std::string::npos) break;
    if (end == std::string::npos) {
      findings->push_back({rel, line_of(original, cursor), "R5",
                           "AML_SHM_REGION_BEGIN without a matching END",
                           excerpt_at(original, cursor)});
      return;
    }
    cursor = end + 1;

    // Virtual anything: a vtable pointer is a process-local address baked
    // into shared memory.
    for (std::size_t v = begin; (v = code.find("virtual", v)) < end;) {
      if ((v == 0 || !ident_char(code[v - 1])) &&
          (v + 7 >= code.size() || !ident_char(code[v + 7]))) {
        findings->push_back({rel, line_of(code, v), "R5",
                             "virtual in shm-placed data (vtable pointers "
                             "are process-local)",
                             excerpt_at(original, v)});
      }
      v += 7;
    }

    // Raw pointer / reference data members: walk statement spans (between
    // ';'/'{'/'}') and flag '*'/'&' in declaration position. Statements
    // containing '(' are member-function declarations — exempt.
    std::size_t stmt_begin = begin;
    for (std::size_t i = begin; i <= end; ++i) {
      if (i < end && code[i] != ';' && code[i] != '{' && code[i] != '}') {
        continue;
      }
      const std::size_t stmt_at = stmt_begin;
      const std::string stmt = code.substr(stmt_at, i - stmt_at);
      stmt_begin = i + 1;
      if (stmt.find('(') != std::string::npos) continue;
      for (std::size_t k = 0; k < stmt.size(); ++k) {
        if (stmt[k] != '*' && stmt[k] != '&') continue;
        // Skip '**' / '&&' (the latter is a logical op or rvalue ref; both
        // are never a bare shm data member) — and don't re-flag position 2.
        if (k + 1 < stmt.size() && stmt[k + 1] == stmt[k]) {
          ++k;
          continue;
        }
        if (k > 0 && stmt[k - 1] == stmt[k]) continue;
        std::size_t prev = k;
        while (prev > 0 &&
               std::isspace(static_cast<unsigned char>(stmt[prev - 1])) != 0) {
          --prev;
        }
        if (prev == 0 ||
            (!ident_char(stmt[prev - 1]) && stmt[prev - 1] != '>')) {
          continue;  // unary &/* (address-of, deref), not a declarator
        }
        std::size_t next = k + 1;
        while (next < stmt.size() &&
               std::isspace(static_cast<unsigned char>(stmt[next])) != 0) {
          ++next;
        }
        if (next >= stmt.size() || (!std::isalpha(static_cast<unsigned char>(
                                        stmt[next])) &&
                                    stmt[next] != '_')) {
          continue;
        }
        findings->push_back(
            {rel, line_of(code, stmt_at + k), "R5",
             stmt[k] == '*'
                 ? "raw pointer member in shm-placed data (use offset_ptr)"
                 : "reference member in shm-placed data (store offsets)",
             excerpt_at(original, stmt_at + k)});
      }
    }
  }
}

/// R6: instrumentation pairing. Collect, per receiver object, every
/// `<recv>.on_enter(` / `<recv>->on_enter(` emission (declarations and
/// definitions are not preceded by '.'/'->' and never match), plus which
/// terminal hooks the same receiver emits anywhere in the file. A receiver
/// with enters but neither (granted AND exit) nor abort is reported at each
/// of its enter sites.
void check_r6(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  struct Hooks {
    std::vector<std::size_t> enters;  // positions of on_enter emissions
    bool granted = false;
    bool exited = false;
    bool aborted = false;
  };
  std::vector<std::pair<std::string, Hooks>> receivers;
  const auto hooks_of = [&receivers](const std::string& recv) -> Hooks& {
    for (auto& [name, hooks] : receivers) {
      if (name == recv) return hooks;
    }
    receivers.push_back({recv, Hooks{}});
    return receivers.back().second;
  };

  static const char* kHookNames[] = {"on_enter", "on_granted", "on_exit",
                                     "on_abort"};
  for (int which = 0; which < 4; ++which) {
    const std::string needle = std::string(kHookNames[which]) + "(";
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += needle.size();
      // Emission sites only: a member call through '.' or '->', and not a
      // longer identifier (e.g. journal_on_enter().
      if (at == 0 || ident_char(code[at - 1]) ||
          !(code[at - 1] == '.' ||
            (code[at - 1] == '>' && at >= 2 && code[at - 2] == '-'))) {
        continue;
      }
      // Extract the receiver identifier to the left of the '.'/'->'.
      std::size_t r_end = at - (code[at - 1] == '.' ? 1 : 2);
      std::size_t r_begin = r_end;
      while (r_begin > 0 && ident_char(code[r_begin - 1])) --r_begin;
      // Chained-expression receivers ((expr).on_enter) all share a bucket:
      // better one merged approximation than a false positive per chain.
      const std::string recv = r_begin == r_end
                                   ? std::string("(expr)")
                                   : code.substr(r_begin, r_end - r_begin);
      Hooks& h = hooks_of(recv);
      switch (which) {
        case 0: h.enters.push_back(at); break;
        case 1: h.granted = true; break;
        case 2: h.exited = true; break;
        case 3: h.aborted = true; break;
      }
    }
  }

  for (const auto& [recv, h] : receivers) {
    if (h.enters.empty()) continue;
    if ((h.granted && h.exited) || h.aborted) continue;
    for (const std::size_t at : h.enters) {
      findings->push_back(
          {rel, line_of(code, at), "R6",
           "on_enter emitted through '" + recv +
               "' with no terminal hook from the same sink in this file "
               "(need on_granted+on_exit, or on_abort)",
           excerpt_at(original, at)});
    }
  }
}

/// R7: recoverable-F&A journaling discipline (ipc/ only). (a) Every store
/// through a member named `phase` must be seq_cst. (b) Per function body:
/// if it contains both an `ann_desc` announcement store and a CAS token
/// (`.cas(` or `compare_exchange`), the first announcement store must come
/// first. Function bodies are found token-wise: a '{' whose previous
/// non-space token is ')' (allowing a `const`/`noexcept`/`override` tail)
/// and whose call-like head is not a control keyword — this matches member
/// functions and lambdas, and skips if/for/while/switch blocks.
void check_r7(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  const std::string phase_store = "phase.store(";
  std::size_t pos = 0;
  while ((pos = code.find(phase_store, pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += phase_store.size();
    const std::size_t open = at + phase_store.size() - 1;
    const std::size_t close = close_paren(code, open);
    if (close == std::string::npos) continue;
    const std::string args = code.substr(open, close - open + 1);
    if (args.find("memory_order_seq_cst") != std::string::npos) continue;
    findings->push_back(
        {rel, line_of(code, at), "R7",
         "phase journal store without std::memory_order_seq_cst (recovery "
         "reads journaled phases cross-process in one total order)",
         excerpt_at(original, at)});
  }

  const auto skip_ws_back = [&code](std::size_t k) {
    while (k > 0 &&
           std::isspace(static_cast<unsigned char>(code[k - 1])) != 0) {
      --k;
    }
    return k;
  };
  std::size_t scan = 0;
  while ((scan = code.find('{', scan)) != std::string::npos) {
    const std::size_t body_open = scan++;
    std::size_t j = skip_ws_back(body_open);
    for (const char* tail : {"const", "noexcept", "override"}) {
      const std::size_t len = std::string(tail).size();
      if (j >= len && code.compare(j - len, len, tail) == 0) {
        j = skip_ws_back(j - len);
      }
    }
    if (j == 0 || code[j - 1] != ')') continue;
    int depth = 0;
    std::size_t open = j - 1;
    while (true) {
      if (code[open] == ')') ++depth;
      if (code[open] == '(' && --depth == 0) break;
      if (open == 0) break;
      --open;
    }
    if (code[open] != '(') continue;
    std::size_t head_end = skip_ws_back(open);
    std::size_t head_begin = head_end;
    while (head_begin > 0 && ident_char(code[head_begin - 1])) --head_begin;
    const std::string head = code.substr(head_begin, head_end - head_begin);
    if (head == "if" || head == "for" || head == "while" ||
        head == "switch" || head == "catch" || head == "return" ||
        head == "sizeof") {
      continue;
    }
    int bdepth = 0;
    std::size_t body_close = body_open;
    for (; body_close < code.size(); ++body_close) {
      if (code[body_close] == '{') ++bdepth;
      if (code[body_close] == '}' && --bdepth == 0) break;
    }
    if (body_close >= code.size()) continue;
    const std::string body =
        code.substr(body_open, body_close - body_open);
    const std::size_t ann = body.find("ann_desc.store(");
    if (ann == std::string::npos) continue;
    std::size_t cas = body.find(".cas(");
    const std::size_t ce = body.find("compare_exchange");
    if (ce != std::string::npos &&
        (cas == std::string::npos || ce < cas)) {
      cas = ce;
    }
    if (cas == std::string::npos || ann < cas) continue;
    findings->push_back(
        {rel, line_of(code, body_open + cas), "R7",
         "CAS issued before the recoverable-F&A announcement store in the "
         "same function (announce in the PassageSlot first, then stamp)",
         excerpt_at(original, body_open + cas)});
  }
}

bool in_hot_path(const std::string& rel) {
  return rel.find("core/") != std::string::npos ||
         rel.find("table/") != std::string::npos;
}

bool in_shm_scope(const std::string& rel) {
  return rel.find("ipc/") != std::string::npos;
}

bool in_model_gated(const std::string& rel) {
  // core/ runs under the DPOR explorer wholesale; of the baselines only the
  // Jayanti amortized lock is model-checked (the table's hybrid stripes embed
  // it), so it carries the same no-plain-atomics discipline.
  return rel.find("core/") != std::string::npos ||
         rel.find("baselines/jayanti") != std::string::npos;
}

bool load_allowlist(const std::string& path, std::vector<AllowEntry>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    AllowEntry e;
    std::istringstream is(line);
    std::getline(is, e.rule, '|');
    std::getline(is, e.path_part, '|');
    std::getline(is, e.line_part, '|');
    std::getline(is, e.why);
    if (e.rule.empty() || e.path_part.empty()) {
      std::cerr << "amlint: malformed allowlist entry: " << line << "\n";
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

bool allowed(const Finding& f, std::vector<AllowEntry>* allow) {
  for (AllowEntry& e : *allow) {
    if (e.rule != f.rule) continue;
    if (f.file.find(e.path_part) == std::string::npos) continue;
    if (!e.line_part.empty() &&
        f.excerpt.find(e.line_part) == std::string::npos) {
      continue;
    }
    e.used = true;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allow_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow" && i + 1 < argc) {
      allow_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: amlint <source-root> [--allow <allowlist>]\n";
      return 0;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "amlint: unexpected argument " << arg << "\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "usage: amlint <source-root> [--allow <allowlist>]\n";
    return 2;
  }
  std::vector<AllowEntry> allow;
  if (!allow_path.empty() && !load_allowlist(allow_path, &allow)) {
    std::cerr << "amlint: cannot read allowlist " << allow_path << "\n";
    return 2;
  }

  std::vector<Finding> findings;
  std::size_t files = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::cerr << "amlint: walk error under " << root << ": " << ec.message()
                << "\n";
      return 2;
    }
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    const std::string ext = p.extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") {
      continue;
    }
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "amlint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string original = buf.str();
    const std::string code = blank_noncode(original);
    const std::string rel =
        fs::relative(p, root, ec).generic_string();
    ++files;
    check_r1(code, original, rel, &findings);
    if (in_hot_path(rel)) {
      check_r2(code, original, rel, &findings);
      check_r3(code, original, rel, &findings);
    }
    if (in_model_gated(rel)) {
      check_r4(code, original, rel, &findings);
    }
    if (in_shm_scope(rel)) {
      check_r5(code, original, rel, &findings);
      check_r7(code, original, rel, &findings);
    }
    if (in_hot_path(rel) || in_shm_scope(rel)) {
      check_r6(code, original, rel, &findings);
    }
  }

  std::size_t reported = 0;
  for (const Finding& f : findings) {
    if (allowed(f, &allow)) continue;
    ++reported;
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n    " << f.excerpt << "\n";
  }
  for (const AllowEntry& e : allow) {
    if (!e.used) {
      std::cerr << "amlint: warning: unused allowlist entry: " << e.rule << "|"
                << e.path_part << "|" << e.line_part << "\n";
    }
  }
  std::cout << "amlint: " << files << " files, " << reported
            << " finding(s)";
  if (!allow.empty()) {
    std::size_t used = 0;
    for (const AllowEntry& e : allow) used += e.used ? 1 : 0;
    std::cout << ", " << used << " allowlisted";
  }
  std::cout << "\n";
  return reported == 0 ? 0 : 1;
}
