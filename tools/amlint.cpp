// amlint — the repo's atomics-discipline lint.
//
// Walks a source tree (normally src/aml) and enforces the concurrency house
// rules that generic linters cannot express:
//
//   R1  every atomic operation names an explicit std::memory_order — an
//       implicit seq_cst is indistinguishable from an unconsidered one, and
//       this codebase documents every fence choice (seq_cst pairs are
//       load-bearing, e.g. the lock table's pin/drain Dekker).
//   R2  no blocking primitives (std::mutex, condition_variable, lock/
//       unique/scoped guards, sleeps) in the hot paths: src/aml/core and
//       src/aml/table. The paper's algorithms are busy-wait local-spin;
//       a hidden mutex would invalidate every RMR claim.
//   R3  no unpadded arrays of atomics (std::vector/std::array of
//       std::atomic) in the hot paths — shared per-slot state must be
//       pal::CachePadded to avoid false sharing, which would corrupt the
//       cache-coherent RMR accounting story.
//   R4  model-gated code (src/aml/core and the model-checked baseline
//       src/aml/baselines/jayanti.hpp) keeps its shared state in the word
//       spaces (paper primitives: read/write/FAA/CAS/wait on model words).
//       A plain std::atomic member bypasses the schedule gate, the RMR
//       accounting and the DPOR footprints. Pointers/references to atomics
//       are allowed: the paper's abort signal is exactly such an interface.
//   R5  shm-placed structures (src/aml/ipc, inside the
//       AML_SHM_REGION_BEGIN/END markers) must not contain raw pointers,
//       references, or virtual functions. A shared segment maps at a
//       different base address in every process, so an absolute pointer or
//       a vtable pointer is only meaningful in the process that wrote it —
//       cross-segment links must use offset_ptr/offset_span, and behavior
//       must live outside the placed data. Member functions (declarations
//       containing a parameter list) are exempt: resolvers returning T*
//       against a caller-supplied base are exactly the intended idiom.
//   R6  instrumentation pairing in the instrumented layers (src/aml/core,
//       src/aml/table, src/aml/ipc): a sink object that emits `on_enter`
//       must also emit terminal hooks — `on_granted` AND `on_exit`, or
//       `on_abort` — somewhere in the same file. An attempt that is opened
//       but never terminated through the same sink produces metrics that
//       silently undercount grants/aborts (the class of bug where the
//       table's amortized stripe path zeroed its acquisition counters).
//       The check is per-receiver per-file — a token lint cannot prove
//       all-paths coverage, but a receiver with an enter and no terminal at
//       all is exactly the observed failure shape.
//   R7  recoverable-F&A journaling discipline (src/aml/ipc): every store
//       through a `phase` journal member must name memory_order_seq_cst —
//       the recovery arms read phases cross-process and the post-mortem
//       decision proofs in shm_lock.hpp assume one total order over phase
//       stores and lock-word CASes. And in any function body that both
//       announces a recoverable F&A (an `ann_desc….store(`) and issues a
//       CAS, the announcement store must precede the first CAS: a lock-word
//       CAS issued before its announcement is exactly the unjournalable
//       window the protocol exists to close.
//   R8  memory-ordering edge annotations (src/aml/core, src/aml/table,
//       src/aml/ipc, src/aml/model/native.hpp): every atomic operation
//       weaker than seq_cst — raw std::atomic calls naming a weak
//       std::memory_order, the ordered model vocabulary (model::ord::
//       read_acq/write_rel/read_rlx/write_rlx), and the space wait/
//       wait_either spins — must carry a happens-before annotation in a
//       nearby comment: AML_X_EDGE(name) on acquire-side ops,
//       AML_V_EDGE(name) on release-side ops, AML_RELAXED(why) on
//       justified-unordered ops (see aml/pal/edges.hpp). The tag must sit on
//       the op line, a continuation line of the call, or up to two lines
//       above, and its kind must be compatible with the op's order (a
//       V tag cannot justify a pure acquire load). memory_order_consume is
//       rejected outright. seq_cst ops need no tag but may carry one (they
//       are edge endpoints kept strong for other reasons — R9 records them).
//   R9  edge pairing against the manifest (--edges tools/edges.toml): every
//       name used in an AML_V_EDGE/AML_X_EDGE tag must be declared in the
//       manifest; every declared edge must have at least one release-side
//       (V) and one acquire-side (X) occurrence in the scanned tree; the
//       manifest's release/acquire endpoint file-parts must anchor at least
//       one matching tagged site; and every entry must carry non-empty
//       release/acquire/invariant/litmus keys. A manifest entry with no code
//       occurrence at all is a ghost and is an error — the manifest cannot
//       drift from the code in either direction.
//
// Findings can be suppressed through an allowlist file (one entry per line):
//
//   <rule>|<path-substring>|<line-substring>|<justification>
//
// Blank lines and lines starting with '#' are ignored. Every entry must
// justify itself; unused entries are reported as warnings so the list cannot
// rot — or as errors under --strict-unused (CI runs strict). --sarif <path>
// additionally writes the reported findings as SARIF 2.1.0 for code-scanning
// upload. Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// The scanner is token-based, not a real C++ parser: comments, string and
// character literals are blanked before matching, and calls may span lines.
// It is deliberately strict — prefer fixing the code or adding a justified
// allowlist entry over weakening a rule.

#include <cctype>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;   // path relative to the scanned root
  std::size_t line;   // 1-based
  std::string rule;   // "R1".."R7"
  std::string message;
  std::string excerpt;  // the offending source line (trimmed)
};

struct AllowEntry {
  std::string rule;
  std::string path_part;
  std::string line_part;
  std::string why;
  bool used = false;
};

/// Blank comments and the contents of string/char literals, preserving
/// offsets and newlines so positions keep mapping to lines.
std::string blank_noncode(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChr } st = St::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChr;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n' && n != '\0') out[++i] = ' ';
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n' && n != '\0') out[++i] = ' ';
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

/// The source line containing `pos`, whitespace-trimmed (for excerpts; taken
/// from the original text so comments show).
std::string excerpt_at(const std::string& original, std::size_t pos) {
  std::size_t begin = original.rfind('\n', pos);
  begin = begin == std::string::npos ? 0 : begin + 1;
  std::size_t end = original.find('\n', pos);
  if (end == std::string::npos) end = original.size();
  std::string line = original.substr(begin, end - begin);
  const std::size_t a = line.find_first_not_of(" \t");
  const std::size_t b = line.find_last_not_of(" \t\r");
  if (a == std::string::npos) return {};
  return line.substr(a, b - a + 1);
}

/// Span [open, close] of the parenthesized argument list starting at the
/// '(' at `open`; npos when unbalanced.
std::size_t close_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// R1: every atomic member-function call must name a memory order.
void check_r1(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  static const char* kOps[] = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_or",
      "fetch_and",     "fetch_xor",
      "test_and_set",  "compare_exchange_weak",
      "compare_exchange_strong",
  };
  for (const char* op : kOps) {
    const std::string needle = std::string(op) + "(";
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += needle.size();
      // Must be a member call: preceded by '.' or '->', and not a longer
      // identifier (e.g. reload().
      if (at == 0 || ident_char(code[at - 1]) ||
          !(code[at - 1] == '.' ||
            (code[at - 1] == '>' && at >= 2 && code[at - 2] == '-'))) {
        continue;
      }
      const std::size_t open = at + needle.size() - 1;
      const std::size_t close = close_paren(code, open);
      if (close == std::string::npos) continue;
      const std::string args = code.substr(open, close - open + 1);
      if (args.find("memory_order") != std::string::npos) continue;
      findings->push_back({rel, line_of(code, at), "R1",
                           std::string("atomic ") + op +
                               "() without an explicit std::memory_order",
                           excerpt_at(original, at)});
    }
  }
  // Free fences, too.
  std::size_t pos = 0;
  while ((pos = code.find("atomic_thread_fence(", pos)) != std::string::npos) {
    const std::size_t open = code.find('(', pos);
    const std::size_t close = close_paren(code, open);
    const std::string args =
        close == std::string::npos ? "" : code.substr(open, close - open + 1);
    if (args.find("memory_order") == std::string::npos) {
      findings->push_back({rel, line_of(code, pos), "R1",
                           "atomic_thread_fence without an explicit "
                           "std::memory_order",
                           excerpt_at(original, pos)});
    }
    pos = open;
    ++pos;
  }
}

/// R2: no blocking primitives in hot paths.
void check_r2(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  static const char* kBlocked[] = {
      "std::mutex",         "std::shared_mutex",
      "std::timed_mutex",   "std::recursive_mutex",
      "std::condition_variable", "std::lock_guard",
      "std::unique_lock",   "std::scoped_lock",
      "std::this_thread::sleep", "usleep(", "nanosleep(",
  };
  for (const char* tok : kBlocked) {
    std::size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      findings->push_back({rel, line_of(code, pos), "R2",
                           std::string("blocking primitive in a hot path: ") +
                               tok,
                           excerpt_at(original, pos)});
      pos += std::string(tok).size();
    }
  }
}

/// R3: arrays of atomics must be cache-line padded.
void check_r3(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  static const char* kBad[] = {"std::vector<std::atomic",
                               "std::array<std::atomic",
                               "std::deque<std::atomic"};
  for (const char* tok : kBad) {
    std::size_t pos = 0;
    while ((pos = code.find(tok, pos)) != std::string::npos) {
      findings->push_back(
          {rel, line_of(code, pos), "R3",
           "unpadded array of atomics (wrap the element in pal::CachePadded)",
           excerpt_at(original, pos)});
      pos += std::string(tok).size();
    }
  }
}

/// R4: no plain std::atomic state in model-gated code (pointers/references
/// to atomics — the abort-signal interface — are fine).
void check_r4(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  const std::string needle = "std::atomic<";
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += needle.size();
    // Inside another template argument list (std::vector<std::atomic<...>):
    // R3's business; don't double-report.
    if (at > 0 && code[at - 1] == '<') continue;
    // Find the matching '>' of the atomic's template argument.
    int depth = 0;
    std::size_t i = at + needle.size() - 1;
    for (; i < code.size(); ++i) {
      if (code[i] == '<') ++depth;
      if (code[i] == '>' && --depth == 0) break;
    }
    if (i >= code.size()) continue;
    ++i;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i])) != 0) {
      ++i;
    }
    if (i < code.size() && (code[i] == '*' || code[i] == '&')) continue;
    findings->push_back({rel, line_of(code, at), "R4",
                         "plain std::atomic state in model-gated code (use "
                         "the word-space primitives)",
                         excerpt_at(original, at)});
  }
}

/// R5: no raw pointers, references, or virtuals in shm-placed data. The
/// region markers live in comments, so they are located in `original`
/// (blanking preserves offsets); the member scan runs over the blanked
/// `code` in the same span.
void check_r5(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  std::size_t cursor = 0;
  while ((cursor = original.find("AML_SHM_REGION_BEGIN", cursor)) !=
         std::string::npos) {
    const std::size_t begin = original.find('\n', cursor);
    std::size_t end = original.find("AML_SHM_REGION_END", cursor);
    if (begin == std::string::npos) break;
    if (end == std::string::npos) {
      findings->push_back({rel, line_of(original, cursor), "R5",
                           "AML_SHM_REGION_BEGIN without a matching END",
                           excerpt_at(original, cursor)});
      return;
    }
    cursor = end + 1;

    // Virtual anything: a vtable pointer is a process-local address baked
    // into shared memory.
    for (std::size_t v = begin; (v = code.find("virtual", v)) < end;) {
      if ((v == 0 || !ident_char(code[v - 1])) &&
          (v + 7 >= code.size() || !ident_char(code[v + 7]))) {
        findings->push_back({rel, line_of(code, v), "R5",
                             "virtual in shm-placed data (vtable pointers "
                             "are process-local)",
                             excerpt_at(original, v)});
      }
      v += 7;
    }

    // Raw pointer / reference data members: walk statement spans (between
    // ';'/'{'/'}') and flag '*'/'&' in declaration position. Statements
    // containing '(' are member-function declarations — exempt.
    std::size_t stmt_begin = begin;
    for (std::size_t i = begin; i <= end; ++i) {
      if (i < end && code[i] != ';' && code[i] != '{' && code[i] != '}') {
        continue;
      }
      const std::size_t stmt_at = stmt_begin;
      const std::string stmt = code.substr(stmt_at, i - stmt_at);
      stmt_begin = i + 1;
      if (stmt.find('(') != std::string::npos) continue;
      for (std::size_t k = 0; k < stmt.size(); ++k) {
        if (stmt[k] != '*' && stmt[k] != '&') continue;
        // Skip '**' / '&&' (the latter is a logical op or rvalue ref; both
        // are never a bare shm data member) — and don't re-flag position 2.
        if (k + 1 < stmt.size() && stmt[k + 1] == stmt[k]) {
          ++k;
          continue;
        }
        if (k > 0 && stmt[k - 1] == stmt[k]) continue;
        std::size_t prev = k;
        while (prev > 0 &&
               std::isspace(static_cast<unsigned char>(stmt[prev - 1])) != 0) {
          --prev;
        }
        if (prev == 0 ||
            (!ident_char(stmt[prev - 1]) && stmt[prev - 1] != '>')) {
          continue;  // unary &/* (address-of, deref), not a declarator
        }
        std::size_t next = k + 1;
        while (next < stmt.size() &&
               std::isspace(static_cast<unsigned char>(stmt[next])) != 0) {
          ++next;
        }
        if (next >= stmt.size() || (!std::isalpha(static_cast<unsigned char>(
                                        stmt[next])) &&
                                    stmt[next] != '_')) {
          continue;
        }
        findings->push_back(
            {rel, line_of(code, stmt_at + k), "R5",
             stmt[k] == '*'
                 ? "raw pointer member in shm-placed data (use offset_ptr)"
                 : "reference member in shm-placed data (store offsets)",
             excerpt_at(original, stmt_at + k)});
      }
    }
  }
}

/// R6: instrumentation pairing. Collect, per receiver object, every
/// `<recv>.on_enter(` / `<recv>->on_enter(` emission (declarations and
/// definitions are not preceded by '.'/'->' and never match), plus which
/// terminal hooks the same receiver emits anywhere in the file. A receiver
/// with enters but neither (granted AND exit) nor abort is reported at each
/// of its enter sites.
void check_r6(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  struct Hooks {
    std::vector<std::size_t> enters;  // positions of on_enter emissions
    bool granted = false;
    bool exited = false;
    bool aborted = false;
  };
  std::vector<std::pair<std::string, Hooks>> receivers;
  const auto hooks_of = [&receivers](const std::string& recv) -> Hooks& {
    for (auto& [name, hooks] : receivers) {
      if (name == recv) return hooks;
    }
    receivers.push_back({recv, Hooks{}});
    return receivers.back().second;
  };

  static const char* kHookNames[] = {"on_enter", "on_granted", "on_exit",
                                     "on_abort"};
  for (int which = 0; which < 4; ++which) {
    const std::string needle = std::string(kHookNames[which]) + "(";
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += needle.size();
      // Emission sites only: a member call through '.' or '->', and not a
      // longer identifier (e.g. journal_on_enter().
      if (at == 0 || ident_char(code[at - 1]) ||
          !(code[at - 1] == '.' ||
            (code[at - 1] == '>' && at >= 2 && code[at - 2] == '-'))) {
        continue;
      }
      // Extract the receiver identifier to the left of the '.'/'->'.
      std::size_t r_end = at - (code[at - 1] == '.' ? 1 : 2);
      std::size_t r_begin = r_end;
      while (r_begin > 0 && ident_char(code[r_begin - 1])) --r_begin;
      // Chained-expression receivers ((expr).on_enter) all share a bucket:
      // better one merged approximation than a false positive per chain.
      const std::string recv = r_begin == r_end
                                   ? std::string("(expr)")
                                   : code.substr(r_begin, r_end - r_begin);
      Hooks& h = hooks_of(recv);
      switch (which) {
        case 0: h.enters.push_back(at); break;
        case 1: h.granted = true; break;
        case 2: h.exited = true; break;
        case 3: h.aborted = true; break;
      }
    }
  }

  for (const auto& [recv, h] : receivers) {
    if (h.enters.empty()) continue;
    if ((h.granted && h.exited) || h.aborted) continue;
    for (const std::size_t at : h.enters) {
      findings->push_back(
          {rel, line_of(code, at), "R6",
           "on_enter emitted through '" + recv +
               "' with no terminal hook from the same sink in this file "
               "(need on_granted+on_exit, or on_abort)",
           excerpt_at(original, at)});
    }
  }
}

/// R7: recoverable-F&A journaling discipline (ipc/ only). (a) Every store
/// through a member named `phase` must be seq_cst. (b) Per function body:
/// if it contains both an `ann_desc` announcement store and a CAS token
/// (`.cas(` or `compare_exchange`), the first announcement store must come
/// first. Function bodies are found token-wise: a '{' whose previous
/// non-space token is ')' (allowing a `const`/`noexcept`/`override` tail)
/// and whose call-like head is not a control keyword — this matches member
/// functions and lambdas, and skips if/for/while/switch blocks.
void check_r7(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  const std::string phase_store = "phase.store(";
  std::size_t pos = 0;
  while ((pos = code.find(phase_store, pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += phase_store.size();
    const std::size_t open = at + phase_store.size() - 1;
    const std::size_t close = close_paren(code, open);
    if (close == std::string::npos) continue;
    const std::string args = code.substr(open, close - open + 1);
    if (args.find("memory_order_seq_cst") != std::string::npos) continue;
    findings->push_back(
        {rel, line_of(code, at), "R7",
         "phase journal store without std::memory_order_seq_cst (recovery "
         "reads journaled phases cross-process in one total order)",
         excerpt_at(original, at)});
  }

  const auto skip_ws_back = [&code](std::size_t k) {
    while (k > 0 &&
           std::isspace(static_cast<unsigned char>(code[k - 1])) != 0) {
      --k;
    }
    return k;
  };
  std::size_t scan = 0;
  while ((scan = code.find('{', scan)) != std::string::npos) {
    const std::size_t body_open = scan++;
    std::size_t j = skip_ws_back(body_open);
    for (const char* tail : {"const", "noexcept", "override"}) {
      const std::size_t len = std::string(tail).size();
      if (j >= len && code.compare(j - len, len, tail) == 0) {
        j = skip_ws_back(j - len);
      }
    }
    if (j == 0 || code[j - 1] != ')') continue;
    int depth = 0;
    std::size_t open = j - 1;
    while (true) {
      if (code[open] == ')') ++depth;
      if (code[open] == '(' && --depth == 0) break;
      if (open == 0) break;
      --open;
    }
    if (code[open] != '(') continue;
    std::size_t head_end = skip_ws_back(open);
    std::size_t head_begin = head_end;
    while (head_begin > 0 && ident_char(code[head_begin - 1])) --head_begin;
    const std::string head = code.substr(head_begin, head_end - head_begin);
    if (head == "if" || head == "for" || head == "while" ||
        head == "switch" || head == "catch" || head == "return" ||
        head == "sizeof") {
      continue;
    }
    int bdepth = 0;
    std::size_t body_close = body_open;
    for (; body_close < code.size(); ++body_close) {
      if (code[body_close] == '{') ++bdepth;
      if (code[body_close] == '}' && --bdepth == 0) break;
    }
    if (body_close >= code.size()) continue;
    const std::string body =
        code.substr(body_open, body_close - body_open);
    const std::size_t ann = body.find("ann_desc.store(");
    if (ann == std::string::npos) continue;
    std::size_t cas = body.find(".cas(");
    const std::size_t ce = body.find("compare_exchange");
    if (ce != std::string::npos &&
        (cas == std::string::npos || ce < cas)) {
      cas = ce;
    }
    if (cas == std::string::npos || ann < cas) continue;
    findings->push_back(
        {rel, line_of(code, body_open + cas), "R7",
         "CAS issued before the recoverable-F&A announcement store in the "
         "same function (announce in the PassageSlot first, then stamp)",
         excerpt_at(original, body_open + cas)});
  }
}

// ---- R8/R9: happens-before edge annotations --------------------------------

/// One AML_V_EDGE/AML_X_EDGE occurrence, collected from the ORIGINAL text —
/// the annotations are comments, so blanking erases them.
struct EdgeSite {
  char kind;  // 'V' release side, 'X' acquire side
  std::string name;
  std::string file;
  std::size_t line;
};

/// One `[edges."name"]` manifest entry (tools/edges.toml).
struct EdgeDecl {
  std::string name;
  std::string release;
  std::string acquire;
  std::string invariant;
  std::string litmus;
  std::size_t line = 0;
  bool v_seen = false;
  bool x_seen = false;
};

/// 1-based line view of a file (index 0 is an unused sentinel).
std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines{std::string{}};
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

void collect_edge_sites(const std::string& original, const std::string& rel,
                        std::vector<EdgeSite>* sites) {
  for (const char* tag : {"AML_V_EDGE(", "AML_X_EDGE("}) {
    const std::string needle = tag;
    std::size_t pos = 0;
    while ((pos = original.find(needle, pos)) != std::string::npos) {
      const std::size_t open = pos + needle.size();
      const std::size_t close = original.find(')', open);
      pos = open;
      if (close == std::string::npos) continue;
      sites->push_back({needle[4], original.substr(open, close - open), rel,
                        line_of(original, open)});
    }
  }
}

/// R8. Ops are located in the blanked `code`; tag presence is probed in the
/// original's lines over [op-line - 2, close-paren line] so trailing
/// comments on continuation lines of a multi-line call count.
void check_r8(const std::string& code, const std::string& original,
              const std::string& rel, std::vector<Finding>* findings) {
  const std::vector<std::string> lines = split_lines(original);
  const auto has_tag = [&lines](std::size_t lo, std::size_t hi,
                                const char* tag) {
    if (lo < 1) lo = 1;
    if (hi >= lines.size()) hi = lines.size() - 1;
    for (std::size_t i = lo; i <= hi; ++i) {
      if (lines[i].find(tag) != std::string::npos) return true;
    }
    return false;
  };

  // (a) Raw std::atomic member calls naming a weak memory order.
  static const char* kOps[] = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_or",
      "fetch_and",     "fetch_xor",
      "test_and_set",  "compare_exchange_weak",
      "compare_exchange_strong",
  };
  for (const char* op : kOps) {
    const std::string needle = std::string(op) + "(";
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += needle.size();
      if (at == 0 || ident_char(code[at - 1]) ||
          !(code[at - 1] == '.' ||
            (code[at - 1] == '>' && at >= 2 && code[at - 2] == '-'))) {
        continue;
      }
      const std::size_t open = at + needle.size() - 1;
      const std::size_t close = close_paren(code, open);
      if (close == std::string::npos) continue;
      const std::string args = code.substr(open, close - open + 1);
      if (args.find("memory_order") == std::string::npos) continue;  // R1
      const bool has_rlx =
          args.find("memory_order_relaxed") != std::string::npos;
      const bool has_acq =
          args.find("memory_order_acquire") != std::string::npos ||
          args.find("memory_order_acq_rel") != std::string::npos;
      const bool has_rel =
          args.find("memory_order_release") != std::string::npos ||
          args.find("memory_order_acq_rel") != std::string::npos;
      const bool has_seq =
          args.find("memory_order_seq_cst") != std::string::npos;
      if (args.find("memory_order_consume") != std::string::npos) {
        findings->push_back({rel, line_of(code, at), "R8",
                             "memory_order_consume is not part of the house "
                             "vocabulary (no compiler implements it as "
                             "anything but acquire; use acquire + an edge)",
                             excerpt_at(original, at)});
        continue;
      }
      // seq_cst success with a relaxed failure order is the strong idiom —
      // the failure path is a plain load and carries no edge.
      if (has_seq && !has_acq && !has_rel) continue;
      if (!has_rlx && !has_acq && !has_rel) continue;  // pure seq_cst
      const std::size_t op_line = line_of(code, at);
      const std::size_t lo = op_line >= 3 ? op_line - 2 : 1;
      const std::size_t hi = line_of(code, close);
      const bool tv = has_tag(lo, hi, "AML_V_EDGE(");
      const bool tx = has_tag(lo, hi, "AML_X_EDGE(");
      const bool tr = has_tag(lo, hi, "AML_RELAXED(");
      const bool pure_rlx = has_rlx && !has_acq && !has_rel && !has_seq;
      const bool v_ok = tv && has_rel;
      const bool x_ok = tx && has_acq;
      const bool r_ok = tr && pure_rlx;
      if (v_ok || x_ok || r_ok) continue;
      if (tv || tx || tr) {
        findings->push_back(
            {rel, op_line, "R8",
             "edge annotation incompatible with the op's memory order (V "
             "needs a release-capable op, X an acquire-capable one, "
             "AML_RELAXED a fully relaxed one)",
             excerpt_at(original, at)});
      } else {
        findings->push_back(
            {rel, op_line, "R8",
             std::string("atomic ") + op +
                 "() weaker than seq_cst without an AML_V_EDGE / "
                 "AML_X_EDGE / AML_RELAXED annotation (see "
                 "aml/pal/edges.hpp and tools/edges.toml)",
             excerpt_at(original, at)});
      }
    }
  }

  // (b) The ordered model vocabulary: these calls lower to the weak ops
  // under the native model, whatever the space, so they carry the edge.
  struct ModelOp {
    const char* needle;
    const char* tag;
    const char* need;
  };
  static const ModelOp kModelOps[] = {
      {"ord::read_acq(", "AML_X_EDGE(", "an AML_X_EDGE annotation"},
      {"ord::write_rel(", "AML_V_EDGE(", "an AML_V_EDGE annotation"},
      {"ord::read_rlx(", "AML_RELAXED(", "an AML_RELAXED justification"},
      {"ord::write_rlx(", "AML_RELAXED(", "an AML_RELAXED justification"},
      {".wait(", "AML_X_EDGE(", "an AML_X_EDGE annotation"},
      {".wait_either(", "AML_X_EDGE(", "an AML_X_EDGE annotation"},
      {"->wait(", "AML_X_EDGE(", "an AML_X_EDGE annotation"},
      {"->wait_either(", "AML_X_EDGE(", "an AML_X_EDGE annotation"},
  };
  for (const ModelOp& m : kModelOps) {
    const std::string needle = m.needle;
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += needle.size();
      // The ord:: needles must not be the tail of a longer identifier; the
      // .wait/->wait needles embed their own member-call marker.
      if (needle[0] != '.' && needle[0] != '-' && at > 0 &&
          ident_char(code[at - 1])) {
        continue;
      }
      const std::size_t open = at + needle.size() - 1;
      const std::size_t close = close_paren(code, open);
      if (close == std::string::npos) continue;
      const std::size_t op_line = line_of(code, at);
      const std::size_t lo = op_line >= 3 ? op_line - 2 : 1;
      const std::size_t hi = line_of(code, close);
      if (has_tag(lo, hi, m.tag)) continue;
      findings->push_back(
          {rel, op_line, "R8",
           std::string("ordered-model op ") + m.needle +
               "...) without " + m.need +
               " (the wait spin is the acquire endpoint of its edge)",
           excerpt_at(original, at)});
    }
  }
}

/// Minimal parse of the `[edges."name"]` manifest (a deliberate TOML
/// subset: section headers + `key = "value"` lines + comments).
bool load_edges(const std::string& path, std::vector<EdgeDecl>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string raw;
  std::size_t lineno = 0;
  EdgeDecl* cur = nullptr;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t a = raw.find_first_not_of(" \t");
    if (a == std::string::npos) continue;
    const std::size_t b = raw.find_last_not_of(" \t\r");
    const std::string t = raw.substr(a, b - a + 1);
    if (t[0] == '#') continue;
    const std::string head = "[edges.\"";
    if (t.rfind(head, 0) == 0) {
      const std::size_t close = t.find("\"]");
      if (close == std::string::npos || close <= head.size()) return false;
      out->push_back({});
      cur = &out->back();
      cur->name = t.substr(head.size(), close - head.size());
      cur->line = lineno;
      continue;
    }
    if (cur == nullptr) continue;
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) continue;
    std::string key = t.substr(0, eq);
    const std::size_t ke = key.find_last_not_of(" \t");
    key = ke == std::string::npos ? std::string{} : key.substr(0, ke + 1);
    std::string val = t.substr(eq + 1);
    const std::size_t va = val.find_first_not_of(" \t");
    val = va == std::string::npos ? std::string{} : val.substr(va);
    if (val.size() >= 2 && val.front() == '"' && val.back() == '"') {
      val = val.substr(1, val.size() - 2);
    }
    if (key == "release") cur->release = val;
    else if (key == "acquire") cur->acquire = val;
    else if (key == "invariant") cur->invariant = val;
    else if (key == "litmus") cur->litmus = val;
  }
  return true;
}

/// R9: cross-check collected tag sites against the manifest, both ways.
void check_r9(std::vector<EdgeDecl>& decls,
              const std::vector<EdgeSite>& sites, const std::string& manifest,
              std::vector<Finding>* findings) {
  const auto find_decl = [&decls](const std::string& name) -> EdgeDecl* {
    for (EdgeDecl& d : decls) {
      if (d.name == name) return &d;
    }
    return nullptr;
  };
  for (const EdgeSite& s : sites) {
    EdgeDecl* d = find_decl(s.name);
    if (d == nullptr) {
      findings->push_back(
          {s.file, s.line, "R9",
           "edge tag names '" + s.name + "', which is not declared in " +
               manifest,
           std::string(s.kind == 'V' ? "AML_V_EDGE(" : "AML_X_EDGE(") +
               s.name + ")"});
      continue;
    }
    (s.kind == 'V' ? d->v_seen : d->x_seen) = true;
  }
  const auto anchor_ok = [&sites](const std::string& endpoint, char kind,
                                  const std::string& name) {
    const std::size_t sp = endpoint.find(' ');
    const std::string file_part =
        sp == std::string::npos ? endpoint : endpoint.substr(0, sp);
    if (file_part.empty()) return false;
    for (const EdgeSite& s : sites) {
      if (s.kind == kind && s.name == name &&
          s.file.find(file_part) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  for (EdgeDecl& d : decls) {
    const std::string header = "[edges.\"" + d.name + "\"]";
    if (d.release.empty() || d.acquire.empty() || d.invariant.empty() ||
        d.litmus.empty()) {
      findings->push_back(
          {manifest, d.line, "R9",
           "edge '" + d.name +
               "' is missing a required key (release, acquire, invariant, "
               "litmus)",
           header});
    }
    if (!d.v_seen && !d.x_seen) {
      findings->push_back(
          {manifest, d.line, "R9",
           "ghost manifest entry: edge '" + d.name +
               "' has no AML_V_EDGE/AML_X_EDGE occurrence in the scanned "
               "tree",
           header});
      continue;
    }
    if (!d.v_seen) {
      findings->push_back(
          {manifest, d.line, "R9",
           "edge '" + d.name +
               "' has acquire-side (X) occurrences but no release-side "
               "AML_V_EDGE occurrence — a one-sided edge synchronizes "
               "nothing",
           header});
    }
    if (!d.x_seen) {
      findings->push_back(
          {manifest, d.line, "R9",
           "edge '" + d.name +
               "' has release-side (V) occurrences but no acquire-side "
               "AML_X_EDGE occurrence — a one-sided edge synchronizes "
               "nothing",
           header});
    }
    if (d.v_seen && !anchor_ok(d.release, 'V', d.name)) {
      findings->push_back(
          {manifest, d.line, "R9",
           "release endpoint '" + d.release +
               "' does not anchor any V-tagged site of edge '" + d.name +
               "' (file-part must substring-match a tagged file)",
           header});
    }
    if (d.x_seen && !anchor_ok(d.acquire, 'X', d.name)) {
      findings->push_back(
          {manifest, d.line, "R9",
           "acquire endpoint '" + d.acquire +
               "' does not anchor any X-tagged site of edge '" + d.name +
               "' (file-part must substring-match a tagged file)",
           header});
    }
  }
}

// ---- SARIF output ----------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_sarif(const std::string& path,
                 const std::vector<Finding>& reported) {
  std::ofstream out(path);
  if (!out) return false;
  static const std::pair<const char*, const char*> kRules[] = {
      {"R1", "every atomic op names an explicit std::memory_order"},
      {"R2", "no blocking primitives in the hot paths"},
      {"R3", "no unpadded arrays of atomics in the hot paths"},
      {"R4", "no plain std::atomic state in model-gated code"},
      {"R5", "no raw pointers/references/virtuals in shm-placed data"},
      {"R6", "instrumentation enter/terminal pairing per sink"},
      {"R7", "recoverable-F&A journaling discipline"},
      {"R8", "sub-seq_cst atomics carry AML_V_EDGE/AML_X_EDGE/AML_RELAXED"},
      {"R9", "edge annotations pair up and match the edge manifest"},
      {"ALLOW", "allowlist hygiene (unused entries under --strict-unused)"},
  };
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"amlint\",\n"
      << "          \"version\": \"1.0.0\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < std::size(kRules); ++i) {
    out << "            {\"id\": \"" << kRules[i].first
        << "\", \"shortDescription\": {\"text\": \"" << kRules[i].second
        << "\"}}" << (i + 1 < std::size(kRules) ? "," : "") << "\n";
  }
  out << "          ]\n        }\n      },\n      \"results\": [\n";
  for (std::size_t i = 0; i < reported.size(); ++i) {
    const Finding& f = reported[i];
    out << "        {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line == 0 ? 1 : f.line) << "}}}]}"
        << (i + 1 < reported.size() ? "," : "") << "\n";
  }
  out << "      ]\n    }\n  ]\n}\n";
  return static_cast<bool>(out);
}

bool in_hot_path(const std::string& rel) {
  return rel.find("core/") != std::string::npos ||
         rel.find("table/") != std::string::npos;
}

bool in_shm_scope(const std::string& rel) {
  return rel.find("ipc/") != std::string::npos;
}

bool in_edge_scope(const std::string& rel) {
  // R8/R9 coverage: the model-gated hot paths, the cross-process layer and
  // the native lowering — everywhere a weak order reaches real silicon.
  return rel.find("core/") != std::string::npos ||
         rel.find("table/") != std::string::npos ||
         rel.find("ipc/") != std::string::npos ||
         rel.find("model/native") != std::string::npos;
}

bool in_model_gated(const std::string& rel) {
  // core/ runs under the DPOR explorer wholesale; of the baselines only the
  // Jayanti amortized lock is model-checked (the table's hybrid stripes embed
  // it), so it carries the same no-plain-atomics discipline.
  return rel.find("core/") != std::string::npos ||
         rel.find("baselines/jayanti") != std::string::npos;
}

bool load_allowlist(const std::string& path, std::vector<AllowEntry>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    AllowEntry e;
    std::istringstream is(line);
    std::getline(is, e.rule, '|');
    std::getline(is, e.path_part, '|');
    std::getline(is, e.line_part, '|');
    std::getline(is, e.why);
    if (e.rule.empty() || e.path_part.empty()) {
      std::cerr << "amlint: malformed allowlist entry: " << line << "\n";
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

bool allowed(const Finding& f, std::vector<AllowEntry>* allow) {
  for (AllowEntry& e : *allow) {
    if (e.rule != f.rule) continue;
    if (f.file.find(e.path_part) == std::string::npos) continue;
    if (!e.line_part.empty() &&
        f.excerpt.find(e.line_part) == std::string::npos) {
      continue;
    }
    e.used = true;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  static const char* kUsage =
      "usage: amlint <source-root> [--allow <allowlist>] "
      "[--edges <manifest.toml>] [--sarif <out.sarif>] [--strict-unused]\n";
  std::string root;
  std::string allow_path;
  std::string edges_path;
  std::string sarif_path;
  bool strict_unused = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow" && i + 1 < argc) {
      allow_path = argv[++i];
    } else if (arg == "--edges" && i + 1 < argc) {
      edges_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--strict-unused") {
      strict_unused = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "amlint: unexpected argument " << arg << "\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  std::vector<AllowEntry> allow;
  if (!allow_path.empty() && !load_allowlist(allow_path, &allow)) {
    std::cerr << "amlint: cannot read allowlist " << allow_path << "\n";
    return 2;
  }

  std::vector<Finding> findings;
  std::vector<EdgeSite> sites;
  std::size_t files = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::cerr << "amlint: walk error under " << root << ": " << ec.message()
                << "\n";
      return 2;
    }
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    const std::string ext = p.extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") {
      continue;
    }
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "amlint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string original = buf.str();
    const std::string code = blank_noncode(original);
    const std::string rel =
        fs::relative(p, root, ec).generic_string();
    ++files;
    check_r1(code, original, rel, &findings);
    if (in_hot_path(rel)) {
      check_r2(code, original, rel, &findings);
      check_r3(code, original, rel, &findings);
    }
    if (in_model_gated(rel)) {
      check_r4(code, original, rel, &findings);
    }
    if (in_shm_scope(rel)) {
      check_r5(code, original, rel, &findings);
      check_r7(code, original, rel, &findings);
    }
    if (in_hot_path(rel) || in_shm_scope(rel)) {
      check_r6(code, original, rel, &findings);
    }
    if (in_edge_scope(rel)) {
      check_r8(code, original, rel, &findings);
      collect_edge_sites(original, rel, &sites);
    }
  }

  if (!edges_path.empty()) {
    std::vector<EdgeDecl> decls;
    if (!load_edges(edges_path, &decls)) {
      std::cerr << "amlint: cannot read edge manifest " << edges_path << "\n";
      return 2;
    }
    check_r9(decls, sites, edges_path, &findings);
  }

  std::vector<Finding> reported;
  for (const Finding& f : findings) {
    if (allowed(f, &allow)) continue;
    reported.push_back(f);
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n    " << f.excerpt << "\n";
  }
  for (const AllowEntry& e : allow) {
    if (e.used) continue;
    const std::string entry =
        e.rule + "|" + e.path_part + "|" + e.line_part;
    if (strict_unused) {
      reported.push_back({allow_path, 0, "ALLOW",
                          "unused allowlist entry (strict mode): " + entry,
                          entry});
      std::cout << allow_path << ":0: [ALLOW] unused allowlist entry "
                << "(strict mode): " << entry << "\n";
    } else {
      std::cerr << "amlint: warning: unused allowlist entry: " << entry
                << "\n";
    }
  }
  if (!sarif_path.empty() && !write_sarif(sarif_path, reported)) {
    std::cerr << "amlint: cannot write SARIF to " << sarif_path << "\n";
    return 2;
  }
  std::cout << "amlint: " << files << " files, " << reported.size()
            << " finding(s)";
  if (!allow.empty()) {
    std::size_t used = 0;
    for (const AllowEntry& e : allow) used += e.used ? 1 : 0;
    std::cout << ", " << used << " allowlisted";
  }
  std::cout << "\n";
  return reported.empty() ? 0 : 1;
}
