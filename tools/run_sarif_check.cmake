# Test driver for AmlintSarifValid: run amlint --sarif over the clean tree,
# then structurally validate the emitted file with check_sarif.py. A ctest
# COMMAND runs one process; this script chains the two.
#
# Expects: AMLINT (lint binary), SRC_ROOT (tree to scan), TOOLS_DIR
# (allowlist/manifest/validator location), OUT_DIR (writable).

set(sarif "${OUT_DIR}/amlint.sarif")
execute_process(
  COMMAND "${AMLINT}" "${SRC_ROOT}"
          --allow "${TOOLS_DIR}/amlint_allow.txt"
          --edges "${TOOLS_DIR}/edges.toml"
          --strict-unused
          --sarif "${sarif}"
  RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "amlint exited ${lint_rc} on the clean tree")
endif()

find_program(PYTHON3 python3 REQUIRED)
execute_process(
  COMMAND "${PYTHON3}" "${TOOLS_DIR}/check_sarif.py" "${sarif}"
          --expect-results 0
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_sarif.py rejected ${sarif}")
endif()
