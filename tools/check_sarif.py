#!/usr/bin/env python3
"""Structural validator for amlint --sarif output.

The CI lint job uploads the SARIF file for code scanning; a malformed file
is silently dropped by the uploader, so the self-check fails loudly here
instead. This is a hand-rolled structural check (the container has no
jsonschema package): it verifies the SARIF 2.1.0 shape that uploaders
actually require — version, runs, tool.driver with name and rules, and for
every result a known ruleId, a level, a message text and a physical
location with a uri and a positive integer startLine.

Usage: check_sarif.py <file.sarif> [--expect-results N]
Exit: 0 valid, 1 invalid, 2 usage/IO error.
"""

import json
import re
import sys

RULE_ID = re.compile(r"^(R[1-9]|ALLOW)$")


def fail(msg):
    print(f"check_sarif: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    expect_results = None
    if len(argv) == 4 and argv[2] == "--expect-results":
        expect_results = int(argv[3])
    elif len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    if doc.get("version") != "2.1.0":
        fail(f"version is {doc.get('version')!r}, want '2.1.0'")
    schema = doc.get("$schema", "")
    if "sarif-2.1.0" not in schema:
        fail(f"$schema {schema!r} does not name sarif-2.1.0")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty list")

    total_results = 0
    for ri, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if driver.get("name") != "amlint":
            fail(f"runs[{ri}].tool.driver.name is {driver.get('name')!r}")
        rules = driver.get("rules")
        if not isinstance(rules, list) or not rules:
            fail(f"runs[{ri}] has no tool.driver.rules")
        rule_ids = set()
        for rule in rules:
            rid = rule.get("id", "")
            if not RULE_ID.match(rid):
                fail(f"rule id {rid!r} does not match {RULE_ID.pattern}")
            if not rule.get("shortDescription", {}).get("text"):
                fail(f"rule {rid} lacks shortDescription.text")
            rule_ids.add(rid)
        results = run.get("results")
        if not isinstance(results, list):
            fail(f"runs[{ri}].results must be a list (may be empty)")
        for i, res in enumerate(results):
            where = f"runs[{ri}].results[{i}]"
            if res.get("ruleId") not in rule_ids:
                fail(f"{where}.ruleId {res.get('ruleId')!r} not in driver "
                     "rules")
            if res.get("level") not in ("error", "warning", "note"):
                fail(f"{where}.level {res.get('level')!r} invalid")
            if not res.get("message", {}).get("text"):
                fail(f"{where}.message.text missing or empty")
            locs = res.get("locations")
            if not isinstance(locs, list) or not locs:
                fail(f"{where}.locations must be a non-empty list")
            phys = locs[0].get("physicalLocation", {})
            uri = phys.get("artifactLocation", {}).get("uri")
            if not uri:
                fail(f"{where} lacks artifactLocation.uri")
            start = phys.get("region", {}).get("startLine")
            if not isinstance(start, int) or start < 1:
                fail(f"{where}.region.startLine {start!r} is not a positive "
                     "int")
        total_results += len(results)

    if expect_results is not None and total_results != expect_results:
        fail(f"expected {expect_results} result(s), found {total_results}")
    print(f"check_sarif: OK: {path} ({total_results} result(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
