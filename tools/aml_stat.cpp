// aml_stat — read-only inspector for a cross-process lock-service segment.
//
// Attaches to a live *or orphaned* shm segment (the attach replay verifies
// the layout either way; the configuration is discovered from the segment's
// own ServiceHeader, so no config flags are needed) and renders the state
// the service journals about itself:
//
//   aml_stat <segment>                 one JSON snapshot to stdout
//   aml_stat <segment> --watch [sec]   human-readable refresh loop
//   aml_stat <segment> --trace out.json  Chrome-trace export of the ring
//                                        (open in Perfetto / chrome://tracing)
//   aml_stat <segment> --tail N        ring events to include (default 64)
//
// Post-mortem workflow: a SIGKILLed holder leaves the segment behind (or a
// survivor keeps it alive); `aml_stat <segment>` shows the victim's lease
// state, its last journaled phase per stripe, its final ring events, and —
// once a survivor has swept — the recovery dispatch counters that repaired
// it. aml_stat itself performs no stores: it never leases a pid, never
// touches a lock word, and is safe to point at a production segment.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aml/ipc/shm_table.hpp"
#include "aml/ipc/stat_snapshot.hpp"
#include "aml/obs/shm_metrics.hpp"
#include "aml/obs/trace_export.hpp"

namespace {

using aml::ipc::ShmNamedLockTable;
using aml::ipc::ShmTableConfig;

int usage(const char* argv0, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0
     << " <segment-name> [--json] [--watch [seconds]] [--trace <out.json>]"
        " [--tail <n>]\n"
        "Read-only inspector for an aml::ipc lock-service shm segment\n"
        "(live or orphaned). Default output is one JSON snapshot.\n";
  return code;
}

void print_watch(std::ostream& os, ShmNamedLockTable& table) {
  const aml::ipc::ShmTableConfig& cfg = table.config();
  aml::obs::ShmMetrics& shm = table.shm_metrics();
  const std::uint64_t now = aml::obs::ShmMetrics::now_ns();

  os << "\033[2J\033[H";  // clear + home
  os << "segment " << table.arena().name() << "   nprocs " << cfg.nprocs
     << "  stripes " << cfg.stripes << "  epoch " << table.registry().epoch()
     << "  ring " << shm.ring_total() << "/"
     << cfg.ring_capacity << " (" << shm.ring_dropped() << " dropped)\n\n";

  os << "pid  state       os_pid   heartbeat  age_ms   phases\n";
  for (aml::ipc::Pid p = 0; p < cfg.nprocs; ++p) {
    auto& reg = table.registry();
    const auto st = reg.state(p);
    const char* name = "?";
    switch (st) {
      case aml::ipc::ProcessRegistry::kFree: name = "free"; break;
      case aml::ipc::ProcessRegistry::kLive: name = "live"; break;
      case aml::ipc::ProcessRegistry::kRecovering:
        name = "recovering";
        break;
      case aml::ipc::ProcessRegistry::kZombie: name = "zombie"; break;
    }
    os << p << "    " << name;
    for (std::size_t pad = std::strlen(name); pad < 12; ++pad) os << ' ';
    os << reg.os_pid(p) << "\t " << reg.heartbeat(p) << "\t    ";
    const std::uint64_t beat = reg.heartbeat_ns(p);
    if (beat != 0 && now > beat) {
      os << (now - beat) / 1'000'000;
    } else {
      os << "-";
    }
    os << "\t    ";
    for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
      const aml::ipc::Phase ph = table.stripe(s).peek_phase(p);
      if (ph == aml::ipc::kIdle) continue;
      os << "s" << s << ":" << aml::ipc::phase_name(ph) << " ";
    }
    os << "\n";
  }

  const auto totals = shm.totals();
  const auto rec = shm.recovery_totals();
  os << "\nacquisitions " << totals.acquisitions << "   aborts "
     << totals.aborts << "   switches " << totals.instance_switches
     << "\nrecovery: forced_exits " << rec.forced_exits
     << "  complete_grants " << rec.complete_grants << "  forced_aborts "
     << rec.aborts_on_behalf << "  resignals " << rec.resignals
     << "  fa_completed " << rec.fa_completed << "  fa_compensated "
     << rec.fa_compensated << "  zombies " << rec.zombie_retires << "\n";
  const auto sweep = shm.sweep_latency();
  if (sweep.count != 0) {
    os << "sweep latency (ns): count " << sweep.count << "  p50 "
       << sweep.p50 << "  p99 " << sweep.p99 << "\n";
  }
  os.flush();
}

}  // namespace

int main(int argc, char** argv) {
  std::string segment;
  std::string trace_path;
  bool watch = false;
  double watch_seconds = 1.0;
  bool json = false;
  aml::ipc::StatOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--watch") {
      watch = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        watch_seconds = std::atof(argv[++i]);
        if (watch_seconds <= 0) watch_seconds = 1.0;
      }
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--tail" && i + 1 < argc) {
      opt.ring_tail = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "aml_stat: unknown flag " << arg << "\n";
      return usage(argv[0], 2);
    } else if (segment.empty()) {
      segment = arg;
    } else {
      return usage(argv[0], 2);
    }
  }
  if (segment.empty()) return usage(argv[0], 2);

  // Discover the creator's configuration from the segment itself, then
  // attach with it (the replay re-verifies the layout end to end).
  std::string error;
  ShmTableConfig cfg;
  if (!ShmNamedLockTable::peek_config(segment, &cfg, &error)) {
    std::cerr << "aml_stat: " << error << "\n";
    return 1;
  }
  auto table = ShmNamedLockTable::attach(segment, cfg, &error,
                                         std::chrono::seconds(2));
  if (table == nullptr) {
    std::cerr << "aml_stat: " << error << "\n";
    return 1;
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "aml_stat: cannot write " << trace_path << "\n";
      return 1;
    }
    aml::obs::write_chrome_trace(out,
                                 table->shm_metrics().ring_snapshot());
    std::cerr << "aml_stat: wrote trace to " << trace_path << "\n";
    if (!json && !watch) return 0;
  }

  if (watch) {
    for (;;) {
      print_watch(std::cout, *table);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(watch_seconds * 1000)));
    }
  }

  write_stat_json(std::cout, *table, opt);
  return 0;
}
