#include "aml/pal/cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace aml::pal {
namespace {

TEST(CachePadded, AlignmentAndStride) {
  static_assert(alignof(CachePadded<std::uint64_t>) == kCacheLine);
  static_assert(sizeof(CachePadded<std::uint64_t>) % kCacheLine == 0);
  CachePadded<std::uint64_t> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i]);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1]);
    EXPECT_GE(b - a, kCacheLine);
  }
}

TEST(CachePadded, ValueAccess) {
  CachePadded<int> v(41);
  EXPECT_EQ(*v, 41);
  *v += 1;
  EXPECT_EQ(v.value, 42);
}

}  // namespace
}  // namespace aml::pal
