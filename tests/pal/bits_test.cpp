// Exhaustive and randomized checks of the W-bit word helpers against brute
// force reference implementations (the Tree's correctness rests on these).
#include "aml/pal/bits.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace aml::pal {
namespace {

// Reference: bit value at `offset` (0 = leftmost of the W-bit word).
unsigned ref_bit(std::uint64_t snap, unsigned w, unsigned offset) {
  return static_cast<unsigned>((snap >> (w - 1 - offset)) & 1);
}

bool ref_has_zero_right(std::uint64_t snap, unsigned w, int offset) {
  for (int o = offset + 1; o < static_cast<int>(w); ++o) {
    if (ref_bit(snap, w, static_cast<unsigned>(o)) == 0) return true;
  }
  return false;
}

int ref_first_zero_right(std::uint64_t snap, unsigned w, int offset) {
  for (int o = offset + 1; o < static_cast<int>(w); ++o) {
    if (ref_bit(snap, w, static_cast<unsigned>(o)) == 0) return o;
  }
  return -1;
}

TEST(Bits, EmptyWord) {
  EXPECT_EQ(empty_word(2), 0b11u);
  EXPECT_EQ(empty_word(8), 0xFFu);
  EXPECT_EQ(empty_word(63), (std::uint64_t{1} << 63) - 1);
  EXPECT_EQ(empty_word(64), ~std::uint64_t{0});
}

TEST(Bits, OffsetMaskIsMsbFirst) {
  // Offset 0 is the most significant bit of the W-bit word.
  EXPECT_EQ(offset_mask(8, 0), 0x80u);
  EXPECT_EQ(offset_mask(8, 7), 0x01u);
  EXPECT_EQ(offset_mask(64, 0), std::uint64_t{1} << 63);
  EXPECT_EQ(offset_mask(64, 63), 1u);
  // Setting every offset yields EMPTY.
  for (unsigned w : {2u, 3u, 5u, 64u}) {
    std::uint64_t acc = 0;
    for (unsigned o = 0; o < w; ++o) acc |= offset_mask(w, o);
    EXPECT_EQ(acc, empty_word(w)) << "w=" << w;
  }
}

TEST(Bits, BitAtRoundTrip) {
  for (unsigned w : {2u, 4u, 8u}) {
    for (unsigned o = 0; o < w; ++o) {
      EXPECT_EQ(bit_at(offset_mask(w, o), w, o), 1u);
      EXPECT_EQ(popcount_w(offset_mask(w, o), w), 1u);
    }
  }
}

TEST(Bits, HasZeroToTheRightExhaustiveSmallW) {
  for (unsigned w = 2; w <= 8; ++w) {
    const std::uint64_t limit = std::uint64_t{1} << w;
    for (std::uint64_t snap = 0; snap < limit; ++snap) {
      for (int offset = -1; offset < static_cast<int>(w); ++offset) {
        EXPECT_EQ(has_zero_to_the_right(snap, w, offset),
                  ref_has_zero_right(snap, w, offset))
            << "w=" << w << " snap=" << snap << " offset=" << offset;
      }
    }
  }
}

TEST(Bits, FirstZeroToTheRightExhaustiveSmallW) {
  for (unsigned w = 2; w <= 8; ++w) {
    const std::uint64_t limit = std::uint64_t{1} << w;
    for (std::uint64_t snap = 0; snap < limit; ++snap) {
      for (int offset = -1; offset < static_cast<int>(w); ++offset) {
        const int expected = ref_first_zero_right(snap, w, offset);
        if (expected < 0) continue;  // precondition: a zero exists
        EXPECT_EQ(
            static_cast<int>(first_zero_to_the_right(snap, w, offset)),
            expected)
            << "w=" << w << " snap=" << snap << " offset=" << offset;
      }
    }
  }
}

TEST(Bits, FirstZeroMatchesOffsetMinusOne) {
  for (unsigned w = 2; w <= 6; ++w) {
    const std::uint64_t limit = std::uint64_t{1} << w;
    for (std::uint64_t snap = 0; snap + 1 < limit; ++snap) {
      EXPECT_EQ(first_zero(snap, w),
                first_zero_to_the_right(snap, w, -1));
    }
  }
}

TEST(Bits, Width64EdgeCases) {
  const unsigned w = 64;
  EXPECT_TRUE(has_zero_to_the_right(0, w, -1));
  EXPECT_TRUE(has_zero_to_the_right(0, w, 0));
  EXPECT_FALSE(has_zero_to_the_right(~std::uint64_t{0}, w, -1));
  EXPECT_FALSE(has_zero_to_the_right(0, w, 63));  // nothing right of last
  // Only bit 63 (offset 63, the LSB) is zero.
  const std::uint64_t snap = ~std::uint64_t{0} << 1;
  EXPECT_TRUE(has_zero_to_the_right(snap, w, 5));
  EXPECT_EQ(first_zero_to_the_right(snap, w, 5), 63u);
  EXPECT_EQ(first_zero(snap, w), 63u);
  // Only the MSB (offset 0) is zero: not to the right of anything >= 0.
  const std::uint64_t snap2 = ~std::uint64_t{0} >> 1;
  EXPECT_FALSE(has_zero_to_the_right(snap2, w, 0));
  EXPECT_TRUE(has_zero_to_the_right(snap2, w, -1));
  EXPECT_EQ(first_zero(snap2, w), 0u);
}

// Local splitmix for the randomized test (avoid depending on rng.hpp here).
std::uint64_t splitmix64_like(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

TEST(Bits, RandomizedWide) {
  std::uint64_t state = 42;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t snap = splitmix64_like(state);
    for (unsigned w : {16u, 32u, 48u, 64u}) {
      const std::uint64_t masked = snap & empty_word(w);
      for (int offset : {-1, 0, 3, static_cast<int>(w) - 2,
                         static_cast<int>(w) - 1}) {
        const bool expected = ref_has_zero_right(masked, w, offset);
        ASSERT_EQ(has_zero_to_the_right(masked, w, offset), expected);
        if (expected) {
          ASSERT_EQ(static_cast<int>(
                        first_zero_to_the_right(masked, w, offset)),
                    ref_first_zero_right(masked, w, offset));
        }
      }
    }
  }
}

TEST(Bits, CeilLog) {
  EXPECT_EQ(ceil_log(1, 2), 0u);
  EXPECT_EQ(ceil_log(2, 2), 1u);
  EXPECT_EQ(ceil_log(3, 2), 2u);
  EXPECT_EQ(ceil_log(4, 2), 2u);
  EXPECT_EQ(ceil_log(5, 2), 3u);
  EXPECT_EQ(ceil_log(64, 8), 2u);
  EXPECT_EQ(ceil_log(65, 8), 3u);
  EXPECT_EQ(ceil_log(1u << 30, 2), 30u);
  EXPECT_EQ(ceil_log(1000, 10), 3u);
  EXPECT_EQ(ceil_log(1001, 10), 4u);
  EXPECT_EQ(ceil_log(4096, 64), 2u);
  EXPECT_EQ(ceil_log(4097, 64), 3u);
}

TEST(Bits, PowSat) {
  EXPECT_EQ(pow_sat(2, 0), 1u);
  EXPECT_EQ(pow_sat(2, 10), 1024u);
  EXPECT_EQ(pow_sat(64, 2), 4096u);
  EXPECT_EQ(pow_sat(2, 64), ~std::uint64_t{0});  // saturates
}

}  // namespace
}  // namespace aml::pal
