#include "aml/pal/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "aml/pal/backoff.hpp"

namespace aml::pal {
namespace {

TEST(SpinBarrierTest, SynchronizesPhases) {
  constexpr std::uint32_t kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> order_violation{false};
  run_threads(kThreads, [&](std::uint32_t) {
    for (int phase = 0; phase < 10; ++phase) {
      phase_counter.fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier, all kThreads arrivals of this phase happened.
      if (phase_counter.load() < (phase + 1) * static_cast<int>(kThreads)) {
        order_violation.store(true);
      }
      barrier.arrive_and_wait();  // second barrier separates the check
    }
  });
  EXPECT_FALSE(order_violation.load());
  EXPECT_EQ(phase_counter.load(), 40);
}

TEST(SpinBarrierTest, SingleParticipantNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

TEST(RunThreadsTest, PassesDistinctIndices) {
  std::atomic<std::uint32_t> mask{0};
  run_threads(8, [&](std::uint32_t t) { mask.fetch_or(1u << t); });
  EXPECT_EQ(mask.load(), 0xFFu);
}

TEST(BackoffTest, PauseAndResetDoNotWedge) {
  Backoff backoff;
  for (int i = 0; i < 100; ++i) backoff.pause();
  backoff.reset();
  backoff.pause();
  SUCCEED();
}

}  // namespace
}  // namespace aml::pal
