#include "aml/pal/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace aml::pal {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChancePpmExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance_ppm(0));
    EXPECT_TRUE(rng.chance_ppm(1000000));
  }
}

TEST(Rng, ChancePpmRoughlyCalibrated) {
  Xoshiro256 rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance_ppm(250000)) ++hits;  // 25%
  }
  EXPECT_GT(hits, trials / 5);
  EXPECT_LT(hits, trials * 3 / 10);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Zipf, SamplesInRangeAndDeterministic) {
  ZipfDistribution zipf(100, 0.99);
  Xoshiro256 a(17), b(17);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = zipf(a);
    EXPECT_LT(x, 100u);
    EXPECT_EQ(x, zipf(b));  // same seed, same stream
  }
}

TEST(Zipf, SkewFavorsSmallKeys) {
  // With theta = 0.99 over 100 keys, key 0 alone carries ~19% of the mass;
  // the top-10 keys carry well over half.
  ZipfDistribution zipf(100, 0.99);
  Xoshiro256 rng(23);
  const int trials = 100000;
  int head = 0, top10 = 0;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t x = zipf(rng);
    if (x == 0) ++head;
    if (x < 10) ++top10;
  }
  EXPECT_GT(head, trials / 8);
  EXPECT_LT(head, trials / 3);
  EXPECT_GT(top10, trials / 2);
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfDistribution zipf(8, 0.0);
  Xoshiro256 rng(29);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) counts[zipf(rng)]++;
  for (const int c : counts) {
    EXPECT_GT(c, trials / 8 - trials / 40);  // within ~20% of 1/8 each
    EXPECT_LT(c, trials / 8 + trials / 40);
  }
}

}  // namespace
}  // namespace aml::pal
