#include "aml/pal/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace aml::pal {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChancePpmExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance_ppm(0));
    EXPECT_TRUE(rng.chance_ppm(1000000));
  }
}

TEST(Rng, ChancePpmRoughlyCalibrated) {
  Xoshiro256 rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance_ppm(250000)) ++hits;  // 25%
  }
  EXPECT_GT(hits, trials / 5);
  EXPECT_LT(hits, trials * 3 / 10);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace aml::pal
