// Key hashing and stripe-count rounding: determinism, avalanche sanity, and
// the round_up_pow2 domain fix (the old loop spun forever past 2^31).
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>

#include "aml/table/hash.hpp"

namespace aml::table {
namespace {

TEST(Hash, IntegerHashIsDeterministicAndMixed) {
  EXPECT_EQ(key_hash(std::uint64_t{42}), key_hash(std::uint64_t{42}));
  EXPECT_NE(key_hash(std::uint64_t{42}), key_hash(std::uint64_t{43}));
  // Low bits must differ for adjacent keys (the stripe map masks low bits).
  int low_bit_diffs = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    if ((key_hash(k) & 0xF) != (key_hash(k + 1) & 0xF)) ++low_bit_diffs;
  }
  EXPECT_GT(low_bit_diffs, 32);
}

TEST(Hash, StringHashMatchesAcrossCalls) {
  EXPECT_EQ(key_hash(std::string_view{"acct:alice"}),
            key_hash(std::string_view{"acct:alice"}));
  EXPECT_NE(key_hash(std::string_view{"acct:alice"}),
            key_hash(std::string_view{"acct:bob"}));
  EXPECT_NE(key_hash(std::string_view{""}),
            key_hash(std::string_view{"a"}));
}

TEST(Hash, RoundUpPow2CoversDomain) {
  EXPECT_EQ(round_up_pow2(1), 1u);
  EXPECT_EQ(round_up_pow2(2), 2u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(5), 8u);
  EXPECT_EQ(round_up_pow2(1023), 1024u);
  EXPECT_EQ(round_up_pow2(1024), 1024u);
  // The values that made the old shift loop spin forever: anything above
  // 2^31 has no uint32_t power-of-two ceiling. The boundary itself is fine.
  EXPECT_EQ(round_up_pow2((1u << 31) - 1), 1u << 31);
  EXPECT_EQ(round_up_pow2(1u << 31), 1u << 31);
  // Compile-time evaluation still works (AML_ASSERT's failure branch is
  // never constant-evaluated on valid input).
  static_assert(round_up_pow2(6) == 8);
}

#if GTEST_HAS_DEATH_TEST
TEST(HashDeathTest, RoundUpPow2RejectsOutOfDomain) {
  EXPECT_DEATH(round_up_pow2(0), "round_up_pow2");
  EXPECT_DEATH(round_up_pow2((1u << 31) + 1), "round_up_pow2");
}
#endif

}  // namespace
}  // namespace aml::table
