// LockTable on the counting CC model under the deterministic scheduler:
// mutual exclusion per stripe, key -> stripe mapping, all-or-nothing
// multi-key acquisition, abort-path release, and replay determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"
#include "aml/sched/scheduler.hpp"
#include "aml/table/lock_table.hpp"

namespace aml::table {
namespace {

using model::CountingCcModel;
using model::Pid;

using CcTable = LockTable<CountingCcModel>;

TEST(LockTableModel, StripeMapIsStableAndInRange) {
  CountingCcModel mem(2);
  CcTable table(mem, {.max_threads = 2, .stripes = 5});  // rounds up to 8
  EXPECT_EQ(table.stripe_count(), 8u);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const std::uint32_t s = table.stripe_of(key);
    EXPECT_LT(s, table.stripe_count());
    EXPECT_EQ(s, table.stripe_of(key));  // deterministic
  }
  EXPECT_EQ(table.stripe_of(std::string_view{"acct:alice"}),
            table.stripe_of(std::string_view{"acct:alice"}));
}

TEST(LockTableModel, PlanSortsAndDeduplicates) {
  CountingCcModel mem(2);
  CcTable table(mem, {.max_threads = 2, .stripes = 4});
  // Enough keys that some certainly collide on 4 stripes.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 32; ++k) keys.push_back(k);
  const std::vector<std::uint32_t> order = table.plan(keys);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(std::adjacent_find(order.begin(), order.end()), order.end());
  EXPECT_LE(order.size(), 4u);
  EXPECT_GE(order.size(), 1u);
}

// Zipfian keys, every process contending: per-stripe mutual exclusion holds
// on every interleaving the seed produces.
TEST(LockTableModel, PerStripeMutualExclusion) {
  constexpr Pid kProcs = 4;
  constexpr std::uint32_t kStripes = 4;
  constexpr std::uint32_t kRounds = 12;
  CountingCcModel mem(kProcs);
  CcTable table(mem, {.max_threads = kProcs, .stripes = kStripes, .tree_width = 8});

  std::deque<std::atomic<int>> in_cs(table.stripe_count());
  std::atomic<bool> violation{false};
  pal::ZipfDistribution zipf(64, 0.99);

  sched::StepScheduler::Config cfg;
  cfg.seed = 42;
  sched::StepScheduler scheduler(kProcs, std::move(cfg));
  mem.set_hook(&scheduler);
  scheduler.run([&](Pid p) {
    pal::Xoshiro256 rng(p * 31 + 7);
    for (std::uint32_t r = 0; r < kRounds; ++r) {
      const std::uint64_t key = zipf(rng);
      const std::uint32_t s = table.stripe_of(key);
      ASSERT_TRUE(table.enter(p, key));
      if (in_cs[s].fetch_add(1, std::memory_order_acq_rel) != 0) {
        violation.store(true, std::memory_order_release);
      }
      in_cs[s].fetch_sub(1, std::memory_order_acq_rel);
      table.exit(p, key);
    }
  });
  mem.set_hook(nullptr);
  EXPECT_FALSE(violation.load());
}

// Multi-key acquisition: all stripes of the plan are held simultaneously.
TEST(LockTableModel, EnterAllHoldsEveryStripe) {
  constexpr Pid kProcs = 3;
  CountingCcModel mem(kProcs);
  CcTable table(mem, {.max_threads = kProcs, .stripes = 8, .tree_width = 8});

  std::deque<std::atomic<int>> in_cs(table.stripe_count());
  std::atomic<bool> violation{false};

  sched::StepScheduler::Config cfg;
  cfg.seed = 7;
  sched::StepScheduler scheduler(kProcs, std::move(cfg));
  mem.set_hook(&scheduler);
  scheduler.run([&](Pid p) {
    pal::Xoshiro256 rng(p * 97 + 3);
    for (std::uint32_t r = 0; r < 8; ++r) {
      std::vector<std::uint64_t> keys{rng.below(64), rng.below(64),
                                      rng.below(64)};
      const std::vector<std::uint32_t> order = table.plan(keys);
      ASSERT_TRUE(table.enter_all(p, order));
      for (const std::uint32_t s : order) {
        if (in_cs[s].fetch_add(1, std::memory_order_acq_rel) != 0) {
          violation.store(true, std::memory_order_release);
        }
      }
      for (const std::uint32_t s : order) {
        in_cs[s].fetch_sub(1, std::memory_order_acq_rel);
      }
      table.exit_all(p, order);
    }
  });
  mem.set_hook(nullptr);
  EXPECT_FALSE(violation.load());
}

// All-or-nothing: p1's enter_all crosses a stripe p0 holds; p1's abort
// signal is raised while it waits, and every stripe p1 had already taken
// must be released — p1 then re-acquires each singly (a leak would park p1
// forever and the scheduler would abort on the liveness violation).
TEST(LockTableModel, EnterAllAbortReleasesPrefix) {
  constexpr Pid kProcs = 2;
  CountingCcModel mem(kProcs);
  CcTable table(mem, {.max_threads = kProcs, .stripes = 8, .tree_width = 8});

  // Find a key for p0 whose stripe sits strictly inside p1's plan, so p1
  // acquires at least one stripe before blocking on p0's.
  std::vector<std::uint32_t> all_stripes;
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    all_stripes.push_back(s);
  }
  const std::uint32_t blocked_stripe = 4;
  std::atomic<bool> p1_aborted{false};

  CountingCcModel::Word* gate = mem.alloc(1, 0);
  std::deque<std::atomic<bool>> signals(kProcs);

  sched::StepScheduler::Config cfg;
  cfg.seed = 3;
  // p0 first so it certainly holds blocked_stripe before p1's sweep arrives.
  cfg.policy = sched::policies::prefer({0});
  sched::StepScheduler scheduler(kProcs, std::move(cfg));
  bool signal_raised = false;
  bool gate_opened = false;
  scheduler.set_idle_callback([&]() {
    if (!signal_raised) {
      // Everyone is parked: p0 on the gate, p1 on blocked_stripe. Abort p1.
      signal_raised = true;
      signals[1].store(true, std::memory_order_release);
      return true;
    }
    if (!gate_opened) {
      gate_opened = true;
      mem.poke(*gate, 1);
      return true;
    }
    return false;
  });

  mem.set_hook(&scheduler);
  scheduler.run([&](Pid p) {
    if (p == 0) {
      ASSERT_TRUE(table.enter_stripe(0, blocked_stripe));
      mem.wait(
          0, *gate, [](std::uint64_t v) { return v != 0; }, nullptr);
      table.exit_stripe(0, blocked_stripe);
    } else {
      const bool ok = table.enter_all(1, all_stripes, &signals[1]);
      EXPECT_FALSE(ok);
      p1_aborted.store(true, std::memory_order_release);
      // Every stripe below blocked_stripe was acquired and must have been
      // released; re-acquire each one singly. A leaked stripe deadlocks here
      // and the scheduler hard-aborts.
      for (std::uint32_t s = 0; s < blocked_stripe; ++s) {
        ASSERT_TRUE(table.enter_stripe(1, s));
        table.exit_stripe(1, s);
      }
    }
  });
  mem.set_hook(nullptr);
  EXPECT_TRUE(p1_aborted.load());
}

// Replay determinism: the same seed produces the identical RMR trace —
// the property the BENCH_table_* byte-stability contract rests on.
TEST(LockTableModel, SameSeedSameRmrTrace) {
  auto run = [](std::uint64_t seed) {
    constexpr Pid kProcs = 4;
    CountingCcModel mem(kProcs);
    CcTable table(mem,
                  {.max_threads = kProcs, .stripes = 4, .tree_width = 8});
    pal::ZipfDistribution zipf(32, 0.99);
    sched::StepScheduler::Config cfg;
    cfg.seed = seed;
    sched::StepScheduler scheduler(kProcs, std::move(cfg));
    mem.set_hook(&scheduler);
    scheduler.run([&](Pid p) {
      pal::Xoshiro256 rng(p + seed);
      for (std::uint32_t r = 0; r < 10; ++r) {
        const std::uint64_t key = zipf(rng);
        table.enter(p, key);
        table.exit(p, key);
      }
    });
    mem.set_hook(nullptr);
    std::vector<std::uint64_t> rmrs;
    for (Pid p = 0; p < kProcs; ++p) rmrs.push_back(mem.counters(p).rmrs);
    return rmrs;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // and the seed actually matters
}

}  // namespace
}  // namespace aml::table
