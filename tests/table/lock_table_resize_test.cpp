// Epoch-based stripe resizing under the deterministic scheduler: mutual
// exclusion and hand-off across the generation transition, drain/retire
// bookkeeping, the always-on StripeStats block, and the grow policy.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "aml/analysis/oracles.hpp"
#include "aml/harness/audit.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"
#include "aml/sched/scheduler.hpp"
#include "aml/table/lock_table.hpp"

namespace aml::table {
namespace {

using model::CountingCcModel;
using model::Pid;

using CcTable = LockTable<CountingCcModel>;

// Single-threaded lifecycle: grow-only semantics, epoch accounting, and the
// drain/retire handshake driven through one thread's pin.
TEST(LockTableResize, GrowOnlyAndDrainGate) {
  CountingCcModel mem(1);
  CcTable table(mem, {.max_threads = 1, .stripes = 4, .tree_width = 8});
  EXPECT_EQ(table.epoch(), 0u);
  EXPECT_FALSE(table.draining());

  // Not larger -> refused.
  EXPECT_FALSE(table.resize(4));
  EXPECT_FALSE(table.resize(2));
  EXPECT_EQ(table.stripe_count(), 4u);

  // Hold a key across the resize: the old generation stays pinned, so the
  // table reports draining and refuses a second grow until the exit.
  ASSERT_TRUE(table.enter(0, std::uint64_t{7}));
  EXPECT_TRUE(table.resize(8));
  EXPECT_EQ(table.stripe_count(), 8u);
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_TRUE(table.draining());
  EXPECT_FALSE(table.resize(16));  // previous generation not yet retired

  table.exit(0, std::uint64_t{7});
  EXPECT_FALSE(table.draining());
  EXPECT_TRUE(table.resize(16));  // drain complete; grow proceeds
  EXPECT_EQ(table.epoch(), 2u);
  EXPECT_EQ(table.stripe_count(), 16u);
}

// A passage that starts during the drain must still exclude a pre-resize
// holder of the same key, and the pre-resize holder's exit must hand the
// lock over (no lost wakeup): p0 acquires key K and parks on a gate; the
// resize happens while p0 holds; p1 then contends for K and must block until
// p0 exits, acquire, and finish.
TEST(LockTableResize, MutualExclusionAcrossEpochTransition) {
  constexpr Pid kProcs = 2;
  constexpr std::uint64_t kKey = 42;
  CountingCcModel mem(kProcs);
  CcTable table(mem, {.max_threads = kProcs, .stripes = 4, .tree_width = 8});

  CountingCcModel::Word* gate = mem.alloc(1, 0);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<bool> p1_done{false};
  bool resized = false;
  bool gate_opened = false;
  std::uint64_t epoch_at_p1_enter = 0;

  sched::StepScheduler::Config cfg;
  cfg.seed = 5;
  cfg.policy = sched::policies::prefer({0});
  sched::StepScheduler scheduler(kProcs, std::move(cfg));
  scheduler.set_idle_callback([&]() {
    // First idle: p0 is parked on the gate holding kKey, p1 is parked
    // waiting for kKey's stripe. Grow the table mid-hold, then release p0.
    if (!resized) {
      resized = true;
      EXPECT_TRUE(table.resize(16));
      EXPECT_TRUE(table.draining());  // p0 (and p1) pinned the old epoch
      return true;
    }
    if (!gate_opened) {
      gate_opened = true;
      mem.poke(*gate, 1);
      return true;
    }
    return false;
  });

  // The generation oracle checks the two-generation protocol at every
  // scheduler decision point of this execution.
  analysis::TableGenOracle<CcTable> gen_oracle(table);
  scheduler.add_invariant_probe([&gen_oracle] { return gen_oracle.check(); });

  mem.set_hook(&scheduler);
  const auto result = scheduler.run([&](Pid p) {
    if (p == 0) {
      ASSERT_TRUE(table.enter(0, kKey));
      if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0) {
        violation.store(true, std::memory_order_release);
      }
      mem.wait(
          0, *gate, [](std::uint64_t v) { return v != 0; }, nullptr);
      in_cs.fetch_sub(1, std::memory_order_acq_rel);
      table.exit(0, kKey);
    } else {
      epoch_at_p1_enter = table.epoch();
      ASSERT_TRUE(table.enter(1, kKey));  // blocks until p0's exit hands off
      if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0) {
        violation.store(true, std::memory_order_release);
      }
      in_cs.fetch_sub(1, std::memory_order_acq_rel);
      table.exit(1, kKey);
      p1_done.store(true, std::memory_order_release);
    }
  });
  mem.set_hook(nullptr);

  EXPECT_TRUE(result.violation.empty()) << result.violation;
  EXPECT_FALSE(violation.load());
  EXPECT_TRUE(p1_done.load());  // the hand-off reached p1: no lost wakeup
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_FALSE(table.draining());  // everyone exited -> old epoch retired

  // Post-resize acquisitions run against the new mask: a fresh passage lands
  // in the new generation's stats block.
  const std::uint32_t s = table.stripe_of(kKey);
  const std::uint64_t before = table.stripe_stats(s).acquisitions;
  ASSERT_TRUE(table.enter(0, kKey));
  table.exit(0, kKey);
  EXPECT_EQ(table.stripe_stats(s).acquisitions, before + 1);
}

// Randomized soak: a resize fires mid-run (via the step callback) while
// every process hammers a small Zipf-hot key set, single- and multi-key.
// Mutual exclusion is checked per KEY (stable across the epoch switch);
// afterwards the old generation must have fully drained.
TEST(LockTableResize, RandomizedMidRunResizeKeepsPerKeyExclusion) {
  constexpr Pid kProcs = 4;
  constexpr std::uint32_t kKeys = 16;
  constexpr std::uint32_t kRounds = 10;
  CountingCcModel mem(kProcs);
  CcTable table(mem, {.max_threads = kProcs, .stripes = 2, .tree_width = 8});

  std::deque<std::atomic<int>> in_cs(kKeys);
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> passages{0};
  bool resized = false;
  harness::EventLog log;

  sched::StepScheduler::Config cfg;
  cfg.seed = 21;
  sched::StepScheduler scheduler(kProcs, std::move(cfg));
  scheduler.set_step_callback([&](std::uint64_t step) {
    // Fires between grants, i.e. while every process is parked at a gate —
    // resize() here interleaves with passages in whatever state the seed
    // left them.
    if (!resized && step == 400) {
      resized = true;
      EXPECT_TRUE(table.resize(8));
    }
  });

  analysis::TableGenOracle<CcTable> gen_oracle(table);
  scheduler.add_invariant_probe([&gen_oracle] { return gen_oracle.check(); });

  mem.set_hook(&scheduler);
  const auto result = scheduler.run([&](Pid p) {
    pal::ZipfDistribution zipf(kKeys, 0.99);
    pal::Xoshiro256 rng(p * 131 + 17);
    for (std::uint32_t r = 0; r < kRounds; ++r) {
      if (r % 3 == 2) {
        // Multi-key passage through the bridged path.
        std::vector<std::uint64_t> keys{zipf(rng), zipf(rng)};
        const auto hashes = table.plan_hashes(keys);
        log.record(p, harness::EventKind::kDoorway);
        ASSERT_TRUE(table.enter_hashes(p, hashes));
        log.record(p, harness::EventKind::kAcquire);
        log.record(p, harness::EventKind::kRelease);
        table.exit_hashes(p, hashes);
        passages.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t key = zipf(rng);
      log.record(p, harness::EventKind::kDoorway);
      ASSERT_TRUE(table.enter(p, key));
      log.record(p, harness::EventKind::kAcquire);
      if (in_cs[key].fetch_add(1, std::memory_order_acq_rel) != 0) {
        violation.store(true, std::memory_order_release);
      }
      in_cs[key].fetch_sub(1, std::memory_order_acq_rel);
      log.record(p, harness::EventKind::kRelease);
      table.exit(p, key);
      passages.fetch_add(1, std::memory_order_relaxed);
    }
  });
  mem.set_hook(nullptr);

  // No generation-protocol violation at any decision point, and every
  // passage that entered its doorway resolved: starvation freedom held
  // across the mid-run resize.
  EXPECT_TRUE(result.violation.empty()) << result.violation;
  const harness::AuditReport audit = harness::audit_long_lived(log.events());
  EXPECT_TRUE(audit.starvation_ok) << audit.to_string();
  EXPECT_EQ(audit.unresolved_attempts, 0u);

  EXPECT_FALSE(violation.load());
  EXPECT_TRUE(resized);
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.stripe_count(), 8u);
  EXPECT_FALSE(table.draining());
  EXPECT_EQ(passages.load(), std::uint64_t{kProcs} * kRounds);
}

// StripeStats: acquisitions/aborts/max_inflight feed the grow policy, and
// maybe_grow doubles exactly when a stripe crossed the threshold.
TEST(LockTableResize, StatsDriveMaybeGrow) {
  CountingCcModel mem(2);
  CcTable table(mem, {.max_threads = 2, .stripes = 4, .tree_width = 8});

  // Below threshold: a single-thread passage peaks at depth 1.
  ASSERT_TRUE(table.enter(0, std::uint64_t{1}));
  table.exit(0, std::uint64_t{1});
  EXPECT_EQ(table.peak_inflight(), 1u);
  EXPECT_FALSE(table.maybe_grow({.inflight_threshold = 2, .max_stripes = 64}));

  // Threshold 1 is met by that same passage -> grow to 8.
  EXPECT_TRUE(table.maybe_grow({.inflight_threshold = 1, .max_stripes = 64}));
  EXPECT_EQ(table.stripe_count(), 8u);
  // New generation starts with fresh stats: nothing hot yet.
  EXPECT_EQ(table.peak_inflight(), 0u);
  EXPECT_FALSE(table.maybe_grow({.inflight_threshold = 1, .max_stripes = 64}));

  // The cap refuses doubling past max_stripes.
  ASSERT_TRUE(table.enter(0, std::uint64_t{2}));
  table.exit(0, std::uint64_t{2});
  EXPECT_FALSE(table.maybe_grow({.inflight_threshold = 1, .max_stripes = 8}));

  // Aborted attempts land in the abort counter, not acquisitions. The
  // stripe must actually be held: on a free stripe hand-off wins ties and a
  // raised signal still grants.
  const std::uint32_t s = table.stripe_of(std::uint64_t{9});
  ASSERT_TRUE(table.enter(0, std::uint64_t{9}));
  std::atomic<bool> raised{true};
  EXPECT_FALSE(table.enter(1, std::uint64_t{9}, &raised));
  EXPECT_EQ(table.stripe_stats(s).aborts, 1u);
  table.exit(0, std::uint64_t{9});
}

// Regression for runaway doubling: a pre-grow contention spike must not
// re-trigger the grow policy on the fresh generation. Each further grow has
// to be provoked by fresh contention on the new, wider array.
TEST(LockTableResize, NoRunawayDoubleGrowAfterDrain) {
  constexpr Pid kProcs = 3;
  CountingCcModel mem(kProcs);
  CcTable table(mem, {.max_threads = kProcs, .stripes = 4, .tree_width = 8});
  const CcTable::GrowPolicy policy{.inflight_threshold = 2, .max_stripes = 64};
  constexpr std::uint64_t kKey = 3;

  // A genuine depth-2 spike. `inflight` covers only the enter() window (a
  // holder is not in flight), so depth 2 needs two processes *concurrently*
  // inside enter(): p0 takes the stripe outside the scheduler and keeps
  // holding, then p1 and p2 both park inside enter() behind it — at that
  // idle point the stripe's in-flight depth is exactly 2 — and the idle
  // callback raises both signals to abort them. Leaves p0 holding.
  std::atomic<bool> stop1{false};
  std::atomic<bool> stop2{false};
  const auto spike = [&] {
    ASSERT_TRUE(table.enter(0, kKey));
    stop1.store(false);
    stop2.store(false);
    sched::StepScheduler::Config cfg;
    cfg.seed = 7;
    sched::StepScheduler scheduler(kProcs, std::move(cfg));
    scheduler.set_idle_callback([&] {
      if (stop1.load(std::memory_order_relaxed)) return false;
      stop1.store(true, std::memory_order_relaxed);
      stop2.store(true, std::memory_order_relaxed);
      return true;
    });
    mem.set_hook(&scheduler);
    const auto result = scheduler.run([&](Pid p) {
      if (p == 1) EXPECT_FALSE(table.enter(1, kKey, &stop1));
      if (p == 2) EXPECT_FALSE(table.enter(2, kKey, &stop2));
    });
    mem.set_hook(nullptr);
    EXPECT_TRUE(result.violation.empty()) << result.violation;
  };

  spike();
  EXPECT_EQ(table.peak_inflight(), 2u);
  EXPECT_TRUE(table.maybe_grow(policy));
  EXPECT_EQ(table.stripe_count(), 8u);
  EXPECT_EQ(table.epoch(), 1u);

  // Drain the old generation.
  EXPECT_TRUE(table.draining());
  table.exit(0, kKey);
  EXPECT_FALSE(table.draining());

  // The spike's high-water mark died with its generation: no re-trigger,
  // however often the policy is evaluated.
  EXPECT_EQ(table.peak_inflight(), 0u);
  EXPECT_FALSE(table.maybe_grow(policy));
  EXPECT_FALSE(table.maybe_grow(policy));
  EXPECT_EQ(table.stripe_count(), 8u);

  // Fresh contention on the new array legitimately double-grows.
  spike();
  table.exit(0, kKey);
  EXPECT_TRUE(table.maybe_grow(policy));
  EXPECT_EQ(table.stripe_count(), 16u);
  EXPECT_EQ(table.epoch(), 2u);
}

// Returns a key whose current-generation stripe is `s`.
std::uint64_t key_on_stripe(const CcTable& table, std::uint32_t s) {
  for (std::uint64_t k = 0;; ++k) {
    if (table.stripe_of(k) == s) return k;
  }
}

// HybridPolicy: a resize re-chooses each new stripe's algorithm from its
// parent's abort rate — storms flip to the paper lock, steady stripes stay
// amortized, thin samples inherit unchanged — and acquisition/abort *rate*
// history carries over (halved) while depth marks do not.
TEST(LockTableResize, HybridPolicyRechoosesPerStripeOnGrow) {
  CountingCcModel mem(2);
  CcTable table(mem, {.max_threads = 2,
                      .stripes = 4,
                      .tree_width = 8,
                      .algo = StripeAlgo::kAmortized,
                      .hybrid = {.enabled = true,
                                 .abort_rate_threshold = 0.5,
                                 .min_samples = 4}});
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(table.stripe_algo(s), StripeAlgo::kAmortized);
  }
  std::atomic<bool> raised{true};

  // Stripe 0: steady — 5 clean passages, abort rate 0.
  const std::uint64_t steady = key_on_stripe(table, 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table.enter(0, steady));
    table.exit(0, steady);
  }

  // Stripe 1: storm — 1 hold, 4 aborted attempts: rate 4/5 >= 0.5.
  const std::uint64_t stormy = key_on_stripe(table, 1);
  ASSERT_TRUE(table.enter(0, stormy));
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(table.enter(1, stormy, &raised));
  }
  table.exit(0, stormy);

  // Stripe 2: thin — 2 attempts, all aborted, below min_samples.
  const std::uint64_t thin = key_on_stripe(table, 2);
  ASSERT_TRUE(table.enter(0, thin));
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(table.enter(1, thin, &raised));
  }
  table.exit(0, thin);

  ASSERT_TRUE(table.resize(8));
  EXPECT_FALSE(table.draining());

  // Children of stripe s are stripes s and s+4 of the new generation.
  EXPECT_EQ(table.stripe_algo(0), StripeAlgo::kAmortized);  // steady stays
  EXPECT_EQ(table.stripe_algo(4), StripeAlgo::kAmortized);
  EXPECT_EQ(table.stripe_algo(1), StripeAlgo::kPaper);  // storm flips
  EXPECT_EQ(table.stripe_algo(5), StripeAlgo::kPaper);
  EXPECT_EQ(table.stripe_algo(2), StripeAlgo::kAmortized);  // thin inherits
  EXPECT_EQ(table.stripe_algo(6), StripeAlgo::kAmortized);

  // Rate history carried over, halved; live counters and depth marks fresh.
  const auto child = table.stripe_stats(1);
  EXPECT_EQ(child.inherited_attempts, 2u);  // (1 acq + 4 aborts) / 2
  EXPECT_EQ(child.inherited_aborts, 2u);
  EXPECT_EQ(child.acquisitions, 0u);
  EXPECT_EQ(child.aborts, 0u);
  EXPECT_EQ(child.max_inflight, 0u);

  // Both algorithms function post-switch: a passage through a flipped
  // stripe and a stayed stripe.
  ASSERT_TRUE(table.enter(0, stormy));
  table.exit(0, stormy);
  ASSERT_TRUE(table.enter(0, steady));
  table.exit(0, steady);
}

// The randomized mid-run-resize soak again, this time with every stripe on
// the amortized lock and the hybrid policy armed: per-key exclusion,
// starvation freedom, and the generation protocol hold regardless of which
// algorithm guards a stripe.
TEST(LockTableResize, RandomizedMidRunResizeAmortizedStripes) {
  constexpr Pid kProcs = 4;
  constexpr std::uint32_t kKeys = 16;
  constexpr std::uint32_t kRounds = 10;
  CountingCcModel mem(kProcs);
  CcTable table(mem, {.max_threads = kProcs,
                      .stripes = 2,
                      .tree_width = 8,
                      .algo = StripeAlgo::kAmortized,
                      .hybrid = {.enabled = true}});

  std::deque<std::atomic<int>> in_cs(kKeys);
  std::atomic<bool> violation{false};
  bool resized = false;
  harness::EventLog log;

  sched::StepScheduler::Config cfg;
  cfg.seed = 33;
  sched::StepScheduler scheduler(kProcs, std::move(cfg));
  scheduler.set_step_callback([&](std::uint64_t step) {
    // >= rather than ==: amortized passages take far fewer gated steps than
    // paper-lock passages, so a fixed late step number may never be reached.
    if (!resized && step >= 150) {
      resized = true;
      EXPECT_TRUE(table.resize(8));
    }
  });

  analysis::TableGenOracle<CcTable> gen_oracle(table);
  scheduler.add_invariant_probe([&gen_oracle] { return gen_oracle.check(); });

  mem.set_hook(&scheduler);
  const auto result = scheduler.run([&](Pid p) {
    pal::ZipfDistribution zipf(kKeys, 0.99);
    pal::Xoshiro256 rng(p * 257 + 11);
    for (std::uint32_t r = 0; r < kRounds; ++r) {
      const std::uint64_t key = zipf(rng);
      log.record(p, harness::EventKind::kDoorway);
      ASSERT_TRUE(table.enter(p, key));
      log.record(p, harness::EventKind::kAcquire);
      if (in_cs[key].fetch_add(1, std::memory_order_acq_rel) != 0) {
        violation.store(true, std::memory_order_release);
      }
      in_cs[key].fetch_sub(1, std::memory_order_acq_rel);
      log.record(p, harness::EventKind::kRelease);
      table.exit(p, key);
    }
  });
  mem.set_hook(nullptr);

  EXPECT_TRUE(result.violation.empty()) << result.violation;
  const harness::AuditReport audit = harness::audit_long_lived(log.events());
  EXPECT_TRUE(audit.starvation_ok) << audit.to_string();
  EXPECT_EQ(audit.unresolved_attempts, 0u);
  EXPECT_FALSE(violation.load());
  EXPECT_TRUE(resized);
  EXPECT_EQ(table.stripe_count(), 8u);
  EXPECT_FALSE(table.draining());
}

}  // namespace
}  // namespace aml::table
