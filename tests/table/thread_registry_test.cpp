// ThreadRegistry: lock-free dense-id leasing. The centerpiece is the churn
// property test: under concurrent lease/release no two live leases ever
// share an id and the live count never exceeds max_threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/pal/rng.hpp"
#include "aml/pal/threading.hpp"
#include "aml/table/thread_registry.hpp"

namespace aml::table {
namespace {

TEST(ThreadRegistry, LeaseReleaseReuse) {
  ThreadRegistry registry(4);
  const std::uint32_t a = registry.try_lease();
  const std::uint32_t b = registry.try_lease();
  ASSERT_NE(a, ThreadRegistry::kNoId);
  ASSERT_NE(b, ThreadRegistry::kNoId);
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.live(), 2u);
  EXPECT_TRUE(registry.is_live(a));
  registry.release(a);
  EXPECT_FALSE(registry.is_live(a));
  EXPECT_EQ(registry.live(), 1u);
  // A released id is reusable; with one free slot short of full occupancy the
  // registry must still serve it.
  registry.try_lease();
  registry.try_lease();
  const std::uint32_t last = registry.try_lease();
  EXPECT_NE(last, ThreadRegistry::kNoId);
  EXPECT_EQ(registry.live(), 4u);
  EXPECT_EQ(registry.try_lease(), ThreadRegistry::kNoId);
}

TEST(ThreadRegistry, ExhaustionReturnsNoId) {
  ThreadRegistry registry(2);
  EXPECT_NE(registry.try_lease(), ThreadRegistry::kNoId);
  EXPECT_NE(registry.try_lease(), ThreadRegistry::kNoId);
  EXPECT_EQ(registry.try_lease(), ThreadRegistry::kNoId);
  EXPECT_FALSE(registry.try_acquire().valid());
}

TEST(ThreadRegistry, AllIdsInRange) {
  // Capacities straddling the 64-bit word boundary: every id handed out is
  // in [0, max) and distinct.
  for (std::uint32_t max : {1u, 63u, 64u, 65u, 130u}) {
    ThreadRegistry registry(max);
    std::vector<bool> seen(max, false);
    for (std::uint32_t i = 0; i < max; ++i) {
      const std::uint32_t id = registry.try_lease();
      ASSERT_NE(id, ThreadRegistry::kNoId);
      ASSERT_LT(id, max);
      ASSERT_FALSE(seen[id]) << "duplicate id " << id;
      seen[id] = true;
    }
    EXPECT_EQ(registry.try_lease(), ThreadRegistry::kNoId);
  }
}

TEST(ThreadRegistry, LeaseRaiiReleasesOnScopeExit) {
  ThreadRegistry registry(2);
  {
    ThreadRegistry::Lease lease = registry.acquire();
    EXPECT_TRUE(lease.valid());
    EXPECT_EQ(registry.live(), 1u);
    ThreadRegistry::Lease moved = std::move(lease);
    EXPECT_FALSE(lease.valid());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(moved.valid());
    EXPECT_EQ(registry.live(), 1u);
  }
  EXPECT_EQ(registry.live(), 0u);
}

// The churn property: T threads, each looping lease -> mark -> unmark ->
// release. The mark array has one slot per id; marking uses a CAS from
// kFree, so if the registry ever hands the same id to two live leases the
// second CAS fails and the test records a violation. A parked watcher bound
// is checked too: live() never exceeds max_threads.
TEST(ThreadRegistryNativeStress, ChurnNeverDuplicatesLiveIds) {
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kMax = 5;  // fewer slots than threads: real churn
  constexpr int kRounds = 4000;
  ThreadRegistry registry(kMax);
  std::vector<std::atomic<std::uint32_t>> owner(kMax);
  for (auto& o : owner) o.store(~0u);
  std::atomic<bool> duplicate{false};
  std::atomic<bool> overflow{false};
  std::atomic<std::uint64_t> leases_served{0};

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t * 1009 + 17);
    for (int i = 0; i < kRounds; ++i) {
      const std::uint32_t id = registry.try_lease();
      if (id == ThreadRegistry::kNoId) continue;  // full; churn on
      if (id >= kMax) {
        overflow.store(true);
        continue;
      }
      std::uint32_t expected = ~0u;
      if (!owner[id].compare_exchange_strong(expected, t)) {
        duplicate.store(true);  // someone else holds a live lease on `id`
      }
      leases_served.fetch_add(1, std::memory_order_relaxed);
      if (registry.live() > kMax) overflow.store(true);
      // Hold the lease a few iterations' worth of work.
      for (std::uint64_t spin = rng.below(64); spin-- > 0;) {
        std::atomic_thread_fence(std::memory_order_relaxed);
      }
      owner[id].store(~0u);
      registry.release(id);
    }
  });

  EXPECT_FALSE(duplicate.load()) << "two live leases shared an id";
  EXPECT_FALSE(overflow.load()) << "live leases exceeded max_threads";
  EXPECT_GT(leases_served.load(), 0u);
  EXPECT_EQ(registry.live(), 0u);
}

// Same property through the RAII type, mixing scoped leases with explicit
// resets so the release path is exercised from both call sites.
TEST(ThreadRegistryNativeStress, RaiiChurn) {
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint32_t kMax = 6;
  constexpr int kRounds = 2000;
  ThreadRegistry registry(kMax);
  std::atomic<bool> bad{false};

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t + 999);
    for (int i = 0; i < kRounds; ++i) {
      ThreadRegistry::Lease lease = registry.try_acquire();
      if (!lease.valid()) continue;
      if (lease.id() >= kMax || !registry.is_live(lease.id())) {
        bad.store(true);
      }
      if (rng.chance_ppm(500000)) lease.reset();  // early release path
    }
  });

  EXPECT_FALSE(bad.load());
  EXPECT_EQ(registry.live(), 0u);
}

}  // namespace
}  // namespace aml::table
