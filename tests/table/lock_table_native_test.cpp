// NamedLockTable on real hardware: session (thread-id) churn, Zipfian key
// contention, deadline storms, and multi-key transactional invariants.
// These suites run under the TSan CI job (suite names match Native|Stress).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "aml/pal/rng.hpp"
#include "aml/pal/threading.hpp"
#include "aml/table/named_table.hpp"

namespace aml::table {
namespace {

using namespace std::chrono_literals;

TEST(TableNative, SessionIdsAreRecycled) {
  NamedLockTable table({.max_threads = 2, .stripes = 4});
  std::uint32_t first;
  {
    auto session = table.open_session();
    first = session.id();
    EXPECT_EQ(table.live_sessions(), 1u);
  }
  EXPECT_EQ(table.live_sessions(), 0u);
  auto session = table.open_session();
  EXPECT_EQ(session.id(), first);  // the released id is served again
}

TEST(TableNative, TimedAcquireRespectsDeadline) {
  NamedLockTable table({.max_threads = 2, .stripes = 4});
  auto holder = table.open_session();
  auto contender_thread = [&] {
    auto session = table.open_session();
    // Same key -> same stripe: must time out while held.
    auto g = session.try_acquire_for(std::uint64_t{5}, 2ms);
    EXPECT_FALSE(g.has_value());
    // Different stripe: must succeed even under the storm. Find a key on
    // another stripe.
    std::uint64_t other = 6;
    while (table.stripe_of(other) == table.stripe_of(std::uint64_t{5})) {
      ++other;
    }
    auto g2 = session.try_acquire_for(other, 100ms);
    EXPECT_TRUE(g2.has_value());
  };
  auto held = holder.acquire(std::uint64_t{5});
  std::thread t(contender_thread);
  t.join();
  held.release();
  auto after = holder.try_acquire_for(std::uint64_t{5}, 100ms);
  EXPECT_TRUE(after.has_value());
}

// The headline native stress: pooled threads churn sessions, acquire
// Zipf-distributed keys under tiny deadlines (a deadline storm: most
// attempts on hot keys abort), and occasionally run multi-key transactions.
// Mutual exclusion is checked per stripe; bounded abort keeps the whole
// thing finite.
TEST(TableNativeStress, ZipfDeadlineStormWithSessionChurn) {
  constexpr std::uint32_t kThreads = 8;
  constexpr int kRounds = 400;
  ObservedNamedLockTable table({.max_threads = kThreads, .stripes = 8});
  std::deque<std::atomic<int>> in_cs(table.stripe_count());
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> granted{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> tx_done{0};
  pal::ZipfDistribution zipf(128, 0.99);

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t * 7919 + 1);
    for (int i = 0; i < kRounds;) {
      // Session churn: each session serves a burst of rounds, then the
      // thread releases its id and leases a fresh one.
      auto session = table.open_session();
      const int burst = 1 + static_cast<int>(rng.below(16));
      for (int b = 0; b < burst && i < kRounds; ++b, ++i) {
        const std::uint64_t key = zipf(rng);
        if (rng.chance_ppm(200000)) {
          // Multi-key transaction on 2-3 keys with a real budget.
          std::vector<std::uint64_t> keys{key, zipf(rng)};
          if (rng.chance_ppm(500000)) keys.push_back(zipf(rng));
          auto tx = session.try_acquire_all_for(keys, 50ms, 2ms);
          if (tx.has_value()) {
            for (const std::uint32_t s : tx->stripes()) {
              if (in_cs[s].fetch_add(1, std::memory_order_acq_rel) != 0) {
                violation.store(true, std::memory_order_release);
              }
            }
            for (const std::uint32_t s : tx->stripes()) {
              in_cs[s].fetch_sub(1, std::memory_order_acq_rel);
            }
            tx_done.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        // Deadline storm: mostly microscopic budgets, some zero (already
        // expired when the attempt starts).
        const auto budget = rng.chance_ppm(300000)
                                ? std::chrono::microseconds{0}
                                : std::chrono::microseconds{rng.below(200)};
        auto g = session.try_acquire_for(key, budget);
        if (g.has_value()) {
          const std::uint32_t s = g->stripe();
          if (in_cs[s].fetch_add(1, std::memory_order_acq_rel) != 0) {
            violation.store(true, std::memory_order_release);
          }
          in_cs[s].fetch_sub(1, std::memory_order_acq_rel);
          granted.fetch_add(1, std::memory_order_relaxed);
        } else {
          timed_out.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  EXPECT_FALSE(violation.load()) << "two holders inside one stripe";
  EXPECT_EQ(table.live_sessions(), 0u);
  // The storm must have produced both outcomes, or it tested nothing.
  EXPECT_GT(granted.load(), 0u);
  EXPECT_GT(timed_out.load(), 0u);
  // Per-stripe sinks saw the traffic: every single-key grant is one stripe
  // acquisition, and each transaction adds one per stripe it held, so the
  // rollup is bounded below by the grants and above by grants + 3 per tx
  // (plus released-and-retried slices, which also acquire).
  std::uint64_t sink_acquisitions = 0;
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    sink_acquisitions += table.stripe_metrics(s).totals().acquisitions;
  }
  EXPECT_GE(sink_acquisitions, granted.load() + tx_done.load());
}

// Bank-transfer invariant: multi-key transactions keep the total balance
// constant even when every account pair is contended and deadlines abort
// some transfers midway (all-or-nothing must hold).
TEST(TableNativeStress, MultiKeyTransfersConserveTotal) {
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint32_t kAccounts = 16;
  constexpr int kRounds = 300;
  constexpr std::int64_t kInitial = 1000;
  NamedLockTable table({.max_threads = kThreads, .stripes = 8});
  std::vector<std::int64_t> balance(kAccounts, kInitial);  // guarded by table
  std::atomic<std::uint64_t> transfers{0};

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    auto session = table.open_session();
    pal::Xoshiro256 rng(t * 131 + 11);
    for (int i = 0; i < kRounds; ++i) {
      const std::uint64_t from = rng.below(kAccounts);
      std::uint64_t to = rng.below(kAccounts);
      if (to == from) to = (to + 1) % kAccounts;
      auto tx = session.try_acquire_all_for(
          std::vector<std::uint64_t>{from, to}, 100ms, 1ms);
      if (!tx.has_value()) continue;
      const std::int64_t amount = static_cast<std::int64_t>(rng.below(50));
      balance[from] -= amount;
      balance[to] += amount;
      transfers.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::int64_t total = 0;
  for (const std::int64_t b : balance) total += b;
  EXPECT_EQ(total, static_cast<std::int64_t>(kAccounts) * kInitial);
  EXPECT_GT(transfers.load(), 0u);
}

}  // namespace
}  // namespace aml::table
