// NamedLockTable on real hardware: session (thread-id) churn, Zipfian key
// contention, deadline storms, and multi-key transactional invariants.
// These suites run under the TSan CI job (suite names match Native|Stress).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "aml/pal/rng.hpp"
#include "aml/pal/threading.hpp"
#include "aml/table/named_table.hpp"

namespace aml::table {
namespace {

using namespace std::chrono_literals;

TEST(TableNative, SessionIdsAreRecycled) {
  NamedLockTable table({.max_threads = 2, .stripes = 4});
  std::uint32_t first;
  {
    auto session = table.open_session();
    first = session.id();
    EXPECT_EQ(table.live_sessions(), 1u);
  }
  EXPECT_EQ(table.live_sessions(), 0u);
  auto session = table.open_session();
  EXPECT_EQ(session.id(), first);  // the released id is served again
}

TEST(TableNative, TimedAcquireRespectsDeadline) {
  NamedLockTable table({.max_threads = 2, .stripes = 4});
  auto holder = table.open_session();
  auto contender_thread = [&] {
    auto session = table.open_session();
    // Same key -> same stripe: must time out while held.
    auto g = session.try_acquire_for(std::uint64_t{5}, 2ms);
    EXPECT_FALSE(g.has_value());
    // Different stripe: must succeed even under the storm. Find a key on
    // another stripe.
    std::uint64_t other = 6;
    while (table.stripe_of(other) == table.stripe_of(std::uint64_t{5})) {
      ++other;
    }
    auto g2 = session.try_acquire_for(other, 100ms);
    EXPECT_TRUE(g2.has_value());
  };
  auto held = holder.acquire(std::uint64_t{5});
  std::thread t(contender_thread);
  t.join();
  held.release();
  auto after = holder.try_acquire_for(std::uint64_t{5}, 100ms);
  EXPECT_TRUE(after.has_value());
}

// try_acquire_all_for edge contracts (see the method's doc comment): an
// empty key set succeeds vacuously whatever the budget; with keys, an
// expired or non-positive budget yields nullopt, never a free success.
TEST(TableNative, TryAcquireAllForEdgeBudgets) {
  NamedLockTable table({.max_threads = 2, .stripes = 4});
  auto session = table.open_session();
  const std::vector<std::uint64_t> none;
  const std::vector<std::uint64_t> keys{7, 8};

  // Empty key set: vacuous immediate success for zero, negative, and
  // positive budgets alike; the guard holds nothing and releases cleanly.
  for (const auto budget : {0ms, -5ms, 10ms}) {
    auto tx = session.try_acquire_all_for(none, budget);
    ASSERT_TRUE(tx.has_value()) << "budget " << budget.count() << "ms";
    EXPECT_TRUE(tx->key_hashes().empty());
    EXPECT_TRUE(tx->stripes().empty());
    tx->release();
  }

  // Non-empty key set with an already-expired budget: nullopt, regardless
  // of whether the keys are free (zero and negative budgets, sliced or
  // not).
  EXPECT_FALSE(session.try_acquire_all_for(keys, 0ms).has_value());
  EXPECT_FALSE(session.try_acquire_all_for(keys, -5ms).has_value());
  EXPECT_FALSE(session.try_acquire_all_for(keys, 0ms, 1ms).has_value());

  // Sanity: the same keys with a real budget succeed.
  auto ok = session.try_acquire_all_for(keys, 100ms);
  EXPECT_TRUE(ok.has_value());
}

// A sliced timed acquisition must keep retrying until the wall-clock
// deadline truly passes: a holder that releases midway through the budget
// (after several slices have failed) must still be overtaken.
TEST(TableNative, TryAcquireAllForSlicedRetriesUntilWallClock) {
  NamedLockTable table({.max_threads = 2, .stripes = 4});
  auto holder = table.open_session();
  const std::vector<std::uint64_t> keys{11, 12};
  auto held = holder.acquire(std::uint64_t{11});
  std::atomic<bool> got{false};
  std::thread contender([&] {
    auto session = table.open_session();
    // Slice (3ms) is far shorter than the budget: early attempts abort
    // while the key is held, later ones land after the release below.
    auto tx = session.try_acquire_all_for(keys, 500ms, 3ms);
    got.store(tx.has_value());
  });
  std::this_thread::sleep_for(30ms);
  held.release();
  contender.join();
  EXPECT_TRUE(got.load());
}

// The headline native stress: pooled threads churn sessions, acquire
// Zipf-distributed keys under tiny deadlines (a deadline storm: most
// attempts on hot keys abort), and occasionally run multi-key transactions.
// Mutual exclusion is checked per stripe; bounded abort keeps the whole
// thing finite.
TEST(TableNativeStress, ZipfDeadlineStormWithSessionChurn) {
  constexpr std::uint32_t kThreads = 8;
  constexpr int kRounds = 400;
  ObservedNamedLockTable table({.max_threads = kThreads, .stripes = 8});
  std::deque<std::atomic<int>> in_cs(table.stripe_count());
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> granted{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> tx_done{0};
  pal::ZipfDistribution zipf(128, 0.99);
  // The random storm makes timeouts *likely*, not certain (microscopic
  // critical sections can dodge every microscopic budget on a fast machine),
  // so stage one guaranteed collision first: thread 0 holds a key for the
  // full duration of thread 1's zero-budget attempt on the same key, which
  // must therefore time out. Zero budget only loses a tie on a FREE lock;
  // against a holder it aborts.
  constexpr std::uint64_t kCollisionKey = 3;
  std::atomic<bool> collision_held{false};
  std::atomic<bool> collision_done{false};

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t * 7919 + 1);
    if (t == 0) {
      auto session = table.open_session();
      auto g = session.acquire(kCollisionKey);
      collision_held.store(true, std::memory_order_release);
      while (!collision_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    } else if (t == 1) {
      auto session = table.open_session();
      while (!collision_held.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto g = session.try_acquire_for(kCollisionKey,
                                       std::chrono::microseconds{0});
      EXPECT_FALSE(g.has_value());
      if (!g.has_value()) timed_out.fetch_add(1, std::memory_order_relaxed);
      collision_done.store(true, std::memory_order_release);
    }
    for (int i = 0; i < kRounds;) {
      // Session churn: each session serves a burst of rounds, then the
      // thread releases its id and leases a fresh one.
      auto session = table.open_session();
      const int burst = 1 + static_cast<int>(rng.below(16));
      for (int b = 0; b < burst && i < kRounds; ++b, ++i) {
        const std::uint64_t key = zipf(rng);
        if (rng.chance_ppm(200000)) {
          // Multi-key transaction on 2-3 keys with a real budget.
          std::vector<std::uint64_t> keys{key, zipf(rng)};
          if (rng.chance_ppm(500000)) keys.push_back(zipf(rng));
          auto tx = session.try_acquire_all_for(keys, 50ms, 2ms);
          if (tx.has_value()) {
            for (const std::uint32_t s : tx->stripes()) {
              if (in_cs[s].fetch_add(1, std::memory_order_acq_rel) != 0) {
                violation.store(true, std::memory_order_release);
              }
            }
            for (const std::uint32_t s : tx->stripes()) {
              in_cs[s].fetch_sub(1, std::memory_order_acq_rel);
            }
            tx_done.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        // Deadline storm: mostly microscopic budgets, some zero (already
        // expired when the attempt starts).
        const auto budget = rng.chance_ppm(300000)
                                ? std::chrono::microseconds{0}
                                : std::chrono::microseconds{rng.below(200)};
        auto g = session.try_acquire_for(key, budget);
        if (g.has_value()) {
          const std::uint32_t s = g->stripe();
          if (in_cs[s].fetch_add(1, std::memory_order_acq_rel) != 0) {
            violation.store(true, std::memory_order_release);
          }
          // Hold the stripe for a real window so zero-budget attempts can
          // collide with a holder; an instantaneous critical section makes
          // the timeout half of the storm vanish.
          for (volatile int spin = 0; spin < 1000; ++spin) {
          }
          in_cs[s].fetch_sub(1, std::memory_order_acq_rel);
          granted.fetch_add(1, std::memory_order_relaxed);
        } else {
          timed_out.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  EXPECT_FALSE(violation.load()) << "two holders inside one stripe";
  EXPECT_EQ(table.live_sessions(), 0u);
  // The storm must have produced both outcomes, or it tested nothing.
  EXPECT_GT(granted.load(), 0u);
  EXPECT_GT(timed_out.load(), 0u);
  // Per-stripe sinks saw the traffic: every single-key grant is one stripe
  // acquisition, and each transaction adds one per stripe it held, so the
  // rollup is bounded below by the grants and above by grants + 3 per tx
  // (plus released-and-retried slices, which also acquire).
  std::uint64_t sink_acquisitions = 0;
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    sink_acquisitions += table.stripe_metrics(s).totals().acquisitions;
  }
  EXPECT_GE(sink_acquisitions, granted.load() + tx_done.load());
}

// StripeGuard move semantics: ownership transfers exactly once — the
// moved-from guard must not double-exit (a double exit corrupts the
// underlying lock's hand-off state and AML_DASSERTs in debug builds).
TEST(TableNative, StripeGuardMoveTransfersOwnership) {
  model::NativeModel mem(2);
  LockTable<model::NativeModel> table(
      mem, {.max_threads = 2, .stripes = 4, .tree_width = 8});

  {
    StripeGuard<LockTable<model::NativeModel>> g(table, 0, 1);
    ASSERT_TRUE(g.owns());
    StripeGuard<LockTable<model::NativeModel>> moved(std::move(g));
    EXPECT_TRUE(moved.owns());
    EXPECT_FALSE(g.owns());  // NOLINT(bugprone-use-after-move): spec'd state
    g.release();             // no-op on the husk, must not touch the stripe
    EXPECT_EQ(moved.stripe(), 1u);
  }  // both destructors run; only `moved` exits the stripe

  // The stripe is free again (a double exit would have tripped the lock's
  // hand-off bookkeeping; re-acquiring proves single release).
  StripeGuard<LockTable<model::NativeModel>> again(table, 1, 1);
  EXPECT_TRUE(again.owns());

  // An aborted guard never owns and its destructor must not exit either.
  StripeGuard<LockTable<model::NativeModel>> holder(table, 0, 2);
  std::atomic<bool> raised{true};
  {
    StripeGuard<LockTable<model::NativeModel>> loser(table, 1, 2, &raised);
    EXPECT_FALSE(loser.owns());
  }
  holder.release();
}

// Grow end to end on hardware: manufactured contention trips the policy
// (fired manually via try_grow so the grow happens at an exact point), the
// table doubles mid-hold, and a guard taken before the grow still excludes
// contenders arriving after it (the bridged drain).
TEST(TableNative, AutoGrowKeepsHeldGuardExclusive) {
  // auto_grow off: the policy must only run through the explicit try_grow
  // below, not from a contender's own operation count. Threshold 1 makes
  // the policy decision deterministic (inflight counts concurrent enter
  // *attempts*, so depth >= 2 would need two racing contenders).
  ObservedNamedLockTable table({.max_threads = 4,
                                .stripes = 2,
                                .auto_grow = false,
                                .max_stripes = 16,
                                .grow_inflight_threshold = 1,
                                .grow_check_interval = 1});
  auto holder = table.open_session();
  auto held = holder.acquire(std::uint64_t{5});

  // A timed contender on the held key aborts against the holder, leaving
  // the storm's footprint in the stripe stats.
  std::thread contender([&] {
    auto session = table.open_session();
    EXPECT_FALSE(session.try_acquire_for(std::uint64_t{5}, 2ms).has_value());
  });
  contender.join();

  ASSERT_TRUE(table.try_grow());
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.stripe_count(), 4u);
  EXPECT_TRUE(table.draining());  // `held` pins the pre-grow generation

  // Post-grow contender on the same key: the bridge must still route it
  // into the old holder's stripe — it times out while `held` lives.
  std::thread post_grow([&] {
    auto session = table.open_session();
    EXPECT_FALSE(session.try_acquire_for(std::uint64_t{5}, 2ms).has_value());
  });
  post_grow.join();

  held.release();
  EXPECT_FALSE(table.draining());  // last old-generation pin dropped

  auto after = holder.try_acquire_for(std::uint64_t{5}, 100ms);
  EXPECT_TRUE(after.has_value());
}

// Amortized stripes through the service layer: a NamedLockTable configured
// with StripeAlgo::kAmortized serves blocking, timed, and multi-key traffic,
// and a hybrid-policy grow flips a stormy stripe to the paper lock while a
// guard from the old generation stays exclusive.
TEST(TableNative, AmortizedStripesAndHybridGrow) {
  NamedLockTable table({.max_threads = 4,
                        .stripes = 2,
                        .auto_grow = false,
                        .max_stripes = 16,
                        .grow_inflight_threshold = 1,
                        .grow_check_interval = 1,
                        .algo = StripeAlgo::kAmortized,
                        .hybrid = {.enabled = true,
                                   .abort_rate_threshold = 0.5,
                                   .min_samples = 2}});
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    EXPECT_EQ(table.stripe_algo(s), StripeAlgo::kAmortized);
  }
  auto holder = table.open_session();
  const std::uint64_t key = 5;
  auto held = holder.acquire(key);

  // Abort storm on the held key's amortized stripe: rate 2/2 over threshold.
  std::thread contender([&] {
    auto session = table.open_session();
    EXPECT_FALSE(session.try_acquire_for(key, 2ms).has_value());
    EXPECT_FALSE(session.try_acquire_for(key, 2ms).has_value());
  });
  contender.join();

  ASSERT_TRUE(table.try_grow());
  EXPECT_EQ(table.stripe_count(), 4u);
  // The stormy stripe's children run the paper lock now; the old-generation
  // guard still excludes a bridged contender.
  EXPECT_EQ(table.stripe_algo(table.stripe_of(key)), StripeAlgo::kPaper);
  std::thread post_grow([&] {
    auto session = table.open_session();
    EXPECT_FALSE(session.try_acquire_for(key, 2ms).has_value());
  });
  post_grow.join();
  held.release();
  EXPECT_FALSE(table.draining());

  auto after = holder.try_acquire_for(key, 100ms);
  EXPECT_TRUE(after.has_value());
  after->release();
  auto tx = holder.try_acquire_all_for(std::vector<std::uint64_t>{1, 2, 3},
                                       100ms, 5ms);
  EXPECT_TRUE(tx.has_value());
}

// Auto-grow under churn: Zipf-hot blocking traffic on a deliberately tiny
// table. Exclusion is checked per KEY (stripe indices go stale the moment
// the table grows), and the run must end fully drained.
TEST(TableNativeStress, AutoGrowZipfKeepsPerKeyExclusion) {
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kKeys = 32;
  constexpr int kRounds = 200;
  ObservedNamedLockTable table({.max_threads = kThreads,
                                .stripes = 2,
                                .auto_grow = true,
                                .max_stripes = 64,
                                .grow_inflight_threshold = 2,
                                .grow_check_interval = 4});
  std::deque<std::atomic<int>> in_cs(kKeys);
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> granted{0};
  pal::ZipfDistribution zipf(kKeys, 0.99);

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    auto session = table.open_session();
    pal::Xoshiro256 rng(t * 263 + 29);
    for (int i = 0; i < kRounds; ++i) {
      if (rng.chance_ppm(150000)) {
        std::vector<std::uint64_t> keys{zipf(rng), zipf(rng)};
        if (keys[1] == keys[0]) keys.pop_back();  // distinct keys only
        auto tx = session.acquire_all(keys);
        for (const std::uint64_t k : keys) {
          if (in_cs[k].fetch_add(1, std::memory_order_acq_rel) != 0) {
            violation.store(true, std::memory_order_release);
          }
        }
        for (const std::uint64_t k : keys) {
          in_cs[k].fetch_sub(1, std::memory_order_acq_rel);
        }
        granted.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t key = zipf(rng);
      auto g = session.acquire(key);
      if (in_cs[key].fetch_add(1, std::memory_order_acq_rel) != 0) {
        violation.store(true, std::memory_order_release);
      }
      in_cs[key].fetch_sub(1, std::memory_order_acq_rel);
      granted.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_FALSE(violation.load()) << "two holders on one key";
  EXPECT_FALSE(table.draining()) << "old generation leaked pins";
  EXPECT_EQ(granted.load(), std::uint64_t{kThreads} * kRounds);
  // Hot traffic on 2 stripes with threshold 2 trips the policy in practice;
  // record rather than require (the scheduler could in principle serialize).
  RecordProperty("final_epoch", static_cast<int>(table.epoch()));
  RecordProperty("final_stripes", static_cast<int>(table.stripe_count()));
}

// Bank-transfer invariant: multi-key transactions keep the total balance
// constant even when every account pair is contended and deadlines abort
// some transfers midway (all-or-nothing must hold).
TEST(TableNativeStress, MultiKeyTransfersConserveTotal) {
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint32_t kAccounts = 16;
  constexpr int kRounds = 300;
  constexpr std::int64_t kInitial = 1000;
  NamedLockTable table({.max_threads = kThreads, .stripes = 8});
  std::vector<std::int64_t> balance(kAccounts, kInitial);  // guarded by table
  std::atomic<std::uint64_t> transfers{0};

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    auto session = table.open_session();
    pal::Xoshiro256 rng(t * 131 + 11);
    for (int i = 0; i < kRounds; ++i) {
      const std::uint64_t from = rng.below(kAccounts);
      std::uint64_t to = rng.below(kAccounts);
      if (to == from) to = (to + 1) % kAccounts;
      auto tx = session.try_acquire_all_for(
          std::vector<std::uint64_t>{from, to}, 100ms, 1ms);
      if (!tx.has_value()) continue;
      const std::int64_t amount = static_cast<std::int64_t>(rng.below(50));
      balance[from] -= amount;
      balance[to] += amount;
      transfers.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::int64_t total = 0;
  for (const std::int64_t b : balance) total += b;
  EXPECT_EQ(total, static_cast<std::int64_t>(kAccounts) * kInitial);
  EXPECT_GT(transfers.load(), 0u);
}

}  // namespace
}  // namespace aml::table
