// Litmus harness for the happens-before edge manifest (tools/edges.toml).
//
// One test per manifest edge, named after its `litmus` key, each exercising
// the edge's two-sided idiom with a PLAIN (non-atomic) payload crossing it.
// The payload is the oracle: if the edge under-synchronized — a release
// missing, an acquire demoted to relaxed — ThreadSanitizer reports the
// payload access as a data race *by happens-before construction*, whatever
// the actual interleaving did (TSan models the orders the code names, not
// the hardware's accidental kindness). The CI tsan job runs this whole
// binary (suite names match its Litmus filter); the plain build runs it too
// as a native stress smoke.
//
// Component edges run the real component (lock, table, registry, arena);
// the cross-process ipc word protocols whose endpoints are private members
// are reproduced op-for-op with the same memory orders as the tagged sites
// — the comments name the file/function each shape mirrors.
//
// tests/litmus/broken_peterson.cpp and broken_mutex.cpp are the negative
// controls: deliberately under-ordered classics that MUST fail under TSan
// (WILL_FAIL ctest entries in the sanitizer build).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "aml/core/abortable_lock.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/ipc/shm_arena.hpp"
#include "aml/model/native.hpp"
#include "aml/pal/rng.hpp"
#include "aml/pal/threading.hpp"
#include "aml/table/named_table.hpp"
#include "aml/table/thread_registry.hpp"

namespace aml {
namespace {

// ---- model.native.carrier --------------------------------------------------
// The generic write_rel/read_acq message-passing pair every concrete edge
// lowers through (model/native.hpp ordered vocabulary).
TEST(LitmusModelNativeCarrier, MessagePassingPublishesPayload) {
  constexpr int kRounds = 2000;
  model::NativeModel m(2);
  auto* flags = m.alloc(kRounds, 0);
  std::vector<std::uint64_t> payload(kRounds, 0);  // plain: TSan oracle
  pal::run_threads(2, [&](std::uint32_t t) {
    if (t == 0) {
      for (int i = 0; i < kRounds; ++i) {
        payload[i] = static_cast<std::uint64_t>(i) * 3 + 1;
        m.write_rel(0, flags[i], 1);
      }
    } else {
      for (int i = 0; i < kRounds; ++i) {
        while (m.read_acq(1, flags[i]) == 0) {
        }
        EXPECT_EQ(payload[i], static_cast<std::uint64_t>(i) * 3 + 1);
      }
    }
  });
}

// ---- core.abort_signal -----------------------------------------------------
// Raiser's pre-raise writes must be visible to a waiter that aborts out of
// a spin on the signal (core/abortable_lock.hpp raise / model wait stop).
TEST(LitmusCoreAbortSignal, RaisePublishesReason) {
  model::NativeModel m(2);
  auto* never = m.alloc(1, 0);  // nobody ever grants; only the abort fires
  AbortSignal sig;
  std::uint64_t reason = 0;  // plain: written before raise, read after stop
  pal::run_threads(2, [&](std::uint32_t t) {
    if (t == 0) {
      reason = 0xabcd;
      sig.raise();
    } else {
      auto outcome =
          m.wait(1, *never, [](std::uint64_t v) { return v != 0; },
                 sig.flag());
      ASSERT_TRUE(outcome.stopped);
      EXPECT_EQ(reason, 0xabcdu);
    }
  });
}

// ---- oneshot.grant ---------------------------------------------------------
// The CC hand-off: granter's critical section happens-before the grantee's
// (core/oneshot.hpp signal_next write_rel -> enter wait).
TEST(LitmusOneshotGrant, HandoffPublishesCriticalSection) {
  constexpr std::uint32_t kN = 8;
  model::NativeModel m(kN);
  core::OneShotLock<model::NativeModel> lock(m, kN, 4);
  std::uint64_t payload = 0;  // plain: only ever touched inside the CS
  pal::run_threads(kN, [&](std::uint32_t t) {
    auto r = lock.enter(t, nullptr);
    ASSERT_TRUE(r.acquired);
    ++payload;
    lock.exit(t);
  });
  EXPECT_EQ(payload, kN);
}

// ---- oneshot.dsm_wake ------------------------------------------------------
// The DSM published-spin-bit wake after the seq_cst Dekker pair
// (core/oneshot.hpp DSM signal_next write_rel -> enter wait).
TEST(LitmusOneshotDsmWake, HandoffPublishesCriticalSection) {
  constexpr std::uint32_t kN = 8;
  model::NativeModel m(kN);
  core::OneShotLockDsm<model::NativeModel> lock(m, kN, 4, kN);
  std::uint64_t payload = 0;
  pal::run_threads(kN, [&](std::uint32_t t) {
    auto r = lock.enter(t, nullptr);
    ASSERT_TRUE(r.acquired);
    ++payload;
    lock.exit(t);
  });
  EXPECT_EQ(payload, kN);
}

// ---- longlived.spn_switch --------------------------------------------------
// Instance switching in the long-lived transformation: the whole production
// stack under churn; every passage crosses cleanup's go := 1 release
// (core/longlived.hpp cleanup write_rel -> enter wait).
TEST(LitmusLonglivedSpnSwitch, SwitchPublishesCriticalSection) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kRounds = 300;
  AbortableLock lock(LockConfig{.max_threads = kThreads});
  std::uint64_t payload = 0;  // plain: only ever touched inside the CS
  pal::run_threads(kThreads, [&](std::uint32_t t) {
    for (int i = 0; i < kRounds; ++i) {
      lock.enter(t);
      ++payload;
      lock.exit(t);
    }
  });
  EXPECT_EQ(payload, std::uint64_t{kThreads} * kRounds);
}

// ---- spinpool.pin_publish --------------------------------------------------
// Abort storms force spin-node pinning and batched reclamation
// (core/spin_pool.hpp publish_pin write_rel -> reclaim read_acq). The
// reclaim scan runs inside alloc, so churn with aborts drives both sides.
TEST(LitmusSpinpoolPinPublish, AbortChurnNeverRacesReclaim) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kRounds = 400;
  AbortableLock lock(LockConfig{.max_threads = kThreads, .tree_width = 2});
  std::uint64_t payload = 0;
  std::atomic<std::uint64_t> completed{0};
  pal::run_threads(kThreads, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t * 97 + 13);
    AbortSignal sig;
    for (int i = 0; i < kRounds; ++i) {
      sig.reset();
      if (rng.chance_ppm(300000)) sig.raise();
      if (lock.enter(t, sig)) {
        ++payload;
        lock.exit(t);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(payload, completed.load());
  EXPECT_GT(payload, 0u);
}

// ---- table.gen_publish / table.resize_guard / table.gen_quiesce ------------
// One churn harness, three edges: per-key plain payload counters are the
// oracle for generation hand-off (a lost edge shows as a TSan race on
// payload[key] across a resize), concurrent sessions force the resizing_
// guard, and live stat probes cross the quiescence words.
std::uint64_t table_churn(std::uint32_t threads, std::uint32_t keys,
                          int rounds, bool probe_stats) {
  table::NamedLockTable table(
      {.max_threads = threads + 1, .stripes = 2});
  std::vector<std::uint64_t> payload(keys, 0);  // plain, per-key, CS-only
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  pal::run_threads(threads + 1, [&](std::uint32_t t) {
    if (t == threads) {
      // Probe thread: crosses gen_publish (cur()) and gen_quiesce
      // (pins/retired) from outside any passage.
      while (!stop.load(std::memory_order_acquire)) {
        if (probe_stats) {
          (void)table.peak_inflight();
          (void)table.stripe_stats(0);
        }
      }
      return;
    }
    pal::Xoshiro256 rng(t * 41 + 7);
    auto session = table.open_session();
    for (int i = 0; i < rounds; ++i) {
      const std::uint64_t key = rng.next() % keys;
      auto guard = session.acquire(key);
      ++payload[key];
      total.fetch_add(1, std::memory_order_relaxed);
    }
    stop.store(true, std::memory_order_release);
  });
  std::uint64_t sum = 0;
  for (const std::uint64_t p : payload) sum += p;
  EXPECT_EQ(sum, total.load());
  return sum;
}

TEST(LitmusTableGenPublish, GrowthPublishesGenerations) {
  EXPECT_EQ(table_churn(4, 64, 500, false), 4u * 500u);
}

TEST(LitmusTableResizeGuard, ConcurrentGrowersSerialize) {
  EXPECT_EQ(table_churn(6, 128, 400, false), 6u * 400u);
}

TEST(LitmusTableGenQuiesce, StatProbesNeverRaceDrain) {
  EXPECT_EQ(table_churn(4, 32, 400, true), 4u * 400u);
}

// ---- table.tid_lease -------------------------------------------------------
// Recycled dense-id hand-off (table/thread_registry.hpp release fetch_and
// -> try_lease CAS): per-id plain scratch must never race across recycles.
TEST(LitmusTableTidLease, RecycledIdHandsOffScratch) {
  constexpr std::uint32_t kSlots = 3;  // fewer slots than threads: recycling
  constexpr std::uint32_t kThreads = 6;
  table::ThreadRegistry reg(kSlots);
  std::vector<std::uint64_t> scratch(kSlots, 0);  // plain, per-id, CS-only
  std::atomic<std::uint64_t> leases{0};
  pal::run_threads(kThreads, [&](std::uint32_t) {
    for (int i = 0; i < 500; ++i) {
      const std::uint32_t id = reg.try_lease();
      if (id == table::ThreadRegistry::kNoId) continue;
      ++scratch[id];
      leases.fetch_add(1, std::memory_order_relaxed);
      reg.release(id);
    }
  });
  std::uint64_t sum = 0;
  for (const std::uint64_t s : scratch) sum += s;
  EXPECT_EQ(sum, leases.load());
}

// ---- ipc.lease_word --------------------------------------------------------
// The registry's lease-word protocol, op-for-op (ipc/process_registry.hpp
// try_lease claim CAS acq_rel / release store release): claiming a slot
// must import everything its previous owner did under the lease.
TEST(LitmusIpcLeaseWord, ClaimImportsPreviousOwner) {
  constexpr std::uint32_t kSlots = 2;
  constexpr std::uint32_t kThreads = 4;
  struct Slot {
    std::atomic<std::uint64_t> word{0};  // 0 free, else owner nonce
    std::uint64_t footprint = 0;         // plain, owned under the lease
  };
  std::vector<Slot> slots(kSlots);
  std::atomic<std::uint64_t> grants{0};
  pal::run_threads(kThreads, [&](std::uint32_t t) {
    for (int i = 0; i < 600; ++i) {
      for (std::uint32_t s = 0; s < kSlots; ++s) {
        std::uint64_t expect = 0;
        // Claim: acq_rel CAS, as try_lease's state transition.
        if (slots[s].word.compare_exchange_strong(
                expect, t + 1, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          ++slots[s].footprint;
          grants.fetch_add(1, std::memory_order_relaxed);
          // Release: release store, as release()'s free transition.
          slots[s].word.store(0, std::memory_order_release);
          break;
        }
      }
    }
  });
  std::uint64_t sum = 0;
  for (Slot& s : slots) sum += s.footprint;
  EXPECT_EQ(sum, grants.load());
}

// ---- ipc.lease_identity ----------------------------------------------------
// Identity publication order (ipc/process_registry.hpp publish_identity):
// os_start released strictly before os_pid; readers acquire pid-first, so a
// visible pid always carries its start time.
TEST(LitmusIpcLeaseIdentity, PidNeverVisibleWithoutStart) {
  constexpr int kRounds = 2000;
  std::atomic<std::uint64_t> os_pid{0};
  std::atomic<std::uint64_t> os_start{0};
  std::vector<std::uint64_t> blob(kRounds, 0);  // plain identity payload
  pal::run_threads(2, [&](std::uint32_t t) {
    if (t == 0) {
      for (int i = 0; i < kRounds; ++i) {
        blob[i] = i + 1;
        os_start.store(i + 1, std::memory_order_release);
        os_pid.store(i + 1, std::memory_order_release);
      }
    } else {
      std::uint64_t last = 0;
      for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t pid = os_pid.load(std::memory_order_acquire);
        if (pid <= last) continue;
        last = pid;
        EXPECT_GE(os_start.load(std::memory_order_acquire), pid);
        EXPECT_EQ(blob[pid - 1], pid);
      }
    }
  });
}

// ---- ipc.quiesce_epoch -----------------------------------------------------
// Idle-epoch marks (ipc/process_registry.hpp note_idle release store ->
// zombie-reclaim acquire scan): a scanner trusting an idle mark must see
// the marker's dropped footprint.
TEST(LitmusIpcQuiesceEpoch, IdleMarkPublishesDroppedFootprint) {
  constexpr int kRounds = 2000;
  std::atomic<std::uint64_t> idle_epoch{0};
  std::vector<std::uint64_t> footprint(kRounds + 1, 1);  // plain
  pal::run_threads(2, [&](std::uint32_t t) {
    if (t == 0) {
      for (int i = 1; i <= kRounds; ++i) {
        footprint[i] = 0;  // drop the footprint…
        idle_epoch.store(i, std::memory_order_release);  // …then mark idle
      }
    } else {
      std::uint64_t seen = 0;
      while (seen < kRounds) {
        const std::uint64_t e = idle_epoch.load(std::memory_order_acquire);
        if (e == seen) continue;
        seen = e;
        EXPECT_EQ(footprint[e], 0u);  // the mark implies the drop
      }
    }
  });
}

// ---- ipc.arena_seal --------------------------------------------------------
// The real arena: every pre-seal byte the creator wrote must be visible to
// an attacher that observed ready == 1 (ipc/shm_arena.hpp seal -> attach).
TEST(LitmusIpcArenaSeal, AttachSeesAllPreSealWrites) {
  static std::atomic<int> counter{0};
  const std::string name = "/aml-litmus-seal-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(counter.fetch_add(1));
  constexpr std::size_t kWords = 64;
  pal::run_threads(2, [&](std::uint32_t t) {
    if (t == 0) {
      std::string error;
      auto creator = ipc::ShmArena::create(name, 1 << 16, 99, &error);
      ASSERT_NE(creator, nullptr) << error;
      auto* words = creator->alloc_array<std::uint64_t>(kWords);
      for (std::size_t i = 0; i < kWords; ++i) {
        words[i] = i * 7 + 1;  // plain pre-seal writes
      }
      creator->seal();
    } else {
      std::string error;
      std::unique_ptr<ipc::ShmArena> attacher;
      // attach() itself spins on ready (the acquire side); retry while the
      // creator thread has not yet created the segment at all.
      while (attacher == nullptr) {
        attacher = ipc::ShmArena::attach(name, 99, &error);
      }
      auto* words = attacher->alloc_array<std::uint64_t>(kWords);
      ASSERT_TRUE(attacher->verify_replay(&error)) << error;
      for (std::size_t i = 0; i < kWords; ++i) {
        EXPECT_EQ(words[i], i * 7 + 1);
      }
    }
  });
  ipc::ShmArena::unlink(name);
}

// ---- ipc.node_state --------------------------------------------------------
// Spin-node free/issued marks, op-for-op (ipc/shm_lock.hpp release store of
// kStateFree -> allocator's acquire load): an allocator that reads "free"
// must observe the previous owner's reset of the node's go word.
TEST(LitmusIpcNodeState, FreeMarkPublishesNodeReset) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kThreads = 4;
  struct Node {
    std::atomic<std::uint64_t> state{0};  // 0 free, 1 issued
    std::uint64_t go = 0;                 // plain mirror of the spin word
  };
  std::vector<Node> nodes(kNodes);
  std::atomic<std::uint64_t> issues{0};
  pal::run_threads(kThreads, [&](std::uint32_t) {
    for (int i = 0; i < 600; ++i) {
      for (std::uint32_t n = 0; n < kNodes; ++n) {
        std::uint64_t expect = 0;
        // Select: acquire the free mark (shm_lock select load + claim).
        if (nodes[n].state.compare_exchange_strong(
                expect, 1, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          EXPECT_EQ(nodes[n].go, 0u);  // the free mark implies the reset
          nodes[n].go = 1;
          issues.fetch_add(1, std::memory_order_relaxed);
          nodes[n].go = 0;  // reset…
          // …then commit the free mark (shm_lock commit release store).
          nodes[n].state.store(0, std::memory_order_release);
          break;
        }
      }
    }
  });
  EXPECT_GT(issues.load(), 0u);
}

}  // namespace
}  // namespace aml
