// Negative control for the litmus harness: a test-and-set spin lock whose
// unlock store is relaxed instead of release. Acquisition still excludes
// (the exchange is atomic), but the relaxed unlock publishes nothing: there
// is no happens-before edge from one critical section to the next, so
// ThreadSanitizer must report the plain counter as a data race. This is
// exactly the bug class amlint R8 exists to keep out of the relaxed fast
// path — the "missing AML_V_EDGE" failure shape, compiled and run.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>

namespace {

std::atomic<int> lock_word{0};
std::uint64_t counter = 0;  // plain: the race TSan must report

void worker() {
  for (int i = 0; i < 50000; ++i) {
    while (lock_word.exchange(1, std::memory_order_acquire) != 0) {
    }
    ++counter;  // critical section
    // BROKEN: release demoted to relaxed — the next owner's acquire has
    // nothing to synchronize with.
    lock_word.store(0, std::memory_order_relaxed);
  }
}

}  // namespace

int main() {
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  std::printf("broken_mutex: counter=%llu (expected 100000)\n",
              static_cast<unsigned long long>(counter));
  // Exit 0: only the sanitizer is supposed to fail this binary.
  return 0;
}
