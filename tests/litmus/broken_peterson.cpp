// Negative control for the litmus harness: Peterson's algorithm with every
// atomic demoted to memory_order_relaxed. The algorithm REQUIRES seq_cst on
// the flag/turn Dekker (store-buffering: with anything weaker both threads
// can miss each other's flag) — and even when the hardware happens to
// exclude, relaxed orders build no happens-before between the critical
// sections, so ThreadSanitizer must report the plain counter as a data
// race. The sanitizer build runs this as a WILL_FAIL test: if TSan ever
// stops flagging this shape, the whole litmus harness has lost its oracle
// and the R8 relaxations are no longer being checked by anything.
//
// Mirrors the oneshot.dsm_wake manifest entry's caveat from the other side:
// the DSM Dekker pair in core/oneshot.hpp stays seq_cst precisely because
// this program is what it would become otherwise.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>

namespace {

std::atomic<int> flag[2] = {{0}, {0}};
std::atomic<int> turn{0};
std::uint64_t counter = 0;  // plain: the race TSan must report

void contender(int me) {
  const int other = 1 - me;
  for (int i = 0; i < 50000; ++i) {
    // All relaxed: the doorway provides no ordering at all.
    flag[me].store(1, std::memory_order_relaxed);
    turn.store(other, std::memory_order_relaxed);
    while (flag[other].load(std::memory_order_relaxed) == 1 &&
           turn.load(std::memory_order_relaxed) == other) {
    }
    ++counter;  // "critical section"
    flag[me].store(0, std::memory_order_relaxed);
  }
}

}  // namespace

int main() {
  std::thread a(contender, 0);
  std::thread b(contender, 1);
  a.join();
  b.join();
  std::printf("broken_peterson: counter=%llu (expected 100000)\n",
              static_cast<unsigned long long>(counter));
  // Exit 0: only the sanitizer is supposed to fail this binary.
  return 0;
}
