// One-shot lock on native hardware (real threads): mutual exclusion and
// abort correctness under free-running interleavings.
#include "aml/core/oneshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "aml/model/native.hpp"
#include "aml/pal/threading.hpp"

namespace aml::core {
namespace {

using model::NativeModel;
using model::Pid;

TEST(OneShotNative, AllEnterExitOnce) {
  constexpr Pid kN = 8;
  NativeModel m(kN);
  OneShotLock<NativeModel> lock(m, kN, 4);
  std::atomic<int> in_cs{0};
  std::atomic<int> completed{0};
  std::atomic<bool> violation{false};
  pal::run_threads(kN, [&](std::uint32_t t) {
    const auto r = lock.enter(t, nullptr);
    ASSERT_TRUE(r.acquired);
    if (in_cs.fetch_add(1) != 0) violation.store(true);
    in_cs.fetch_sub(1);
    lock.exit(t);
    completed.fetch_add(1);
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(completed.load(), kN);
}

TEST(OneShotNative, SlotsAreUniqueAndDense) {
  constexpr Pid kN = 16;
  NativeModel m(kN);
  OneShotLock<NativeModel> lock(m, kN, 8);
  std::vector<std::atomic<int>> slot_seen(kN);
  pal::run_threads(kN, [&](std::uint32_t t) {
    const auto r = lock.enter(t, nullptr);
    slot_seen[r.slot].fetch_add(1);
    lock.exit(t);
  });
  for (Pid i = 0; i < kN; ++i) EXPECT_EQ(slot_seen[i].load(), 1);
}

TEST(OneShotNative, PreRaisedSignalsAbortPromptly) {
  constexpr Pid kN = 8;
  NativeModel m(kN);
  OneShotLock<NativeModel> lock(m, kN, 4);
  // Even-numbered threads have their signal up before entering; since the
  // signal may race the hand-off, they may still acquire — but whoever
  // acquires must exit, and no hand-off may be lost.
  std::deque<std::atomic<bool>> signals(kN);
  for (Pid p = 0; p < kN; p += 2) signals[p].store(true);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<int> completed{0}, aborted{0};
  pal::run_threads(kN, [&](std::uint32_t t) {
    const auto r = lock.enter(t, &signals[t]);
    if (r.acquired) {
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(t);
      completed.fetch_add(1);
    } else {
      aborted.fetch_add(1);
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(completed.load() + aborted.load(), kN);
  // All four odd threads never abort.
  EXPECT_GE(completed.load(), kN / 2);
}

TEST(OneShotNative, MidWaitAbortStorm) {
  // Raise signals while threads are already waiting in the queue.
  constexpr Pid kN = 12;
  for (int iteration = 0; iteration < 20; ++iteration) {
    NativeModel m(kN);
    OneShotLock<NativeModel> lock(m, kN, 4);
    std::deque<std::atomic<bool>> signals(kN);
    std::atomic<int> in_cs{0};
    std::atomic<bool> violation{false};
    std::atomic<int> done{0};
    std::thread controller([&] {
      // Let threads queue up, then abort a prefix of waiters.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      for (Pid p = 1; p < kN; p += 3) signals[p].store(true);
    });
    pal::run_threads(kN, [&](std::uint32_t t) {
      const auto r = lock.enter(t, &signals[t]);
      if (r.acquired) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(t);
      }
      done.fetch_add(1);
    });
    controller.join();
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(done.load(), kN);
  }
}

TEST(OneShotNative, WorksAtWidth64SingleLevel) {
  constexpr Pid kN = 32;  // height 1 at W=64
  NativeModel m(kN);
  OneShotLock<NativeModel> lock(m, kN, 64);
  std::atomic<int> completed{0};
  pal::run_threads(kN, [&](std::uint32_t t) {
    ASSERT_TRUE(lock.enter(t, nullptr).acquired);
    lock.exit(t);
    completed.fetch_add(1);
  });
  EXPECT_EQ(completed.load(), kN);
}

TEST(OneShotNative, DsmVariantRunsOnNative) {
  constexpr Pid kN = 8;
  NativeModel m(kN);
  OneShotLockDsm<NativeModel> lock(m, kN, 4, kN);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  pal::run_threads(kN, [&](std::uint32_t t) {
    const auto r = lock.enter(t, nullptr);
    ASSERT_TRUE(r.acquired);
    if (in_cs.fetch_add(1) != 0) violation.store(true);
    in_cs.fetch_sub(1);
    lock.exit(t);
  });
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace aml::core
