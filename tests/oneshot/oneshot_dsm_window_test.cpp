// The DSM variant's publish-then-check window (Section 3): a waiter
// publishes announce[i] and then reads go[i]; the signaller writes go[i]
// before reading announce[i]. Whichever order the schedule produces, one
// side must see the other — the waiter either observes go[i] == 1 directly
// (no spin) or parks on its local spin bit and is woken by the signaller.
//
// Bounded-exhaustive exploration at N = 2 drives both interleavings through
// the window and asserts (a) both actually occur, (b) mutual exclusion and
// completion hold in every execution. The spin/no-spin classification comes
// from the obs::Metrics spin_iterations counter of the second process.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>

#include "aml/core/oneshot.hpp"
#include "aml/model/counting_dsm.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/sched/explorer.hpp"

namespace aml::sched {
namespace {

using model::CountingDsmModel;
using model::Pid;

TEST(OneShotDsmWindow, BothSidesOfThePublishCheckWindowOccur) {
  ExploreConfig cfg;
  cfg.nprocs = 2;
  cfg.preemption_bound = 2;
  cfg.max_executions = 150000;
  std::uint64_t spun_runs = 0, direct_runs = 0;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingDsmModel m(2);
    core::OneShotLockDsm<CountingDsmModel, obs::Metrics> lock(m, 2, 2);
    obs::Metrics metrics(2);
    lock.set_metrics(&metrics);
    std::atomic<int> in_cs{0};
    bool violation = false;
    bool ok[2] = {false, false};
    std::uint32_t slot_of[2] = {core::kNoSlot, core::kNoSlot};
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      const auto r = lock.enter(p, nullptr);
      ok[p] = r.acquired;
      slot_of[p] = r.slot;
      if (r.acquired) {
        if (in_cs.fetch_add(1) != 0) violation = true;
        in_cs.fetch_sub(1);
        lock.exit(p);
      }
    });
    m.set_hook(nullptr);
    ASSERT_FALSE(violation);
    // No abort signals: both processes must complete in every schedule.
    ASSERT_TRUE(ok[0]);
    ASSERT_TRUE(ok[1]);
    // The doorway F&A gives out slots 0 and 1 exactly once.
    ASSERT_NE(slot_of[0], slot_of[1]);
    ASSERT_LT(slot_of[0], 2u);
    ASSERT_LT(slot_of[1], 2u);

    // The slot-1 holder is the one that crossed the window: classify by
    // whether it parked on its spin bit or saw go[1] == 1 directly.
    const Pid second = slot_of[0] == 1 ? 0 : 1;
    if (metrics.of(second).spin_iterations > 0) {
      ++spun_runs;
    } else {
      ++direct_runs;
    }
    // The slot-0 holder finds go[0] preset and never spins.
    const Pid first = static_cast<Pid>(1 - second);
    ASSERT_EQ(metrics.of(first).spin_iterations, 0u);
  });
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.executions, 1u);
  // Both resolutions of the race must be exercised by the enumeration:
  // the waiter published before the grant (parked + woken) in some
  // schedule, and read go[i] after the grant (no spin) in another.
  EXPECT_GT(spun_runs, 0u);
  EXPECT_GT(direct_runs, 0u);
}

// Same window with an aborter: the slot-1 process carries a raised signal.
// Exploration must produce both aborted and completed outcomes for it, and
// the lock must stay live (the slot-0 holder always completes).
TEST(OneShotDsmWindow, WindowWithAbortSignalStaysSafe) {
  ExploreConfig cfg;
  cfg.nprocs = 3;  // p0, p1 compete; p2 is the ghost signal-raiser
  cfg.preemption_bound = 2;
  cfg.max_executions = 150000;
  std::uint64_t aborted_runs = 0, completed_runs = 0;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingDsmModel m(3);
    core::OneShotLockDsm<CountingDsmModel> lock(m, 2, 2);
    auto* ghost_trigger = m.alloc(1, 0);
    std::deque<std::atomic<bool>> sig(1);
    std::atomic<int> in_cs{0};
    bool violation = false;
    bool ok[2] = {false, false};
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      if (p == 2) {
        m.read(2, *ghost_trigger);
        sig[0].store(true, std::memory_order_release);
        return;
      }
      const auto r = lock.enter(p, p == 1 ? &sig[0] : nullptr);
      ok[p] = r.acquired;
      if (r.acquired) {
        if (in_cs.fetch_add(1) != 0) violation = true;
        in_cs.fetch_sub(1);
        lock.exit(p);
      }
    });
    m.set_hook(nullptr);
    ASSERT_FALSE(violation);
    ASSERT_TRUE(ok[0]);  // p0 has no signal: must always complete
    if (ok[1]) {
      ++completed_runs;
    } else {
      ++aborted_runs;
    }
  });
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(aborted_runs, 0u);
  EXPECT_GT(completed_runs, 0u);
}

}  // namespace
}  // namespace aml::sched
