// One-shot lock under the deterministic scheduler: mutual exclusion,
// completion accounting, hand-off recovery through aborts, and the Theorem 2
// liveness guarantees, across a parameterized (N, W, aborters, seed) grid.
#include <gtest/gtest.h>

#include "aml/harness/rmr_experiment.hpp"

namespace aml::harness {
namespace {

struct Case {
  std::uint32_t n;
  std::uint32_t w;
  std::uint32_t aborters;
  std::uint64_t seed;
  core::Find find;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  return "N" + std::to_string(c.n) + "_W" + std::to_string(c.w) + "_A" +
         std::to_string(c.aborters) + "_S" + std::to_string(c.seed) +
         (c.find == core::Find::kAdaptive ? "_ad" : "_pl");
}

class OneShotSched : public ::testing::TestWithParam<Case> {};

TEST_P(OneShotSched, IdleAbortersEveryoneElseCompletes) {
  const Case& c = GetParam();
  SinglePassOptions opts;
  opts.seed = c.seed;
  opts.plans = plan_first_k(c.n, c.aborters, AbortWhen::kOnIdle);
  const RunResult r = oneshot_cc_run(c.n, c.w, c.find, opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.aborted, c.aborters);
  EXPECT_EQ(r.completed, c.n - c.aborters);
  // Every process that did not abort acquired the lock (starvation freedom
  // under a fair schedule).
  for (const auto& rec : r.records) {
    if (rec.pid == 0 || rec.pid > c.aborters) {
      EXPECT_TRUE(rec.acquired) << "pid " << rec.pid;
    }
  }
}

TEST_P(OneShotSched, PreRaisedAborters) {
  const Case& c = GetParam();
  SinglePassOptions opts;
  opts.seed = c.seed;
  opts.plans = plan_first_k(c.n, c.aborters, AbortWhen::kPreRaised);
  const RunResult r = oneshot_cc_run(c.n, c.w, c.find, opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed + r.aborted, c.n);
  EXPECT_EQ(r.completed, c.n - c.aborters);
}

TEST_P(OneShotSched, StepRacedAborters) {
  // Signals raised at arbitrary early steps race the hand-off chain,
  // exercising the TOP/responsibility protocol.
  const Case& c = GetParam();
  SinglePassOptions opts;
  opts.seed = c.seed;
  opts.gate_cs = false;  // let hand-offs race the aborts
  opts.plans = plan_first_k(c.n, c.aborters, AbortWhen::kAtStep);
  for (std::uint32_t p = 1; p <= c.aborters; ++p) {
    opts.plans[p].step = (c.seed * 13 + p * 7) % (3 * c.n);
  }
  const RunResult r = oneshot_cc_run(c.n, c.w, c.find, opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed + r.aborted, c.n);
  // A raced signal may lose to the hand-off, so aborted <= planned, but
  // non-marked processes always complete.
  EXPECT_GE(r.completed, c.n - c.aborters);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OneShotSched,
    ::testing::Values(
        Case{2, 2, 1, 1, core::Find::kAdaptive},
        Case{4, 2, 2, 2, core::Find::kAdaptive},
        Case{4, 2, 3, 3, core::Find::kPlain},
        Case{8, 2, 4, 4, core::Find::kAdaptive},
        Case{8, 4, 7, 5, core::Find::kAdaptive},
        Case{16, 2, 8, 6, core::Find::kPlain},
        Case{16, 4, 10, 7, core::Find::kAdaptive},
        Case{27, 3, 13, 8, core::Find::kAdaptive},
        Case{32, 2, 20, 9, core::Find::kAdaptive},
        Case{32, 8, 31, 10, core::Find::kPlain},
        Case{64, 4, 32, 11, core::Find::kAdaptive},
        Case{64, 8, 50, 12, core::Find::kAdaptive},
        Case{100, 8, 60, 13, core::Find::kPlain},
        Case{128, 16, 100, 14, core::Find::kAdaptive},
        Case{128, 64, 64, 15, core::Find::kAdaptive}),
    case_name);

TEST(OneShotSchedEdge, AllButSurvivorAbortLockDies) {
  // N-1 aborters: the survivor (slot 0) completes; after its exit the lock
  // is dead (FindNext = BOTTOM) — no crash, everything returns.
  for (std::uint32_t n : {2u, 4u, 8u, 32u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.plans = plan_all_but(n, 0, AbortWhen::kOnIdle);
    const RunResult r = oneshot_cc_run(n, 4, core::Find::kAdaptive, opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(r.aborted, n - 1);
  }
}

TEST(OneShotSchedEdge, NoAbortsNoGate) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.gate_cs = false;
    opts.ordered_doorway = (seed % 2 == 0);
    const RunResult r = oneshot_cc_run(16, 4, core::Find::kAdaptive, opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed, 16u);
    EXPECT_EQ(r.aborted, 0u);
  }
}

TEST(OneShotSchedEdge, NoAbortPassageIsConstantRmr) {
  // Theorem 2: with A_i = 0 every passage costs O(1) RMRs. The constant for
  // this implementation: doorway F&A + go read + Head write + exit's Head
  // read + LastExited write + FindNext level-1 read + go write + spin
  // wakeup = well under 12.
  for (std::uint32_t n : {4u, 16u, 64u, 256u}) {
    SinglePassOptions opts;
    opts.seed = 3;
    opts.gate_cs = false;
    const RunResult r = oneshot_cc_run(n, 8, core::Find::kAdaptive, opts);
    EXPECT_TRUE(r.mutex_ok);
    for (const auto& rec : r.records) {
      EXPECT_LE(rec.rmr_total(), 12u) << "pid " << rec.pid << " n=" << n;
    }
  }
}

TEST(OneShotSchedEdge, SingleProcess) {
  SinglePassOptions opts;
  opts.seed = 1;
  opts.gate_cs = false;
  const RunResult r = oneshot_cc_run(1, 2, core::Find::kAdaptive, opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed, 1u);
}

TEST(OneShotSchedEdge, DeterministicAcrossRuns) {
  SinglePassOptions opts;
  opts.seed = 77;
  opts.plans = plan_first_k(16, 9, AbortWhen::kOnIdle);
  const RunResult a = oneshot_cc_run(16, 4, core::Find::kAdaptive, opts);
  const RunResult b = oneshot_cc_run(16, 4, core::Find::kAdaptive, opts);
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.steps, b.steps);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].acquired, b.records[i].acquired);
    EXPECT_EQ(a.records[i].slot, b.records[i].slot);
    EXPECT_EQ(a.records[i].rmr_total(), b.records[i].rmr_total());
  }
}

}  // namespace
}  // namespace aml::harness
