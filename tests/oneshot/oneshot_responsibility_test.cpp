// The responsibility hand-off protocol (Section 3 + Property 14),
// constructed exactly with a scripted schedule:
//
//   N=8, W=2 (height 3). Slots == pids (ordered doorway). Signals of p1, p2,
//   p3 are pre-raised.
//
//   1. everyone executes the doorway F&A in pid order;
//   2. p1 aborts: Remove(1) stops at level 1; Head(0) != LastExited(-1), so
//      no responsibility;
//   3. p2 aborts: Remove(2) stops at level 1 (node {2,3} not yet empty);
//   4. p0 acquires (go[0] preset), writes Head=0, begins Exit: writes
//      LastExited=0, then FindNext(0) ascends: node(1,0) has no zero to the
//      right (slot 1 removed), node(2,0) still shows subtree {2,3} alive —
//      p0 pauses just before descending;
//   5. p3 aborts: its Remove completes node {2,3} (EMPTY) and sets the
//      subtree's bit in node(2,0). Now Head == LastExited == 0, so p3
//      assumes responsibility: its FindNext(0) ascends to the root, finds
//      subtree {4..7}, descends to slot 4 and writes go[4] — the hand-off
//      p0 is about to fail to perform;
//   6. p0 resumes, descends into node {2,3}, reads EMPTY -> TOP, and exits
//      WITHOUT signalling anyone;
//   7. p4 wakes, and the lock keeps moving: p4..p7 chain through the CS.
//
// The decisive assertion is *who wrote what*: p0's exit performs exactly 2
// writes (Head, LastExited) and never touches a go slot; p3 performs the
// go[4] write. Plus, of course: nobody deadlocks, everyone completes or
// aborts as planned, and mutual exclusion holds.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>

#include "aml/core/oneshot.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;
using model::Pid;

TEST(OneShotResponsibility, AborterCompletesExitersHandoff) {
  constexpr Pid kN = 8;
  CountingCcModel m(kN);
  OneShotLock<CountingCcModel> lock(m, kN, 2, Find::kPlain);

  std::deque<std::atomic<bool>> signals(kN);
  signals[1].store(true);
  signals[2].store(true);
  signals[3].store(true);

  sched::SchedulerConfig cfg;
  cfg.policy = sched::policies::script(
      {
          {0, 1}, {1, 1}, {2, 1}, {3, 1},  // doorway F&As in pid order
          {4, 1}, {5, 1}, {6, 1}, {7, 1},
          {1, 4},   // p1: go read -> abort; Remove; Head/LastExited reads
          {2, 4},   // p2: likewise
          {0, 4},   // p0: go read, Head write; exit: Head read, LE write
          {0, 2},   // p0: FindNext reads node(1,0), node(2,0) — pause
          {3, 11},  // p3: abort, Remove completes {2,3}, takes
                    // responsibility, signals slot 4
          {0, 1},   // p0: reads node {2,3} == EMPTY -> TOP, exit returns
      },
      sched::policies::round_robin());
  sched::StepScheduler sched(kN, std::move(cfg));

  bool acquired[kN] = {};
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    const auto r = lock.enter(p, &signals[p]);
    acquired[p] = r.acquired;
    EXPECT_EQ(r.slot, p);  // ordered doorway
    if (r.acquired) {
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(p);
    }
  });
  m.set_hook(nullptr);

  EXPECT_FALSE(violation.load());
  EXPECT_TRUE(acquired[0]);
  EXPECT_FALSE(acquired[1]);
  EXPECT_FALSE(acquired[2]);
  EXPECT_FALSE(acquired[3]);
  for (Pid p = 4; p < kN; ++p) {
    EXPECT_TRUE(acquired[p]) << "hand-off lost at pid " << p;
  }

  // The heart of the scenario: p0's FindNext crossed paths (TOP) so it wrote
  // only Head and LastExited; the go[4] hand-off write came from p3.
  EXPECT_EQ(m.counters(0).writes, 2u);
  EXPECT_EQ(m.counters(1).writes, 0u);
  EXPECT_EQ(m.counters(2).writes, 0u);
  EXPECT_EQ(m.counters(3).writes, 1u);  // go[4]
}

// The responsibility chain ending in BOTTOM: every waiter aborts; whoever
// holds the hand-off baton last discovers there is nobody left. The lock
// must wind down cleanly (nobody blocks forever, nobody enters twice).
TEST(OneShotResponsibility, ChainEndsInBottomWhenEveryoneAborts) {
  constexpr Pid kN = 8;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    CountingCcModel m(kN);
    OneShotLock<CountingCcModel> lock(m, kN, 2);
    std::deque<std::atomic<bool>> signals(kN);
    for (Pid p = 1; p < kN; ++p) signals[p].store(true);

    sched::StepScheduler sched(kN, {.seed = seed});
    std::atomic<int> in_cs{0};
    std::atomic<bool> violation{false};
    std::uint32_t completed = 0, aborted = 0;
    std::mutex mu;
    m.set_hook(&sched);
    sched.run([&](Pid p) {
      const auto r = lock.enter(p, &signals[p]);
      if (r.acquired) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(p);
      }
      std::lock_guard<std::mutex> guard(mu);
      (r.acquired ? completed : aborted)++;
    });
    m.set_hook(nullptr);
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(completed + aborted, kN);
    EXPECT_GE(completed, 1u);  // p0 at least
  }
}

// Late abort: the signal lands after the hand-off has already granted the
// slot. Depending on the exact read order the process either enters the CS
// (signal ignored) or aborts and must pass the lock on — never losing it.
TEST(OneShotResponsibility, SignalRacesGrantAtEveryStep) {
  constexpr Pid kN = 4;
  for (std::uint64_t raise_at = 0; raise_at < 40; ++raise_at) {
    CountingCcModel m(kN);
    OneShotLock<CountingCcModel> lock(m, kN, 2);
    std::deque<std::atomic<bool>> signals(kN);

    sched::StepScheduler sched(kN, {.seed = raise_at + 1});
    sched.set_step_callback([&](std::uint64_t step) {
      if (step == raise_at) signals[1].store(true);
    });
    std::atomic<int> in_cs{0};
    std::atomic<bool> violation{false};
    std::atomic<std::uint32_t> done{0};
    m.set_hook(&sched);
    sched.run([&](Pid p) {
      const auto r = lock.enter(p, &signals[p]);
      if (r.acquired) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(p);
      } else {
        EXPECT_EQ(p, 1u);  // only p1 ever has a signal
      }
      done.fetch_add(1);
    });
    m.set_hook(nullptr);
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(done.load(), kN);
  }
}

}  // namespace
}  // namespace aml::core
