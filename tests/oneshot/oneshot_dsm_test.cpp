// Section 3 DSM variant: the spin-bit indirection must eliminate remote
// busy-waiting (zero remote spin episodes on the DSM cost model), while the
// CC algorithm run on DSM memory busy-waits remotely — the contrast that
// motivates the variant.
#include <gtest/gtest.h>

#include "aml/harness/rmr_experiment.hpp"

namespace aml::harness {
namespace {

TEST(OneShotDsm, DsmVariantNeverSpinsRemotely) {
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.gate_cs = false;
    const RunResult r =
        oneshot_dsm_run(n, 4, core::Find::kAdaptive, /*dsm_variant=*/true,
                        opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed, n);
    EXPECT_EQ(r.total_remote_spin_episodes(), 0u) << "n=" << n;
  }
}

TEST(OneShotDsm, CcVariantOnDsmSpinsRemotely) {
  SinglePassOptions opts;
  opts.seed = 5;
  opts.gate_cs = false;
  const RunResult r =
      oneshot_dsm_run(16, 4, core::Find::kAdaptive, /*dsm_variant=*/false,
                      opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed, 16u);
  // Every process except slot 0 busy-waits on a go slot that is not local.
  EXPECT_GE(r.total_remote_spin_episodes(), 15u);
}

TEST(OneShotDsm, DsmVariantWithAborts) {
  for (std::uint32_t aborters : {1u, 5u, 14u}) {
    SinglePassOptions opts;
    opts.seed = 100 + aborters;
    opts.plans = plan_first_k(16, aborters, AbortWhen::kOnIdle);
    const RunResult r =
        oneshot_dsm_run(16, 4, core::Find::kAdaptive, /*dsm_variant=*/true,
                        opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.aborted, aborters);
    EXPECT_EQ(r.completed, 16u - aborters);
    EXPECT_EQ(r.total_remote_spin_episodes(), 0u);
  }
}

TEST(OneShotDsm, DsmVariantBoundedEnterRmr) {
  // The DSM variant's enter is O(1) RMRs when nobody aborts: doorway F&A,
  // announce write, go read, plus the Head write after a local spin.
  SinglePassOptions opts;
  opts.seed = 9;
  opts.gate_cs = false;
  const RunResult r =
      oneshot_dsm_run(64, 8, core::Find::kAdaptive, /*dsm_variant=*/true,
                      opts);
  EXPECT_TRUE(r.mutex_ok);
  for (const auto& rec : r.records) {
    EXPECT_LE(rec.rmr_enter, 6u) << "pid " << rec.pid;
  }
}

TEST(OneShotDsm, DeterministicPerSeed) {
  SinglePassOptions opts;
  opts.seed = 31;
  opts.plans = plan_first_k(24, 11, AbortWhen::kOnIdle);
  const RunResult a =
      oneshot_dsm_run(24, 4, core::Find::kPlain, true, opts);
  const RunResult b =
      oneshot_dsm_run(24, 4, core::Find::kPlain, true, opts);
  EXPECT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].rmr_total(), b.records[i].rmr_total());
  }
}

}  // namespace
}  // namespace aml::harness
