// Adversarial scheduling policies against the one-shot lock: priority
// schedules that starve specific processes as long as anything else is
// runnable, stop-and-go victim schedules, and the starvation-freedom
// condition that every waiter eventually enters once the scheduler is
// forced to run it.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>

#include "aml/core/oneshot.hpp"
#include "aml/harness/workload.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;
using model::Pid;

// A priority schedule runs the highest-priority runnable process
// exclusively. Starvation-freedom (Lemma 18) assumes every process keeps
// taking steps, and the scheduler only deprioritizes — it never suppresses
// a process forever when nothing else is runnable — so all must complete.
TEST(OneShotAdversarial, PrioritySchedulesCannotStarve) {
  constexpr Pid kN = 12;
  for (int variant = 0; variant < 4; ++variant) {
    std::vector<Pid> priority;
    for (Pid p = 0; p < kN; ++p) {
      switch (variant) {
        case 0: priority.push_back(p); break;                // ascending
        case 1: priority.push_back(kN - 1 - p); break;       // descending
        case 2: priority.push_back((p * 5) % kN); break;     // strided
        default: priority.push_back((p + 7) % kN); break;    // rotated
      }
    }
    CountingCcModel m(kN);
    OneShotLock<CountingCcModel> lock(m, kN, 4);
    sched::SchedulerConfig cfg;
    cfg.policy = sched::policies::prefer(priority);
    sched::StepScheduler sched(kN, std::move(cfg));
    std::atomic<int> in_cs{0};
    std::atomic<bool> violation{false};
    std::atomic<std::uint32_t> completed{0};
    m.set_hook(&sched);
    sched.run([&](Pid p) {
      ASSERT_TRUE(lock.enter(p, nullptr).acquired);
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(p);
      completed.fetch_add(1);
    });
    m.set_hook(nullptr);
    EXPECT_FALSE(violation.load()) << "variant " << variant;
    EXPECT_EQ(completed.load(), kN) << "variant " << variant;
  }
}

// The adversary delays the *hand-off performer* maximally: the exiting
// process has lowest priority, so its SignalNext is postponed until every
// other process is parked. The lock must still hand over.
TEST(OneShotAdversarial, ExiterDeprioritized) {
  constexpr Pid kN = 8;
  CountingCcModel m(kN);
  OneShotLock<CountingCcModel> lock(m, kN, 2);
  // Everyone prefers to run EXCEPT the current CS owner... approximated by
  // static priorities that bury low slots (early owners) last.
  sched::SchedulerConfig cfg;
  cfg.policy = sched::policies::prefer({7, 6, 5, 4, 3, 2, 1, 0});
  sched::StepScheduler sched(kN, std::move(cfg));
  std::atomic<std::uint32_t> completed{0};
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    if (lock.enter(p, nullptr).acquired) {
      lock.exit(p);
      completed.fetch_add(1);
    }
  });
  m.set_hook(nullptr);
  EXPECT_EQ(completed.load(), kN);
}

// Aborters with maximal priority: every aborter's Remove and responsibility
// hand-off runs ahead of the waiters it affects.
TEST(OneShotAdversarial, AbortersRunFirst) {
  constexpr Pid kN = 10;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    CountingCcModel m(kN);
    OneShotLock<CountingCcModel> lock(m, kN, 2);
    const auto plans = harness::plan_random_k(
        kN, 5, seed, harness::AbortWhen::kPreRaised);
    std::deque<std::atomic<bool>> signals(kN);
    std::vector<Pid> priority;
    for (Pid p = 0; p < kN; ++p) {
      if (plans[p].when != harness::AbortWhen::kNever) {
        signals[p].store(true);
        priority.push_back(p);  // aborters first
      }
    }
    for (Pid p = 0; p < kN; ++p) {
      if (plans[p].when == harness::AbortWhen::kNever) priority.push_back(p);
    }
    sched::SchedulerConfig cfg;
    cfg.policy = sched::policies::prefer(priority);
    sched::StepScheduler sched(kN, std::move(cfg));
    std::atomic<std::uint32_t> completed{0}, aborted{0};
    m.set_hook(&sched);
    sched.run([&](Pid p) {
      if (lock.enter(p, &signals[p]).acquired) {
        lock.exit(p);
        completed.fetch_add(1);
      } else {
        aborted.fetch_add(1);
      }
    });
    m.set_hook(nullptr);
    EXPECT_EQ(completed.load() + aborted.load(), kN);
    // Non-aborters always complete.
    EXPECT_GE(completed.load(), 5u);
  }
}

// Round-robin (maximally fair) as the liveness control group.
TEST(OneShotAdversarial, RoundRobinBaseline) {
  constexpr Pid kN = 16;
  CountingCcModel m(kN);
  OneShotLock<CountingCcModel> lock(m, kN, 4);
  sched::SchedulerConfig cfg;
  cfg.policy = sched::policies::round_robin();
  sched::StepScheduler sched(kN, std::move(cfg));
  std::atomic<std::uint32_t> completed{0};
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    if (lock.enter(p, nullptr).acquired) {
      lock.exit(p);
      completed.fetch_add(1);
    }
  });
  m.set_hook(nullptr);
  EXPECT_EQ(completed.load(), kN);
}

}  // namespace
}  // namespace aml::core
