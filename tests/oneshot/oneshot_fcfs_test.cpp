// FCFS (Lemma 17): the doorway is the F&A on Tail, so queue slots record
// doorway order; a non-aborting process with an earlier slot must enter the
// CS before any process with a later slot. We record CS entry order and
// check it is exactly ascending slot order among completers.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "aml/core/oneshot.hpp"
#include "aml/harness/workload.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;
using model::Pid;

struct FcfsCase {
  std::uint32_t n;
  std::uint32_t w;
  std::uint32_t aborters;
  std::uint64_t seed;
};

class OneShotFcfs : public ::testing::TestWithParam<FcfsCase> {};

TEST_P(OneShotFcfs, CsOrderFollowsDoorwayOrder) {
  const auto [n, w, aborters, seed] = GetParam();
  CountingCcModel m(n);
  OneShotLock<CountingCcModel> lock(m, n, w);
  const auto plans =
      harness::plan_random_k(n, aborters, seed, harness::AbortWhen::kOnIdle);

  std::deque<std::atomic<bool>> signals(n);
  sched::StepScheduler sched(n, {.seed = seed});
  std::size_t cursor = 0;
  sched.set_idle_callback([&]() {
    while (cursor < n) {
      const Pid p = static_cast<Pid>(cursor++);
      if (plans[p].when == harness::AbortWhen::kOnIdle) {
        signals[p].store(true, std::memory_order_release);
        return true;
      }
    }
    return false;
  });

  std::mutex order_mu;
  std::vector<std::uint32_t> cs_slot_order;
  std::vector<bool> acquired(n, false);
  std::vector<std::uint32_t> slot_of(n, 0);

  m.set_hook(&sched);
  sched.run([&](Pid p) {
    const auto r = lock.enter(p, &signals[p]);
    slot_of[p] = r.slot;
    acquired[p] = r.acquired;
    if (r.acquired) {
      {
        std::lock_guard<std::mutex> guard(order_mu);
        cs_slot_order.push_back(r.slot);
      }
      lock.exit(p);
    }
  });
  m.set_hook(nullptr);

  // CS entries must be in strictly ascending slot order.
  for (std::size_t i = 1; i < cs_slot_order.size(); ++i) {
    EXPECT_LT(cs_slot_order[i - 1], cs_slot_order[i]);
  }
  // Every process that never saw its signal raised must have completed.
  std::uint32_t completions = 0;
  for (Pid p = 0; p < n; ++p) {
    if (plans[p].when == harness::AbortWhen::kNever) {
      EXPECT_TRUE(acquired[p]) << "non-aborter starved, pid " << p;
    }
    if (acquired[p]) ++completions;
  }
  EXPECT_EQ(completions, cs_slot_order.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OneShotFcfs,
    ::testing::Values(FcfsCase{4, 2, 1, 21}, FcfsCase{8, 2, 3, 22},
                      FcfsCase{8, 4, 5, 23}, FcfsCase{16, 4, 7, 24},
                      FcfsCase{32, 4, 15, 25}, FcfsCase{32, 8, 20, 26},
                      FcfsCase{64, 8, 40, 27}, FcfsCase{64, 2, 30, 28},
                      FcfsCase{100, 16, 55, 29}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "_W" +
             std::to_string(info.param.w) + "_A" +
             std::to_string(info.param.aborters) + "_S" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace aml::core
