// aml::obs unit tests: event ring semantics, histogram summaries, metrics
// counters and hand-off latency, the zero-cost disabled sink, and an
// end-to-end sequential integration against the one-shot lock on the
// counting CC model.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>

#include "aml/core/oneshot.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/obs/events.hpp"
#include "aml/obs/histogram.hpp"
#include "aml/obs/metrics.hpp"

namespace aml::obs {
namespace {

// --- compile-time contract --------------------------------------------------

static_assert(kZeroCostSink<NullMetrics>,
              "disabled sink must add no storage");
static_assert(!kZeroCostSink<Metrics>, "enabled sink must carry a pointer");
static_assert(
    sizeof(core::OneShotLock<model::CountingCcModel>) <=
        sizeof(core::OneShotLock<model::CountingCcModel, Metrics>),
    "NullMetrics lock must not be larger than the instrumented one");

// --- EventRing --------------------------------------------------------------

TEST(EventRingTest, DisabledWhenCapacityZero) {
  EventRing ring(0);
  ring.push({EventKind::kEnter, 0, 1, 10});
  EXPECT_EQ(ring.capacity(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(EventRingTest, RetainsInOrderBelowCapacity) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.push({EventKind::kEnter, static_cast<model::Pid>(i),
               static_cast<std::uint32_t>(i), i + 1});
  }
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].tick, i + 1);
    EXPECT_EQ(events[i].slot, i);
  }
}

TEST(EventRingTest, WraparoundKeepsNewestAndCountsDropped) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push({EventKind::kExit, 0, static_cast<std::uint32_t>(i), i + 1});
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: slots 6,7,8,9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].slot, 6u + i);
  }
}

TEST(EventRingTest, StalledWriterSlotSkippedNotTorn) {
  // The wrap race the per-slot sequence tags exist for: writer A claims a
  // slot and stalls before publishing; other writers wrap the ring past it.
  // snapshot() must skip A's slot (odd tag, or stale generation) instead of
  // returning whatever half-written payload sits there.
  EventRing ring(4);
  const EventRing::Claim stalled = ring.claim();  // seq 0, never published
  for (std::uint64_t i = 1; i <= 4; ++i) {
    // Seqs 1..4: seq 4 wraps onto the stalled slot's index (4 % 4 == 0)
    // and overwrites its claim tag.
    ring.push({EventKind::kEnter, 0, static_cast<std::uint32_t>(i), i});
  }
  std::uint64_t torn = 0;
  auto events = ring.snapshot(&torn);
  // Retained window is seqs 1..4, all published: nothing torn, and the
  // stalled seq-0 entry is outside the window entirely.
  EXPECT_EQ(torn, 0u);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].tick, i + 1);

  // Now the stalled writer finally publishes — long after its slot was
  // recycled for seq 4. The stale even tag names seq 0, so the slot no
  // longer matches seq 4's expected tag and is skipped and counted.
  ring.publish(stalled, {EventKind::kAbort, 9, 99, 999});
  events = ring.snapshot(&torn);
  EXPECT_EQ(torn, 1u);
  ASSERT_EQ(events.size(), 3u);
  for (const Event& e : events) {
    EXPECT_NE(e.slot, 99u);  // the stale payload never surfaces
    EXPECT_NE(e.tick, 999u);
  }
}

TEST(EventRingTest, ClaimedButUnpublishedSlotInWindowIsSkipped) {
  EventRing ring(8);
  ring.push({EventKind::kEnter, 1, 1, 1});
  const EventRing::Claim stalled = ring.claim();  // seq 1: odd tag, in window
  ring.push({EventKind::kGranted, 1, 1, 3});
  std::uint64_t torn = 0;
  const auto events = ring.snapshot(&torn);
  EXPECT_EQ(torn, 1u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tick, 1u);
  EXPECT_EQ(events[1].tick, 3u);
  // Late publish into a still-current slot heals it: the tag now matches.
  ring.publish(stalled, {EventKind::kAbort, 1, 1, 2});
  const auto healed = ring.snapshot(&torn);
  EXPECT_EQ(torn, 0u);
  ASSERT_EQ(healed.size(), 3u);
  EXPECT_EQ(healed[1].tick, 2u);
  EXPECT_EQ(healed[1].kind, EventKind::kAbort);
}

TEST(EventRingTest, KindNames) {
  EXPECT_STREQ(event_kind_name(EventKind::kEnter), "enter");
  EXPECT_STREQ(event_kind_name(EventKind::kGranted), "granted");
  EXPECT_STREQ(event_kind_name(EventKind::kAbort), "abort");
  EXPECT_STREQ(event_kind_name(EventKind::kExit), "exit");
  EXPECT_STREQ(event_kind_name(EventKind::kSwitch), "switch");
}

// --- LatencyHistogram -------------------------------------------------------

TEST(HistogramTest, BucketGeometry) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(2), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(3), 7u);
}

TEST(HistogramTest, EmptySnapshot) {
  LatencyHistogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(HistogramTest, SummaryStats) {
  LatencyHistogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 100u}) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 26.5);
  // p50 rank = 2 -> value 2 lives in bucket 2 (upper bound 3).
  EXPECT_EQ(s.p50, 3u);
  // p99 rank = 4 -> 100 lives in bucket 7 (upper bound 127).
  EXPECT_EQ(s.p99, 127u);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.record(42);
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  h.record(7);
  EXPECT_EQ(h.snapshot().min, 7u);
}

// --- Metrics ----------------------------------------------------------------

TEST(MetricsTest, CountersPerProcessAndTotals) {
  Metrics m(3);
  m.on_granted(0, 5);
  m.on_granted(0, 6);
  m.on_abort(1, 2);
  m.on_spin_iteration(2);
  m.on_spin_iteration(2);
  m.on_spin_iteration(2);
  m.on_findnext(0);
  m.on_switch(1);
  m.on_spin_node_recycle(2, 4);
  EXPECT_EQ(m.of(0).acquisitions, 2u);
  EXPECT_EQ(m.of(1).aborts, 1u);
  EXPECT_EQ(m.of(2).spin_iterations, 3u);
  const Counters t = m.totals();
  EXPECT_EQ(t.acquisitions, 2u);
  EXPECT_EQ(t.aborts, 1u);
  EXPECT_EQ(t.spin_iterations, 3u);
  EXPECT_EQ(t.findnext_ascents, 1u);
  EXPECT_EQ(t.instance_switches, 1u);
  EXPECT_EQ(t.spin_node_recycles, 4u);
}

TEST(MetricsTest, HandoffLatencyRecordedBetweenExitAndGrant) {
  Metrics m(2);
  m.on_granted(0, 0);           // tick 1, no pending hand-off
  m.on_exit(0, 0);              // tick 2, arms hand-off
  m.on_enter(1, 1);             // tick 3
  m.on_granted(1, 1);           // tick 4 -> latency 4 - 2 = 2
  const auto s = m.handoff().snapshot();
  ASSERT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 2u);
  EXPECT_EQ(s.max, 2u);
}

TEST(MetricsTest, RingRecordsLifecycle) {
  Metrics m(2, /*ring_capacity=*/16);
  m.on_enter(0, 0);
  m.on_granted(0, 0);
  m.on_exit(0, 0);
  m.on_switch(1);
  const auto events = m.ring().snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kEnter);
  EXPECT_EQ(events[1].kind, EventKind::kGranted);
  EXPECT_EQ(events[2].kind, EventKind::kExit);
  EXPECT_EQ(events[3].kind, EventKind::kSwitch);
  EXPECT_EQ(events[3].slot, kNoSlot);
  // Logical clock: strictly increasing ticks.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].tick, events[i].tick);
  }
}

TEST(MetricsTest, CustomClock) {
  Metrics m(1, 4);
  std::uint64_t fake = 100;
  m.set_clock([&fake] { return fake; });
  m.on_enter(0, 0);
  fake = 250;
  m.on_granted(0, 0);
  const auto events = m.ring().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tick, 100u);
  EXPECT_EQ(events[1].tick, 250u);
}

TEST(MetricsTest, ResetClearsCountersKeepsRingHistory) {
  Metrics m(1, 8);
  m.on_granted(0, 0);
  m.reset();
  EXPECT_EQ(m.totals().acquisitions, 0u);
  EXPECT_EQ(m.ring().total_recorded(), 1u);  // documented: history retained
}

// --- SinkHandle -------------------------------------------------------------

TEST(SinkHandleTest, NullBoundHandleIsInert) {
  SinkHandle<Metrics> h;  // never bound
  h.on_granted(0, 0);     // must not crash
  EXPECT_EQ(h.get(), nullptr);
}

TEST(SinkHandleTest, BoundHandleForwards) {
  Metrics m(1);
  SinkHandle<Metrics> h;
  h.bind(&m);
  h.on_granted(0, 3);
  EXPECT_EQ(m.totals().acquisitions, 1u);
}

// --- integration: instrumented one-shot lock on the counting model ----------

TEST(ObsIntegrationTest, OneShotSequentialLifecycle) {
  constexpr std::uint32_t kN = 4;
  model::CountingCcModel mdl(kN);
  core::OneShotLock<model::CountingCcModel, Metrics> lock(mdl, kN, 2);
  Metrics metrics(kN, 64);
  lock.set_metrics(&metrics);

  std::deque<std::atomic<bool>> signals(kN);
  for (std::uint32_t p = 0; p < kN; ++p) {
    const auto r = lock.enter(p, &signals[p]);
    ASSERT_TRUE(r.acquired);
    lock.exit(p);
  }

  const Counters t = metrics.totals();
  EXPECT_EQ(t.acquisitions, kN);
  EXPECT_EQ(t.aborts, 0u);
  // Every exit runs SignalNext.
  EXPECT_EQ(t.findnext_ascents, kN);

  // Sequential and uncontended: enter/granted/exit per process, in order.
  const auto events = metrics.ring().snapshot();
  ASSERT_EQ(events.size(), 3u * kN);
  for (std::uint32_t p = 0; p < kN; ++p) {
    EXPECT_EQ(events[3 * p].kind, EventKind::kEnter);
    EXPECT_EQ(events[3 * p].pid, p);
    EXPECT_EQ(events[3 * p].slot, p);  // FCFS doorway: slot == arrival order
    EXPECT_EQ(events[3 * p + 1].kind, EventKind::kGranted);
    EXPECT_EQ(events[3 * p + 2].kind, EventKind::kExit);
  }

  // Hand-offs: kN-1 exit->granted pairs.
  EXPECT_EQ(metrics.handoff().snapshot().count, kN - 1);
}

TEST(ObsIntegrationTest, AbortIsCounted) {
  model::CountingCcModel mdl(2);
  core::OneShotLock<model::CountingCcModel, Metrics> lock(mdl, 2, 2);
  Metrics metrics(2);
  lock.set_metrics(&metrics);

  std::deque<std::atomic<bool>> signals(2);
  ASSERT_TRUE(lock.enter(0, &signals[0]).acquired);
  signals[1].store(true, std::memory_order_release);
  EXPECT_FALSE(lock.enter(1, &signals[1]).acquired);
  lock.exit(0);

  EXPECT_EQ(metrics.totals().aborts, 1u);
  EXPECT_EQ(metrics.of(1).aborts, 1u);
  EXPECT_GT(metrics.of(1).spin_iterations, 0u);
}

}  // namespace
}  // namespace aml::obs
