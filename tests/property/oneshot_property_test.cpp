// Property sweep for the one-shot lock: across many seeds, shapes, abort
// patterns, and signal timings — mutual exclusion, bounded abort (every
// attempt returns), no lost hand-off (every non-aborter acquires), FCFS slot
// ordering of completions.
#include <gtest/gtest.h>

#include "aml/harness/rmr_experiment.hpp"

namespace aml::harness {
namespace {

struct Sweep {
  std::uint32_t n;
  std::uint32_t w;
  core::Find find;
};

class OneShotProperty : public ::testing::TestWithParam<Sweep> {};

TEST_P(OneShotProperty, RandomAbortersManySeeds) {
  const auto [n, w, find] = GetParam();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    pal::Xoshiro256 rng(seed * 7 + n);
    const std::uint32_t aborters =
        static_cast<std::uint32_t>(rng.below(n - 1));
    SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = plan_random_k(n, aborters, seed * 3 + 1,
                               AbortWhen::kOnIdle);
    const RunResult r = oneshot_cc_run(n, w, find, opts);
    ASSERT_TRUE(r.mutex_ok) << "seed " << seed;
    ASSERT_EQ(r.aborted, aborters) << "seed " << seed;
    ASSERT_EQ(r.completed, n - aborters) << "seed " << seed;
  }
}

TEST_P(OneShotProperty, RacedSignalsManySeeds) {
  const auto [n, w, find] = GetParam();
  for (std::uint64_t seed = 50; seed <= 62; ++seed) {
    pal::Xoshiro256 rng(seed * 11 + n);
    SinglePassOptions opts;
    opts.seed = seed;
    opts.gate_cs = false;
    opts.ordered_doorway = (seed % 3 != 0);
    opts.plans.resize(n);
    std::uint32_t marked = 0;
    for (std::uint32_t p = 1; p < n; ++p) {
      if (rng.chance_ppm(400000)) {
        opts.plans[p].when = AbortWhen::kAtStep;
        opts.plans[p].step = rng.below(6 * n);
        ++marked;
      }
    }
    const RunResult r = oneshot_cc_run(n, w, find, opts);
    ASSERT_TRUE(r.mutex_ok) << "seed " << seed;
    ASSERT_EQ(r.completed + r.aborted, n) << "seed " << seed;
    ASSERT_LE(r.aborted, marked) << "seed " << seed;
    // Completion slots strictly ascend (FCFS among completers).
    std::int64_t last = -1;
    std::vector<std::uint32_t> by_slot;
    for (const auto& rec : r.records) {
      if (rec.acquired) by_slot.push_back(rec.slot);
    }
    std::sort(by_slot.begin(), by_slot.end());
    for (std::size_t i = 1; i < by_slot.size(); ++i) {
      ASSERT_NE(by_slot[i - 1], by_slot[i]) << "duplicate slot";
    }
    (void)last;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OneShotProperty,
    ::testing::Values(Sweep{4, 2, core::Find::kAdaptive},
                      Sweep{8, 2, core::Find::kPlain},
                      Sweep{8, 4, core::Find::kAdaptive},
                      Sweep{16, 2, core::Find::kAdaptive},
                      Sweep{16, 4, core::Find::kPlain},
                      Sweep{27, 3, core::Find::kAdaptive},
                      Sweep{32, 8, core::Find::kAdaptive},
                      Sweep{48, 4, core::Find::kAdaptive},
                      Sweep{64, 8, core::Find::kPlain},
                      Sweep{64, 64, core::Find::kAdaptive}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "_W" +
             std::to_string(info.param.w) +
             (info.param.find == core::Find::kAdaptive ? "_ad" : "_pl");
    });

}  // namespace
}  // namespace aml::harness
