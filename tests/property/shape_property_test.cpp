// Complexity-shape assertions: the benches *display* the growth curves of
// Table 1; these tests *assert* them, so a regression that silently changes
// a complexity class fails CI. Shapes are classified by the power-law
// exponent of measured max-passage RMRs vs the swept parameter.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "aml/baselines/baselines.hpp"
#include "aml/harness/rmr_experiment.hpp"
#include "aml/harness/stats.hpp"

namespace aml::harness {
namespace {

using model::CountingCcModel;

// --- classifier unit checks ------------------------------------------------

TEST(GrowthClassifier, KnownShapes) {
  std::vector<std::pair<double, double>> flat, logish, linear, quad;
  for (double x : {16.0, 64.0, 256.0, 1024.0}) {
    flat.emplace_back(x, 7.0);
    logish.emplace_back(x, 2.0 * std::log2(x) + 3.0);
    linear.emplace_back(x, 2.0 * x + 5.0);
    quad.emplace_back(x, x * x / 8.0);
  }
  EXPECT_EQ(classify_growth(flat), Growth::kConstant);
  EXPECT_EQ(classify_growth(logish), Growth::kLogarithmic);
  EXPECT_EQ(classify_growth(linear), Growth::kLinear);
  EXPECT_EQ(classify_growth(quad), Growth::kSuperlinear);
}

TEST(GrowthClassifier, SlopeIsExponent) {
  std::vector<std::pair<double, double>> cubic;
  for (double x : {2.0, 4.0, 8.0, 16.0}) cubic.emplace_back(x, x * x * x);
  EXPECT_NEAR(log_log_slope(cubic), 3.0, 1e-9);
}

// --- shape assertions over real lock measurements ---------------------------

std::vector<std::pair<double, double>> ours_worstcase_series(std::uint32_t w) {
  std::vector<std::pair<double, double>> xy;
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = n + w;
    opts.plans = plan_first_k(n, n - 2, AbortWhen::kOnIdle);
    const RunResult r = oneshot_cc_run(n, w, core::Find::kAdaptive, opts);
    EXPECT_TRUE(r.mutex_ok);
    xy.emplace_back(n, static_cast<double>(r.complete_summary().max));
  }
  return xy;
}

TEST(ShapeAssertions, OursWorstCaseIsSublinearAtW2) {
  const Growth g = classify_growth(ours_worstcase_series(2));
  EXPECT_TRUE(g == Growth::kConstant || g == Growth::kLogarithmic)
      << growth_name(g);
}

TEST(ShapeAssertions, OursWorstCaseIsFlatAtW64) {
  EXPECT_EQ(classify_growth(ours_worstcase_series(64)), Growth::kConstant);
}

TEST(ShapeAssertions, OursNoAbortIsFlat) {
  std::vector<std::pair<double, double>> xy;
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.gate_cs = false;
    const RunResult r = oneshot_cc_run(n, 8, core::Find::kAdaptive, opts);
    xy.emplace_back(n, static_cast<double>(r.complete_summary().max));
  }
  EXPECT_EQ(classify_growth(xy), Growth::kConstant);
}

TEST(ShapeAssertions, TicketIsLinear) {
  std::vector<std::pair<double, double>> xy;
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.gate_cs = false;
    const RunResult r = single_pass_with<CountingCcModel>(
        n,
        [n](CountingCcModel& m) {
          return std::make_unique<baselines::TicketLock<CountingCcModel>>(
              m, n);
        },
        opts);
    xy.emplace_back(n, static_cast<double>(r.complete_summary().max));
  }
  EXPECT_EQ(classify_growth(xy), Growth::kLinear);
}

TEST(ShapeAssertions, LeeWorstCaseIsLinearInN) {
  std::vector<std::pair<double, double>> xy;
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.plans = plan_first_k(n, n - 2, AbortWhen::kOnIdle);
    const RunResult r = single_pass_with<CountingCcModel>(
        n,
        [n](CountingCcModel& m) {
          return std::make_unique<
              baselines::LeeStyleAbortableLock<CountingCcModel>>(
              m, n, 4ull * n + 16);
        },
        opts);
    xy.emplace_back(n, static_cast<double>(r.complete_summary().max));
  }
  EXPECT_EQ(classify_growth(xy), Growth::kLinear);
}

TEST(ShapeAssertions, TournamentIsLogarithmic) {
  std::vector<std::pair<double, double>> xy;
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.gate_cs = false;
    const RunResult r = single_pass_with<CountingCcModel>(
        n,
        [n](CountingCcModel& m) {
          return std::make_unique<
              baselines::TournamentAbortableLock<CountingCcModel>>(m, n);
        },
        opts);
    xy.emplace_back(n, static_cast<double>(r.complete_summary().max));
  }
  EXPECT_EQ(classify_growth(xy), Growth::kLogarithmic);
}

TEST(ShapeAssertions, OursAdaptiveGrowsWithAbortersNotN) {
  // Fix W=2 and sweep the aborter count at fixed N: log-like growth in A.
  std::vector<std::pair<double, double>> by_a;
  for (std::uint32_t a : {4u, 16u, 64u, 256u}) {
    SinglePassOptions opts;
    opts.seed = a;
    opts.plans = plan_first_k(512, a, AbortWhen::kOnIdle);
    const RunResult r = oneshot_cc_run(512, 2, core::Find::kAdaptive, opts);
    by_a.emplace_back(a, static_cast<double>(r.complete_summary().max));
  }
  const Growth g = classify_growth(by_a);
  EXPECT_TRUE(g == Growth::kConstant || g == Growth::kLogarithmic)
      << growth_name(g);
  // And sweeping N at a fixed aborter count is flat.
  std::vector<std::pair<double, double>> by_n;
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.plans = plan_first_k(n, 8, AbortWhen::kOnIdle);
    const RunResult r = oneshot_cc_run(n, 2, core::Find::kAdaptive, opts);
    by_n.emplace_back(n, static_cast<double>(r.complete_summary().max));
  }
  EXPECT_EQ(classify_growth(by_n), Growth::kConstant);
}

}  // namespace
}  // namespace aml::harness
