// Quantitative RMR-bound properties (Theorem 2, Corollary 22): on the
// counting CC model, every complete passage costs at most
// C1 + C2 * ceil(log_W(A_i + 2)) RMRs where A_i is the number of processes
// that abort during the passage, and every aborted attempt costs at most
// C1 + C2 * ceil(log_W(A_t + 2)). Checked across an (N, W, A) grid.
#include <gtest/gtest.h>

#include <cmath>

#include "aml/harness/rmr_experiment.hpp"

namespace aml::harness {
namespace {

double log_w(double x, double w) { return std::log(x) / std::log(w); }

// Generous but shape-respecting constants: the implementation's O(1) part is
// ~8 RMRs and each tree level touched costs <= 2 reads in FindNext plus one
// F&A in Remove (ascent + descent + responsibility hand-off).
double passage_bound(std::uint32_t a, std::uint32_t w) {
  return 12.0 + 8.0 * std::ceil(log_w(a + 2.0, w));
}

struct BoundCase {
  std::uint32_t n;
  std::uint32_t w;
  std::uint32_t aborters;
};

class RmrBound : public ::testing::TestWithParam<BoundCase> {};

TEST_P(RmrBound, CompleteAndAbortedPassagesWithinAdaptiveBound) {
  const auto [n, w, aborters] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = plan_first_k(n, aborters, AbortWhen::kOnIdle);
    const RunResult r =
        oneshot_cc_run(n, w, core::Find::kAdaptive, opts);
    ASSERT_TRUE(r.mutex_ok);
    const double bound = passage_bound(aborters, w);
    for (const auto& rec : r.records) {
      ASSERT_LE(static_cast<double>(rec.rmr_total()), bound)
          << "pid " << rec.pid << " acquired=" << rec.acquired << " n=" << n
          << " w=" << w << " A=" << aborters << " seed=" << seed;
    }
  }
}

TEST_P(RmrBound, PlainFindNextBoundedByHeightNotAborts) {
  // The non-adaptive variant satisfies only the O(log_W N) bound.
  const auto [n, w, aborters] = GetParam();
  SinglePassOptions opts;
  opts.seed = 9;
  opts.plans = plan_first_k(n, aborters, AbortWhen::kOnIdle);
  const RunResult r = oneshot_cc_run(n, w, core::Find::kPlain, opts);
  ASSERT_TRUE(r.mutex_ok);
  const double bound =
      12.0 + 8.0 * std::ceil(log_w(static_cast<double>(n), w) + 1.0);
  for (const auto& rec : r.records) {
    ASSERT_LE(static_cast<double>(rec.rmr_total()), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RmrBound,
    ::testing::Values(BoundCase{16, 2, 1}, BoundCase{16, 2, 7},
                      BoundCase{64, 2, 3}, BoundCase{64, 2, 31},
                      BoundCase{64, 4, 15}, BoundCase{256, 4, 7},
                      BoundCase{256, 4, 63}, BoundCase{256, 16, 40},
                      BoundCase{512, 8, 100}, BoundCase{1024, 32, 64},
                      BoundCase{1024, 2, 200}),
    [](const auto& info) {
      const auto& c = info.param;
      return "N" + std::to_string(c.n) + "_W" + std::to_string(c.w) + "_A" +
             std::to_string(c.aborters);
    });

// The no-abort O(1) bound must hold at every scale: RMR per passage is flat
// as N grows (Table 1 "No aborts" column).
TEST(RmrBoundNoAborts, FlatAcrossN) {
  std::uint64_t prev_max = 0;
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = 2;
    opts.gate_cs = false;
    const RunResult r = oneshot_cc_run(n, 8, core::Find::kAdaptive, opts);
    ASSERT_TRUE(r.mutex_ok);
    const std::uint64_t max_rmr = r.complete_summary().max;
    EXPECT_LE(max_rmr, 10u) << "n=" << n;
    if (prev_max != 0) {
      EXPECT_LE(max_rmr, prev_max + 2) << "growth with N at n=" << n;
    }
    prev_max = max_rmr;
  }
}

// Remove() adaptivity (Claim 20): an aborted attempt's RMR cost grows with
// the number of aborters, not with N.
TEST(RmrBoundAborted, AbortCostIndependentOfN) {
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    SinglePassOptions opts;
    opts.seed = 3;
    opts.plans = plan_first_k(n, 4, AbortWhen::kOnIdle);
    const RunResult r = oneshot_cc_run(n, 2, core::Find::kAdaptive, opts);
    ASSERT_TRUE(r.mutex_ok);
    // 4 aborters at W=2: each abort is a handful of RMRs regardless of N.
    EXPECT_LE(r.aborted_summary().max, 20u) << "n=" << n;
  }
}

}  // namespace
}  // namespace aml::harness
