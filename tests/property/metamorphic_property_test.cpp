// Metamorphic properties: quantities that must be *invariant* under
// parameter changes that the algorithm's semantics do not depend on.
//
//   * W-invariance: with a gated abort workload, the outcome (who aborts,
//     who completes, slot assignment, FCFS order) is decided by the queue
//     and the abort plan — the tree arity W only affects RMR counts. The
//     whole outcome vector must therefore be identical across W.
//   * Find-variant invariance: plain vs adaptive FindNext are equivalent
//     (Lemma 1), so outcomes match across that switch too.
//   * Signal-idempotence: raising an aborter's signal twice (pre-raised)
//     changes nothing vs raising it once.
#include <gtest/gtest.h>

#include <vector>

#include "aml/harness/rmr_experiment.hpp"

namespace aml::harness {
namespace {

struct Outcome {
  std::vector<bool> acquired;
  std::vector<std::uint32_t> slots;

  bool operator==(const Outcome&) const = default;
};

Outcome outcome_of(const RunResult& r) {
  Outcome o;
  for (const auto& rec : r.records) {
    o.acquired.push_back(rec.acquired);
    o.slots.push_back(rec.slot);
  }
  return o;
}

TEST(Metamorphic, OutcomeInvariantAcrossW) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = plan_random_k(24, 11, seed, AbortWhen::kOnIdle);
    Outcome reference;
    bool have_reference = false;
    for (std::uint32_t w : {2u, 3u, 8u, 16u, 64u}) {
      const RunResult r =
          oneshot_cc_run(24, w, core::Find::kAdaptive, opts);
      ASSERT_TRUE(r.mutex_ok);
      const Outcome o = outcome_of(r);
      if (!have_reference) {
        reference = o;
        have_reference = true;
      } else {
        ASSERT_EQ(o.acquired, reference.acquired)
            << "W changed who completes (seed " << seed << ", W=" << w
            << ")";
        ASSERT_EQ(o.slots, reference.slots);
      }
    }
  }
}

TEST(Metamorphic, OutcomeInvariantAcrossFindVariant) {
  for (std::uint64_t seed = 10; seed <= 15; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = plan_random_k(20, 9, seed, AbortWhen::kOnIdle);
    const RunResult plain =
        oneshot_cc_run(20, 4, core::Find::kPlain, opts);
    const RunResult adaptive =
        oneshot_cc_run(20, 4, core::Find::kAdaptive, opts);
    ASSERT_TRUE(plain.mutex_ok);
    ASSERT_TRUE(adaptive.mutex_ok);
    EXPECT_EQ(outcome_of(plain), outcome_of(adaptive)) << "seed " << seed;
    // Lemma 1 only guarantees behavioural equivalence; the adaptive walk
    // may cost fewer RMRs, never a different outcome.
  }
}

TEST(Metamorphic, PreRaisedTwiceEqualsOnce) {
  SinglePassOptions opts;
  opts.seed = 3;
  opts.plans = plan_first_k(16, 6, AbortWhen::kPreRaised);
  const RunResult once = oneshot_cc_run(16, 4, core::Find::kAdaptive, opts);
  // "Raising twice" = also scheduling a kAtStep raise for the same pids;
  // the level-triggered signal makes it a no-op.
  for (std::uint32_t p = 1; p <= 6; ++p) {
    opts.plans[p].when = AbortWhen::kPreRaised;  // unchanged
  }
  const RunResult again = oneshot_cc_run(16, 4, core::Find::kAdaptive, opts);
  EXPECT_EQ(outcome_of(once), outcome_of(again));
  EXPECT_EQ(once.steps, again.steps);
}

TEST(Metamorphic, GateDoesNotChangeWhoCompletesWithoutAborts) {
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    SinglePassOptions gated, free_run;
    gated.seed = free_run.seed = seed;
    free_run.gate_cs = false;
    const RunResult a = oneshot_cc_run(12, 4, core::Find::kAdaptive, gated);
    const RunResult b =
        oneshot_cc_run(12, 4, core::Find::kAdaptive, free_run);
    EXPECT_EQ(a.completed, 12u);
    EXPECT_EQ(b.completed, 12u);
  }
}

}  // namespace
}  // namespace aml::harness
