// Property sweep for the long-lived lock: seeds x shapes x abort rates x
// recycling schemes. Invariants: mutual exclusion, every attempt returns,
// unmarked attempts always acquire, attempt accounting exact, instance
// switching happens under churn.
#include <gtest/gtest.h>

#include "aml/harness/rmr_experiment.hpp"

namespace aml::harness {
namespace {

struct Sweep {
  std::uint32_t n;
  std::uint32_t w;
  std::uint32_t rounds;
  std::uint32_t ppm;
};

class LongLivedProperty : public ::testing::TestWithParam<Sweep> {};

TEST_P(LongLivedProperty, LazyManySeeds) {
  const auto [n, w, rounds, ppm] = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    LongLivedOptions opts;
    opts.n = n;
    opts.w = w;
    opts.rounds = rounds;
    opts.abort_ppm = ppm;
    opts.seed = seed;
    opts.raise_every = 37 + seed * 10;
    const RunResult r = run_long_lived<core::VersionedSpace>(opts);
    ASSERT_TRUE(r.mutex_ok) << "seed " << seed;
    ASSERT_EQ(r.records.size(),
              static_cast<std::size_t>(n) * rounds);
    for (const auto& rec : r.records) {
      if (!rec.marked) {
        ASSERT_TRUE(rec.acquired) << "unmarked abort, seed " << seed;
      }
    }
  }
}

TEST_P(LongLivedProperty, EagerMatchesInvariants) {
  const auto [n, w, rounds, ppm] = GetParam();
  LongLivedOptions opts;
  opts.n = n;
  opts.w = w;
  opts.rounds = rounds;
  opts.abort_ppm = ppm;
  opts.seed = 99;
  const RunResult r = run_long_lived<core::EagerSpace>(opts);
  ASSERT_TRUE(r.mutex_ok);
  ASSERT_EQ(r.completed + r.aborted,
            static_cast<std::uint64_t>(n) * rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LongLivedProperty,
    ::testing::Values(Sweep{2, 2, 10, 600000}, Sweep{2, 8, 10, 200000},
                      Sweep{3, 4, 8, 500000}, Sweep{4, 4, 6, 0},
                      Sweep{4, 2, 6, 800000}, Sweep{5, 4, 6, 350000},
                      Sweep{8, 8, 4, 450000}, Sweep{10, 4, 4, 600000}),
    [](const auto& info) {
      const auto& s = info.param;
      return "N" + std::to_string(s.n) + "_W" + std::to_string(s.w) + "_R" +
             std::to_string(s.rounds) + "_P" + std::to_string(s.ppm);
    });

}  // namespace
}  // namespace aml::harness
