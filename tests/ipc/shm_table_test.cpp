// ShmNamedLockTable in-process coverage: create/attach sessions sharing the
// same segment, timed acquisition, simulated owner death driven through the
// full recovery protocol (journal dispatch, forced exit, registry reclaim,
// obs accounting), and dead-session deadline cancellation on the local
// TimerWheel. Genuine cross-address-space behavior (fork + SIGKILL) lives in
// shm_fork_test.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include <unistd.h>

#include "aml/core/abortable_lock.hpp"
#include "aml/ipc/shm_table.hpp"

namespace aml::ipc {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kForgedDeadPid = 0x7FFF'FFFF;

std::string unique_name(const char* tag) {
  static int counter = 0;
  return std::string("/aml-test-tbl-") + tag + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

ShmTableConfig small_config() {
  ShmTableConfig cfg;
  cfg.nprocs = 4;
  cfg.stripes = 2;
  cfg.tree_width = 64;
  return cfg;
}

struct ScopedSegment {
  explicit ScopedSegment(std::string n) : name(std::move(n)) {}
  ~ScopedSegment() { ShmNamedLockTable::unlink(name); }
  std::string name;
};

TEST(ShmIpcTable, CreateAcquireReleaseCountsInObs) {
  ScopedSegment seg(unique_name("basic"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto session = table->open_session();
  ASSERT_TRUE(session.has_value());
  {
    auto guard = session->acquire(std::uint64_t{7});
    EXPECT_LT(guard.stripe(), table->stripe_count());
  }
  {
    auto guard = session->acquire(std::string_view{"named-key"});
    (void)guard;
  }
  EXPECT_EQ(table->metrics().totals().acquisitions, 2u);
  EXPECT_EQ(table->metrics().totals().aborts, 0u);
  EXPECT_GT(table->registry().heartbeat(session->id()), 0u);
}

TEST(ShmIpcTable, AttachedReplicaSharesTheLocks) {
  ScopedSegment seg(unique_name("attach"));
  std::string error;
  auto creator = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(creator, nullptr) << error;
  auto replica = ShmNamedLockTable::attach(seg.name, small_config(), &error);
  ASSERT_NE(replica, nullptr) << error;

  auto a = creator->open_session();
  auto b = replica->open_session();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // The registry is shared: the replica's session got a distinct dense pid.
  EXPECT_NE(a->id(), b->id());

  const std::uint64_t key = 42;
  auto held = a->acquire(key);
  // The replica session contends on the *same* shm lock word: a deadline-
  // bounded attempt while the creator session holds must time out...
  EXPECT_FALSE(b->try_acquire_for(key, 30ms).has_value());
  held.release();
  // ...and succeed once released.
  auto reacquired = b->try_acquire_for(key, 2s);
  EXPECT_TRUE(reacquired.has_value());
  EXPECT_EQ(replica->metrics().totals().aborts, 1u);
}

TEST(ShmIpcTable, AttachRejectsDifferentConfig) {
  ScopedSegment seg(unique_name("cfgmismatch"));
  std::string error;
  auto creator = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(creator, nullptr) << error;

  ShmTableConfig other = small_config();
  other.stripes = 4;
  auto replica = ShmNamedLockTable::attach(seg.name, other, &error);
  EXPECT_EQ(replica, nullptr);
  EXPECT_NE(error.find("config hash"), std::string::npos) << error;
}

TEST(ShmIpcTable, AbortableAcquireHonorsSignal) {
  ScopedSegment seg(unique_name("abort"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto a = table->open_session();
  auto b = table->open_session();
  ASSERT_TRUE(a && b);

  const std::uint64_t key = 9;
  auto held = a->acquire(key);
  AbortSignal signal;
  signal.raise();  // pre-raised: the attempt must abandon promptly
  EXPECT_FALSE(b->try_acquire(key, signal).has_value());
  held.release();
  signal.reset();
  EXPECT_TRUE(b->try_acquire(key, signal).has_value());
}

/// The tentpole recovery scenario, in-process: a session "dies" holding a
/// stripe's critical section (we drive the stripe directly so no RAII guard
/// releases it, then forge its OS pid to an ESRCH value), and a survivor's
/// recover_dead() sweep must force the victim's exit, free its registry
/// slot, and leave the stripe acquirable — in one bounded sweep.
TEST(ShmIpcTable, RecoverDeadHolderForcesExitAndReclaimsSlot) {
  ScopedSegment seg(unique_name("recover"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  const std::uint32_t s = 0;
  ASSERT_TRUE(table->stripe(s).enter(victim->id(), nullptr).acquired);
  EXPECT_EQ(table->stripe(s).peek_phase(victim->id()), kHolding);
  const std::uint64_t acquisitions_before =
      table->metrics().totals().acquisitions;

  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);

  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_exits, 1u);
  EXPECT_EQ(stats.forced_aborts, 0u);
  EXPECT_EQ(stats.zombie_pids, 0u);

  // The victim's journal is reset, its pid is re-leasable, and the stripe's
  // recovery seqlock advanced exactly once per stripe sweep.
  EXPECT_EQ(table->stripe(s).peek_phase(victim->id()), kIdle);
  EXPECT_EQ(table->registry().state(victim->id()), ProcessRegistry::kFree);
  EXPECT_EQ(table->stripe(s).recovery_epoch(survivor->id()), 1u);

  // The stripe is fully functional for the survivor (the forced exit freed
  // the critical section and the hand-off machinery).
  std::uint64_t key = 0;
  while (table->stripe_of(key) != s) ++key;
  {
    auto guard = survivor->try_acquire_for(key, 2s);
    ASSERT_TRUE(guard.has_value());
    EXPECT_EQ(guard->stripe(), s);
  }
  // The recovered passage's grant/exit flowed through the same obs hooks as
  // a live passage would have (complete-grant is not re-counted; the
  // survivor's reacquisition is).
  EXPECT_GT(table->metrics().totals().acquisitions, acquisitions_before);

  // A second sweep finds nothing dead.
  EXPECT_EQ(survivor->recover_dead(), 0u);
  EXPECT_EQ(table->recovery_stats().recovered_pids, 1u);
}

/// A victim dead *between* passages (journal kIdle) costs nothing to
/// recover: no stripe repair, just the registry reclaim.
TEST(ShmIpcTable, RecoverIdleVictimReclaimsWithoutRepairs) {
  ScopedSegment seg(unique_name("idle"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);
  {
    auto guard = victim->acquire(std::uint64_t{1});  // complete passage
  }

  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);
  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_exits, 0u);
  EXPECT_EQ(stats.forced_aborts, 0u);
  EXPECT_EQ(table->registry().state(victim->id()), ProcessRegistry::kFree);
}

// --- recoverable F&A: forged deaths inside the journaled windows ----------

std::uint64_t ring_count(const ShmNamedLockTable& table,
                         obs::ShmEventKind kind, Pid victim) {
  std::uint64_t n = 0;
  for (const auto& e : table.shm_metrics().ring_snapshot()) {
    if (e.kind == kind && e.victim == victim) ++n;
  }
  return n;
}

/// Deaths at kPreJoin — the join announced but maybe not landed — must be
/// decided by the journal, never retired as zombies: the un-landed join is
/// compensated (refcnt untouched) and the landed one is completed (one
/// Cleanup undoes it), both in the same sweep.
TEST(ShmIpcTable, ForgedPrejoinDeathsDecideByJournal) {
  ScopedSegment seg(unique_name("fa-prejoin"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto survivor = table->open_session();
  auto announced = table->open_session();  // died before the join CAS
  auto landed = table->open_session();     // died right after it landed
  ASSERT_TRUE(survivor && announced && landed);

  const std::uint32_t s = 0;
  table->stripe(s).debug_forge_prejoin_announced(announced->id());
  table->stripe(s).debug_forge_prejoin_landed(landed->id());
  ASSERT_EQ(table->stripe(s).peek_refcnt(survivor->id()), 1u);

  table->registry().debug_set_os_pid(announced->id(), kForgedDeadPid);
  table->registry().debug_set_os_pid(landed->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 2u);

  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 2u);
  EXPECT_EQ(stats.zombie_pids, 0u);
  // Only the landed join had a passage to unwind (one forced abort); the
  // compensated one left no footprint at all.
  EXPECT_EQ(stats.forced_aborts, 1u);
  EXPECT_EQ(stats.forced_exits, 0u);

  // The refcnt is exact again: the compensation did not decrement for an
  // increment that never landed, the completion undid the one that did.
  EXPECT_EQ(table->stripe(s).peek_refcnt(survivor->id()), 0u);
  EXPECT_EQ(table->stripe(s).peek_phase(announced->id()), kIdle);
  EXPECT_EQ(table->stripe(s).peek_phase(landed->id()), kIdle);
  EXPECT_EQ(table->registry().state(announced->id()), ProcessRegistry::kFree);
  EXPECT_EQ(table->registry().state(landed->id()), ProcessRegistry::kFree);

  // The decision is observable: one compensated, one completed, no retire.
  const obs::ShmRecoverySnapshot rec = table->shm_metrics().recovery_totals();
  EXPECT_EQ(rec.fa_compensated, 1u);
  EXPECT_EQ(rec.fa_completed, 1u);
  EXPECT_EQ(rec.zombie_retires, 0u);
  EXPECT_EQ(ring_count(*table, obs::ShmEventKind::kFaCompensated,
                       announced->id()),
            1u);
  EXPECT_EQ(ring_count(*table, obs::ShmEventKind::kFaCompleted, landed->id()),
            1u);
}

/// Deaths inside kCleanup with the release announced (not landed) or landed
/// (locals unsaved): the first reruns the whole Cleanup under a fresh
/// announcement, the second completes forward from the journaled pre-image —
/// no double decrement, no zombie.
TEST(ShmIpcTable, ForgedCleanupDeathsCompleteOrCompensate) {
  ScopedSegment seg(unique_name("fa-cleanup"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto survivor = table->open_session();
  auto announced = table->open_session();  // release announced, CAS unissued
  auto released = table->open_session();   // release landed, locals unsaved
  ASSERT_TRUE(survivor && announced && released);

  const std::uint32_t s = 0;
  table->stripe(s).debug_forge_cleanup_announced(announced->id());
  table->stripe(s).debug_forge_cleanup_released(released->id());
  // Two joins landed, one release landed: exactly one membership remains.
  ASSERT_EQ(table->stripe(s).peek_refcnt(survivor->id()), 1u);

  table->registry().debug_set_os_pid(announced->id(), kForgedDeadPid);
  table->registry().debug_set_os_pid(released->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 2u);

  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 2u);
  EXPECT_EQ(stats.zombie_pids, 0u);
  EXPECT_EQ(stats.forced_aborts, 2u);

  // Exactly one decrement ran per landed join: the rerun released the
  // announced victim's hold, the completion did NOT re-release the landed
  // one. A double decrement would underflow the (checked) refcnt.
  EXPECT_EQ(table->stripe(s).peek_refcnt(survivor->id()), 0u);
  EXPECT_EQ(table->registry().state(announced->id()), ProcessRegistry::kFree);
  EXPECT_EQ(table->registry().state(released->id()), ProcessRegistry::kFree);

  const obs::ShmRecoverySnapshot rec = table->shm_metrics().recovery_totals();
  EXPECT_EQ(rec.fa_compensated, 1u);
  EXPECT_EQ(rec.fa_completed, 1u);
  EXPECT_EQ(rec.zombie_retires, 0u);

  // The repaired stripe still grants.
  std::uint64_t key = 0;
  while (table->stripe_of(key) != s) ++key;
  EXPECT_TRUE(survivor->try_acquire_for(key, 2s).has_value());
}

/// Death with the instance switch announced but its CAS never issued: the
/// recoverer must redo the identical switch under the *same* sequence number
/// (the journaled pre-image still matches), installing the next one-shot.
TEST(ShmIpcTable, ForgedSwitchAnnouncedDeathRedoesTheSwitch) {
  ScopedSegment seg(unique_name("fa-switch"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto survivor = table->open_session();
  auto victim = table->open_session();
  ASSERT_TRUE(survivor && victim);

  const std::uint32_t s = 0;
  const std::uint32_t installed_before =
      table->stripe(s).peek_installed(survivor->id());
  // Sole member: the forge's release observes refcnt 1 and announces the
  // switch before "dying".
  table->stripe(s).debug_forge_cleanup_switch_announced(victim->id());
  ASSERT_EQ(table->stripe(s).peek_refcnt(survivor->id()), 0u);

  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);

  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.zombie_pids, 0u);
  EXPECT_EQ(stats.forced_aborts, 1u);

  // The redo landed: a fresh one-shot instance is installed and the victim's
  // slot is clean.
  EXPECT_NE(table->stripe(s).peek_installed(survivor->id()), installed_before);
  EXPECT_EQ(table->stripe(s).peek_refcnt(survivor->id()), 0u);
  EXPECT_EQ(table->stripe(s).peek_phase(victim->id()), kIdle);
  EXPECT_EQ(table->registry().state(victim->id()), ProcessRegistry::kFree);
  EXPECT_EQ(table->shm_metrics().recovery_totals().fa_completed, 1u);
  EXPECT_EQ(
      ring_count(*table, obs::ShmEventKind::kFaCompleted, victim->id()), 1u);

  // The switched-to instance grants normally.
  std::uint64_t key = 0;
  while (table->stripe_of(key) != s) ++key;
  EXPECT_TRUE(survivor->try_acquire_for(key, 2s).has_value());
}

// --- satellite: dead-session deadline cancellation ------------------------

TEST(ShmIpcTable, RecoveryCancelsDeadSessionsArmedDeadlines) {
  ScopedSegment seg(unique_name("wheel"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  // Arm two far-future deadlines for the victim (as a timed acquisition
  // would) so they are pending on this process's wheel.
  table->debug_arm(victim->id(), ShmNamedLockTable::Clock::now() + 1h);
  table->debug_arm(victim->id(), ShmNamedLockTable::Clock::now() + 2h);
  ASSERT_EQ(table->pending_deadlines(), 2u);

  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);

  // Recovery disarmed the victim's timers: they can no longer fire into the
  // pid's next leaseholder.
  EXPECT_EQ(table->pending_deadlines(), 0u);
  EXPECT_EQ(table->recovery_stats().cancelled_deadlines, 2u);

  // The reclaimed pid's next session starts with a clean signal: a timed
  // acquisition against an uncontended key succeeds immediately.
  auto successor = table->open_session();
  ASSERT_TRUE(successor.has_value());
  EXPECT_EQ(successor->id(), victim->id());
  EXPECT_TRUE(successor->try_acquire_for(std::uint64_t{3}, 2s).has_value());
}

}  // namespace
}  // namespace aml::ipc
