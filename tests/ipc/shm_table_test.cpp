// ShmNamedLockTable in-process coverage: create/attach sessions sharing the
// same segment, timed acquisition, simulated owner death driven through the
// full recovery protocol (journal dispatch, forced exit, registry reclaim,
// obs accounting), and dead-session deadline cancellation on the local
// TimerWheel. Genuine cross-address-space behavior (fork + SIGKILL) lives in
// shm_fork_test.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include <unistd.h>

#include "aml/core/abortable_lock.hpp"
#include "aml/ipc/shm_table.hpp"

namespace aml::ipc {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kForgedDeadPid = 0x7FFF'FFFF;

std::string unique_name(const char* tag) {
  static int counter = 0;
  return std::string("/aml-test-tbl-") + tag + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

ShmTableConfig small_config() {
  ShmTableConfig cfg;
  cfg.nprocs = 4;
  cfg.stripes = 2;
  cfg.tree_width = 64;
  return cfg;
}

struct ScopedSegment {
  explicit ScopedSegment(std::string n) : name(std::move(n)) {}
  ~ScopedSegment() { ShmNamedLockTable::unlink(name); }
  std::string name;
};

TEST(ShmIpcTable, CreateAcquireReleaseCountsInObs) {
  ScopedSegment seg(unique_name("basic"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto session = table->open_session();
  ASSERT_TRUE(session.has_value());
  {
    auto guard = session->acquire(std::uint64_t{7});
    EXPECT_LT(guard.stripe(), table->stripe_count());
  }
  {
    auto guard = session->acquire(std::string_view{"named-key"});
    (void)guard;
  }
  EXPECT_EQ(table->metrics().totals().acquisitions, 2u);
  EXPECT_EQ(table->metrics().totals().aborts, 0u);
  EXPECT_GT(table->registry().heartbeat(session->id()), 0u);
}

TEST(ShmIpcTable, AttachedReplicaSharesTheLocks) {
  ScopedSegment seg(unique_name("attach"));
  std::string error;
  auto creator = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(creator, nullptr) << error;
  auto replica = ShmNamedLockTable::attach(seg.name, small_config(), &error);
  ASSERT_NE(replica, nullptr) << error;

  auto a = creator->open_session();
  auto b = replica->open_session();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // The registry is shared: the replica's session got a distinct dense pid.
  EXPECT_NE(a->id(), b->id());

  const std::uint64_t key = 42;
  auto held = a->acquire(key);
  // The replica session contends on the *same* shm lock word: a deadline-
  // bounded attempt while the creator session holds must time out...
  EXPECT_FALSE(b->try_acquire_for(key, 30ms).has_value());
  held.release();
  // ...and succeed once released.
  auto reacquired = b->try_acquire_for(key, 2s);
  EXPECT_TRUE(reacquired.has_value());
  EXPECT_EQ(replica->metrics().totals().aborts, 1u);
}

TEST(ShmIpcTable, AttachRejectsDifferentConfig) {
  ScopedSegment seg(unique_name("cfgmismatch"));
  std::string error;
  auto creator = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(creator, nullptr) << error;

  ShmTableConfig other = small_config();
  other.stripes = 4;
  auto replica = ShmNamedLockTable::attach(seg.name, other, &error);
  EXPECT_EQ(replica, nullptr);
  EXPECT_NE(error.find("config hash"), std::string::npos) << error;
}

TEST(ShmIpcTable, AbortableAcquireHonorsSignal) {
  ScopedSegment seg(unique_name("abort"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto a = table->open_session();
  auto b = table->open_session();
  ASSERT_TRUE(a && b);

  const std::uint64_t key = 9;
  auto held = a->acquire(key);
  AbortSignal signal;
  signal.raise();  // pre-raised: the attempt must abandon promptly
  EXPECT_FALSE(b->try_acquire(key, signal).has_value());
  held.release();
  signal.reset();
  EXPECT_TRUE(b->try_acquire(key, signal).has_value());
}

/// The tentpole recovery scenario, in-process: a session "dies" holding a
/// stripe's critical section (we drive the stripe directly so no RAII guard
/// releases it, then forge its OS pid to an ESRCH value), and a survivor's
/// recover_dead() sweep must force the victim's exit, free its registry
/// slot, and leave the stripe acquirable — in one bounded sweep.
TEST(ShmIpcTable, RecoverDeadHolderForcesExitAndReclaimsSlot) {
  ScopedSegment seg(unique_name("recover"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  const std::uint32_t s = 0;
  ASSERT_TRUE(table->stripe(s).enter(victim->id(), nullptr).acquired);
  EXPECT_EQ(table->stripe(s).peek_phase(victim->id()), kHolding);
  const std::uint64_t acquisitions_before =
      table->metrics().totals().acquisitions;

  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);

  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_exits, 1u);
  EXPECT_EQ(stats.forced_aborts, 0u);
  EXPECT_EQ(stats.zombie_pids, 0u);

  // The victim's journal is reset, its pid is re-leasable, and the stripe's
  // recovery seqlock advanced exactly once per stripe sweep.
  EXPECT_EQ(table->stripe(s).peek_phase(victim->id()), kIdle);
  EXPECT_EQ(table->registry().state(victim->id()), ProcessRegistry::kFree);
  EXPECT_EQ(table->stripe(s).recovery_epoch(survivor->id()), 1u);

  // The stripe is fully functional for the survivor (the forced exit freed
  // the critical section and the hand-off machinery).
  std::uint64_t key = 0;
  while (table->stripe_of(key) != s) ++key;
  {
    auto guard = survivor->try_acquire_for(key, 2s);
    ASSERT_TRUE(guard.has_value());
    EXPECT_EQ(guard->stripe(), s);
  }
  // The recovered passage's grant/exit flowed through the same obs hooks as
  // a live passage would have (complete-grant is not re-counted; the
  // survivor's reacquisition is).
  EXPECT_GT(table->metrics().totals().acquisitions, acquisitions_before);

  // A second sweep finds nothing dead.
  EXPECT_EQ(survivor->recover_dead(), 0u);
  EXPECT_EQ(table->recovery_stats().recovered_pids, 1u);
}

/// A victim dead *between* passages (journal kIdle) costs nothing to
/// recover: no stripe repair, just the registry reclaim.
TEST(ShmIpcTable, RecoverIdleVictimReclaimsWithoutRepairs) {
  ScopedSegment seg(unique_name("idle"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);
  {
    auto guard = victim->acquire(std::uint64_t{1});  // complete passage
  }

  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);
  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_exits, 0u);
  EXPECT_EQ(stats.forced_aborts, 0u);
  EXPECT_EQ(table->registry().state(victim->id()), ProcessRegistry::kFree);
}

// --- satellite: dead-session deadline cancellation ------------------------

TEST(ShmIpcTable, RecoveryCancelsDeadSessionsArmedDeadlines) {
  ScopedSegment seg(unique_name("wheel"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  // Arm two far-future deadlines for the victim (as a timed acquisition
  // would) so they are pending on this process's wheel.
  table->debug_arm(victim->id(), ShmNamedLockTable::Clock::now() + 1h);
  table->debug_arm(victim->id(), ShmNamedLockTable::Clock::now() + 2h);
  ASSERT_EQ(table->pending_deadlines(), 2u);

  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);

  // Recovery disarmed the victim's timers: they can no longer fire into the
  // pid's next leaseholder.
  EXPECT_EQ(table->pending_deadlines(), 0u);
  EXPECT_EQ(table->recovery_stats().cancelled_deadlines, 2u);

  // The reclaimed pid's next session starts with a clean signal: a timed
  // acquisition against an uncontended key succeeds immediately.
  auto successor = table->open_session();
  ASSERT_TRUE(successor.has_value());
  EXPECT_EQ(successor->id(), victim->id());
  EXPECT_TRUE(successor->try_acquire_for(std::uint64_t{3}, 2s).has_value());
}

}  // namespace
}  // namespace aml::ipc
