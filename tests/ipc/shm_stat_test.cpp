// Crash-surviving observability coverage: the segment-hosted ShmMetrics
// sink (per-pid counters, the claim-odd/publish-even event ring, recovery
// dispatch counters), the passage tracer that folds the ring into spans,
// and the aml_stat JSON snapshot — all read back the way tools/aml_stat
// reads them, including against a "victim" whose death is forged with an
// ESRCH os pid so each recovery dispatch arm can be staged deterministically
// in-process. Genuine SIGKILL coverage of the same assertions lives in
// shm_fork_test.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "aml/ipc/shm_table.hpp"
#include "aml/ipc/stat_snapshot.hpp"
#include "aml/obs/shm_metrics.hpp"
#include "aml/obs/trace_export.hpp"

namespace aml::ipc {
namespace {

using namespace std::chrono_literals;
using obs::ShmEvent;
using obs::ShmEventKind;

constexpr std::uint64_t kForgedDeadPid = 0x7FFF'FFFF;

std::string unique_name(const char* tag) {
  static int counter = 0;
  return std::string("/aml-test-stat-") + tag + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

ShmTableConfig small_config() {
  ShmTableConfig cfg;
  cfg.nprocs = 4;
  cfg.stripes = 2;
  cfg.tree_width = 64;
  return cfg;
}

struct ScopedSegment {
  explicit ScopedSegment(std::string n) : name(std::move(n)) {}
  ~ScopedSegment() { ShmNamedLockTable::unlink(name); }
  std::string name;
};

std::vector<ShmEvent> events_of_kind(const obs::ShmMetrics& shm,
                                     ShmEventKind kind) {
  std::vector<ShmEvent> out;
  for (const ShmEvent& e : shm.ring_snapshot()) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

// --- the shm ring itself ---------------------------------------------------

TEST(ShmIpcStat, LifecycleEventsLandInTheSegmentRing) {
  ScopedSegment seg(unique_name("ring"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto session = table->open_session();
  ASSERT_TRUE(session.has_value());
  {
    auto guard = session->acquire(std::uint64_t{7});
  }

  obs::ShmMetrics& shm = table->shm_metrics();
  // One full passage: enter, granted, exit — all attributed to the session's
  // dense pid, stamped with this OS process, in ring order.
  std::uint64_t torn = ~std::uint64_t{0};
  const std::vector<ShmEvent> events = shm.ring_snapshot(&torn);
  EXPECT_EQ(torn, 0u);
  ASSERT_GE(events.size(), 3u);
  std::vector<ShmEventKind> kinds;
  for (const ShmEvent& e : events) {
    EXPECT_EQ(e.pid, session->id());
    EXPECT_EQ(e.writer_os_pid, static_cast<std::uint64_t>(::getpid()));
    kinds.push_back(e.kind);
  }
  const std::vector<ShmEventKind> expect = {
      ShmEventKind::kEnter, ShmEventKind::kGranted, ShmEventKind::kExit};
  EXPECT_EQ(std::vector<ShmEventKind>(kinds.begin(), kinds.begin() + 3),
            expect);

  const obs::ShmMetrics::Totals totals = shm.totals();
  EXPECT_EQ(totals.acquisitions, 1u);
  EXPECT_EQ(totals.aborts, 0u);
  EXPECT_EQ(shm.pid_counters(session->id()).acquisitions, 1u);
}

TEST(ShmIpcStat, RingWrapKeepsNewestAndCountsDropped) {
  ScopedSegment seg(unique_name("wrap"));
  ShmTableConfig cfg = small_config();
  cfg.ring_capacity = 16;  // tiny: a handful of passages wraps it
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, cfg, &error);
  ASSERT_NE(table, nullptr) << error;

  auto session = table->open_session();
  ASSERT_TRUE(session.has_value());
  for (int i = 0; i < 16; ++i) {
    auto guard = session->acquire(std::uint64_t{3});  // 3 events per passage
  }

  obs::ShmMetrics& shm = table->shm_metrics();
  // 16 passages at >= 3 events each overflowed the 16-slot ring for sure.
  const std::uint64_t total = shm.ring_total();
  EXPECT_GE(total, 48u);
  EXPECT_EQ(shm.ring_dropped(), total - 16u);
  std::uint64_t torn = ~std::uint64_t{0};
  const std::vector<ShmEvent> events = shm.ring_snapshot(&torn);
  // Quiesced single writer: the retained window is fully published.
  EXPECT_EQ(torn, 0u);
  ASSERT_EQ(events.size(), 16u);
  // Oldest-first and contiguous, ending at the newest sequence number.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().seq, total - 1);
}

TEST(ShmIpcStat, HandoffHistogramRecordsCrossSessionHandoffs) {
  ScopedSegment seg(unique_name("handoff"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto a = table->open_session();
  auto b = table->open_session();
  ASSERT_TRUE(a && b);
  const std::uint64_t key = 5;
  for (int i = 0; i < 4; ++i) {
    { auto guard = a->acquire(key); }
    { auto guard = b->acquire(key); }
  }
  // Every grant after the first claims the previous exit's parked
  // timestamp (same stripe), regardless of which session held before.
  const obs::ShmHistogramSnapshot h = table->shm_metrics().handoff();
  EXPECT_GE(h.count, 7u);
  EXPECT_GT(h.sum, 0u);
  EXPECT_GE(h.p99, h.p50);
}

// --- recovery dispatch arms: one typed event each, victim pid attached ----

TEST(ShmIpcStat, ForcedExitArmEmitsOneTypedEventWithVictim) {
  ScopedSegment seg(unique_name("fexit"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  const std::uint32_t s = 0;
  ASSERT_TRUE(table->stripe(s).enter(victim->id(), nullptr).acquired);
  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);

  obs::ShmMetrics& shm = table->shm_metrics();
  const auto forced = events_of_kind(shm, ShmEventKind::kForcedExit);
  ASSERT_EQ(forced.size(), 1u);
  EXPECT_EQ(forced[0].victim, victim->id());
  EXPECT_EQ(forced[0].pid, survivor->id());  // the executor
  EXPECT_EQ(forced[0].stripe, s);

  const obs::ShmRecoverySnapshot rec = shm.recovery_totals();
  EXPECT_EQ(rec.forced_exits, 1u);
  EXPECT_EQ(rec.total(), 1u);
  EXPECT_EQ(shm.recovery_stripe(s).forced_exits, 1u);
  EXPECT_EQ(shm.recovery_stripe(1).forced_exits, 0u);
  // The sweep repaired something, so its latency landed in the segment.
  EXPECT_EQ(shm.sweep_latency().count, 1u);
}

TEST(ShmIpcStat, ZombieRetireArmEmitsOneTypedEventWithVictim) {
  ScopedSegment seg(unique_name("zombie"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  // Forge a death inside the one remaining journal-blind window (v3): in
  // the one-shot doorway with no attempt recorded — the tail F&A may or may
  // not have run. The sweep must retire the pid as a zombie, repair
  // nothing, and say so in the ring. (The cleanup F&A window this test used
  // to forge is decidable now; see the ForgedCleanup* tests.)
  table->stripe(0).debug_set_phase(victim->id(), kDoorway);
  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 0u);  // zombies are not "recovered"

  obs::ShmMetrics& shm = table->shm_metrics();
  const auto retired = events_of_kind(shm, ShmEventKind::kZombieRetire);
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0].victim, victim->id());
  EXPECT_EQ(retired[0].pid, survivor->id());
  EXPECT_EQ(shm.recovery_totals().zombie_retires, 1u);
  EXPECT_EQ(table->registry().state(victim->id()), ProcessRegistry::kZombie);
  EXPECT_EQ(table->recovery_stats().zombie_pids, 1u);
}

TEST(ShmIpcStat, JoinedVictimAbortedOnBehalfWithOneTypedEvent) {
  ScopedSegment seg(unique_name("joined"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  // A full passage first so the journal's refcnt bookkeeping matches the
  // forged kJoined window (refcnt bumped, no doorway presence yet).
  const std::uint32_t s = 0;
  ASSERT_TRUE(table->stripe(s).enter(victim->id(), nullptr).acquired);
  table->stripe(s).exit(victim->id());
  ASSERT_TRUE(table->stripe(s).enter(victim->id(), nullptr).acquired);
  table->stripe(s).exit(victim->id());

  table->stripe(s).debug_forge_joined(victim->id());
  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  EXPECT_EQ(survivor->recover_dead(), 1u);

  obs::ShmMetrics& shm = table->shm_metrics();
  const auto aborted = events_of_kind(shm, ShmEventKind::kAbortOnBehalf);
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_EQ(aborted[0].victim, victim->id());
  EXPECT_EQ(aborted[0].pid, survivor->id());
  EXPECT_EQ(shm.recovery_totals().aborts_on_behalf, 1u);
  EXPECT_EQ(table->recovery_stats().forced_aborts, 1u);

  // The repair left the stripe acquirable.
  ASSERT_TRUE(table->stripe(s).enter(survivor->id(), nullptr).acquired);
  table->stripe(s).exit(survivor->id());
}

// --- passage tracer --------------------------------------------------------

TEST(ShmIpcStat, TracerClosesVictimSpanForcedWithRecoveryAnnotation) {
  ScopedSegment seg(unique_name("trace"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  const std::uint32_t s = 0;
  ASSERT_TRUE(table->stripe(s).enter(victim->id(), nullptr).acquired);
  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);
  ASSERT_EQ(survivor->recover_dead(), 1u);
  {  // a normal passage after the sweep: its span must close un-forced
    auto guard = survivor->acquire(std::uint64_t{0});
  }

  const std::vector<ShmEvent> events =
      table->shm_metrics().ring_snapshot();
  const std::vector<obs::PassageSpan> spans =
      obs::assemble_passage_spans(events);

  // The crash-and-recover episode, structurally: the victim's span is
  // granted, closed, *forced*, terminal kind forced-exit, annotated with
  // the surviving executor's pid.
  const obs::PassageSpan* victim_span = nullptr;
  for (const obs::PassageSpan& span : spans) {
    if (span.pid == victim->id() && span.forced) victim_span = &span;
  }
  ASSERT_NE(victim_span, nullptr);
  EXPECT_TRUE(victim_span->granted);
  EXPECT_TRUE(victim_span->closed);
  EXPECT_EQ(victim_span->close_kind, ShmEventKind::kForcedExit);
  EXPECT_EQ(victim_span->recovered_by, survivor->id());
  EXPECT_GE(victim_span->end_ns, victim_span->begin_ns);

  bool survivor_clean = false;
  for (const obs::PassageSpan& span : spans) {
    if (span.pid == survivor->id() && span.closed && !span.forced &&
        span.close_kind == ShmEventKind::kExit) {
      survivor_clean = true;
    }
  }
  EXPECT_TRUE(survivor_clean);

  // The Chrome export of the same ring is loadable structure: complete
  // ("X") span events, the forced outcome, and the recovery instant.
  std::ostringstream trace;
  obs::write_chrome_trace(trace, events);
  const std::string json = trace.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"forced-exit\""), std::string::npos);
  EXPECT_NE(json.find("\"recovered_by\":" + std::to_string(survivor->id())),
            std::string::npos);
  EXPECT_NE(json.find("\"forced\":true"), std::string::npos);
}

TEST(ShmIpcStat, TracerSynthesizesSpanWhenOpeningEventWrapped) {
  // Ring wrap robustness: a terminal whose opening enter was overwritten
  // still yields a (partial) span instead of disappearing.
  std::vector<ShmEvent> events;
  ShmEvent term;
  term.kind = ShmEventKind::kAbortOnBehalf;
  term.stripe = 1;
  term.pid = 2;      // executor
  term.victim = 0;   // victim whose enter was lost
  term.seq = 900;
  term.mono_ns = 5'000;
  events.push_back(term);

  const std::vector<obs::PassageSpan> spans =
      obs::assemble_passage_spans(events);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].pid, 0u);
  EXPECT_TRUE(spans[0].closed);
  EXPECT_TRUE(spans[0].forced);
  EXPECT_EQ(spans[0].recovered_by, 2u);
  EXPECT_EQ(spans[0].close_kind, ShmEventKind::kAbortOnBehalf);
}

// --- aml_stat snapshot -----------------------------------------------------

TEST(ShmIpcStat, StatJsonReportsVictimPhaseThenRecoveryCounters) {
  ScopedSegment seg(unique_name("json"));
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, small_config(), &error);
  ASSERT_NE(table, nullptr) << error;

  auto victim = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(victim && survivor);

  const std::uint32_t s = 0;
  ASSERT_TRUE(table->stripe(s).enter(victim->id(), nullptr).acquired);
  table->registry().debug_set_os_pid(victim->id(), kForgedDeadPid);

  // Pre-sweep snapshot: the victim's last journaled phase is visible — the
  // post-mortem signal an operator reads off an orphaned segment.
  std::ostringstream pre;
  write_stat_json(pre, *table);
  const std::string before = pre.str();
  EXPECT_NE(before.find("\"phase\":\"holding\""), std::string::npos);
  EXPECT_NE(before.find("\"kind\":\"granted\""), std::string::npos);
  EXPECT_NE(before.find("\"recovery\":{\"forced_exits\":0"),
            std::string::npos);

  ASSERT_EQ(survivor->recover_dead(), 1u);

  // Post-sweep snapshot: the phase is repaired away, the dispatch counters
  // and the typed ring event say what happened.
  std::ostringstream post;
  write_stat_json(post, *table);
  const std::string after = post.str();
  EXPECT_EQ(after.find("\"phase\":\"holding\""), std::string::npos);
  EXPECT_NE(after.find("\"forced_exits\":1"), std::string::npos);
  EXPECT_NE(after.find("\"kind\":\"forced-exit\""), std::string::npos);
  EXPECT_NE(after.find("\"victim\":" + std::to_string(victim->id())),
            std::string::npos);
  EXPECT_NE(after.find("\"state\":\"free\""), std::string::npos);
}

TEST(ShmIpcStat, PeekConfigDiscoversCreatorLayout) {
  ScopedSegment seg(unique_name("peek"));
  ShmTableConfig cfg = small_config();
  cfg.ring_capacity = 512;
  std::string error;
  auto table = ShmNamedLockTable::create(seg.name, cfg, &error);
  ASSERT_NE(table, nullptr) << error;

  // This is aml_stat's attach path: discover the layout from the segment's
  // own header, then attach with it — no out-of-band configuration.
  ShmTableConfig peeked;
  ASSERT_TRUE(ShmNamedLockTable::peek_config(seg.name, &peeked, &error))
      << error;
  EXPECT_EQ(peeked.nprocs, cfg.nprocs);
  EXPECT_EQ(peeked.stripes, cfg.stripes);
  EXPECT_EQ(peeked.tree_width, cfg.tree_width);
  EXPECT_EQ(peeked.ring_capacity, cfg.ring_capacity);

  auto replica = ShmNamedLockTable::attach(seg.name, peeked, &error);
  ASSERT_NE(replica, nullptr) << error;
  // The replica reads the same segment-hosted metrics words.
  { auto guard = table->open_session()->acquire(std::uint64_t{1}); }
  EXPECT_EQ(replica->shm_metrics().totals().acquisitions, 1u);
}

TEST(ShmIpcStat, PeekConfigRejectsMissingSegment) {
  ShmTableConfig cfg;
  std::string error;
  EXPECT_FALSE(ShmNamedLockTable::peek_config(unique_name("absent"), &cfg,
                                              &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace aml::ipc
