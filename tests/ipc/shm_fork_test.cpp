// Multi-process integration: fork() real workers against one shm segment.
// Covers the acceptance scenarios end-to-end: two processes cooperating on
// the same named key, a SIGKILLed critical-section holder recovered by a
// survivor in one bounded sweep, and a SIGKILLed *waiter* driven through the
// forced-abort arm.
//
// Fork discipline: the parent forks before constructing any table (a table
// owns a TimerWheel thread; forking a multithreaded process risks inheriting
// a held allocator lock), creates the segment afterwards, and the child
// attaches its own replica once signalled over a pipe. Children communicate
// results purely via exit codes and pipe bytes — no gtest in the child.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "aml/ipc/shm_table.hpp"

namespace aml::ipc {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kKey = 11;

std::string unique_name(const char* tag) {
  static int counter = 0;
  return std::string("/aml-test-fork-") + tag + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

ShmTableConfig fork_config() {
  ShmTableConfig cfg;
  cfg.nprocs = 4;
  cfg.stripes = 1;  // single stripe: every key contends, phases are at [0]
  return cfg;
}

bool read_byte(int fd, char expect) {
  char b = 0;
  ssize_t r;
  do {
    r = ::read(fd, &b, 1);
  } while (r < 0 && errno == EINTR);
  return r == 1 && b == expect;
}

void write_byte(int fd, char b) {
  ssize_t r;
  do {
    r = ::write(fd, &b, 1);
  } while (r < 0 && errno == EINTR);
}

struct Pipes {
  int to_child[2];
  int to_parent[2];
  Pipes() {
    AML_ASSERT(::pipe(to_child) == 0 && ::pipe(to_parent) == 0,
               "pipe() failed");
  }
  ~Pipes() {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(to_parent[0]);
    ::close(to_parent[1]);
  }
};

/// Child body: attach once the parent signals the segment exists, lease a
/// pid, then run `action` with the session. Non-zero returns diagnose which
/// step failed (surfaced through the exit status).
template <typename Action>
int child_main(const std::string& seg, int rfd, int wfd, Action action) {
  ::alarm(30);  // backstop: never outlive a wedged/failed parent
  if (!read_byte(rfd, 'C')) return 10;
  std::string error;
  auto table = ShmNamedLockTable::attach(seg, fork_config(), &error);
  if (table == nullptr) return 11;
  auto session = table->open_session();
  if (!session.has_value()) return 12;
  return action(*table, *session, rfd, wfd);
}

TEST(ShmIpcFork, TwoProcessesCooperateOnOneKey) {
  const std::string seg = unique_name("coop");
  Pipes p;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int rc = child_main(
        seg, p.to_child[0], p.to_parent[1],
        [](ShmNamedLockTable&, ShmNamedLockTable::Session& session, int rfd,
           int wfd) {
          auto guard = session.acquire(kKey);
          write_byte(wfd, 'H');  // holding
          if (!read_byte(rfd, 'G')) return 13;
          guard.release();
          return 0;
        });
    ::_exit(rc);
  }

  std::string error;
  auto table = ShmNamedLockTable::create(seg, fork_config(), &error);
  ASSERT_NE(table, nullptr) << error;
  write_byte(p.to_child[1], 'C');
  ASSERT_TRUE(read_byte(p.to_parent[0], 'H'));

  auto session = table->open_session();
  ASSERT_TRUE(session.has_value());
  // The child holds the key from its own address space: a bounded attempt
  // here must time out against it.
  EXPECT_FALSE(session->try_acquire_for(kKey, 50ms).has_value());

  write_byte(p.to_child[1], 'G');
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The child's orderly release handed the lock over cleanly.
  auto guard = session->try_acquire_for(kKey, 2s);
  EXPECT_TRUE(guard.has_value());
  ShmNamedLockTable::unlink(seg);
}

TEST(ShmIpcFork, SigkilledHolderRecoveredInOneSweep) {
  const std::string seg = unique_name("kill");
  Pipes p;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int rc = child_main(
        seg, p.to_child[0], p.to_parent[1],
        [](ShmNamedLockTable&, ShmNamedLockTable::Session& session, int,
           int wfd) {
          auto guard = session.acquire(kKey);
          write_byte(wfd, 'H');
          for (;;) ::pause();  // die holding the critical section
          return 15;           // unreachable
        });
    ::_exit(rc);
  }

  std::string error;
  auto table = ShmNamedLockTable::create(seg, fork_config(), &error);
  ASSERT_NE(table, nullptr) << error;
  write_byte(p.to_child[1], 'C');
  ASSERT_TRUE(read_byte(p.to_parent[0], 'H'));

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);  // reap: pid now ESRCH

  auto survivor = table->open_session();
  ASSERT_TRUE(survivor.has_value());
  // Bounded recovery: a single sweep finds, repairs and reclaims the dead
  // holder — no retries, no waiting on the (gone) victim.
  EXPECT_EQ(survivor->recover_dead(), 1u);
  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_exits, 1u);
  EXPECT_EQ(stats.zombie_pids, 0u);

  // The forced exit freed the critical section for the survivor.
  auto guard = survivor->try_acquire_for(kKey, 2s);
  EXPECT_TRUE(guard.has_value());
  // The recovered passage flowed through this process's obs sink: the
  // survivor drove the victim's exit plus its own acquisition.
  EXPECT_GE(table->metrics().totals().acquisitions, 1u);
  ShmNamedLockTable::unlink(seg);
}

TEST(ShmIpcFork, SigkilledWaiterForcedToAbort) {
  const std::string seg = unique_name("waiter");
  Pipes p;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int rc = child_main(
        seg, p.to_child[0], p.to_parent[1],
        [](ShmNamedLockTable&, ShmNamedLockTable::Session& session, int,
           int wfd) {
          write_byte(wfd, 'W');       // about to enter
          auto guard = session.acquire(kKey);  // blocks: parent holds
          return 14;                  // must never be granted
        });
    ::_exit(rc);
  }

  std::string error;
  auto table = ShmNamedLockTable::create(seg, fork_config(), &error);
  ASSERT_NE(table, nullptr) << error;
  auto holder = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(holder && survivor);
  auto guard = holder->acquire(kKey);

  write_byte(p.to_child[1], 'C');
  ASSERT_TRUE(read_byte(p.to_parent[0], 'W'));

  // Find the child's leased pid (the live slot that is not ours), then wait
  // until its journal shows it inside the one-shot doorway — parked in the
  // spin queue behind our guard — so the kill lands in a journaled window.
  const Pid nprocs = fork_config().nprocs;
  Pid victim = nprocs;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    for (Pid q = 0; q < nprocs; ++q) {
      if (table->registry().state(q) == ProcessRegistry::kLive &&
          table->registry().os_pid(q) ==
              static_cast<std::uint64_t>(child) &&
          table->stripe(0).peek_phase(q) == kDoorway) {
        victim = q;
      }
    }
    if (victim < nprocs) break;
    ::sched_yield();
  }
  ASSERT_LT(victim, nprocs) << "child never reached the doorway";

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  // Crash = forced abort: the waiter's queue slot is withdrawn on its
  // behalf while we still hold the lock.
  EXPECT_EQ(survivor->recover_dead(), 1u);
  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_aborts, 1u);
  EXPECT_EQ(stats.forced_exits, 0u);
  EXPECT_EQ(stats.zombie_pids, 0u);

  // Our guard was never disturbed; releasing it hands off normally.
  guard.release();
  EXPECT_TRUE(survivor->try_acquire_for(kKey, 2s).has_value());
  ShmNamedLockTable::unlink(seg);
}

}  // namespace
}  // namespace aml::ipc
