// Multi-process integration: fork() real workers against one shm segment.
// Covers the acceptance scenarios end-to-end: two processes cooperating on
// the same named key, a SIGKILLed critical-section holder recovered by a
// survivor in one bounded sweep, and a SIGKILLed *waiter* driven through the
// forced-abort arm.
//
// Fork discipline: the parent forks before constructing any table (a table
// owns a TimerWheel thread; forking a multithreaded process risks inheriting
// a held allocator lock), creates the segment afterwards, and the child
// attaches its own replica once signalled over a pipe. Children communicate
// results purely via exit codes and pipe bytes — no gtest in the child.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "aml/ipc/shm_table.hpp"
#include "aml/ipc/stat_snapshot.hpp"
#include "aml/obs/shm_metrics.hpp"
#include "aml/obs/trace_export.hpp"

namespace aml::ipc {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kKey = 11;

std::string unique_name(const char* tag) {
  static int counter = 0;
  return std::string("/aml-test-fork-") + tag + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

ShmTableConfig fork_config() {
  ShmTableConfig cfg;
  cfg.nprocs = 4;
  cfg.stripes = 1;  // single stripe: every key contends, phases are at [0]
  return cfg;
}

bool read_byte(int fd, char expect) {
  char b = 0;
  ssize_t r;
  do {
    r = ::read(fd, &b, 1);
  } while (r < 0 && errno == EINTR);
  return r == 1 && b == expect;
}

void write_byte(int fd, char b) {
  ssize_t r;
  do {
    r = ::write(fd, &b, 1);
  } while (r < 0 && errno == EINTR);
}

bool read_u64(int fd, std::uint64_t* out) {
  unsigned char buf[8];
  std::size_t got = 0;
  while (got < sizeof(buf)) {
    const ssize_t r = ::read(fd, buf + got, sizeof(buf) - got);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  *out = v;
  return true;
}

void write_u64(int fd, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  std::size_t put = 0;
  while (put < sizeof(buf)) {
    const ssize_t r = ::write(fd, buf + put, sizeof(buf) - put);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return;
    put += static_cast<std::size_t>(r);
  }
}

struct Pipes {
  int to_child[2];
  int to_parent[2];
  Pipes() {
    AML_ASSERT(::pipe(to_child) == 0 && ::pipe(to_parent) == 0,
               "pipe() failed");
  }
  ~Pipes() {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(to_parent[0]);
    ::close(to_parent[1]);
  }
};

/// Child body: attach once the parent signals the segment exists, lease a
/// pid, then run `action` with the session. Non-zero returns diagnose which
/// step failed (surfaced through the exit status).
template <typename Action>
int child_main(const std::string& seg, int rfd, int wfd, Action action) {
  ::alarm(30);  // backstop: never outlive a wedged/failed parent
  if (!read_byte(rfd, 'C')) return 10;
  std::string error;
  auto table = ShmNamedLockTable::attach(seg, fork_config(), &error);
  if (table == nullptr) return 11;
  auto session = table->open_session();
  if (!session.has_value()) return 12;
  return action(*table, *session, rfd, wfd);
}

TEST(ShmIpcFork, TwoProcessesCooperateOnOneKey) {
  const std::string seg = unique_name("coop");
  Pipes p;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int rc = child_main(
        seg, p.to_child[0], p.to_parent[1],
        [](ShmNamedLockTable&, ShmNamedLockTable::Session& session, int rfd,
           int wfd) {
          auto guard = session.acquire(kKey);
          write_byte(wfd, 'H');  // holding
          if (!read_byte(rfd, 'G')) return 13;
          guard.release();
          return 0;
        });
    ::_exit(rc);
  }

  std::string error;
  auto table = ShmNamedLockTable::create(seg, fork_config(), &error);
  ASSERT_NE(table, nullptr) << error;
  write_byte(p.to_child[1], 'C');
  ASSERT_TRUE(read_byte(p.to_parent[0], 'H'));

  auto session = table->open_session();
  ASSERT_TRUE(session.has_value());
  // The child holds the key from its own address space: a bounded attempt
  // here must time out against it.
  EXPECT_FALSE(session->try_acquire_for(kKey, 50ms).has_value());

  write_byte(p.to_child[1], 'G');
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The child's orderly release handed the lock over cleanly.
  auto guard = session->try_acquire_for(kKey, 2s);
  EXPECT_TRUE(guard.has_value());
  ShmNamedLockTable::unlink(seg);
}

TEST(ShmIpcFork, SigkilledHolderRecoveredInOneSweep) {
  const std::string seg = unique_name("kill");
  Pipes p;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int rc = child_main(
        seg, p.to_child[0], p.to_parent[1],
        [](ShmNamedLockTable&, ShmNamedLockTable::Session& session, int,
           int wfd) {
          auto guard = session.acquire(kKey);
          write_byte(wfd, 'H');
          for (;;) ::pause();  // die holding the critical section
          return 15;           // unreachable
        });
    ::_exit(rc);
  }

  std::string error;
  auto table = ShmNamedLockTable::create(seg, fork_config(), &error);
  ASSERT_NE(table, nullptr) << error;
  write_byte(p.to_child[1], 'C');
  ASSERT_TRUE(read_byte(p.to_parent[0], 'H'));

  // Identify the victim's dense pid before it dies so the post-mortem
  // assertions can name it.
  Pid victim = fork_config().nprocs;
  for (Pid q = 0; q < fork_config().nprocs; ++q) {
    if (table->registry().state(q) == ProcessRegistry::kLive &&
        table->registry().os_pid(q) == static_cast<std::uint64_t>(child)) {
      victim = q;
    }
  }
  ASSERT_LT(victim, fork_config().nprocs);

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);  // reap: pid now ESRCH

  // Post-mortem, pre-sweep: the victim took its heap to the grave, but the
  // segment still journals its last phase and its final ring events — this
  // is the aml_stat snapshot of the orphaned segment, and the acceptance
  // scenario of the observability PR.
  {
    std::ostringstream pre;
    write_stat_json(pre, *table);
    EXPECT_NE(pre.str().find("\"phase\":\"holding\""), std::string::npos);
  }
  bool victim_granted_seen = false;
  for (const obs::ShmEvent& e : table->shm_metrics().ring_snapshot()) {
    if (e.kind == obs::ShmEventKind::kGranted && e.pid == victim &&
        e.writer_os_pid == static_cast<std::uint64_t>(child)) {
      victim_granted_seen = true;  // written by the now-dead process itself
    }
  }
  EXPECT_TRUE(victim_granted_seen);

  auto survivor = table->open_session();
  ASSERT_TRUE(survivor.has_value());
  // Bounded recovery: a single sweep finds, repairs and reclaims the dead
  // holder — no retries, no waiting on the (gone) victim.
  EXPECT_EQ(survivor->recover_dead(), 1u);
  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_exits, 1u);
  EXPECT_EQ(stats.zombie_pids, 0u);

  // Exactly one typed forced-exit event, victim pid attached, and the
  // matching dispatch counter — readable from the segment by any process.
  std::size_t forced_events = 0;
  for (const obs::ShmEvent& e : table->shm_metrics().ring_snapshot()) {
    if (e.kind == obs::ShmEventKind::kForcedExit) {
      ++forced_events;
      EXPECT_EQ(e.victim, victim);
      EXPECT_EQ(e.pid, survivor->id());
    }
  }
  EXPECT_EQ(forced_events, 1u);
  EXPECT_EQ(table->shm_metrics().recovery_totals().forced_exits, 1u);

  // The forced exit freed the critical section for the survivor.
  auto guard = survivor->try_acquire_for(kKey, 2s);
  EXPECT_TRUE(guard.has_value());
  // The recovered passage flowed through this process's obs sink: the
  // survivor drove the victim's exit plus its own acquisition.
  EXPECT_GE(table->metrics().totals().acquisitions, 1u);
  ShmNamedLockTable::unlink(seg);
}

TEST(ShmIpcFork, SigkilledWaiterForcedToAbort) {
  const std::string seg = unique_name("waiter");
  Pipes p;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int rc = child_main(
        seg, p.to_child[0], p.to_parent[1],
        [](ShmNamedLockTable&, ShmNamedLockTable::Session& session, int,
           int wfd) {
          write_byte(wfd, 'W');       // about to enter
          auto guard = session.acquire(kKey);  // blocks: parent holds
          return 14;                  // must never be granted
        });
    ::_exit(rc);
  }

  std::string error;
  auto table = ShmNamedLockTable::create(seg, fork_config(), &error);
  ASSERT_NE(table, nullptr) << error;
  auto holder = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(holder && survivor);
  auto guard = holder->acquire(kKey);

  write_byte(p.to_child[1], 'C');
  ASSERT_TRUE(read_byte(p.to_parent[0], 'W'));

  // Find the child's leased pid (the live slot that is not ours), then wait
  // until its journal shows it inside the one-shot doorway — parked in the
  // spin queue behind our guard — so the kill lands in a journaled window.
  const Pid nprocs = fork_config().nprocs;
  Pid victim = nprocs;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    for (Pid q = 0; q < nprocs; ++q) {
      if (table->registry().state(q) == ProcessRegistry::kLive &&
          table->registry().os_pid(q) ==
              static_cast<std::uint64_t>(child) &&
          table->stripe(0).peek_phase(q) == kDoorway) {
        victim = q;
      }
    }
    if (victim < nprocs) break;
    ::sched_yield();
  }
  ASSERT_LT(victim, nprocs) << "child never reached the doorway";

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  // Crash = forced abort: the waiter's queue slot is withdrawn on its
  // behalf while we still hold the lock.
  EXPECT_EQ(survivor->recover_dead(), 1u);
  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_aborts, 1u);
  EXPECT_EQ(stats.forced_exits, 0u);
  EXPECT_EQ(stats.zombie_pids, 0u);

  // One typed abort-on-behalf event with the victim pid, and the tracer
  // closes the victim's (never-granted) span forced, annotated with the
  // sweeping executor — the timeline an operator sees in Perfetto.
  std::size_t on_behalf = 0;
  const auto events = table->shm_metrics().ring_snapshot();
  for (const obs::ShmEvent& e : events) {
    if (e.kind == obs::ShmEventKind::kAbortOnBehalf) {
      ++on_behalf;
      EXPECT_EQ(e.victim, victim);
      EXPECT_EQ(e.pid, survivor->id());
    }
  }
  EXPECT_EQ(on_behalf, 1u);
  EXPECT_EQ(table->shm_metrics().recovery_totals().aborts_on_behalf, 1u);
  bool victim_span_forced_abort = false;
  for (const obs::PassageSpan& s : obs::assemble_passage_spans(events)) {
    if (s.pid == victim && s.closed && s.forced && !s.granted &&
        s.close_kind == obs::ShmEventKind::kAbortOnBehalf &&
        s.recovered_by == survivor->id()) {
      victim_span_forced_abort = true;
    }
  }
  EXPECT_TRUE(victim_span_forced_abort);

  // Our guard was never disturbed; releasing it hands off normally.
  guard.release();
  EXPECT_TRUE(survivor->try_acquire_for(kKey, 2s).has_value());
  ShmNamedLockTable::unlink(seg);
}

TEST(ShmIpcFork, SigkilledGrantedWaiterDrivenThroughCompleteGrant) {
  // The complete-grant arm: the victim dies parked in the doorway, and the
  // hand-off lands *after* its death — the grant stands (it reached the
  // victim's go word) but nobody is alive to acknowledge it. The sweep must
  // complete the grant on the victim's behalf and then exit for it.
  const std::string seg = unique_name("grantee");
  Pipes p;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int rc = child_main(
        seg, p.to_child[0], p.to_parent[1],
        [](ShmNamedLockTable&, ShmNamedLockTable::Session& session, int,
           int wfd) {
          write_byte(wfd, 'W');                // about to enter
          auto guard = session.acquire(kKey);  // blocks: parent holds
          return 14;                           // must never run the CS
        });
    ::_exit(rc);
  }

  std::string error;
  auto table = ShmNamedLockTable::create(seg, fork_config(), &error);
  ASSERT_NE(table, nullptr) << error;
  auto holder = table->open_session();
  auto survivor = table->open_session();
  ASSERT_TRUE(holder && survivor);
  auto guard = holder->acquire(kKey);

  write_byte(p.to_child[1], 'C');
  ASSERT_TRUE(read_byte(p.to_parent[0], 'W'));

  const Pid nprocs = fork_config().nprocs;
  Pid victim = nprocs;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    for (Pid q = 0; q < nprocs; ++q) {
      if (table->registry().state(q) == ProcessRegistry::kLive &&
          table->registry().os_pid(q) ==
              static_cast<std::uint64_t>(child) &&
          table->stripe(0).peek_phase(q) == kDoorway) {
        victim = q;
      }
    }
    if (victim < nprocs) break;
    ::sched_yield();
  }
  ASSERT_LT(victim, nprocs) << "child never reached the doorway";

  // Kill first, release second: the exit's hand-off picks the (now dead)
  // victim as successor and writes its go word — a grant delivered to a
  // corpse, which is exactly the complete-grant recovery window.
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  guard.release();

  EXPECT_EQ(survivor->recover_dead(), 1u);
  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.recovered_pids, 1u);
  EXPECT_EQ(stats.forced_exits, 1u);  // complete-grant repairs via an exit
  EXPECT_EQ(stats.forced_aborts, 0u);
  EXPECT_EQ(stats.zombie_pids, 0u);

  // The segment distinguishes the arm: one typed complete-grant event with
  // the victim pid, and a victim span the tracer closes *granted* + forced.
  std::size_t complete_grants = 0;
  const auto events = table->shm_metrics().ring_snapshot();
  for (const obs::ShmEvent& e : events) {
    if (e.kind == obs::ShmEventKind::kCompleteGrant) {
      ++complete_grants;
      EXPECT_EQ(e.victim, victim);
      EXPECT_EQ(e.pid, survivor->id());
    }
  }
  EXPECT_EQ(complete_grants, 1u);
  EXPECT_EQ(table->shm_metrics().recovery_totals().complete_grants, 1u);
  bool victim_span_completed = false;
  for (const obs::PassageSpan& s : obs::assemble_passage_spans(events)) {
    if (s.pid == victim && s.closed && s.forced && s.granted &&
        s.close_kind == obs::ShmEventKind::kCompleteGrant) {
      victim_span_completed = true;
    }
  }
  EXPECT_TRUE(victim_span_completed);

  // The on-behalf exit freed the lock for the survivor.
  EXPECT_TRUE(survivor->try_acquire_for(kKey, 2s).has_value());
  ShmNamedLockTable::unlink(seg);
}

TEST(ShmIpcFork, ReattachResumesOwnIdentityAfterSigkill) {
  // Restart re-entry: the killed holder's *successor process* (here the
  // parent, standing in for the restarted service) presents the persisted
  // (dense pid, lease token) pair and re-enters through reattach_session —
  // its own passage is resumed/unwound as self-recovery and the SAME dense
  // pid is re-leased to it, rather than a survivor racing it to the sweep.
  const std::string seg = unique_name("reattach");
  Pipes p;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const int rc = child_main(
        seg, p.to_child[0], p.to_parent[1],
        [](ShmNamedLockTable&, ShmNamedLockTable::Session& session, int,
           int wfd) {
          // Persist the re-entry identity first (a real service would write
          // it to disk before touching the lock), then die holding.
          write_u64(wfd, session.id());
          write_u64(wfd, session.token());
          auto guard = session.acquire(kKey);
          write_byte(wfd, 'H');
          for (;;) ::pause();  // die holding the critical section
          return 15;           // unreachable
        });
    ::_exit(rc);
  }

  std::string error;
  auto table = ShmNamedLockTable::create(seg, fork_config(), &error);
  ASSERT_NE(table, nullptr) << error;
  write_byte(p.to_child[1], 'C');
  std::uint64_t victim_u64 = 0;
  std::uint64_t token = 0;
  ASSERT_TRUE(read_u64(p.to_parent[0], &victim_u64));
  ASSERT_TRUE(read_u64(p.to_parent[0], &token));
  ASSERT_TRUE(read_byte(p.to_parent[0], 'H'));
  const Pid victim = static_cast<Pid>(victim_u64);
  ASSERT_LT(victim, fork_config().nprocs);

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);  // reap: pid now ESRCH

  // A stale token must not reattach (the lease word wouldn't match).
  EXPECT_FALSE(table->reattach_session(victim, token + 1).has_value());

  auto reattached = table->reattach_session(victim, token);
  ASSERT_TRUE(reattached.has_value());
  EXPECT_EQ(reattached->id(), victim);

  // Self-recovery unwound the dead incarnation's passage (it died holding,
  // so the repair is a forced exit) and produced no zombie.
  const RecoveryStats& stats = table->recovery_stats();
  EXPECT_EQ(stats.reentries, 1u);
  EXPECT_EQ(stats.forced_exits, 1u);
  EXPECT_EQ(stats.zombie_pids, 0u);

  // The registry now binds the dense pid to THIS process under a fresh
  // token, and the segment journals the re-entry as a typed event.
  EXPECT_EQ(table->registry().state(victim), ProcessRegistry::kLive);
  EXPECT_EQ(table->registry().os_pid(victim),
            static_cast<std::uint64_t>(::getpid()));
  EXPECT_NE(reattached->token(), token);
  std::size_t reentry_events = 0;
  for (const obs::ShmEvent& e : table->shm_metrics().ring_snapshot()) {
    if (e.kind == obs::ShmEventKind::kReentry) {
      ++reentry_events;
      EXPECT_EQ(e.victim, victim);
    }
  }
  EXPECT_EQ(reentry_events, 1u);

  // The resumed identity is fully functional: the key its previous
  // incarnation died holding is acquirable again by the reattached session.
  EXPECT_TRUE(reattached->try_acquire_for(kKey, 2s).has_value());
  ShmNamedLockTable::unlink(seg);
}

}  // namespace
}  // namespace aml::ipc
