// ProcessRegistry: lease/release lifecycle, the atomic death-pinned
// recovery claim (a claim can never land on a live or re-leased holder),
// the os_pid-before-free release ordering, zombie retirement, and the
// slot-reclamation property test — simulated owner deaths plus recovery
// sweeps never yield two live holders of the same dense pid, and stale
// (token-mismatched) releases never free a successor's lease.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "aml/ipc/process_registry.hpp"
#include "aml/ipc/shm_arena.hpp"

namespace aml::ipc {
namespace {

using model::Pid;

/// A pid above the kernel's default pid_max: kill() reports ESRCH for it,
/// which is exactly the signal dead() keys on.
constexpr std::uint64_t kForgedDeadPid = 0x7FFF'FFFF;

struct RegistryFixture {
  explicit RegistryFixture(Pid nprocs)
      : name("/aml-test-reg-" + std::to_string(::getpid()) + "-" +
             std::to_string(next_id())) {
    std::string error;
    arena = ShmArena::create(name, 1 << 16, 0, &error);
    AML_ASSERT(arena != nullptr, "fixture arena create failed");
    registry = std::make_unique<ProcessRegistry>(*arena, nprocs);
  }
  ~RegistryFixture() { ShmArena::unlink(name); }

  static int next_id() {
    static int counter = 0;
    return counter++;
  }

  std::string name;
  std::unique_ptr<ShmArena> arena;
  std::unique_ptr<ProcessRegistry> registry;
};

TEST(ShmIpcRegistry, LeasesLowestFreeAndReleases) {
  RegistryFixture f(3);
  ProcessRegistry& reg = *f.registry;

  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  EXPECT_EQ(reg.try_lease(&t0), 0u);
  EXPECT_EQ(reg.try_lease(&t1), 1u);
  EXPECT_EQ(reg.state(0), ProcessRegistry::kLive);
  EXPECT_EQ(reg.os_pid(0), static_cast<std::uint64_t>(::getpid()));

  reg.release(0, t0);
  EXPECT_EQ(reg.state(0), ProcessRegistry::kFree);
  EXPECT_EQ(reg.os_pid(0), 0u);

  // The freed slot is the lowest again; its lease word carries a fresh nonce.
  std::uint64_t t0b = 0;
  EXPECT_EQ(reg.try_lease(&t0b), 0u);
  EXPECT_NE(t0b, t0);
}

TEST(ShmIpcRegistry, FullRegistryRejectsLease) {
  RegistryFixture f(2);
  ProcessRegistry& reg = *f.registry;
  EXPECT_EQ(reg.try_lease(), 0u);
  EXPECT_EQ(reg.try_lease(), 1u);
  EXPECT_EQ(reg.try_lease(), 2u);  // == nprocs: full
}

TEST(ShmIpcRegistry, HeartbeatIsMonotonic) {
  RegistryFixture f(1);
  ProcessRegistry& reg = *f.registry;
  ASSERT_EQ(reg.try_lease(), 0u);
  const std::uint64_t before = reg.heartbeat(0);
  reg.beat(0);
  reg.beat(0);
  EXPECT_EQ(reg.heartbeat(0), before + 2);
}

TEST(ShmIpcRegistry, DeadDetectsForgedEsrchPidOnly) {
  RegistryFixture f(2);
  ProcessRegistry& reg = *f.registry;
  ASSERT_EQ(reg.try_lease(), 0u);

  EXPECT_FALSE(reg.dead(0));  // our own live pid
  EXPECT_FALSE(reg.dead(1));  // free slot

  reg.debug_set_os_pid(0, kForgedDeadPid);
  EXPECT_TRUE(reg.dead(0));

  // The unpublished-pid window (os_pid == 0) is alive by definition.
  reg.debug_set_os_pid(0, 0);
  EXPECT_FALSE(reg.dead(0));
}

/// The v3 pid-reuse hardening: ESRCH alone cannot tell a live holder from
/// an unrelated process the kernel recycled the pid to. A published start
/// time that contradicts the live process's start time is death evidence;
/// an unknown start time on either side is evidence of nothing.
TEST(ShmIpcRegistry, StartTimeMismatchDetectsPidReuse) {
  RegistryFixture f(2);
  ProcessRegistry& reg = *f.registry;
  ASSERT_EQ(reg.try_lease(), 0u);

  EXPECT_EQ(reg.os_pid(0), static_cast<std::uint64_t>(::getpid()));
#if defined(__linux__)
  // On Linux the lease published our real kernel start time.
  const std::uint64_t self_start =
      process_start_ticks(static_cast<std::uint64_t>(::getpid()));
  ASSERT_NE(self_start, 0u);
  EXPECT_EQ(reg.os_start(0), self_start);
  EXPECT_FALSE(reg.dead(0));

  // Same pid answers, but the published start names a different (dead)
  // incarnation: that is pid reuse, and the holder is provably dead — the
  // exact signal a restarted process uses to recognize its own old slot
  // even when the kernel recycled its pid.
  reg.debug_set_os_start(0, self_start + 1);
  EXPECT_TRUE(reg.dead(0));

  // Unknown published start degrades conservatively to v1: no evidence,
  // never a false death.
  reg.debug_set_os_start(0, 0);
  EXPECT_FALSE(reg.dead(0));
#else
  EXPECT_EQ(reg.os_start(0), 0u);  // portable fallback: unknown
  EXPECT_FALSE(reg.dead(0));
#endif
}

/// Restart re-entry at the registry layer: try_reattach is the survivor
/// claim pinned to the exact previous lease token, and repossess converts
/// the claim back into a live lease under the caller's identity.
TEST(ShmIpcRegistry, ReattachRequiresExactTokenAndDeadHolder) {
  RegistryFixture f(2);
  ProcessRegistry& reg = *f.registry;
  std::uint64_t token = 0;
  ASSERT_EQ(reg.try_lease(&token), 0u);

  // A live holder (ourselves) is not reattachable even with the right
  // token: the previous incarnation must be provably dead.
  EXPECT_FALSE(reg.try_reattach(0, token));
  EXPECT_EQ(reg.state(0), ProcessRegistry::kLive);

  reg.debug_set_os_pid(0, kForgedDeadPid);
  // Wrong token (bumped nonce): refuses even though the holder is dead.
  EXPECT_FALSE(reg.try_reattach(0, token + (ProcessRegistry::kStateMask + 1)));
  // Exact token + dead holder: the exclusive claim lands.
  ASSERT_TRUE(reg.try_reattach(0, token));
  EXPECT_EQ(reg.state(0), ProcessRegistry::kRecovering);
  // No survivor can double-claim while we hold it.
  EXPECT_FALSE(reg.try_claim_recovery(0));

  const std::uint64_t fresh = reg.repossess(0);
  EXPECT_NE(fresh, token);
  EXPECT_EQ(reg.state(0), ProcessRegistry::kLive);
  EXPECT_EQ(reg.os_pid(0), static_cast<std::uint64_t>(::getpid()));

  // The old token is spent: a second re-entry attempt with it must refuse
  // (the nonce moved on), and an orderly release under the fresh token
  // still works.
  reg.debug_set_os_pid(0, kForgedDeadPid);
  EXPECT_FALSE(reg.try_reattach(0, token));
  reg.release(0, fresh);
  EXPECT_EQ(reg.state(0), ProcessRegistry::kFree);
}

/// A survivor sweep that wins the race retires or frees the slot, after
/// which the restarted process's reattach must refuse and fall back to a
/// fresh lease.
TEST(ShmIpcRegistry, ReattachLosesToCompletedSurvivorSweep) {
  RegistryFixture f(2);
  ProcessRegistry& reg = *f.registry;
  std::uint64_t token = 0;
  ASSERT_EQ(reg.try_lease(&token), 0u);
  reg.debug_set_os_pid(0, kForgedDeadPid);

  ASSERT_TRUE(reg.try_claim_recovery(0));
  reg.finish_recovery(0, /*zombie=*/false);
  EXPECT_FALSE(reg.try_reattach(0, token));
  EXPECT_EQ(reg.state(0), ProcessRegistry::kFree);
}

/// Epoch-based zombie reclamation: retirement opens a new quiescence epoch,
/// and the retired pid becomes leasable again only once every live slot has
/// journaled an idle point at or after that epoch.
TEST(ShmIpcRegistry, ZombieReclaimWaitsForFullQuiescence) {
  RegistryFixture f(3);
  ProcessRegistry& reg = *f.registry;
  ASSERT_EQ(reg.try_lease(), 0u);  // the future zombie
  ASSERT_EQ(reg.try_lease(), 1u);  // a bystander, idle-marked at epoch 0

  reg.debug_set_os_pid(0, kForgedDeadPid);
  ASSERT_TRUE(reg.try_claim_recovery(0));
  reg.finish_recovery(0, /*zombie=*/true);
  ASSERT_EQ(reg.state(0), ProcessRegistry::kZombie);
  EXPECT_EQ(reg.epoch(), 1u);
  EXPECT_EQ(reg.retired_epoch(0), 1u);

  // Only zombies are reclaimable, and not before the bystander (whose idle
  // mark predates the retirement) passes through an idle point.
  EXPECT_FALSE(reg.try_reclaim_zombie(1));
  EXPECT_FALSE(reg.try_reclaim_zombie(0));
  EXPECT_EQ(reg.state(0), ProcessRegistry::kZombie);

  reg.note_idle(1);
  EXPECT_TRUE(reg.try_reclaim_zombie(0));
  EXPECT_EQ(reg.state(0), ProcessRegistry::kFree);
  // The reclaimed pid is ordinarily leasable again — retirement is no
  // longer permanent pid-space leakage.
  EXPECT_EQ(reg.try_lease(), 0u);
}

TEST(ShmIpcRegistry, RecoveryClaimIsExclusiveAndFreesSlot) {
  RegistryFixture f(2);
  ProcessRegistry& reg = *f.registry;
  ASSERT_EQ(reg.try_lease(), 0u);
  reg.debug_set_os_pid(0, kForgedDeadPid);

  ASSERT_TRUE(reg.try_claim_recovery(0));
  EXPECT_EQ(reg.state(0), ProcessRegistry::kRecovering);
  // A second survivor racing the claim loses: the slot is no longer kLive.
  EXPECT_FALSE(reg.try_claim_recovery(0));

  reg.finish_recovery(0, /*zombie=*/false);
  EXPECT_EQ(reg.state(0), ProcessRegistry::kFree);
  EXPECT_EQ(reg.try_lease(), 0u);  // reclaimable
}

TEST(ShmIpcRegistry, ZombieRetirementIsTerminal) {
  RegistryFixture f(2);
  ProcessRegistry& reg = *f.registry;
  ASSERT_EQ(reg.try_lease(), 0u);
  reg.debug_set_os_pid(0, kForgedDeadPid);
  ASSERT_TRUE(reg.try_claim_recovery(0));
  reg.finish_recovery(0, /*zombie=*/true);

  EXPECT_EQ(reg.state(0), ProcessRegistry::kZombie);
  // try_lease skips the retired pid and hands out the next slot.
  EXPECT_EQ(reg.try_lease(), 1u);
  EXPECT_EQ(reg.try_lease(), 2u);  // the rest is full
  EXPECT_FALSE(reg.dead(0));
  EXPECT_FALSE(reg.try_claim_recovery(0));
}

/// The recovery claim must re-establish death itself, under the same lease
/// word it CASes from: a bare "state is kLive" claim would let a survivor
/// act on a stale dead() observation and claim a slot that has since been
/// recovered and re-leased to a LIVE process (whose critical section the
/// recovery would then force-exit).
TEST(ShmIpcRegistry, ClaimRefusesLiveHolder) {
  RegistryFixture f(2);
  ProcessRegistry& reg = *f.registry;
  ASSERT_EQ(reg.try_lease(), 0u);

  // Live holder (our own pid): kLive alone must not be claimable.
  EXPECT_EQ(reg.state(0), ProcessRegistry::kLive);
  EXPECT_FALSE(reg.try_claim_recovery(0));

  // The TOCTOU endpoint: death observed (dead() true), then the slot is
  // recovered and re-leased to a live holder before the claim lands. The
  // late claim must lose against the re-leased live slot.
  reg.debug_set_os_pid(0, kForgedDeadPid);
  ASSERT_TRUE(reg.dead(0));  // a survivor's stale observation...
  ASSERT_TRUE(reg.try_claim_recovery(0));
  reg.finish_recovery(0, /*zombie=*/false);
  ASSERT_EQ(reg.try_lease(), 0u);  // ...re-leased, live again...
  EXPECT_FALSE(reg.dead(0));
  EXPECT_FALSE(reg.try_claim_recovery(0));  // ...so the claim refuses
  EXPECT_EQ(reg.state(0), ProcessRegistry::kLive);
}

/// release() must clear os_pid *before* the slot becomes leasable: with the
/// reverse order, a racing try_lease wins the freed slot and publishes its
/// pid, and the old holder's trailing os_pid=0 erases it — making a later
/// crash of the successor permanently undetectable. Two threads ping-pong a
/// single slot; the holder's published pid must never read back as 0.
TEST(ShmIpcRegistry, ReleaseNeverErasesSuccessorOsPid) {
  RegistryFixture f(1);
  ProcessRegistry& reg = *f.registry;

  std::atomic<bool> failed{false};
  auto contender = [&reg, &failed] {
    for (int i = 0; i < 20000 && !failed.load(std::memory_order_relaxed);
         ++i) {
      std::uint64_t token = 0;
      if (reg.try_lease(&token) != 0) continue;
      // While we hold the lease, only we may write os_pid (the peer's
      // release path may touch it only under its own exclusive claim,
      // which our live lease makes unwinnable).
      for (int spin = 0; spin < 8; ++spin) {
        if (reg.os_pid(0) != static_cast<std::uint64_t>(::getpid())) {
          failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
      reg.release(0, token);
    }
  };
  std::thread a(contender);
  std::thread b(contender);
  a.join();
  b.join();
  EXPECT_FALSE(failed.load()) << "a release erased the successor's os_pid";
}

TEST(ShmIpcRegistry, StaleTokenReleaseCannotFreeSuccessorLease) {
  RegistryFixture f(1);
  ProcessRegistry& reg = *f.registry;

  std::uint64_t victim_token = 0;
  ASSERT_EQ(reg.try_lease(&victim_token), 0u);

  // A survivor declares us dead and recovers the slot...
  reg.debug_set_os_pid(0, kForgedDeadPid);
  ASSERT_TRUE(reg.try_claim_recovery(0));
  reg.finish_recovery(0, false);
  // ...and a successor re-leases it.
  std::uint64_t successor_token = 0;
  ASSERT_EQ(reg.try_lease(&successor_token), 0u);

  // The original holder's (late) release must be a no-op: its token nonce
  // is stale, so the successor keeps the lease.
  reg.release(0, victim_token);
  EXPECT_EQ(reg.state(0), ProcessRegistry::kLive);
  EXPECT_EQ(reg.os_pid(0), static_cast<std::uint64_t>(::getpid()));

  reg.release(0, successor_token);
  EXPECT_EQ(reg.state(0), ProcessRegistry::kFree);
}

// --- satellite: slot-reclamation property test ----------------------------

/// Drives a randomized schedule of lease / orderly-release / simulated-death
/// + recovery / stale-release / zombie-retirement / idle-mark / reclamation
/// operations and checks after every step that no dense pid has two
/// believed-live holders. The model mirrors what real processes know: a
/// holder keeps (id, token) until it releases, or until a death simulation
/// moves it to the stale set (whose late releases must no-op); the model
/// also tracks its own epoch clock and per-holder idle marks, so the
/// reclamation gate is checked against an independent oracle.
TEST(ShmIpcRegistryProperty, ReclaimAfterOwnerDeathNeverDuplicatesLiveIds) {
  constexpr Pid kProcs = 4;
  RegistryFixture f(kProcs);
  ProcessRegistry& reg = *f.registry;

  std::vector<std::pair<Pid, std::uint64_t>> live;   // believed-live leases
  std::vector<std::pair<Pid, std::uint64_t>> stale;  // recovered under us
  std::vector<Pid> zombies;                          // retired, unreclaimed
  std::uint64_t model_epoch = 0;          // mirrors the registry's counter
  std::uint64_t idle_mark[kProcs] = {};   // model: last idled at this epoch
  std::uint64_t retired_at[kProcs] = {};  // model: retirement epoch
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng](std::uint64_t bound) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return (rng >> 33) % bound;
  };

  for (int step = 0; step < 4000; ++step) {
    switch (next(7)) {
      case 0: {  // lease
        std::uint64_t token = 0;
        const Pid id = reg.try_lease(&token);
        if (id < kProcs) {
          // A fresh lease must never alias a believed-live holder, nor a
          // retired-but-unreclaimed zombie pid.
          for (const auto& h : live) ASSERT_NE(h.first, id) << "step " << step;
          for (const Pid z : zombies) ASSERT_NE(z, id) << "step " << step;
          live.emplace_back(id, token);
          idle_mark[id] = model_epoch;  // try_lease stamps a fresh idle mark
        }
        break;
      }
      case 1: {  // orderly release
        if (live.empty()) break;
        const std::size_t k = next(live.size());
        reg.release(live[k].first, live[k].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
      case 2: {  // simulated owner death + survivor recovery sweep
        if (live.empty()) break;
        const std::size_t k = next(live.size());
        const Pid id = live[k].first;
        reg.debug_set_os_pid(id, kForgedDeadPid);
        ASSERT_TRUE(reg.dead(id));
        ASSERT_TRUE(reg.try_claim_recovery(id));
        reg.finish_recovery(id, /*zombie=*/false);
        stale.push_back(live[k]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
      case 3: {  // stale release from a "dead" holder: must not free anything
        if (stale.empty()) break;
        const std::size_t k = next(stale.size());
        const Pid id = stale[k].first;
        const bool was_live = reg.state(id) == ProcessRegistry::kLive;
        reg.release(id, stale[k].second);
        // A successor's lease (if any) survives the stale release.
        EXPECT_EQ(reg.state(id) == ProcessRegistry::kLive, was_live)
            << "stale release freed a successor's lease at step " << step;
        stale.erase(stale.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
      case 4: {  // simulated death in the journal-blind window: retirement
        if (live.empty()) break;
        const std::size_t k = next(live.size());
        const Pid id = live[k].first;
        reg.debug_set_os_pid(id, kForgedDeadPid);
        ASSERT_TRUE(reg.try_claim_recovery(id));
        reg.finish_recovery(id, /*zombie=*/true);
        ++model_epoch;  // retirement opens a new quiescence epoch
        retired_at[id] = model_epoch;
        ASSERT_EQ(reg.epoch(), model_epoch) << "step " << step;
        zombies.push_back(id);
        stale.push_back(live[k]);  // its late release must still no-op
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
      case 5: {  // reclamation attempt, checked against the model's gate
        if (zombies.empty()) break;
        const std::size_t k = next(zombies.size());
        const Pid id = zombies[k];
        bool quiesced = true;
        for (const auto& h : live) {
          if (idle_mark[h.first] < retired_at[id]) quiesced = false;
        }
        EXPECT_EQ(reg.try_reclaim_zombie(id), quiesced)
            << "reclamation gate disagrees with the model at step " << step;
        if (quiesced) {
          EXPECT_EQ(reg.state(id), ProcessRegistry::kFree) << "step " << step;
          zombies.erase(zombies.begin() + static_cast<std::ptrdiff_t>(k));
        } else {
          EXPECT_EQ(reg.state(id), ProcessRegistry::kZombie)
              << "unquiesced reclaim must leave the retirement, step "
              << step;
        }
        break;
      }
      case 6: {  // a live holder reaches a no-footprint point
        if (live.empty()) break;
        const Pid id = live[next(live.size())].first;
        reg.note_idle(id);
        idle_mark[id] = model_epoch;
        break;
      }
    }

    // Global invariant: every believed-live holder's slot is kLive, and no
    // two holders share an id.
    std::vector<Pid> ids;
    for (const auto& h : live) {
      EXPECT_EQ(reg.state(h.first), ProcessRegistry::kLive)
          << "holder lost its lease without a death event, step " << step;
      ids.push_back(h.first);
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << "duplicate live pid at step " << step;
  }
}

}  // namespace
}  // namespace aml::ipc
