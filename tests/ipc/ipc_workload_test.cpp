// Model-checks the crash-as-forced-abort choreography: the
// "ipc-crash-recovery" workload models a CS holder crashing (returning
// without exit) and a recoverer driving the victim's exit as its own steps,
// racing a late-arriving aborter — the responsibility hand-off the shm
// recovery protocol leans on. DPOR must explore it to exhaustion with zero
// oracle violations (mutual exclusion, tree invariants, lost wake-ups).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "aml/analysis/workloads.hpp"
#include "aml/sched/explorer.hpp"

namespace aml::ipc {
namespace {

std::string temp_dir() {
  const char* t = std::getenv("TMPDIR");
  return (t != nullptr && t[0] != '\0') ? t : "/tmp";
}

TEST(ShmIpcWorkload, CrashRecoveryExploresCleanUnderDpor) {
  const auto* workload = analysis::find_workload("ipc-crash-recovery");
  ASSERT_NE(workload, nullptr);
  EXPECT_EQ(workload->nprocs, 4u);

  sched::ExploreConfig config;
  config.nprocs = workload->nprocs;
  config.preemption_bound = 2;
  config.max_executions = 500'000;
  config.reduction = sched::Reduction::kDpor;
  config.workload = workload->name;
  config.trace_dir = temp_dir();

  const auto stats = sched::explore(config, workload->factory);
  EXPECT_FALSE(stats.failed) << stats.failure;
  EXPECT_FALSE(stats.truncated)
      << "crash-recovery workload did not explore to exhaustion";
  EXPECT_GT(stats.executions, 10u);
}

TEST(ShmIpcWorkload, DeathAtFaExploresCleanUnderDpor) {
  const auto* workload = analysis::find_workload("ipc-death-at-fa");
  ASSERT_NE(workload, nullptr);
  EXPECT_EQ(workload->nprocs, 3u);

  sched::ExploreConfig config;
  config.nprocs = workload->nprocs;
  config.preemption_bound = 3;
  config.max_executions = 500'000;
  config.reduction = sched::Reduction::kDpor;
  config.workload = workload->name;
  config.trace_dir = temp_dir();

  const auto stats = sched::explore(config, workload->factory);
  EXPECT_FALSE(stats.failed) << stats.failure;
  EXPECT_FALSE(stats.truncated)
      << "death-at-F&A workload did not explore to exhaustion";
  EXPECT_GT(stats.executions, 10u);
}

}  // namespace
}  // namespace aml::ipc
