// ShmArena: create/seal/attach lifecycle, the deterministic-replay
// contract (verify_replay catches layout drift), and the superblock's
// config-hash/ABI gate. All "cross-process" checks here run two arenas in
// one process — the segment is real shm either way, and the fork tests in
// shm_fork_test.cpp cover genuinely separate address spaces.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "aml/ipc/offset_ptr.hpp"
#include "aml/ipc/shm_arena.hpp"

namespace aml::ipc {
namespace {

/// Unique-per-test segment name: shm lives in a kernel-global namespace, so
/// collisions with a concurrently running binary (or a crashed previous run)
/// must be impossible.
std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return std::string("/aml-test-") + tag + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1));
}

/// Unlinks the segment name even when an ASSERT bails out of the test body.
struct ScopedSegment {
  explicit ScopedSegment(std::string n) : name(std::move(n)) {}
  ~ScopedSegment() { ShmArena::unlink(name); }
  std::string name;
};

TEST(ShmIpcArena, CreateSealAttachSharesWords) {
  ScopedSegment seg(unique_name("arena"));
  std::string error;

  auto creator = ShmArena::create(seg.name, 1 << 16, /*config_hash=*/42,
                                  &error);
  ASSERT_NE(creator, nullptr) << error;
  EXPECT_TRUE(creator->creating());

  auto* words = creator->alloc_array<std::atomic<std::uint64_t>>(8);
  for (int i = 0; i < 8; ++i) {
    words[i].store(100 + i, std::memory_order_relaxed);
  }
  creator->seal();

  auto attacher = ShmArena::attach(seg.name, 42, &error);
  ASSERT_NE(attacher, nullptr) << error;
  EXPECT_FALSE(attacher->creating());

  // Replay the identical allocation (no stores) and verify alignment.
  auto* replica = attacher->alloc_array<std::atomic<std::uint64_t>>(8);
  ASSERT_TRUE(attacher->verify_replay(&error)) << error;

  // The replica resolves to the creator's live objects: reads see the
  // creator's stores, and a store through one mapping is visible in the
  // other (distinct mapping bases, same physical pages).
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(replica[i].load(std::memory_order_relaxed),
              static_cast<std::uint64_t>(100 + i));
  }
  replica[3].store(777, std::memory_order_relaxed);
  EXPECT_EQ(words[3].load(std::memory_order_relaxed), 777u);
  EXPECT_NE(creator->base(), attacher->base());
}

TEST(ShmIpcArena, VerifyReplayCatchesLayoutDrift) {
  ScopedSegment seg(unique_name("drift"));
  std::string error;

  auto creator = ShmArena::create(seg.name, 1 << 16, 7, &error);
  ASSERT_NE(creator, nullptr) << error;
  creator->alloc_array<std::uint64_t>(16);
  creator->seal();

  auto attacher = ShmArena::attach(seg.name, 7, &error);
  ASSERT_NE(attacher, nullptr) << error;
  attacher->alloc_array<std::uint64_t>(17);  // one word of drift
  EXPECT_FALSE(attacher->verify_replay(&error));
  EXPECT_NE(error.find("replay mismatch"), std::string::npos) << error;
}

TEST(ShmIpcArena, AttachRejectsConfigHashMismatch) {
  ScopedSegment seg(unique_name("hash"));
  std::string error;

  auto creator = ShmArena::create(seg.name, 1 << 16, 1234, &error);
  ASSERT_NE(creator, nullptr) << error;
  creator->seal();

  auto attacher = ShmArena::attach(seg.name, 9999, &error);
  EXPECT_EQ(attacher, nullptr);
  EXPECT_NE(error.find("config hash"), std::string::npos) << error;
}

TEST(ShmIpcArena, AttachMissingSegmentFails) {
  std::string error;
  auto attacher = ShmArena::attach(unique_name("missing"), 0, &error);
  EXPECT_EQ(attacher, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ShmIpcArena, AttachTimesOutOnUnsealedSegment) {
  ScopedSegment seg(unique_name("unsealed"));
  std::string error;

  auto creator = ShmArena::create(seg.name, 1 << 16, 5, &error);
  ASSERT_NE(creator, nullptr) << error;
  // No seal(): an attacher must not observe the half-built segment.
  auto attacher = ShmArena::attach(seg.name, 5, &error,
                                   std::chrono::milliseconds(50));
  EXPECT_EQ(attacher, nullptr);
  EXPECT_NE(error.find("never sealed"), std::string::npos) << error;
}

/// An attacher racing the creator can shm_open the segment before the
/// creator's ftruncate lands and observe st_size == 0. attach() must wait
/// the race out within its timeout budget, not hard-fail. The "creator" is
/// played by raw syscalls so the zero-size window can be held open
/// deterministically (ShmArena::create sizes the segment immediately).
TEST(ShmIpcArena, AttachWaitsOutCreatorSizingRace) {
  ScopedSegment seg(unique_name("sizerace"));
  constexpr std::uint64_t kBytes = 1 << 16;

  const int fd =
      ::shm_open(seg.name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);

  std::string error;
  std::unique_ptr<ShmArena> attached;
  std::thread attacher([&] {
    attached = ShmArena::attach(seg.name, /*config_hash=*/7, &error,
                                std::chrono::seconds(10));
  });

  // Hold the segment zero-sized long enough for the attacher to observe it,
  // then size and seal a valid superblock the way create()+seal() would.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::ftruncate(fd, static_cast<off_t>(kBytes)), 0);
  void* base = ::mmap(nullptr, kBytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ASSERT_NE(base, MAP_FAILED);
  auto* sb = reinterpret_cast<Superblock*>(base);
  sb->magic.store(ShmArena::kMagic, std::memory_order_relaxed);
  sb->abi_version.store(ShmArena::kAbiVersion, std::memory_order_relaxed);
  sb->total_bytes.store(kBytes, std::memory_order_relaxed);
  sb->config_hash.store(7, std::memory_order_relaxed);
  sb->ready.store(1, std::memory_order_release);

  attacher.join();
  EXPECT_NE(attached, nullptr) << error;
  ::munmap(base, kBytes);
  ::close(fd);
}

TEST(ShmIpcArena, AttachTimesOutOnNeverSizedSegment) {
  ScopedSegment seg(unique_name("unsized"));
  const int fd =
      ::shm_open(seg.name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);  // zero-sized forever: the creator "died" pre-ftruncate

  std::string error;
  auto attached = ShmArena::attach(seg.name, 0, &error,
                                   std::chrono::milliseconds(50));
  EXPECT_EQ(attached, nullptr);
  EXPECT_NE(error.find("unsized"), std::string::npos) << error;
  ::close(fd);
}

TEST(ShmIpcArena, CreateRefusesExistingName) {
  ScopedSegment seg(unique_name("dup"));
  std::string error;

  auto first = ShmArena::create(seg.name, 1 << 16, 0, &error);
  ASSERT_NE(first, nullptr) << error;
  auto second = ShmArena::create(seg.name, 1 << 16, 0, &error);
  EXPECT_EQ(second, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ShmIpcArena, AllocRespectsAlignment) {
  ScopedSegment seg(unique_name("align"));
  std::string error;
  auto arena = ShmArena::create(seg.name, 1 << 16, 0, &error);
  ASSERT_NE(arena, nullptr) << error;

  arena->alloc_offset(1, 1);  // misalign the cursor on purpose
  const std::uint64_t off = arena->alloc_offset(64, 64);
  EXPECT_EQ(off % 64, 0u);
  struct alignas(32) Wide {
    std::uint64_t a[4];
  };
  auto* w = arena->alloc_array<Wide>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(Wide), 0u);
}

TEST(ShmIpcOffsetPtr, RoundTripsThroughDifferentBases) {
  ScopedSegment seg(unique_name("offptr"));
  std::string error;

  auto creator = ShmArena::create(seg.name, 1 << 16, 3, &error);
  ASSERT_NE(creator, nullptr) << error;
  auto* value = creator->alloc_array<std::uint64_t>(1);
  auto* slot = creator->alloc_array<offset_ptr<std::uint64_t>>(1);
  *value = 0xBEEF;
  *slot = offset_ptr<std::uint64_t>::from(creator->base(), value);
  creator->seal();

  auto attacher = ShmArena::attach(seg.name, 3, &error);
  ASSERT_NE(attacher, nullptr) << error;
  attacher->alloc_array<std::uint64_t>(1);
  auto* slot_replica = attacher->alloc_array<offset_ptr<std::uint64_t>>(1);
  ASSERT_TRUE(attacher->verify_replay(&error)) << error;

  // The stored offset resolves correctly against *either* mapping base.
  EXPECT_EQ(slot_replica->at(attacher->base()), 0xBEEFu);
  EXPECT_EQ(slot->at(creator->base()), 0xBEEFu);
  EXPECT_EQ(slot_replica->off, slot->off);

  offset_ptr<std::uint64_t> null_ptr;
  EXPECT_TRUE(null_ptr.null());
  EXPECT_EQ(null_ptr.get(attacher->base()), nullptr);
}

TEST(ShmIpcOffsetPtr, SpanIndexesElements) {
  ScopedSegment seg(unique_name("offspan"));
  std::string error;
  auto arena = ShmArena::create(seg.name, 1 << 16, 0, &error);
  ASSERT_NE(arena, nullptr) << error;

  auto* elems = arena->alloc_array<std::uint64_t>(4);
  for (std::uint64_t i = 0; i < 4; ++i) elems[i] = i * 10;
  offset_span<std::uint64_t> span;
  span.off = arena->to_offset(elems);
  span.count = 4;
  EXPECT_EQ(span.size(), 4u);
  EXPECT_EQ(span.at(arena->base(), 0), 0u);
  EXPECT_EQ(span.at(arena->base(), 3), 30u);
}

}  // namespace
}  // namespace aml::ipc
