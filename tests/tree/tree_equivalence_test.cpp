// Lemma 1 (observable consequences): in quiescent states AdaptiveFindNext
// and FindNext return identical results for every caller slot, across a
// large randomized (N, W, removal-set) grid; and the adaptive ascent's RMR
// cost is bounded by the number of removers (Claim 21) while the plain
// ascent pays the full height (the Figure 4 contrast).
#include "aml/core/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;
using TreeCc = Tree<CountingCcModel>;

struct Grid {
  std::uint32_t n;
  std::uint32_t w;
};

class TreeEquivalence : public ::testing::TestWithParam<Grid> {};

TEST_P(TreeEquivalence, AdaptiveMatchesPlainOnQuiescentStates) {
  const auto [n, w] = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    CountingCcModel m(2);
    TreeCc tree(m, n, w);
    pal::Xoshiro256 rng(seed * 31 + n);
    for (std::uint32_t q = 0; q < n; ++q) {
      if (rng.chance_ppm(static_cast<std::uint64_t>(rng.below(900000)))) {
        tree.remove(0, q);
      }
    }
    for (std::uint32_t p = 0; p < n; ++p) {
      const FindResult plain = tree.find_next(0, p);
      const FindResult adaptive = tree.adaptive_find_next(1, p);
      ASSERT_EQ(static_cast<int>(plain.kind),
                static_cast<int>(adaptive.kind))
          << "n=" << n << " w=" << w << " p=" << p << " seed=" << seed;
      if (plain.is_found()) {
        ASSERT_EQ(plain.slot, adaptive.slot) << "p=" << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, TreeEquivalence,
    ::testing::Values(Grid{2, 2}, Grid{4, 2}, Grid{8, 2}, Grid{16, 2},
                      Grid{32, 2}, Grid{9, 3}, Grid{27, 3}, Grid{30, 3},
                      Grid{16, 4}, Grid{64, 4}, Grid{70, 4}, Grid{64, 8},
                      Grid{512, 8}, Grid{100, 10}, Grid{256, 16},
                      Grid{300, 17}, Grid{128, 64}, Grid{4096, 64}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "_W" +
             std::to_string(info.param.w);
    });

// Figure 4's payoff: with NO aborts, AdaptiveFindNext from the rightmost
// leaf of a deep subtree costs O(1) reads while FindNext pays the full
// ascent+descent through the lowest common ancestor.
TEST(TreeAdaptivity, SidestepBeatsFullAscentWithNoAborts) {
  // W=2, N=64 (height 6). p = 31 is the rightmost leaf of a height-5
  // subtree; leaf 32 is alive immediately to its right.
  CountingCcModel m(2);
  TreeCc tree(m, 64, 2);

  const std::uint64_t plain0 = m.counters(0).rmrs;
  const FindResult plain = tree.find_next(0, 31);
  const std::uint64_t plain_cost = m.counters(0).rmrs - plain0;

  const std::uint64_t ad0 = m.counters(1).rmrs;
  const FindResult adaptive = tree.adaptive_find_next(1, 31);
  const std::uint64_t adaptive_cost = m.counters(1).rmrs - ad0;

  ASSERT_TRUE(plain.is_found());
  ASSERT_TRUE(adaptive.is_found());
  EXPECT_EQ(plain.slot, 32u);
  EXPECT_EQ(adaptive.slot, 32u);
  EXPECT_EQ(adaptive_cost, 1u);         // one sidestep read
  EXPECT_GE(plain_cost, 11u);           // 6 up + 5 down
}

// Claim 21 quantitative shape: the adaptive ascent from slot p performs at
// most 2 + log_W(R_p) iterations where R_p counts removers >= p.
TEST(TreeAdaptivity, AscentBoundedByRemoverCount) {
  const std::uint32_t w = 4;
  const std::uint32_t n = 1024;  // height 5
  for (std::uint32_t removers : {3u, 15u, 63u, 255u}) {
    CountingCcModel m(2);
    TreeCc tree(m, n, w);
    // Remove slots 1..removers (slot 0 is the caller).
    for (std::uint32_t q = 1; q <= removers; ++q) tree.remove(0, q);
    m.reset_counters();
    const FindResult r = tree.adaptive_find_next(1, 0);
    ASSERT_TRUE(r.is_found());
    EXPECT_EQ(r.slot, removers + 1);
    const double bound =
        2.0 * (2.0 + std::log(static_cast<double>(removers)) /
                         std::log(static_cast<double>(w))) +
        2.0;
    EXPECT_LE(static_cast<double>(m.counters(1).rmrs), bound)
        << "removers=" << removers;
  }
}

// The adaptive walk must include the sidestepped cousin's subtree when
// resuming the ascent (the offsetAtParent - 1 subtlety of Algorithm 4.3):
// constructed so that missing it would return a wrong slot.
TEST(TreeAdaptivity, SidestepResumeCoversCousinSubtree) {
  // W=2, N=8, height 3. Caller p=1 (offset 1 -> sidesteps to node(1,1),
  // covering leaves {2,3}). Remove 2 and 3 (cousin EMPTY), keep 4 alive.
  CountingCcModel m(1);
  TreeCc tree(m, 8, 2);
  tree.remove(0, 2);
  tree.remove(0, 3);
  const FindResult r = tree.adaptive_find_next(0, 1);
  ASSERT_TRUE(r.is_found());
  EXPECT_EQ(r.slot, 4u);
  // Plain agrees.
  const FindResult plain = tree.find_next(0, 1);
  ASSERT_TRUE(plain.is_found());
  EXPECT_EQ(plain.slot, 4u);
}

// Rightmost-subtree callers: both variants must return BOTTOM, including
// when the sidestep would walk off the conceptual tree edge.
TEST(TreeAdaptivity, RightEdgeReturnsBottom) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> shapes{
      {8, 2}, {27, 3}, {64, 8}, {100, 7}};
  for (auto [n, w] : shapes) {
    CountingCcModel m(1);
    Tree<CountingCcModel> tree(m, n, w);
    EXPECT_TRUE(tree.find_next(0, n - 1).is_bottom());
    EXPECT_TRUE(tree.adaptive_find_next(0, n - 1).is_bottom());
  }
}

}  // namespace
}  // namespace aml::core
