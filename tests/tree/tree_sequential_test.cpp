// Tree semantics in quiescent states (all Remove() calls completed): both
// FindNext variants must return exactly the first non-removed slot to the
// right, BOTTOM when none exists, and never TOP.
#include "aml/core/tree.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;

using TreeCc = Tree<CountingCcModel>;

std::optional<std::uint32_t> ref_next(const std::vector<bool>& removed,
                                      std::uint32_t p) {
  for (std::uint32_t q = p + 1; q < removed.size(); ++q) {
    if (!removed[q]) return q;
  }
  return std::nullopt;
}

void check_all(TreeCc& tree, const std::vector<bool>& removed) {
  const auto n = static_cast<std::uint32_t>(removed.size());
  for (std::uint32_t p = 0; p < n; ++p) {
    const auto expected = ref_next(removed, p);
    for (bool adaptive : {false, true}) {
      const FindResult r = adaptive ? tree.adaptive_find_next(0, p)
                                    : tree.find_next(0, p);
      ASSERT_FALSE(r.is_top()) << "TOP in quiescent state";
      if (expected.has_value()) {
        ASSERT_TRUE(r.is_found())
            << "p=" << p << " adaptive=" << adaptive;
        ASSERT_EQ(r.slot, *expected)
            << "p=" << p << " adaptive=" << adaptive;
      } else {
        ASSERT_TRUE(r.is_bottom()) << "p=" << p;
      }
    }
  }
}

struct Shape {
  std::uint32_t n;
  std::uint32_t w;
};

class TreeQuiescent : public ::testing::TestWithParam<Shape> {};

TEST_P(TreeQuiescent, FreshTreeFindsImmediateSuccessor) {
  const auto [n, w] = GetParam();
  CountingCcModel m(1);
  TreeCc tree(m, n, w);
  check_all(tree, std::vector<bool>(n, false));
}

TEST_P(TreeQuiescent, SingleRemovalSkipsSlot) {
  const auto [n, w] = GetParam();
  if (n < 3) return;
  CountingCcModel m(1);
  TreeCc tree(m, n, w);
  std::vector<bool> removed(n, false);
  const std::uint32_t victim = n / 2;
  tree.remove(0, victim);
  removed[victim] = true;
  check_all(tree, removed);
}

TEST_P(TreeQuiescent, PrefixAndSuffixRemovals) {
  const auto [n, w] = GetParam();
  if (n < 4) return;
  CountingCcModel m(1);
  TreeCc tree(m, n, w);
  std::vector<bool> removed(n, false);
  // Remove a whole suffix: every FindNext from inside it must be BOTTOM.
  for (std::uint32_t q = n - n / 3; q < n; ++q) {
    tree.remove(0, q);
    removed[q] = true;
  }
  // And a run in the middle.
  for (std::uint32_t q = 1; q < 1 + n / 4; ++q) {
    tree.remove(0, q);
    removed[q] = true;
  }
  check_all(tree, removed);
}

TEST_P(TreeQuiescent, RandomRemovalSets) {
  const auto [n, w] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CountingCcModel m(1);
    TreeCc tree(m, n, w);
    std::vector<bool> removed(n, false);
    pal::Xoshiro256 rng(seed * 1000 + n * 7 + w);
    for (std::uint32_t q = 0; q < n; ++q) {
      if (rng.chance_ppm(400000)) {  // ~40% removed
        tree.remove(0, q);
        removed[q] = true;
      }
    }
    check_all(tree, removed);
  }
}

TEST_P(TreeQuiescent, RemoveAllYieldsBottomEverywhere) {
  const auto [n, w] = GetParam();
  CountingCcModel m(1);
  TreeCc tree(m, n, w);
  for (std::uint32_t q = 0; q < n; ++q) tree.remove(0, q);
  check_all(tree, std::vector<bool>(n, true));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeQuiescent,
    ::testing::Values(Shape{1, 2}, Shape{2, 2}, Shape{3, 2}, Shape{4, 2},
                      Shape{7, 2}, Shape{8, 2}, Shape{9, 2}, Shape{16, 2},
                      Shape{5, 3}, Shape{27, 3}, Shape{28, 3}, Shape{4, 4},
                      Shape{17, 4}, Shape{64, 4}, Shape{65, 4}, Shape{8, 8},
                      Shape{64, 8}, Shape{100, 8}, Shape{33, 16},
                      Shape{257, 16}, Shape{63, 64}, Shape{64, 64},
                      Shape{65, 64}, Shape{300, 64}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "_W" +
             std::to_string(info.param.w);
    });

TEST(TreeRemove, AscentDepthMatchesSubtreeCompletion) {
  // W=2, N=8 (height 3). Removing 1 stops at level 1 (leaf 0 alive);
  // removing leaves 0 then 1 completes the level-1 node, ascending.
  CountingCcModel m(1);
  TreeCc tree(m, 8, 2);
  EXPECT_EQ(tree.remove(0, 1), 1u);  // node(1,0) not yet empty
  EXPECT_EQ(tree.remove(0, 0), 2u);  // completes node(1,0), sets level-2 bit
  EXPECT_EQ(tree.remove(0, 3), 1u);
  EXPECT_EQ(tree.remove(0, 2), 3u);  // completes nodes at levels 1 and 2
}

TEST(TreeRemove, ChargesOLogWRRmrs) {
  // Claim 20 shape check: removing k consecutive slots costs O(k log) total
  // but each individual remove is at most height RMRs.
  CountingCcModel m(1);
  TreeCc tree(m, 64, 2);  // height 6
  for (std::uint32_t q = 0; q < 64; ++q) {
    const std::uint64_t before = m.counters(0).rmrs;
    tree.remove(0, q);
    EXPECT_LE(m.counters(0).rmrs - before, 6u);
  }
}

TEST(TreeIntrospection, NodeValuesReflectRemovals) {
  CountingCcModel m(1);
  TreeCc tree(m, 4, 2);
  EXPECT_EQ(tree.read_node(0, 1, 0), 0u);
  tree.remove(0, 0);
  EXPECT_EQ(tree.read_node(0, 1, 0), pal::offset_mask(2, 0));
  tree.remove(0, 1);
  EXPECT_EQ(tree.read_node(0, 1, 0), tree.empty_value());
  EXPECT_EQ(tree.read_node(0, 2, 0), pal::offset_mask(2, 0));
}

}  // namespace
}  // namespace aml::core
