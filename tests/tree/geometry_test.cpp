// TreeGeometry: exhaustive structural checks across (N, W) grids.
#include "aml/core/tree_geometry.hpp"

#include <gtest/gtest.h>

#include "aml/pal/bits.hpp"

namespace aml::core {
namespace {

TEST(Geometry, HeightMatchesCeilLog) {
  EXPECT_EQ(TreeGeometry(1, 2).height(), 1u);  // clamped to 1
  EXPECT_EQ(TreeGeometry(2, 2).height(), 1u);
  EXPECT_EQ(TreeGeometry(3, 2).height(), 2u);
  EXPECT_EQ(TreeGeometry(8, 2).height(), 3u);
  EXPECT_EQ(TreeGeometry(9, 2).height(), 4u);
  EXPECT_EQ(TreeGeometry(64, 8).height(), 2u);
  EXPECT_EQ(TreeGeometry(65, 8).height(), 3u);
  EXPECT_EQ(TreeGeometry(4096, 64).height(), 2u);
}

TEST(Geometry, RootIsSingleStoredNode) {
  for (std::uint32_t w : {2u, 3u, 8u, 64u}) {
    for (std::uint32_t n : {1u, 2u, 7u, 63u, 64u, 65u, 1000u}) {
      TreeGeometry geo(n, w);
      EXPECT_GE(geo.stored_width(geo.height()), 1u) << n << " " << w;
      // Every real leaf's root-level node is node 0.
      EXPECT_EQ(geo.node_index(n - 1, geo.height()), 0u);
    }
  }
}

TEST(Geometry, ParentChildConsistency) {
  for (std::uint32_t w : {2u, 3u, 4u, 8u}) {
    for (std::uint32_t n : {5u, 16u, 17u, 33u, 100u}) {
      TreeGeometry geo(n, w);
      for (std::uint32_t p = 0; p < n; ++p) {
        for (std::uint32_t lvl = 1; lvl <= geo.height(); ++lvl) {
          const std::uint64_t node = geo.node_index(p, lvl);
          const std::uint32_t offset = geo.offset(p, lvl);
          ASSERT_LT(offset, w);
          // Child(node, offset) must be p's node at lvl-1 (or leaf p).
          const std::uint64_t child = node * w + offset;
          if (lvl == 1) {
            ASSERT_EQ(child, p);
          } else {
            ASSERT_EQ(child, geo.node_index(p, lvl - 1));
          }
          // offset_at_parent inverts the child computation.
          ASSERT_EQ(TreeGeometry::offset_at_parent(child, w), offset);
        }
      }
    }
  }
}

TEST(Geometry, StoredWidthCoversAllRealNodesPlusExtension) {
  for (std::uint32_t w : {2u, 4u, 8u}) {
    for (std::uint32_t n : {3u, 9u, 64u, 65u, 129u}) {
      TreeGeometry geo(n, w);
      for (std::uint32_t lvl = 1; lvl <= geo.height(); ++lvl) {
        // Every ancestor of a real leaf is stored.
        EXPECT_LE(geo.node_index(n - 1, lvl) + 1, geo.stored_width(lvl));
        // Stored width never exceeds the conceptual width.
        EXPECT_LE(geo.stored_width(lvl), geo.conceptual_width(lvl));
      }
    }
  }
}

TEST(Geometry, InitialValuePhantomBits) {
  // N=5, W=4: height 2. Level 1 has nodes {0,1} (+extension), node 1 covers
  // leaves 4..7 of which 5,6,7 are phantom.
  TreeGeometry geo(5, 4);
  EXPECT_EQ(geo.height(), 2u);
  EXPECT_EQ(geo.initial_value(1, 0), 0u);  // leaves 0-3 all real
  // node (1,1): bits for offsets 1,2,3 (leaves 5,6,7) pre-set.
  EXPECT_EQ(geo.initial_value(1, 1),
            pal::offset_mask(4, 1) | pal::offset_mask(4, 2) |
                pal::offset_mask(4, 3));
  // Root: children are level-1 subtrees at leaf-starts 0,4,8,12; 8 and 12
  // are phantom.
  EXPECT_EQ(geo.initial_value(2, 0),
            pal::offset_mask(4, 2) | pal::offset_mask(4, 3));
}

TEST(Geometry, FullTreeHasNoPhantomBits) {
  for (std::uint32_t w : {2u, 4u, 8u}) {
    for (std::uint32_t h = 1; h <= 3; ++h) {
      const std::uint32_t n =
          static_cast<std::uint32_t>(pal::pow_sat(w, h));
      TreeGeometry geo(n, w);
      ASSERT_EQ(geo.height(), h);
      for (std::uint32_t lvl = 1; lvl <= h; ++lvl) {
        for (std::uint64_t idx = 0; idx < geo.stored_width(lvl); ++idx) {
          EXPECT_EQ(geo.initial_value(lvl, idx), 0u)
              << "w=" << w << " n=" << n << " lvl=" << lvl;
        }
      }
    }
  }
}

TEST(Geometry, TotalWordsIsOofNOverW) {
  // total words <= N/(W-1) + H + extensions: well within 3N/W for W >= 2.
  for (std::uint32_t w : {2u, 8u, 64u}) {
    for (std::uint32_t n : {64u, 1000u, 4096u}) {
      TreeGeometry geo(n, w);
      const double bound =
          3.0 * n / w + 2.0 * geo.height() + 2;
      EXPECT_LE(static_cast<double>(geo.total_words()), bound)
          << "n=" << n << " w=" << w;
    }
  }
}

TEST(Geometry, StrideAndWidthRelations) {
  TreeGeometry geo(100, 4);
  EXPECT_EQ(geo.stride(0), 1u);
  EXPECT_EQ(geo.stride(1), 4u);
  EXPECT_EQ(geo.stride(2), 16u);
  EXPECT_EQ(geo.conceptual_width(geo.height()), 1u);
}

}  // namespace
}  // namespace aml::core
