// Wide-word trees (the deployment regime): W = 32/64, large N, randomized
// operation mixes checked against a reference set, and the W-boundary
// offsets (0, W-1) that the bit arithmetic must get exactly right.
#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <utility>
#include <vector>

#include "aml/core/tree.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;

TEST(TreeWide, SingleLevelW64) {
  // N <= W: the tree is one node; FindNext is a single read.
  CountingCcModel m(2);
  Tree<CountingCcModel> tree(m, 64, 64);
  ASSERT_EQ(tree.geometry().height(), 1u);
  tree.remove(0, 1);
  tree.remove(0, 63);
  m.reset_counters();
  const FindResult r = tree.find_next(1, 0);
  ASSERT_TRUE(r.is_found());
  EXPECT_EQ(r.slot, 2u);
  EXPECT_EQ(m.counters(1).rmrs, 1u);  // exactly one node read
  EXPECT_TRUE(tree.find_next(1, 62).is_bottom());  // 63 removed
  EXPECT_TRUE(tree.find_next(1, 63).is_bottom());
}

TEST(TreeWide, BoundaryOffsetsW64) {
  // Leaves at offsets 0 and 63 of their level-1 node, across node borders.
  CountingCcModel m(1);
  Tree<CountingCcModel> tree(m, 4096, 64);  // height 2
  // Remove all of node 0's leaves except the last: FindNext(0)=63.
  for (std::uint32_t q = 1; q < 63; ++q) tree.remove(0, q);
  EXPECT_EQ(tree.find_next(0, 0).slot, 63u);
  // Remove 63 too: next is 64, across the node boundary.
  tree.remove(0, 63);
  EXPECT_EQ(tree.find_next(0, 0).slot, 64u);
  EXPECT_EQ(tree.adaptive_find_next(0, 0).slot, 64u);
  // From the boundary leaf itself.
  EXPECT_EQ(tree.find_next(0, 63).slot, 64u);
  EXPECT_EQ(tree.adaptive_find_next(0, 63).slot, 64u);
}

TEST(TreeWide, RandomizedMixAgainstReferenceSet) {
  for (auto [n, w] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1000, 32}, {2048, 64}, {4095, 64}, {513, 31}}) {
    CountingCcModel m(1);
    Tree<CountingCcModel> tree(m, n, w);
    std::set<std::uint32_t> alive;
    for (std::uint32_t q = 0; q < n; ++q) alive.insert(q);
    pal::Xoshiro256 rng(n * 31 + w);
    for (int op = 0; op < 600; ++op) {
      if (rng.chance_ppm(500000) && alive.size() > 1) {
        // Remove a random still-alive slot.
        auto it = alive.begin();
        std::advance(it, static_cast<long>(rng.below(alive.size())));
        tree.remove(0, *it);
        alive.erase(it);
      } else {
        // Query a random slot (alive or not) against the reference.
        const auto p = static_cast<std::uint32_t>(rng.below(n));
        const bool adaptive = rng.chance_ppm(500000);
        const FindResult r = adaptive ? tree.adaptive_find_next(0, p)
                                      : tree.find_next(0, p);
        auto it = alive.upper_bound(p);
        if (it == alive.end()) {
          ASSERT_TRUE(r.is_bottom()) << "n=" << n << " p=" << p;
        } else {
          ASSERT_TRUE(r.is_found());
          ASSERT_EQ(r.slot, *it) << "n=" << n << " p=" << p;
        }
      }
    }
  }
}

TEST(TreeWide, AdaptiveCostStaysConstantAtW64) {
  // At W=64 with few aborts, AdaptiveFindNext should cost O(1) reads even
  // at N = 64^3 = 262144 conceptual leaves (we use a ragged 100000).
  CountingCcModel m(1);
  Tree<CountingCcModel> tree(m, 100000, 64);
  ASSERT_EQ(tree.geometry().height(), 3u);
  for (std::uint32_t p : {0u, 63u, 64u, 4095u, 4096u, 99998u}) {
    m.reset_counters();
    const FindResult r = tree.adaptive_find_next(0, p);
    ASSERT_TRUE(r.is_found());
    EXPECT_EQ(r.slot, p + 1);
    EXPECT_LE(m.counters(0).rmrs, 3u) << "p=" << p;
  }
}

TEST(TreeWide, RemoveReturnsAscentDepthW64) {
  CountingCcModel m(1);
  Tree<CountingCcModel> tree(m, 4096, 64);
  // Remove the first 63 slots: each stops at level 1.
  for (std::uint32_t q = 0; q < 63; ++q) {
    EXPECT_EQ(tree.remove(0, q), 1u);
  }
  // The 64th completes node 0 and ascends one level.
  EXPECT_EQ(tree.remove(0, 63), 2u);
}

}  // namespace
}  // namespace aml::core
