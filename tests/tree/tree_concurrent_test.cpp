// Concurrency semantics of the Tree under scripted schedules: the TOP
// ("crossed paths") outcome of Figure 2, and Properties 6-11 of Section 5.1
// checked over randomized concurrent executions.
#include "aml/core/tree.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <optional>
#include <vector>

#include "aml/model/counting_cc.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;
using model::Pid;
using TreeCc = Tree<CountingCcModel>;

// The paper's Figure 2 "crossed paths" scenario, constructed exactly:
// W=2, N=4 (height 2).
//   p1 removes slot 1           (node(1,0) gets bit 1; not empty -> stop)
//   p0 starts FindNext(0): reads node(1,0) (no zero right), reads root
//     (child-1 bit still 0 -> descend toward node(1,1))
//   p2 removes slot 2, p3 removes slot 3's first level step, making
//     node(1,1) EMPTY while p3 has not yet set the root bit
//   p0 resumes, reads node(1,1) == EMPTY -> returns TOP
TEST(TreeConcurrent, CrossedPathsReturnsTop) {
  CountingCcModel m(4);
  TreeCc tree(m, 4, 2);

  sched::StepScheduler::Config cfg;
  // p1: 1 step (its whole Remove). p0: 2 steps (node + root reads).
  // p2: 1 step. p3: 1 step (the F&A that fills node(1,1)); then p0 finishes.
  cfg.policy = sched::policies::script(
      {{1, 1}, {0, 2}, {2, 1}, {3, 1}, {0, 1}},
      sched::policies::round_robin());
  sched::StepScheduler sched(4, std::move(cfg));
  m.set_hook(&sched);

  FindResult result{};
  sched.run([&](Pid p) {
    switch (p) {
      case 0:
        result = tree.find_next(0, 0);
        break;
      case 1:
        tree.remove(1, 1);
        break;
      case 2:
        tree.remove(2, 2);
        break;
      case 3:
        tree.remove(3, 3);
        break;
    }
  });
  m.set_hook(nullptr);
  EXPECT_TRUE(result.is_top());
}

// Same shape but the Remove completes before FindNext starts: must skip to
// BOTTOM (no TOP), per Property 10.
TEST(TreeConcurrent, CompletedRemovesGiveBottomNotTop) {
  CountingCcModel m(4);
  TreeCc tree(m, 4, 2);
  sched::StepScheduler::Config cfg;
  cfg.policy = sched::policies::prefer({1, 2, 3, 0});
  sched::StepScheduler sched(4, std::move(cfg));
  m.set_hook(&sched);
  FindResult result{};
  sched.run([&](Pid p) {
    if (p == 0) {
      result = tree.find_next(0, 0);
    } else {
      tree.remove(p, p);
    }
  });
  m.set_hook(nullptr);
  // prefer() runs removers to completion first, so FindNext(0) sees slots
  // 1..3 fully removed.
  EXPECT_TRUE(result.is_bottom());
}

// Properties 6-9 on randomized concurrent executions: whenever FindNext(p)
// returns a slot q, we must have q > p (Property 6), Remove(q) must not have
// completed before the FindNext completed (Property 7 corollary: q was not
// removed pre-run), and every slot in (p, q) was at least *started* to be
// removed (Property 9: its Remove overlapped or preceded).
struct RandomShape {
  std::uint32_t n;
  std::uint32_t w;
  std::uint64_t seed;
};

class TreeConcurrentRandom : public ::testing::TestWithParam<RandomShape> {};

TEST_P(TreeConcurrentRandom, FindNextPropertiesHold) {
  const auto [n, w, seed] = GetParam();
  CountingCcModel m(n);
  TreeCc tree(m, n, w);
  pal::Xoshiro256 rng(seed);
  // Roles: process 0 runs FindNext(p0) for a random p0; a random subset of
  // others remove themselves concurrently.
  const std::uint32_t p0 = static_cast<std::uint32_t>(rng.below(n));
  std::vector<bool> removes(n, false);
  for (std::uint32_t q = 0; q < n; ++q) {
    removes[q] = rng.chance_ppm(500000);
  }
  removes[p0] = false;

  sched::StepScheduler sched(n, {.seed = seed});
  m.set_hook(&sched);
  FindResult result{};
  std::deque<std::atomic<bool>> started(n);
  sched.run([&](Pid p) {
    if (p == 0) {
      result = tree.find_next(0, p0);
    } else if (removes[p]) {
      started[p].store(true);
      tree.remove(p, p);
    }
  });
  m.set_hook(nullptr);

  if (result.is_found()) {
    EXPECT_GT(result.slot, p0);  // Property 6
    // Note: the returned slot MAY be a planned remover — Property 7 only
    // forbids that when Remove(q) started before FindNext completed, and
    // here the remover may start afterwards. What is never allowed is
    // skipping a slot that never removes itself:
    for (std::uint32_t d = p0 + 1; d < result.slot; ++d) {
      EXPECT_TRUE(removes[d]) << "skipped live slot " << d;  // Property 9
    }
  } else if (result.is_bottom()) {
    for (std::uint32_t d = p0 + 1; d < n; ++d) {
      EXPECT_TRUE(removes[d]) << "BOTTOM despite live slot " << d;  // Prop 10
    }
  }
  // TOP is legitimate whenever removers overlap; nothing further to check.
}

INSTANTIATE_TEST_SUITE_P(
    Random, TreeConcurrentRandom,
    ::testing::Values(RandomShape{4, 2, 1}, RandomShape{4, 2, 2},
                      RandomShape{8, 2, 3}, RandomShape{8, 2, 4},
                      RandomShape{16, 2, 5}, RandomShape{16, 4, 6},
                      RandomShape{27, 3, 7}, RandomShape{27, 3, 8},
                      RandomShape{64, 4, 9}, RandomShape{64, 8, 10},
                      RandomShape{100, 8, 11}, RandomShape{100, 8, 12},
                      RandomShape{64, 64, 13}, RandomShape{200, 16, 14}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "_W" +
             std::to_string(info.param.w) + "_S" +
             std::to_string(info.param.seed);
    });

// Property 11: non-overlapping FindNext(p) calls return monotonically
// non-decreasing slots while removes happen in between.
TEST(TreeConcurrent, SequentialFindNextMonotone) {
  CountingCcModel m(1);
  TreeCc tree(m, 32, 2);
  pal::Xoshiro256 rng(99);
  std::uint32_t last = 0;
  bool have_last = false;
  std::vector<bool> removed(32, false);
  for (int i = 0; i < 40; ++i) {
    const std::uint32_t victim = 1 + static_cast<std::uint32_t>(rng.below(31));
    if (removed[victim]) continue;
    removed[victim] = true;
    tree.remove(0, victim);
    const FindResult r = tree.find_next(0, 0);
    if (r.is_found()) {
      if (have_last) {
        EXPECT_GE(r.slot, last);
      }
      last = r.slot;
      have_last = true;
    }
    if (r.is_bottom()) break;
  }
}

}  // namespace
}  // namespace aml::core
