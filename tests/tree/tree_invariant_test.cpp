// The Remove invariant (Claim 3 / Lemma 4 / Corollary 5): in quiescent
// states, Bit(p, lvl) = 1 iff every leaf in the corresponding subtree has
// been removed — checked as a global structural probe after randomized
// concurrent executions, across a (N, W, density, seed) grid.
#include <gtest/gtest.h>

#include <vector>

#include "aml/core/tree.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/pal/rng.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;
using model::Pid;

struct Grid {
  std::uint32_t n;
  std::uint32_t w;
  std::uint32_t remove_ppm;
  std::uint64_t seed;
};

class TreeInvariant : public ::testing::TestWithParam<Grid> {};

// Verify: for every stored node and offset, the bit is set iff every REAL
// leaf of the child subtree was removed (phantom leaves count as removed —
// their bits are pre-set at construction).
void check_remove_invariant(CountingCcModel& m, Tree<CountingCcModel>& tree,
                            const std::vector<bool>& removed) {
  const TreeGeometry& geo = tree.geometry();
  const std::uint32_t n = geo.n_slots();
  const std::uint32_t w = geo.w();
  for (std::uint32_t lvl = 1; lvl <= geo.height(); ++lvl) {
    const std::uint64_t span = geo.stride(lvl - 1);
    for (std::uint64_t idx = 0; idx < geo.stored_width(lvl); ++idx) {
      const std::uint64_t value = tree.read_node(0, lvl, idx);
      for (std::uint32_t o = 0; o < w; ++o) {
        const std::uint64_t first = (idx * w + o) * span;
        bool subtree_removed = true;
        for (std::uint64_t leaf = first;
             leaf < first + span && subtree_removed; ++leaf) {
          if (leaf < n && !removed[static_cast<std::uint32_t>(leaf)]) {
            subtree_removed = false;
          }
        }
        const bool bit = pal::bit_at(value, w, o) != 0;
        ASSERT_EQ(bit, subtree_removed)
            << "lvl=" << lvl << " idx=" << idx << " offset=" << o;
      }
    }
  }
  (void)m;
}

TEST_P(TreeInvariant, HoldsAfterConcurrentRemovals) {
  const auto [n, w, ppm, seed] = GetParam();
  CountingCcModel m(n);
  Tree<CountingCcModel> tree(m, n, w);
  std::vector<bool> removed(n, false);
  pal::Xoshiro256 rng(seed);
  for (std::uint32_t q = 0; q < n; ++q) {
    removed[q] = rng.chance_ppm(ppm);
  }
  sched::StepScheduler sched(n, {.seed = seed});
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    if (removed[p]) tree.remove(p, p);
  });
  m.set_hook(nullptr);
  check_remove_invariant(m, tree, removed);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, TreeInvariant,
    ::testing::Values(Grid{8, 2, 300000, 1}, Grid{8, 2, 800000, 2},
                      Grid{16, 2, 500000, 3}, Grid{16, 4, 500000, 4},
                      Grid{27, 3, 400000, 5}, Grid{27, 3, 1000000, 6},
                      Grid{64, 4, 600000, 7}, Grid{64, 8, 900000, 8},
                      Grid{100, 8, 500000, 9}, Grid{100, 5, 700000, 10},
                      Grid{256, 16, 500000, 11}, Grid{300, 7, 650000, 12},
                      Grid{128, 64, 500000, 13}, Grid{512, 2, 550000, 14}),
    [](const auto& info) {
      const auto& g = info.param;
      return "N" + std::to_string(g.n) + "_W" + std::to_string(g.w) + "_P" +
             std::to_string(g.remove_ppm / 1000) + "_S" +
             std::to_string(g.seed);
    });

TEST(TreeInvariantEdge, FullRemovalSetsEveryStoredBit) {
  CountingCcModel m(1);
  Tree<CountingCcModel> tree(m, 37, 4);  // ragged
  std::vector<bool> removed(37, true);
  for (std::uint32_t q = 0; q < 37; ++q) tree.remove(0, q);
  check_remove_invariant(m, tree, removed);
  EXPECT_EQ(tree.read_node(0, tree.geometry().height(), 0),
            tree.empty_value());
}

TEST(TreeInvariantEdge, FreshTreeHasOnlyPhantomBits) {
  CountingCcModel m(1);
  Tree<CountingCcModel> tree(m, 37, 4);
  check_remove_invariant(m, tree, std::vector<bool>(37, false));
}

}  // namespace
}  // namespace aml::core
