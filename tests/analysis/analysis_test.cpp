// aml::analysis end-to-end: trace round-trips and replay, DPOR-vs-unreduced
// equivalence on a seeded hand-off bug, and one fire-test per invariant
// oracle (each manufactures an illegal state through a debug poke and
// observes the oracle catch it with a replayable trace).
//
// Suite names deliberately avoid the "Explorer" prefix so `ctest -R
// Explorer` keeps timing only the pre-existing exploration tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "aml/analysis/oracles.hpp"
#include "aml/analysis/trace.hpp"
#include "aml/analysis/workloads.hpp"
#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/explorer.hpp"
#include "aml/table/lock_table.hpp"

namespace aml::analysis {
namespace {

using model::CountingCcModel;
using model::Pid;

bool deep_mode() { return std::getenv("AMLOCK_EXPLORE_DEEP") != nullptr; }

std::string temp_dir() {
  const char* t = std::getenv("TMPDIR");
  return (t != nullptr && t[0] != '\0') ? t : "/tmp";
}

// --- trace format ----------------------------------------------------------

TEST(AmlTrace, WriteLoadRoundTrip) {
  TraceFile trace;
  trace.workload = "round-trip";
  trace.nprocs = 3;
  trace.seed = 42;
  trace.reason = "synthetic failure: spaces preserved";
  trace.choices = {0, 1, 2, 1, 0};
  trace.footprints.resize(5);
  trace.footprints[0] = {7, model::Footprint::kNoAddr,
                         model::Footprint::Kind::kMutate,
                         model::Footprint::Kind::kNone};
  trace.footprints[1] = {7, 9, model::Footprint::Kind::kRead,
                         model::Footprint::Kind::kRead};

  const std::string path = temp_dir() + "/aml-roundtrip.trace";
  ASSERT_TRUE(write_trace(path, trace));
  TraceFile loaded;
  std::string error;
  ASSERT_TRUE(load_trace(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.workload, trace.workload);
  EXPECT_EQ(loaded.nprocs, trace.nprocs);
  EXPECT_EQ(loaded.seed, trace.seed);
  EXPECT_EQ(loaded.reason, trace.reason);
  EXPECT_EQ(loaded.choices, trace.choices);
  ASSERT_EQ(loaded.footprints.size(), trace.footprints.size());
  EXPECT_EQ(loaded.footprints[0].addr, 7u);
  EXPECT_EQ(loaded.footprints[0].kind, model::Footprint::Kind::kMutate);
  EXPECT_EQ(loaded.footprints[1].addr2, 9u);
  std::remove(path.c_str());
}

TEST(AmlTrace, LoadRejectsMissingAndMalformed) {
  TraceFile t;
  std::string error;
  EXPECT_FALSE(load_trace(temp_dir() + "/aml-no-such.trace", &t, &error));
  EXPECT_FALSE(error.empty());
}

// --- DPOR equivalence on the seeded hand-off bug ---------------------------

sched::ExploreConfig bug_config(sched::Reduction reduction) {
  sched::ExploreConfig config;
  config.nprocs = 4;
  config.preemption_bound = 2;
  config.max_executions = 500'000;
  config.reduction = reduction;
  config.workload = "oneshot-handoff-bug";
  config.trace_dir = temp_dir();
  return config;
}

TEST(DporEquivalence, BothExplorersFindSeededBugDporNeedsFarFewer) {
  const auto* bug = find_workload("oneshot-handoff-bug");
  ASSERT_NE(bug, nullptr);

  const auto unreduced =
      sched::explore(bug_config(sched::Reduction::kNone), bug->factory);
  ASSERT_TRUE(unreduced.failed) << "unreduced explorer missed the seeded bug";
  EXPECT_NE(unreduced.failure.find("lost wake-up"), std::string::npos)
      << unreduced.failure;

  const auto dpor =
      sched::explore(bug_config(sched::Reduction::kDpor), bug->factory);
  ASSERT_TRUE(dpor.failed) << "DPOR explorer missed the seeded bug";
  EXPECT_NE(dpor.failure.find("lost wake-up"), std::string::npos)
      << dpor.failure;
  EXPECT_GT(dpor.races_seen, 0u);

  // The reduction must enumerate strictly fewer executions, and at most a
  // quarter of what the unreduced search needed (measured: 27 vs 564).
  EXPECT_LT(dpor.executions, unreduced.executions);
  EXPECT_LE(dpor.executions * 4, unreduced.executions)
      << "dpor=" << dpor.executions << " unreduced=" << unreduced.executions;

  // Both emitted replayable traces.
  EXPECT_FALSE(unreduced.trace_path.empty());
  EXPECT_FALSE(dpor.trace_path.empty());
  std::remove(unreduced.trace_path.c_str());
  std::remove(dpor.trace_path.c_str());
}

TEST(DporEquivalence, CleanWorkloadPassesUnderDpor) {
  const auto* clean = find_workload("oneshot-handoff-clean");
  ASSERT_NE(clean, nullptr);
  auto config = bug_config(sched::Reduction::kDpor);
  config.workload = clean->name;
  const auto stats = sched::explore(config, clean->factory);
  EXPECT_FALSE(stats.failed) << stats.failure;
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.executions, 10u);  // a real state space was covered
  EXPECT_GT(stats.races_seen, 0u);

  if (deep_mode()) {
    // Nightly: the unreduced search over the same workload must agree.
    config.reduction = sched::Reduction::kNone;
    const auto full = sched::explore(config, clean->factory);
    EXPECT_FALSE(full.failed) << full.failure;
    EXPECT_FALSE(full.truncated);
    EXPECT_LT(stats.executions, full.executions);
  }
}

TEST(DporEquivalence, FailureTraceReplaysDeterministically) {
  const auto* bug = find_workload("oneshot-handoff-bug");
  ASSERT_NE(bug, nullptr);
  const auto stats =
      sched::explore(bug_config(sched::Reduction::kDpor), bug->factory);
  ASSERT_TRUE(stats.failed);
  ASSERT_FALSE(stats.trace_path.empty());

  TraceFile trace;
  std::string error;
  ASSERT_TRUE(load_trace(stats.trace_path, &trace, &error)) << error;
  EXPECT_EQ(trace.workload, "oneshot-handoff-bug");
  EXPECT_EQ(trace.reason, stats.failure);
  ASSERT_FALSE(trace.choices.empty());
  EXPECT_EQ(trace.footprints.size(), trace.choices.size());

  sched::ExploreConfig replay;
  replay.nprocs = bug->nprocs;
  replay.workload = bug->name;
  replay.replay_choices = trace.choices;
  const auto replayed = sched::explore(replay, bug->factory);
  EXPECT_EQ(replayed.executions, 1u);
  ASSERT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.failure, stats.failure);
  std::remove(stats.trace_path.c_str());
}

// --- oracle fire-tests -----------------------------------------------------
//
// Pattern: a tiny scheduled workload runs legally; at a fixed decision point
// the step callback pokes an illegal value into the watched structure; the
// oracle probe (which runs at every decision point) must catch it, the
// execution must fail, and the explorer must emit a loadable trace.

struct FireOutcome {
  sched::ExploreStats stats;
  bool trace_loads = false;
  std::string reason;
};

FireOutcome run_fire(const std::string& label,
                     const std::function<void(sched::ExecutionContext&)>& f) {
  sched::ExploreConfig config;
  config.nprocs = 2;
  config.max_executions = 1;  // the canonical schedule is enough
  config.workload = label;
  config.trace_dir = temp_dir();
  FireOutcome out;
  out.stats = sched::explore(config, f);
  if (!out.stats.trace_path.empty()) {
    TraceFile trace;
    std::string error;
    out.trace_loads = load_trace(out.stats.trace_path, &trace, &error);
    out.reason = trace.reason;
    std::remove(out.stats.trace_path.c_str());
  }
  return out;
}

TEST(OracleFire, TreeOracleCatchesClearedBit) {
  const auto out = run_fire("oracle-tree", [](sched::ExecutionContext& ctx) {
    CountingCcModel m(2);
    m.set_hook(&ctx.scheduler());
    core::OneShotLock<CountingCcModel> lock(m, 3, 4, core::Find::kPlain);
    TreeOracle<CountingCcModel> oracle(lock.tree());
    ctx.scheduler().add_invariant_probe([&oracle] { return oracle.check(); });
    ctx.scheduler().set_step_callback([&](std::uint64_t step) {
      // The 3-slot W=4 tree root starts with its padding bit set; clearing
      // the word violates T1 (bits are set-only).
      if (step == 3) lock.tree().debug_poke_node(1, 0, 0);
    });
    ctx.run([&](Pid p) {
      if (lock.enter(p, nullptr).acquired) lock.exit(p);
    });
  });
  ASSERT_TRUE(out.stats.failed);
  EXPECT_NE(out.stats.failure.find("TreeOracle"), std::string::npos)
      << out.stats.failure;
  EXPECT_TRUE(out.trace_loads);
  EXPECT_NE(out.reason.find("TreeOracle"), std::string::npos);
}

TEST(OracleFire, OneShotOracleCatchesTailOverflow) {
  const auto out = run_fire("oracle-oneshot", [](sched::ExecutionContext&
                                                     ctx) {
    CountingCcModel m(2);
    m.set_hook(&ctx.scheduler());
    core::OneShotLock<CountingCcModel> lock(m, 3, 4, core::Find::kPlain);
    OneShotOracle<core::OneShotLock<CountingCcModel>> oracle(lock);
    ctx.scheduler().add_invariant_probe([&oracle] { return oracle.check(); });
    // Probes are read-only and the execution runs to completion after a
    // violation, so the poke must land where the algorithm never consumes
    // it: after both processes have done their doorway F&A (tail == 2),
    // nothing reads tail again — but exit still produces decision points
    // where the probe observes the illegal value.
    bool poked = false;
    ctx.scheduler().set_step_callback([&](std::uint64_t) {
      if (!poked && lock.probe_tail() == 2) {
        poked = true;
        lock.debug_poke_tail(99);  // Q1: tail > capacity
      }
    });
    ctx.run([&](Pid p) {
      if (lock.enter(p, nullptr).acquired) lock.exit(p);
    });
  });
  ASSERT_TRUE(out.stats.failed);
  EXPECT_NE(out.stats.failure.find("OneShotOracle"), std::string::npos)
      << out.stats.failure;
  EXPECT_TRUE(out.trace_loads);
}

TEST(OracleFire, OneShotOracleCatchesNonBooleanGo) {
  const auto out = run_fire("oracle-go", [](sched::ExecutionContext& ctx) {
    CountingCcModel m(2);
    m.set_hook(&ctx.scheduler());
    core::OneShotLock<CountingCcModel> lock(m, 3, 4, core::Find::kPlain);
    OneShotOracle<core::OneShotLock<CountingCcModel>> oracle(lock);
    ctx.scheduler().add_invariant_probe([&oracle] { return oracle.check(); });
    ctx.scheduler().set_step_callback([&](std::uint64_t step) {
      if (step == 4) lock.debug_poke_go(2, 7);  // Q4: go must be 0/1
    });
    ctx.run([&](Pid p) {
      if (lock.enter(p, nullptr).acquired) lock.exit(p);
    });
  });
  ASSERT_TRUE(out.stats.failed);
  EXPECT_NE(out.stats.failure.find("OneShotOracle"), std::string::npos)
      << out.stats.failure;
}

TEST(OracleFire, LockDescOracleCatchesRefcountOverflow) {
  const auto out = run_fire("oracle-desc", [](sched::ExecutionContext& ctx) {
    CountingCcModel m(2);
    m.set_hook(&ctx.scheduler());
    core::LongLivedLock<CountingCcModel> lock(m, {.nprocs = 2, .w = 8});
    LockDescOracle<core::LongLivedLock<CountingCcModel>> oracle(lock);
    ctx.scheduler().add_invariant_probe([&oracle] { return oracle.check(); });
    // Poke only after the LAST join (no future enter F&A would trip the
    // algorithm's own refcnt-overflow assert), and keep the current
    // lock/spn fields so the still-inside process' exit path does not see
    // a phantom instance switch. Its cleanup F&A sees refcnt 17 != 1 and
    // leaves quietly; the probes at exit's decision points catch L1/L2.
    std::atomic<int> entered{0};
    bool poked = false;
    ctx.scheduler().set_step_callback([&](std::uint64_t) {
      if (!poked && entered.load(std::memory_order_seq_cst) == 2) {
        poked = true;
        const auto d = lock.probe_desc();
        lock.debug_poke_desc(d.lock, d.spn, 17);  // L1: refcnt > N
      }
    });
    ctx.run([&](Pid p) {
      const bool acquired = lock.enter(p, nullptr).acquired;
      entered.fetch_add(1, std::memory_order_seq_cst);
      if (acquired) lock.exit(p);
    });
  });
  ASSERT_TRUE(out.stats.failed);
  EXPECT_NE(out.stats.failure.find("LockDescOracle"), std::string::npos)
      << out.stats.failure;
  EXPECT_TRUE(out.trace_loads);
}

TEST(OracleFire, TableGenOracleCatchesRetiredCurrent) {
  const auto out = run_fire("oracle-table", [](sched::ExecutionContext& ctx) {
    CountingCcModel m(2);
    m.set_hook(&ctx.scheduler());
    table::LockTable<CountingCcModel> table(
        m, {.max_threads = 2, .stripes = 2, .tree_width = 8});
    TableGenOracle<table::LockTable<CountingCcModel>> oracle(table);
    ctx.scheduler().add_invariant_probe([&oracle] { return oracle.check(); });
    ctx.scheduler().set_step_callback([&](std::uint64_t step) {
      // G2: the current generation can never be retired.
      if (step == 6) table.debug_force_retired(0, true);
    });
    ctx.run([&](Pid p) {
      ASSERT_TRUE(table.enter(p, std::uint64_t{5} + p));
      table.exit(p, std::uint64_t{5} + p);
    });
  });
  ASSERT_TRUE(out.stats.failed);
  EXPECT_NE(out.stats.failure.find("TableGenOracle"), std::string::npos)
      << out.stats.failure;
  EXPECT_TRUE(out.trace_loads);
}

TEST(OracleFire, TableGenOracleCatchesPinnedRetiredGeneration) {
  const auto out = run_fire("oracle-pins", [](sched::ExecutionContext& ctx) {
    CountingCcModel m(2);
    m.set_hook(&ctx.scheduler());
    table::LockTable<CountingCcModel> table(
        m, {.max_threads = 2, .stripes = 2, .tree_width = 8});
    bool resized = false;
    TableGenOracle<table::LockTable<CountingCcModel>> oracle(table);
    ctx.scheduler().add_invariant_probe([&oracle] { return oracle.check(); });
    bool corrupted = false;
    ctx.scheduler().set_step_callback([&](std::uint64_t step) {
      if (step == 6 && !resized) {
        resized = true;
        // A legal resize retires generation 0 once it drains (the first
        // unpin after the switch); pinning the *retired* generation is the
        // illegal state (G2). Wait for the retirement to actually land —
        // corrupting the pin count earlier would merely block retirement
        // and never violate anything.
        ASSERT_TRUE(table.resize(4));
      }
      if (resized && !corrupted) {
        const auto gens = table.debug_generations();
        if (gens.size() == 2 && gens[0].retired) {
          corrupted = true;
          table.debug_corrupt_pins(0, 1);
        }
      }
    });
    ctx.run([&](Pid p) {
      for (int r = 0; r < 4; ++r) {
        ASSERT_TRUE(table.enter(p, std::uint64_t{3} + p));
        table.exit(p, std::uint64_t{3} + p);
      }
    });
  });
  ASSERT_TRUE(out.stats.failed);
  EXPECT_NE(out.stats.failure.find("TableGenOracle"), std::string::npos)
      << out.stats.failure;
}

// --- oracles stay silent on legal executions --------------------------------

TEST(OracleQuiet, HybridResizeBridgeFullExplorationNeverFires) {
  // The table-hybrid-resize-bridge workload overlaps two passages on one
  // key while a resize flips the stripe from the amortized lock to the
  // paper lock (and p1's abort/retry exercises abandon/revive across the
  // switch). DPOR-complete exploration must find no mutex violation, no
  // lost wake-up, and no generation-protocol violation — the dual-acquire
  // bridge is algorithm-agnostic.
  const auto* wl = find_workload("table-hybrid-resize-bridge");
  ASSERT_NE(wl, nullptr);
  sched::ExploreConfig config;
  config.nprocs = wl->nprocs;
  config.preemption_bound = 2;
  config.max_executions = 500'000;
  config.reduction = sched::Reduction::kDpor;
  config.workload = wl->name;
  config.trace_dir = temp_dir();
  const auto stats = sched::explore(config, wl->factory);
  EXPECT_FALSE(stats.failed) << stats.failure;
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.executions, 10u);  // a real state space was covered
}

TEST(OracleQuiet, JayantiAbandonEpochsFullExplorationNeverFires) {
  // Two try-lock processes abandon at adjacent queue positions and one
  // revives and re-abandons — the window where a state-only claim-CAS
  // would ABA (consume the second abandonment while splicing to the
  // first's prev, putting two walkers on one position). DPOR-complete
  // exploration must find no mutex violation, no lost wake-up, and no
  // runaway walk: the epoch-versioned claim fails stale and re-observes.
  const auto* wl = find_workload("jayanti-abandon-epochs");
  ASSERT_NE(wl, nullptr);
  sched::ExploreConfig config;
  config.nprocs = wl->nprocs;
  config.preemption_bound = 2;
  config.max_executions = 500'000;
  config.reduction = sched::Reduction::kDpor;
  config.workload = wl->name;
  config.trace_dir = temp_dir();
  const auto stats = sched::explore(config, wl->factory);
  EXPECT_FALSE(stats.failed) << stats.failure;
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.executions, 10u);  // a real state space was covered
}

TEST(OracleQuiet, FullExplorationOfCleanWorkloadNeverFires) {
  // The clean hand-off workload registers the queue and tree oracles on
  // every execution; DPOR-complete exploration (182 executions) must not
  // report a single violation. (The bug-equivalence tests above already
  // assert the *scheduling* failure is found; this asserts no false
  // positives from the oracles.)
  const auto* clean = find_workload("oneshot-handoff-clean");
  ASSERT_NE(clean, nullptr);
  auto config = bug_config(sched::Reduction::kDpor);
  config.workload = clean->name;
  const auto stats = sched::explore(config, clean->factory);
  EXPECT_FALSE(stats.failed) << stats.failure;
}

}  // namespace
}  // namespace aml::analysis
