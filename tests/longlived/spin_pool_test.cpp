// SpinNodePool: pool discipline, pin-based quiescence, and the N+1 sizing
// invariant.
#include "aml/core/spin_pool.hpp"

#include <gtest/gtest.h>

#include <set>

#include "aml/model/counting_cc.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;
using Pool = SpinNodePool<CountingCcModel>;

TEST(SpinPool, AllocReturnsDistinctNodesFromOwnPool) {
  CountingCcModel m(2);
  Pool pool(m, 2, 3);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 3; ++i) {
    const std::uint32_t idx = pool.alloc(0);
    EXPECT_LT(idx, 3u);  // owner 0's range
    EXPECT_TRUE(seen.insert(idx).second);
  }
  for (int i = 0; i < 3; ++i) {
    const std::uint32_t idx = pool.alloc(1);
    EXPECT_GE(idx, 3u);
    EXPECT_TRUE(seen.insert(idx).second);
  }
}

TEST(SpinPool, UnallocMakesNodeReusable) {
  CountingCcModel m(1);
  Pool pool(m, 1, 1);
  const std::uint32_t idx = pool.alloc(0);
  pool.unalloc(0, idx);
  EXPECT_EQ(pool.alloc(0), idx);
}

TEST(SpinPool, RetiredUnpinnedNodeIsReclaimed) {
  CountingCcModel m(1);
  Pool pool(m, 1, 2);
  const std::uint32_t a = pool.alloc(0);
  const std::uint32_t b = pool.alloc(0);
  // Retire `a` (the switch that replaced it sets go).
  m.write(0, *pool.node(a).go, 1);
  // Pool empty -> reclaim scan runs and finds `a`.
  const std::uint32_t c = pool.alloc(0);
  EXPECT_EQ(c, a);
  EXPECT_NE(c, b);
  // Reclaimed node's go must be reset.
  EXPECT_EQ(m.read(0, *pool.node(c).go), 0u);
}

TEST(SpinPool, PinnedNodeIsNotReclaimed) {
  CountingCcModel m(2);
  Pool pool(m, 2, 2);
  const std::uint32_t a = pool.alloc(0);
  m.write(0, *pool.node(a).go, 1);     // retired...
  pool.publish_pin(1, a);              // ...but process 1 pins it
  const std::uint32_t b = pool.alloc(0);
  EXPECT_NE(b, a);
  m.write(0, *pool.node(b).go, 1);
  // Only `b` is reclaimable now.
  EXPECT_EQ(pool.alloc(0), b);
  // Unpin: now `a` comes back.
  pool.clear_pin(1);
  m.write(0, *pool.node(b).go, 1);  // b retired again
  const std::uint32_t d = pool.alloc(0);
  const std::uint32_t e = pool.alloc(0);
  EXPECT_NE(d, e);
  EXPECT_TRUE((d == a && e == b) || (d == b && e == a));
}

TEST(SpinPool, PinOfForeignNodeDoesNotBlockOwnPool) {
  CountingCcModel m(2);
  Pool pool(m, 2, 1);
  const std::uint32_t other = pool.alloc(1);  // node of owner 1
  pool.publish_pin(0, other);
  const std::uint32_t own = pool.alloc(0);    // must still succeed
  EXPECT_LT(own, 1u);
}

TEST(SpinPool, NPlusOneSizingSurvivesWorstCasePinning) {
  // N = 3 processes, pool 4 per owner. All other processes pin distinct
  // nodes of owner 0; owner 0 must still allocate.
  CountingCcModel m(3);
  Pool pool(m, 3, 4);
  const std::uint32_t n0 = pool.alloc(0);
  const std::uint32_t n1 = pool.alloc(0);
  const std::uint32_t n2 = pool.alloc(0);
  m.write(0, *pool.node(n0).go, 1);
  m.write(0, *pool.node(n1).go, 1);
  m.write(0, *pool.node(n2).go, 1);
  pool.publish_pin(1, n0);
  pool.publish_pin(2, n1);
  pool.publish_pin(0, n2);  // owner's own pin
  // Three retired-but-pinned nodes; the fourth is free.
  const std::uint32_t n3 = pool.alloc(0);
  EXPECT_NE(n3, n0);
  EXPECT_NE(n3, n1);
  EXPECT_NE(n3, n2);
}

}  // namespace
}  // namespace aml::core
