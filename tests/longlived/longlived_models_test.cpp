// The long-lived lock across memory models: the DSM counting model (the
// paper leaves DSM open for the long-lived case — correctness still holds,
// only the RMR bound does not), explicit W sweeps including the smallest
// legal tree, and instance-identity invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>

#include "aml/core/eager_space.hpp"
#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/model/counting_dsm.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::core {
namespace {

using model::Pid;

TEST(LongLivedModels, CorrectOnDsmModel) {
  // Correctness (mutex, liveness) is model-independent; only the RMR bound
  // is CC-specific (Section 8 leaves long-lived DSM open).
  using Model = model::CountingDsmModel;
  Model m(3);
  LongLivedLock<Model> lock(m, {.nprocs = 3, .w = 4});
  sched::StepScheduler sched(3, {.seed = 4});
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint32_t> entries{0};
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    for (int round = 0; round < 4; ++round) {
      ASSERT_TRUE(lock.enter(p, nullptr).acquired);
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(p);
      entries.fetch_add(1);
    }
  });
  m.set_hook(nullptr);
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(entries.load(), 12u);
}

TEST(LongLivedModels, DsmVariantCompositionExploresOpenProblem) {
  // Section 8 leaves the long-lived DSM problem open: the transformation's
  // spin-node wait is inherently a shared-location spin. Composing the
  // transformation with the DSM one-shot variant is still *correct*; we
  // verify that, and that the one-shot part itself spins locally (episodes
  // come only from the transformation layer, if any).
  using Model = model::CountingDsmModel;
  Model m(4);
  LongLivedLock<Model, EagerSpace, OneShotLockDsm> lock(
      m, {.nprocs = 4, .w = 4});
  sched::StepScheduler sched(4, {.seed = 21});
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint32_t> entries{0};
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE(lock.enter(p, nullptr).acquired);
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(p);
      entries.fetch_add(1);
    }
  });
  m.set_hook(nullptr);
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(entries.load(), 12u);
}

TEST(LongLivedModels, WSweepIncludingMinimum) {
  for (std::uint32_t w : {2u, 3u, 4u, 16u, 64u}) {
    using Model = model::CountingCcModel;
    Model m(4);
    LongLivedLock<Model> lock(m, {.nprocs = 4, .w = w});
    sched::StepScheduler sched(4, {.seed = w});
    std::atomic<int> in_cs{0};
    std::atomic<bool> violation{false};
    m.set_hook(&sched);
    sched.run([&](Pid p) {
      for (int round = 0; round < 3; ++round) {
        ASSERT_TRUE(lock.enter(p, nullptr).acquired);
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(p);
      }
    });
    m.set_hook(nullptr);
    EXPECT_FALSE(violation.load()) << "w=" << w;
  }
}

TEST(LongLivedModels, InstanceAccountingUnderSoloChurn) {
  using Model = model::CountingCcModel;
  Model m(1);
  LongLivedLock<Model> lock(m, {.nprocs = 1, .w = 8});
  EXPECT_EQ(lock.instance_count(), 2u);  // N+1
  EXPECT_EQ(lock.spin_nodes(), 2u);      // N * (N+1)
  sched::StepScheduler sched(1, {.seed = 1});
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    for (int round = 0; round < 20; ++round) {
      ASSERT_TRUE(lock.enter(p, nullptr).acquired);
      lock.exit(p);
    }
  });
  m.set_hook(nullptr);
  // Solo: every passage drains refcnt to zero and switches.
  EXPECT_GE(lock.total_incarnations(), 19u);
}

TEST(LongLivedModels, RefcntReturnsToZeroWhenIdle) {
  using Model = model::CountingCcModel;
  Model m(2);
  LongLivedLock<Model> lock(m, {.nprocs = 2, .w = 4});
  sched::StepScheduler sched(2, {.seed = 3});
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    for (int round = 0; round < 6; ++round) {
      ASSERT_TRUE(lock.enter(p, nullptr).acquired);
      lock.exit(p);
    }
  });
  m.set_hook(nullptr);
  EXPECT_EQ(lock.peek_refcnt(0), 0u);
}

TEST(LongLivedModels, SpinNodeAbortLeavesRefcntUntouched) {
  // An abort taken while waiting on the old spin node (Algorithm 6.1 lines
  // 58-61) must return false without ever incrementing Refcnt. Construct
  // deterministically with phase flags (model words) and an idle-driven
  // state machine:
  //   1. p1 acquires (slot 0) and parks in the CS on flag_b;
  //   2. p0 joins (Refcnt -> 2) and parks on its queue slot;
  //   3. idle #1 opens flag_b: p1 exits (hand-off to p0), its Cleanup drops
  //      Refcnt to 1 (no switch: p0 is active), then p1 re-enters — its
  //      oldSpn still names the installed spin node, so it spins there;
  //   4. p0 reaches the CS and parks on flag_c;
  //   5. idle #2 raises p1's signal: p1 aborts out of the spin-node wait;
  //   6. idle #3 opens flag_c: p0 exits and, as the last user, switches.
  using Model = model::CountingCcModel;
  Model m(2);
  LongLivedLock<Model> lock(m, {.nprocs = 2, .w = 4});
  auto* flag_b = m.alloc(1, 0);
  auto* flag_c = m.alloc(1, 0);
  std::deque<std::atomic<bool>> sig(1);

  sched::SchedulerConfig cfg;
  cfg.policy = sched::policies::prefer({1, 0});
  sched::StepScheduler sched(2, std::move(cfg));
  int idles = 0;
  sched.set_idle_callback([&]() {
    switch (idles++) {
      case 0: m.poke(*flag_b, 1); return true;
      case 1: sig[0].store(true, std::memory_order_release); return true;
      case 2: m.poke(*flag_c, 1); return true;
      default: return false;
    }
  });

  bool p1_second = true;
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    auto parked = [](std::uint64_t v) { return v != 0; };
    if (p == 1) {
      ASSERT_TRUE(lock.enter(1, nullptr).acquired);
      m.wait(1, *flag_b, parked, nullptr);  // hold the CS until idle #1
      lock.exit(1);
      p1_second = lock.enter(1, &sig[0]).acquired;  // spins on oldSpn, aborted
      if (p1_second) lock.exit(1);
    } else {
      ASSERT_TRUE(lock.enter(0, nullptr).acquired);  // joins while p1 is parked
      m.wait(0, *flag_c, parked, nullptr);  // hold the CS until idle #3
      lock.exit(0);
    }
  });
  m.set_hook(nullptr);
  EXPECT_FALSE(p1_second) << "p1 was expected to abort on the spin node";
  EXPECT_EQ(lock.peek_refcnt(0), 0u);
  EXPECT_GE(lock.total_incarnations(), 1u);  // p0's final switch happened
}

}  // namespace
}  // namespace aml::core
