// VersionedSpace: the Section 6.2 lazy-reset scheme — per-word version
// words, incarnation flipping, CAS races between same-session resolvers, and
// wraparound defeat via the eager-reset quota.
#include "aml/core/versioned_space.hpp"

#include <gtest/gtest.h>

#include "aml/core/eager_space.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::core {
namespace {

using model::CountingCcModel;
using model::Pid;
using Space = VersionedSpace<CountingCcModel>;

TEST(VersionedSpace, ReadsInitialValue) {
  CountingCcModel m(1);
  Space space(m, 1, 8);
  auto* w = space.alloc(1, 42);
  space.begin_session(0);
  EXPECT_EQ(space.read(0, *w), 42u);
}

TEST(VersionedSpace, WriteReadFaaWithinSession) {
  CountingCcModel m(1);
  Space space(m, 1, 8);
  auto* w = space.alloc(1, 10);
  space.begin_session(0);
  EXPECT_EQ(space.faa(0, *w, 5), 10u);
  EXPECT_EQ(space.read(0, *w), 15u);
  space.write(0, *w, 99);
  EXPECT_EQ(space.read(0, *w), 99u);
}

TEST(VersionedSpace, NextIncarnationLazilyResets) {
  CountingCcModel m(1);
  Space space(m, 1, 8);
  auto* words = space.alloc(4, 7);
  space.begin_session(0);
  for (int i = 0; i < 4; ++i) space.write(0, words[i], 100 + i);
  space.next_incarnation(0);
  space.begin_session(0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(space.read(0, words[i]), 7u) << "word " << i;
  }
}

TEST(VersionedSpace, ManyIncarnationsAlwaysFresh) {
  // W=4 -> 3 version bits -> versions wrap every 8 reuses. 50 incarnations
  // cross the wrap repeatedly; the eager-reset quota must keep stale values
  // from ever surviving a full wrap.
  CountingCcModel m(1);
  Space space(m, 1, 4);
  auto* words = space.alloc(10, 3);
  for (int round = 0; round < 50; ++round) {
    space.begin_session(0);
    for (int i = 0; i < 10; ++i) {
      ASSERT_EQ(space.read(0, words[i]), 3u)
          << "round " << round << " word " << i;
      space.write(0, words[i], 1000 + round);
    }
    space.next_incarnation(0);
  }
  EXPECT_EQ(space.incarnations(), 50u);
}

TEST(VersionedSpace, WraparoundWithUntouchedWords) {
  // Words never touched in most sessions must still read fresh after the
  // version counter wraps (the dedicated job of the eager-reset cursor).
  CountingCcModel m(1);
  Space space(m, 1, 3);  // 2 version bits: wrap every 4
  auto* words = space.alloc(6, 11);
  space.begin_session(0);
  for (int i = 0; i < 6; ++i) space.write(0, words[i], 77);
  // 4 reuses without touching anything: exactly one full wrap.
  for (int k = 0; k < 4; ++k) space.next_incarnation(0);
  space.begin_session(0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(space.read(0, words[i]), 11u) << "word " << i;
  }
}

TEST(VersionedSpace, PerSessionResolutionIsCachedLocally) {
  CountingCcModel m(1);
  Space space(m, 1, 8);
  auto* w = space.alloc(1, 0);
  space.begin_session(0);
  space.read(0, *w);
  const std::uint64_t reads_after_first = m.counters(0).reads;
  space.read(0, *w);
  // Second access resolves locally: exactly one more underlying read.
  EXPECT_EQ(m.counters(0).reads, reads_after_first + 1);
}

TEST(VersionedSpace, TwoProcessesShareIncarnation) {
  CountingCcModel m(2);
  Space space(m, 2, 8);
  auto* w = space.alloc(1, 5);
  space.next_incarnation(0);  // leave version-0 state behind
  space.begin_session(0);
  space.begin_session(1);
  space.write(0, *w, 123);
  EXPECT_EQ(space.read(1, *w), 123u);  // same incarnation resolved
}

TEST(VersionedSpace, RacingResolversAgree) {
  // Force the CAS race in resolve(): both processes read the stale V_w,
  // p1 switches first, p0's CAS fails and re-reads. Both must end up on the
  // same (fresh) incarnation.
  CountingCcModel m(2);
  Space space(m, 2, 8);
  // Two words: the eager-reset cursor consumes word 0 at next_incarnation,
  // leaving word 1's V_w genuinely stale for the race.
  auto* words = space.alloc(2, 17);
  auto* w = &words[1];
  space.begin_session(0);
  space.write(0, *w, 55);    // dirty version 0
  space.next_incarnation(0); // now version 1; V_w stale
  space.begin_session(0);
  space.begin_session(1);

  sched::StepScheduler::Config cfg;
  // p0 reads V_w (1 step); p1 then runs its entire resolve + read (4 steps:
  // V read, CAS, reset write, value read); p0 resumes (CAS fail, V re-read,
  // value read).
  cfg.policy = sched::policies::script(
      {{0, 1}, {1, 4}, {0, 3}}, sched::policies::round_robin());
  sched::StepScheduler sched(2, std::move(cfg));
  m.set_hook(&sched);
  std::uint64_t seen[2] = {0, 0};
  sched.run([&](Pid p) { seen[p] = space.read(p, *w); });
  m.set_hook(nullptr);
  EXPECT_EQ(seen[0], 17u);
  EXPECT_EQ(seen[1], 17u);
  // And writes through either process land on the shared incarnation.
  space.write(0, *w, 200);
  EXPECT_EQ(space.read(1, *w), 200u);
}

TEST(VersionedSpace, LargeHandleBlocksAreContiguous) {
  CountingCcModel m(1);
  Space space(m, 1, 8);
  auto* words = space.alloc(300, 4);
  space.begin_session(0);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(space.read(0, words[i]), 4u) << i;
    space.write(0, words[i], static_cast<std::uint64_t>(i));
  }
  ASSERT_EQ(space.read(0, words[299]), 299u);
}

TEST(EagerSpaceTest, ResetsEverythingAtOnce) {
  CountingCcModel m(1);
  EagerSpace<CountingCcModel> space(m, 1, 8);
  auto* words = space.alloc(5, 9);
  space.begin_session(0);
  for (int i = 0; i < 5; ++i) space.write(0, words[i], 1);
  const std::uint64_t writes_before = m.counters(0).writes;
  space.next_incarnation(0);
  // Eager: one write per word.
  EXPECT_EQ(m.counters(0).writes, writes_before + 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(space.read(0, words[i]), 9u);
}

TEST(EagerSpaceTest, FaaAndWait) {
  CountingCcModel m(1);
  EagerSpace<CountingCcModel> space(m, 1, 8);
  auto* w = space.alloc(1, 2);
  EXPECT_EQ(space.faa(0, *w, 3), 2u);
  auto out = space.wait(
      0, *w, [](std::uint64_t v) { return v == 5; }, nullptr);
  EXPECT_EQ(out.value, 5u);
}

}  // namespace
}  // namespace aml::core
