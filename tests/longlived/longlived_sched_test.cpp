// Long-lived lock (Section 6) under the deterministic scheduler: mutual
// exclusion across instance switches, Claim 25 (no one enters the same
// incarnation twice — enforced inside the one-shot lock by the capacity
// assertion), abort storms, lazy vs eager recycling, starvation freedom.
#include <gtest/gtest.h>

#include "aml/harness/rmr_experiment.hpp"

namespace aml::harness {
namespace {

struct LlCase {
  std::uint32_t n;
  std::uint32_t w;
  std::uint32_t rounds;
  std::uint32_t abort_ppm;
  std::uint64_t seed;
};

class LongLivedSched : public ::testing::TestWithParam<LlCase> {};

TEST_P(LongLivedSched, LazyRecyclingCorrect) {
  const auto& c = GetParam();
  LongLivedOptions opts;
  opts.n = c.n;
  opts.w = c.w;
  opts.rounds = c.rounds;
  opts.abort_ppm = c.abort_ppm;
  opts.seed = c.seed;
  const RunResult r = run_long_lived<core::VersionedSpace>(opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed + r.aborted,
            static_cast<std::uint64_t>(c.n) * c.rounds);
  // An attempt that was never marked to abort cannot return false.
  for (const auto& rec : r.records) {
    if (!rec.marked) {
      EXPECT_TRUE(rec.acquired) << "pid " << rec.pid;
    }
  }
  // Multiple rounds force instance switches.
  if (c.rounds >= 4) {
    EXPECT_GT(r.switches, 0u);
  }
}

TEST_P(LongLivedSched, EagerRecyclingCorrect) {
  const auto& c = GetParam();
  LongLivedOptions opts;
  opts.n = c.n;
  opts.w = c.w;
  opts.rounds = c.rounds;
  opts.abort_ppm = c.abort_ppm;
  opts.seed = c.seed + 1000;
  const RunResult r = run_long_lived<core::EagerSpace>(opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed + r.aborted,
            static_cast<std::uint64_t>(c.n) * c.rounds);
  for (const auto& rec : r.records) {
    if (!rec.marked) {
      EXPECT_TRUE(rec.acquired);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LongLivedSched,
    ::testing::Values(LlCase{1, 4, 10, 0, 1},
                      LlCase{2, 2, 12, 0, 2},
                      LlCase{2, 4, 12, 500000, 3},
                      LlCase{3, 4, 10, 300000, 4},
                      LlCase{4, 4, 8, 0, 5},
                      LlCase{4, 4, 8, 400000, 6},
                      LlCase{4, 2, 8, 700000, 7},
                      LlCase{6, 4, 6, 250000, 8},
                      LlCase{8, 8, 5, 0, 9},
                      LlCase{8, 8, 5, 500000, 10},
                      LlCase{8, 4, 6, 900000, 11},
                      LlCase{12, 4, 4, 500000, 12},
                      LlCase{16, 8, 3, 300000, 13}),
    [](const auto& info) {
      const auto& c = info.param;
      return "N" + std::to_string(c.n) + "_W" + std::to_string(c.w) + "_R" +
             std::to_string(c.rounds) + "_A" + std::to_string(c.abort_ppm) +
             "_S" + std::to_string(c.seed);
    });

TEST(LongLivedSchedEdge, HighChurnManySwitches) {
  LongLivedOptions opts;
  opts.n = 2;
  opts.w = 2;  // 1-bit versions: wraparound stress for the lazy reset
  opts.rounds = 40;
  opts.abort_ppm = 500000;
  opts.seed = 77;
  const RunResult r = run_long_lived<core::VersionedSpace>(opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_GT(r.switches, 10u);
}

TEST(LongLivedSchedEdge, SoloProcessManyRounds) {
  // A single process switches instances every passage (refcnt always drops
  // to 0) — maximal recycling pressure on one pool.
  LongLivedOptions opts;
  opts.n = 1;
  opts.w = 4;
  opts.rounds = 50;
  opts.seed = 5;
  const RunResult r = run_long_lived<core::VersionedSpace>(opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed, 50u);
  EXPECT_GE(r.switches, 49u);
}

TEST(LongLivedSchedEdge, DeterministicPerSeed) {
  LongLivedOptions opts;
  opts.n = 4;
  opts.w = 4;
  opts.rounds = 6;
  opts.abort_ppm = 400000;
  opts.seed = 31;
  const RunResult a = run_long_lived<core::VersionedSpace>(opts);
  const RunResult b = run_long_lived<core::VersionedSpace>(opts);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.switches, b.switches);
}

TEST(LongLivedSchedEdge, AllMarkedEveryRound) {
  // Everyone tries to abort every round; whoever wins the hand-off race
  // still completes, and the lock never wedges.
  LongLivedOptions opts;
  opts.n = 4;
  opts.w = 4;
  opts.rounds = 10;
  opts.abort_ppm = 1000000;
  opts.seed = 41;
  const RunResult r = run_long_lived<core::VersionedSpace>(opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed + r.aborted, 40u);
}

}  // namespace
}  // namespace aml::harness
