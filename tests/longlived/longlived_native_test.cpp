// Long-lived lock on native hardware: free-running stress with real threads,
// the AbortableLock facade, and abort storms driven by a controller thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "aml/core/abortable_lock.hpp"
#include "aml/core/longlived.hpp"
#include "aml/model/native.hpp"
#include "aml/pal/rng.hpp"
#include "aml/pal/threading.hpp"

namespace aml {
namespace {

using model::NativeModel;
using model::Pid;

TEST(LongLivedNative, MutexUnderContention) {
  constexpr Pid kN = 4;
  constexpr int kRounds = 300;
  NativeModel m(kN);
  core::LongLivedLock<NativeModel> lock(m, {.nprocs = kN, .w = 64});
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> cs_entries{0};
  pal::run_threads(kN, [&](std::uint32_t t) {
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(lock.enter(t, nullptr).acquired);
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(t);
      cs_entries.fetch_add(1);
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(cs_entries.load(), kN * static_cast<std::uint64_t>(kRounds));
  EXPECT_GT(lock.total_incarnations(), 0u);
}

TEST(LongLivedNative, SelfAbortingAttempts) {
  constexpr Pid kN = 4;
  constexpr int kRounds = 200;
  NativeModel m(kN);
  core::LongLivedLock<NativeModel> lock(m, {.nprocs = kN, .w = 64});
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> completed{0}, aborted{0};
  pal::run_threads(kN, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t * 101 + 7);
    std::deque<std::atomic<bool>> sig(1);
    for (int i = 0; i < kRounds; ++i) {
      sig[0].store(rng.chance_ppm(300000), std::memory_order_release);
      if (lock.enter(t, &sig[0]).acquired) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(t);
        completed.fetch_add(1);
      } else {
        aborted.fetch_add(1);
      }
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(completed.load() + aborted.load(),
            kN * static_cast<std::uint64_t>(kRounds));
  EXPECT_GT(completed.load(), 0u);
}

TEST(LongLivedNative, ControllerDrivenAbortStorm) {
  constexpr Pid kN = 6;
  NativeModel m(kN);
  core::LongLivedLock<NativeModel> lock(m, {.nprocs = kN, .w = 64});
  std::deque<std::atomic<bool>> signals(kN);
  std::atomic<bool> stop_controller{false};
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> attempts{0};

  std::thread controller([&] {
    pal::Xoshiro256 rng(999);
    while (!stop_controller.load(std::memory_order_acquire)) {
      signals[rng.below(kN)].store(true, std::memory_order_release);
      std::this_thread::yield();
    }
    for (Pid p = 0; p < kN; ++p) signals[p].store(true);
  });

  pal::run_threads(kN, [&](std::uint32_t t) {
    for (int i = 0; i < 150; ++i) {
      signals[t].store(false, std::memory_order_release);
      if (lock.enter(t, &signals[t]).acquired) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(t);
      }
      attempts.fetch_add(1);
    }
  });
  stop_controller.store(true);
  controller.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(attempts.load(), kN * 150u);
}

TEST(AbortableLockFacade, Quickstart) {
  AbortableLock lock(LockConfig{.max_threads = 2});
  AbortSignal signal;
  ASSERT_TRUE(lock.enter(0, signal));
  lock.exit(0);
  lock.enter(1);
  lock.exit(1);
}

TEST(AbortableLockFacade, AbortWhileBlocked) {
  AbortableLock lock(LockConfig{.max_threads = 2});
  AbortSignal holder_sig, waiter_sig;
  ASSERT_TRUE(lock.enter(0, holder_sig));
  std::atomic<bool> waiter_done{false};
  bool waiter_got = true;
  std::thread waiter([&] {
    waiter_got = lock.enter(1, waiter_sig);
    waiter_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(waiter_done.load());  // blocked behind the holder
  waiter_sig.raise();
  waiter.join();
  EXPECT_FALSE(waiter_got);  // aborted
  lock.exit(0);
  // The waiter can come back after resetting its signal.
  waiter_sig.reset();
  ASSERT_TRUE(lock.enter(1, waiter_sig));
  lock.exit(1);
}

TEST(AbortableLockFacade, SignalRaisedByAnotherThread) {
  AbortableLock lock(LockConfig{.max_threads = 3});
  AbortSignal sig;
  ASSERT_TRUE(lock.enter(0, sig));
  std::thread raiser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sig.raise();
  });
  AbortSignal own;
  std::thread waiter([&] { EXPECT_FALSE(lock.enter(1, sig)); });
  raiser.join();
  waiter.join();
  lock.exit(0);
  (void)own;
}

}  // namespace
}  // namespace aml
