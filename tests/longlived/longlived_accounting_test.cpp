// Regression tests for two harness accounting bugs:
//
//   (1) run_long_lived never populated PassageRecord::slot — every record
//       reported slot 0 regardless of the queue position the doorway F&A
//       actually assigned.
//   (2) RunResult::switches was assigned lock.total_incarnations(), which
//       also counts the initial incarnation of every instance and the
//       version bumps of switches whose Cleanup CAS lost — not the number
//       of instance switches that actually happened.
#include <gtest/gtest.h>

#include <set>

#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/harness/rmr_experiment.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/explorer.hpp"

namespace aml::harness {
namespace {

LongLivedOptions base_opts() {
  LongLivedOptions opts;
  opts.n = 4;
  opts.w = 8;
  opts.rounds = 4;
  opts.abort_ppm = 0;
  opts.seed = 7;
  return opts;
}

TEST(LongLivedAccountingTest, SlotsComeFromEnterResult) {
  const RunResult r = run_long_lived<>(base_opts());
  ASSERT_TRUE(r.mutex_ok);
  ASSERT_GT(r.completed, 0u);
  bool some_nonzero = false;
  for (const auto& rec : r.records) {
    if (!rec.acquired) continue;
    ASSERT_NE(rec.slot, core::kNoSlot);
    // A one-shot instance hands out at most N slots (0..N-1) before the
    // long-lived lock switches to a fresh instance.
    EXPECT_LT(rec.slot, base_opts().n);
    some_nonzero |= rec.slot > 0;
  }
  // The doorway is a fetch-and-add: under any contention at all, somebody
  // lands on a non-zero slot. The old code left every record at 0.
  EXPECT_TRUE(some_nonzero);
}

TEST(LongLivedAccountingTest, SpnWaitAbortsRecordNoSlot) {
  LongLivedOptions opts = base_opts();
  opts.abort_ppm = 400000;
  opts.rounds = 8;
  const RunResult r = run_long_lived<>(opts);
  ASSERT_TRUE(r.mutex_ok);
  ASSERT_GT(r.aborted, 0u);
  for (const auto& rec : r.records) {
    if (rec.acquired) {
      EXPECT_NE(rec.slot, core::kNoSlot);
    } else {
      // An abort either never joined an instance (kNoSlot, spn-wait abort)
      // or aborted from a real queue slot — both are valid, slot 0 for a
      // spn-wait abort is not.
      if (rec.slot != core::kNoSlot) {
        EXPECT_LT(rec.slot, opts.n);
      }
    }
  }
}

TEST(LongLivedAccountingTest, SwitchesBoundedByIncarnations) {
  const RunResult r = run_long_lived<>(base_opts());
  ASSERT_TRUE(r.mutex_ok);
  // 4 processes x 4 rounds across N-slot instances: switches must happen.
  EXPECT_GT(r.switches, 0u);
  // Every successful switch bumped an incarnation first; lost-CAS
  // preparations bump incarnations without a switch, so <= always.
  EXPECT_LE(r.switches, r.incarnations);
}

// The two counters are genuinely different quantities: a Cleanup whose
// install CAS loses has already bumped the instance's incarnation, so
// total_incarnations() over-counts the switches that actually happened.
// Bounded-exhaustive exploration at 2 processes x 2 rounds must surface
// schedules where they diverge — the executions the old
// `switches = total_incarnations()` assignment misreported.
TEST(LongLivedAccountingTest, LostCasMakesIncarnationsExceedSwitches) {
  sched::ExploreConfig cfg;
  cfg.nprocs = 2;
  cfg.preemption_bound = 2;
  cfg.max_executions = 200000;
  std::uint64_t divergent = 0;
  const sched::ExploreStats stats =
      sched::explore(cfg, [&](sched::ExecutionContext& ctx) {
        model::CountingCcModel m(2);
        core::LongLivedLock<model::CountingCcModel> lock(m,
                                                         {.nprocs = 2, .w = 8});
        m.set_hook(&ctx.scheduler());
        ctx.run([&](model::Pid p) {
          for (int round = 0; round < 2; ++round) {
            if (lock.enter(p, nullptr).acquired) lock.exit(p);
          }
        });
        m.set_hook(nullptr);
        ASSERT_LE(lock.total_switches(), lock.total_incarnations());
        if (lock.total_switches() < lock.total_incarnations()) ++divergent;
      });
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(divergent, 0u);
}

// Sequential ground truth on a bare lock: each enter/exit by one process in
// turn, tracking the installed instance index before and after. The number
// of observed transitions must equal total_switches() exactly.
TEST(LongLivedAccountingTest, SwitchCounterMatchesInstalledTransitions) {
  using Model = model::CountingCcModel;
  constexpr std::uint32_t kN = 3;
  Model m(kN);
  core::LongLivedLock<Model> lock(m, {.nprocs = kN, .w = 8});
  std::uint64_t transitions = 0;
  std::uint32_t installed = lock.peek_installed(0);
  for (std::uint32_t round = 0; round < 6; ++round) {
    for (std::uint32_t p = 0; p < kN; ++p) {
      ASSERT_TRUE(lock.enter(p, nullptr).acquired);
      lock.exit(p);
      const std::uint32_t now = lock.peek_installed(p);
      if (now != installed) {
        ++transitions;
        installed = now;
      }
    }
  }
  EXPECT_EQ(lock.total_switches(), transitions);
  EXPECT_GT(transitions, 0u);
  // Sequential execution never loses the install CAS, so every incarnation
  // bump corresponds to exactly one switch.
  EXPECT_EQ(lock.total_switches(), lock.total_incarnations());
}

// The enter result's slot reflects the doorway order inside one instance:
// sequential solo passes each get slot 0 of a fresh (or reset) queue, and
// never kNoSlot.
TEST(LongLivedAccountingTest, SequentialEnterResultSlots) {
  using Model = model::CountingCcModel;
  Model m(2);
  core::LongLivedLock<Model> lock(m, {.nprocs = 2, .w = 8});
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const core::EnterResult r = lock.enter(0, nullptr);
    ASSERT_TRUE(r.acquired);
    ASSERT_NE(r.slot, core::kNoSlot);
    EXPECT_LT(r.slot, 2u);
    seen.insert(r.slot);
    lock.exit(0);
  }
  EXPECT_FALSE(seen.empty());
}

}  // namespace
}  // namespace aml::harness
