// Whole-stack native stress: the production AbortableLock under mixed
// workloads — contention, abort storms, thread churn, and fairness sanity.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "aml/core/abortable_lock.hpp"
#include "aml/pal/rng.hpp"
#include "aml/pal/threading.hpp"

namespace aml {
namespace {

TEST(NativeStress, MixedAbortWorkload) {
  constexpr std::uint32_t kThreads = 8;
  constexpr int kRounds = 150;
  AbortableLock lock(LockConfig{.max_threads = kThreads});
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> shared_counter{0};
  std::uint64_t unprotected = 0;  // only touched inside the CS
  std::atomic<std::uint64_t> completed{0};

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t * 31 + 5);
    std::deque<AbortSignal> sig(1);
    for (int i = 0; i < kRounds; ++i) {
      sig[0].reset();
      if (rng.chance_ppm(200000)) sig[0].raise();
      if (lock.enter(t, sig[0])) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        ++unprotected;  // data race iff mutual exclusion fails
        shared_counter.fetch_add(1, std::memory_order_relaxed);
        in_cs.fetch_sub(1);
        lock.exit(t);
        completed.fetch_add(1);
      }
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(unprotected, shared_counter.load());
  EXPECT_EQ(completed.load(), shared_counter.load());
  EXPECT_GT(completed.load(), 0u);
}

TEST(NativeStress, AbortLatencyIsBounded) {
  // Bounded abort: once the signal is up, enter() must return quickly even
  // though the lock is held the whole time.
  AbortableLock lock(LockConfig{.max_threads = 2});
  AbortSignal holder_sig;
  ASSERT_TRUE(lock.enter(0, holder_sig));
  AbortSignal sig;
  sig.raise();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(lock.enter(1, sig));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  lock.exit(0);
}

TEST(NativeStress, RepeatedSoloAcquisitionRecyclesInstances) {
  AbortableLock lock(LockConfig{.max_threads = 1});
  for (int i = 0; i < 5000; ++i) {
    lock.enter(0);
    lock.exit(0);
  }
  SUCCEED();  // the capacity assertion inside would have fired on re-entry
}

TEST(NativeStress, SmallTreeWidthStillCorrect) {
  // W = 2 maximizes tree depth and recycling pressure on version words.
  constexpr std::uint32_t kThreads = 4;
  AbortableLock lock(LockConfig{.max_threads = kThreads, .tree_width = 2});
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  pal::run_threads(kThreads, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t + 77);
    std::deque<AbortSignal> sig(1);
    for (int i = 0; i < 200; ++i) {
      sig[0].reset();
      if (rng.chance_ppm(300000)) sig[0].raise();
      if (lock.enter(t, sig[0])) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(t);
      }
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(NativeStress, EveryThreadEventuallyEnters) {
  // Starvation-freedom smoke: under sustained contention every thread
  // completes its quota.
  constexpr std::uint32_t kThreads = 6;
  AbortableLock lock(LockConfig{.max_threads = kThreads});
  std::vector<std::atomic<int>> quota(kThreads);
  pal::run_threads(kThreads, [&](std::uint32_t t) {
    for (int i = 0; i < 100; ++i) {
      lock.enter(t);
      quota[t].fetch_add(1);
      lock.exit(t);
    }
  });
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(quota[t].load(), 100);
  }
}

}  // namespace
}  // namespace aml
