// The audit component itself, then end-to-end audited executions of the
// one-shot and long-lived locks.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>

#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/harness/audit.hpp"
#include "aml/harness/workload.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::harness {
namespace {

using model::CountingCcModel;
using model::Pid;

TEST(AuditUnit, CleanHistory) {
  EventLog log;
  log.record(0, EventKind::kDoorway, 0);
  log.record(1, EventKind::kDoorway, 1);
  log.record(0, EventKind::kAcquire, 0);
  log.record(0, EventKind::kRelease);
  log.record(1, EventKind::kAcquire, 1);
  log.record(1, EventKind::kRelease);
  const AuditReport r = audit_one_shot(log.events());
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_EQ(r.acquires, 2u);
  EXPECT_EQ(r.doorways, 2u);
}

TEST(AuditUnit, DetectsOverlap) {
  EventLog log;
  log.record(0, EventKind::kAcquire, 0);
  log.record(1, EventKind::kAcquire, 1);  // overlap!
  log.record(0, EventKind::kRelease);
  log.record(1, EventKind::kRelease);
  EXPECT_FALSE(audit_one_shot(log.events()).mutex_ok);
}

TEST(AuditUnit, DetectsFcfsInversion) {
  EventLog log;
  log.record(1, EventKind::kAcquire, 5);
  log.record(1, EventKind::kRelease);
  log.record(0, EventKind::kAcquire, 2);  // lower slot after higher
  log.record(0, EventKind::kRelease);
  const AuditReport r = audit_one_shot(log.events());
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.fcfs_inversions, 1u);
}

TEST(AuditUnit, DetectsLeakedAcquire) {
  EventLog log;
  log.record(0, EventKind::kAcquire, 0);
  EXPECT_FALSE(audit_one_shot(log.events()).conservation_ok);
}

TEST(AuditUnit, DetectsForeignRelease) {
  EventLog log;
  log.record(0, EventKind::kAcquire, 0);
  log.record(1, EventKind::kRelease);  // not the holder
  EXPECT_FALSE(audit_one_shot(log.events()).conservation_ok);
}

TEST(AuditUnit, DetectsStarvedAttempt) {
  EventLog log;
  log.record(0, EventKind::kDoorway, 0);
  log.record(1, EventKind::kDoorway, 1);  // p1 never acquires nor aborts
  log.record(0, EventKind::kAcquire, 0);
  log.record(0, EventKind::kRelease);
  const AuditReport r = audit_one_shot(log.events());
  EXPECT_FALSE(r.starvation_ok) << r.to_string();
  EXPECT_EQ(r.unresolved_attempts, 1u);
  EXPECT_FALSE(r.clean());
  // Resolving the attempt (even by abort) clears the finding.
  log.record(1, EventKind::kAbort);
  const AuditReport resolved = audit_one_shot(log.events());
  EXPECT_TRUE(resolved.starvation_ok) << resolved.to_string();
  EXPECT_EQ(resolved.unresolved_attempts, 0u);
}

TEST(AuditUnit, AbortBeforeDoorwayIsNotStarvation) {
  // A long-lived attempt may abort on the spin-node wait, before joining an
  // instance (no doorway event). The balance goes negative, not positive.
  EventLog log;
  log.record(0, EventKind::kAbort);
  const AuditReport r = audit_long_lived(log.events());
  EXPECT_TRUE(r.starvation_ok) << r.to_string();
}

TEST(AuditUnit, DoubleAcquireOnlyFlaggedForOneShot) {
  EventLog log;
  for (int round = 0; round < 2; ++round) {
    log.record(0, EventKind::kAcquire, 0);
    log.record(0, EventKind::kRelease);
  }
  EXPECT_FALSE(audit_one_shot(log.events()).conservation_ok);
  EXPECT_TRUE(audit_long_lived(log.events()).conservation_ok);
}

// End-to-end: audited one-shot runs across seeds and abort patterns.
TEST(AuditedExecution, OneShotHistoriesAreClean) {
  constexpr Pid kN = 24;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    CountingCcModel m(kN);
    core::OneShotLock<CountingCcModel> lock(m, kN, 4);
    const auto plans = plan_random_k(kN, 10, seed, AbortWhen::kOnIdle);
    std::deque<std::atomic<bool>> signals(kN);
    // Hold the first critical section behind a gate so the planned aborts
    // all happen while waiting (same device as the harness driver).
    auto* gate = m.alloc(1, 0);
    EventLog log;

    sched::StepScheduler sched(kN, {.seed = seed});
    std::size_t cursor = 0;
    bool gate_open = false;
    sched.set_idle_callback([&]() {
      while (cursor < kN) {
        const Pid p = static_cast<Pid>(cursor++);
        if (plans[p].when == AbortWhen::kOnIdle) {
          signals[p].store(true, std::memory_order_release);
          return true;
        }
      }
      if (!gate_open) {
        gate_open = true;
        m.poke(*gate, 1);
        return true;
      }
      return false;
    });
    m.set_hook(&sched);
    sched.run([&](Pid p) {
      const auto r = lock.enter(p, &signals[p]);
      log.record(p, EventKind::kDoorway, r.slot);
      if (r.acquired) {
        log.record(p, EventKind::kAcquire, r.slot);
        m.wait(
            p, *gate, [](std::uint64_t v) { return v != 0; }, nullptr);
        log.record(p, EventKind::kRelease);
        lock.exit(p);
      } else {
        log.record(p, EventKind::kAbort);
      }
    });
    m.set_hook(nullptr);

    const AuditReport report = audit_one_shot(log.events());
    EXPECT_TRUE(report.clean()) << "seed " << seed << ": "
                                << report.to_string();
    // Without an ordered doorway a marked process may draw slot 0 and
    // acquire before its signal is raised; everyone else marked aborts.
    EXPECT_GE(report.aborts, 9u);
    EXPECT_LE(report.aborts, 10u);
    EXPECT_EQ(report.acquires + report.aborts, 24u);
    EXPECT_EQ(report.doorways, 24u);
  }
}

TEST(AuditedExecution, LongLivedHistoriesConserve) {
  constexpr Pid kN = 6;
  CountingCcModel m(kN);
  core::LongLivedLock<CountingCcModel> lock(m, {.nprocs = kN, .w = 4});
  EventLog log;
  sched::StepScheduler sched(kN, {.seed = 9});
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    for (int round = 0; round < 5; ++round) {
      const auto r = lock.enter(p, nullptr);
      log.record(p, EventKind::kDoorway, r.slot);
      if (r.acquired) {
        log.record(p, EventKind::kAcquire);
        log.record(p, EventKind::kRelease);
        lock.exit(p);
      } else {
        log.record(p, EventKind::kAbort);
      }
    }
  });
  m.set_hook(nullptr);
  const AuditReport report = audit_long_lived(log.events());
  EXPECT_TRUE(report.mutex_ok) << report.to_string();
  EXPECT_TRUE(report.conservation_ok);
  EXPECT_TRUE(report.starvation_ok) << report.to_string();
  EXPECT_EQ(report.unresolved_attempts, 0u);
  EXPECT_EQ(report.acquires, kN * 5u);
}

}  // namespace
}  // namespace aml::harness
