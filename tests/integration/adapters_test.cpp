// The production-API adapters: RAII guards, TimerWheel deadlines, timed
// acquisition, thread registry, and the std::mutex-compatible facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "aml/core/adapters.hpp"
#include "aml/pal/threading.hpp"

namespace aml {
namespace {

using namespace std::chrono_literals;

TEST(LockGuardTest, EntersAndExits) {
  AbortableLock lock(LockConfig{.max_threads = 2});
  {
    LockGuard guard(lock, 0);
    // Holding: a raised try from another id must abort.
    AbortSignal sig;
    sig.raise();
    EXPECT_FALSE(lock.enter(1, sig));
  }
  // Released: id 1 can acquire now.
  lock.enter(1);
  lock.exit(1);
}

TEST(TryGuardTest, OwnsReflectsOutcome) {
  AbortableLock lock(LockConfig{.max_threads = 2});
  AbortSignal free_sig;
  TryGuard ok(lock, 0, free_sig);
  EXPECT_TRUE(ok.owns());
  AbortSignal raised;
  raised.raise();
  {
    TryGuard blocked(lock, 1, raised);
    EXPECT_FALSE(blocked.owns());
  }
}

namespace {
// Poll helper: the host may be single-core and loaded, so fixed sleeps are
// flaky; wait up to a generous budget for the wheel thread to act.
bool eventually(const aml::AbortSignal& sig,
                std::chrono::milliseconds budget = 3s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (sig.raised()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return sig.raised();
}
}  // namespace

TEST(TimerWheelTest, RaisesAtDeadline) {
  TimerWheel wheel;
  AbortSignal sig;
  wheel.arm(sig, TimerWheel::Clock::now() + 20ms);
  EXPECT_TRUE(eventually(sig));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelPreventsRaise) {
  TimerWheel wheel;
  AbortSignal sig;
  const auto token = wheel.arm(sig, TimerWheel::Clock::now() + 50ms);
  wheel.cancel(token);
  std::this_thread::sleep_for(80ms);
  EXPECT_FALSE(sig.raised());
}

TEST(TimerWheelTest, OrdersMultipleDeadlines) {
  TimerWheel wheel;
  AbortSignal early, late;
  wheel.arm(late, TimerWheel::Clock::now() + 60s);  // far future
  wheel.arm(early, TimerWheel::Clock::now() + 10ms);
  EXPECT_TRUE(eventually(early));
  EXPECT_FALSE(late.raised());
  EXPECT_EQ(wheel.pending(), 1u);  // the far deadline remains armed
}

// Earliest-fires-first under load: many deadlines armed in shuffled order
// with real spacing must raise strictly in deadline order. (The old wheel
// found the earliest by scanning the token map — ordering held but each
// wakeup was O(n); this pins the behavior the deadline index must keep.)
TEST(TimerWheelTest, EarliestFiresFirstUnderLoad) {
  constexpr int kSignals = 16;
  TimerWheel wheel;
  std::deque<AbortSignal> signals(kSignals);
  // Deadline i = base + i * spacing; armed in a shuffled order so insertion
  // order and fire order disagree everywhere.
  const auto base = TimerWheel::Clock::now() + 30ms;
  const auto spacing = 15ms;
  std::vector<int> arm_order;
  for (int i = 0; i < kSignals; ++i) arm_order.push_back(i);
  std::mt19937 shuffle_rng(1234);
  std::shuffle(arm_order.begin(), arm_order.end(), shuffle_rng);
  for (const int i : arm_order) {
    wheel.arm(signals[i], base + i * spacing);
  }

  // Observe the raise order by polling with a DESCENDING scan: if signal i
  // is seen raised at its scan instant, every j < i fired before i (wheel
  // order) and is scanned after i, so it must also read raised in the same
  // sweep. A gap below the highest raised index is therefore a race-free
  // witness of out-of-order firing.
  const auto poll_deadline =
      TimerWheel::Clock::now() + 30ms + kSignals * spacing + 3s;
  for (;;) {
    int highest = -1;
    for (int i = kSignals - 1; i >= 0; --i) {
      const bool raised = signals[i].raised();
      if (raised && highest < 0) highest = i;
      if (!raised && i < highest) {
        FAIL() << "deadline " << highest << " fired before deadline " << i;
      }
    }
    if (highest == kSignals - 1) break;  // all fired, in order throughout
    ASSERT_LT(TimerWheel::Clock::now(), poll_deadline)
        << "a deadline never fired";
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(wheel.pending(), 0u);
}

// Interleaved arm/cancel storm from several threads: every cancelled-early
// entry must stay unraised, every kept deadline must fire, and the wheel
// must end empty — exercising the deadline map + token index consistency.
TEST(TimerWheelTest, InterleavedArmCancelStress) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kPerThread = 64;
  TimerWheel wheel;
  std::deque<AbortSignal> kept(kThreads * kPerThread);
  std::deque<AbortSignal> cancelled(kThreads * kPerThread);

  pal::run_threads(kThreads, [&](std::uint32_t t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::size_t slot = t * kPerThread + i;
      // A near deadline we keep, and a far one we cancel immediately. The
      // pair lands on both sides of the wheel's current front, so cancels
      // hit front and interior entries alike.
      wheel.arm(kept[slot], TimerWheel::Clock::now() +
                                std::chrono::milliseconds(1 + (i % 7)));
      const auto token = wheel.arm(
          cancelled[slot], TimerWheel::Clock::now() + 60s + slot * 1ms);
      wheel.cancel(token);
    }
  });

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  for (std::size_t s = 0; s < kept.size(); ++s) {
    while (!kept[s].raised() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_TRUE(kept[s].raised()) << "kept deadline " << s << " never fired";
  }
  for (std::size_t s = 0; s < cancelled.size(); ++s) {
    EXPECT_FALSE(cancelled[s].raised()) << "cancelled entry " << s << " fired";
  }
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimedLockTest, SucceedsWhenFree) {
  TimedAbortableLock lock(LockConfig{.max_threads = 2});
  EXPECT_TRUE(lock.try_enter_for(0, 10ms));
  lock.exit(0);
}

TEST(TimedLockTest, TimesOutWhenHeld) {
  TimedAbortableLock lock(LockConfig{.max_threads = 2});
  lock.enter(0);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(lock.try_enter_for(1, 15ms));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 14ms);
  EXPECT_LT(elapsed, 2s);
  lock.exit(0);
  EXPECT_TRUE(lock.try_enter_for(1, 15ms));
  lock.exit(1);
}

TEST(TimedLockTest, ContendedTimedAttempts) {
  constexpr std::uint32_t kThreads = 4;
  TimedAbortableLock lock(LockConfig{.max_threads = kThreads});
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> wins{0}, timeouts{0};
  pal::run_threads(kThreads, [&](std::uint32_t t) {
    for (int i = 0; i < 50; ++i) {
      if (lock.try_enter_for(t, 500us)) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(t);
        wins.fetch_add(1);
      } else {
        timeouts.fetch_add(1);
      }
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(wins.load() + timeouts.load(), kThreads * 50u);
  EXPECT_GT(wins.load(), 0u);
}

TEST(ThreadRegistryTest, StableDenseIds) {
  ThreadRegistry registry(8);
  EXPECT_EQ(registry.id(), registry.id());  // stable within a thread
  std::vector<std::uint32_t> ids(4);
  pal::run_threads(4, [&](std::uint32_t t) { ids[t] = registry.id(); });
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_NE(ids[i - 1], ids[i]);  // distinct
    EXPECT_LT(ids[i], 8u);          // dense, within capacity
  }
}

TEST(ThreadRegistryTest, IndependentRegistries) {
  ThreadRegistry a(4), b(4);
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 0u);  // separate counters, same thread
}

TEST(StdAbortableMutexTest, WorksWithStdGuards) {
  StdAbortableMutex mutex(4);
  std::uint64_t counter = 0;
  pal::run_threads(4, [&](std::uint32_t) {
    for (int i = 0; i < 200; ++i) {
      std::lock_guard<StdAbortableMutex> guard(mutex);
      ++counter;
    }
  });
  EXPECT_EQ(counter, 800u);
}

TEST(StdAbortableMutexTest, TryLockSemantics) {
  StdAbortableMutex mutex(4);  // three distinct threads touch this mutex
  EXPECT_TRUE(mutex.try_lock());
  std::thread other([&] {
    // Held by the main thread: a try from another thread must fail fast.
    EXPECT_FALSE(mutex.try_lock());
  });
  other.join();
  mutex.unlock();
  std::thread third([&] {
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
  });
  third.join();
}

TEST(StdAbortableMutexTest, UniqueLockAdoptAndRelease) {
  StdAbortableMutex mutex(2);
  std::unique_lock<StdAbortableMutex> ul(mutex, std::defer_lock);
  EXPECT_FALSE(ul.owns_lock());
  ul.lock();
  EXPECT_TRUE(ul.owns_lock());
  ul.unlock();
  EXPECT_TRUE(ul.try_lock());
}

}  // namespace
}  // namespace aml
