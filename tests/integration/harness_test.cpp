// Harness components: table rendering, summary stats, workload plans, and
// end-to-end experiment plumbing consistency.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "aml/harness/rmr_experiment.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"
#include "aml/harness/workload.hpp"

namespace aml::harness {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table t("demo");
  t.headers({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "23456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("23456"), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  Table t("csv");
  t.headers({"a", "b"});
  t.row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, CsvSideFileViaEnv) {
  const std::string dir = ::testing::TempDir();
  ::setenv("AMLOCK_BENCH_CSV", dir.c_str(), 1);
  Table t("CSV side file: demo!");
  t.headers({"x", "y"});
  t.row({"1", "2"});
  t.print();  // writes <dir>/csv_side_file_demo_.csv
  ::unsetenv("AMLOCK_BENCH_CSV");
  std::ifstream in(dir + "/csv_side_file_demo_.csv");
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "x,y\n1,2\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

TEST(StatsTest, SummaryBasics) {
  const Summary s = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.p50, 3u);
}

TEST(StatsTest, EmptySummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
}

// Nearest-rank percentiles: rank = ceil(q*n), value = sorted[rank-1].
// The previous rounding formula (idx = q*(n-1)+0.5) put p50 of {10..100}
// at 60 instead of 50.
TEST(StatsTest, NearestRankPercentiles) {
  const Summary s = summarize({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  EXPECT_EQ(s.p50, 50u);
  EXPECT_EQ(s.p90, 90u);
  EXPECT_EQ(s.p99, 100u);
}

TEST(StatsTest, NearestRankSingleton) {
  const Summary s = summarize({7});
  EXPECT_EQ(s.p50, 7u);
  EXPECT_EQ(s.p90, 7u);
  EXPECT_EQ(s.p99, 7u);
}

TEST(StatsTest, NearestRankSmallN) {
  // n=4: p50 rank = ceil(0.5*4) = 2 -> second smallest; p90 and p99 both
  // land on rank 4 -> the max.
  const Summary s = summarize({4, 1, 3, 2});
  EXPECT_EQ(s.p50, 2u);
  EXPECT_EQ(s.p90, 4u);
  EXPECT_EQ(s.p99, 4u);
}

TEST(WorkloadTest, PlanBuilders) {
  EXPECT_EQ(plan_aborters(plan_none(8)), 0u);
  const auto first = plan_first_k(8, 3);
  EXPECT_EQ(plan_aborters(first), 3u);
  EXPECT_EQ(first[0].when, AbortWhen::kNever);
  EXPECT_EQ(first[3].when, AbortWhen::kOnIdle);
  EXPECT_EQ(first[4].when, AbortWhen::kNever);
  const auto allbut = plan_all_but(8, 5);
  EXPECT_EQ(plan_aborters(allbut), 7u);
  EXPECT_EQ(allbut[5].when, AbortWhen::kNever);
  const auto rand1 = plan_random_k(16, 7, 42);
  const auto rand2 = plan_random_k(16, 7, 42);
  EXPECT_EQ(plan_aborters(rand1), 7u);
  for (std::size_t i = 0; i < rand1.size(); ++i) {
    EXPECT_EQ(rand1[i].when, rand2[i].when) << "plan not deterministic";
  }
  EXPECT_EQ(rand1[0].when, AbortWhen::kNever);
}

TEST(ExperimentPlumbing, RecordsAndSummariesConsistent) {
  SinglePassOptions opts;
  opts.seed = 4;
  opts.plans = plan_first_k(16, 6, AbortWhen::kOnIdle);
  const RunResult r = oneshot_cc_run(16, 4, core::Find::kAdaptive, opts);
  EXPECT_EQ(r.records.size(), 16u);
  EXPECT_EQ(r.complete_summary().count, r.completed);
  EXPECT_EQ(r.aborted_summary().count, r.aborted);
  EXPECT_EQ(r.completed + r.aborted, 16u);
  // Slots are a permutation of 0..15 with ordered doorway.
  std::vector<bool> seen(16, false);
  for (const auto& rec : r.records) {
    EXPECT_FALSE(seen[rec.slot]);
    seen[rec.slot] = true;
    EXPECT_EQ(rec.slot, rec.pid);  // ordered doorway pins slot == pid
  }
}

TEST(ExperimentPlumbing, LongLivedAccounting) {
  LongLivedOptions opts;
  opts.n = 4;
  opts.w = 4;
  opts.rounds = 5;
  opts.abort_ppm = 300000;
  opts.seed = 8;
  const RunResult r = run_long_lived<core::VersionedSpace>(opts);
  EXPECT_EQ(r.records.size(), 20u);
  EXPECT_EQ(r.complete_summary().count, r.completed);
  EXPECT_EQ(r.aborted_summary().count, r.aborted);
}

}  // namespace
}  // namespace aml::harness
