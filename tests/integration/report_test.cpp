// BenchReport JSON emitter: schema shape, escaping, number rendering,
// determinism, and file output. Includes a minimal structural JSON checker
// (balanced braces/brackets outside strings, required keys in order) so the
// suite does not need a JSON library.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "aml/harness/report.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"

namespace aml::harness {
namespace {

// Structural check: every brace/bracket outside a string literal balances
// and the text ends exactly when the top-level value closes.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t end = std::string::npos;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth < 0) return false;
      if (depth == 0) end = i;
    }
  }
  if (in_string || depth != 0 || end == std::string::npos) return false;
  for (std::size_t i = end + 1; i < s.size(); ++i) {
    if (s[i] != '\n' && s[i] != ' ') return false;
  }
  return true;
}

TEST(JsonPrimitivesTest, Escaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonPrimitivesTest, Numbers) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-3.0), "-3");
  EXPECT_EQ(json_number(0.5), "0.5");
  // Non-finite values cannot appear in JSON.
  EXPECT_EQ(json_number(1.0 / 0.0), "0");
  EXPECT_EQ(json_number(0.0 / 0.0), "0");
}

TEST(BenchReportTest, SchemaKeysPresentInOrder) {
  BenchReport r("demo");
  r.config("n", std::uint64_t{8}).config("label", "hello");
  r.sample("rmrs", 3.0).sample("rmrs", 4.0);
  r.summary("max_rmr", std::uint64_t{4});
  Table t("tbl");
  t.headers({"a", "b"});
  t.row({"1", "2"});
  r.table(t);

  const std::string j = r.to_json();
  EXPECT_TRUE(json_balanced(j)) << j;
  const std::size_t bench = j.find("\"bench\"");
  const std::size_t rev = j.find("\"git_rev\"");
  const std::size_t config = j.find("\"config\"");
  const std::size_t samples = j.find("\"samples\"");
  const std::size_t summary = j.find("\"summary\"");
  const std::size_t tables = j.find("\"tables\"");
  ASSERT_NE(bench, std::string::npos);
  ASSERT_NE(rev, std::string::npos);
  ASSERT_NE(config, std::string::npos);
  ASSERT_NE(samples, std::string::npos);
  ASSERT_NE(summary, std::string::npos);
  ASSERT_NE(tables, std::string::npos);
  EXPECT_LT(bench, rev);
  EXPECT_LT(rev, config);
  EXPECT_LT(config, samples);
  EXPECT_LT(samples, summary);
  EXPECT_LT(summary, tables);

  EXPECT_NE(j.find("\"bench\": \"demo\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"rmrs\": [3, 4]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"max_rmr\": 4"), std::string::npos) << j;
  EXPECT_NE(j.find("\"headers\": [\"a\", \"b\"]"), std::string::npos) << j;
}

TEST(BenchReportTest, EmptyReportStillHasAllKeys) {
  const std::string j = BenchReport("empty").to_json();
  EXPECT_TRUE(json_balanced(j)) << j;
  for (const char* key :
       {"\"bench\"", "\"git_rev\"", "\"config\"", "\"samples\"",
        "\"summary\"", "\"tables\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
}

TEST(BenchReportTest, SummaryExpansion) {
  BenchReport r("sum");
  r.summary("rmr", summarize({1, 2, 3, 4, 5}));
  const std::string j = r.to_json();
  for (const char* key :
       {"\"rmr_count\": 5", "\"rmr_min\": 1", "\"rmr_max\": 5",
        "\"rmr_mean\": 3", "\"rmr_p50\": 3"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing in " << j;
  }
}

TEST(BenchReportTest, DeterministicEmission) {
  auto build = [] {
    BenchReport r("det");
    r.config("seed", std::uint64_t{42}).config("w", std::uint64_t{8});
    r.samples("xs", std::vector<std::uint64_t>{7, 8, 9});
    r.sample("ys", 2.25);
    r.summary("total", std::uint64_t{24});
    return r.to_json();
  };
  EXPECT_EQ(build(), build());
}

TEST(BenchReportTest, SamplesAppendToExistingSeries) {
  BenchReport r("series");
  r.sample("a", 1.0);
  r.sample("b", 10.0);
  r.sample("a", 2.0);
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"a\": [1, 2]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"b\": [10]"), std::string::npos) << j;
}

TEST(BenchReportTest, WriteHonorsBenchDirEnv) {
  const std::string dir = ::testing::TempDir();
  ::setenv("AMLOCK_BENCH_DIR", dir.c_str(), 1);
  BenchReport r("write_demo");
  r.config("n", std::uint64_t{4});
  const std::string path = r.write();
  ::unsetenv("AMLOCK_BENCH_DIR");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_write_demo.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), r.to_json());
  EXPECT_TRUE(json_balanced(content.str()));
}

TEST(BenchReportTest, GitRevNeverEmpty) {
  EXPECT_FALSE(git_rev().empty());
}

TEST(BenchReportTest, TableArchivedVerbatim) {
  Table t("Claim 1 — demo");
  t.headers({"N", "max RMR"});
  t.row({"8", "12"});
  t.row({"16", "13"});
  BenchReport r("tab");
  r.table(t);
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"title\": \"Claim 1 — demo\""), std::string::npos) << j;
  EXPECT_NE(j.find("[\"16\", \"13\"]"), std::string::npos) << j;
}

}  // namespace
}  // namespace aml::harness
