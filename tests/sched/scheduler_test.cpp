// Deterministic scheduler: determinism per seed, policy control, blocking
// semantics, idle callbacks, and signal-driven wakeups.
#include "aml/sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <utility>
#include <vector>

#include "aml/model/counting_cc.hpp"

namespace aml::sched {
namespace {

using model::CountingCcModel;
using model::Pid;

TEST(Scheduler, CountsOneStepPerOperation) {
  CountingCcModel m(4);
  auto* w = m.alloc(1, 0);
  StepScheduler sched(4, {.seed = 1});
  m.set_hook(&sched);
  auto result = sched.run([&](Pid p) { m.faa(p, *w, 1); });
  m.set_hook(nullptr);
  EXPECT_EQ(result.steps, 4u);
  EXPECT_EQ(m.peek(*w), 4u);
}

TEST(Scheduler, SameSeedSameTrace) {
  auto trace_for = [](std::uint64_t seed) {
    CountingCcModel m(5);
    auto* w = m.alloc(1, 0);
    StepScheduler::Config cfg;
    cfg.seed = seed;
    cfg.record_trace = true;
    StepScheduler sched(5, std::move(cfg));
    m.set_hook(&sched);
    auto result = sched.run([&](Pid p) {
      for (int i = 0; i < 10; ++i) m.faa(p, *w, 1);
    });
    m.set_hook(nullptr);
    return result.trace;
  };
  const auto t1 = trace_for(42);
  const auto t2 = trace_for(42);
  const auto t3 = trace_for(43);
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, t3);
  EXPECT_EQ(t1.size(), 50u);
}

TEST(Scheduler, RoundRobinCycles) {
  CountingCcModel m(3);
  auto* w = m.alloc(1, 0);
  StepScheduler::Config cfg;
  cfg.policy = policies::round_robin();
  cfg.record_trace = true;
  StepScheduler sched(3, std::move(cfg));
  m.set_hook(&sched);
  auto result = sched.run([&](Pid p) {
    for (int i = 0; i < 3; ++i) m.faa(p, *w, 1);
  });
  m.set_hook(nullptr);
  // With everyone always runnable, round robin yields 0,1,2,0,1,2,...
  ASSERT_EQ(result.trace.size(), 9u);
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace[i], i % 3);
  }
}

TEST(Scheduler, ScriptPolicyRunsSegmentsExactly) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 0);
  StepScheduler::Config cfg;
  cfg.policy = policies::script({{1, 3}, {0, 2}}, policies::round_robin());
  cfg.record_trace = true;
  StepScheduler sched(2, std::move(cfg));
  m.set_hook(&sched);
  auto result = sched.run([&](Pid p) {
    for (int i = 0; i < 4; ++i) m.faa(p, *w, 1);
  });
  m.set_hook(nullptr);
  const std::vector<Pid> expected{1, 1, 1, 0, 0, /* fallback rr: */ 0, 1, 0};
  ASSERT_EQ(result.trace.size(), 8u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.trace[i], expected[i]) << "i=" << i;
  }
}

TEST(Scheduler, PreferPolicyStarvesOthersWhileRunnable) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 0);
  StepScheduler::Config cfg;
  cfg.policy = policies::prefer({1, 0});
  cfg.record_trace = true;
  StepScheduler sched(2, std::move(cfg));
  m.set_hook(&sched);
  auto result = sched.run([&](Pid p) {
    for (int i = 0; i < 5; ++i) m.faa(p, *w, 1);
  });
  m.set_hook(nullptr);
  // Process 1 runs all its steps first.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(result.trace[i], 1u);
  for (int i = 5; i < 10; ++i) EXPECT_EQ(result.trace[i], 0u);
}

TEST(Scheduler, ReplayPolicyReproducesTrace) {
  auto run_once = [](sched::Policy policy, bool record) {
    CountingCcModel m(3);
    auto* w = m.alloc(1, 0);
    StepScheduler::Config cfg;
    cfg.policy = std::move(policy);
    cfg.record_trace = record;
    StepScheduler sched(3, std::move(cfg));
    m.set_hook(&sched);
    std::vector<std::uint64_t> observed;
    std::mutex mu;
    auto result = sched.run([&](Pid p) {
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t v = m.faa(p, *w, 1);
        std::lock_guard<std::mutex> guard(mu);
        observed.push_back(v);
      }
    });
    m.set_hook(nullptr);
    return std::make_pair(result.trace, observed);
  };
  // Record a random run, then replay its trace: the observed F&A return
  // values (the execution's data flow) must be identical.
  auto [trace, observed1] = run_once(policies::random(), true);
  ASSERT_EQ(trace.size(), 12u);
  auto [_, observed2] =
      run_once(policies::replay(trace, policies::round_robin()), false);
  EXPECT_EQ(observed1, observed2);
}

TEST(Scheduler, BlockedProcessWakesOnWrite) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 0);
  StepScheduler sched(2, {.seed = 3});
  m.set_hook(&sched);
  std::atomic<bool> woke{false};
  sched.run([&](Pid p) {
    if (p == 0) {
      auto out = m.wait(
          0, *w, [](std::uint64_t v) { return v == 1; }, nullptr);
      EXPECT_EQ(out.value, 1u);
      woke.store(true);
    } else {
      m.write(1, *w, 1);
    }
  });
  m.set_hook(nullptr);
  EXPECT_TRUE(woke.load());
}

TEST(Scheduler, IdleCallbackUnblocksViaPoke) {
  CountingCcModel m(1);
  auto* w = m.alloc(1, 0);
  StepScheduler sched(1, {.seed = 4});
  bool idled = false;
  sched.set_idle_callback([&] {
    if (idled) return false;
    idled = true;
    m.poke(*w, 9);
    return true;
  });
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    auto out = m.wait(
        p, *w, [](std::uint64_t v) { return v == 9; }, nullptr);
    EXPECT_EQ(out.value, 9u);
  });
  m.set_hook(nullptr);
  EXPECT_TRUE(idled);
}

TEST(Scheduler, StopFlagWakesBlockedProcess) {
  CountingCcModel m(1);
  auto* w = m.alloc(1, 0);
  std::atomic<bool> stop{false};
  StepScheduler sched(1, {.seed = 5});
  sched.set_idle_callback([&] {
    if (stop.load()) return false;
    stop.store(true);
    return true;
  });
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    auto out = m.wait(
        p, *w, [](std::uint64_t v) { return v != 0; }, &stop);
    EXPECT_TRUE(out.stopped);
  });
  m.set_hook(nullptr);
}

TEST(Scheduler, StepCallbackSeesMonotoneSteps) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 0);
  StepScheduler sched(2, {.seed = 6});
  std::uint64_t last = 0;
  std::uint64_t calls = 0;
  sched.set_step_callback([&](std::uint64_t step) {
    EXPECT_GE(step, last);
    last = step;
    ++calls;
  });
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    for (int i = 0; i < 7; ++i) m.faa(p, *w, 1);
  });
  m.set_hook(nullptr);
  EXPECT_EQ(calls, 14u);
}

TEST(Scheduler, ManyProcessesComplete) {
  constexpr Pid kN = 64;
  CountingCcModel m(kN);
  auto* w = m.alloc(1, 0);
  StepScheduler sched(kN, {.seed = 7});
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    for (int i = 0; i < 5; ++i) m.faa(p, *w, 1);
  });
  m.set_hook(nullptr);
  EXPECT_EQ(m.peek(*w), kN * 5u);
}

}  // namespace
}  // namespace aml::sched
