// Bounded-exhaustive schedule exploration: sanity of the enumeration, its
// bug-finding power on a known-racy program, and exhaustive verification of
// the paper's algorithms at small sizes.
#include "aml/sched/explorer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>

#include "aml/core/oneshot.hpp"
#include "aml/core/longlived.hpp"
#include "aml/model/counting_cc.hpp"

namespace aml::sched {
namespace {

using model::CountingCcModel;
using model::Pid;

TEST(Explorer, EnumeratesMoreThanOneSchedule) {
  ExploreConfig cfg;
  cfg.nprocs = 2;
  cfg.preemption_bound = 2;
  std::uint64_t runs = 0;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingCcModel m(2);
    auto* w = m.alloc(1, 0);
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      m.faa(p, *w, 1);
      m.faa(p, *w, 1);
    });
    m.set_hook(nullptr);
    EXPECT_EQ(m.peek(*w), 4u);
    ++runs;
  });
  EXPECT_EQ(stats.executions, runs);
  EXPECT_GT(stats.executions, 1u);
  EXPECT_FALSE(stats.truncated);
}

TEST(Explorer, ZeroPreemptionBoundGivesSequentialSchedules) {
  // With budget 0 a process runs to its next block/done before anyone else:
  // for two straight-line processes that is exactly 2 executions at the
  // single forced switch... plus the initial choice of who starts.
  ExploreConfig cfg;
  cfg.nprocs = 2;
  cfg.preemption_bound = 0;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingCcModel m(2);
    auto* w = m.alloc(1, 0);
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      m.faa(p, *w, 1);
      m.faa(p, *w, 1);
    });
    m.set_hook(nullptr);
  });
  // First decision: either process may start (the "default" is p0; the
  // alternative p1 is not a preemption because nothing ran before).
  EXPECT_EQ(stats.executions, 2u);
}

TEST(Explorer, FindsLostUpdateRace) {
  // Unsynchronized read-modify-write: some interleaving must lose an update.
  ExploreConfig cfg;
  cfg.nprocs = 2;
  cfg.preemption_bound = 1;
  bool lost_update_seen = false;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingCcModel m(2);
    auto* w = m.alloc(1, 0);
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      const std::uint64_t v = m.read(p, *w);  // racy load
      m.write(p, *w, v + 1);                  // racy store
    });
    m.set_hook(nullptr);
    if (m.peek(*w) != 2) lost_update_seen = true;
  });
  EXPECT_TRUE(lost_update_seen) << "executions: " << stats.executions;
}

TEST(Explorer, TasLockFixesTheRace) {
  // The same increment protected by CAS-acquire never loses an update, in
  // every explored schedule.
  ExploreConfig cfg;
  cfg.nprocs = 2;
  cfg.preemption_bound = 2;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingCcModel m(2);
    auto* lock = m.alloc(1, 0);
    auto* w = m.alloc(1, 0);
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      while (!m.cas(p, *lock, 0, 1)) {
        m.wait(
            p, *lock, [](std::uint64_t v) { return v == 0; }, nullptr);
      }
      const std::uint64_t v = m.read(p, *w);
      m.write(p, *w, v + 1);
      m.write(p, *lock, 0);
    });
    m.set_hook(nullptr);
    ASSERT_EQ(m.peek(*w), 2u);
  });
  EXPECT_GT(stats.executions, 2u);
}

// Exhaustive (preemption-bounded) verification of the one-shot lock at
// N = 2 with one ghost aborter controlling *when* the abort signal lands
// relative to every shared-memory step.
TEST(Explorer, OneShotLockExhaustiveWithAbortTiming) {
  ExploreConfig cfg;
  cfg.nprocs = 3;  // p0, p1 compete; p2 is the ghost signal-raiser
  cfg.preemption_bound = 2;
  cfg.max_executions = 150000;
  std::uint64_t aborted_runs = 0, dual_complete_runs = 0;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingCcModel m(3);
    core::OneShotLock<CountingCcModel> lock(m, 2, 2);
    auto* ghost_trigger = m.alloc(1, 0);
    std::deque<std::atomic<bool>> sig(1);
    std::atomic<int> in_cs{0};
    bool violation = false;
    bool ok[2] = {false, false};
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      if (p == 2) {
        // Ghost: one schedulable step, then raise p1's abort signal.
        m.read(2, *ghost_trigger);
        sig[0].store(true, std::memory_order_release);
        return;
      }
      const auto r =
          lock.enter(p, p == 1 ? &sig[0] : nullptr);
      ok[p] = r.acquired;
      if (r.acquired) {
        if (in_cs.fetch_add(1) != 0) violation = true;
        in_cs.fetch_sub(1);
        lock.exit(p);
      }
    });
    m.set_hook(nullptr);
    ASSERT_FALSE(violation);
    ASSERT_TRUE(ok[0] || ok[1]);  // someone always gets in
    // p0 never has a signal: it must always complete.
    ASSERT_TRUE(ok[0]);
    if (!ok[1]) ++aborted_runs;
    if (ok[0] && ok[1]) ++dual_complete_runs;
  });
  EXPECT_FALSE(stats.truncated);
  // The abort timing enumeration must produce both outcomes for p1.
  EXPECT_GT(aborted_runs, 0u);
  EXPECT_GT(dual_complete_runs, 0u);
}

// Exhaustive check of the Tree's crossed-paths semantics at N=4, W=2 with
// one concurrent remover pair: FindNext(0) must always return something
// consistent (slot in range, TOP, or BOTTOM) and never crash an invariant.
TEST(Explorer, TreeFindNextVsRemoversExhaustive) {
  ExploreConfig cfg;
  cfg.nprocs = 3;
  cfg.preemption_bound = 2;
  std::uint64_t tops = 0, founds = 0;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingCcModel m(3);
    core::Tree<CountingCcModel> tree(m, 4, 2);
    core::FindResult result{};
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      if (p == 0) {
        result = tree.find_next(0, 0);
      } else if (p == 1) {
        tree.remove(1, 2);
        tree.remove(1, 3);
      } else {
        tree.remove(2, 1);
      }
    });
    m.set_hook(nullptr);
    if (result.is_found()) {
      ++founds;
      ASSERT_GT(result.slot, 0u);
      ASSERT_LT(result.slot, 4u);
    } else if (result.is_top()) {
      ++tops;
    } else {
      // BOTTOM: legal only because every slot > 0 has a remover.
    }
  });
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(founds, 0u);
  EXPECT_GT(tops, 0u) << "crossed-paths never explored?! executions="
                      << stats.executions;
}

// The long-lived transformation survives exhaustive small-scale exploration:
// 2 processes x 2 rounds with instance switching in between.
TEST(Explorer, LongLivedTwoRoundsExhaustive) {
  ExploreConfig cfg;
  cfg.nprocs = 2;
  cfg.preemption_bound = 2;
  cfg.max_executions = 200000;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingCcModel m(2);
    core::LongLivedLock<CountingCcModel> lock(m, {.nprocs = 2, .w = 2});
    std::atomic<int> in_cs{0};
    bool violation = false;
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      for (int round = 0; round < 2; ++round) {
        const bool ok = lock.enter(p, nullptr).acquired;
        ASSERT_TRUE(ok);
        if (in_cs.fetch_add(1) != 0) violation = true;
        in_cs.fetch_sub(1);
        lock.exit(p);
      }
    });
    m.set_hook(nullptr);
    ASSERT_FALSE(violation);
  });
  EXPECT_GT(stats.executions, 10u);
}

// Long-lived lock with an abort-timing ghost: every placement of the abort
// signal relative to every shared-memory step of a 2-process, 2-round
// workload. The marked process may abort or complete depending on timing;
// the unmarked process always completes; mutual exclusion always holds; and
// the lock is reusable after every outcome.
TEST(Explorer, LongLivedAbortTimingExhaustive) {
  ExploreConfig cfg;
  cfg.nprocs = 3;  // p0 unmarked, p1 marked, p2 ghost
  cfg.preemption_bound = 1;
  cfg.max_executions = 200000;
  std::uint64_t p1_aborts = 0, p1_completes = 0;
  const ExploreStats stats = explore(cfg, [&](ExecutionContext& ctx) {
    CountingCcModel m(3);
    core::LongLivedLock<CountingCcModel> lock(m, {.nprocs = 3, .w = 2});
    auto* trigger = m.alloc(1, 0);
    std::deque<std::atomic<bool>> sig(1);
    std::atomic<int> in_cs{0};
    bool violation = false;
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      if (p == 2) {
        m.read(2, *trigger);  // one schedulable step, then raise
        sig[0].store(true, std::memory_order_release);
        return;
      }
      for (int round = 0; round < 2; ++round) {
        const bool marked = (p == 1 && round == 0);
        const bool ok = lock.enter(p, marked ? &sig[0] : nullptr).acquired;
        ASSERT_TRUE(ok || marked);
        if (ok) {
          if (in_cs.fetch_add(1) != 0) violation = true;
          in_cs.fetch_sub(1);
          lock.exit(p);
        }
        if (p == 1 && round == 0) {
          (ok ? p1_completes : p1_aborts)++;
          sig[0].store(false, std::memory_order_release);
        }
      }
    });
    m.set_hook(nullptr);
    ASSERT_FALSE(violation);
  });
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(p1_aborts, 0u);
  EXPECT_GT(p1_completes, 0u);
}

}  // namespace
}  // namespace aml::sched
