// The read/write-only Peterson-tournament (Yang-Anderson-class) lock, and
// the wait_either primitive it depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>

#include "aml/baselines/yang_anderson.hpp"
#include "aml/harness/rmr_experiment.hpp"
#include "aml/model/native.hpp"
#include "aml/pal/threading.hpp"
#include "aml/sched/explorer.hpp"

namespace aml::baselines {
namespace {

using model::CountingCcModel;
using model::NativeModel;
using model::Pid;

TEST(WaitEither, ReturnsOnFirstPredicate) {
  CountingCcModel m(1);
  auto* a = m.alloc(1, 0);
  auto* b = m.alloc(1, 1);
  auto out = m.wait_either(
      0, *a, [](std::uint64_t v) { return v == 0; }, *b,
      [](std::uint64_t) { return false; }, nullptr);
  EXPECT_FALSE(out.stopped);
  EXPECT_EQ(out.value1, 0u);
}

TEST(WaitEither, ReturnsOnSecondPredicate) {
  CountingCcModel m(1);
  auto* a = m.alloc(1, 1);
  auto* b = m.alloc(1, 7);
  auto out = m.wait_either(
      0, *a, [](std::uint64_t v) { return v == 0; }, *b,
      [](std::uint64_t v) { return v == 7; }, nullptr);
  EXPECT_FALSE(out.stopped);
  EXPECT_EQ(out.value2, 7u);
}

TEST(WaitEither, WakesOnEitherWordUnderScheduler) {
  for (int which = 0; which < 2; ++which) {
    CountingCcModel m(2);
    auto* a = m.alloc(1, 1);
    auto* b = m.alloc(1, 1);
    sched::StepScheduler sched(2, {.seed = 3u + which});
    m.set_hook(&sched);
    bool woke = false;
    sched.run([&](Pid p) {
      if (p == 0) {
        auto out = m.wait_either(
            0, *a, [](std::uint64_t v) { return v == 0; }, *b,
            [](std::uint64_t v) { return v == 0; }, nullptr);
        EXPECT_FALSE(out.stopped);
        woke = true;
      } else {
        m.write(1, which == 0 ? *a : *b, 0);
      }
    });
    m.set_hook(nullptr);
    EXPECT_TRUE(woke) << "which=" << which;
  }
}

TEST(WaitEither, StopWinsWhenNeitherHolds) {
  CountingCcModel m(1);
  auto* a = m.alloc(1, 1);
  auto* b = m.alloc(1, 1);
  std::atomic<bool> stop{true};
  auto out = m.wait_either(
      0, *a, [](std::uint64_t v) { return v == 0; }, *b,
      [](std::uint64_t v) { return v == 0; }, &stop);
  EXPECT_TRUE(out.stopped);
}

TEST(YangAnderson, MutexUnderScheduler) {
  for (std::uint32_t n : {2u, 3u, 8u, 16u, 32u}) {
    harness::SinglePassOptions opts;
    opts.seed = n;
    opts.gate_cs = false;
    const auto r = harness::single_pass_with<CountingCcModel>(
        n,
        [n](CountingCcModel& m) {
          return std::make_unique<YangAndersonLock<CountingCcModel>>(m, n);
        },
        opts);
    EXPECT_TRUE(r.mutex_ok) << "n=" << n;
    EXPECT_EQ(r.completed, n);
    // O(log N) shape: each of the ceil(log2 N) levels costs O(1).
    EXPECT_LE(r.complete_summary().max, 8u * pal::ceil_log(n, 2) + 8u);
  }
}

TEST(YangAnderson, AbortsUnderScheduler) {
  for (std::uint64_t seed = 40; seed <= 46; ++seed) {
    harness::SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = harness::plan_random_k(16, 8, seed,
                                        harness::AbortWhen::kOnIdle);
    const auto r = harness::single_pass_with<CountingCcModel>(
        16,
        [](CountingCcModel& m) {
          return std::make_unique<YangAndersonLock<CountingCcModel>>(m, 16);
        },
        opts);
    EXPECT_TRUE(r.mutex_ok) << "seed=" << seed;
    EXPECT_EQ(r.completed + r.aborted, 16u);
    EXPECT_GE(r.completed, 8u);
  }
}

TEST(YangAnderson, NativeStress) {
  constexpr Pid kN = 6;
  NativeModel m(kN);
  YangAndersonLock<NativeModel> lock(m, kN);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> entries{0};
  pal::run_threads(kN, [&](std::uint32_t t) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(lock.enter(t, nullptr));
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(t);
      entries.fetch_add(1);
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(entries.load(), kN * 200u);
}

TEST(YangAnderson, NativeAborts) {
  constexpr Pid kN = 4;
  NativeModel m(kN);
  YangAndersonLock<NativeModel> lock(m, kN);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  pal::run_threads(kN, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t * 13 + 1);
    std::deque<std::atomic<bool>> sig(1);
    for (int i = 0; i < 200; ++i) {
      sig[0].store(rng.chance_ppm(300000), std::memory_order_release);
      if (lock.enter(t, &sig[0])) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(t);
      }
    }
  });
  EXPECT_FALSE(violation.load());
}

// Exhaustive 2-process Peterson-node verification via the explorer.
TEST(YangAnderson, TwoProcessExhaustive) {
  sched::ExploreConfig cfg;
  cfg.nprocs = 2;
  cfg.preemption_bound = 3;
  const auto stats = sched::explore(cfg, [&](sched::ExecutionContext& ctx) {
    CountingCcModel m(2);
    YangAndersonLock<CountingCcModel> lock(m, 2);
    std::atomic<int> in_cs{0};
    bool violation = false;
    m.set_hook(&ctx.scheduler());
    ctx.run([&](Pid p) {
      ASSERT_TRUE(lock.enter(p, nullptr));
      if (in_cs.fetch_add(1) != 0) violation = true;
      in_cs.fetch_sub(1);
      lock.exit(p);
    });
    m.set_hook(nullptr);
    ASSERT_FALSE(violation);
  });
  EXPECT_GT(stats.executions, 10u);
  EXPECT_FALSE(stats.truncated);
}

}  // namespace
}  // namespace aml::baselines
