// Baselines on native hardware: free-running mutual-exclusion stress for
// every lock, abort storms for the abortable ones.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>

#include "aml/baselines/baselines.hpp"
#include "aml/model/native.hpp"
#include "aml/pal/rng.hpp"
#include "aml/pal/threading.hpp"

namespace aml::baselines {
namespace {

using model::NativeModel;
using model::Pid;

template <typename Lock>
void stress_rounds(Lock& lock, Pid n, int rounds) {
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> entries{0};
  pal::run_threads(n, [&](std::uint32_t t) {
    for (int i = 0; i < rounds; ++i) {
      ASSERT_TRUE(lock.enter(t, nullptr));
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(t);
      entries.fetch_add(1);
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(entries.load(), n * static_cast<std::uint64_t>(rounds));
}

TEST(BaselinesNative, Mcs) {
  NativeModel m(4);
  McsLock<NativeModel> lock(m, 4);
  stress_rounds(lock, 4, 500);
}

TEST(BaselinesNative, Clh) {
  NativeModel m(4);
  ClhLock<NativeModel> lock(m, 4);
  stress_rounds(lock, 4, 500);
}

TEST(BaselinesNative, Ticket) {
  NativeModel m(4);
  TicketLock<NativeModel> lock(m, 4);
  stress_rounds(lock, 4, 500);
}

TEST(BaselinesNative, Tas) {
  NativeModel m(4);
  TasLock<NativeModel> lock(m, 4);
  stress_rounds(lock, 4, 500);
}

TEST(BaselinesNative, Tournament) {
  NativeModel m(6);
  TournamentAbortableLock<NativeModel> lock(m, 6);
  stress_rounds(lock, 6, 300);
}

TEST(BaselinesNative, TournamentWithAborts) {
  constexpr Pid kN = 6;
  NativeModel m(kN);
  TournamentAbortableLock<NativeModel> lock(m, kN);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  pal::run_threads(kN, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t + 1);
    std::deque<std::atomic<bool>> sig(1);
    for (int i = 0; i < 300; ++i) {
      sig[0].store(rng.chance_ppm(250000), std::memory_order_release);
      if (lock.enter(t, &sig[0])) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(t);
      }
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(BaselinesNative, ScottSinglePassWithAborts) {
  constexpr Pid kN = 8;
  NativeModel m(kN);
  ScottAbortableLock<NativeModel> lock(m, kN, 64);
  std::deque<std::atomic<bool>> signals(kN);
  for (Pid p = 1; p < kN; p += 2) signals[p].store(true);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<int> outcomes{0};
  pal::run_threads(kN, [&](std::uint32_t t) {
    if (lock.enter(t, &signals[t])) {
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(t);
    }
    outcomes.fetch_add(1);
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(outcomes.load(), kN);
}

TEST(BaselinesNative, Jayanti) {
  NativeModel m(4);
  JayantiAbortableLock<NativeModel> lock(m, 4);
  stress_rounds(lock, 4, 500);
}

TEST(BaselinesNative, JayantiAbortReviveRecycleSequential) {
  // Deterministic walk through every node state transition: abort leaves a
  // kAbandoned node, revival resumes the old queue position, a successor's
  // claim recycles an abandoned node, and a failed revival re-enqueues.
  NativeModel m(2);
  JayantiAbortableLock<NativeModel> lock(m, 2);
  std::atomic<bool> raised{true};

  // Round 1: p0 holds; p1's attempt sees the raised signal and abandons.
  ASSERT_TRUE(lock.enter(0, nullptr));
  EXPECT_FALSE(lock.enter(1, &raised));
  lock.exit(0);
  // Revival: p1's node is still queued behind p0's released node.
  ASSERT_TRUE(lock.enter(1, nullptr));
  lock.exit(1);

  // Round 2: p1 abandons again behind the holder; this time p0 re-enters
  // first and its walk claims (recycles) the abandoned node.
  ASSERT_TRUE(lock.enter(0, nullptr));
  EXPECT_FALSE(lock.enter(1, &raised));
  lock.exit(0);
  ASSERT_TRUE(lock.enter(0, nullptr));
  lock.exit(0);
  // Failed revival: p1 finds its node recycled and enqueues it afresh.
  ASSERT_TRUE(lock.enter(1, nullptr));
  lock.exit(1);

  // Everything still works afterwards.
  ASSERT_TRUE(lock.enter(0, nullptr));
  lock.exit(0);
}

TEST(BaselinesNative, JayantiWithAborts) {
  constexpr Pid kN = 6;
  NativeModel m(kN);
  JayantiAbortableLock<NativeModel> lock(m, kN);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> grants{0};
  pal::run_threads(kN, [&](std::uint32_t t) {
    pal::Xoshiro256 rng(t + 7);
    std::deque<std::atomic<bool>> sig(1);
    for (int i = 0; i < 300; ++i) {
      sig[0].store(rng.chance_ppm(250000), std::memory_order_release);
      if (lock.enter(t, &sig[0])) {
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lock.exit(t);
        grants.fetch_add(1);
      }
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_GE(grants.load(), 1u);
}

TEST(BaselinesNative, LeeSinglePassWithAborts) {
  constexpr Pid kN = 8;
  NativeModel m(kN);
  LeeStyleAbortableLock<NativeModel> lock(m, kN, 64);
  std::deque<std::atomic<bool>> signals(kN);
  for (Pid p = 2; p < kN; p += 3) signals[p].store(true);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::atomic<int> outcomes{0};
  pal::run_threads(kN, [&](std::uint32_t t) {
    if (lock.enter(t, &signals[t])) {
      if (in_cs.fetch_add(1) != 0) violation.store(true);
      in_cs.fetch_sub(1);
      lock.exit(t);
    }
    outcomes.fetch_add(1);
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(outcomes.load(), kN);
}

}  // namespace
}  // namespace aml::baselines
