// Baseline locks under the deterministic scheduler: mutual exclusion and
// (for the abortable ones) abort correctness, plus their Table 1 RMR cost
// signatures on the counting CC model.
#include <gtest/gtest.h>

#include "aml/baselines/baselines.hpp"
#include "aml/harness/rmr_experiment.hpp"

namespace aml::harness {
namespace {

using model::CountingCcModel;

template <typename Lock>
RunResult run_baseline(std::uint32_t n, const SinglePassOptions& opts) {
  return single_pass_with<CountingCcModel>(
      n,
      [n](CountingCcModel& m) {
        return std::make_unique<Lock>(m, n);
      },
      opts);
}

template <typename Lock>
RunResult run_baseline_budget(std::uint32_t n,
                              const SinglePassOptions& opts) {
  return single_pass_with<CountingCcModel>(
      n,
      [n](CountingCcModel& m) {
        return std::make_unique<Lock>(m, n, /*max_attempts=*/4 * n + 16);
      },
      opts);
}

TEST(BaselinesSched, McsMutexAndConstantRmr) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.gate_cs = false;
    const auto r =
        run_baseline<baselines::McsLock<CountingCcModel>>(16, opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed, 16u);
    for (const auto& rec : r.records) EXPECT_LE(rec.rmr_total(), 8u);
  }
}

TEST(BaselinesSched, ClhMutexAndConstantRmr) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.gate_cs = false;
    const auto r =
        run_baseline<baselines::ClhLock<CountingCcModel>>(16, opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed, 16u);
    for (const auto& rec : r.records) EXPECT_LE(rec.rmr_total(), 6u);
  }
}

TEST(BaselinesSched, TicketMutexButLinearRmr) {
  SinglePassOptions opts;
  opts.seed = 2;
  opts.gate_cs = false;
  const auto r =
      run_baseline<baselines::TicketLock<CountingCcModel>>(32, opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed, 32u);
  // Broadcast spin: somebody pays many RMRs.
  EXPECT_GE(r.complete_summary().max, 16u);
}

TEST(BaselinesSched, TasMutexAndAborts) {
  SinglePassOptions opts;
  opts.seed = 3;
  opts.plans = plan_first_k(12, 5, AbortWhen::kOnIdle);
  const auto r =
      run_baseline<baselines::TasLock<CountingCcModel>>(12, opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed + r.aborted, 12u);
  EXPECT_GE(r.completed, 7u);
}

TEST(BaselinesSched, TournamentMutexNoAborts) {
  for (std::uint32_t n : {2u, 3u, 8u, 16u, 31u}) {
    SinglePassOptions opts;
    opts.seed = n;
    opts.gate_cs = false;
    const auto r =
        run_baseline<baselines::TournamentAbortableLock<CountingCcModel>>(
            n, opts);
    EXPECT_TRUE(r.mutex_ok) << "n=" << n;
    EXPECT_EQ(r.completed, n);
  }
}

TEST(BaselinesSched, TournamentAborts) {
  for (std::uint64_t seed = 10; seed <= 16; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = plan_random_k(16, 9, seed, AbortWhen::kOnIdle);
    const auto r =
        run_baseline<baselines::TournamentAbortableLock<CountingCcModel>>(
            16, opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed + r.aborted, 16u);
    EXPECT_GE(r.completed, 7u);  // non-aborters complete
  }
}

TEST(BaselinesSched, ScottMutexAndAborts) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = plan_random_k(16, 8, seed, AbortWhen::kOnIdle);
    const auto r =
        run_baseline_budget<baselines::ScottAbortableLock<CountingCcModel>>(
            16, opts);
    EXPECT_TRUE(r.mutex_ok);
    // Scott's queue order is decided by the SWAP, not by the first shared
    // op, so a marked process can become the queue head and acquire before
    // its signal is raised; every other marked process aborts.
    EXPECT_EQ(r.completed + r.aborted, 16u);
    EXPECT_GE(r.aborted, 7u);
    EXPECT_GE(r.completed, 8u);
  }
}

TEST(BaselinesSched, ScottNoAbortIsConstantRmr) {
  SinglePassOptions opts;
  opts.seed = 5;
  opts.gate_cs = false;
  const auto r =
      run_baseline_budget<baselines::ScottAbortableLock<CountingCcModel>>(
          24, opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed, 24u);
  for (const auto& rec : r.records) EXPECT_LE(rec.rmr_total(), 8u);
}

TEST(BaselinesSched, LeeMutexAndAborts) {
  for (std::uint64_t seed = 30; seed <= 36; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = plan_random_k(16, 8, seed, AbortWhen::kOnIdle);
    const auto r = run_baseline_budget<
        baselines::LeeStyleAbortableLock<CountingCcModel>>(16, opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed + r.aborted, 16u);
    EXPECT_EQ(r.completed, 8u);
  }
}

TEST(BaselinesSched, LeeHandoffScanGrowsWithAbortRun) {
  // The exiter after a run of A consecutive aborted slots pays ~A RMRs —
  // the Lee-row adaptive signature (contrast: our lock pays O(log_W A)).
  SinglePassOptions opts;
  opts.seed = 8;
  opts.plans = plan_first_k(32, 24, AbortWhen::kOnIdle);
  const auto r = run_baseline_budget<
      baselines::LeeStyleAbortableLock<CountingCcModel>>(32, opts);
  EXPECT_TRUE(r.mutex_ok);
  // Slot 0's exit scanned past all 24 poisoned slots.
  EXPECT_GE(r.records[0].rmr_exit, 24u);
}

TEST(BaselinesSched, JayantiMutexNoAbortConstantRmr) {
  // No aborts: the amortized lock behaves like CLH — O(1) worst case too.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.gate_cs = false;
    const auto r =
        run_baseline<baselines::JayantiAbortableLock<CountingCcModel>>(16,
                                                                       opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed, 16u);
    for (const auto& rec : r.records) EXPECT_LE(rec.rmr_total(), 8u);
  }
}

TEST(BaselinesSched, JayantiMutexAndAborts) {
  for (std::uint64_t seed = 40; seed <= 46; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.plans = plan_random_k(16, 8, seed, AbortWhen::kOnIdle);
    const auto r =
        run_baseline<baselines::JayantiAbortableLock<CountingCcModel>>(16,
                                                                       opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed + r.aborted, 16u);
    EXPECT_GE(r.completed, 8u);  // non-aborters complete
    EXPECT_GE(r.aborted, 1u);
  }
}

TEST(BaselinesSched, JayantiAmortizedTotalRmrLinearInAttempts) {
  // The amortization claim: total RMRs across every attempt (granted and
  // abandoned alike) stay linear in the number of attempts, even when half
  // the queue abandons — each abandonment epoch is claimed exactly once.
  SinglePassOptions opts;
  opts.seed = 9;
  opts.plans = plan_first_k(32, 16, AbortWhen::kOnIdle);
  const auto r =
      run_baseline<baselines::JayantiAbortableLock<CountingCcModel>>(32,
                                                                     opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed + r.aborted, 32u);
  std::uint64_t total = 0;
  for (const auto& rec : r.records) total += rec.rmr_total();
  EXPECT_LE(total, 8u * 32u);
}

TEST(BaselinesSched, AndersonArrayLockConstantRmrFcfs) {
  // Anderson's array queue lock is "ours minus the Tree": O(1) RMR per
  // passage, FCFS, not abortable.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SinglePassOptions opts;
    opts.seed = seed;
    opts.gate_cs = false;
    const auto r =
        run_baseline_budget<baselines::AndersonLock<CountingCcModel>>(24,
                                                                      opts);
    EXPECT_TRUE(r.mutex_ok);
    EXPECT_EQ(r.completed, 24u);
    for (const auto& rec : r.records) EXPECT_LE(rec.rmr_total(), 5u);
  }
}

TEST(BaselinesSched, YangAndersonAliasBehaves) {
  SinglePassOptions opts;
  opts.seed = 4;
  opts.gate_cs = false;
  const auto r =
      run_baseline<baselines::TtasLock<CountingCcModel>>(8, opts);
  EXPECT_TRUE(r.mutex_ok);
  EXPECT_EQ(r.completed, 8u);
}

}  // namespace
}  // namespace aml::harness
