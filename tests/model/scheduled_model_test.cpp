// Interaction of the counting models with the deterministic scheduler:
// accounting correctness under gating, cross-policy determinism, DSM under
// the scheduler, and wait/wake accounting precision.
#include <gtest/gtest.h>

#include <atomic>

#include "aml/model/counting_cc.hpp"
#include "aml/model/counting_dsm.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::model {
namespace {

using sched::StepScheduler;

TEST(ScheduledModel, CountersMatchOpsUnderGating) {
  CountingCcModel m(3);
  auto* w = m.alloc(1, 0);
  StepScheduler sched(3, {.seed = 2});
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    m.faa(p, *w, 1);   // RMR
    m.read(p, *w);     // local (own faa cached it) unless invalidated
    m.write(p, *w, p); // RMR
  });
  m.set_hook(nullptr);
  const OpCounters total = m.total_counters();
  EXPECT_EQ(total.faas, 3u);
  EXPECT_EQ(total.reads, 3u);
  EXPECT_EQ(total.writes, 3u);
  // Each process: faa (1 RMR) + write (1 RMR) + read (0 or 1 depending on
  // interleaving) => total RMRs in [6, 9].
  EXPECT_GE(total.rmrs, 6u);
  EXPECT_LE(total.rmrs, 9u);
}

TEST(ScheduledModel, WaitChargesOneRmrPerInvalidation) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 0);
  StepScheduler::Config cfg;
  // p1 writes 1, 2, 3; p0 waits for 3. Alternate strictly so every write
  // invalidates p0's copy before its next check.
  cfg.policy = sched::policies::round_robin();
  StepScheduler sched(2, std::move(cfg));
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    if (p == 0) {
      auto out = m.wait(
          0, *w, [](std::uint64_t v) { return v == 3; }, nullptr);
      EXPECT_EQ(out.value, 3u);
    } else {
      m.write(1, *w, 1);
      m.write(1, *w, 2);
      m.write(1, *w, 3);
    }
  });
  m.set_hook(nullptr);
  // p0: initial read + at most one re-read per invalidation: <= 4 RMRs,
  // >= 2 (initial + final), and wait_wakeups at least 1.
  EXPECT_GE(m.counters(0).rmrs, 2u);
  EXPECT_LE(m.counters(0).rmrs, 4u);
  EXPECT_GE(m.counters(0).wait_wakeups, 1u);
}

TEST(ScheduledModel, DsmUnderScheduler) {
  CountingDsmModel m(2);
  auto* local0 = m.alloc_owned(0, 1, 0);
  StepScheduler sched(2, {.seed = 5});
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    if (p == 0) {
      auto out = m.wait(
          0, *local0, [](std::uint64_t v) { return v == 7; }, nullptr);
      EXPECT_EQ(out.value, 7u);
    } else {
      m.write(1, *local0, 7);  // remote write wakes the local spinner
    }
  });
  m.set_hook(nullptr);
  EXPECT_EQ(m.counters(0).rmrs, 0u);  // spinning locally is free
  EXPECT_EQ(m.counters(0).remote_spin_episodes, 0u);
  EXPECT_EQ(m.counters(1).rmrs, 1u);  // one remote write
}

TEST(ScheduledModel, DifferentPoliciesSameFinalState) {
  auto final_value = [](sched::Policy policy) {
    CountingCcModel m(4);
    auto* w = m.alloc(1, 0);
    StepScheduler::Config cfg;
    cfg.policy = std::move(policy);
    StepScheduler sched(4, std::move(cfg));
    m.set_hook(&sched);
    sched.run([&](Pid p) {
      for (int i = 0; i < 5; ++i) m.faa(p, *w, 1);
    });
    m.set_hook(nullptr);
    return m.peek(*w);
  };
  EXPECT_EQ(final_value(sched::policies::random()), 20u);
  EXPECT_EQ(final_value(sched::policies::round_robin()), 20u);
  EXPECT_EQ(final_value(sched::policies::prefer({3, 2, 1, 0})), 20u);
}

TEST(ScheduledModel, StressManyWordsManyProcs) {
  constexpr Pid kN = 32;
  CountingCcModel m(kN);
  std::vector<CountingCcModel::Word*> words;
  for (int i = 0; i < 16; ++i) words.push_back(m.alloc(1, 0));
  StepScheduler sched(kN, {.seed = 11});
  m.set_hook(&sched);
  sched.run([&](Pid p) {
    pal::Xoshiro256 rng(p + 1);
    for (int i = 0; i < 20; ++i) {
      auto& w = *words[rng.below(words.size())];
      switch (rng.below(4)) {
        case 0: m.read(p, w); break;
        case 1: m.write(p, w, p); break;
        case 2: m.faa(p, w, 1); break;
        case 3: m.cas(p, w, 0, p); break;
      }
    }
  });
  m.set_hook(nullptr);
  const OpCounters total = m.total_counters();
  EXPECT_EQ(total.steps(), kN * 20u);
  EXPECT_LE(total.rmrs, total.steps());
}

}  // namespace
}  // namespace aml::model
