// Cross-model conformance: every memory model must implement identical
// *value* semantics for read/write/F&A/CAS/SWAP and wait — only the cost
// accounting differs. Typed tests run the same assertions against
// NativeModel, CountingCcModel, and CountingDsmModel, which is what lets
// the lock templates treat the models interchangeably.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "aml/model/counting_cc.hpp"
#include "aml/model/counting_dsm.hpp"
#include "aml/model/native.hpp"

namespace aml::model {
namespace {

template <typename M>
class ModelConformance : public ::testing::Test {
 public:
  ModelConformance() : model(4) {}
  M model;
};

using Models =
    ::testing::Types<NativeModel, CountingCcModel, CountingDsmModel>;
TYPED_TEST_SUITE(ModelConformance, Models);

TYPED_TEST(ModelConformance, InitialValueVisible) {
  auto* w = this->model.alloc(1, 42);
  EXPECT_EQ(this->model.read(0, *w), 42u);
  EXPECT_EQ(this->model.read(3, *w), 42u);
}

TYPED_TEST(ModelConformance, WriteThenReadAcrossProcesses) {
  auto* w = this->model.alloc(1, 0);
  this->model.write(1, *w, 77);
  EXPECT_EQ(this->model.read(2, *w), 77u);
}

TYPED_TEST(ModelConformance, FaaReturnsPreviousAndAccumulates) {
  auto* w = this->model.alloc(1, 5);
  EXPECT_EQ(this->model.faa(0, *w, 3), 5u);
  EXPECT_EQ(this->model.faa(1, *w, 3), 8u);
  EXPECT_EQ(this->model.read(2, *w), 11u);
}

TYPED_TEST(ModelConformance, FaaWrapsModulo64Bits) {
  auto* w = this->model.alloc(1, ~std::uint64_t{0});
  EXPECT_EQ(this->model.faa(0, *w, 1), ~std::uint64_t{0});
  EXPECT_EQ(this->model.read(0, *w), 0u);
  // Adding -1 (two's complement) decrements.
  this->model.write(0, *w, 10);
  this->model.faa(0, *w, ~std::uint64_t{0});
  EXPECT_EQ(this->model.read(0, *w), 9u);
}

TYPED_TEST(ModelConformance, CasSucceedsOnlyOnMatch) {
  auto* w = this->model.alloc(1, 1);
  EXPECT_FALSE(this->model.cas(0, *w, 2, 9));
  EXPECT_EQ(this->model.read(0, *w), 1u);
  EXPECT_TRUE(this->model.cas(1, *w, 1, 9));
  EXPECT_EQ(this->model.read(0, *w), 9u);
  // Back-to-back CAS chain.
  EXPECT_TRUE(this->model.cas(2, *w, 9, 10));
  EXPECT_FALSE(this->model.cas(3, *w, 9, 11));
}

TYPED_TEST(ModelConformance, SwapReturnsOld) {
  auto* w = this->model.alloc(1, 4);
  EXPECT_EQ(this->model.swap(0, *w, 5), 4u);
  EXPECT_EQ(this->model.swap(1, *w, 6), 5u);
  EXPECT_EQ(this->model.read(2, *w), 6u);
}

TYPED_TEST(ModelConformance, WaitPredAlreadyTrue) {
  auto* w = this->model.alloc(1, 3);
  auto out = this->model.wait(
      0, *w, [](std::uint64_t v) { return v == 3; }, nullptr);
  EXPECT_FALSE(out.stopped);
  EXPECT_EQ(out.value, 3u);
}

TYPED_TEST(ModelConformance, WaitStopsWhenPredFalse) {
  auto* w = this->model.alloc(1, 0);
  std::atomic<bool> stop{true};
  auto out = this->model.wait(
      0, *w, [](std::uint64_t v) { return v != 0; }, &stop);
  EXPECT_TRUE(out.stopped);
}

TYPED_TEST(ModelConformance, WaitWakesOnConcurrentWrite) {
  auto* w = this->model.alloc(1, 0);
  std::thread waiter([&] {
    auto out = this->model.wait(
        0, *w, [](std::uint64_t v) { return v == 2; }, nullptr);
    EXPECT_EQ(out.value, 2u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  this->model.write(1, *w, 2);
  waiter.join();
}

TYPED_TEST(ModelConformance, WaitEitherSemantics) {
  auto* a = this->model.alloc(1, 1);
  auto* b = this->model.alloc(1, 1);
  std::thread waiter([&] {
    auto out = this->model.wait_either(
        0, *a, [](std::uint64_t v) { return v == 0; }, *b,
        [](std::uint64_t v) { return v == 9; }, nullptr);
    EXPECT_FALSE(out.stopped);
    EXPECT_EQ(out.value2, 9u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  this->model.write(1, *b, 9);
  waiter.join();
}

TYPED_TEST(ModelConformance, ContiguousAllocation) {
  auto* words = this->model.alloc(64, 6);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(this->model.read(0, words[i]), 6u);
    this->model.write(0, words[i], static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(this->model.read(1, words[i]), static_cast<std::uint64_t>(i));
  }
}

TYPED_TEST(ModelConformance, ConcurrentFaaLinearizes) {
  auto* w = this->model.alloc(1, 0);
  std::vector<std::thread> threads;
  for (Pid p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < 2000; ++i) this->model.faa(p, *w, 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(this->model.read(0, *w), 8000u);
}

}  // namespace
}  // namespace aml::model
