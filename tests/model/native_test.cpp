#include "aml/model/native.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace aml::model {
namespace {

TEST(Native, BasicOps) {
  NativeModel m(1);
  auto* w = m.alloc(1, 7);
  EXPECT_EQ(m.read(0, *w), 7u);
  m.write(0, *w, 8);
  EXPECT_EQ(m.faa(0, *w, 2), 8u);
  EXPECT_EQ(m.read(0, *w), 10u);
  EXPECT_TRUE(m.cas(0, *w, 10, 11));
  EXPECT_FALSE(m.cas(0, *w, 10, 12));
  EXPECT_EQ(m.swap(0, *w, 20), 11u);
  EXPECT_EQ(m.read(0, *w), 20u);
}

TEST(Native, WordsAreCacheLinePadded) {
  NativeModel m(1);
  auto* words = m.alloc(4, 0);
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&words[i]);
    const auto b = reinterpret_cast<std::uintptr_t>(&words[i + 1]);
    EXPECT_GE(b - a, 64u);
  }
}

TEST(Native, LargeAllocationsAreContiguous) {
  NativeModel m(1);
  auto* words = m.alloc(500, 3);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(m.read(0, words[i]), 3u);
    m.write(0, words[i], static_cast<std::uint64_t>(i + 1));
  }
  ASSERT_EQ(m.read(0, words[499]), 500u);
}

TEST(Native, AllocStableAcrossGrowth) {
  NativeModel m(1);
  auto* first = m.alloc(1, 111);
  for (int i = 0; i < 1000; ++i) m.alloc(1, i);
  EXPECT_EQ(m.read(0, *first), 111u);
  EXPECT_EQ(m.words_allocated(), 1001u);
}

TEST(Native, WaitWakesOnStore) {
  NativeModel m(2);
  auto* w = m.alloc(1, 0);
  std::thread waiter([&] {
    auto out = m.wait(
        0, *w, [](std::uint64_t v) { return v == 5; }, nullptr);
    EXPECT_EQ(out.value, 5u);
    EXPECT_FALSE(out.stopped);
  });
  m.write(1, *w, 5);
  waiter.join();
}

TEST(Native, WaitHonorsStop) {
  NativeModel m(1);
  auto* w = m.alloc(1, 0);
  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    auto out = m.wait(
        0, *w, [](std::uint64_t v) { return v != 0; }, &stop);
    EXPECT_TRUE(out.stopped);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  waiter.join();
}

TEST(Native, FaaConcurrentSum) {
  NativeModel m(4);
  auto* w = m.alloc(1, 0);
  std::vector<std::thread> threads;
  for (Pid p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < 10000; ++i) m.faa(p, *w, 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.read(0, *w), 40000u);
}

}  // namespace
}  // namespace aml::model
