// Checks the DSM RMR accounting rules: locality is permanent, every remote
// access is an RMR, local accesses are free, and remote busy-waiting is
// flagged via remote_spin_episodes.
#include "aml/model/counting_dsm.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace aml::model {
namespace {

TEST(CountingDsm, LocalAccessesAreFree) {
  CountingDsmModel m(2);
  auto* w = m.alloc_owned(0, 1, 3);
  m.read(0, *w);
  m.write(0, *w, 4);
  m.faa(0, *w, 1);
  EXPECT_EQ(m.counters(0).rmrs, 0u);
  EXPECT_EQ(m.counters(0).local_reads, 1u);
}

TEST(CountingDsm, RemoteAccessesAreRmrs) {
  CountingDsmModel m(2);
  auto* w = m.alloc_owned(0, 1, 3);
  m.read(1, *w);
  m.read(1, *w);  // no caching in DSM: every remote read pays
  m.write(1, *w, 9);
  EXPECT_EQ(m.counters(1).rmrs, 3u);
}

TEST(CountingDsm, UnownedWordsRemoteToAll) {
  CountingDsmModel m(2);
  auto* w = m.alloc(1, 0);
  m.read(0, *w);
  m.read(1, *w);
  EXPECT_EQ(m.counters(0).rmrs, 1u);
  EXPECT_EQ(m.counters(1).rmrs, 1u);
}

TEST(CountingDsm, LocalWaitHasNoEpisode) {
  CountingDsmModel m(2);
  auto* w = m.alloc_owned(0, 1, 1);
  auto out = m.wait(
      0, *w, [](std::uint64_t v) { return v == 1; }, nullptr);
  EXPECT_FALSE(out.stopped);
  EXPECT_EQ(m.counters(0).remote_spin_episodes, 0u);
  EXPECT_EQ(m.counters(0).rmrs, 0u);
}

TEST(CountingDsm, RemoteWaitCountsEpisode) {
  CountingDsmModel m(2);
  auto* w = m.alloc_owned(0, 1, 0);
  std::thread waiter([&] {
    auto out = m.wait(
        1, *w, [](std::uint64_t v) { return v != 0; }, nullptr);
    EXPECT_EQ(out.value, 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  m.write(0, *w, 1);
  waiter.join();
  EXPECT_EQ(m.counters(1).remote_spin_episodes, 1u);
  EXPECT_GE(m.counters(1).rmrs, 2u);  // initial read + wake re-read
}

TEST(CountingDsm, CasAndSwapChargeByLocality) {
  CountingDsmModel m(2);
  auto* w = m.alloc_owned(1, 1, 0);
  EXPECT_TRUE(m.cas(1, *w, 0, 5));
  EXPECT_EQ(m.swap(1, *w, 6), 5u);
  EXPECT_EQ(m.counters(1).rmrs, 0u);  // owner: free
  EXPECT_FALSE(m.cas(0, *w, 0, 7));
  EXPECT_EQ(m.swap(0, *w, 8), 6u);
  EXPECT_EQ(m.counters(0).rmrs, 2u);  // remote: charged
}

TEST(CountingDsm, LargeAllocationsAreContiguous) {
  CountingDsmModel m(2);
  auto* words = m.alloc_owned(1, 300, 9);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(m.read(1, words[i]), 9u);
    m.write(1, words[i], static_cast<std::uint64_t>(i));
  }
  ASSERT_EQ(m.read(1, words[299]), 299u);
  EXPECT_EQ(m.counters(1).rmrs, 0u);  // all owner-local
}

TEST(CountingDsm, WaitStopsOnSignal) {
  CountingDsmModel m(1);
  auto* w = m.alloc(1, 0);
  std::atomic<bool> stop{true};
  auto out = m.wait(
      0, *w, [](std::uint64_t v) { return v != 0; }, &stop);
  EXPECT_TRUE(out.stopped);
}

}  // namespace
}  // namespace aml::model
