// Checks that CountingCcModel implements the paper's CC RMR accounting
// (Section 2) rule by rule.
#include "aml/model/counting_cc.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace aml::model {
namespace {

TEST(CountingCc, FirstReadIsRmrSecondIsLocal) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 5);
  EXPECT_EQ(m.read(0, *w), 5u);
  EXPECT_EQ(m.counters(0).rmrs, 1u);
  EXPECT_EQ(m.read(0, *w), 5u);
  EXPECT_EQ(m.counters(0).rmrs, 1u);  // cached
  EXPECT_EQ(m.counters(0).local_reads, 1u);
  EXPECT_EQ(m.counters(0).reads, 2u);
}

TEST(CountingCc, WriteByOtherInvalidates) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 0);
  m.read(0, *w);
  m.write(1, *w, 7);  // invalidates p0's copy
  EXPECT_EQ(m.read(0, *w), 7u);
  EXPECT_EQ(m.counters(0).rmrs, 2u);  // both reads were RMRs
}

TEST(CountingCc, OwnWriteKeepsOwnCacheValid) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 0);
  m.write(0, *w, 3);  // 1 RMR; line now modified in p0's cache
  EXPECT_EQ(m.read(0, *w), 3u);
  EXPECT_EQ(m.counters(0).rmrs, 1u);
  EXPECT_EQ(m.counters(0).local_reads, 1u);
}

TEST(CountingCc, EveryMutationIsOneRmr) {
  CountingCcModel m(1);
  auto* w = m.alloc(1, 0);
  m.write(0, *w, 1);
  m.faa(0, *w, 2);
  m.cas(0, *w, 3, 4);
  m.swap(0, *w, 9);
  EXPECT_EQ(m.counters(0).rmrs, 4u);
  EXPECT_EQ(m.counters(0).writes, 1u);
  EXPECT_EQ(m.counters(0).faas, 1u);
  EXPECT_EQ(m.counters(0).cas_attempts, 1u);
  EXPECT_EQ(m.counters(0).swaps, 1u);
}

TEST(CountingCc, FaaReturnsOldValue) {
  CountingCcModel m(1);
  auto* w = m.alloc(1, 10);
  EXPECT_EQ(m.faa(0, *w, 5), 10u);
  EXPECT_EQ(m.faa(0, *w, 5), 15u);
  EXPECT_EQ(m.read(0, *w), 20u);
}

TEST(CountingCc, CasSemantics) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 1);
  EXPECT_FALSE(m.cas(0, *w, 2, 9));
  EXPECT_EQ(m.counters(0).cas_failures, 1u);
  EXPECT_EQ(m.peek(*w), 1u);
  EXPECT_TRUE(m.cas(0, *w, 1, 9));
  EXPECT_EQ(m.peek(*w), 9u);
}

TEST(CountingCc, FailedCasStillInvalidatesReaders) {
  // Per the model text: "another process performed a write, CAS, or F&A" —
  // success is not required for invalidation.
  CountingCcModel m(2);
  auto* w = m.alloc(1, 1);
  m.read(0, *w);
  EXPECT_FALSE(m.cas(1, *w, 42, 43));
  m.read(0, *w);
  EXPECT_EQ(m.counters(0).rmrs, 2u);
}

TEST(CountingCc, WaitImmediateWhenPredHolds) {
  CountingCcModel m(1);
  auto* w = m.alloc(1, 4);
  auto out = m.wait(
      0, *w, [](std::uint64_t v) { return v == 4; }, nullptr);
  EXPECT_FALSE(out.stopped);
  EXPECT_EQ(out.value, 4u);
  EXPECT_EQ(m.counters(0).rmrs, 1u);
}

TEST(CountingCc, WaitStopsOnSignal) {
  CountingCcModel m(1);
  auto* w = m.alloc(1, 0);
  std::atomic<bool> stop{true};
  auto out = m.wait(
      0, *w, [](std::uint64_t v) { return v != 0; }, &stop);
  EXPECT_TRUE(out.stopped);
  EXPECT_EQ(out.value, 0u);
}

TEST(CountingCc, WaitWakesOnWriteFreeRunning) {
  CountingCcModel m(2);
  auto* w = m.alloc(1, 0);
  std::thread waiter([&] {
    auto out = m.wait(
        0, *w, [](std::uint64_t v) { return v == 2; }, nullptr);
    EXPECT_FALSE(out.stopped);
    EXPECT_EQ(out.value, 2u);
  });
  std::thread writer([&] {
    m.write(1, *w, 1);
    m.write(1, *w, 2);
  });
  waiter.join();
  writer.join();
  // The waiter paid 1 RMR for its first read plus 1 per invalidation-driven
  // re-read; with two writes that is at most 3 and at least 2.
  EXPECT_GE(m.counters(0).rmrs, 2u);
  EXPECT_LE(m.counters(0).rmrs, 3u);
}

TEST(CountingCc, PokeWakesWaitersWithoutAccounting) {
  CountingCcModel m(1);
  auto* w = m.alloc(1, 0);
  std::thread waiter([&] {
    auto out = m.wait(
        0, *w, [](std::uint64_t v) { return v != 0; }, nullptr);
    EXPECT_EQ(out.value, 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  m.poke(*w, 1);
  waiter.join();
  // Only the waiting process accrued operations.
  EXPECT_EQ(m.total_counters().writes, 0u);
}

TEST(CountingCc, ResetCountersKeepsCaches) {
  CountingCcModel m(1);
  auto* w = m.alloc(1, 0);
  m.read(0, *w);
  m.reset_counters();
  EXPECT_EQ(m.counters(0).rmrs, 0u);
  m.read(0, *w);  // still cached: local
  EXPECT_EQ(m.counters(0).rmrs, 0u);
  EXPECT_EQ(m.counters(0).local_reads, 1u);
}

TEST(CountingCc, LargeAllocationsAreContiguousAndUsable) {
  // Regression: alloc(n) must return a genuinely contiguous block (an early
  // version
  // returned interior deque pointers, which went off the rails past one
  // deque block).
  CountingCcModel m(1);
  auto* words = m.alloc(1000, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(m.read(0, words[i]), 7u) << i;
    m.write(0, words[i], static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(m.read(0, words[i]), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(m.words_allocated(), 1000u);
}

TEST(CountingCc, WordsAllocated) {
  CountingCcModel m(1);
  EXPECT_EQ(m.words_allocated(), 0u);
  m.alloc(3, 0);
  m.alloc(2, 1);
  EXPECT_EQ(m.words_allocated(), 5u);
}

TEST(CountingCc, TotalCountersAggregates) {
  CountingCcModel m(3);
  auto* w = m.alloc(1, 0);
  m.write(0, *w, 1);
  m.write(1, *w, 2);
  m.read(2, *w);
  EXPECT_EQ(m.total_counters().rmrs, 3u);
}

}  // namespace
}  // namespace aml::model
