// Invariant oracles for the paper's algorithms (aml::analysis).
//
// Each oracle wraps one shared structure and exposes a read-only probe
// suitable for StepScheduler::add_invariant_probe(): the scheduler calls it
// at every decision point (every worker parked), so the oracle sees every
// reachable intermediate state of every explored execution. A probe returns
// an empty string while the invariant holds and a description of the first
// violation otherwise; the scheduler records it in Result::violation together
// with the step number, and the explorer folds it into a replayable trace.
//
// The oracles are *stepwise*: several checks compare against the state seen
// at the previous probe and rely on the at-most-one-shared-memory-step
// granularity the scheduler guarantees between probes (e.g. the LockDesc
// refcount may change by at most 1 between probes unless the instance was
// switched). They are therefore only meaningful under the scheduled models —
// under free-running native threads the snapshots would tear.
//
// All probes use the models' peek() paths: no gating, no RMR accounting, no
// effect on the schedule being explored.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "aml/core/oneshot.hpp"
#include "aml/core/tree.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::analysis {

using model::Pid;

/// Convenience bundle: collects probes and registers them all with a
/// scheduler, so a workload can do `oracles.install(ctx.scheduler())`.
class OracleSet {
 public:
  void add(std::function<std::string()> probe) {
    probes_.push_back(std::move(probe));
  }

  template <typename Oracle>
  void watch(Oracle& oracle) {
    add([&oracle] { return oracle.check(); });
  }

  void install(sched::StepScheduler& scheduler) const {
    for (const auto& probe : probes_) scheduler.add_invariant_probe(probe);
  }

 private:
  std::vector<std::function<std::string()>> probes_;
};

// --- Tree (Section 4) ------------------------------------------------------

/// Invariants of core::Tree:
///  T1 (monotone)      — node bits are only ever set (Remove uses F&A with a
///                       fresh bit); a cleared bit means lost state.
///  T2 (parent/child)  — a set bit in a node at level >= 2 implies the child
///                       subtree it covers is EMPTY (all-ones): Remove only
///                       ascends after the child word filled up.
///  T3 (live set)      — optional: a set leaf-level bit for slot s implies
///                       the workload marked s removable (abandoned). Wire
///                       with set_removable().
template <typename Space>
class TreeOracle {
 public:
  explicit TreeOracle(const core::Tree<Space>& tree) : tree_(tree) {
    const auto& geo = tree_.geometry();
    shadow_.resize(geo.height() + 1);
    for (std::uint32_t lvl = 1; lvl <= geo.height(); ++lvl) {
      shadow_[lvl].resize(geo.stored_width(lvl));
      for (std::uint64_t idx = 0; idx < shadow_[lvl].size(); ++idx) {
        shadow_[lvl][idx] = geo.initial_value(lvl, idx);
      }
    }
  }

  /// `removable(s)` must return true iff the workload has allowed slot `s`
  /// to be abandoned (its process aborted or may abort).
  void set_removable(std::function<bool(std::uint32_t)> removable) {
    removable_ = std::move(removable);
  }

  std::string check() {
    const auto& geo = tree_.geometry();
    const std::uint32_t h = geo.height();
    const std::uint32_t w = geo.w();
    for (std::uint32_t lvl = 1; lvl <= h; ++lvl) {
      const std::uint64_t width = geo.stored_width(lvl);
      for (std::uint64_t idx = 0; idx < width; ++idx) {
        const std::uint64_t v = tree_.peek_node(lvl, idx);
        std::uint64_t& last = shadow_[lvl][idx];
        if ((last & ~v) != 0) {
          return describe("T1: tree bit cleared", lvl, idx, last, v);
        }
        last = v;
        if (lvl >= 2) {
          for (std::uint32_t b = 0; b < w; ++b) {
            if (((v >> b) & 1) == 0) continue;
            const std::uint64_t child = tree_.peek_node(lvl - 1, idx * w + b);
            if (child != tree_.empty_value()) {
              return describe("T2: bit set over a non-EMPTY child subtree",
                              lvl, idx, child, v);
            }
          }
        }
        if (lvl == 1 && removable_) {
          for (std::uint32_t b = 0; b < w; ++b) {
            const std::uint64_t slot = idx * w + b;
            if (slot >= geo.n_slots()) break;
            if (((v >> b) & 1) != 0 && (shadow_init(idx) >> b & 1) == 0 &&
                !removable_(static_cast<std::uint32_t>(slot))) {
              std::ostringstream os;
              os << "TreeOracle T3: slot " << slot
                 << " marked abandoned but not removable";
              return os.str();
            }
          }
        }
      }
    }
    return {};
  }

 private:
  std::uint64_t shadow_init(std::uint64_t idx) const {
    return tree_.geometry().initial_value(1, idx);
  }

  static std::string describe(const char* what, std::uint32_t lvl,
                              std::uint64_t idx, std::uint64_t was,
                              std::uint64_t now) {
    std::ostringstream os;
    os << "TreeOracle " << what << " at node (lvl=" << lvl << ", idx=" << idx
       << "): was 0x" << std::hex << was << ", now 0x" << now;
    return os.str();
  }

  const core::Tree<Space>& tree_;
  std::vector<std::vector<std::uint64_t>> shadow_;
  std::function<bool(std::uint32_t)> removable_;
};

// --- One-shot queue lock (Section 3) ---------------------------------------

/// Invariants of core::OneShotLock:
///  Q1 — Tail never exceeds the capacity (each process enters at most once).
///  Q2 — Tail, Head and the go[] bits are monotone; LastExited is monotone
///        once it leaves its NONE sentinel and never returns to it.
///  Q3 — Head only ever names an assigned slot (Head > 0 implies
///        Head < Tail), and LastExited trails Head: a process writes
///        LastExited only with the Head value of its own completed critical
///        section.
///  Q4 — go words are boolean.
template <typename Lock>
class OneShotOracle {
 public:
  explicit OneShotOracle(const Lock& lock)
      : lock_(lock), go_shadow_(lock.capacity(), 0) {
    go_shadow_[0] = 1;  // go = [1, 0, ..., 0]
  }

  std::string check() {
    const std::uint64_t tail = lock_.probe_tail();
    const std::uint64_t head = lock_.probe_head();
    const std::uint64_t last = lock_.probe_last_exited();
    const std::uint32_t cap = lock_.capacity();
    if (tail > cap) return fail("Q1: Tail exceeds capacity", tail);
    if (tail < tail_) return fail("Q2: Tail decreased", tail);
    if (head < head_) return fail("Q2: Head decreased", head);
    if (head > 0 && head >= tail) {
      return fail("Q3: Head names an unassigned slot", head);
    }
    if (last != core::detail::kNoneExited) {
      if (last > head) return fail("Q3: LastExited ahead of Head", last);
      if (last_ != core::detail::kNoneExited && last < last_) {
        return fail("Q2: LastExited decreased", last);
      }
    } else if (last_ != core::detail::kNoneExited) {
      return fail("Q2: LastExited reset to NONE", last);
    }
    for (std::uint32_t i = 0; i < cap; ++i) {
      const std::uint64_t g = lock_.probe_go(i);
      if (g > 1) return fail("Q4: go word non-boolean", g);
      if (g < go_shadow_[i]) return fail("Q2: go bit cleared", i);
      go_shadow_[i] = g;
    }
    tail_ = tail;
    head_ = head;
    last_ = last;
    return {};
  }

 private:
  static std::string fail(const char* what, std::uint64_t v) {
    std::ostringstream os;
    os << "OneShotOracle " << what << " (value " << v << ")";
    return os.str();
  }

  const Lock& lock_;
  std::uint64_t tail_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t last_ = core::detail::kNoneExited;
  std::vector<std::uint64_t> go_shadow_;
};

// --- Long-lived LockDesc (Section 6) ---------------------------------------

/// Invariants of core::LongLivedLock's packed LockDesc word and the
/// per-instance version words:
///  L1 — Refcnt never exceeds N, Lock always names one of the N+1 instances,
///        Spn always names an allocated spin node.
///  L2 — between two probes (at most one shared-memory step apart) either
///        the installed (Lock, Spn) pair is unchanged and Refcnt moved by at
///        most 1, or the pair was switched by Cleanup's CAS — which is only
///        enabled at Refcnt == 0 and installs a fresh pair with Refcnt == 0.
///  L3 — every instance's space version only steps forward:
///        v' ∈ {v, (v+1) & mask} (recycler bumps are exclusive).
template <typename Lock>
class LockDescOracle {
 public:
  explicit LockDescOracle(const Lock& lock)
      : lock_(lock),
        prev_(lock.probe_desc()),
        version_shadow_(lock.instance_count(), 0) {
    for (std::uint32_t i = 0; i < lock_.instance_count(); ++i) {
      version_shadow_[i] = lock_.probe_space_version(i);
    }
  }

  std::string check() {
    const auto d = lock_.probe_desc();
    const std::uint32_t nprocs = lock_.config().nprocs;
    if (d.refcnt > nprocs) return fail("L1: Refcnt exceeds N", d.refcnt);
    if (d.lock >= lock_.instance_count()) {
      return fail("L1: Lock names no instance", d.lock);
    }
    if (d.spn >= lock_.spin_nodes()) {
      return fail("L1: Spn names no spin node", d.spn);
    }
    const bool switched = d.lock != prev_.lock || d.spn != prev_.spn;
    if (switched) {
      if (prev_.refcnt != 0) {
        return fail("L2: instance switched while Refcnt nonzero",
                    prev_.refcnt);
      }
      if (d.refcnt != 0) {
        return fail("L2: switch installed nonzero Refcnt", d.refcnt);
      }
      if (d.lock == prev_.lock || d.spn == prev_.spn) {
        return fail("L2: switch must replace both Lock and Spn", d.lock);
      }
    } else {
      const std::uint32_t hi = d.refcnt > prev_.refcnt ? d.refcnt : prev_.refcnt;
      const std::uint32_t lo = d.refcnt > prev_.refcnt ? prev_.refcnt : d.refcnt;
      if (hi - lo > 1) {
        return fail("L2: Refcnt jumped by more than 1", d.refcnt);
      }
    }
    const std::uint64_t mask = lock_.probe_space_version_mask();
    for (std::uint32_t i = 0; i < lock_.instance_count(); ++i) {
      const std::uint64_t v = lock_.probe_space_version(i);
      const std::uint64_t was = version_shadow_[i];
      if (v != was && v != ((was + 1) & mask)) {
        return fail("L3: instance version skipped", v);
      }
      version_shadow_[i] = v;
    }
    prev_ = d;
    return {};
  }

 private:
  static std::string fail(const char* what, std::uint64_t v) {
    std::ostringstream os;
    os << "LockDescOracle " << what << " (value " << v << ")";
    return os.str();
  }

  const Lock& lock_;
  typename Lock::DescView prev_;
  std::vector<std::uint64_t> version_shadow_;
};

// --- Lock table generations (aml::table resize) ----------------------------

/// Invariants of table::LockTable's two-generation resize protocol:
///  G1 — exactly one current generation, and it is the newest; epochs are
///        consecutive from 0.
///  G2 — a retired generation has no pinned passages and stays retired.
///  G3 — at most two generations are live (unretired) at any time: the
///        current one and the one it is draining.
/// Requires the table's debug_generations() snapshot; see the scheduling
/// caveat documented there.
template <typename Table>
class TableGenOracle {
 public:
  explicit TableGenOracle(const Table& table) : table_(table) {}

  std::string check() {
    const auto gens = table_.debug_generations();
    if (gens.empty()) return "TableGenOracle G1: no generations";
    std::uint32_t currents = 0;
    std::uint32_t unretired = 0;
    for (std::size_t i = 0; i < gens.size(); ++i) {
      const auto& g = gens[i];
      if (g.epoch != i) return fail("G1: epochs not consecutive", g.epoch);
      if (g.is_current) {
        ++currents;
        if (i + 1 != gens.size()) {
          return fail("G1: current generation is not the newest", g.epoch);
        }
        if (g.retired) return fail("G2: current generation retired", g.epoch);
      }
      if (g.retired) {
        if (g.pins != 0) {
          return fail("G2: retired generation has pinned passages", g.pins);
        }
      } else {
        ++unretired;
        if (i < retired_floor_.size() && retired_floor_[i]) {
          return fail("G2: generation un-retired", g.epoch);
        }
      }
    }
    if (currents != 1) return fail("G1: current-generation count", currents);
    if (unretired > 2) return fail("G3: more than two live generations",
                                   unretired);
    retired_floor_.resize(gens.size(), false);
    for (std::size_t i = 0; i < gens.size(); ++i) {
      retired_floor_[i] = retired_floor_[i] || gens[i].retired;
    }
    return {};
  }

 private:
  static std::string fail(const char* what, std::uint64_t v) {
    std::ostringstream os;
    os << "TableGenOracle " << what << " (value " << v << ")";
    return os.str();
  }

  const Table& table_;
  std::vector<bool> retired_floor_;  ///< sticky: once retired, always
};

}  // namespace aml::analysis
