// Named model-checking workloads shared by the analysis tests and the
// aml_replay tool (aml::analysis).
//
// A workload is a factory the explorer invokes once per execution: it builds
// a fresh world (model + lock), installs the scheduler hook, registers
// oracles, runs the process bodies and reports failures through
// ExecutionContext::fail(). Keeping them in a registry means a failure trace
// emitted by a test names a workload the standalone replay tool can rebuild
// byte-for-byte — the trace's choice sequence then reproduces the failing
// interleaving deterministically.
//
// The flagship entry is `oneshot-handoff-bug`: the one-shot queue lock with
// the abort-path responsibility hand-off deliberately disabled
// (FaultInjection::skip_abort_responsibility — Algorithm 3.3 line 15
// skipped). Three processes compete while a fourth delivers an abort signal
// to the middle one; in the buggy interleaving the exiting process signals
// the aborting slot (a wasted wake-up) and the aborter, who observes
// Head == LastExited and is therefore responsible for re-signalling, skips
// it — the third process sleeps forever. The abort signal is a gated
// model::Signal so DPOR sees the raise/observe race (a plain std::atomic
// store would have no footprint and the reduction could unsoundly prune the
// failing interleaving).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "aml/analysis/oracles.hpp"
#include "aml/baselines/jayanti.hpp"
#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/explorer.hpp"
#include "aml/table/lock_table.hpp"

namespace aml::analysis {

struct WorkloadInfo {
  std::string name;
  std::string description;
  Pid nprocs = 0;
  std::function<void(sched::ExecutionContext&)> factory;
};

namespace detail {

/// Three competitors (p0..p2) on a 3-slot one-shot lock; p3 raises p1's
/// abort signal as its only (gated) step. `inject` disables the abort path's
/// responsibility hand-off. Failures reported: mutual-exclusion violation,
/// lost wake-up (a competitor parked forever; detected by the idle rescue),
/// and any oracle violation (folded in by ExecutionContext::run).
inline void oneshot_handoff(sched::ExecutionContext& ctx, bool inject) {
  using Model = model::CountingCcModel;
  constexpr Pid kProcs = 4;
  constexpr std::uint32_t kSlots = 3;
  Model m(kProcs);
  m.set_hook(&ctx.scheduler());
  core::OneShotLock<Model> lock(m, kSlots, /*w=*/4, core::Find::kPlain);
  if (inject) {
    core::FaultInjection faults;
    faults.skip_abort_responsibility = true;
    lock.inject_faults(faults);
  }

  OneShotOracle<core::OneShotLock<Model>> queue_oracle(lock);
  TreeOracle<Model> tree_oracle(lock.tree());
  OracleSet oracles;
  oracles.watch(queue_oracle);
  oracles.watch(tree_oracle);
  oracles.install(ctx.scheduler());

  // One gated Signal per competitor. Only p1's is ever raised by the
  // workload (by p3); the others exist so the idle rescue can unpark a
  // starved competitor and let the execution terminate cleanly.
  model::Signal* sig[kSlots];
  for (std::uint32_t i = 0; i < kSlots; ++i) sig[i] = m.alloc_signal();

  std::atomic<bool> rescued{false};
  ctx.scheduler().set_idle_callback([&] {
    if (rescued.load(std::memory_order_relaxed)) return false;
    rescued.store(true, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < kSlots; ++i) {
      sig[i]->flag.store(true, std::memory_order_seq_cst);
    }
    return true;
  });

  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};
  Model::Word* scratch = m.alloc(1, 0);

  ctx.run([&](Pid p) {
    if (p == 3) {
      m.raise_signal(p, *sig[1]);
      return;
    }
    const auto r = lock.enter(p, &sig[p]->flag);
    if (r.acquired) {
      if (in_cs.fetch_add(1, std::memory_order_seq_cst) != 0) {
        overlap.store(true, std::memory_order_seq_cst);
      }
      m.read(p, *scratch);  // hold the critical section for one gated step
      in_cs.fetch_sub(1, std::memory_order_seq_cst);
      lock.exit(p);
    }
  });

  if (overlap.load(std::memory_order_relaxed)) {
    ctx.fail("mutual exclusion violated: two processes in the CS");
  }
  if (rescued.load(std::memory_order_relaxed)) {
    ctx.fail(
        "lost wake-up: a competitor was parked forever and had to be "
        "rescued by an injected abort signal");
  }
}

/// Two competitors on one key of a single-stripe LockTable whose stripe
/// starts on the amortized (Jayanti) lock; p2 raises p1's abort signal (a
/// gated step) and then grows the table with a hybrid policy tuned to flip
/// every new stripe to the paper lock (threshold 0, min_samples 0). p1
/// retries after an abort, so its second passage can bridge into the
/// new-generation paper stripe while p0 still holds the old amortized one —
/// the dual-acquire bridge must preserve mutual exclusion *across lock
/// algorithms*, and the amortized lock's abandon/revive/recycle transitions
/// race the epoch switch. Failures: overlap in the CS, a lost wake-up
/// (idle rescue), a TableGenOracle violation, or the resize not happening.
inline void table_hybrid_resize_bridge(sched::ExecutionContext& ctx) {
  using Model = model::CountingCcModel;
  using Table = table::LockTable<Model>;
  constexpr Pid kProcs = 3;
  constexpr std::uint64_t kKey = 5;
  Model m(kProcs);
  m.set_hook(&ctx.scheduler());
  Table lock_table(m, {.max_threads = kProcs,
                       .stripes = 1,
                       .tree_width = 4,
                       .find = core::Find::kPlain,
                       .algo = table::StripeAlgo::kAmortized,
                       .hybrid = {.enabled = true,
                                  .abort_rate_threshold = 0.0,
                                  .min_samples = 0}});

  TableGenOracle<Table> gen_oracle(lock_table);
  ctx.scheduler().add_invariant_probe(
      [&gen_oracle] { return gen_oracle.check(); });

  // p1's abort signal (raised by p2) plus one rescue signal per competitor
  // so the idle rescue can unpark a starved process and terminate cleanly.
  model::Signal* abort_sig = m.alloc_signal();
  model::Signal* rescue[2] = {m.alloc_signal(), m.alloc_signal()};

  std::atomic<bool> rescued{false};
  ctx.scheduler().set_idle_callback([&] {
    if (rescued.load(std::memory_order_relaxed)) return false;
    rescued.store(true, std::memory_order_relaxed);
    abort_sig->flag.store(true, std::memory_order_seq_cst);
    for (auto* s : rescue) s->flag.store(true, std::memory_order_seq_cst);
    return true;
  });

  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};
  std::atomic<bool> resized{false};
  Model::Word* scratch = m.alloc(1, 0);

  const auto passage = [&](Pid p, const std::atomic<bool>* stop) {
    if (!lock_table.enter_hash(p, kKey, stop)) return false;
    if (in_cs.fetch_add(1, std::memory_order_seq_cst) != 0) {
      overlap.store(true, std::memory_order_seq_cst);
    }
    m.read(p, *scratch);  // hold the critical section for one gated step
    in_cs.fetch_sub(1, std::memory_order_seq_cst);
    lock_table.exit_hash(p, kKey);
    return true;
  };

  ctx.run([&](Pid p) {
    if (p == 2) {
      // A full passage first guarantees the parent stripe has at least one
      // recorded attempt before the resize in *every* interleaving, so the
      // zero-threshold hybrid policy deterministically flips both children
      // to the paper lock (a zero-attempt parent inherits its algorithm).
      passage(2, nullptr);
      m.raise_signal(p, *abort_sig);
      resized.store(lock_table.resize(2), std::memory_order_seq_cst);
      return;
    }
    if (p == 0) {
      passage(0, &rescue[0]->flag);
      return;
    }
    // p1: first attempt may abort on p2's signal; the retry exercises the
    // amortized lock's revive/recycle path, possibly across the epoch
    // switch into a paper-lock stripe.
    if (!passage(1, &abort_sig->flag)) passage(1, &rescue[1]->flag);
  });

  if (overlap.load(std::memory_order_relaxed)) {
    ctx.fail("mutual exclusion violated: two processes in the CS");
  }
  if (rescued.load(std::memory_order_relaxed)) {
    ctx.fail("lost wake-up: a competitor was parked forever");
  }
  if (!resized.load(std::memory_order_relaxed)) {
    ctx.fail("resize(2) unexpectedly refused");
  }
  if (lock_table.epoch() != 1 ||
      lock_table.stripe_algo(0) != table::StripeAlgo::kPaper ||
      lock_table.stripe_algo(1) != table::StripeAlgo::kPaper) {
    ctx.fail("hybrid policy did not flip the new generation to kPaper");
  }
}

/// The amortized (Jayanti) lock's claim-CAS ABA window, made reachable at a
/// low preemption bound. Cast (5 processes): a *holder* (p0) that parks
/// inside its critical section on a gated word, so its kWaiting node walls
/// off the queue without costing the bound a preemption; an *abandoner*
/// (p1) queued behind the wall whose abort signal is raised mid-run; a
/// *re-aborter* (p2) with a pre-raised try-lock signal that abandons behind
/// p1, then — gated until after p1's abandonment — revives its node, walks
/// over p1's abandoned node (claiming and recycling it, splicing its own
/// prev past it), and abandons *again*; a *walker* (p3) queued behind p2;
/// and a *controller* (p4) whose gated writes sequence the above. The racy
/// window is p3's walk: it can read the abandoned p2-node's prev (naming
/// p1's node), get preempted across p2's entire revive-splice-reabandon,
/// and only then run its claim-CAS. A state-only CAS succeeds against the
/// second abandonment while splicing to the first's prev — putting p3 on
/// the recycled p1 node (two walkers on one position: a runaway walk or a
/// mutex violation). The epoch-versioned status word must make the stale
/// claim fail and re-observe. Everything except that one preemption is
/// block-release choreography, so the failing interleaving exists within
/// preemption bound 1. Failures: overlap in the CS, a lost wake-up (idle
/// rescue), a deadlock, or a runaway walk (the explorer's step budget).
inline void jayanti_abandon_epochs(sched::ExecutionContext& ctx) {
  using Model = model::CountingCcModel;
  constexpr Pid kProcs = 5;
  Model m(kProcs);
  m.set_hook(&ctx.scheduler());
  baselines::JayantiAbortableLock<Model> lock(m, kProcs);

  // The re-aborter's try-lock signal is raised before any process starts
  // (constant, so it is not a race DPOR needs to explore); the abandoner's
  // signal is raised by the controller (gated). The rescue signals let the
  // idle callback unpark a starved completer and surface a lost wake-up as
  // a clean failure instead of a hang.
  std::atomic<bool> raised{true};
  model::Signal* abort_sig = m.alloc_signal();
  model::Signal* rescue[2] = {m.alloc_signal(), m.alloc_signal()};

  // Block-release choreography (all gated words): the holder parks its
  // critical section on `cs_gate`; the re-aborter parks between its two
  // attempts on `revive_gate`; `abandoner_done` / `reaborter_done` hand the
  // baton back to the controller.
  Model::Word* cs_gate = m.alloc(1, 0);
  Model::Word* revive_gate = m.alloc(1, 0);
  Model::Word* abandoner_done = m.alloc(1, 0);
  Model::Word* reaborter_done = m.alloc(1, 0);

  std::atomic<bool> rescued{false};
  ctx.scheduler().set_idle_callback([&] {
    if (rescued.load(std::memory_order_relaxed)) return false;
    rescued.store(true, std::memory_order_relaxed);
    for (auto* s : rescue) s->flag.store(true, std::memory_order_seq_cst);
    return true;
  });

  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};
  Model::Word* scratch = m.alloc(1, 0);

  const auto is_set = [](std::uint64_t v) { return v != 0; };
  const auto attempt = [&](Pid p, const std::atomic<bool>* stop,
                           Model::Word* cs_wait) {
    if (!lock.enter(p, stop)) return false;
    if (in_cs.fetch_add(1, std::memory_order_seq_cst) != 0) {
      overlap.store(true, std::memory_order_seq_cst);
    }
    if (cs_wait != nullptr) {
      m.wait(p, *cs_wait, is_set, nullptr);  // park while holding (the wall)
    } else {
      m.read(p, *scratch);  // hold the critical section for one gated step
    }
    in_cs.fetch_sub(1, std::memory_order_seq_cst);
    lock.exit(p);
    return true;
  };

  ctx.run([&](Pid p) {
    switch (p) {
      case 0:  // holder: walls the queue until the controller releases it
        attempt(0, &rescue[0]->flag, cs_gate);
        break;
      case 1:  // abandoner: aborts mid-queue when the controller raises it
        attempt(1, &abort_sig->flag, nullptr);
        m.write(1, *abandoner_done, 1);
        break;
      case 2:  // re-aborter: abandon, park, then revive-and-reabandon
        attempt(2, &raised, nullptr);
        m.wait(2, *revive_gate, is_set, nullptr);
        attempt(2, &raised, nullptr);
        m.write(2, *reaborter_done, 1);
        break;
      case 3:  // walker: its prev-read/claim-CAS window is the race
        attempt(3, &rescue[1]->flag, nullptr);
        break;
      default:  // controller: force abandon, then release the revival
        m.raise_signal(4, *abort_sig);
        m.wait(4, *abandoner_done, is_set, nullptr);
        m.write(4, *revive_gate, 1);
        m.wait(4, *reaborter_done, is_set, nullptr);
        m.write(4, *cs_gate, 1);
        break;
    }
  });

  if (overlap.load(std::memory_order_relaxed)) {
    ctx.fail("mutual exclusion violated: two processes in the CS");
  }
  if (rescued.load(std::memory_order_relaxed)) {
    ctx.fail("lost wake-up: a competitor was parked forever");
  }
}

/// Crash-as-forced-abort: the model-checkable core of the aml::ipc
/// owner-death recovery hand-off (see aml/ipc/shm_lock.hpp). A process
/// cannot literally vanish mid-step under the gated scheduler, so the crash
/// is modeled as what recovery makes of it: the victim stops taking steps
/// while holding the CS (returns without exit) and a *recoverer executing
/// under its own pid* finishes the passage by running the victim's exit —
/// which is precisely what ShmStripeLock::recover does (the victim pid in
/// the real protocol is only the journal being read; every memory operation
/// is the recoverer's own step, so pid-gating is faithful).
///
/// Choreography: p0 acquires first (p2/p3 are gated behind a p0_holding
/// word, p1 never enters, so p0 deterministically takes slot 0 and the
/// pre-set go[0] grants immediately), runs its CS, then "crashes" — it
/// publishes p0_holding and crashed and returns while still the holder. p1
/// waits on crashed, force-exits the dead holder's passage, then raises
/// p3's abort signal so the recovery hand-off races a live abort: p3's
/// Remove can cross paths with the forced exit's FindNext exactly as
/// Algorithm 3.3's responsibility rule anticipates. p2 runs a full passage
/// behind the recovery. Failures: CS overlap, a lost wake-up after the
/// forced exit (idle rescue), or any OneShot/Tree oracle violation.
inline void ipc_crash_recovery(sched::ExecutionContext& ctx) {
  using Model = model::CountingCcModel;
  constexpr Pid kProcs = 4;
  constexpr std::uint32_t kSlots = 3;
  Model m(kProcs);
  m.set_hook(&ctx.scheduler());
  core::OneShotLock<Model> lock(m, kSlots, /*w=*/4, core::Find::kPlain);

  OneShotOracle<core::OneShotLock<Model>> queue_oracle(lock);
  TreeOracle<Model> tree_oracle(lock.tree());
  OracleSet oracles;
  oracles.watch(queue_oracle);
  oracles.watch(tree_oracle);
  oracles.install(ctx.scheduler());

  model::Signal* sig0 = m.alloc_signal();
  model::Signal* sig2 = m.alloc_signal();
  model::Signal* sig3 = m.alloc_signal();  // raised by the recoverer (p1)

  std::atomic<bool> rescued{false};
  ctx.scheduler().set_idle_callback([&] {
    if (rescued.load(std::memory_order_relaxed)) return false;
    rescued.store(true, std::memory_order_relaxed);
    sig0->flag.store(true, std::memory_order_seq_cst);
    sig2->flag.store(true, std::memory_order_seq_cst);
    sig3->flag.store(true, std::memory_order_seq_cst);
    return true;
  });

  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};
  Model::Word* scratch = m.alloc(1, 0);
  Model::Word* p0_holding = m.alloc(1, 0);
  Model::Word* crashed = m.alloc(1, 0);

  auto cs = [&](Pid p) {
    if (in_cs.fetch_add(1, std::memory_order_seq_cst) != 0) {
      overlap.store(true, std::memory_order_seq_cst);
    }
    m.read(p, *scratch);  // hold the CS for one gated step
    in_cs.fetch_sub(1, std::memory_order_seq_cst);
  };

  ctx.run([&](Pid p) {
    switch (p) {
      case 0: {  // the victim: acquires, then crashes while holding
        const auto r = lock.enter(p, &sig0->flag);
        AML_ASSERT(r.acquired, "slot 0 is pre-granted");
        cs(p);  // leaves in_cs before "dying": a dead holder occupies no CS
        m.write(p, *p0_holding, 1);
        m.write(p, *crashed, 1);
        return;  // no exit — the crash
      }
      case 1: {  // the recoverer: forced exit on the victim's behalf
        m.wait(p, *crashed, [](std::uint64_t v) { return v != 0; }, nullptr);
        lock.exit(p);  // ShmStripeLock::recover's kHolding arm
        m.raise_signal(p, *sig3);
        return;
      }
      case 2: {  // a survivor taking a full passage behind the recovery
        m.wait(p, *p0_holding, [](std::uint64_t v) { return v != 0; },
               nullptr);
        const auto r = lock.enter(p, &sig2->flag);
        if (r.acquired) {
          cs(p);
          lock.exit(p);
        }
        return;
      }
      case 3: {  // a survivor whose abort races the recovery hand-off
        m.wait(p, *p0_holding, [](std::uint64_t v) { return v != 0; },
               nullptr);
        const auto r = lock.enter(p, &sig3->flag);
        if (r.acquired) {
          cs(p);
          lock.exit(p);
        }
        return;
      }
      default:
        return;
    }
  });

  if (overlap.load(std::memory_order_relaxed)) {
    ctx.fail("mutual exclusion violated: two processes in the CS");
  }
  if (rescued.load(std::memory_order_relaxed)) {
    ctx.fail(
        "lost wake-up after the forced exit: a survivor was parked forever "
        "and had to be rescued");
  }
}

/// Death at the recoverable F&A (see aml/ipc/shm_lock.hpp): the victim
/// announces an increment on the packed lock word, issues at most one
/// stamping CAS, and dies immediately after it — before any phase store can
/// record the outcome. A concurrent mutator runs its own stamped F&A with
/// the helping rule (credit the stamp it is about to overwrite into the
/// owner's landed word), and a recoverer then runs the post-mortem decision
/// predicate — word stamp first, landed credit second. Whether the victim's
/// CAS landed is decided purely by the schedule (a mutator CAS racing into
/// the window fails it), so DPOR explores death-before-landing,
/// death-after-landing, and every helping overlap in between. Failure: the
/// decision disagrees with the ground truth of whether the CAS landed — the
/// real recovery would then lose or double-apply the victim's increment.
inline void ipc_death_at_fa(sched::ExecutionContext& ctx) {
  using Model = model::CountingCcModel;
  constexpr Pid kProcs = 3;
  Model m(kProcs);
  m.set_hook(&ctx.scheduler());

  // The packed word: refcnt | (stamp_pid + 1) << 8 | stamp_seq << 16 —
  // stamp 0 means "never stamped", mirroring kNoStampPid.
  auto pack = [](std::uint64_t refcnt, Pid stamp_pid, std::uint64_t seq) {
    return refcnt | (static_cast<std::uint64_t>(stamp_pid) + 1) << 8 |
           seq << 16;
  };
  auto refcnt_of = [](std::uint64_t w) { return w & 0xFF; };
  auto stamp_of = [](std::uint64_t w) { return w >> 8; };  // (pid+1, seq)

  Model::Word* word = m.alloc(1, 0);
  Model::Word* ann = m.alloc(kProcs, 0);     // (seq << 1) | announced
  Model::Word* landed = m.alloc(kProcs, 0);  // highest seq proven landed
  Model::Word* dead = m.alloc(1, 0);

  std::atomic<bool> truth_landed{false};  // the victim's CAS actually won
  std::atomic<bool> decided_landed{false};

  // Helping rule: before overwriting a stamp, credit it to its owner — but
  // only while the owner's announcement still carries that sequence.
  auto help = [&](Pid p, std::uint64_t w) {
    const std::uint64_t stamp = stamp_of(w);
    if (stamp == 0) return;
    const Pid q = static_cast<Pid>((stamp & 0xFF) - 1);
    const std::uint64_t seq = stamp >> 8;
    if ((m.read(p, ann[q]) >> 1) != seq) return;
    const std::uint64_t cur = m.read(p, landed[q]);
    if (cur < seq) m.cas(p, landed[q], cur, seq);
  };

  ctx.run([&](Pid p) {
    switch (p) {
      case 0: {  // victim: announce, one CAS attempt, die on the next step
        m.write(p, ann[0], (1u << 1) | 1);  // seq 1, op announced
        const std::uint64_t w = m.read(p, *word);
        help(p, w);
        if (m.cas(p, *word, w, pack(refcnt_of(w) + 1, 0, 1))) {
          truth_landed.store(true, std::memory_order_relaxed);
        }
        m.write(p, *dead, 1);  // death: no self-credit, no phase store
        return;
      }
      case 1: {  // mutator: a full recoverable F&A over the same word
        m.write(p, ann[1], (1u << 1) | 1);
        for (;;) {
          const std::uint64_t w = m.read(p, *word);
          help(p, w);
          if (m.cas(p, *word, w, pack(refcnt_of(w) + 1, 1, 1))) break;
        }
        const std::uint64_t cur = m.read(p, landed[1]);
        if (cur < 1) m.cas(p, landed[1], cur, 1);  // winner self-credit
        return;
      }
      default: {  // recoverer: post-mortem decision, word stamp read first
        m.wait(p, *dead, [](std::uint64_t v) { return v != 0; }, nullptr);
        const std::uint64_t w = m.read(p, *word);
        help(p, w);
        const bool by_stamp = stamp_of(w) == (1u | (1u << 8));
        const bool by_credit = m.read(p, landed[0]) >= 1;
        decided_landed.store(by_stamp || by_credit,
                             std::memory_order_relaxed);
        return;
      }
    }
  });

  if (decided_landed.load(std::memory_order_relaxed) !=
      truth_landed.load(std::memory_order_relaxed)) {
    ctx.fail(
        "recovery decision disagrees with whether the victim's F&A landed: "
        "the increment would be lost or double-applied");
  }
}

/// The counting-model twin of the native fast path's justified relaxations
/// (tools/edges.toml). Two competitors make two passages each through the
/// long-lived lock while p2 raises p1's abort signal, so one execution set
/// crosses every new edge pair: each grant crosses oneshot.grant, each exit
/// retires the passage's instance and CASes in a fresh one with a fresh spin
/// node (longlived.spn_switch + spinpool.pin_publish), and the signal path
/// crosses core.abort_signal. The counting model runs every `model::ord`
/// relaxed op at full strength, so DPOR explores the orderings the native
/// acquire/release pairs must still contain — an algorithmic assumption
/// accidentally buried in a relaxation (a spin word that needed a Dekker, a
/// version check that needed the grant's payload) surfaces here as a CS
/// overlap, a LockDescOracle violation, or a lost wake-up, independent of
/// any hardware's kindness. The litmus suite (tests/litmus/) checks the
/// same edges from the native side; this workload checks them from the
/// algorithm side.
inline void longlived_edge_twin(sched::ExecutionContext& ctx) {
  using Model = model::CountingCcModel;
  using Lock = core::LongLivedLock<Model>;
  constexpr Pid kProcs = 3;
  constexpr Pid kCompetitors = 2;
  constexpr std::uint32_t kRounds = 2;  // >1: forces instance/spn switches
  Model m(kProcs);
  m.set_hook(&ctx.scheduler());
  Lock lock(m, {.nprocs = kCompetitors, .w = 4, .find = core::Find::kPlain});

  LockDescOracle<Lock> desc_oracle(lock);
  ctx.scheduler().add_invariant_probe(
      [&desc_oracle] { return desc_oracle.check(); });

  // One gated Signal per competitor: p2 raises p1's; p0's exists so the
  // idle rescue can unpark a starved competitor and terminate the run.
  model::Signal* sig[kCompetitors];
  for (std::uint32_t i = 0; i < kCompetitors; ++i) sig[i] = m.alloc_signal();

  std::atomic<bool> rescued{false};
  ctx.scheduler().set_idle_callback([&] {
    if (rescued.load(std::memory_order_relaxed)) return false;
    rescued.store(true, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < kCompetitors; ++i) {
      sig[i]->flag.store(true, std::memory_order_seq_cst);
    }
    return true;
  });

  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};
  Model::Word* scratch = m.alloc(1, 0);

  ctx.run([&](Pid p) {
    if (p == 2) {
      m.raise_signal(p, *sig[1]);
      return;
    }
    for (std::uint32_t round = 0; round < kRounds; ++round) {
      const auto r = lock.enter(p, &sig[p]->flag);
      if (!r.acquired) continue;  // aborted: re-enter next round
      if (in_cs.fetch_add(1, std::memory_order_seq_cst) != 0) {
        overlap.store(true, std::memory_order_seq_cst);
      }
      m.read(p, *scratch);  // hold the critical section for one gated step
      in_cs.fetch_sub(1, std::memory_order_seq_cst);
      lock.exit(p);
    }
  });

  if (overlap.load(std::memory_order_relaxed)) {
    ctx.fail("mutual exclusion violated: two processes in the CS");
  }
  if (rescued.load(std::memory_order_relaxed)) {
    ctx.fail(
        "lost wake-up: a competitor was parked forever and had to be "
        "rescued by an injected abort signal");
  }
}

}  // namespace detail

/// All registered workloads, by name.
inline const std::vector<WorkloadInfo>& workload_registry() {
  static const std::vector<WorkloadInfo> registry = {
      {
          "oneshot-handoff-bug",
          "one-shot lock, abort responsibility hand-off skipped (seeded "
          "bug): an abort racing an exit loses a wake-up",
          4,
          [](sched::ExecutionContext& ctx) {
            detail::oneshot_handoff(ctx, /*inject=*/true);
          },
      },
      {
          "oneshot-handoff-clean",
          "same workload with the hand-off intact: must pass under full "
          "exploration",
          4,
          [](sched::ExecutionContext& ctx) {
            detail::oneshot_handoff(ctx, /*inject=*/false);
          },
      },
      {
          "jayanti-abandon-epochs",
          "amortized lock, choreographed abandonments at adjacent queue "
          "positions with a revive-and-reabandon between a walker's prev "
          "read and its claim-CAS: the epoch-versioned claim must not "
          "consume the second abandonment with the first's prev",
          5,
          [](sched::ExecutionContext& ctx) {
            detail::jayanti_abandon_epochs(ctx);
          },
      },
      {
          "ipc-crash-recovery",
          "crash-as-forced-abort: a holder dies in the CS and a recoverer "
          "finishes its passage under its own pid while a survivor's abort "
          "races the re-driven hand-off (the aml::ipc recovery core)",
          4,
          [](sched::ExecutionContext& ctx) {
            detail::ipc_crash_recovery(ctx);
          },
      },
      {
          "ipc-death-at-fa",
          "recoverable F&A: a victim dies right after its stamping CAS "
          "(landed or not, decided by the schedule) while a mutator's "
          "helping F&A overwrites the stamp; the recoverer's post-mortem "
          "decision must match the ground truth",
          3,
          [](sched::ExecutionContext& ctx) {
            detail::ipc_death_at_fa(ctx);
          },
      },
      {
          "longlived-edge-twin",
          "long-lived lock, repeat passages with a raced abort: the "
          "counting-model twin of the native relaxation's edge pairs "
          "(oneshot.grant, longlived.spn_switch, spinpool.pin_publish, "
          "core.abort_signal) explored at full strength",
          3,
          [](sched::ExecutionContext& ctx) {
            detail::longlived_edge_twin(ctx);
          },
      },
      {
          "table-hybrid-resize-bridge",
          "LockTable stripe switches amortized->paper across a mid-passage "
          "resize; dual-acquire bridging must hold across algorithms",
          3,
          [](sched::ExecutionContext& ctx) {
            detail::table_hybrid_resize_bridge(ctx);
          },
      },
  };
  return registry;
}

/// Look up a workload by name; nullptr if absent.
inline const WorkloadInfo* find_workload(const std::string& name) {
  for (const auto& w : workload_registry()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace aml::analysis
