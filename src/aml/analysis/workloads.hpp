// Named model-checking workloads shared by the analysis tests and the
// aml_replay tool (aml::analysis).
//
// A workload is a factory the explorer invokes once per execution: it builds
// a fresh world (model + lock), installs the scheduler hook, registers
// oracles, runs the process bodies and reports failures through
// ExecutionContext::fail(). Keeping them in a registry means a failure trace
// emitted by a test names a workload the standalone replay tool can rebuild
// byte-for-byte — the trace's choice sequence then reproduces the failing
// interleaving deterministically.
//
// The flagship entry is `oneshot-handoff-bug`: the one-shot queue lock with
// the abort-path responsibility hand-off deliberately disabled
// (FaultInjection::skip_abort_responsibility — Algorithm 3.3 line 15
// skipped). Three processes compete while a fourth delivers an abort signal
// to the middle one; in the buggy interleaving the exiting process signals
// the aborting slot (a wasted wake-up) and the aborter, who observes
// Head == LastExited and is therefore responsible for re-signalling, skips
// it — the third process sleeps forever. The abort signal is a gated
// model::Signal so DPOR sees the raise/observe race (a plain std::atomic
// store would have no footprint and the reduction could unsoundly prune the
// failing interleaving).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "aml/analysis/oracles.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/sched/explorer.hpp"

namespace aml::analysis {

struct WorkloadInfo {
  std::string name;
  std::string description;
  Pid nprocs = 0;
  std::function<void(sched::ExecutionContext&)> factory;
};

namespace detail {

/// Three competitors (p0..p2) on a 3-slot one-shot lock; p3 raises p1's
/// abort signal as its only (gated) step. `inject` disables the abort path's
/// responsibility hand-off. Failures reported: mutual-exclusion violation,
/// lost wake-up (a competitor parked forever; detected by the idle rescue),
/// and any oracle violation (folded in by ExecutionContext::run).
inline void oneshot_handoff(sched::ExecutionContext& ctx, bool inject) {
  using Model = model::CountingCcModel;
  constexpr Pid kProcs = 4;
  constexpr std::uint32_t kSlots = 3;
  Model m(kProcs);
  m.set_hook(&ctx.scheduler());
  core::OneShotLock<Model> lock(m, kSlots, /*w=*/4, core::Find::kPlain);
  if (inject) {
    core::FaultInjection faults;
    faults.skip_abort_responsibility = true;
    lock.inject_faults(faults);
  }

  OneShotOracle<core::OneShotLock<Model>> queue_oracle(lock);
  TreeOracle<Model> tree_oracle(lock.tree());
  OracleSet oracles;
  oracles.watch(queue_oracle);
  oracles.watch(tree_oracle);
  oracles.install(ctx.scheduler());

  // One gated Signal per competitor. Only p1's is ever raised by the
  // workload (by p3); the others exist so the idle rescue can unpark a
  // starved competitor and let the execution terminate cleanly.
  model::Signal* sig[kSlots];
  for (std::uint32_t i = 0; i < kSlots; ++i) sig[i] = m.alloc_signal();

  std::atomic<bool> rescued{false};
  ctx.scheduler().set_idle_callback([&] {
    if (rescued.load(std::memory_order_relaxed)) return false;
    rescued.store(true, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < kSlots; ++i) {
      sig[i]->flag.store(true, std::memory_order_seq_cst);
    }
    return true;
  });

  std::atomic<int> in_cs{0};
  std::atomic<bool> overlap{false};
  Model::Word* scratch = m.alloc(1, 0);

  ctx.run([&](Pid p) {
    if (p == 3) {
      m.raise_signal(p, *sig[1]);
      return;
    }
    const auto r = lock.enter(p, &sig[p]->flag);
    if (r.acquired) {
      if (in_cs.fetch_add(1, std::memory_order_seq_cst) != 0) {
        overlap.store(true, std::memory_order_seq_cst);
      }
      m.read(p, *scratch);  // hold the critical section for one gated step
      in_cs.fetch_sub(1, std::memory_order_seq_cst);
      lock.exit(p);
    }
  });

  if (overlap.load(std::memory_order_relaxed)) {
    ctx.fail("mutual exclusion violated: two processes in the CS");
  }
  if (rescued.load(std::memory_order_relaxed)) {
    ctx.fail(
        "lost wake-up: a competitor was parked forever and had to be "
        "rescued by an injected abort signal");
  }
}

}  // namespace detail

/// All registered workloads, by name.
inline const std::vector<WorkloadInfo>& workload_registry() {
  static const std::vector<WorkloadInfo> registry = {
      {
          "oneshot-handoff-bug",
          "one-shot lock, abort responsibility hand-off skipped (seeded "
          "bug): an abort racing an exit loses a wake-up",
          4,
          [](sched::ExecutionContext& ctx) {
            detail::oneshot_handoff(ctx, /*inject=*/true);
          },
      },
      {
          "oneshot-handoff-clean",
          "same workload with the hand-off intact: must pass under full "
          "exploration",
          4,
          [](sched::ExecutionContext& ctx) {
            detail::oneshot_handoff(ctx, /*inject=*/false);
          },
      },
  };
  return registry;
}

/// Look up a workload by name; nullptr if absent.
inline const WorkloadInfo* find_workload(const std::string& name) {
  for (const auto& w : workload_registry()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace aml::analysis
