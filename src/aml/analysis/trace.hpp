// Replayable execution traces.
//
// A scheduled execution is fully determined by its grant (choice) sequence,
// so persisting that sequence makes any failure reproducible: the scheduler
// writes a trace file before aborting on a liveness violation, the explorer
// writes one for the first failing execution it finds, and tools/aml_replay
// (or sched::policies::replay) re-runs it step for step.
//
// Format (line-oriented text, "aml-trace-v1"):
//
//   aml-trace-v1
//   workload <name>            # registry name or scheduler label, no spaces
//   nprocs <n>
//   seed <n>
//   reason <free text to end of line>        # optional
//   c <pid>                                  # one line per choice, or
//   c <pid> <addr> <K> <addr2> <K2>          # ... with the step footprint
//   end
//
// Footprint addresses are the models' stable word/signal ids ("-" = none);
// kinds are "?" (unknown), "R" (read), "M" (mutate). Footprints are
// informational — replay only needs the pid column — but they make a trace
// self-describing when debugging a race by hand.
//
// This header deliberately depends only on aml/model (not aml/sched) so the
// scheduler itself can include it to emit fatal traces.
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aml/model/types.hpp"

namespace aml::analysis {

struct TraceFile {
  std::string workload;  ///< registry name of the workload that produced it
  std::uint32_t nprocs = 0;
  std::uint64_t seed = 0;
  std::string reason;  ///< why it was emitted (violation / deadlock / ...)
  std::vector<model::Pid> choices;
  /// Parallel to `choices` when non-empty; may be empty (choices-only trace).
  std::vector<model::Footprint> footprints;
};

namespace detail {

inline char kind_char(model::Footprint::Kind k) {
  switch (k) {
    case model::Footprint::Kind::kRead:
      return 'R';
    case model::Footprint::Kind::kMutate:
      return 'M';
    case model::Footprint::Kind::kNone:
      break;
  }
  return '?';
}

inline bool parse_kind(const std::string& s, model::Footprint::Kind* out) {
  if (s == "R") {
    *out = model::Footprint::Kind::kRead;
  } else if (s == "M") {
    *out = model::Footprint::Kind::kMutate;
  } else if (s == "?") {
    *out = model::Footprint::Kind::kNone;
  } else {
    return false;
  }
  return true;
}

inline std::string addr_str(std::uint64_t addr) {
  return addr == model::Footprint::kNoAddr ? "-" : std::to_string(addr);
}

inline bool parse_addr(const std::string& s, std::uint64_t* out) {
  if (s == "-") {
    *out = model::Footprint::kNoAddr;
    return true;
  }
  std::istringstream in(s);
  return static_cast<bool>(in >> *out);
}

}  // namespace detail

/// Serialize a trace. Returns false on I/O failure (never throws).
inline bool write_trace(const std::string& path, const TraceFile& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "aml-trace-v1\n";
  out << "workload " << (trace.workload.empty() ? "unknown" : trace.workload)
      << "\n";
  out << "nprocs " << trace.nprocs << "\n";
  out << "seed " << trace.seed << "\n";
  if (!trace.reason.empty()) out << "reason " << trace.reason << "\n";
  const bool with_fp = trace.footprints.size() == trace.choices.size() &&
                       !trace.footprints.empty();
  for (std::size_t i = 0; i < trace.choices.size(); ++i) {
    out << "c " << trace.choices[i];
    if (with_fp) {
      const model::Footprint& f = trace.footprints[i];
      out << ' ' << detail::addr_str(f.addr) << ' ' << detail::kind_char(f.kind)
          << ' ' << detail::addr_str(f.addr2) << ' '
          << detail::kind_char(f.kind2);
    }
    out << "\n";
  }
  out << "end\n";
  return static_cast<bool>(out.flush());
}

/// Parse a trace file. Returns false (and fills `error` when non-null) on
/// malformed input; a well-formed file round-trips through write_trace().
inline bool load_trace(const std::string& path, TraceFile* trace,
                       std::string* error = nullptr) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = path + ": " + why;
    return false;
  };
  std::ifstream in(path);
  if (!in) return fail("cannot open");
  std::string line;
  if (!std::getline(in, line) || line != "aml-trace-v1") {
    return fail("missing aml-trace-v1 header");
  }
  *trace = TraceFile{};
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "workload") {
      fields >> trace->workload;
    } else if (tag == "nprocs") {
      if (!(fields >> trace->nprocs)) return fail("bad nprocs");
    } else if (tag == "seed") {
      if (!(fields >> trace->seed)) return fail("bad seed");
    } else if (tag == "reason") {
      std::getline(fields >> std::ws, trace->reason);
    } else if (tag == "c") {
      model::Pid pid = 0;
      if (!(fields >> pid)) return fail("bad choice line: " + line);
      trace->choices.push_back(pid);
      std::string a, k, a2, k2;
      if (fields >> a >> k >> a2 >> k2) {
        model::Footprint f;
        if (!detail::parse_addr(a, &f.addr) || !detail::parse_kind(k, &f.kind) ||
            !detail::parse_addr(a2, &f.addr2) ||
            !detail::parse_kind(k2, &f.kind2)) {
          return fail("bad footprint: " + line);
        }
        trace->footprints.push_back(f);
      }
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      return fail("unknown tag: " + tag);
    }
  }
  if (!saw_end) return fail("truncated (no end marker)");
  if (!trace->footprints.empty() &&
      trace->footprints.size() != trace->choices.size()) {
    return fail("footprint count does not match choice count");
  }
  return true;
}

}  // namespace aml::analysis
