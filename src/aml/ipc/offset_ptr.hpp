// aml::ipc layout vocabulary: offset-addressed pointers and spans for
// structures placed in a shared-memory arena.
//
// A shm segment maps at a different base address in every attached process,
// so nothing stored *inside* the segment may be a raw pointer. Shm-placeable
// structures instead store byte offsets relative to the arena base and
// resolve them against the local mapping on use. offset_ptr<T> is a single
// offset; offset_span<T> is an offset + element count (the flat-array shape
// every paper structure has: all of them are O(N^2) words of arrays).
//
// Conventions, enforced by amlint rule R5 (tools/amlint.cpp) over
// src/aml/ipc/:
//
//   * a struct whose instances live inside the arena is marked with
//     AML_SHM_PLACEABLE(Type) right after its definition. The macro
//     static_asserts standard layout and trivial destructibility (virtuals
//     and owning members cannot survive a raw byte mapping);
//   * marked structs hold only scalars, std::atomic words, offset_ptr /
//     offset_span members — never raw pointers or references, which R5's
//     token scan rejects between the AML_SHM_REGION_BEGIN/END markers.
//
// Offset 0 is the null offset: the arena superblock occupies the start of
// the segment, so no allocated object ever resolves there.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "aml/pal/config.hpp"

namespace aml::ipc {

/// Marks a type as placeable in the shm arena: standard layout (a fixed byte
/// layout every process agrees on) and trivially destructible (nobody runs
/// destructors on a segment; detach is munmap). Atomics are allowed — they
/// are address-free on every supported ABI — which is why the check is not
/// is_trivially_copyable (std::atomic deletes its copy constructor).
#define AML_SHM_PLACEABLE(Type)                                            \
  static_assert(std::is_standard_layout_v<Type>,                           \
                #Type " must be standard layout to live in shared memory"); \
  static_assert(std::is_trivially_destructible_v<Type>,                    \
                #Type " must be trivially destructible (shm is munmap'd, " \
                      "never destroyed)")

/// Null offset sentinel (the superblock owns offset 0).
inline constexpr std::uint64_t kNullOffset = 0;

// AML_SHM_REGION_BEGIN — amlint R5 scans from here for raw pointers,
// references and virtuals in shm-placeable struct definitions. (This header
// defines the vocabulary itself, so the markers double as the canonical
// example of the discipline.)

/// A T* stored as a byte offset from the arena base.
template <typename T>
struct offset_ptr {
  std::uint64_t off = kNullOffset;

  bool null() const { return off == kNullOffset; }

  /// Resolve against the local mapping base.
  T* get(void* base) const {
    if (null()) return nullptr;
    return reinterpret_cast<T*>(static_cast<std::byte*>(base) + off);
  }

  T& at(void* base) const {
    AML_DASSERT(!null(), "dereferencing a null offset_ptr");
    return *get(base);
  }

  static offset_ptr from(const void* base, const T* p) {
    offset_ptr r;
    if (p != nullptr) {
      r.off = static_cast<std::uint64_t>(
          reinterpret_cast<const std::byte*>(p) -
          static_cast<const std::byte*>(base));
    }
    return r;
  }
};

/// A contiguous array of T stored as (offset, count).
template <typename T>
struct offset_span {
  std::uint64_t off = kNullOffset;
  std::uint64_t count = 0;

  bool null() const { return off == kNullOffset; }
  std::uint64_t size() const { return count; }

  T* data(void* base) const {
    if (null()) return nullptr;
    return reinterpret_cast<T*>(static_cast<std::byte*>(base) + off);
  }

  T& at(void* base, std::uint64_t i) const {
    AML_DASSERT(i < count, "offset_span index out of range");
    return data(base)[i];
  }
};

// AML_SHM_REGION_END

AML_SHM_PLACEABLE(offset_ptr<std::uint64_t>);
AML_SHM_PLACEABLE(offset_span<std::uint64_t>);

}  // namespace aml::ipc
