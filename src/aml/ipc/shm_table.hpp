// ShmNamedLockTable: the cross-process named-lock service — the table
// facade over shm-resident ShmStripeLock stripes, a ProcessRegistry for
// robust pid leasing, and the owner-death recovery sweep.
//
// Deployment shape: one process calls create(name, cfg), the others call
// attach(name, cfg) with the *same* configuration (enforced by the config
// hash in the arena superblock). Every attached process replays the
// identical construction sequence against the segment, so its process-local
// replica objects resolve to the same shm words (see shm_arena.hpp).
//
// Sessions lease a dense pid from the shm ProcessRegistry (so ids are
// unique across all attached processes), and every acquisition pulses the
// slot's heartbeat (advisory progress observability; death detection is
// ESRCH + start-time — see process_registry.hpp). When a process dies
// holding locks, any survivor's
// recover_dead() finds the stale slots, claims them, and drives each victim
// passage through the abort/exit path on every stripe (see shm_lock.hpp),
// then frees — or, for a death inside the one journal-blind doorway window,
// retires — the pid. Retired pids are reclaimed by later sweeps once a
// full-quiescence epoch proves no live passage references them. A process
// that *restarts* with its previous incarnation's identity can instead
// repair its own passage directly via reattach_session().
//
// v1 scope (documented limitations, not accidents):
//   * single-key operations only — the multi-process multi-key transaction
//     needs a cross-process acquisition journal per (stripe, pid) to make
//     partial-acquisition crashes recoverable, which is follow-up work;
//   * the stripe count is fixed at creation — the in-process table's
//     auto-grow reallocates stripe arrays, which a sealed bump arena cannot
//     express;
//   * deadlines/abort signals are process-local (a TimerWheel in each
//     process); recovery cancels the local deadlines of a locally-leased
//     dead pid so its tokens cannot fire into the next leaseholder.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <unistd.h>

#include "aml/core/abortable_lock.hpp"
#include "aml/core/adapters.hpp"
#include "aml/ipc/process_registry.hpp"
#include "aml/ipc/shm_arena.hpp"
#include "aml/ipc/shm_lock.hpp"
#include "aml/ipc/shm_space.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/obs/shm_metrics.hpp"
#include "aml/pal/config.hpp"
#include "aml/table/hash.hpp"

namespace aml::ipc {

struct ShmTableConfig {
  Pid nprocs = 8;             ///< dense pids shared across all processes
  std::uint32_t stripes = 8;  ///< must be a power of two; fixed for life
  std::uint32_t tree_width = 64;
  core::Find find = core::Find::kAdaptive;
  /// Segment size; 0 derives a generous bound from nprocs/stripes. Shm
  /// objects are sparse (pages commit on first touch), so over-provisioning
  /// costs address space, not memory; the arena's exhaustion assert is the
  /// backstop if a future layout outgrows the estimate.
  std::uint64_t segment_bytes = 0;
  /// Capacity of the segment-hosted event ring (obs::ShmMetrics); 0
  /// disables event recording (counters and histograms stay on).
  std::uint32_t ring_capacity = 1024;
};

/// Bump when the construction replay sequence changes shape (new objects,
/// reordered allocations): it is mixed into the config hash, so a binary
/// laying out the old sequence is rejected at attach instead of replaying a
/// different construction into live state.
inline constexpr std::uint64_t kShmLayoutVersion = 3;

/// Everything the layout depends on, mixed into the superblock hash so a
/// mis-configured attacher is rejected instead of replaying a different
/// construction into live state.
inline std::uint64_t shm_config_hash(const ShmTableConfig& cfg) {
  std::uint64_t h = table::fmix64(ShmArena::kAbiVersion);
  h = table::fmix64(h ^ kShmLayoutVersion);
  h = table::fmix64(h ^ cfg.nprocs);
  h = table::fmix64(h ^ cfg.stripes);
  h = table::fmix64(h ^ cfg.tree_width);
  h = table::fmix64(h ^ static_cast<std::uint64_t>(cfg.find));
  h = table::fmix64(h ^ cfg.ring_capacity);
  return h;
}

// AML_SHM_REGION_BEGIN
/// First allocation of the construction replay, at a deterministic offset
/// (the first cache line after the superblock): the service's own layout
/// parameters, stored by the creator so an *external* inspector
/// (tools/aml_stat) can discover the configuration it must replay with —
/// no out-of-band config file needed to attach to an orphaned segment.
struct ServiceHeader {
  std::atomic<std::uint64_t> layout_version;
  std::atomic<std::uint64_t> nprocs;
  std::atomic<std::uint64_t> stripes;
  std::atomic<std::uint64_t> tree_width;
  std::atomic<std::uint64_t> find;
  std::atomic<std::uint64_t> ring_capacity;
};
// AML_SHM_REGION_END
AML_SHM_PLACEABLE(ServiceHeader);

/// Recovery accounting (process-local: what *this* process's sweeps did).
struct RecoveryStats {
  std::uint64_t sweeps = 0;          ///< recover_dead() calls
  std::uint64_t recovered_pids = 0;  ///< dead pids this process repaired
  std::uint64_t forced_aborts = 0;   ///< waiting victims driven to abort
  std::uint64_t forced_exits = 0;    ///< holding victims driven to exit
  std::uint64_t resignals = 0;       ///< mid-exit hand-offs re-driven
  std::uint64_t zombie_pids = 0;     ///< pids retired (doorway-blind window)
  std::uint64_t cancelled_deadlines = 0;  ///< victim timers disarmed locally
  std::uint64_t zombies_reclaimed = 0;  ///< retired pids freed after epoch
  std::uint64_t reentries = 0;       ///< own passages resumed via reattach
  /// LockDesc refcnt units on any stripe with no journaled passage behind
  /// them (a v1 zombie's legacy): value from this process's *last* sweep.
  std::uint64_t stranded_refcnts = 0;
};

class ShmNamedLockTable {
 public:
  using Clock = TimerWheel::Clock;
  using Stripe = ShmStripeLockT<obs::Metrics>;

  /// Create the segment and construct the service in it. Fails (nullptr +
  /// error) if the name exists — unlink() stale segments first.
  static std::unique_ptr<ShmNamedLockTable> create(const std::string& name,
                                                   const ShmTableConfig& cfg,
                                                   std::string* error) {
    if (!validate(cfg, error)) return nullptr;
    auto arena = ShmArena::create(name, segment_bytes(cfg),
                                  shm_config_hash(cfg), error);
    if (arena == nullptr) return nullptr;
    auto table = std::unique_ptr<ShmNamedLockTable>(
        new ShmNamedLockTable(std::move(arena), cfg));
    table->arena_->seal();
    return table;
  }

  /// Attach to an existing segment created with an identical configuration.
  static std::unique_ptr<ShmNamedLockTable> attach(
      const std::string& name, const ShmTableConfig& cfg, std::string* error,
      std::chrono::milliseconds timeout = std::chrono::seconds(10)) {
    if (!validate(cfg, error)) return nullptr;
    auto arena =
        ShmArena::attach(name, shm_config_hash(cfg), error, timeout);
    if (arena == nullptr) return nullptr;
    auto table = std::unique_ptr<ShmNamedLockTable>(
        new ShmNamedLockTable(std::move(arena), cfg));
    if (!table->arena_->verify_replay(error)) return nullptr;
    return table;
  }

  static void unlink(const std::string& name) { ShmArena::unlink(name); }

  /// Read a sealed segment's configuration from its ServiceHeader without
  /// attaching (read-only map of the first page). This is how aml_stat
  /// discovers what to replay with when inspecting a live or orphaned
  /// segment it was not told the configuration of.
  static bool peek_config(const std::string& name, ShmTableConfig* cfg,
                          std::string* error) {
    const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
    if (fd < 0) {
      if (error != nullptr) {
        *error = "shm_open(peek " + name + ") failed: " +
                 std::string(std::strerror(errno));
      }
      return false;
    }
    struct ::stat st {};
    if (::fstat(fd, &st) != 0 ||
        static_cast<std::uint64_t>(st.st_size) < header_offset() +
            sizeof(ServiceHeader)) {
      if (error != nullptr) {
        *error = "segment " + name + " too small for a service header";
      }
      ::close(fd);
      return false;
    }
    const std::size_t len = header_offset() + sizeof(ServiceHeader);
    void* base = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      if (error != nullptr) {
        *error = "mmap(peek " + name + ") failed: " +
                 std::string(std::strerror(errno));
      }
      return false;
    }
    bool ok = false;
    const Superblock* sb = reinterpret_cast<const Superblock*>(base);
    const ServiceHeader* hdr = reinterpret_cast<const ServiceHeader*>(
        static_cast<const std::byte*>(base) + header_offset());
    if (sb->ready.load(std::memory_order_acquire) == 0) {  // AML_X_EDGE(ipc.arena_seal)
      if (error != nullptr) {
        *error = "segment " + name + " not sealed (creator still "
                 "constructing, or died mid-construction)";
      }
    } else if (sb->magic.load(std::memory_order_relaxed) !=  // AML_RELAXED(read after ipc.arena_seal acquire)
                   ShmArena::kMagic ||
               sb->abi_version.load(std::memory_order_relaxed) !=  // AML_RELAXED(read after ipc.arena_seal acquire)
                   ShmArena::kAbiVersion) {
      if (error != nullptr) {
        *error = "segment " + name + ": bad magic or ABI version";
      }
    } else if (hdr->layout_version.load(std::memory_order_relaxed) !=  // AML_RELAXED(read after ipc.arena_seal acquire)
               kShmLayoutVersion) {
      if (error != nullptr) {
        *error = "segment " + name + ": layout version mismatch (have " +
                 std::to_string(hdr->layout_version.load(
                     std::memory_order_relaxed)) +  // AML_RELAXED(read after ipc.arena_seal acquire)
                 ", want " + std::to_string(kShmLayoutVersion) + ")";
      }
    } else {
      cfg->nprocs =
          static_cast<Pid>(hdr->nprocs.load(std::memory_order_relaxed));  // AML_RELAXED(read after ipc.arena_seal acquire)
      cfg->stripes = static_cast<std::uint32_t>(
          hdr->stripes.load(std::memory_order_relaxed));  // AML_RELAXED(read after ipc.arena_seal acquire)
      cfg->tree_width = static_cast<std::uint32_t>(
          hdr->tree_width.load(std::memory_order_relaxed));  // AML_RELAXED(read after ipc.arena_seal acquire)
      cfg->find = static_cast<core::Find>(
          hdr->find.load(std::memory_order_relaxed));  // AML_RELAXED(read after ipc.arena_seal acquire)
      cfg->ring_capacity = static_cast<std::uint32_t>(
          hdr->ring_capacity.load(std::memory_order_relaxed));  // AML_RELAXED(read after ipc.arena_seal acquire)
      cfg->segment_bytes = 0;
      ok = true;
    }
    ::munmap(base, len);
    return ok;
  }

  class Session;
  class Guard;

  /// Lease a dense pid for this process. Empty when all nprocs pids are
  /// live (or retired as zombies) — recover_dead() from any live session
  /// frees slots of dead holders.
  std::optional<Session> open_session() {
    std::uint64_t token = 0;
    const Pid id = registry_.try_lease(&token);
    if (id >= config_.nprocs) return std::nullopt;
    signals_[id].reset();
    return Session(*this, id, token);
  }

  // --- recovery ----------------------------------------------------------

  /// Sweep the registry for dead leaseholders and repair their passages,
  /// executing as `exec` (a live leased pid of this process; its per-stripe
  /// session caches are reused, so the caller must hold no guards). Returns
  /// the number of dead pids repaired. Safe to call from multiple survivors
  /// concurrently: the registry claim elects one recoverer per victim and
  /// the per-stripe seqlock serializes the stripe repairs.
  std::uint32_t recover_dead(Pid exec) {
    stats_.sweeps++;
    const std::uint64_t sweep_begin = obs::ShmMetrics::now_ns();
    std::uint32_t recovered = 0;
    std::uint32_t repaired = 0;  // zombies included: work was still done
    const std::uint64_t self_os = static_cast<std::uint64_t>(::getpid());
    for (Pid victim = 0; victim < config_.nprocs; ++victim) {
      // dead() is an advisory prefilter (it skips the claim CAS for the
      // common all-alive sweep); try_claim_recovery() re-establishes death
      // and claims under a single observed lease word, so a victim that is
      // recovered and re-leased between the two calls is never claimed.
      if (victim == exec || !registry_.dead(victim)) continue;
      if (!registry_.try_claim_recovery(victim)) continue;
      bool zombie = false;
      for (auto& stripe : stripes_) {
        switch (stripe->recover(exec, victim, self_os)) {
          case RecoveryAction::kNone:
            break;
          case RecoveryAction::kForcedAbort:
            stats_.forced_aborts++;
            break;
          case RecoveryAction::kForcedExit:
            stats_.forced_exits++;
            break;
          case RecoveryAction::kResignalled:
            stats_.resignals++;
            break;
          case RecoveryAction::kZombie:
            zombie = true;
            break;
        }
      }
      cancel_deadlines(victim);
      registry_.finish_recovery(victim, zombie);
      repaired++;
      if (zombie) {
        stats_.zombie_pids++;
      } else {
        stats_.recovered_pids++;
        recovered++;
      }
    }
    // Epoch-based zombie reclamation: a retired pid is freed once (a) its
    // frozen journal shows no queue footprint on any stripe — phases
    // kIdle/kSpinWait/kPreJoin only; a pid frozen in the doorway stays
    // parked, because re-leasing it would revive a ghost one-shot slot in
    // an instance that may still be current — and (b) the registry's
    // quiescence scan proves every live session has been idle since the
    // retirement, so no stale reference to the pid survives.
    for (Pid z = 0; z < config_.nprocs; ++z) {
      if (registry_.state(z) != ProcessRegistry::kZombie) continue;
      bool footprint = false;
      for (auto& stripe : stripes_) {
        const Phase ph = stripe->peek_phase(z);
        if (ph != kIdle && ph != kSpinWait && ph != kPreJoin) {
          footprint = true;
          break;
        }
      }
      if (footprint) continue;
      if (!registry_.try_reclaim_zombie(z)) continue;
      for (auto& stripe : stripes_) stripe->clear_journal(z);
      shm_metrics_.on_zombie_reclaimed(exec, z);
      stats_.zombies_reclaimed++;
    }
    // Stranded-refcnt audit (a v1 zombie's possible legacy): any excess of
    // a stripe's LockDesc refcnt over the journaled passages that could
    // hold a unit wedges the instance switch silently — acquires spin
    // forever with the refcnt never reaching zero — so report it as a
    // diagnosis. kPreJoin counts as a potential holder (a live joiner's
    // F&A can land before its kJoined store), so a transient race never
    // inflates the number; a truly stranded unit has no journal anywhere.
    std::uint64_t stranded = 0;
    for (auto& stripe : stripes_) {
      const std::uint64_t refcnt = stripe->peek_refcnt(exec);
      std::uint64_t holders = 0;
      for (Pid p = 0; p < config_.nprocs; ++p) {
        const Phase ph = stripe->peek_phase(p);
        if (ph >= kPreJoin && ph <= kCleanup) holders++;
      }
      if (refcnt > holders) stranded += refcnt - holders;
    }
    stats_.stranded_refcnts = stranded;
    // Sweep latency lands in the segment, so operators (and the bench's
    // recovery percentiles) can read it from any process — only sweeps that
    // actually repaired something are recorded; the all-alive prefilter
    // pass is a different (much cheaper) population.
    if (repaired != 0) {
      shm_metrics_.record_sweep_ns(obs::ShmMetrics::now_ns() - sweep_begin);
    }
    return recovered;
  }

  /// Restart re-entry: a process that re-attached to the segment and still
  /// holds its previous incarnation's identity (pid + lease token, persisted
  /// or inherited across exec) resumes or unwinds that incarnation's
  /// interrupted passages itself instead of waiting for a survivor sweep.
  /// The registry claim succeeds only if the lease word still equals
  /// `prev_token` and its published holder is provably dead — ESRCH or an
  /// OS start-time mismatch, which covers the restarted process re-drawing
  /// its own old OS pid. Every stripe's recovery arm then runs exactly as a
  /// survivor's would (the journal, not the executor, drives the repair),
  /// local deadlines are cancelled, and the slot is repossessed under a
  /// fresh token. Empty if the claim was lost (already re-leased or swept;
  /// fall back to open_session()) or if the old incarnation died in the
  /// doorway-blind window (the pid is retired as usual).
  std::optional<Session> reattach_session(Pid id, std::uint64_t prev_token) {
    if (id >= config_.nprocs) return std::nullopt;
    if (!registry_.try_reattach(id, prev_token)) return std::nullopt;
    const std::uint64_t self_os = static_cast<std::uint64_t>(::getpid());
    bool zombie = false;
    // exec == victim is sound here: the old incarnation is dead and this
    // process holds its exclusive kRecovering claim, so this is the normal
    // proxy pattern with the proxy running under the owner's own pid.
    for (auto& stripe : stripes_) {
      switch (stripe->recover(id, id, self_os)) {
        case RecoveryAction::kNone:
          break;
        case RecoveryAction::kForcedAbort:
          stats_.forced_aborts++;
          break;
        case RecoveryAction::kForcedExit:
          stats_.forced_exits++;
          break;
        case RecoveryAction::kResignalled:
          stats_.resignals++;
          break;
        case RecoveryAction::kZombie:
          zombie = true;
          break;
      }
    }
    cancel_deadlines(id);
    if (zombie) {
      registry_.finish_recovery(id, true);
      stats_.zombie_pids++;
      return std::nullopt;
    }
    const std::uint64_t token = registry_.repossess(id);
    signals_[id].reset();
    stats_.reentries++;
    shm_metrics_.on_reentry(id);
    return Session(*this, id, token);
  }

  // --- introspection ------------------------------------------------------

  const ShmTableConfig& config() const { return config_; }
  std::uint32_t stripe_count() const {
    return static_cast<std::uint32_t>(stripes_.size());
  }
  std::uint32_t stripe_of(std::uint64_t key) const {
    return static_cast<std::uint32_t>(table::key_hash(key)) &
           (stripe_count() - 1);
  }
  std::uint32_t stripe_of(std::string_view key) const {
    return static_cast<std::uint32_t>(table::key_hash(key)) &
           (stripe_count() - 1);
  }
  Stripe& stripe(std::uint32_t s) { return *stripes_[s]; }
  ProcessRegistry& registry() { return registry_; }
  ShmArena& arena() { return *arena_; }
  /// Process-local observability: normal *and* recovered passages land here
  /// (the recoverer's forced aborts/exits flow through the same sink hooks).
  obs::Metrics& metrics() { return metrics_; }
  /// Segment-hosted observability: survives every attached process, so a
  /// victim's last events and the recovery dispatch counters are readable
  /// post-mortem (tools/aml_stat renders this).
  obs::ShmMetrics& shm_metrics() { return shm_metrics_; }
  const obs::ShmMetrics& shm_metrics() const { return shm_metrics_; }
  const RecoveryStats& recovery_stats() const { return stats_; }
  std::size_t pending_deadlines() const { return wheel_.pending(); }

  // --- test hooks ---------------------------------------------------------

  /// Arm a deadline on `id`'s signal without entering a lock (the
  /// dead-session deadline-cancellation test pairs this with
  /// registry().debug_set_os_pid + recover_dead).
  TimerWheel::Token debug_arm(Pid id, Clock::time_point when) {
    const TimerWheel::Token token = wheel_.arm(signals_[id], when);
    std::lock_guard<std::mutex> lk(armed_mu_);
    armed_[id].push_back(token);
    return token;
  }

  /// A session: a registry pid lease bound to this process. Move-only.
  class Session {
   public:
    Session(Session&& o) noexcept
        : owner_(std::exchange(o.owner_, nullptr)), id_(o.id_),
          token_(o.token_) {}
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    Session& operator=(Session&&) = delete;
    ~Session() { close(); }

    Pid id() const { return id_; }
    /// The lease word securing this session. A process that persists
    /// (id, token) across a restart — or inherits them across exec — can
    /// hand them to reattach_session() to resume its own passages.
    std::uint64_t token() const { return token_; }

    /// No-op if a survivor recovered this lease out from under us (the
    /// registry release is token-checked).
    void close() {
      if (owner_ != nullptr) {
        owner_->registry_.release(id_, token_);
        owner_ = nullptr;
      }
    }

    /// Blocking acquisition (starvation-free; unabortable).
    template <typename Key>
    Guard acquire(Key key) {
      const std::uint32_t s = owner_->stripe_of(key);
      owner_->registry_.beat(id_);
      const core::EnterResult r =
          owner_->stripes_[s]->enter(id_, nullptr);
      AML_ASSERT(r.acquired, "unsignalled enter cannot abort");
      return Guard(*owner_, id_, s);
    }

    /// Deadline-bounded acquisition: empty optional iff the deadline passed
    /// first (the lock's bounded abort bounds the overshoot).
    template <typename Key>
    std::optional<Guard> try_acquire_until(Key key, Clock::time_point when) {
      const std::uint32_t s = owner_->stripe_of(key);
      owner_->registry_.beat(id_);
      if (!owner_->timed_enter(id_, s, when)) {
        owner_->note_idle_if_quiet(id_);
        return std::nullopt;
      }
      return Guard(*owner_, id_, s);
    }

    template <typename Key, typename Rep, typename Period>
    std::optional<Guard> try_acquire_for(
        Key key, std::chrono::duration<Rep, Period> budget) {
      return try_acquire_until(key, Clock::now() + budget);
    }

    /// Abortable acquisition with a caller-managed signal.
    template <typename Key>
    std::optional<Guard> try_acquire(Key key, const AbortSignal& signal) {
      const std::uint32_t s = owner_->stripe_of(key);
      owner_->registry_.beat(id_);
      if (!owner_->stripes_[s]->enter(id_, signal.flag()).acquired) {
        owner_->note_idle_if_quiet(id_);
        return std::nullopt;
      }
      return Guard(*owner_, id_, s);
    }

    /// Sweep for dead processes (see ShmNamedLockTable::recover_dead).
    /// Must not be called while this session holds a guard.
    std::uint32_t recover_dead() { return owner_->recover_dead(id_); }

   private:
    friend class ShmNamedLockTable;
    Session(ShmNamedLockTable& owner, Pid id, std::uint64_t token)
        : owner_(&owner), id_(id), token_(token) {}

    ShmNamedLockTable* owner_;
    Pid id_;
    std::uint64_t token_;  ///< lease word for token-checked release
  };

  /// RAII holder of one key's stripe.
  class Guard {
   public:
    Guard(Guard&& o) noexcept
        : owner_(std::exchange(o.owner_, nullptr)), pid_(o.pid_),
          stripe_(o.stripe_) {}
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() { release(); }

    std::uint32_t stripe() const { return stripe_; }

    void release() {
      if (owner_ != nullptr) {
        owner_->registry_.beat(pid_);
        owner_->stripes_[stripe_]->exit(pid_);
        owner_->guard_released(pid_);
        owner_ = nullptr;
      }
    }

   private:
    friend class Session;
    Guard(ShmNamedLockTable& owner, Pid pid, std::uint32_t stripe)
        : owner_(&owner), pid_(pid), stripe_(stripe) {
      owner.guard_acquired(pid);
    }

    ShmNamedLockTable* owner_;
    Pid pid_;
    std::uint32_t stripe_;
  };

 private:
  friend class Session;

  /// Construction replayed identically by both roles: the service header
  /// first (deterministic offset for peek_config), then the registry, the
  /// shm metrics, and the stripes in index order.
  ShmNamedLockTable(std::unique_ptr<ShmArena> arena, ShmTableConfig cfg)
      : config_(cfg),
        arena_(std::move(arena)),
        header_(init_header(*arena_, cfg)),
        space_(*arena_, cfg.nprocs),
        registry_(*arena_, cfg.nprocs),
        metrics_(cfg.nprocs),
        shm_metrics_(*arena_, cfg.nprocs, cfg.stripes, cfg.ring_capacity),
        signals_(cfg.nprocs),
        armed_(cfg.nprocs),
        guard_depth_(new std::atomic<std::uint32_t>[cfg.nprocs]()) {
    stripes_.reserve(cfg.stripes);
    for (std::uint32_t s = 0; s < cfg.stripes; ++s) {
      stripes_.push_back(std::make_unique<Stripe>(
          space_, typename Stripe::Config{.nprocs = cfg.nprocs,
                                          .w = cfg.tree_width,
                                          .find = cfg.find}));
      stripes_.back()->set_metrics(&metrics_);
      stripes_.back()->set_shm_metrics(&shm_metrics_, s);
    }
  }

  /// Offset of the ServiceHeader: the first allocation after the arena
  /// constructor reserves the superblock and rounds up to a cache line.
  static constexpr std::uint64_t header_offset() {
    return (sizeof(Superblock) + pal::kCacheLine - 1) &
           ~static_cast<std::uint64_t>(pal::kCacheLine - 1);
  }

  static ServiceHeader* init_header(ShmArena& arena,
                                    const ShmTableConfig& cfg) {
    ServiceHeader* hdr = arena.alloc_array<ServiceHeader>(1);
    AML_ASSERT(arena.to_offset(hdr) == header_offset(),
               "ServiceHeader must be the replay's first allocation");
    if (arena.creating()) {
      hdr->layout_version.store(kShmLayoutVersion, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
      hdr->nprocs.store(cfg.nprocs, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
      hdr->stripes.store(cfg.stripes, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
      hdr->tree_width.store(cfg.tree_width, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
      hdr->find.store(static_cast<std::uint64_t>(cfg.find),
                      std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
      hdr->ring_capacity.store(cfg.ring_capacity, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
    }
    return hdr;
  }

  static bool validate(const ShmTableConfig& cfg, std::string* error) {
    if (cfg.nprocs < 1 || cfg.stripes < 1 ||
        (cfg.stripes & (cfg.stripes - 1)) != 0) {
      if (error != nullptr) {
        *error = "invalid config: nprocs >= 1 and stripes a power of two";
      }
      return false;
    }
    return true;
  }

  /// Generous closed-form segment bound; see ShmTableConfig::segment_bytes.
  static std::uint64_t segment_bytes(const ShmTableConfig& cfg) {
    if (cfg.segment_bytes != 0) return cfg.segment_bytes;
    const std::uint64_t n = cfg.nprocs;
    // Per instance: a VersionedSpace (3 backing words per logical word,
    // ~(4N + tree) logical words) plus slack; per stripe: N+1 instances,
    // the spin pool (N*(N+1) go + N announce), passage slots, desc words.
    const std::uint64_t inst_words = 3 * (8 * n + 64) + 8;
    const std::uint64_t stripe_words =
        (n + 1) * inst_words + n * (n + 1) + 4 * n + 16;
    const std::uint64_t words = cfg.stripes * stripe_words + 8 * n + 64;
    return (words * sizeof(ShmSpace::Word)) * 2 +
           obs::ShmMetrics::footprint_bytes(cfg.nprocs, cfg.stripes,
                                            cfg.ring_capacity) +
           sizeof(ServiceHeader) + (1u << 20);
  }

  // Quiescence bookkeeping feeding zombie reclamation: a pid's idle epoch
  // is refreshed whenever it provably holds no lock — last guard released,
  // or an acquisition failed while no guard was held. The depth counter is
  // process-local (sessions live in one process), so this costs no RMR.
  void guard_acquired(Pid id) {
    guard_depth_[id].fetch_add(1, std::memory_order_relaxed);  // AML_RELAXED(per-id guard depth; single owner)
  }
  void guard_released(Pid id) {
    if (guard_depth_[id].fetch_sub(1, std::memory_order_relaxed) == 1) {  // AML_RELAXED(per-id guard depth; single owner)
      registry_.note_idle(id);
    }
  }
  void note_idle_if_quiet(Pid id) {
    if (guard_depth_[id].load(std::memory_order_relaxed) == 0) {  // AML_RELAXED(per-id guard depth; single owner)
      registry_.note_idle(id);
    }
  }

  bool timed_enter(Pid pid, std::uint32_t s, Clock::time_point when) {
    AbortSignal& signal = signals_[pid];
    signal.reset();
    TimerWheel::Token token;
    {
      std::lock_guard<std::mutex> lk(armed_mu_);
      token = wheel_.arm(signal, when);
      armed_[pid].push_back(token);
    }
    const bool ok = stripes_[s]->enter(pid, signal.flag()).acquired;
    {
      std::lock_guard<std::mutex> lk(armed_mu_);
      wheel_.cancel(token);
      auto& tokens = armed_[pid];
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i] == token) {
          tokens[i] = tokens.back();
          tokens.pop_back();
          break;
        }
      }
    }
    return ok;
  }

  /// Disarm every deadline this process armed for a now-dead pid, and reset
  /// the signal so a stale raise cannot leak into the next leaseholder.
  void cancel_deadlines(Pid victim) {
    std::lock_guard<std::mutex> lk(armed_mu_);
    auto& tokens = armed_[victim];
    for (const TimerWheel::Token token : tokens) {
      wheel_.cancel(token);
      stats_.cancelled_deadlines++;
    }
    tokens.clear();
    signals_[victim].reset();
  }

  ShmTableConfig config_;
  std::unique_ptr<ShmArena> arena_;
  ServiceHeader* header_;  ///< shm: layout/config discovery for inspectors
  ShmSpace space_;
  ProcessRegistry registry_;
  obs::Metrics metrics_;  ///< process-local sink all stripes forward to
  obs::ShmMetrics shm_metrics_;  ///< segment-hosted, crash-surviving sink
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::deque<AbortSignal> signals_;  ///< one per dense pid; timed ops only
  TimerWheel wheel_;
  std::mutex armed_mu_;  ///< guards armed_ (token tracking for recovery)
  std::vector<std::vector<TimerWheel::Token>> armed_;
  /// Per-pid count of live guards in this process (see guard_released).
  std::unique_ptr<std::atomic<std::uint32_t>[]> guard_depth_;
  RecoveryStats stats_;
};

}  // namespace aml::ipc
