// aml::ipc shared-memory arena: a shm_open/mmap wrapper with a versioned
// superblock and a monotonic bump allocator.
//
// The arena is the pal-level substrate the cross-process lock service is
// built on. Its allocation discipline is *deterministic replay*: the creator
// constructs the service by bump-allocating and initializing objects in a
// fixed order, then seals the segment (records the final cursor, publishes
// ready). An attacher replays the identical construction sequence — same
// sizes, same order, computed against its own mapping base — skipping the
// initializing stores, and verifies that its final cursor matches the sealed
// one. Any drift (different config, different code revision laying out
// different objects, ABI skew) is caught by that cursor check plus the
// superblock's magic/ABI/config-hash fields, instead of silently corrupting
// live lock words.
//
// There is no free(): the service's structures are fixed at construction
// (the paper's algorithms are O(N^2) words of flat arrays sized by N), so a
// monotonic bump allocator is the whole story.
#pragma once

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include <fcntl.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "aml/ipc/offset_ptr.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"

namespace aml::ipc {

/// Segment superblock, at offset 0 of every arena. All fields are atomics:
/// `ready` is the creator->attacher publication edge, and the rest are
/// written before it / read after it.
// AML_SHM_REGION_BEGIN
struct Superblock {
  std::atomic<std::uint64_t> magic;
  std::atomic<std::uint32_t> abi_version;
  std::atomic<std::uint32_t> ready;  ///< 0 while the creator constructs
  std::atomic<std::uint64_t> total_bytes;
  std::atomic<std::uint64_t> config_hash;
  std::atomic<std::uint64_t> final_cursor;  ///< bump cursor at seal()
  std::atomic<std::uint64_t> creator_pid;
};
// AML_SHM_REGION_END
AML_SHM_PLACEABLE(Superblock);

class ShmArena {
 public:
  static constexpr std::uint64_t kMagic = 0x414D'4C53'484D'3031ull;  // AMLSHM01
  static constexpr std::uint32_t kAbiVersion = 1;

  enum class Role : std::uint8_t { kCreator, kAttacher };

  /// Create a fresh segment (O_EXCL: fails if it already exists). The caller
  /// then bump-allocates/initializes its structures and must call seal().
  static std::unique_ptr<ShmArena> create(const std::string& name,
                                          std::uint64_t bytes,
                                          std::uint64_t config_hash,
                                          std::string* error) {
    static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                  "shm words must be address-free atomics");
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      set_error(error, "shm_open(create " + name + ")");
      return nullptr;
    }
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      set_error(error, "ftruncate(" + name + ")");
      ::close(fd);
      ::shm_unlink(name.c_str());
      return nullptr;
    }
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                        fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      set_error(error, "mmap(" + name + ")");
      ::shm_unlink(name.c_str());
      return nullptr;
    }
    auto arena = std::unique_ptr<ShmArena>(
        new ShmArena(name, base, bytes, Role::kCreator));
    // Fresh shm pages are zero-filled, which is a valid representation of
    // zero-valued atomics on every supported ABI; the superblock fields are
    // stored explicitly below, ready last (by seal()).
    Superblock& sb = arena->superblock();
    sb.magic.store(kMagic, std::memory_order_relaxed);  // AML_RELAXED(pre-seal superblock init)
    sb.abi_version.store(kAbiVersion, std::memory_order_relaxed);  // AML_RELAXED(pre-seal superblock init)
    sb.total_bytes.store(bytes, std::memory_order_relaxed);  // AML_RELAXED(pre-seal superblock init)
    sb.config_hash.store(config_hash, std::memory_order_relaxed);  // AML_RELAXED(pre-seal superblock init)
    sb.creator_pid.store(static_cast<std::uint64_t>(::getpid()),
                         std::memory_order_relaxed);  // AML_RELAXED(pre-seal superblock init)
    sb.ready.store(0, std::memory_order_release);  // AML_V_EDGE(ipc.arena_seal)
    return arena;
  }

  /// Attach to an existing, sealed segment. Waits up to `timeout` for the
  /// creator to seal (yielding between polls); verifies magic, ABI version
  /// and config hash. After replaying the construction sequence the caller
  /// must call verify_replay().
  static std::unique_ptr<ShmArena> attach(
      const std::string& name, std::uint64_t config_hash, std::string* error,
      std::chrono::milliseconds timeout = std::chrono::seconds(10)) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd < 0) {
      set_error(error, "shm_open(attach " + name + ")");
      return nullptr;
    }
    // The creator sizes the segment with a single ftruncate before any
    // attacher can observe ready, but an attacher racing construction can
    // shm_open while the segment is still zero-sized. Poll the size within
    // the same timeout budget as the ready wait below (st_size is either 0
    // or final — never partial), then map the whole segment in one go; the
    // sealed superblock's total_bytes is cross-checked against the mapped
    // size further down.
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::uint64_t bytes = 0;
    for (;;) {
      struct ::stat st {};
      if (::fstat(fd, &st) != 0) {
        set_error(error, "fstat(" + name + ")");
        ::close(fd);
        return nullptr;
      }
      if (static_cast<std::uint64_t>(st.st_size) >= minimum_bytes()) {
        bytes = static_cast<std::uint64_t>(st.st_size);
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        if (error != nullptr) {
          *error = "segment " + name + " still unsized after timeout " +
                   "(creator died before ftruncate?)";
        }
        ::close(fd);
        return nullptr;
      }
      ::sched_yield();
    }
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                        fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      set_error(error, "mmap(" + name + ")");
      return nullptr;
    }
    auto arena = std::unique_ptr<ShmArena>(
        new ShmArena(name, base, bytes, Role::kAttacher));
    Superblock& sb = arena->superblock();
    while (sb.ready.load(std::memory_order_acquire) == 0) {  // AML_X_EDGE(ipc.arena_seal)
      if (std::chrono::steady_clock::now() >= deadline) {
        if (error != nullptr) {
          *error = "segment " + name + " never sealed (creator died " +
                   "mid-construction?)";
        }
        return nullptr;
      }
      ::sched_yield();
    }
    if (sb.magic.load(std::memory_order_relaxed) != kMagic) {  // AML_RELAXED(read after ipc.arena_seal acquire)
      if (error != nullptr) *error = "segment " + name + ": bad magic";
      return nullptr;
    }
    if (sb.abi_version.load(std::memory_order_relaxed) != kAbiVersion) {  // AML_RELAXED(read after ipc.arena_seal acquire)
      if (error != nullptr) {
        *error = "segment " + name + ": ABI version mismatch (have " +
                 std::to_string(sb.abi_version.load(
                     std::memory_order_relaxed)) +  // AML_RELAXED(read after ipc.arena_seal acquire)
                 ", want " + std::to_string(kAbiVersion) + ")";
      }
      return nullptr;
    }
    if (sb.config_hash.load(std::memory_order_relaxed) != config_hash) {  // AML_RELAXED(read after ipc.arena_seal acquire)
      if (error != nullptr) {
        *error = "segment " + name + ": config hash mismatch (attach with " +
                 "the creator's configuration)";
      }
      return nullptr;
    }
    if (sb.total_bytes.load(std::memory_order_relaxed) != bytes) {  // AML_RELAXED(read after ipc.arena_seal acquire)
      if (error != nullptr) {
        *error = "segment " + name + ": size drifted from the superblock";
      }
      return nullptr;
    }
    return arena;
  }

  ~ShmArena() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
  }

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  /// Remove the name from the shm namespace (existing mappings survive).
  static void unlink(const std::string& name) {
    ::shm_unlink(name.c_str());
  }

  // --- bump allocation (deterministic replay) ----------------------------

  /// Allocate `bytes` aligned to `align`. The creator gets zero-filled
  /// memory (fresh shm pages); the attacher gets the creator's live object.
  /// Both roles must issue the identical sequence of alloc calls.
  std::uint64_t alloc_offset(std::uint64_t bytes, std::uint64_t align) {
    AML_ASSERT(align != 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
    const std::uint64_t off = (cursor_ + align - 1) & ~(align - 1);
    AML_ASSERT(off + bytes <= bytes_, "shm arena exhausted: size the "
               "segment for the configured N and stripes");
    cursor_ = off + bytes;
    return off;
  }

  /// Typed array allocation. T must be shm-placeable; the memory is
  /// zero-filled for the creator, live for the attacher — callers that need
  /// non-zero initial values store them explicitly (creator role only).
  template <typename T>
  T* alloc_array(std::uint64_t count) {
    static_assert(std::is_standard_layout_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "only shm-placeable types may live in the arena");
    const std::uint64_t off =
        alloc_offset(count * sizeof(T), alignof(T));
    return reinterpret_cast<T*>(static_cast<std::byte*>(base_) + off);
  }

  /// Seal after construction (creator only): record the final cursor and
  /// publish ready. Release ordering makes every prior initializing store
  /// visible to attachers that observe ready == 1.
  void seal() {
    AML_ASSERT(role_ == Role::kCreator, "only the creator seals");
    superblock().final_cursor.store(cursor_, std::memory_order_relaxed);  // AML_RELAXED(published by the seal release below)
    superblock().ready.store(1, std::memory_order_release);  // AML_V_EDGE(ipc.arena_seal)
  }

  /// Verify the replayed construction landed exactly where the creator's
  /// did (attacher only). A mismatch means the two processes laid out
  /// different objects — config or code drift — and touching the segment
  /// would corrupt live state.
  bool verify_replay(std::string* error) const {
    const std::uint64_t sealed =
        superblock().final_cursor.load(std::memory_order_relaxed);  // AML_RELAXED(read after ipc.arena_seal acquire)
    if (cursor_ != sealed) {
      if (error != nullptr) {
        *error = "arena replay mismatch: local cursor " +
                 std::to_string(cursor_) + " vs sealed " +
                 std::to_string(sealed) + " — construction sequences differ";
      }
      return false;
    }
    return true;
  }

  // --- resolution --------------------------------------------------------

  void* base() const { return base_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t cursor() const { return cursor_; }
  Role role() const { return role_; }
  bool creating() const { return role_ == Role::kCreator; }
  const std::string& name() const { return name_; }

  Superblock& superblock() const {
    return *reinterpret_cast<Superblock*>(base_);
  }

  template <typename T>
  T* at(std::uint64_t off) const {
    return reinterpret_cast<T*>(static_cast<std::byte*>(base_) + off);
  }

  template <typename T>
  std::uint64_t to_offset(const T* p) const {
    return static_cast<std::uint64_t>(reinterpret_cast<const std::byte*>(p) -
                                      static_cast<const std::byte*>(base_));
  }

 private:
  ShmArena(std::string name, void* base, std::uint64_t bytes, Role role)
      : name_(std::move(name)), base_(base), bytes_(bytes), role_(role) {
    // Reserve the superblock (both roles, so cursors agree) and start the
    // data area on a fresh cache line.
    cursor_ = 0;
    alloc_offset(sizeof(Superblock), alignof(Superblock));
    cursor_ = (cursor_ + pal::kCacheLine - 1) & ~(pal::kCacheLine - 1);
  }

  static std::uint64_t minimum_bytes() {
    return sizeof(Superblock);
  }

  static void set_error(std::string* error, const std::string& what) {
    if (error != nullptr) {
      *error = what + " failed: " + std::strerror(errno);
    }
  }

  std::string name_;
  void* base_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::uint64_t cursor_ = 0;
  Role role_;
};

}  // namespace aml::ipc
