// ShmSpace: the shared-memory word space. Mirrors model::NativeModel's API
// exactly — cacheline-padded atomic<uint64_t> words, seq_cst operations,
// Backoff busy-waits — but allocates its words out of a ShmArena, so every
// core lock template (OneShotLock, LongLivedLock's pieces, VersionedSpace)
// instantiates over it unchanged and its words are visible to every process
// mapping the segment.
//
// Allocation follows the arena's deterministic-replay discipline: the
// creator's alloc() stores the initial values; an attacher issuing the same
// alloc() sequence gets pointers to the creator's live words and must not
// re-initialize them. Word* handles are process-local (they embed the local
// mapping base) but resolve to identical offsets in every process because
// construction replays identically.
#pragma once

#include <atomic>
#include <cstdint>

#include "aml/ipc/shm_arena.hpp"
#include "aml/model/types.hpp"
#include "aml/pal/backoff.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/edges.hpp"

namespace aml::ipc {

class ShmSpace {
 public:
  /// One shared word, padded like NativeModel::Word so the per-slot spin
  /// words do not false-share across processes either.
  // AML_SHM_REGION_BEGIN
  struct alignas(pal::kCacheLine) Word {
    std::atomic<std::uint64_t> v;
  };
  // AML_SHM_REGION_END
  AML_SHM_PLACEABLE(Word);

  ShmSpace(ShmArena& arena, model::Pid nprocs)
      : arena_(arena), nprocs_(nprocs) {}

  ShmSpace(const ShmSpace&) = delete;
  ShmSpace& operator=(const ShmSpace&) = delete;

  model::Pid nprocs() const { return nprocs_; }

  /// Allocate `n` contiguous words initialized to `init`. Creator-only
  /// stores: the attacher replays the allocation for its cursor and handle
  /// but must not clobber live values.
  Word* alloc(std::size_t n, std::uint64_t init = 0) {
    Word* w = arena_.alloc_array<Word>(n);
    if (arena_.creating()) {
      for (std::size_t i = 0; i < n; ++i) {
        // Attachers only see the segment after the arena's seal handshake
        // publishes it (ipc.arena_seal), which covers these stores.
        w[i].v.store(init, std::memory_order_relaxed);  // AML_RELAXED(pre-seal init; published by ipc.arena_seal)
      }
    }
    total_words_ += n;
    return w;
  }

  /// DSM vocabulary shim (see NativeModel::alloc_owned): shm has no
  /// per-process locality either, so this forwards.
  Word* alloc_owned(model::Pid /*owner*/, std::size_t n,
                    std::uint64_t init = 0) {
    return alloc(n, init);
  }

  std::uint64_t read(model::Pid, Word& w) const {
    return w.v.load(std::memory_order_seq_cst);
  }

  void write(model::Pid, Word& w, std::uint64_t x) {
    w.v.store(x, std::memory_order_seq_cst);
  }

  std::uint64_t faa(model::Pid, Word& w, std::uint64_t delta) {
    return w.v.fetch_add(delta, std::memory_order_seq_cst);
  }

  bool cas(model::Pid, Word& w, std::uint64_t expected,
           std::uint64_t desired) {
    return w.v.compare_exchange_strong(expected, desired,
                                       std::memory_order_seq_cst);
  }

  std::uint64_t swap(model::Pid, Word& w, std::uint64_t x) {
    return w.v.exchange(x, std::memory_order_seq_cst);
  }

  // --- ordered vocabulary (edge carriers; see model/native.hpp) ----------
  // Acquire/release have the same inter-process semantics over a shared
  // mapping as intra-process, so the justified core relaxations apply to
  // shm words too. The recovery journaling (amlint R7) never routes through
  // these: phase words use the seq_cst base vocabulary.

  std::uint64_t read_acq(model::Pid, Word& w) const {
    return w.v.load(std::memory_order_acquire);  // AML_X_EDGE(model.native.carrier)
  }

  std::uint64_t read_rlx(model::Pid, Word& w) const {
    return w.v.load(std::memory_order_relaxed);  // AML_RELAXED(carrier; justification at call sites)
  }

  void write_rel(model::Pid, Word& w, std::uint64_t x) {
    w.v.store(x, std::memory_order_release);  // AML_V_EDGE(model.native.carrier)
  }

  void write_rlx(model::Pid, Word& w, std::uint64_t x) {
    w.v.store(x, std::memory_order_relaxed);  // AML_RELAXED(carrier; justification at call sites)
  }

  /// Busy-wait until pred(value) holds or the stop flag is raised. The spin
  /// load is the acquire side of the hand-off edge (see NativeModel::wait).
  template <typename Pred>
  model::WaitOutcome wait(model::Pid, Word& w, Pred&& pred,
                          const std::atomic<bool>* stop) const {
    pal::Backoff backoff;
    for (;;) {
      const std::uint64_t v =
          w.v.load(std::memory_order_acquire);  // AML_X_EDGE(model.native.carrier)
      if (pred(v)) return {v, false};
      if (stop != nullptr &&
          stop->load(std::memory_order_acquire)) {  // AML_X_EDGE(core.abort_signal)
        return {v, true};
      }
      backoff.pause();
    }
  }

  template <typename Pred1, typename Pred2>
  model::WaitOutcome2 wait_either(model::Pid, Word& w1, Pred1&& pred1,
                                  Word& w2, Pred2&& pred2,
                                  const std::atomic<bool>* stop) const {
    pal::Backoff backoff;
    for (;;) {
      const std::uint64_t v1 =
          w1.v.load(std::memory_order_acquire);  // AML_X_EDGE(model.native.carrier)
      if (pred1(v1)) return {v1, 0, false};
      const std::uint64_t v2 =
          w2.v.load(std::memory_order_acquire);  // AML_X_EDGE(model.native.carrier)
      if (pred2(v2)) return {v1, v2, false};
      if (stop != nullptr &&
          stop->load(std::memory_order_acquire)) {  // AML_X_EDGE(core.abort_signal)
        return {v1, v2, true};
      }
      backoff.pause();
    }
  }

  /// Pid-less probe for recovery code inspecting a dead process's words.
  std::uint64_t peek(const Word& w) const {
    return w.v.load(std::memory_order_seq_cst);
  }

  std::size_t words_allocated() const { return total_words_; }

  ShmArena& arena() const { return arena_; }

 private:
  ShmArena& arena_;
  model::Pid nprocs_;
  std::size_t total_words_ = 0;
};

}  // namespace aml::ipc
