// ShmStripeLock: the Section 6 long-lived transformation re-instantiated
// over shared memory, with owner-death recovery.
//
// Structure mirrors core::LongLivedLock exactly — one packed LockDesc word,
// N+1 recyclable one-shot instances over VersionedSpace, an announce-array
// spin-node pool — but every word that was process-heap state now lives in
// the ShmArena, and the per-process Local bookkeeping (held / old_spn /
// current) moves into a shm PassageSlot so a *survivor* can finish a dead
// process's passage.
//
// Recovery model (crash = forced abort, after Katzan & Morrison's
// recoverable-abortable lock, arxiv.org/2011.07622): each process journals
// its progress through a passage as a phase word plus an attempt word
// (queue slot + instance index, written by the RecoverySink the moment the
// one-shot doorway assigns them). A recoverer that has claimed the victim's
// registry slot (see process_registry.hpp) reads the frozen journal and
// resumes the passage at the recorded phase, running the *same algorithm
// steps* the victim would have: abort_on_behalf for a waiting victim,
// complete_grant + exit for a granted-but-dead one, exit for a dead CS
// holder, resignal for a death mid-hand-off — then the ordinary Cleanup.
// Every step it reuses is idempotent or exactly-once by phase, which is
// what makes the replay safe; see docs/API.md for the full state machine.
//
// Recoverable fetch-and-add (v3, closing v1's two zombie windows): the
// LockDesc refcnt updates are no longer bare F&As. Before touching the
// word, the caller announces the operation in its own PassageSlot —
// op kind + sequence number in `ann_desc`, then on every attempt the
// pre-image in `ann_pre` — and performs the F&A as a CAS that stamps
// (pid, seq) into reserved LockDesc bits. Two rules make the outcome
// decidable post-mortem:
//
//   1. every mutator of LockDesc first *helps*: it reads the stamp it is
//      about to overwrite and, if that pid's currently announced sequence
//      matches, records it in the pid's `landed` word (a CAS-max) before
//      the overwrite can retire the evidence;
//   2. a winner records its own success in `landed` before announcing any
//      later operation.
//
// So a recoverer asking "did the victim's announced op seq land?" answers
// definitively: either the stamp (victim, seq) is still in the word, or —
// if it ever was — rule 1/2 guarantees landed[victim] >= seq (all stores
// involved are seq_cst, so the recoverer's two loads cannot both miss). If
// neither holds, the CAS never succeeded. The pre-join and cleanup arms
// therefore complete or compensate the F&A instead of retiring the pid;
// the stamp sequence is truncated to 24 bits in the word, so the in-word
// test alone is ambiguous only after 2^24 full passages inside one
// recoverer read — far beyond the claim hold time (same bounded-reuse
// assumption as the 32-bit recovery seqlock below).
//
// One window remains journal-blind: inside the one-shot doorway before the
// sink records the tail F&A's slot (kDoorway, attempt unrecorded). A death
// there still retires the pid (kZombie) — but retired pids are now
// *reclaimable* after a full-quiescence epoch (see process_registry.hpp).
//
// Memory visibility across processes: a victim writes its plain journal
// fields (head_snap, current, ann_pre) before the seq_cst phase/announce
// store that makes them relevant, and the recoverer seq_cst-loads the
// phase before reading them, so every journal read is ordered after the
// matching write. Only one recoverer touches a stripe at a time (per-stripe
// recovery seqlock with dead-holder takeover), and only after winning the
// victim's registry claim.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <sched.h>
#include <signal.h>

#include "aml/core/oneshot.hpp"
#include "aml/core/versioned_space.hpp"
#include "aml/ipc/shm_arena.hpp"
#include "aml/ipc/shm_space.hpp"
#include "aml/model/types.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/obs/shm_metrics.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"

namespace aml::ipc {

using model::Pid;

/// Passage phases, in journal order. The victim stores each phase with
/// seq_cst *before* taking the step the phase names, so a recoverer reading
/// phase P knows every step before P completed and no step after P started
/// (except the one in flight, which each recovery arm reasons about).
enum Phase : std::uint64_t {
  kIdle = 0,      ///< no passage in progress
  kSpinWait = 1,  ///< maybe waiting on old_spn's node; LockDesc untouched
  kPreJoin = 2,   ///< join F&A announced/in flight (recoverable: see header)
  kJoined = 3,    ///< refcnt incremented; `current` names the instance
  kDoorway = 4,   ///< inside one-shot enter; attempt word has the slot
  kHolding = 5,   ///< in the critical section
  kReleasing = 6, ///< inside one-shot exit; head_snap recorded
  kCleanup = 7,   ///< release F&A / instance switch announced or in flight
};

/// Render any phase word, including values from a newer layout this build
/// does not know: those come back as "unknown(<n>)" so a v2 reader can
/// still inspect (and a JSON schema still validate) a v3 segment.
inline std::string phase_label(std::uint64_t p) {
  switch (p) {
    case kIdle: return "idle";
    case kSpinWait: return "spin-wait";
    case kPreJoin: return "pre-join";
    case kJoined: return "joined";
    case kDoorway: return "doorway";
    case kHolding: return "holding";
    case kReleasing: return "releasing";
    case kCleanup: return "cleanup";
    default: break;
  }
  return "unknown(" + std::to_string(p) + ")";
}

inline std::string phase_name(Phase p) {
  return phase_label(static_cast<std::uint64_t>(p));
}

/// Attempt-word packing: bit 0 = a doorway record exists, bit 1 = the grant
/// was observed by the victim, bits [2, 34) = queue slot, bits [34, 50) =
/// instance index.
inline constexpr std::uint64_t kAttemptRecorded = 1;
inline constexpr std::uint64_t kAttemptGranted = 2;

inline constexpr std::uint64_t pack_attempt(std::uint32_t slot,
                                            std::uint32_t instance) {
  return kAttemptRecorded | (static_cast<std::uint64_t>(slot) << 2) |
         (static_cast<std::uint64_t>(instance) << 34);
}
inline constexpr std::uint32_t attempt_slot(std::uint64_t a) {
  return static_cast<std::uint32_t>((a >> 2) & 0xFFFF'FFFFull);
}
inline constexpr std::uint32_t attempt_instance(std::uint64_t a) {
  return static_cast<std::uint32_t>((a >> 34) & 0xFFFFull);
}

/// Announcement-word packing for the recoverable F&A: low 2 bits are the
/// op kind, the rest a per-pid monotone sequence number. The sequence is
/// never reset — it spans passages, incarnations and recovered redos.
inline constexpr std::uint64_t kAnnOpNone = 0;
inline constexpr std::uint64_t kAnnOpJoin = 1;     ///< refcnt + 1 (enter)
inline constexpr std::uint64_t kAnnOpRelease = 2;  ///< refcnt - 1 (cleanup)
inline constexpr std::uint64_t kAnnOpSwitch = 3;   ///< instance-switch CAS
inline constexpr std::uint64_t kAnnOpBits = 2;
inline constexpr std::uint64_t kAnnOpMask = (1ull << kAnnOpBits) - 1;

inline constexpr std::uint64_t ann_pack(std::uint64_t seq, std::uint64_t op) {
  return (seq << kAnnOpBits) | op;
}
inline constexpr std::uint64_t ann_seq(std::uint64_t a) {
  return a >> kAnnOpBits;
}
inline constexpr std::uint64_t ann_op(std::uint64_t a) {
  return a & kAnnOpMask;
}

/// `ann_aux` sentinel: no spin node journaled for the announced switch.
inline constexpr std::uint64_t kAuxNone = ~std::uint64_t{0};

// AML_SHM_REGION_BEGIN
/// Per-pid passage journal + the long-lived lock's per-process locals,
/// promoted to shm so recovery (and the pid's next leaseholder) can read
/// them. Two cache lines per pid: the owner writes its own slot on its hot
/// path; recoverers only read it after the owner is dead (`landed` is the
/// one exception — helpers CAS-max it on the owner's behalf).
struct alignas(pal::kCacheLine) PassageSlot {
  std::atomic<std::uint64_t> phase;      ///< Phase, seq_cst journal order
  std::atomic<std::uint64_t> attempt;    ///< packed attempt word
  std::atomic<std::uint64_t> head_snap;  ///< head read at exit start
  std::atomic<std::uint64_t> held;       ///< instance for the next switch
  std::atomic<std::uint64_t> old_spn;    ///< spin node saved at last Cleanup
  std::atomic<std::uint64_t> current;    ///< instance joined by this attempt
  std::atomic<std::uint64_t> ann_desc;   ///< announced op: (seq << 2) | op
  std::atomic<std::uint64_t> ann_pre;    ///< pre-image of the announced CAS
  std::atomic<std::uint64_t> ann_aux;    ///< switch's journaled spin node
  std::atomic<std::uint64_t> landed;     ///< max seq proven landed (CAS-max)
};
// AML_SHM_REGION_END
AML_SHM_PLACEABLE(PassageSlot);

/// The per-instance metrics sink: journals doorway slot assignment and grant
/// acknowledgment into the passage slots (that is the recovery journal), and
/// forwards every hook to an optional process-local obs::Metrics — which is
/// how recovered passages (driven through the same hooks by the recoverer)
/// show up in the ordinary observability counters — and, when bound, to the
/// segment-hosted obs::ShmMetrics, which is how they survive the process.
/// This is the SinkHandle<Metrics> sink of every shm one-shot instance, so
/// binding here is what routes ShmSpace/ShmStripeLockT passages into the
/// crash-surviving ring.
class RecoverySink {
 public:
  static constexpr bool kEnabled = true;

  void configure(PassageSlot* slots, std::uint32_t instance) {
    slots_ = slots;
    instance_ = instance;
  }
  void forward_to(obs::Metrics* metrics) { metrics_ = metrics; }
  void bind_shm(obs::ShmMetrics* shm, std::uint32_t stripe) {
    shm_ = shm;
    stripe_ = stripe;
  }

  void on_enter(Pid p, std::uint32_t slot) {
    slots_[p].attempt.store(pack_attempt(slot, instance_),
                            std::memory_order_seq_cst);
    if (metrics_ != nullptr) metrics_->on_enter(p, slot);
    if (shm_ != nullptr) shm_->on_enter(stripe_, p, slot, instance_);
  }
  void on_granted(Pid p, std::uint32_t slot) {
    slots_[p].attempt.fetch_or(kAttemptGranted, std::memory_order_seq_cst);
    if (metrics_ != nullptr) metrics_->on_granted(p, slot);
    if (shm_ != nullptr) shm_->on_granted(stripe_, p, slot, instance_);
  }
  void on_abort(Pid p, std::uint32_t slot) {
    if (metrics_ != nullptr) metrics_->on_abort(p, slot);
    if (shm_ != nullptr) shm_->on_abort(stripe_, p, slot, instance_);
  }
  void on_exit(Pid p, std::uint32_t slot) {
    if (metrics_ != nullptr) metrics_->on_exit(p, slot);
    if (shm_ != nullptr) shm_->on_exit(stripe_, p, slot, instance_);
  }
  void on_switch(Pid p) {
    if (metrics_ != nullptr) metrics_->on_switch(p);
  }
  void on_spin_iteration(Pid p) {
    if (metrics_ != nullptr) metrics_->on_spin_iteration(p);
    if (shm_ != nullptr) shm_->on_spin_iteration(p);
  }
  void on_findnext(Pid p) {
    if (metrics_ != nullptr) metrics_->on_findnext(p);
    if (shm_ != nullptr) shm_->on_findnext(p);
  }
  void on_spin_node_recycle(Pid p, std::uint64_t nodes) {
    if (metrics_ != nullptr) metrics_->on_spin_node_recycle(p, nodes);
    if (shm_ != nullptr) shm_->on_spin_node_recycle(p, nodes);
  }

 private:
  PassageSlot* slots_ = nullptr;
  std::uint32_t instance_ = 0;
  obs::Metrics* metrics_ = nullptr;
  obs::ShmMetrics* shm_ = nullptr;
  std::uint32_t stripe_ = 0;
};

/// Spin-node pool with all of its state — go words, announce pins, and the
/// free/issued marks — in shm. Unlike core::SpinNodePool there are no
/// process-local free lists: allocation scans the owner's N+1 state marks
/// (O(N), and only on an instance switch, which the transformation already
/// charges O(N) work to), because the marks must survive the owner's death
/// for the recoverer and for the pid's next leaseholder.
class ShmSpinNodePool {
 public:
  using Word = ShmSpace::Word;

  static constexpr std::uint64_t kNoPin = ~std::uint64_t{0};
  static constexpr std::uint32_t kStateFree = 0;
  static constexpr std::uint32_t kStateIssued = 1;

  struct Node {
    Word* go = nullptr;
  };

  ShmSpinNodePool(ShmSpace& space, Pid nprocs, std::uint32_t per_pool)
      : space_(space), nprocs_(nprocs), per_pool_(per_pool) {
    const std::size_t total = static_cast<std::size_t>(nprocs) * per_pool;
    // Node indices are journaled into the 16-bit LockDesc.Spn field; the
    // nprocs <= 254 cap (LockDesc packing) keeps total <= 254 * 255.
    AML_ASSERT(total < (1u << 16), "spin-node index exceeds Spn field");
    nodes_.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      nodes_.push_back(Node{space_.alloc(1, 0)});
    }
    announce_.reserve(nprocs);
    for (Pid p = 0; p < nprocs; ++p) {
      announce_.push_back(space_.alloc(1, kNoPin));
    }
    // Zero-filled pages decode as "all free", so the marks need no init.
    states_ = space_.arena().alloc_array<std::atomic<std::uint32_t>>(total);
  }

  ShmSpinNodePool(const ShmSpinNodePool&) = delete;
  ShmSpinNodePool& operator=(const ShmSpinNodePool&) = delete;

  Node& node(std::uint32_t global_idx) { return nodes_[global_idx]; }
  std::uint32_t per_pool() const { return per_pool_; }
  std::size_t total_nodes() const { return nodes_.size(); }

  /// Publish that `owner` holds `global_idx` as its oldSpn (see
  /// core::SpinNodePool::publish_pin). `exec` performs the write — during
  /// recovery it differs from `owner`, and the pin still lands in the
  /// *owner's* announce word so it protects the pid's next leaseholder.
  void publish_pin(Pid exec, Pid owner, std::uint32_t global_idx) {
    space_.write(exec, *announce_[owner], global_idx);
  }

  void clear_pin(Pid exec, Pid owner) {
    space_.write(exec, *announce_[owner], kNoPin);
  }

  /// Obtain a reusable node (go == 0) from `owner`'s pool. Serialized per
  /// owner: the owner itself, or (after its death) the single recoverer
  /// holding its registry claim.
  std::uint32_t alloc(Pid exec, Pid owner) {
    const std::uint32_t idx = select(exec, owner);
    commit(idx);
    return idx;
  }

  /// Two-step variant for journaled switches: `select` picks a reusable
  /// node (same scan + reclaim as alloc) WITHOUT marking it issued, so the
  /// caller can journal the choice (PassageSlot.ann_aux) first; `commit`
  /// then marks it. Both the mark and `unalloc` are idempotent plain
  /// stores, so a recoverer can safely redo whichever side of the journal
  /// write the victim died on.
  std::uint32_t select(Pid exec, Pid owner) {
    const std::uint32_t base = owner * per_pool_;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::uint32_t k = 0; k < per_pool_; ++k) {
        if (states_[base + k].load(std::memory_order_acquire) == kStateFree) {  // AML_X_EDGE(ipc.node_state)
          return base + k;
        }
      }
      reclaim(exec, owner);
    }
    AML_ASSERT(false, "shm spin-node pool exhausted: invariant violated");
    return 0;
  }

  void commit(std::uint32_t global_idx) {
    states_[global_idx].store(kStateIssued, std::memory_order_release);  // AML_V_EDGE(ipc.node_state)
  }

  /// Return a node that never became visible (install CAS lost).
  void unalloc(Pid /*exec*/, Pid owner, std::uint32_t global_idx) {
    AML_ASSERT(global_idx / per_pool_ == owner, "unalloc by non-owner");
    states_[global_idx].store(kStateFree, std::memory_order_release);  // AML_V_EDGE(ipc.node_state)
  }

 private:
  /// Same quiescence test as core::SpinNodePool::reclaim: a node is
  /// reusable once retired (go == 1, set by the switch that replaced it)
  /// and pinned by no announce entry.
  void reclaim(Pid exec, Pid owner) {
    const std::uint32_t base = owner * per_pool_;
    std::vector<bool> pinned(per_pool_, false);
    for (Pid p = 0; p < nprocs_; ++p) {
      const std::uint64_t pin = space_.read(exec, *announce_[p]);
      if (pin != kNoPin && pin / per_pool_ == static_cast<std::uint64_t>(
                                                  owner)) {
        pinned[pin % per_pool_] = true;
      }
    }
    for (std::uint32_t k = 0; k < per_pool_; ++k) {
      const std::uint32_t idx = base + k;
      if (states_[idx].load(std::memory_order_acquire) != kStateIssued ||  // AML_X_EDGE(ipc.node_state)
          pinned[k]) {
        continue;
      }
      if (space_.read(exec, *nodes_[idx].go) != 1) continue;  // installed
      space_.write(exec, *nodes_[idx].go, 0);
      states_[idx].store(kStateFree, std::memory_order_release);  // AML_V_EDGE(ipc.node_state)
    }
  }

  ShmSpace& space_;
  Pid nprocs_;
  std::uint32_t per_pool_;
  std::vector<Node> nodes_;
  std::vector<Word*> announce_;
  std::atomic<std::uint32_t>* states_ = nullptr;  ///< shm, survives owners
};

/// What a recovery pass did with a victim's passage on one stripe.
enum class RecoveryAction : std::uint8_t {
  kNone,         ///< victim was idle / pre-doorway here: nothing to repair
  kForcedAbort,  ///< waiting victim driven through the abort path
  kForcedExit,   ///< granted/holding victim's CS force-exited + cleaned up
  kResignalled,  ///< death mid-exit: hand-off re-driven from head_snap
  kZombie,       ///< death in the doorway before the sink's slot record —
                 ///  the one remaining journal-blind window; pid retired
                 ///  (reclaimable after a quiescence epoch, see registry)
};

template <typename Metrics = obs::NullMetrics>
class ShmStripeLockT {
 public:
  using Space = core::VersionedSpace<ShmSpace>;
  using OneShot = core::OneShotLock<Space, RecoverySink>;

  struct Config {
    Pid nprocs = 2;
    std::uint32_t w = 64;
    core::Find find = core::Find::kAdaptive;
  };

  /// Both roles run the identical construction (deterministic replay); only
  /// the creator's word allocations store initial values, and only the
  /// creator touches non-arena shm state (spin-node marks, PassageSlots).
  ShmStripeLockT(ShmSpace& space, Config config)
      : space_(space),
        config_(config),
        pool_(space, config.nprocs, config.nprocs + 1) {
    AML_ASSERT(config.nprocs >= 1 && config.nprocs <= kMaxProcs,
               "nprocs out of range for LockDesc packing");
    slots_ = space_.arena().alloc_array<PassageSlot>(config.nprocs);
    if (space_.arena().creating()) {
      for (Pid p = 0; p < config.nprocs; ++p) {
        // seq_cst for uniformity with every later phase store (amlint R7);
        // pre-seal, ordering is moot — attachers sync on the seal.
        slots_[p].phase.store(kIdle, std::memory_order_seq_cst);
        slots_[p].attempt.store(0, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
        slots_[p].head_snap.store(0, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
        slots_[p].held.store(p + 1, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
        slots_[p].old_spn.store(kNoSpn, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
        slots_[p].current.store(0, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
        slots_[p].ann_desc.store(ann_pack(0, kAnnOpNone),
                                 std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
        slots_[p].ann_pre.store(0, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
        slots_[p].ann_aux.store(kAuxNone, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
        slots_[p].landed.store(0, std::memory_order_relaxed);  // AML_RELAXED(creator init before ipc.arena_seal)
      }
    }
    instances_.reserve(config.nprocs + 1);
    for (Pid i = 0; i <= config.nprocs; ++i) {
      instances_.push_back(std::make_unique<Instance>(space_, config_));
      instances_.back()->sink.configure(slots_,
                                        static_cast<std::uint32_t>(i));
      instances_.back()->lock.set_metrics(&instances_.back()->sink);
    }
    // The bootstrap node issue mutates only the (idempotent-from-zero)
    // shm state marks, never the arena cursor, so the attacher skipping it
    // keeps the replay aligned; node 0 of owner 0 is the deterministic pick
    // either way.
    std::uint32_t spn0 = 0;
    if (space_.arena().creating()) spn0 = pool_.alloc(0, 0);
    lock_desc_ = space_.alloc(1, pack_stamped(0, spn0, 0, kNoStampPid, 0));
    recovery_ = space_.alloc(1, 0);
  }

  ShmStripeLockT(const ShmStripeLockT&) = delete;
  ShmStripeLockT& operator=(const ShmStripeLockT&) = delete;

  /// Bind the process-local observability sink all instances forward to.
  void set_metrics(Metrics* sink) {
    if constexpr (Metrics::kEnabled) {
      metrics_ = sink;
      for (auto& inst : instances_) inst->sink.forward_to(sink);
    }
  }

  /// Bind the segment-hosted sink (crash-surviving: see obs/shm_metrics.hpp).
  /// `stripe_id` tags every event this stripe emits into the shared ring.
  void set_shm_metrics(obs::ShmMetrics* shm, std::uint32_t stripe_id) {
    shm_ = shm;
    stripe_id_ = stripe_id;
    for (auto& inst : instances_) inst->sink.bind_shm(shm, stripe_id);
  }

  // --- the long-lived algorithm, journaled (Algorithms 6.1-6.3) ----------

  core::EnterResult enter(Pid self, const std::atomic<bool>* abort_signal) {
    PassageSlot& my = slots_[self];
    my.attempt.store(0, std::memory_order_seq_cst);
    my.phase.store(kSpinWait, std::memory_order_seq_cst);
    const Packed desc = unpack(space_.read(self, *lock_desc_));
    if (desc.spn == my.old_spn.load(std::memory_order_seq_cst)) {
      // Acquire side of the switch retirement (see core/longlived.hpp).
      auto outcome = space_.wait(  // AML_X_EDGE(longlived.spn_switch)
          self, *pool_.node(desc.spn).go,
          [this, self](std::uint64_t v) {
            if constexpr (Metrics::kEnabled) {
              if (metrics_ != nullptr) metrics_->on_spin_iteration(self);
            }
            if (shm_ != nullptr) shm_->on_spin_iteration(self);
            return v != 0;
          },
          abort_signal);
      if (outcome.stopped) {
        my.phase.store(kIdle, std::memory_order_seq_cst);
        if constexpr (Metrics::kEnabled) {
          if (metrics_ != nullptr) metrics_->on_abort(self, core::kNoSlot);
        }
        if (shm_ != nullptr) {
          shm_->on_abort(stripe_id_, self, obs::kNoSlot, 0);
        }
        return {false, core::kNoSlot};
      }
    }
    my.phase.store(kPreJoin, std::memory_order_seq_cst);
    const RmwResult jr = recoverable_rmw(self, self, kAnnOpJoin);
    AML_DASSERT(jr.pre.refcnt < config_.nprocs, "Refcnt overflow");
    my.current.store(jr.pre.lock, std::memory_order_seq_cst);
    my.phase.store(kJoined, std::memory_order_seq_cst);
    Instance& inst = *instances_[jr.pre.lock];
    inst.space.begin_session(self);
    my.phase.store(kDoorway, std::memory_order_seq_cst);
    const core::EnterResult result = inst.lock.enter(self, abort_signal);
    if (!result.acquired) {
      my.phase.store(kCleanup, std::memory_order_seq_cst);
      cleanup_impl(self, self);
      my.attempt.store(0, std::memory_order_seq_cst);
      my.phase.store(kIdle, std::memory_order_seq_cst);
      return result;
    }
    my.phase.store(kHolding, std::memory_order_seq_cst);
    return result;
  }

  void exit(Pid self) {
    PassageSlot& my = slots_[self];
    const Packed desc = unpack(space_.read(self, *lock_desc_));
    AML_DASSERT(desc.lock == my.current.load(std::memory_order_seq_cst),
                "installed instance changed under the CS holder (Claim 24)");
    Instance& inst = *instances_[desc.lock];
    my.head_snap.store(inst.lock.peek_head(self), std::memory_order_seq_cst);
    my.phase.store(kReleasing, std::memory_order_seq_cst);
    inst.lock.exit(self);
    my.phase.store(kCleanup, std::memory_order_seq_cst);
    cleanup_impl(self, self);
    my.attempt.store(0, std::memory_order_seq_cst);
    my.phase.store(kIdle, std::memory_order_seq_cst);
  }

  // --- recovery ----------------------------------------------------------

  /// Repair `victim`'s passage on this stripe, executing as `exec` (the
  /// recoverer's leased pid — all memory operations are its own steps; the
  /// victim pid is only the journal being read). Caller must hold the
  /// victim's registry recovery claim; this takes the per-stripe recovery
  /// seqlock around the repair. Returns what was done; kZombie means the
  /// victim died in the doorway's journal-blind window and its pid must be
  /// retired (reclaimable once a quiescence epoch proves no references).
  RecoveryAction recover(Pid exec, Pid victim, std::uint64_t exec_os_pid) {
    lock_recovery(exec, exec_os_pid);
    const RecoveryAction action = recover_locked(exec, victim);
    unlock_recovery(exec);
    return action;
  }

  // --- introspection -----------------------------------------------------

  std::uint64_t peek_refcnt(Pid self) {
    return unpack(space_.read(self, *lock_desc_)).refcnt;
  }
  std::uint32_t peek_installed(Pid self) {
    return unpack(space_.read(self, *lock_desc_)).lock;
  }
  Phase peek_phase(Pid p) const {
    return static_cast<Phase>(slots_[p].phase.load(std::memory_order_seq_cst));
  }
  /// The raw announced-op word ((seq << 2) | op) of `p`'s journal.
  std::uint64_t peek_announcement(Pid p) const {
    return slots_[p].ann_desc.load(std::memory_order_seq_cst);
  }
  /// Highest announcement sequence of `p` proven landed.
  std::uint64_t peek_landed(Pid p) const {
    return slots_[p].landed.load(std::memory_order_seq_cst);
  }
  /// Completed recovery passes on this stripe (seqlock sequence number).
  std::uint64_t recovery_epoch(Pid self) {
    return space_.read(self, *recovery_) >> 32;
  }
  const Config& config() const { return config_; }

  /// Reset `p`'s journal to the leasable baseline (phase kIdle, attempt
  /// cleared). Only valid once the table's reclamation gate has held: the
  /// quiescence epoch proves no live passage still reads the journal, and a
  /// frozen phase in {kIdle, kSpinWait, kPreJoin} leaves nothing in the
  /// stripe itself to repair.
  void clear_journal(Pid p) {
    slots_[p].attempt.store(0, std::memory_order_seq_cst);
    slots_[p].phase.store(kIdle, std::memory_order_seq_cst);
  }

  /// Test hook: forge a pid's journaled phase so recovery arms can be
  /// staged without a precisely-timed crash.
  void debug_set_phase(Pid p, Phase phase) {
    slots_[p].phase.store(phase, std::memory_order_seq_cst);
  }

  /// Test hook: replay exactly the kJoined crash window for `p` — the join
  /// F&A has run (refcnt bumped, current instance recorded) but no doorway
  /// presence exists yet — so the abort-on-behalf repair of a pid dead in
  /// that window can be staged deterministically. Leaves real, consistent
  /// stripe state: recovery's one Cleanup undoes it completely.
  void debug_forge_joined(Pid p) {
    PassageSlot& my = slots_[p];
    my.attempt.store(0, std::memory_order_seq_cst);
    const RmwResult jr = recoverable_rmw(p, p, kAnnOpJoin);
    my.current.store(jr.pre.lock, std::memory_order_seq_cst);
    my.phase.store(kJoined, std::memory_order_seq_cst);
  }

  /// Test hook: death at kPreJoin with the join announced but its CAS never
  /// issued. The compensation arm must conclude "did not land" and abandon
  /// the join (refcnt untouched).
  void debug_forge_prejoin_announced(Pid p) {
    PassageSlot& my = slots_[p];
    my.attempt.store(0, std::memory_order_seq_cst);
    my.phase.store(kPreJoin, std::memory_order_seq_cst);
    const std::uint64_t seq =
        ann_seq(my.ann_desc.load(std::memory_order_seq_cst)) + 1;
    my.ann_desc.store(ann_pack(seq, kAnnOpJoin), std::memory_order_seq_cst);
  }

  /// Test hook: death at kPreJoin one instruction after the join CAS landed
  /// (before the kJoined phase store). The completion arm must conclude
  /// "landed" and undo the join with one Cleanup.
  void debug_forge_prejoin_landed(Pid p) {
    PassageSlot& my = slots_[p];
    my.attempt.store(0, std::memory_order_seq_cst);
    my.phase.store(kPreJoin, std::memory_order_seq_cst);
    recoverable_rmw(p, p, kAnnOpJoin);
  }

  /// Test hook: death at kCleanup before the release was announced. The
  /// recovery arm must rerun the whole Cleanup under a fresh announcement.
  void debug_forge_cleanup_announced(Pid p) {
    debug_forge_joined(p);
    PassageSlot& my = slots_[p];
    my.phase.store(kCleanup, std::memory_order_seq_cst);
    const std::uint64_t seq =
        ann_seq(my.ann_desc.load(std::memory_order_seq_cst)) + 1;
    my.ann_desc.store(ann_pack(seq, kAnnOpRelease),
                      std::memory_order_seq_cst);
  }

  /// Test hook: death at kCleanup right after the release CAS landed —
  /// locals unsaved, instance switch (if owed) not yet announced. The
  /// completion arm must finish both from the journaled pre-image.
  void debug_forge_cleanup_released(Pid p) {
    debug_forge_joined(p);
    PassageSlot& my = slots_[p];
    my.phase.store(kCleanup, std::memory_order_seq_cst);
    const Packed pinned = unpack(space_.read(p, *lock_desc_));
    pool_.publish_pin(p, p, pinned.spn);
    recoverable_rmw(p, p, kAnnOpRelease);
  }

  /// Test hook: death at kCleanup with the release landed and the instance
  /// switch announced but its CAS never issued. Recovery must redo the very
  /// same switch (same sequence number) or compensate if the world moved.
  void debug_forge_cleanup_switch_announced(Pid p) {
    debug_forge_joined(p);
    PassageSlot& my = slots_[p];
    my.phase.store(kCleanup, std::memory_order_seq_cst);
    const Packed pinned = unpack(space_.read(p, *lock_desc_));
    pool_.publish_pin(p, p, pinned.spn);
    const RmwResult r = recoverable_rmw(p, p, kAnnOpRelease);
    my.old_spn.store(r.pre.spn, std::memory_order_seq_cst);
    if (r.pre.refcnt != 1) return;  // forge needs sole membership to switch
    const std::uint64_t seq =
        ann_seq(my.ann_desc.load(std::memory_order_seq_cst)) + 1;
    my.ann_pre.store(r.post_raw, std::memory_order_seq_cst);
    my.ann_aux.store(kAuxNone, std::memory_order_seq_cst);
    my.ann_desc.store(ann_pack(seq, kAnnOpSwitch), std::memory_order_seq_cst);
  }

 private:
  // LockDesc packing (low to high): Refcnt | Spn | Lock | StampPid |
  // StampSeq. The stamp names the last recoverable F&A that landed on the
  // word: the 8-bit pid of the announcer and the low 24 bits of its
  // announcement sequence (see the file header for the decidability rule).
  static constexpr std::uint32_t kRefBits = 8;
  static constexpr std::uint32_t kSpnBits = 16;
  static constexpr std::uint32_t kLockBits = 8;
  static constexpr std::uint32_t kStampPidBits = 8;
  static constexpr std::uint32_t kStampSeqBits = 24;
  static constexpr Pid kMaxProcs = (1u << kRefBits) - 2;
  static constexpr std::uint32_t kNoStampPid = (1u << kStampPidBits) - 1;
  static constexpr std::uint32_t kNoSpn = ~std::uint32_t{0};

  struct Packed {
    std::uint32_t lock;
    std::uint32_t spn;
    std::uint32_t refcnt;
    std::uint32_t stamp_pid;
    std::uint32_t stamp_seq;
  };

  static std::uint64_t pack_stamped(std::uint32_t lock, std::uint32_t spn,
                                    std::uint32_t refcnt,
                                    std::uint32_t stamp_pid,
                                    std::uint64_t stamp_seq) {
    return static_cast<std::uint64_t>(refcnt) |
           (static_cast<std::uint64_t>(spn) << kRefBits) |
           (static_cast<std::uint64_t>(lock) << (kRefBits + kSpnBits)) |
           (static_cast<std::uint64_t>(stamp_pid)
            << (kRefBits + kSpnBits + kLockBits)) |
           ((stamp_seq & ((1ull << kStampSeqBits) - 1))
            << (kRefBits + kSpnBits + kLockBits + kStampPidBits));
  }
  static Packed unpack(std::uint64_t raw) {
    Packed packed;
    packed.refcnt = static_cast<std::uint32_t>(raw & ((1u << kRefBits) - 1));
    packed.spn = static_cast<std::uint32_t>((raw >> kRefBits) &
                                            ((1u << kSpnBits) - 1));
    packed.lock = static_cast<std::uint32_t>((raw >> (kRefBits + kSpnBits)) &
                                             ((1u << kLockBits) - 1));
    packed.stamp_pid = static_cast<std::uint32_t>(
        (raw >> (kRefBits + kSpnBits + kLockBits)) &
        ((1u << kStampPidBits) - 1));
    packed.stamp_seq = static_cast<std::uint32_t>(
        raw >> (kRefBits + kSpnBits + kLockBits + kStampPidBits));
    return packed;
  }

  /// One recyclable one-shot instance (see core::LongLivedLock::Instance)
  /// plus its journaling sink. The VersionedSpace's session/cursor caches
  /// are process-local; each attached process holds its own replica resolved
  /// against the same shm words. (The cursor divergence this allows in the
  /// eager-reset rotation is benign: at W = 64 the wraparound quota is one
  /// word per reuse and the period is 2^63 reuses. The same property makes
  /// the switch-redo's repeated next_incarnation call safe: the version
  /// compare is equality-only, so burning an extra generation is harmless.)
  struct Instance {
    Space space;
    OneShot lock;
    RecoverySink sink;

    Instance(ShmSpace& shm, const Config& config)
        : space(shm, config.nprocs, config.w),
          lock(space, config.nprocs, config.w, config.find) {}
  };

  struct RmwResult {
    Packed pre;              ///< decoded pre-image of the landed CAS
    std::uint64_t post_raw;  ///< the stamped word the CAS installed
  };

  /// The recoverable F&A (file header): announce in `owner`'s slot, then
  /// CAS-with-stamp until it lands. `exec` performs every memory operation;
  /// during recovery it differs from `owner` — the announcement and stamp
  /// still carry the *owner's* identity, so if the recoverer itself dies,
  /// the next recoverer reads one coherent journal (the owner's).
  RmwResult recoverable_rmw(Pid exec, Pid owner, std::uint64_t op) {
    PassageSlot& own = slots_[owner];
    const std::uint64_t seq =
        ann_seq(own.ann_desc.load(std::memory_order_seq_cst)) + 1;
    own.ann_desc.store(ann_pack(seq, op), std::memory_order_seq_cst);
    for (;;) {
      const std::uint64_t w = space_.read(exec, *lock_desc_);
      help_landed(exec, w);
      own.ann_pre.store(w, std::memory_order_seq_cst);
      const Packed p = unpack(w);
      AML_DASSERT(op == kAnnOpJoin ? p.refcnt < kMaxProcs : p.refcnt >= 1,
                  "LockDesc refcnt out of range in recoverable F&A");
      const std::uint32_t refcnt =
          op == kAnnOpJoin ? p.refcnt + 1 : p.refcnt - 1;
      const std::uint64_t desired = pack_stamped(
          p.lock, p.spn, refcnt, static_cast<std::uint32_t>(owner), seq);
      if (space_.cas(exec, *lock_desc_, w, desired)) {
        bump_landed(owner, seq);
        return {p, desired};
      }
    }
  }

  /// Helping rule 1: before a word stamped (q, s) can be overwritten, the
  /// overwriter credits q's announcement if it is still the announced op.
  /// (If q has already announced a later op, q itself recorded s via rule 2
  /// before announcing, so nothing is lost by skipping.)
  void help_landed(Pid /*exec*/, std::uint64_t w) {
    const Packed p = unpack(w);
    if (p.stamp_pid >= static_cast<std::uint32_t>(config_.nprocs)) return;
    const Pid q = static_cast<Pid>(p.stamp_pid);
    const std::uint64_t ann =
        slots_[q].ann_desc.load(std::memory_order_seq_cst);
    const std::uint64_t mask = (1ull << kStampSeqBits) - 1;
    if ((ann_seq(ann) & mask) == p.stamp_seq) {
      bump_landed(q, ann_seq(ann));
    }
  }

  /// CAS-max on `owner`'s landed word (monotone: sequences only grow).
  void bump_landed(Pid owner, std::uint64_t seq) {
    std::uint64_t cur = slots_[owner].landed.load(std::memory_order_seq_cst);
    while (cur < seq && !slots_[owner].landed.compare_exchange_weak(
                            cur, seq, std::memory_order_seq_cst)) {
    }
  }

  /// The post-mortem decision predicate (file header): did `victim`'s
  /// announced op `seq` land? Word first, landed second — a concurrent
  /// overwrite between the two loads has already credited `landed`.
  bool announced_landed(Pid exec, Pid victim, std::uint64_t seq) {
    const Packed p = unpack(space_.read(exec, *lock_desc_));
    const std::uint64_t mask = (1ull << kStampSeqBits) - 1;
    if (p.stamp_pid == static_cast<std::uint32_t>(victim) &&
        p.stamp_seq == (seq & mask)) {
      return true;
    }
    return slots_[victim].landed.load(std::memory_order_seq_cst) >= seq;
  }

  /// Algorithm 6.3, executable by a proxy: `exec` performs the steps,
  /// `owner` is whose passage is being cleaned up (its PassageSlot carries
  /// held/old_spn and the announcements, its announce word takes the pin,
  /// its pool supplies the switch node). For a live process exec == owner.
  void cleanup_impl(Pid exec, Pid owner) {
    PassageSlot& own = slots_[owner];
    const Packed pinned = unpack(space_.read(exec, *lock_desc_));
    pool_.publish_pin(exec, owner, pinned.spn);
    const RmwResult r = recoverable_rmw(exec, owner, kAnnOpRelease);
    AML_DASSERT(r.pre.spn == pinned.spn,
                "LockDesc.Spn changed while our Refcnt hold was in force");
    own.old_spn.store(r.pre.spn, std::memory_order_seq_cst);
    if (r.pre.refcnt != 1) return;
    try_switch(exec, owner, r.post_raw);
  }

  /// The instance switch as a journaled announcement: ann_pre takes the
  /// expected word and ann_aux the chosen spin node BEFORE the CAS, so a
  /// recoverer can redo the identical switch (same sequence number) or
  /// compensate it after a death anywhere inside.
  bool try_switch(Pid exec, Pid owner, std::uint64_t expected_raw) {
    PassageSlot& own = slots_[owner];
    const std::uint64_t seq =
        ann_seq(own.ann_desc.load(std::memory_order_seq_cst)) + 1;
    own.ann_pre.store(expected_raw, std::memory_order_seq_cst);
    own.ann_aux.store(kAuxNone, std::memory_order_seq_cst);
    own.ann_desc.store(ann_pack(seq, kAnnOpSwitch),
                       std::memory_order_seq_cst);
    return switch_attempt(exec, owner, seq);
  }

  /// The CAS half of a switch whose announcement is already journaled in
  /// `owner`'s slot — called by try_switch, and re-entered verbatim by the
  /// recovery redo path.
  bool switch_attempt(Pid exec, Pid owner, std::uint64_t seq) {
    PassageSlot& own = slots_[owner];
    const std::uint64_t expected =
        own.ann_pre.load(std::memory_order_seq_cst);
    const Packed prev = unpack(expected);
    const std::uint32_t new_lock = static_cast<std::uint32_t>(
        own.held.load(std::memory_order_seq_cst));
    instances_[new_lock]->space.next_incarnation(exec);
    const std::uint64_t aux = own.ann_aux.load(std::memory_order_seq_cst);
    std::uint32_t new_spn;
    if (aux != kAuxNone) {
      new_spn = static_cast<std::uint32_t>(aux);
    } else {
      new_spn = pool_.select(exec, owner);
      own.ann_aux.store(new_spn, std::memory_order_seq_cst);
    }
    pool_.commit(new_spn);  // idempotent: covers a death before the mark
    help_landed(exec, expected);
    const std::uint64_t desired = pack_stamped(
        new_lock, new_spn, 0, static_cast<std::uint32_t>(owner), seq);
    if (space_.cas(exec, *lock_desc_, expected, desired)) {
      bump_landed(owner, seq);
      if constexpr (Metrics::kEnabled) {
        if (metrics_ != nullptr) metrics_->on_switch(exec);
      }
      if (shm_ != nullptr) shm_->on_switch(stripe_id_, exec, new_lock);
      finish_switch_post(exec, owner, prev);
      return true;
    }
    pool_.unalloc(exec, owner, new_spn);
    own.ann_aux.store(kAuxNone, std::memory_order_seq_cst);
    return false;
  }

  /// Post-CAS steps of a landed switch: retire the replaced node and save
  /// the old instance as the next switch target. Both idempotent, so
  /// recovery re-runs them for a victim that died after its CAS landed.
  void finish_switch_post(Pid exec, Pid owner, const Packed& prev) {
    // Stays seq_cst (recovery may re-run it); still the release side the
    // spn waiters acquire.
    space_.write(exec, *pool_.node(prev.spn).go, 1);  // AML_V_EDGE(longlived.spn_switch)
    slots_[owner].held.store(prev.lock, std::memory_order_seq_cst);
    slots_[owner].ann_aux.store(kAuxNone, std::memory_order_seq_cst);
  }

  RecoveryAction recover_locked(Pid exec, Pid victim) {
    PassageSlot& v = slots_[victim];
    const std::uint64_t phase = v.phase.load(std::memory_order_seq_cst);
    const std::uint64_t att = v.attempt.load(std::memory_order_seq_cst);
    const std::uint32_t cur_inst = static_cast<std::uint32_t>(
        v.current.load(std::memory_order_seq_cst));
    switch (phase) {
      case kIdle:
      case kSpinWait:
        // No shared footprint: LockDesc untouched, no queue slot. The pid
        // can be re-leased as-is (its held/old_spn locals stay valid).
        finish_slot(v);
        return RecoveryAction::kNone;
      case kPreJoin: {
        // The join F&A is journaled (v3): decide post-mortem whether the
        // announced increment landed, then complete the passage (one
        // Cleanup undoes a bare join) or compensate (nothing to undo) —
        // never a zombie. A non-join announcement here is the *previous*
        // passage's release/switch, long landed and finished: every
        // passage announces its join before anything else, so a pending
        // join is always the newest announcement under kPreJoin.
        const std::uint64_t ann =
            v.ann_desc.load(std::memory_order_seq_cst);
        if (ann_op(ann) == kAnnOpJoin &&
            announced_landed(exec, victim, ann_seq(ann))) {
          recovered_cleanup(exec, victim);
          finish_slot(v);
          emit_recovery(obs::ShmEventKind::kFaCompleted, exec, victim,
                        obs::kNoSlot, cur_inst);
          return RecoveryAction::kForcedAbort;
        }
        const bool pending_join = ann_op(ann) == kAnnOpJoin;
        finish_slot(v);
        if (pending_join) {
          emit_recovery(obs::ShmEventKind::kFaCompensated, exec, victim,
                        obs::kNoSlot, cur_inst);
        }
        return RecoveryAction::kNone;
      }
      case kJoined: {
        // Refcnt is incremented but no doorway F&A happened: the passage
        // has no queue presence, so the repair is exactly one Cleanup.
        recovered_cleanup(exec, victim);
        finish_slot(v);
        emit_recovery(obs::ShmEventKind::kAbortOnBehalf, exec, victim,
                      obs::kNoSlot, cur_inst);
        return RecoveryAction::kForcedAbort;
      }
      case kDoorway: {
        if ((att & kAttemptRecorded) == 0) {
          // In the one-shot doorway but the tail F&A may or may not have
          // run (the sink journals immediately after it). This is the one
          // window the journal still cannot attribute; the pid is retired
          // and waits for epoch reclamation.
          emit_recovery(obs::ShmEventKind::kZombieRetire, exec, victim,
                        obs::kNoSlot, cur_inst);
          return RecoveryAction::kZombie;
        }
        const std::uint32_t slot = attempt_slot(att);
        const std::uint32_t inst_idx = attempt_instance(att);
        Instance& inst = *instances_[inst_idx];
        inst.space.begin_session(exec);
        // Granted if the victim acknowledged it, or if the signal already
        // landed in go[slot] (a signal racing the crash: the grant stands,
        // so the passage must be exited, not aborted — aborting would strand
        // the hand-off).
        const bool granted = (att & kAttemptGranted) != 0 ||
                             inst.lock.peek_go(exec, slot) != 0;
        if (granted) {
          inst.lock.complete_grant(exec, slot);
          inst.lock.exit(exec);
          recovered_cleanup(exec, victim);
          finish_slot(v);
          emit_recovery(obs::ShmEventKind::kCompleteGrant, exec, victim,
                        slot, inst_idx);
          return RecoveryAction::kForcedExit;
        }
        inst.lock.abort_on_behalf(exec, slot);
        recovered_cleanup(exec, victim);
        finish_slot(v);
        emit_recovery(obs::ShmEventKind::kAbortOnBehalf, exec, victim, slot,
                      inst_idx);
        return RecoveryAction::kForcedAbort;
      }
      case kHolding: {
        const std::uint32_t inst_idx = attempt_instance(att);
        Instance& inst = *instances_[inst_idx];
        inst.space.begin_session(exec);
        inst.lock.exit(exec);
        recovered_cleanup(exec, victim);
        finish_slot(v);
        emit_recovery(obs::ShmEventKind::kForcedExit, exec, victim,
                      attempt_slot(att), inst_idx);
        return RecoveryAction::kForcedExit;
      }
      case kReleasing: {
        const std::uint32_t inst_idx = attempt_instance(att);
        Instance& inst = *instances_[inst_idx];
        inst.space.begin_session(exec);
        const std::uint64_t head_snap =
            v.head_snap.load(std::memory_order_seq_cst);
        RecoveryAction action;
        obs::ShmEventKind kind;
        if (inst.lock.peek_last_exited(exec) != head_snap) {
          // Died before LastExited was written: redo the whole exit.
          inst.lock.exit(exec);
          action = RecoveryAction::kForcedExit;
          kind = obs::ShmEventKind::kForcedExit;
        } else {
          // LastExited written; the SignalNext may or may not have run.
          // FindNext from the same head re-finds the same successor (exit
          // never removes the head from the tree) and a duplicate go write
          // is absorbed, so re-driving it is safe either way.
          inst.lock.resignal_from(exec, static_cast<std::uint32_t>(head_snap));
          action = RecoveryAction::kResignalled;
          kind = obs::ShmEventKind::kResignal;
        }
        recovered_cleanup(exec, victim);
        finish_slot(v);
        emit_recovery(kind, exec, victim, attempt_slot(att), inst_idx);
        return action;
      }
      case kCleanup:
        return recover_cleanup_arm(exec, victim, v, att, cur_inst);
      default:
        AML_ASSERT(false, "corrupt phase word in recovery");
        return RecoveryAction::kZombie;
    }
  }

  /// Death inside Cleanup (v3): the journal names exactly which step was in
  /// flight — the release F&A (announced / landed) or the instance-switch
  /// CAS (announced, with its pre-image and chosen node) — and every arm
  /// either completes the landed op forward or compensates the un-landed
  /// one. Never a zombie.
  RecoveryAction recover_cleanup_arm(Pid exec, Pid victim, PassageSlot& v,
                                     std::uint64_t att,
                                     std::uint32_t cur_inst) {
    const RecoveryAction action = (att & kAttemptGranted) != 0
                                      ? RecoveryAction::kForcedExit
                                      : RecoveryAction::kForcedAbort;
    const std::uint32_t slot =
        (att & kAttemptRecorded) != 0 ? attempt_slot(att) : obs::kNoSlot;
    const std::uint64_t ann = v.ann_desc.load(std::memory_order_seq_cst);
    const std::uint64_t seq = ann_seq(ann);
    obs::ShmEventKind kind = obs::ShmEventKind::kFaCompensated;
    switch (ann_op(ann)) {
      case kAnnOpSwitch: {
        // The release already landed (a switch is only announced after its
        // release returned); the victim died inside the switch.
        const std::uint64_t pre_raw =
            v.ann_pre.load(std::memory_order_seq_cst);
        const Packed pre = unpack(pre_raw);
        v.old_spn.store(pre.spn, std::memory_order_seq_cst);
        if (announced_landed(exec, victim, seq)) {
          finish_switch_post(exec, victim, pre);
          kind = obs::ShmEventKind::kFaCompleted;
        } else if (space_.read(exec, *lock_desc_) == pre_raw) {
          // Word untouched since the announcement: redo the same switch
          // under the same sequence number.
          kind = switch_attempt(exec, victim, seq)
                     ? obs::ShmEventKind::kFaCompleted
                     : obs::ShmEventKind::kFaCompensated;
        } else {
          // A joiner moved the word: the switch must be abandoned. Free
          // the journaled node if one was chosen.
          const std::uint64_t aux =
              v.ann_aux.load(std::memory_order_seq_cst);
          if (aux != kAuxNone) {
            pool_.unalloc(exec, victim, static_cast<std::uint32_t>(aux));
            v.ann_aux.store(kAuxNone, std::memory_order_seq_cst);
          }
        }
        break;
      }
      case kAnnOpRelease: {
        if (!announced_landed(exec, victim, seq)) {
          // The decrement never landed: the whole Cleanup simply reruns
          // under a fresh announcement.
          recovered_cleanup(exec, victim);
          break;
        }
        // Decrement landed; the victim died before (or while) saving its
        // locals and switching. Finish both from the journaled pre-image.
        const std::uint64_t pre_raw =
            v.ann_pre.load(std::memory_order_seq_cst);
        const Packed pre = unpack(pre_raw);
        v.old_spn.store(pre.spn, std::memory_order_seq_cst);
        if (pre.refcnt == 1) {
          // Last leaver: the switch was never announced — run it fresh
          // against the release's post-image.
          try_switch(exec, victim,
                     pack_stamped(pre.lock, pre.spn, 0,
                                  static_cast<std::uint32_t>(victim), seq));
        }
        kind = obs::ShmEventKind::kFaCompleted;
        break;
      }
      default:
        // Death right at the kCleanup phase store, before the release was
        // announced (the announcement is still the passage's landed join):
        // nothing is in flight; run the Cleanup from scratch.
        recovered_cleanup(exec, victim);
        break;
    }
    finish_slot(v);
    emit_recovery(kind, exec, victim, slot, cur_inst);
    return action;
  }

  /// Exactly one typed event per dispatch arm, victim pid in the payload —
  /// emitted after the repair steps so a reader that sees the event also
  /// sees the repaired stripe state.
  void emit_recovery(obs::ShmEventKind kind, Pid exec, Pid victim,
                     std::uint32_t slot, std::uint32_t instance) {
    if (shm_ != nullptr) {
      shm_->on_recovery_arm(kind, stripe_id_, exec, victim, slot, instance);
    }
  }

  void recovered_cleanup(Pid exec, Pid victim) {
    slots_[victim].phase.store(kCleanup, std::memory_order_seq_cst);
    cleanup_impl(exec, victim);
  }

  static void finish_slot(PassageSlot& v) {
    v.attempt.store(0, std::memory_order_seq_cst);
    v.phase.store(kIdle, std::memory_order_seq_cst);
  }

  // Per-stripe recovery seqlock: (sequence << 32) | holder_os_pid, free
  // when the low half is 0. A claimant CASes its OS pid in; if the recorded
  // holder is itself dead (ESRCH), the claim is taken over under the same
  // sequence — a crashed *recoverer* must not wedge the stripe forever.
  void lock_recovery(Pid exec, std::uint64_t exec_os_pid) {
    for (;;) {
      const std::uint64_t cur = space_.read(exec, *recovery_);
      const std::uint64_t holder = cur & 0xFFFF'FFFFull;
      if (holder == 0) {
        if (space_.cas(exec, *recovery_, cur,
                       (cur & ~0xFFFF'FFFFull) | exec_os_pid)) {
          return;
        }
        continue;
      }
      if (::kill(static_cast<pid_t>(holder), 0) == -1 && errno == ESRCH) {
        if (space_.cas(exec, *recovery_, cur,
                       (cur & ~0xFFFF'FFFFull) | exec_os_pid)) {
          return;
        }
        continue;
      }
      ::sched_yield();
    }
  }

  void unlock_recovery(Pid exec) {
    const std::uint64_t cur = space_.read(exec, *recovery_);
    space_.write(exec, *recovery_, ((cur >> 32) + 1) << 32);
  }

  ShmSpace& space_;
  Config config_;
  ShmSpinNodePool pool_;
  std::vector<std::unique_ptr<Instance>> instances_;
  PassageSlot* slots_ = nullptr;        ///< shm, one per pid
  ShmSpace::Word* lock_desc_ = nullptr;
  ShmSpace::Word* recovery_ = nullptr;  ///< per-stripe recovery seqlock
  Metrics* metrics_ = nullptr;
  obs::ShmMetrics* shm_ = nullptr;  ///< segment-hosted sink (crash-surviving)
  std::uint32_t stripe_id_ = 0;
};

using ShmStripeLock = ShmStripeLockT<obs::Metrics>;

}  // namespace aml::ipc
