// ProcessRegistry: leases the small dense pids the lock algorithms are
// parameterized over to operating-system processes, robustly.
//
// The in-process table's ThreadRegistry can trust its leaseholders to call
// release(); a process can be SIGKILLed holding a pid. Each slot therefore
// carries the OS pid of its holder plus a heartbeat word, and survivors can
// detect a dead holder (kill(pid, 0) == ESRCH, or a heartbeat that stopped)
// and drive the recovery protocol (see shm_lock.hpp) before reclaiming the
// slot.
//
// Lease word state machine (low 2 bits; the rest is a nonce bumped on every
// transition out of kFree or kRecovering, so a recovery claim can never land
// on a *re-leased* slot — classic ABA):
//
//     kFree --try_lease--> kLive --try_claim_recovery--> kRecovering
//       ^                    |                                |
//       |                  release                     finish_recovery
//       +--------------------+------------<-- (or kZombie, terminal: the
//                                              victim died in a window the
//                                              journal cannot disambiguate;
//                                              see ShmStripeLock::recover)
//
// Zero-filled shm pages decode as "all slots kFree", so the registry needs
// no creator-side initialization at all.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>

#include <signal.h>
#include <unistd.h>

#include "aml/ipc/shm_arena.hpp"
#include "aml/model/types.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"

namespace aml::ipc {

// AML_SHM_REGION_BEGIN
/// One registry slot. Padded so heartbeat stores by one process never
/// false-share with another slot's lease CASes.
struct alignas(pal::kCacheLine) ProcessSlot {
  /// (nonce << 2) | state. Zero == (nonce 0, kFree).
  std::atomic<std::uint64_t> lease;
  /// OS pid of the leaseholder; 0 while the lease CAS has succeeded but the
  /// holder has not yet published its pid (treated as alive).
  std::atomic<std::uint64_t> os_pid;
  /// Monotonic liveness counter; the holder bumps it from its hot path.
  std::atomic<std::uint64_t> heartbeat;
};
// AML_SHM_REGION_END
AML_SHM_PLACEABLE(ProcessSlot);

class ProcessRegistry {
 public:
  enum State : std::uint64_t {
    kFree = 0,
    kLive = 1,
    kRecovering = 2,
    kZombie = 3,
  };

  static constexpr std::uint64_t kStateMask = 3;

  /// Both roles replay the same allocation; zero pages are the valid initial
  /// state, so neither role stores anything.
  ProcessRegistry(ShmArena& arena, model::Pid nprocs)
      : base_(arena.base()),
        nprocs_(nprocs),
        slots_(arena.alloc_array<ProcessSlot>(nprocs)) {}

  ProcessRegistry(const ProcessRegistry&) = delete;
  ProcessRegistry& operator=(const ProcessRegistry&) = delete;

  model::Pid nprocs() const { return nprocs_; }

  /// Lease the lowest free pid; returns nprocs() when full. Publishes the
  /// caller's OS pid after winning the CAS (os_pid == 0 is the benign
  /// "still initializing" window — dead() treats it as alive). On success
  /// `*token` (if given) receives the lease word this holder installed; it
  /// is the capability release() needs.
  model::Pid try_lease(std::uint64_t* token = nullptr) {
    for (model::Pid id = 0; id < nprocs_; ++id) {
      std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);
      if ((cur & kStateMask) != kFree) continue;
      const std::uint64_t next = bump_nonce(cur) | kLive;
      if (slots_[id].lease.compare_exchange_strong(
              cur, next, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        slots_[id].os_pid.store(static_cast<std::uint64_t>(::getpid()),
                                std::memory_order_release);
        if (token != nullptr) *token = next;
        return id;
      }
    }
    return nprocs_;
  }

  /// Orderly release by the leaseholder itself. `token` is the lease word
  /// try_lease installed: if a survivor has since declared this holder dead
  /// (forged test pid, OS pid reuse) and recovered — or recovered *and*
  /// re-leased — the slot, the nonce no longer matches and the release is a
  /// no-op instead of clobbering the successor's lease.
  void release(model::Pid id, std::uint64_t token) {
    AML_ASSERT(id < nprocs_, "ProcessRegistry::release: bad pid");
    std::uint64_t cur = token;
    if (slots_[id].lease.compare_exchange_strong(cur, bump_nonce(cur) | kFree,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
      slots_[id].os_pid.store(0, std::memory_order_release);
    }
  }

  /// Liveness pulse from the holder's hot path.
  void beat(model::Pid id) {
    slots_[id].heartbeat.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t heartbeat(model::Pid id) const {
    return slots_[id].heartbeat.load(std::memory_order_relaxed);
  }

  State state(model::Pid id) const {
    return static_cast<State>(slots_[id].lease.load(
                                  std::memory_order_acquire) &
                              kStateMask);
  }

  std::uint64_t os_pid(model::Pid id) const {
    return slots_[id].os_pid.load(std::memory_order_acquire);
  }

  /// True when the slot is held by a process that no longer exists: the
  /// lease is live, the holder published a pid other than us, and the kernel
  /// reports ESRCH for it. A holder that has not yet published (os_pid 0) is
  /// alive by definition — it is mid-try_lease.
  bool dead(model::Pid id) const {
    if (state(id) != kLive) return false;
    const std::uint64_t pid = os_pid(id);
    if (pid == 0 || pid == static_cast<std::uint64_t>(::getpid())) {
      return false;
    }
    return ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
  }

  /// Claim a dead slot for recovery. Exactly one survivor wins: the CAS is
  /// pinned to the observed nonce, so a concurrent release + re-lease (new
  /// nonce) defeats a stale claim.
  bool try_claim_recovery(model::Pid id) {
    std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);
    if ((cur & kStateMask) != kLive) return false;
    return slots_[id].lease.compare_exchange_strong(
        cur, (cur & ~kStateMask) | kRecovering, std::memory_order_acq_rel,
        std::memory_order_relaxed);
  }

  /// Finish a recovery this process claimed: free the slot for re-lease, or
  /// park it as a zombie when the victim died inside a window the passage
  /// journal cannot disambiguate (the pid is retired; see docs/API.md).
  void finish_recovery(model::Pid id, bool zombie) {
    std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);
    AML_ASSERT((cur & kStateMask) == kRecovering,
               "finish_recovery: slot not claimed");
    slots_[id].os_pid.store(0, std::memory_order_release);
    slots_[id].lease.compare_exchange_strong(
        cur, bump_nonce(cur) | (zombie ? kZombie : kFree),
        std::memory_order_acq_rel, std::memory_order_relaxed);
  }

  /// Test hook: forge the published OS pid so owner death is simulable
  /// without fork (use a pid above the kernel's pid_max, e.g. 0x7FFFFFFF,
  /// for a guaranteed ESRCH).
  void debug_set_os_pid(model::Pid id, std::uint64_t os_pid) {
    slots_[id].os_pid.store(os_pid, std::memory_order_release);
  }

 private:
  static std::uint64_t bump_nonce(std::uint64_t lease) {
    return (lease & ~kStateMask) + (kStateMask + 1);
  }

  void* base_;
  model::Pid nprocs_;
  ProcessSlot* slots_;
};

}  // namespace aml::ipc
