// ProcessRegistry: leases the small dense pids the lock algorithms are
// parameterized over to operating-system processes, robustly.
//
// The in-process table's ThreadRegistry can trust its leaseholders to call
// release(); a process can be SIGKILLed holding a pid. Each slot therefore
// carries the OS pid of its holder, and survivors detect a dead holder by
// the kernel's ground truth — kill(pid, 0) == ESRCH — and drive the
// recovery protocol (see shm_lock.hpp) before reclaiming the slot. Each
// slot also carries a heartbeat word the holder bumps from its hot path;
// it is advisory observability (progress monitoring, tests), deliberately
// NOT a death signal: an idle-but-live holder stops beating, so heartbeat
// staleness cannot distinguish idleness from death without a false-positive
// risk that would force a *live* process out of its critical section.
//
// v1 limitation (documented alongside the zombie windows in docs/API.md):
// the ESRCH check's blind spot is OS pid reuse. If a crashed holder's pid
// is recycled to an unrelated long-lived process, the death goes undetected
// and the holder's locks stay parked until that process exits. Closing it
// needs a liveness channel that survives pid recycling (e.g. a per-holder
// pidfd or robust-futex registration), which is follow-up work.
//
// Lease word state machine (low 2 bits; the rest is a nonce bumped on every
// transition out of kFree or kRecovering, so neither a recovery claim nor a
// late release can ever land on a *re-leased* slot — classic ABA):
//
//     kFree --try_lease--> kLive --try_claim_recovery--> kRecovering
//       ^                    |      (or release: the holder    |
//       |                    +----- claims its own slot) -->---+
//       |                                                      |
//       +--- finish_recovery / release's final step -----------+
//                       (or kZombie, terminal: the victim died in a
//                        window the journal cannot disambiguate; see
//                        ShmStripeLock::recover)
//
// Both exits from kLive pass through the exclusive kRecovering claim, so
// os_pid is always cleared *before* the slot becomes leasable again — a
// racing try_lease can never publish a pid that a stale store then erases.
//
// Zero-filled shm pages decode as "all slots kFree", so the registry needs
// no creator-side initialization at all.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <ctime>

#include <signal.h>
#include <unistd.h>

#include "aml/ipc/shm_arena.hpp"
#include "aml/model/types.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"

namespace aml::ipc {

// AML_SHM_REGION_BEGIN
/// One registry slot. Padded so heartbeat stores by one process never
/// false-share with another slot's lease CASes.
struct alignas(pal::kCacheLine) ProcessSlot {
  /// (nonce << 2) | state. Zero == (nonce 0, kFree).
  std::atomic<std::uint64_t> lease;
  /// OS pid of the leaseholder; 0 while the lease CAS has succeeded but the
  /// holder has not yet published its pid (treated as alive).
  std::atomic<std::uint64_t> os_pid;
  /// Monotonic activity counter the holder bumps from its hot path.
  /// Advisory observability only — never consulted by dead() (see the file
  /// header for why heartbeat staleness is not a safe death signal).
  std::atomic<std::uint64_t> heartbeat;
  /// CLOCK_MONOTONIC ns of the last beat, so an observer (aml_stat) can
  /// report heartbeat *age* without sampling the counter twice. Same
  /// advisory-only caveat as the counter.
  std::atomic<std::uint64_t> beat_ns;
};
// AML_SHM_REGION_END
AML_SHM_PLACEABLE(ProcessSlot);

class ProcessRegistry {
 public:
  enum State : std::uint64_t {
    kFree = 0,
    kLive = 1,
    kRecovering = 2,
    kZombie = 3,
  };

  static constexpr std::uint64_t kStateMask = 3;

  /// Both roles replay the same allocation; zero pages are the valid initial
  /// state, so neither role stores anything.
  ProcessRegistry(ShmArena& arena, model::Pid nprocs)
      : base_(arena.base()),
        nprocs_(nprocs),
        slots_(arena.alloc_array<ProcessSlot>(nprocs)) {}

  ProcessRegistry(const ProcessRegistry&) = delete;
  ProcessRegistry& operator=(const ProcessRegistry&) = delete;

  model::Pid nprocs() const { return nprocs_; }

  /// Lease the lowest free pid; returns nprocs() when full. Publishes the
  /// caller's OS pid after winning the CAS (os_pid == 0 is the benign
  /// "still initializing" window — dead() treats it as alive). On success
  /// `*token` (if given) receives the lease word this holder installed; it
  /// is the capability release() needs.
  model::Pid try_lease(std::uint64_t* token = nullptr) {
    for (model::Pid id = 0; id < nprocs_; ++id) {
      std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);
      if ((cur & kStateMask) != kFree) continue;
      const std::uint64_t next = bump_nonce(cur) | kLive;
      if (slots_[id].lease.compare_exchange_strong(
              cur, next, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        slots_[id].os_pid.store(static_cast<std::uint64_t>(::getpid()),
                                std::memory_order_release);
        if (token != nullptr) *token = next;
        return id;
      }
    }
    return nprocs_;
  }

  /// Orderly release by the leaseholder itself. `token` is the lease word
  /// try_lease installed: if a survivor has since declared this holder dead
  /// (forged test pid, OS pid reuse) and recovered — or recovered *and*
  /// re-leased — the slot, the nonce no longer matches, the claim CAS below
  /// fails, and the release is a total no-op instead of clobbering the
  /// successor's lease or erasing its published os_pid.
  ///
  /// Release reuses the recovery claim protocol: CAS the exact token to
  /// kRecovering (the same exclusive claim a survivor's recovery takes),
  /// clear os_pid while the slot is still unleasable, then free it with a
  /// bumped nonce. Clearing os_pid *before* the slot turns kFree is what
  /// keeps dead() sound: were the order reversed, a racing try_lease could
  /// win the freed slot and publish its pid between the two steps, and our
  /// trailing os_pid=0 would erase it — leaving the successor permanently
  /// undetectable (os_pid 0 reads as "alive by definition") if it later
  /// crashes. (A SIGKILL landing between the claim and the final store
  /// parks the slot in kRecovering — the same window as a recoverer dying
  /// mid-recovery, an accepted v1 limitation; see docs/API.md.)
  void release(model::Pid id, std::uint64_t token) {
    AML_ASSERT(id < nprocs_, "ProcessRegistry::release: bad pid");
    std::uint64_t cur = token;
    if (!slots_[id].lease.compare_exchange_strong(
            cur, (token & ~kStateMask) | kRecovering,
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      return;  // stale token: the slot was recovered from under us
    }
    slots_[id].os_pid.store(0, std::memory_order_release);
    // Plain store: the exclusive claim means no other transition can race.
    slots_[id].lease.store(bump_nonce(token) | kFree,
                           std::memory_order_release);
  }

  /// Liveness pulse from the holder's hot path.
  void beat(model::Pid id) {
    slots_[id].heartbeat.fetch_add(1, std::memory_order_relaxed);
    struct ::timespec ts {};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    slots_[id].beat_ns.store(
        static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
            static_cast<std::uint64_t>(ts.tv_nsec),
        std::memory_order_relaxed);
  }

  std::uint64_t heartbeat(model::Pid id) const {
    return slots_[id].heartbeat.load(std::memory_order_relaxed);
  }

  /// CLOCK_MONOTONIC ns of the last beat; 0 when the holder never beat.
  std::uint64_t heartbeat_ns(model::Pid id) const {
    return slots_[id].beat_ns.load(std::memory_order_relaxed);
  }

  State state(model::Pid id) const {
    return static_cast<State>(slots_[id].lease.load(
                                  std::memory_order_acquire) &
                              kStateMask);
  }

  std::uint64_t os_pid(model::Pid id) const {
    return slots_[id].os_pid.load(std::memory_order_acquire);
  }

  /// True when the slot is held by a process that no longer exists: the
  /// lease is live, the holder published a pid other than us, and the kernel
  /// reports ESRCH for it. A holder that has not yet published (os_pid 0) is
  /// alive by definition — it is mid-try_lease.
  ///
  /// Advisory: the answer can be stale by the time the caller acts on it
  /// (the slot may be released, recovered, or re-leased in between), so a
  /// dead() == true is only a hint to attempt try_claim_recovery(), which
  /// re-establishes death and claims under one observed lease word.
  bool dead(model::Pid id) const {
    return dead_under(id, slots_[id].lease.load(std::memory_order_acquire));
  }

  /// Atomically (observe death ∧ claim): load the lease word once, verify
  /// the holder *under exactly that word* is dead, and CAS from that same
  /// word to kRecovering. Exactly one survivor wins.
  ///
  /// Pinning the claim to the word under which death was observed closes
  /// the TOCTOU where a separate dead() check passes, then the victim is
  /// recovered, freed, and re-leased to a live process before the claim
  /// lands — the claim would otherwise succeed against the *new* live
  /// holder and recovery would force a live process out of its critical
  /// section. The nonce is bumped on every transition out of kFree and
  /// kRecovering, so the CAS can only succeed while the slot still belongs
  /// to the holder whose death we established.
  ///
  /// The os_pid read is covered by the pin: while the lease word equals
  /// `observed`, os_pid is either 0 (that holder mid-publish — alive by
  /// definition) or that holder's pid, because both release() and
  /// finish_recovery() clear os_pid under their exclusive kRecovering
  /// claim, strictly before the slot can be freed and re-leased.
  bool try_claim_recovery(model::Pid id) {
    const std::uint64_t observed =
        slots_[id].lease.load(std::memory_order_acquire);
    if (!dead_under(id, observed)) return false;
    std::uint64_t cur = observed;
    return slots_[id].lease.compare_exchange_strong(
        cur, (observed & ~kStateMask) | kRecovering,
        std::memory_order_acq_rel, std::memory_order_relaxed);
  }

  /// Finish a recovery this process claimed: free the slot for re-lease, or
  /// park it as a zombie when the victim died inside a window the passage
  /// journal cannot disambiguate (the pid is retired; see docs/API.md).
  void finish_recovery(model::Pid id, bool zombie) {
    std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);
    AML_ASSERT((cur & kStateMask) == kRecovering,
               "finish_recovery: slot not claimed");
    slots_[id].os_pid.store(0, std::memory_order_release);
    slots_[id].lease.compare_exchange_strong(
        cur, bump_nonce(cur) | (zombie ? kZombie : kFree),
        std::memory_order_acq_rel, std::memory_order_relaxed);
  }

  /// Test hook: forge the published OS pid so owner death is simulable
  /// without fork (use a pid above the kernel's pid_max, e.g. 0x7FFFFFFF,
  /// for a guaranteed ESRCH).
  void debug_set_os_pid(model::Pid id, std::uint64_t os_pid) {
    slots_[id].os_pid.store(os_pid, std::memory_order_release);
  }

 private:
  /// Death predicate evaluated against a caller-supplied lease observation
  /// (see try_claim_recovery for why the observation must be pinned).
  bool dead_under(model::Pid id, std::uint64_t observed_lease) const {
    if ((observed_lease & kStateMask) != kLive) return false;
    const std::uint64_t pid = os_pid(id);
    if (pid == 0 || pid == static_cast<std::uint64_t>(::getpid())) {
      return false;
    }
    return ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
  }

  static std::uint64_t bump_nonce(std::uint64_t lease) {
    return (lease & ~kStateMask) + (kStateMask + 1);
  }

  void* base_;
  model::Pid nprocs_;
  ProcessSlot* slots_;
};

}  // namespace aml::ipc
