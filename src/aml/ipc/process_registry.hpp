// ProcessRegistry: leases the small dense pids the lock algorithms are
// parameterized over to operating-system processes, robustly.
//
// The in-process table's ThreadRegistry can trust its leaseholders to call
// release(); a process can be SIGKILLed holding a pid. Each slot therefore
// carries the OS pid of its holder, and survivors detect a dead holder by
// the kernel's ground truth — kill(pid, 0) == ESRCH — and drive the
// recovery protocol (see shm_lock.hpp) before reclaiming the slot. Each
// slot also carries a heartbeat word the holder bumps from its hot path;
// it is advisory observability (progress monitoring, tests), deliberately
// NOT a death signal: an idle-but-live holder stops beating, so heartbeat
// staleness cannot distinguish idleness from death without a false-positive
// risk that would force a *live* process out of its critical section.
//
// Pid-reuse hardening (v3; closes v1's documented ESRCH blind spot): the
// kill(pid, 0) probe alone cannot tell a live holder from an unrelated
// process the kernel recycled its pid to. Each holder therefore publishes
// its kernel *start time* (/proc/<pid>/stat field 22 on Linux; 0 =
// "unknown" elsewhere) beside its os_pid, start time first. A holder is
// declared dead only if the kernel reports ESRCH, or the process that
// answers to the pid was started at a different time than the one that
// leased the slot — which also lets a *restarted* process recognize its own
// previous incarnation as dead and re-enter it (try_reattach below). An
// unknown start time on either side degrades conservatively to the v1
// behaviour (reuse undetected, never a false death).
//
// Lease word state machine (low 2 bits; the rest is a nonce bumped on every
// transition out of kFree or kRecovering, so neither a recovery claim nor a
// late release can ever land on a *re-leased* slot — classic ABA):
//
//     kFree --try_lease--> kLive --try_claim_recovery--> kRecovering
//       ^                    |      (or release / try_reattach:   |
//       |                    +----- the same exclusive claim) ->--+
//       |                                                         |
//       +--- finish_recovery / release / repossess ---------------+
//                       (or kZombie: the victim died in the one
//                        journal-blind doorway window; retired, and
//                        reclaimed back to kFree by try_reclaim_zombie
//                        once a full-quiescence epoch has passed)
//
// Both exits from kLive pass through the exclusive kRecovering claim, so
// os_pid is always cleared *before* the slot becomes leasable again — a
// racing try_lease can never publish a pid that a stale store then erases.
//
// Quiescence epochs: a global epoch counter is bumped each time a pid is
// retired as a zombie, and the retirement epoch is recorded in the slot.
// Every live session journals the current epoch into its slot whenever it
// reaches a no-footprint point (note_idle: guard fully released, no passage
// in flight). A zombie may be reclaimed once every live slot's idle mark
// has reached its retirement epoch — proof that every process has passed
// through idle since the retirement, so no live passage can carry a stale
// reference to anything the victim touched. (The table layer adds a
// journal-phase gate on top; see ShmNamedLockTable::recover_dead.)
//
// Zero-filled shm pages decode as "all slots kFree, epoch 0", so the
// registry needs no creator-side initialization at all.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <signal.h>
#include <unistd.h>

#include "aml/ipc/shm_arena.hpp"
#include "aml/model/types.hpp"
#include "aml/pal/cache.hpp"
#include "aml/pal/config.hpp"

namespace aml::ipc {

/// Kernel start time (clock ticks since boot) of an OS process: field 22 of
/// /proc/<pid>/stat, parsed from past the last ')' so comm names containing
/// spaces or parentheses cannot shift the fields. Returns 0 ("unknown") when
/// procfs is unavailable (the portable fallback) or the process vanished
/// mid-read; callers must treat 0 conservatively — it is evidence of
/// nothing, in particular not of pid reuse.
inline std::uint64_t process_start_ticks(std::uint64_t os_pid) {
#if defined(__linux__)
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%llu/stat",
                static_cast<unsigned long long>(os_pid));
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0;
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0;
  ++p;  // fields resume with state (field 3); starttime is field 22,
        // i.e. the 20th whitespace-separated token from here
  for (int field = 0; field < 20; ++field) {
    while (*p == ' ') ++p;
    if (*p == '\0') return 0;
    if (field == 19) return std::strtoull(p, nullptr, 10);
    while (*p != ' ' && *p != '\0') ++p;
  }
  return 0;
#else
  (void)os_pid;
  return 0;
#endif
}

// AML_SHM_REGION_BEGIN
/// One registry slot. Padded so heartbeat stores by one process never
/// false-share with another slot's lease CASes.
struct alignas(pal::kCacheLine) ProcessSlot {
  /// (nonce << 2) | state. Zero == (nonce 0, kFree).
  std::atomic<std::uint64_t> lease;
  /// OS pid of the leaseholder; 0 while the lease CAS has succeeded but the
  /// holder has not yet published its pid (treated as alive).
  std::atomic<std::uint64_t> os_pid;
  /// Kernel start time of the leaseholder (process_start_ticks), published
  /// strictly *before* os_pid so any visible pid already has its start
  /// beside it. 0 = unknown (portable fallback; treated as "no evidence").
  std::atomic<std::uint64_t> os_start;
  /// Monotonic activity counter the holder bumps from its hot path.
  /// Advisory observability only — never consulted by dead() (see the file
  /// header for why heartbeat staleness is not a safe death signal).
  std::atomic<std::uint64_t> heartbeat;
  /// CLOCK_MONOTONIC ns of the last beat, so an observer (aml_stat) can
  /// report heartbeat *age* without sampling the counter twice. Same
  /// advisory-only caveat as the counter.
  std::atomic<std::uint64_t> beat_ns;
  /// Global epoch observed at this holder's last no-footprint point
  /// (note_idle); consulted by try_reclaim_zombie's quiescence scan.
  std::atomic<std::uint64_t> idle_epoch;
  /// Epoch at which this pid was retired as a zombie (set under the
  /// exclusive kRecovering claim, before the slot turns kZombie).
  std::atomic<std::uint64_t> retired_epoch;
};

/// The global quiescence-epoch counter, padded into its own line (bumped
/// only on zombie retirement — rare — but read by every note_idle).
struct alignas(pal::kCacheLine) EpochCell {
  std::atomic<std::uint64_t> value;
};
// AML_SHM_REGION_END
AML_SHM_PLACEABLE(ProcessSlot);
AML_SHM_PLACEABLE(EpochCell);

class ProcessRegistry {
 public:
  enum State : std::uint64_t {
    kFree = 0,
    kLive = 1,
    kRecovering = 2,
    kZombie = 3,
  };

  static constexpr std::uint64_t kStateMask = 3;

  /// Both roles replay the same allocation; zero pages are the valid initial
  /// state, so neither role stores anything.
  ProcessRegistry(ShmArena& arena, model::Pid nprocs)
      : base_(arena.base()),
        nprocs_(nprocs),
        epoch_(arena.alloc_array<EpochCell>(1)),
        slots_(arena.alloc_array<ProcessSlot>(nprocs)) {}

  ProcessRegistry(const ProcessRegistry&) = delete;
  ProcessRegistry& operator=(const ProcessRegistry&) = delete;

  model::Pid nprocs() const { return nprocs_; }

  /// Lease the lowest free pid; returns nprocs() when full. Publishes the
  /// caller's identity after winning the CAS — start time first, then pid
  /// (os_pid == 0 is the benign "still initializing" window — dead()
  /// treats it as alive), plus a fresh idle-epoch mark. On success `*token`
  /// (if given) receives the lease word this holder installed; it is the
  /// capability release() — and, after a crash, try_reattach() — needs.
  model::Pid try_lease(std::uint64_t* token = nullptr) {
    for (model::Pid id = 0; id < nprocs_; ++id) {
      std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_word)
      if ((cur & kStateMask) != kFree) continue;
      const std::uint64_t next = bump_nonce(cur) | kLive;
      if (slots_[id].lease.compare_exchange_strong(
              cur, next, std::memory_order_acq_rel,  // AML_X_EDGE(ipc.lease_word) AML_V_EDGE(ipc.lease_word)
              std::memory_order_relaxed)) {
        slots_[id].idle_epoch.store(epoch(), std::memory_order_release);  // AML_V_EDGE(ipc.quiesce_epoch)
        publish_identity(id);
        if (token != nullptr) *token = next;
        return id;
      }
    }
    return nprocs_;
  }

  /// Orderly release by the leaseholder itself. `token` is the lease word
  /// try_lease installed: if a survivor has since declared this holder dead
  /// (forged test pid, OS pid reuse) and recovered — or recovered *and*
  /// re-leased — the slot, the nonce no longer matches, the claim CAS below
  /// fails, and the release is a total no-op instead of clobbering the
  /// successor's lease or erasing its published os_pid.
  ///
  /// Release reuses the recovery claim protocol: CAS the exact token to
  /// kRecovering (the same exclusive claim a survivor's recovery takes),
  /// clear os_pid while the slot is still unleasable, then free it with a
  /// bumped nonce. Clearing os_pid *before* the slot turns kFree is what
  /// keeps dead() sound: were the order reversed, a racing try_lease could
  /// win the freed slot and publish its pid between the two steps, and our
  /// trailing os_pid=0 would erase it — leaving the successor permanently
  /// undetectable (os_pid 0 reads as "alive by definition") if it later
  /// crashes. (A SIGKILL landing between the claim and the final store
  /// parks the slot in kRecovering — the same window as a recoverer dying
  /// mid-recovery, an accepted limitation; see docs/API.md.)
  void release(model::Pid id, std::uint64_t token) {
    AML_ASSERT(id < nprocs_, "ProcessRegistry::release: bad pid");
    std::uint64_t cur = token;
    if (!slots_[id].lease.compare_exchange_strong(
            cur, (token & ~kStateMask) | kRecovering,
            std::memory_order_acq_rel, std::memory_order_relaxed)) {  // AML_X_EDGE(ipc.lease_word) AML_V_EDGE(ipc.lease_word)
      return;  // stale token: the slot was recovered from under us
    }
    slots_[id].os_pid.store(0, std::memory_order_release);  // AML_V_EDGE(ipc.lease_identity)
    slots_[id].os_start.store(0, std::memory_order_release);  // AML_V_EDGE(ipc.lease_identity)
    // Plain store: the exclusive claim means no other transition can race.
    slots_[id].lease.store(bump_nonce(token) | kFree,
                           std::memory_order_release);  // AML_V_EDGE(ipc.lease_word)
  }

  /// Liveness pulse from the holder's hot path.
  void beat(model::Pid id) {
    slots_[id].heartbeat.fetch_add(1, std::memory_order_relaxed);  // AML_RELAXED(liveness pulse; monotonic counter)
    struct ::timespec ts {};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    slots_[id].beat_ns.store(
        static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
            static_cast<std::uint64_t>(ts.tv_nsec),
        std::memory_order_relaxed);  // AML_RELAXED(liveness pulse timestamp)
  }

  std::uint64_t heartbeat(model::Pid id) const {
    return slots_[id].heartbeat.load(std::memory_order_relaxed);  // AML_RELAXED(liveness probe)
  }

  /// CLOCK_MONOTONIC ns of the last beat; 0 when the holder never beat.
  std::uint64_t heartbeat_ns(model::Pid id) const {
    return slots_[id].beat_ns.load(std::memory_order_relaxed);  // AML_RELAXED(liveness probe)
  }

  State state(model::Pid id) const {
    return static_cast<State>(slots_[id].lease.load(
                                  std::memory_order_acquire) &  // AML_X_EDGE(ipc.lease_word)
                              kStateMask);
  }

  std::uint64_t os_pid(model::Pid id) const {
    return slots_[id].os_pid.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_identity)
  }

  /// Published kernel start time of the holder (0 = unknown).
  std::uint64_t os_start(model::Pid id) const {
    return slots_[id].os_start.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_identity)
  }

  // --- quiescence epochs -------------------------------------------------

  std::uint64_t epoch() const {
    return epoch_[0].value.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.quiesce_epoch)
  }

  std::uint64_t idle_epoch(model::Pid id) const {
    return slots_[id].idle_epoch.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.quiesce_epoch)
  }

  std::uint64_t retired_epoch(model::Pid id) const {
    return slots_[id].retired_epoch.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.quiesce_epoch)
  }

  /// Journal that `id`'s holder currently has no shared footprint (no
  /// passage in flight, no guard held). Called by the table whenever a
  /// session's guard depth returns to zero.
  void note_idle(model::Pid id) {
    slots_[id].idle_epoch.store(epoch(), std::memory_order_release);  // AML_V_EDGE(ipc.quiesce_epoch)
  }

  /// Reclaim a retired zombie pid once a full-quiescence epoch has passed:
  /// every live slot's idle mark has reached the victim's retirement epoch,
  /// proving every live session passed through a no-footprint point since
  /// the retirement — no live passage can still hold a stale reference to
  /// anything the victim touched. Conservative on every race (a mid-lease
  /// holder simply fails the scan until its first note_idle). The reclaimed
  /// pid becomes ordinarily leasable again.
  bool try_reclaim_zombie(model::Pid id) {
    std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_word)
    if ((cur & kStateMask) != kZombie) return false;
    const std::uint64_t retired =
        slots_[id].retired_epoch.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.quiesce_epoch)
    for (model::Pid p = 0; p < nprocs_; ++p) {
      if (p == id) continue;
      const std::uint64_t lease =
          slots_[p].lease.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_word)
      if ((lease & kStateMask) != kLive) continue;
      if (slots_[p].idle_epoch.load(std::memory_order_acquire) < retired) {  // AML_X_EDGE(ipc.quiesce_epoch)
        return false;
      }
    }
    return slots_[id].lease.compare_exchange_strong(
        cur, bump_nonce(cur) | kFree, std::memory_order_acq_rel,  // AML_X_EDGE(ipc.lease_word) AML_V_EDGE(ipc.lease_word)
        std::memory_order_relaxed);
  }

  // --- death detection and recovery claims -------------------------------

  /// True when the slot is held by a process that no longer exists: the
  /// lease is live, the holder published a pid, and either the kernel
  /// reports ESRCH for it or the process answering to the pid has a
  /// different start time than the one published (pid reuse — including our
  /// own pid having been recycled from a dead previous incarnation). A
  /// holder that has not yet published (os_pid 0) is alive by definition —
  /// it is mid-try_lease.
  ///
  /// Advisory: the answer can be stale by the time the caller acts on it
  /// (the slot may be released, recovered, or re-leased in between), so a
  /// dead() == true is only a hint to attempt try_claim_recovery(), which
  /// re-establishes death and claims under one observed lease word.
  bool dead(model::Pid id) const {
    return dead_under(id, slots_[id].lease.load(std::memory_order_acquire));  // AML_X_EDGE(ipc.lease_word)
  }

  /// Atomically (observe death ∧ claim): load the lease word once, verify
  /// the holder *under exactly that word* is dead, and CAS from that same
  /// word to kRecovering. Exactly one survivor wins.
  ///
  /// Pinning the claim to the word under which death was observed closes
  /// the TOCTOU where a separate dead() check passes, then the victim is
  /// recovered, freed, and re-leased to a live process before the claim
  /// lands — the claim would otherwise succeed against the *new* live
  /// holder and recovery would force a live process out of its critical
  /// section. The nonce is bumped on every transition out of kFree and
  /// kRecovering, so the CAS can only succeed while the slot still belongs
  /// to the holder whose death we established.
  ///
  /// The os_pid/os_start reads are covered by the pin: while the lease word
  /// equals `observed`, they are either 0 (that holder mid-publish — alive
  /// by definition) or that holder's own identity, because both release()
  /// and finish_recovery() clear them under their exclusive kRecovering
  /// claim, strictly before the slot can be freed and re-leased.
  bool try_claim_recovery(model::Pid id) {
    const std::uint64_t observed =
        slots_[id].lease.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_word)
    if (!dead_under(id, observed)) return false;
    std::uint64_t cur = observed;
    return slots_[id].lease.compare_exchange_strong(
        cur, (observed & ~kStateMask) | kRecovering,
        std::memory_order_acq_rel, std::memory_order_relaxed);  // AML_X_EDGE(ipc.lease_word) AML_V_EDGE(ipc.lease_word)
  }

  /// Restart re-entry, step 1: a restarted process holding its previous
  /// incarnation's lease token claims its own old slot for self-recovery.
  /// Exactly the survivor claim, but pinned to the exact token, so it can
  /// only land on *that* incarnation: if a survivor sweep won first, the
  /// slot was re-leased, or the previous incarnation is somehow still
  /// alive (a copied token), the claim refuses and the caller falls back
  /// to an ordinary fresh lease.
  bool try_reattach(model::Pid id, std::uint64_t prev_token) {
    if (id >= nprocs_) return false;
    if ((prev_token & kStateMask) != kLive) return false;
    std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_word)
    if (cur != prev_token) return false;
    if (!dead_under(id, prev_token)) return false;
    return slots_[id].lease.compare_exchange_strong(
        cur, (prev_token & ~kStateMask) | kRecovering,
        std::memory_order_acq_rel, std::memory_order_relaxed);  // AML_X_EDGE(ipc.lease_word) AML_V_EDGE(ipc.lease_word)
  }

  /// Restart re-entry, final step: convert our exclusive kRecovering claim
  /// (from try_reattach, after the passage journal has been resumed or
  /// unwound) back into a live lease held by THIS process. Returns the new
  /// lease token.
  std::uint64_t repossess(model::Pid id) {
    std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_word)
    AML_ASSERT((cur & kStateMask) == kRecovering,
               "repossess: slot not claimed");
    slots_[id].idle_epoch.store(epoch(), std::memory_order_release);  // AML_V_EDGE(ipc.quiesce_epoch)
    publish_identity(id);
    const std::uint64_t next = bump_nonce(cur) | kLive;
    // Plain store: the exclusive claim means no other transition can race.
    slots_[id].lease.store(next, std::memory_order_release);  // AML_V_EDGE(ipc.lease_word)
    return next;
  }

  /// Finish a recovery this process claimed: free the slot for re-lease,
  /// or retire it as a zombie when the victim died inside the one
  /// journal-blind doorway window (see ShmStripeLock::recover). Retirement
  /// opens a new quiescence epoch and records it in the slot, so
  /// try_reclaim_zombie can later prove the reclamation safe.
  void finish_recovery(model::Pid id, bool zombie) {
    std::uint64_t cur = slots_[id].lease.load(std::memory_order_acquire);  // AML_X_EDGE(ipc.lease_word)
    AML_ASSERT((cur & kStateMask) == kRecovering,
               "finish_recovery: slot not claimed");
    slots_[id].os_pid.store(0, std::memory_order_release);  // AML_V_EDGE(ipc.lease_identity)
    slots_[id].os_start.store(0, std::memory_order_release);  // AML_V_EDGE(ipc.lease_identity)
    if (zombie) {
      const std::uint64_t e =
          epoch_[0].value.fetch_add(1, std::memory_order_acq_rel) + 1;  // AML_X_EDGE(ipc.quiesce_epoch) AML_V_EDGE(ipc.quiesce_epoch)
      slots_[id].retired_epoch.store(e, std::memory_order_release);  // AML_V_EDGE(ipc.quiesce_epoch)
    }
    slots_[id].lease.compare_exchange_strong(
        cur, bump_nonce(cur) | (zombie ? kZombie : kFree),
        std::memory_order_acq_rel, std::memory_order_relaxed);  // AML_X_EDGE(ipc.lease_word) AML_V_EDGE(ipc.lease_word)
  }

  /// Test hook: forge the published OS pid so owner death is simulable
  /// without fork (use a pid above the kernel's pid_max, e.g. 0x7FFFFFFF,
  /// for a guaranteed ESRCH).
  void debug_set_os_pid(model::Pid id, std::uint64_t os_pid) {
    slots_[id].os_pid.store(os_pid, std::memory_order_release);  // AML_V_EDGE(ipc.lease_identity)
  }

  /// Test hook: forge the published start time so pid reuse (live process,
  /// mismatched start) is simulable without exhausting the pid space.
  void debug_set_os_start(model::Pid id, std::uint64_t start_ticks) {
    slots_[id].os_start.store(start_ticks, std::memory_order_release);  // AML_V_EDGE(ipc.lease_identity)
  }

 private:
  /// Death predicate evaluated against a caller-supplied lease observation
  /// (see try_claim_recovery for why the observation must be pinned).
  bool dead_under(model::Pid id, std::uint64_t observed_lease) const {
    if ((observed_lease & kStateMask) != kLive) return false;
    const std::uint64_t pid = os_pid(id);
    if (pid == 0) return false;
    if (::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH) {
      return true;
    }
    // A process answers to the pid. Unless its start time contradicts the
    // published one, the holder is alive (this includes ourselves).
    const std::uint64_t published = os_start(id);
    if (published == 0) return false;  // unknown: no reuse evidence
    const std::uint64_t live = process_start_ticks(pid);
    if (live == 0) return false;  // vanished mid-read / no procfs
    return live != published;
  }

  /// Publish this process's identity into a slot it exclusively holds:
  /// start time strictly before pid, so a visible pid always has its start
  /// beside it (dead_under's reuse check depends on that order).
  void publish_identity(model::Pid id) {
    const std::uint64_t self = static_cast<std::uint64_t>(::getpid());
    slots_[id].os_start.store(process_start_ticks(self),
                              std::memory_order_release);  // AML_V_EDGE(ipc.lease_identity)
    slots_[id].os_pid.store(self, std::memory_order_release);  // AML_V_EDGE(ipc.lease_identity)
  }

  static std::uint64_t bump_nonce(std::uint64_t lease) {
    return (lease & ~kStateMask) + (kStateMask + 1);
  }

  void* base_;
  model::Pid nprocs_;
  EpochCell* epoch_;    ///< global quiescence epoch (allocated before slots)
  ProcessSlot* slots_;
};

}  // namespace aml::ipc
