// Shared JSON snapshot of a cross-process lock service, read entirely from
// the shm segment: registry lease states with heartbeat ages, per-pid
// journaled phases, per-stripe installed/refcnt/recovery state, the shm
// metrics counters and histograms, and the tail of the crash-surviving
// event ring.
//
// Three consumers render the same bytes: tools/aml_stat (the live/orphaned
// inspector CLI), examples/shm_lock_service (prints its post-recovery
// snapshot), and the integration tests (parse the post-crash snapshot to
// assert the victim's last phase and the recovery counters survived).
// Everything here only *reads* the segment — safe against a live service
// and against an orphaned one (no process left alive).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "aml/ipc/process_registry.hpp"
#include "aml/ipc/shm_table.hpp"
#include "aml/obs/shm_metrics.hpp"

namespace aml::ipc {

struct StatOptions {
  std::size_t ring_tail = 64;  ///< newest ring events to include (0 = none)
  bool include_per_pid = true;
};

namespace stat_detail {

inline void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
             << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

inline const char* lease_state_name(ProcessRegistry::State s) {
  switch (s) {
    case ProcessRegistry::kFree: return "free";
    case ProcessRegistry::kLive: return "live";
    case ProcessRegistry::kRecovering: return "recovering";
    case ProcessRegistry::kZombie: return "zombie";
  }
  return "?";
}

inline void write_histogram(std::ostream& os,
                            const obs::ShmHistogramSnapshot& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
     << ",\"mean\":" << h.mean << ",\"p50\":" << h.p50
     << ",\"p90\":" << h.p90 << ",\"p99\":" << h.p99 << "}";
}

inline void write_recovery(std::ostream& os,
                           const obs::ShmRecoverySnapshot& r) {
  os << "{\"forced_exits\":" << r.forced_exits
     << ",\"complete_grants\":" << r.complete_grants
     << ",\"aborts_on_behalf\":" << r.aborts_on_behalf
     << ",\"resignals\":" << r.resignals
     << ",\"zombie_retires\":" << r.zombie_retires
     << ",\"fa_completed\":" << r.fa_completed
     << ",\"fa_compensated\":" << r.fa_compensated
     << ",\"total\":" << r.total() << "}";
}

inline void write_counters(std::ostream& os,
                           const obs::ShmMetrics::Totals& t) {
  os << "{\"acquisitions\":" << t.acquisitions << ",\"aborts\":" << t.aborts
     << ",\"spin_iterations\":" << t.spin_iterations
     << ",\"findnext_ascents\":" << t.findnext_ascents
     << ",\"instance_switches\":" << t.instance_switches
     << ",\"spin_node_recycles\":" << t.spin_node_recycles << "}";
}

}  // namespace stat_detail

/// Serialize the whole service state as one JSON object. Read-only against
/// the segment; `probe` is the dense pid used for the (pid-agnostic)
/// ShmSpace reads and need not be leased.
inline void write_stat_json(std::ostream& os, ShmNamedLockTable& table,
                            const StatOptions& opt = {}) {
  using stat_detail::json_string;
  const Pid probe = 0;
  const ShmTableConfig& cfg = table.config();
  obs::ShmMetrics& shm = table.shm_metrics();
  const std::uint64_t now = obs::ShmMetrics::now_ns();

  os << "{";
  os << "\"segment\":";
  json_string(os, table.arena().name());
  os << ",\"config\":{\"nprocs\":" << cfg.nprocs
     << ",\"stripes\":" << cfg.stripes
     << ",\"tree_width\":" << cfg.tree_width
     << ",\"find\":" << static_cast<int>(cfg.find)
     << ",\"ring_capacity\":" << cfg.ring_capacity
     << ",\"segment_bytes\":" << table.arena().bytes() << "}";

  // --- registry: lease states, heartbeat ages, journaled phases ---------
  os << ",\"registry\":[";
  for (Pid p = 0; p < cfg.nprocs; ++p) {
    if (p != 0) os << ",";
    ProcessRegistry& reg = table.registry();
    const ProcessRegistry::State st = reg.state(p);
    const std::uint64_t beat_ns = reg.heartbeat_ns(p);
    os << "{\"pid\":" << p << ",\"state\":\""
       << stat_detail::lease_state_name(st) << "\",\"os_pid\":" << reg.os_pid(p)
       << ",\"os_start\":" << reg.os_start(p)
       << ",\"heartbeat\":" << reg.heartbeat(p)
       << ",\"idle_epoch\":" << reg.idle_epoch(p);
    if (st == ProcessRegistry::kZombie) {
      os << ",\"retired_epoch\":" << reg.retired_epoch(p);
    }
    if (beat_ns != 0 && now > beat_ns) {
      os << ",\"heartbeat_age_ns\":" << (now - beat_ns);
    }
    // The journaled phase per stripe — only where it is not idle, so the
    // common case stays compact and a victim's last phase stands out.
    os << ",\"phases\":[";
    bool first_phase = true;
    for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
      const Phase ph = table.stripe(s).peek_phase(p);
      if (ph == kIdle) continue;
      if (!first_phase) os << ",";
      first_phase = false;
      os << "{\"stripe\":" << s << ",\"phase\":\"" << phase_name(ph)
         << "\"}";
    }
    os << "]}";
  }
  os << "],\"epoch\":" << table.registry().epoch();

  // --- stripes ----------------------------------------------------------
  os << ",\"stripes\":[";
  for (std::uint32_t s = 0; s < table.stripe_count(); ++s) {
    if (s != 0) os << ",";
    auto& stripe = table.stripe(s);
    // Same stranded-unit bound recover_dead() reports: refcnt units beyond
    // the journaled passages that could legitimately hold one.
    const std::uint64_t refcnt = stripe.peek_refcnt(probe);
    std::uint64_t holders = 0;
    for (Pid p = 0; p < cfg.nprocs; ++p) {
      const Phase ph = stripe.peek_phase(p);
      if (ph >= kPreJoin && ph <= kCleanup) holders++;
    }
    os << "{\"stripe\":" << s
       << ",\"installed\":" << stripe.peek_installed(probe)
       << ",\"refcnt\":" << refcnt
       << ",\"stranded_refcnt\":" << (refcnt > holders ? refcnt - holders : 0)
       << ",\"recovery_epoch\":" << stripe.recovery_epoch(probe)
       << ",\"recovery\":";
    stat_detail::write_recovery(os, shm.recovery_stripe(s));
    os << "}";
  }
  os << "]";

  // --- shm metrics ------------------------------------------------------
  os << ",\"counters\":{\"totals\":";
  stat_detail::write_counters(os, shm.totals());
  if (opt.include_per_pid) {
    os << ",\"per_pid\":[";
    for (Pid p = 0; p < cfg.nprocs; ++p) {
      if (p != 0) os << ",";
      stat_detail::write_counters(os, shm.pid_counters(p));
    }
    os << "]";
  }
  os << "}";

  os << ",\"recovery\":";
  stat_detail::write_recovery(os, shm.recovery_totals());
  os << ",\"sweep_latency\":";
  stat_detail::write_histogram(os, shm.sweep_latency());
  os << ",\"handoff\":";
  stat_detail::write_histogram(os, shm.handoff());

  // --- ring tail --------------------------------------------------------
  std::uint64_t torn = 0;
  const std::vector<obs::ShmEvent> events = shm.ring_snapshot(&torn);
  os << ",\"ring\":{\"total\":" << shm.ring_total()
     << ",\"dropped\":" << shm.ring_dropped() << ",\"torn\":" << torn
     << ",\"tail\":[";
  const std::size_t tail =
      events.size() > opt.ring_tail ? events.size() - opt.ring_tail : 0;
  for (std::size_t i = tail; i < events.size(); ++i) {
    const obs::ShmEvent& e = events[i];
    if (i != tail) os << ",";
    os << "{\"seq\":" << e.seq << ",\"kind\":\""
       << obs::shm_event_kind_name(e.kind) << "\",\"stripe\":" << e.stripe
       << ",\"pid\":" << e.pid;
    if (e.victim != obs::ShmEvent::kNoPid) os << ",\"victim\":" << e.victim;
    if (e.slot != obs::kNoSlot) os << ",\"slot\":" << e.slot;
    os << ",\"instance\":" << e.instance << ",\"t_ns\":" << e.mono_ns
       << ",\"writer_os_pid\":" << e.writer_os_pid << "}";
  }
  os << "]}";
  os << "}\n";
}

}  // namespace aml::ipc
