// Crash-surviving observability: metrics hosted *inside* the lock service's
// shared-memory segment.
//
// The process-local aml::obs::Metrics dies with its process — which is
// precisely the process whose passage an operator most needs to understand
// after a SIGKILL. ShmMetrics moves the flight recorder into the ShmArena,
// allocated during the deterministic creation replay, so:
//
//   * a victim's counters and final ring events are readable post-mortem by
//     any survivor (or by tools/aml_stat attaching read-only to the orphaned
//     segment),
//   * the recovery sweep's typed dispatch events (forced exit, complete
//     grant, abort on behalf, resignal, zombie retire) land in the same
//     totally-ordered ring as the victim's own lifecycle events, and
//   * sweep latency is recorded where every process can see it.
//
// Hot-path cost discipline (acceptance criterion of the PR that added this):
// per-pid counters are cache-padded cells touched only by their owner, and a
// ring push is one fetch_add on the shared head plus relaxed stores into the
// claimed slot — the same claim-odd/publish-even tag protocol as the
// process-local EventRing (events.hpp), so torn slots are detected, never
// returned. Timestamps are CLOCK_MONOTONIC, comparable across processes on
// the same host, so the merged stream renders on one Perfetto timeline
// (trace_export.hpp).
//
// Everything placed in the segment is AML_SHM_REGION-safe: flat atomics,
// no pointers, zero-filled pages are the valid initial state (no creator
// stores needed, so the attach replay is naturally storeless).
#pragma once

#include <atomic>
#include <cstdint>
#include <ctime>
#include <vector>

#include <unistd.h>

#include "aml/ipc/shm_arena.hpp"
#include "aml/model/types.hpp"
#include "aml/obs/events.hpp"
#include "aml/obs/histogram.hpp"
#include "aml/pal/cache.hpp"

namespace aml::obs {

/// Event kinds in the shm ring: the process-local lifecycle kinds plus the
/// typed recovery-dispatch arms a survivor executes on a victim's behalf.
enum class ShmEventKind : std::uint8_t {
  kEnter = 1,        ///< doorway passed
  kGranted,          ///< critical section entered
  kAbort,            ///< attempt abandoned by its owner
  kExit,             ///< critical section released by its owner
  kSwitch,           ///< stripe installed a fresh one-shot instance
  kForcedExit,       ///< recovery: victim held (or was re-signalled mid-exit
                     ///  redo); survivor exited on its behalf
  kCompleteGrant,    ///< recovery: victim died in the doorway already
                     ///  granted; survivor completed the grant then exited
  kAbortOnBehalf,    ///< recovery: victim died waiting; survivor aborted
                     ///  its attempt
  kResignal,         ///< recovery: victim died mid-exit after the hand-off;
                     ///  survivor re-signalled the successor
  kZombieRetire,     ///< recovery: journal window ambiguous; pid retired
  kFaCompleted,      ///< recovery: victim's announced LockDesc F&A found
                     ///  landed; survivor completed the passage forward
  kFaCompensated,    ///< recovery: announced F&A never landed (or was never
                     ///  issued); survivor compensated / redid it itself
  kReentry,          ///< a restarted process resumed its own prior passage
                     ///  via reattach_session
  kZombieReclaim,    ///< a retired zombie pid reclaimed after a
                     ///  full-quiescence epoch
};

inline const char* shm_event_kind_name(ShmEventKind kind) {
  switch (kind) {
    case ShmEventKind::kEnter: return "enter";
    case ShmEventKind::kGranted: return "granted";
    case ShmEventKind::kAbort: return "abort";
    case ShmEventKind::kExit: return "exit";
    case ShmEventKind::kSwitch: return "switch";
    case ShmEventKind::kForcedExit: return "forced-exit";
    case ShmEventKind::kCompleteGrant: return "complete-grant";
    case ShmEventKind::kAbortOnBehalf: return "forced-abort";
    case ShmEventKind::kResignal: return "resignal";
    case ShmEventKind::kZombieRetire: return "zombie-retire";
    case ShmEventKind::kFaCompleted: return "fa-completed";
    case ShmEventKind::kFaCompensated: return "fa-compensated";
    case ShmEventKind::kReentry: return "re-entry";
    case ShmEventKind::kZombieReclaim: return "zombie-reclaimed";
  }
  return "?";
}

/// True for the kinds a recovery sweep emits on a victim's behalf.
inline bool shm_event_is_recovery(ShmEventKind kind) {
  switch (kind) {
    case ShmEventKind::kForcedExit:
    case ShmEventKind::kCompleteGrant:
    case ShmEventKind::kAbortOnBehalf:
    case ShmEventKind::kResignal:
    case ShmEventKind::kZombieRetire:
    case ShmEventKind::kFaCompleted:
    case ShmEventKind::kFaCompensated:
    case ShmEventKind::kReentry:
    case ShmEventKind::kZombieReclaim:
      return true;
    default:
      return false;
  }
}

// AML_SHM_REGION_BEGIN
/// Per-pid counter cell. Owned (written) exclusively by the leaseholder of
/// that pid, padded so neighbours never false-share; cross-process readers
/// only load.
struct alignas(pal::kCacheLine) ShmCounterCell {
  std::atomic<std::uint64_t> acquisitions;
  std::atomic<std::uint64_t> aborts;
  std::atomic<std::uint64_t> spin_iterations;
  std::atomic<std::uint64_t> findnext_ascents;
  std::atomic<std::uint64_t> instance_switches;
  std::atomic<std::uint64_t> spin_node_recycles;
};

/// One shm ring slot: claim-odd/publish-even tag plus the payload packed
/// into atomic words (see events.hpp for the tag protocol; this is its
/// cross-process twin). Padded: consecutive writers claim consecutive
/// slots, and unpadded slots would put two processes' stores on one line.
struct alignas(pal::kCacheLine) ShmEventSlot {
  std::atomic<std::uint64_t> tag;      ///< 0 never-used; odd claimed; even published
  std::atomic<std::uint64_t> meta;     ///< kind | stripe | pid | victim
  std::atomic<std::uint64_t> detail;   ///< slot | instance
  std::atomic<std::uint64_t> mono_ns;  ///< CLOCK_MONOTONIC at emit
  std::atomic<std::uint64_t> writer;   ///< OS pid of the emitting process
};

/// Single padded shared word (ring head, pending hand-off timestamps).
struct alignas(pal::kCacheLine) ShmWordCell {
  std::atomic<std::uint64_t> value;
};

/// Shared power-of-two histogram (same geometry as LatencyHistogram, minus
/// min/max whose sentinel init would break the zero-page-is-valid rule).
struct alignas(pal::kCacheLine) ShmHistogramCell {
  std::atomic<std::uint64_t> count;
  std::atomic<std::uint64_t> sum;
  std::atomic<std::uint64_t> buckets[LatencyHistogram::kBuckets];
};

/// Per-stripe recovery dispatch counters. Written only by the (unique)
/// survivor holding that stripe's recovery seqlock, so padding is about
/// keeping reader traffic off unrelated lines, not write contention.
struct alignas(pal::kCacheLine) ShmRecoveryCell {
  std::atomic<std::uint64_t> forced_exits;
  std::atomic<std::uint64_t> complete_grants;
  std::atomic<std::uint64_t> aborts_on_behalf;
  std::atomic<std::uint64_t> resignals;
  std::atomic<std::uint64_t> zombie_retires;
  std::atomic<std::uint64_t> fa_completed;
  std::atomic<std::uint64_t> fa_compensated;
};
// AML_SHM_REGION_END
AML_SHM_PLACEABLE(ShmCounterCell);
AML_SHM_PLACEABLE(ShmEventSlot);
AML_SHM_PLACEABLE(ShmWordCell);
AML_SHM_PLACEABLE(ShmHistogramCell);
AML_SHM_PLACEABLE(ShmRecoveryCell);

/// A decoded shm ring event (process-local view; never placed in the
/// segment).
struct ShmEvent {
  ShmEventKind kind = ShmEventKind::kEnter;
  std::uint32_t stripe = 0;
  model::Pid pid = 0;          ///< acting pid (the victim's for lifecycle
                               ///  kinds, the *executor's* for recovery)
  model::Pid victim = kNoPid;  ///< victim pid for recovery kinds
  std::uint32_t slot = kNoSlot;
  std::uint32_t instance = 0;  ///< one-shot generation within the stripe
  std::uint64_t seq = 0;       ///< position in the global ring order
  std::uint64_t mono_ns = 0;
  std::uint64_t writer_os_pid = 0;

  static constexpr model::Pid kNoPid = 0xFFFF;
};

struct ShmHistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;  ///< bucket upper bounds (nearest rank), like
  std::uint64_t p90 = 0;  ///  LatencyHistogram::Snapshot
  std::uint64_t p99 = 0;
};

struct ShmRecoverySnapshot {
  std::uint64_t forced_exits = 0;
  std::uint64_t complete_grants = 0;
  std::uint64_t aborts_on_behalf = 0;
  std::uint64_t resignals = 0;
  std::uint64_t zombie_retires = 0;
  std::uint64_t fa_completed = 0;
  std::uint64_t fa_compensated = 0;

  std::uint64_t total() const {
    return forced_exits + complete_grants + aborts_on_behalf + resignals +
           zombie_retires + fa_completed + fa_compensated;
  }
};

/// Process-local handle over the segment-hosted metrics. Both roles replay
/// the same allocation sequence; zero pages are the valid initial state, so
/// construction performs no stores at all.
class ShmMetrics {
 public:
  ShmMetrics(ipc::ShmArena& arena, model::Pid nprocs, std::uint32_t stripes,
             std::uint32_t ring_capacity)
      : nprocs_(nprocs),
        stripes_(stripes),
        ring_capacity_(ring_capacity),
        counters_(arena.alloc_array<ShmCounterCell>(nprocs)),
        pending_handoff_(arena.alloc_array<ShmWordCell>(stripes)),
        recovery_(arena.alloc_array<ShmRecoveryCell>(stripes)),
        ring_head_(arena.alloc_array<ShmWordCell>(1)),
        ring_(arena.alloc_array<ShmEventSlot>(ring_capacity)),
        handoff_hist_(arena.alloc_array<ShmHistogramCell>(1)),
        sweep_hist_(arena.alloc_array<ShmHistogramCell>(1)),
        self_os_pid_(static_cast<std::uint64_t>(::getpid())) {}

  ShmMetrics(const ShmMetrics&) = delete;
  ShmMetrics& operator=(const ShmMetrics&) = delete;

  /// Arena bytes the construction replay consumes, for segment sizing.
  /// Must mirror the constructor's allocation sequence exactly.
  static std::uint64_t footprint_bytes(model::Pid nprocs,
                                       std::uint32_t stripes,
                                       std::uint32_t ring_capacity) {
    std::uint64_t b = 0;
    b += static_cast<std::uint64_t>(nprocs) * sizeof(ShmCounterCell);
    b += static_cast<std::uint64_t>(stripes) * sizeof(ShmWordCell);
    b += static_cast<std::uint64_t>(stripes) * sizeof(ShmRecoveryCell);
    b += sizeof(ShmWordCell);
    b += static_cast<std::uint64_t>(ring_capacity) * sizeof(ShmEventSlot);
    b += 2 * sizeof(ShmHistogramCell);
    b += 8 * pal::kCacheLine;  // alignment slop between allocations
    return b;
  }

  model::Pid nprocs() const { return nprocs_; }
  std::uint32_t stripes() const { return stripes_; }
  std::uint32_t ring_capacity() const { return ring_capacity_; }

  /// Wall reference for heartbeat ages and sweep durations.
  static std::uint64_t now_ns() {
    struct ::timespec ts {};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

  // --- lifecycle hooks (owner pid's own passage) ------------------------

  void on_enter(std::uint32_t stripe, model::Pid p, std::uint32_t slot,
                std::uint32_t instance) {
    emit(ShmEventKind::kEnter, stripe, p, ShmEvent::kNoPid, slot, instance);
  }

  void on_granted(std::uint32_t stripe, model::Pid p, std::uint32_t slot,
                  std::uint32_t instance) {
    counters_[p].acquisitions.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t t = now_ns();
    emit_at(ShmEventKind::kGranted, stripe, p, ShmEvent::kNoPid, slot,
            instance, t);
    // Hand-off latency: the previous holder parked its exit timestamp in
    // the stripe's pending word; one exchange claims it. The word is only
    // ever touched by the outgoing and incoming holder — the pair already
    // communicating through the lock word itself — so this adds no *new*
    // contention edge.
    const std::uint64_t handed = pending_handoff_[stripe].value.exchange(
        0, std::memory_order_acq_rel);
    if (handed != 0 && t > handed) record(handoff_hist_[0], t - handed);
  }

  void on_abort(std::uint32_t stripe, model::Pid p, std::uint32_t slot,
                std::uint32_t instance) {
    counters_[p].aborts.fetch_add(1, std::memory_order_relaxed);
    emit(ShmEventKind::kAbort, stripe, p, ShmEvent::kNoPid, slot, instance);
  }

  void on_exit(std::uint32_t stripe, model::Pid p, std::uint32_t slot,
               std::uint32_t instance) {
    const std::uint64_t t = now_ns();
    emit_at(ShmEventKind::kExit, stripe, p, ShmEvent::kNoPid, slot, instance,
            t);
    pending_handoff_[stripe].value.store(t, std::memory_order_release);
  }

  void on_switch(std::uint32_t stripe, model::Pid p, std::uint32_t instance) {
    counters_[p].instance_switches.fetch_add(1, std::memory_order_relaxed);
    emit(ShmEventKind::kSwitch, stripe, p, ShmEvent::kNoPid, kNoSlot,
         instance);
  }

  // Counter-only hooks: too frequent for the ring.
  void on_spin_iteration(model::Pid p) {
    counters_[p].spin_iterations.fetch_add(1, std::memory_order_relaxed);
  }
  void on_findnext(model::Pid p) {
    counters_[p].findnext_ascents.fetch_add(1, std::memory_order_relaxed);
  }
  void on_spin_node_recycle(model::Pid p, std::uint64_t nodes = 1) {
    counters_[p].spin_node_recycles.fetch_add(nodes,
                                              std::memory_order_relaxed);
  }

  // --- recovery hooks (survivor `exec` acting for `victim`) -------------

  /// One typed event per dispatch arm, victim pid in the payload, plus the
  /// per-stripe dispatch counter. `kind` must be a recovery kind.
  void on_recovery_arm(ShmEventKind kind, std::uint32_t stripe,
                       model::Pid exec, model::Pid victim, std::uint32_t slot,
                       std::uint32_t instance) {
    ShmRecoveryCell& c = recovery_[stripe];
    switch (kind) {
      case ShmEventKind::kForcedExit:
        c.forced_exits.fetch_add(1, std::memory_order_relaxed);
        break;
      case ShmEventKind::kCompleteGrant:
        c.complete_grants.fetch_add(1, std::memory_order_relaxed);
        break;
      case ShmEventKind::kAbortOnBehalf:
        c.aborts_on_behalf.fetch_add(1, std::memory_order_relaxed);
        break;
      case ShmEventKind::kResignal:
        c.resignals.fetch_add(1, std::memory_order_relaxed);
        break;
      case ShmEventKind::kZombieRetire:
        c.zombie_retires.fetch_add(1, std::memory_order_relaxed);
        break;
      case ShmEventKind::kFaCompleted:
        c.fa_completed.fetch_add(1, std::memory_order_relaxed);
        break;
      case ShmEventKind::kFaCompensated:
        c.fa_compensated.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        return;  // lifecycle kinds have their own hooks
    }
    emit(kind, stripe, exec, victim, slot, instance);
  }

  /// A restarted process resumed (or unwound) its own previous incarnation's
  /// passage via reattach_session. Not stripe-scoped: stripe carries the
  /// kNoStripe sentinel.
  void on_reentry(model::Pid p) {
    emit(ShmEventKind::kReentry, kNoStripe, p, p, kNoSlot, 0);
  }

  /// A retired zombie pid was reclaimed after a full-quiescence epoch.
  void on_zombie_reclaimed(model::Pid exec, model::Pid reclaimed) {
    emit(ShmEventKind::kZombieReclaim, kNoStripe, exec, reclaimed, kNoSlot, 0);
  }

  /// Stripe sentinel for events that describe a whole-service transition
  /// (re-entry, zombie reclamation) rather than one stripe.
  static constexpr std::uint32_t kNoStripe = 0xFFFFu;

  /// Wall-clock duration of one recovery sweep (recover_dead pass).
  void record_sweep_ns(std::uint64_t ns) { record(sweep_hist_[0], ns); }

  // --- readers (valid from any attached process, including read-only) ---

  struct Totals {
    std::uint64_t acquisitions = 0;
    std::uint64_t aborts = 0;
    std::uint64_t spin_iterations = 0;
    std::uint64_t findnext_ascents = 0;
    std::uint64_t instance_switches = 0;
    std::uint64_t spin_node_recycles = 0;
  };

  Totals pid_counters(model::Pid p) const {
    const ShmCounterCell& c = counters_[p];
    Totals t;
    t.acquisitions = c.acquisitions.load(std::memory_order_relaxed);
    t.aborts = c.aborts.load(std::memory_order_relaxed);
    t.spin_iterations = c.spin_iterations.load(std::memory_order_relaxed);
    t.findnext_ascents = c.findnext_ascents.load(std::memory_order_relaxed);
    t.instance_switches =
        c.instance_switches.load(std::memory_order_relaxed);
    t.spin_node_recycles =
        c.spin_node_recycles.load(std::memory_order_relaxed);
    return t;
  }

  Totals totals() const {
    Totals sum;
    for (model::Pid p = 0; p < nprocs_; ++p) {
      const Totals t = pid_counters(p);
      sum.acquisitions += t.acquisitions;
      sum.aborts += t.aborts;
      sum.spin_iterations += t.spin_iterations;
      sum.findnext_ascents += t.findnext_ascents;
      sum.instance_switches += t.instance_switches;
      sum.spin_node_recycles += t.spin_node_recycles;
    }
    return sum;
  }

  ShmRecoverySnapshot recovery_stripe(std::uint32_t stripe) const {
    const ShmRecoveryCell& c = recovery_[stripe];
    ShmRecoverySnapshot s;
    s.forced_exits = c.forced_exits.load(std::memory_order_relaxed);
    s.complete_grants = c.complete_grants.load(std::memory_order_relaxed);
    s.aborts_on_behalf = c.aborts_on_behalf.load(std::memory_order_relaxed);
    s.resignals = c.resignals.load(std::memory_order_relaxed);
    s.zombie_retires = c.zombie_retires.load(std::memory_order_relaxed);
    s.fa_completed = c.fa_completed.load(std::memory_order_relaxed);
    s.fa_compensated = c.fa_compensated.load(std::memory_order_relaxed);
    return s;
  }

  ShmRecoverySnapshot recovery_totals() const {
    ShmRecoverySnapshot sum;
    for (std::uint32_t s = 0; s < stripes_; ++s) {
      const ShmRecoverySnapshot r = recovery_stripe(s);
      sum.forced_exits += r.forced_exits;
      sum.complete_grants += r.complete_grants;
      sum.aborts_on_behalf += r.aborts_on_behalf;
      sum.resignals += r.resignals;
      sum.zombie_retires += r.zombie_retires;
      sum.fa_completed += r.fa_completed;
      sum.fa_compensated += r.fa_compensated;
    }
    return sum;
  }

  ShmHistogramSnapshot handoff() const { return snapshot(handoff_hist_[0]); }
  ShmHistogramSnapshot sweep_latency() const {
    return snapshot(sweep_hist_[0]);
  }

  std::uint64_t ring_total() const {
    return ring_head_[0].value.load(std::memory_order_relaxed);
  }

  std::uint64_t ring_dropped() const {
    const std::uint64_t total = ring_total();
    return total > ring_capacity_ ? total - ring_capacity_ : 0;
  }

  /// Retained, fully-published ring events oldest first; torn/in-flight
  /// slots are skipped (and counted into `torn`) exactly as in
  /// EventRing::snapshot().
  std::vector<ShmEvent> ring_snapshot(std::uint64_t* torn = nullptr) const {
    std::vector<ShmEvent> out;
    std::uint64_t skipped = 0;
    const std::uint64_t total = ring_total();
    if (ring_capacity_ != 0 && total != 0) {
      const std::uint64_t kept =
          total < ring_capacity_ ? total : ring_capacity_;
      out.reserve(kept);
      for (std::uint64_t seq = total - kept; seq < total; ++seq) {
        ShmEvent e;
        if (read_published(seq, &e)) {
          out.push_back(e);
        } else {
          ++skipped;
        }
      }
    }
    if (torn != nullptr) *torn = skipped;
    return out;
  }

 private:
  static std::uint64_t claim_tag(std::uint64_t seq) { return 2 * seq + 1; }
  static std::uint64_t publish_tag(std::uint64_t seq) { return 2 * seq + 2; }

  /// meta: kind(8) | stripe(16) | pid(16) | victim(16); low 8 reserved.
  static std::uint64_t pack_meta(ShmEventKind kind, std::uint32_t stripe,
                                 model::Pid pid, model::Pid victim) {
    return (static_cast<std::uint64_t>(kind) << 56) |
           (static_cast<std::uint64_t>(stripe & 0xFFFFu) << 40) |
           (static_cast<std::uint64_t>(pid & 0xFFFFu) << 24) |
           (static_cast<std::uint64_t>(victim & 0xFFFFu) << 8);
  }

  static std::uint64_t pack_detail(std::uint32_t slot,
                                   std::uint32_t instance) {
    return (static_cast<std::uint64_t>(slot) << 32) |
           static_cast<std::uint64_t>(instance);
  }

  void emit(ShmEventKind kind, std::uint32_t stripe, model::Pid pid,
            model::Pid victim, std::uint32_t slot, std::uint32_t instance) {
    emit_at(kind, stripe, pid, victim, slot, instance, now_ns());
  }

  /// One fetch_add on the shared head, then relaxed stores into the claimed
  /// slot (claim odd, payload, publish even) — see the file header for the
  /// contention budget this must stay within.
  void emit_at(ShmEventKind kind, std::uint32_t stripe, model::Pid pid,
               model::Pid victim, std::uint32_t slot, std::uint32_t instance,
               std::uint64_t t) {
    if (ring_capacity_ == 0) return;
    const std::uint64_t seq =
        ring_head_[0].value.fetch_add(1, std::memory_order_relaxed);
    ShmEventSlot& s = ring_[seq % ring_capacity_];
    s.tag.store(claim_tag(seq), std::memory_order_relaxed);
    s.meta.store(pack_meta(kind, stripe, pid, victim),
                 std::memory_order_relaxed);
    s.detail.store(pack_detail(slot, instance), std::memory_order_relaxed);
    s.mono_ns.store(t, std::memory_order_relaxed);
    s.writer.store(self_os_pid_, std::memory_order_relaxed);
    s.tag.store(publish_tag(seq), std::memory_order_release);
  }

  bool read_published(std::uint64_t seq, ShmEvent* out) const {
    const ShmEventSlot& s = ring_[seq % ring_capacity_];
    const std::uint64_t want = publish_tag(seq);
    if (s.tag.load(std::memory_order_acquire) != want) return false;
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    const std::uint64_t detail = s.detail.load(std::memory_order_relaxed);
    const std::uint64_t mono = s.mono_ns.load(std::memory_order_relaxed);
    const std::uint64_t writer = s.writer.load(std::memory_order_relaxed);
    if (s.tag.load(std::memory_order_acquire) != want) return false;
    out->kind = static_cast<ShmEventKind>(meta >> 56);
    out->stripe = static_cast<std::uint32_t>((meta >> 40) & 0xFFFFu);
    out->pid = static_cast<model::Pid>((meta >> 24) & 0xFFFFu);
    out->victim = static_cast<model::Pid>((meta >> 8) & 0xFFFFu);
    out->slot = static_cast<std::uint32_t>(detail >> 32);
    out->instance = static_cast<std::uint32_t>(detail);
    out->seq = seq;
    out->mono_ns = mono;
    out->writer_os_pid = writer;
    return true;
  }

  static void record(ShmHistogramCell& h, std::uint64_t v) {
    h.buckets[LatencyHistogram::bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(v, std::memory_order_relaxed);
  }

  static ShmHistogramSnapshot snapshot(const ShmHistogramCell& h) {
    ShmHistogramSnapshot s;
    std::uint64_t buckets[LatencyHistogram::kBuckets];
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      buckets[i] = h.buckets[i].load(std::memory_order_relaxed);
      total += buckets[i];
    }
    // Percentiles over the buckets we actually read (the count word can be
    // momentarily ahead of the bucket stores under concurrent writers).
    s.count = total;
    s.sum = h.sum.load(std::memory_order_relaxed);
    if (total == 0) return s;
    s.mean = static_cast<double>(s.sum) / static_cast<double>(total);
    s.p50 = percentile(buckets, total, 0.50);
    s.p90 = percentile(buckets, total, 0.90);
    s.p99 = percentile(buckets, total, 0.99);
    return s;
  }

  static std::uint64_t percentile(
      const std::uint64_t (&buckets)[LatencyHistogram::kBuckets],
      std::uint64_t total, double q) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total) + 0.9999999);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      seen += buckets[i];
      if (seen >= rank) return LatencyHistogram::bucket_upper(i);
    }
    return LatencyHistogram::bucket_upper(LatencyHistogram::kBuckets - 1);
  }

  model::Pid nprocs_;
  std::uint32_t stripes_;
  std::uint32_t ring_capacity_;
  ShmCounterCell* counters_;
  ShmWordCell* pending_handoff_;
  ShmRecoveryCell* recovery_;
  ShmWordCell* ring_head_;
  ShmEventSlot* ring_;
  ShmHistogramCell* handoff_hist_;
  ShmHistogramCell* sweep_hist_;
  std::uint64_t self_os_pid_;
};

}  // namespace aml::obs
