// Observability event stream: a fixed-size ring buffer of lock lifecycle
// events (enter / granted / abort / exit / instance switch) with logical
// timestamps.
//
// The ring is a measurement aid, not a synchronization structure: writers
// claim slots with one relaxed fetch_add and store plain Event payloads, so
// pushes cost a handful of nanoseconds and never block the lock's hot path.
// Once the ring wraps, a slow writer can race a fast one for the same slot
// and the older event is overwritten (possibly torn); snapshot() must only
// be called after the instrumented run has quiesced. Under the deterministic
// scheduler exactly one process runs at a time, so the stream is totally
// ordered and reproducible per seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "aml/model/types.hpp"

namespace aml::obs {

/// Slot value for events that have no queue slot (e.g. an abort while
/// waiting on the long-lived lock's spin node, before joining an instance).
inline constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

enum class EventKind : std::uint8_t {
  kEnter,    ///< doorway passed; slot assigned
  kGranted,  ///< critical section entered
  kAbort,    ///< attempt abandoned (abort signal observed)
  kExit,     ///< critical section released
  kSwitch,   ///< long-lived lock installed a fresh one-shot instance
};

inline const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "enter";
    case EventKind::kGranted: return "granted";
    case EventKind::kAbort: return "abort";
    case EventKind::kExit: return "exit";
    case EventKind::kSwitch: return "switch";
  }
  return "?";
}

struct Event {
  EventKind kind = EventKind::kEnter;
  model::Pid pid = 0;
  std::uint32_t slot = kNoSlot;
  std::uint64_t tick = 0;  ///< logical timestamp (see Metrics::now)
};

class EventRing {
 public:
  /// Capacity 0 disables recording entirely (push becomes a cheap no-op).
  explicit EventRing(std::size_t capacity) : slots_(capacity) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  void push(const Event& e) {
    if (slots_.empty()) return;
    const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    slots_[seq % slots_.size()] = e;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Total events offered to the ring (including overwritten ones).
  std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Events lost to wraparound so far.
  std::uint64_t dropped() const {
    const std::uint64_t total = total_recorded();
    return total > slots_.size() ? total - slots_.size() : 0;
  }

  /// The retained events, oldest first. Only meaningful once all
  /// instrumented processes have quiesced (see file comment).
  std::vector<Event> snapshot() const {
    const std::uint64_t total = total_recorded();
    std::vector<Event> out;
    if (slots_.empty() || total == 0) return out;
    const std::uint64_t kept =
        total < slots_.size() ? total : slots_.size();
    out.reserve(kept);
    for (std::uint64_t i = total - kept; i < total; ++i) {
      out.push_back(slots_[i % slots_.size()]);
    }
    return out;
  }

 private:
  std::atomic<std::uint64_t> head_{0};
  std::vector<Event> slots_;
};

}  // namespace aml::obs
