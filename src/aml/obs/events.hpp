// Observability event stream: a fixed-size ring buffer of lock lifecycle
// events (enter / granted / abort / exit / instance switch) with logical
// timestamps.
//
// The ring is a measurement aid, not a synchronization structure: writers
// claim slots with one relaxed fetch_add and store the payload with plain
// (relaxed) stores, so pushes cost a handful of nanoseconds and never block
// the lock's hot path. Torn slots are *detected*, not prevented: every slot
// carries a sequence tag the writer sets odd while the payload is in flight
// (claim) and even once the payload is complete (publish). snapshot()
// accepts a slot only when its tag reads as the published tag of exactly the
// sequence number that snapshot expects there — a stalled writer that
// claimed the slot but never published, a wrapped writer that overwrote it,
// or a stale publish landing after a wrap all leave a mismatched tag and the
// slot is skipped (and counted) instead of silently returned torn. Under
// the deterministic scheduler exactly one process runs at a time, so the
// stream is totally ordered and reproducible per seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "aml/model/types.hpp"

namespace aml::obs {

/// Slot value for events that have no queue slot (e.g. an abort while
/// waiting on the long-lived lock's spin node, before joining an instance).
inline constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

enum class EventKind : std::uint8_t {
  kEnter,    ///< doorway passed; slot assigned
  kGranted,  ///< critical section entered
  kAbort,    ///< attempt abandoned (abort signal observed)
  kExit,     ///< critical section released
  kSwitch,   ///< long-lived lock installed a fresh one-shot instance
};

inline const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "enter";
    case EventKind::kGranted: return "granted";
    case EventKind::kAbort: return "abort";
    case EventKind::kExit: return "exit";
    case EventKind::kSwitch: return "switch";
  }
  return "?";
}

struct Event {
  EventKind kind = EventKind::kEnter;
  model::Pid pid = 0;
  std::uint32_t slot = kNoSlot;
  std::uint64_t tick = 0;  ///< logical timestamp (see Metrics::now)
};

class EventRing {
 public:
  /// An in-flight push: the slot is claimed (tag odd) but the payload is not
  /// yet published. Exposed so tests can stage a stalled writer between the
  /// two halves of push() deterministically; production code uses push().
  struct Claim {
    std::uint64_t seq = 0;
    bool active = false;
  };

  /// Capacity 0 disables recording entirely (push becomes a cheap no-op).
  explicit EventRing(std::size_t capacity)
      : slots_(capacity == 0 ? nullptr
                             : std::make_unique<Slot[]>(capacity)),
        capacity_(capacity) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  void push(const Event& e) { publish(claim(), e); }

  /// First half of push(): take the next sequence number and mark its slot
  /// as claimed (odd tag). The returned Claim must be passed to publish().
  Claim claim() {
    if (capacity_ == 0) return {};
    const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    slots_[seq % capacity_].tag.store(claim_tag(seq),
                                      std::memory_order_relaxed);
    return {seq, true};
  }

  /// Second half of push(): store the payload and publish it (even tag).
  /// Safe to call after the ring has wrapped past the claim: the stale even
  /// tag names the old sequence number, so snapshot() skips the slot.
  void publish(const Claim& c, const Event& e) {
    if (!c.active) return;
    Slot& s = slots_[c.seq % capacity_];
    s.meta.store(pack_meta(e), std::memory_order_relaxed);
    s.tick.store(e.tick, std::memory_order_relaxed);
    s.tag.store(publish_tag(c.seq), std::memory_order_release);
  }

  std::size_t capacity() const { return capacity_; }

  /// Total events offered to the ring (including overwritten ones).
  std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Events lost to wraparound so far.
  std::uint64_t dropped() const {
    const std::uint64_t total = total_recorded();
    return total > capacity_ ? total - capacity_ : 0;
  }

  /// The retained, fully published events, oldest first. A slot whose tag
  /// does not match the expected published sequence (writer stalled mid-
  /// push, slot overwritten by a wrap, stale publish after a wrap) is
  /// skipped; `torn` (if given) receives how many were. Stable only once
  /// writers quiesce — while they run, a skipped slot is simply one that was
  /// in flight at the instant of the scan.
  std::vector<Event> snapshot(std::uint64_t* torn = nullptr) const {
    std::vector<Event> out;
    std::uint64_t skipped = 0;
    const std::uint64_t total = total_recorded();
    if (capacity_ != 0 && total != 0) {
      const std::uint64_t kept = total < capacity_ ? total : capacity_;
      out.reserve(kept);
      for (std::uint64_t seq = total - kept; seq < total; ++seq) {
        Event e;
        if (read_published(seq, &e)) {
          out.push_back(e);
        } else {
          ++skipped;
        }
      }
    }
    if (torn != nullptr) *torn = skipped;
    return out;
  }

 private:
  /// One ring slot: a sequence tag plus the payload in two relaxed atomic
  /// words, so a racing writer tears the *tag check*, never the C++ object
  /// model (no plain-field data race for TSan to flag).
  struct Slot {
    std::atomic<std::uint64_t> tag{0};   ///< 0 never-used; odd claimed; even published
    std::atomic<std::uint64_t> meta{0};  ///< kind | pid | slot packed
    std::atomic<std::uint64_t> tick{0};
  };

  static std::uint64_t claim_tag(std::uint64_t seq) { return 2 * seq + 1; }
  static std::uint64_t publish_tag(std::uint64_t seq) { return 2 * seq + 2; }

  static std::uint64_t pack_meta(const Event& e) {
    return (static_cast<std::uint64_t>(e.kind) << 56) |
           (static_cast<std::uint64_t>(e.pid & 0xFF'FFFFu) << 32) |
           static_cast<std::uint64_t>(e.slot);
  }

  bool read_published(std::uint64_t seq, Event* out) const {
    const Slot& s = slots_[seq % capacity_];
    const std::uint64_t want = publish_tag(seq);
    if (s.tag.load(std::memory_order_acquire) != want) return false;
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    const std::uint64_t tick = s.tick.load(std::memory_order_relaxed);
    // Re-validate after the payload reads: a writer that claimed between
    // our two tag loads was mid-overwrite and the payload words may mix
    // generations.
    if (s.tag.load(std::memory_order_acquire) != want) return false;
    out->kind = static_cast<EventKind>(meta >> 56);
    out->pid = static_cast<model::Pid>((meta >> 32) & 0xFF'FFFFu);
    out->slot = static_cast<std::uint32_t>(meta);
    out->tick = tick;
    return true;
  }

  std::atomic<std::uint64_t> head_{0};
  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_;
};

}  // namespace aml::obs
