// aml::obs — the observability layer.
//
// The lock templates take a Metrics sink type parameter (default
// NullMetrics) and route every instrumentation point through a
// SinkHandle<Metrics> member. The two sink flavors:
//
//   * NullMetrics — the production default. SinkHandle<NullMetrics> is an
//     empty class whose hooks are static no-ops, so with
//     [[no_unique_address]] the sink occupies no storage and the enter/exit
//     hot paths compile to exactly the uninstrumented code: no loads, no
//     stores, no branches. kZeroCostSink<NullMetrics> static_asserts this.
//
//   * Metrics — per-process cache-padded counters (acquisitions, aborts,
//     spin iterations, FindNext ascents, instance switches, spin-node
//     recycles), an optional fixed-size event ring (see events.hpp), and a
//     hand-off latency histogram (see histogram.hpp). Timestamps come from
//     an internal logical event clock by default — deterministic under the
//     step scheduler — or from a caller-installed clock (e.g. pal-level TSC
//     on native hardware).
//
// A lock is instrumented by instantiating it with the Metrics sink type and
// binding a sink instance:
//
//   aml::obs::Metrics metrics(nprocs, /*ring_capacity=*/4096);
//   aml::core::OneShotLock<Model, aml::obs::Metrics> lock(model, n, w);
//   lock.set_metrics(&metrics);
//   ... run ...
//   metrics.totals().acquisitions; metrics.ring().snapshot(); ...
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "aml/model/types.hpp"
#include "aml/obs/events.hpp"
#include "aml/obs/histogram.hpp"
#include "aml/pal/cache.hpp"

namespace aml::obs {

using model::Pid;

/// Per-process counters. Each process mutates only its own cache-padded
/// copy, so recording is contention-free.
struct Counters {
  std::uint64_t acquisitions = 0;       ///< critical sections entered
  std::uint64_t aborts = 0;             ///< attempts abandoned via the signal
  std::uint64_t spin_iterations = 0;    ///< busy-wait predicate evaluations
  std::uint64_t findnext_ascents = 0;   ///< SignalNext tree walks started
  std::uint64_t instance_switches = 0;  ///< successful LockDesc CAS installs
  std::uint64_t spin_node_recycles = 0; ///< spin nodes reclaimed into pools

  Counters& operator+=(const Counters& o) {
    acquisitions += o.acquisitions;
    aborts += o.aborts;
    spin_iterations += o.spin_iterations;
    findnext_ascents += o.findnext_ascents;
    instance_switches += o.instance_switches;
    spin_node_recycles += o.spin_node_recycles;
    return *this;
  }
};

/// The disabled sink. Never instantiated at runtime; only its type matters.
class NullMetrics {
 public:
  static constexpr bool kEnabled = false;
};

/// One sink's contention picture in a single value — what a per-stripe sink
/// exports to a dashboard or a grow policy: grant/abort totals, the derived
/// abort rate, and the hand-off latency distribution rollup.
struct ContentionRollup {
  Counters totals;
  LatencyHistogram::Snapshot handoff;
  double abort_rate = 0.0;  ///< aborts / (acquisitions + aborts); 0 if idle
};

/// The enabled sink.
class Metrics {
 public:
  static constexpr bool kEnabled = true;

  /// `ring_capacity` 0 disables event recording (counters and the hand-off
  /// histogram stay active).
  explicit Metrics(Pid nprocs, std::size_t ring_capacity = 0)
      : counters_(nprocs), ring_(ring_capacity) {}

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // --- instrumentation points (called via SinkHandle) --------------------

  void on_enter(Pid p, std::uint32_t slot) {
    emit(EventKind::kEnter, p, slot);
  }

  void on_granted(Pid p, std::uint32_t slot) {
    counters_[p]->acquisitions++;
    const std::uint64_t t = emit(EventKind::kGranted, p, slot);
    const std::uint64_t handed =
        pending_handoff_.exchange(0, std::memory_order_acq_rel);
    if (handed != 0 && t > handed) handoff_.record(t - handed);
  }

  void on_abort(Pid p, std::uint32_t slot) {
    counters_[p]->aborts++;
    emit(EventKind::kAbort, p, slot);
  }

  void on_exit(Pid p, std::uint32_t slot) {
    const std::uint64_t t = emit(EventKind::kExit, p, slot);
    pending_handoff_.store(t, std::memory_order_release);
  }

  void on_switch(Pid p) {
    counters_[p]->instance_switches++;
    emit(EventKind::kSwitch, p, kNoSlot);
  }

  void on_spin_iteration(Pid p) { counters_[p]->spin_iterations++; }

  void on_findnext(Pid p) { counters_[p]->findnext_ascents++; }

  void on_spin_node_recycle(Pid p, std::uint64_t nodes) {
    counters_[p]->spin_node_recycles += nodes;
  }

  // --- inspection --------------------------------------------------------

  Pid nprocs() const { return static_cast<Pid>(counters_.size()); }
  const Counters& of(Pid p) const { return *counters_[p]; }

  Counters totals() const {
    Counters total;
    for (const auto& c : counters_) total += *c;
    return total;
  }

  const EventRing& ring() const { return ring_; }
  const LatencyHistogram& handoff() const { return handoff_; }

  /// Totals + hand-off percentiles + abort rate in one call (consistent once
  /// writers quiesce, like totals()).
  ContentionRollup contention() const {
    ContentionRollup r;
    r.totals = totals();
    r.handoff = handoff_.snapshot();
    const std::uint64_t attempts = r.totals.acquisitions + r.totals.aborts;
    if (attempts != 0) {
      r.abort_rate = static_cast<double>(r.totals.aborts) /
                     static_cast<double>(attempts);
    }
    return r;
  }

  /// Current logical time (events recorded so far + 1 at the next event).
  std::uint64_t now_ticks() const {
    return logical_.load(std::memory_order_relaxed);
  }

  /// Install a timestamp source (e.g. a TSC reader, or the scheduler's step
  /// counter). Must be set before instrumented processes start; null
  /// restores the default logical event clock.
  void set_clock(std::function<std::uint64_t()> clock) {
    clock_ = std::move(clock);
  }

  void reset() {
    for (auto& c : counters_) *c = Counters{};
    handoff_.reset();
    pending_handoff_.store(0, std::memory_order_relaxed);
    // The ring keeps its history; logical time keeps advancing so ticks
    // stay unique across reset boundaries.
  }

 private:
  std::uint64_t now() {
    if (clock_) return clock_();
    return logical_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::uint64_t emit(EventKind kind, Pid p, std::uint32_t slot) {
    const std::uint64_t t = now();
    ring_.push(Event{kind, p, slot, t});
    return t;
  }

  std::vector<pal::CachePadded<Counters>> counters_;
  EventRing ring_;
  LatencyHistogram handoff_;
  std::atomic<std::uint64_t> pending_handoff_{0};
  std::atomic<std::uint64_t> logical_{0};
  std::function<std::uint64_t()> clock_;
};

/// What the lock templates actually hold: a bound-or-null pointer for an
/// enabled sink, or an empty no-op shim for NullMetrics.
template <typename Sink>
class SinkHandle {
 public:
  using sink_type = Sink;

  void bind(Sink* sink) { sink_ = sink; }
  Sink* get() const { return sink_; }

  void on_enter(Pid p, std::uint32_t slot) {
    if (sink_ != nullptr) sink_->on_enter(p, slot);
  }
  void on_granted(Pid p, std::uint32_t slot) {
    if (sink_ != nullptr) sink_->on_granted(p, slot);
  }
  void on_abort(Pid p, std::uint32_t slot) {
    if (sink_ != nullptr) sink_->on_abort(p, slot);
  }
  void on_exit(Pid p, std::uint32_t slot) {
    if (sink_ != nullptr) sink_->on_exit(p, slot);
  }
  void on_switch(Pid p) {
    if (sink_ != nullptr) sink_->on_switch(p);
  }
  void on_spin_iteration(Pid p) {
    if (sink_ != nullptr) sink_->on_spin_iteration(p);
  }
  void on_findnext(Pid p) {
    if (sink_ != nullptr) sink_->on_findnext(p);
  }
  void on_spin_node_recycle(Pid p, std::uint64_t nodes) {
    if (sink_ != nullptr) sink_->on_spin_node_recycle(p, nodes);
  }

 private:
  Sink* sink_ = nullptr;
};

/// Disabled specialization: empty, all hooks static no-ops. With
/// [[no_unique_address]] this adds zero bytes and zero instructions.
template <>
class SinkHandle<NullMetrics> {
 public:
  using sink_type = NullMetrics;

  static void bind(NullMetrics*) {}
  static NullMetrics* get() { return nullptr; }
  static void on_enter(Pid, std::uint32_t) {}
  static void on_granted(Pid, std::uint32_t) {}
  static void on_abort(Pid, std::uint32_t) {}
  static void on_exit(Pid, std::uint32_t) {}
  static void on_switch(Pid) {}
  static void on_spin_iteration(Pid) {}
  static void on_findnext(Pid) {}
  static void on_spin_node_recycle(Pid, std::uint64_t) {}
};

/// True when instrumenting with `Sink` costs nothing: the handle stores no
/// state, so the optimizer erases every hook call. The deployment header
/// static_asserts this for the default NullMetrics configuration.
template <typename Sink>
inline constexpr bool kZeroCostSink = std::is_empty_v<SinkHandle<Sink>>;

static_assert(kZeroCostSink<NullMetrics>,
              "the disabled metrics sink must compile to nothing");
static_assert(!kZeroCostSink<Metrics>, "the enabled sink carries state");

}  // namespace aml::obs
