// Power-of-two-bucketed histogram for hand-off latency summaries.
//
// record() is wait-free (a few relaxed atomic adds plus bounded CAS loops
// for min/max), so it is safe to call from inside instrumented lock paths.
// Bucket i holds values whose bit width is i, i.e. [2^(i-1), 2^i); reported
// percentiles are therefore upper bounds with at most 2x resolution, which
// is the usual trade for a fixed-footprint concurrent histogram.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace aml::obs {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  ///< bit widths 0..64

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;  ///< bucket upper bounds (nearest rank)
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  /// Consistent only once writers have quiesced.
  Snapshot snapshot() const {
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    if (s.count == 0) return s;
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.p50 = percentile(s, 0.50);
    s.p90 = percentile(s, 0.90);
    s.p99 = percentile(s, 0.99);
    return s;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket i (0 -> 0, 1 -> 1, 2 -> 3, 3 -> 7...).
  static std::uint64_t bucket_upper(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t width = 0;
    while (v != 0) {
      ++width;
      v >>= 1;
    }
    return width;
  }

 private:
  static std::uint64_t percentile(const Snapshot& s, double q) {
    // Nearest-rank over bucket upper bounds: the smallest bucket whose
    // cumulative count reaches ceil(q * count).
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(s.count) + 0.9999999);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += s.buckets[i];
      if (seen >= rank) return bucket_upper(i);
    }
    return s.max;
  }

  void update_min(std::uint64_t v) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace aml::obs
