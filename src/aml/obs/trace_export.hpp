// Passage tracer: assembles per-passage spans from the (totally ordered)
// shm event ring and emits them as Chrome-trace-event JSON, so a whole
// crash-and-recover episode — the victim's doorway, its grant, the moment it
// died, and the survivor's forced close — renders on one Perfetto timeline.
//
// Span model: one PassageSpan per attempt, keyed by the acting lock pid.
//   doorway:  enter .. granted (or terminal, if never granted)
//   cs:       granted .. terminal
//   terminal: exit / abort by the owner, or a recovery arm executed by a
//             survivor on the victim's behalf — in which case the span is
//             closed *forced*, annotated with the recovering pid and the
//             dispatch arm, which is exactly what an operator needs to see
//             on the victim's track after a SIGKILL.
// Chrome mapping: trace pid = stripe (each stripe is a track group), trace
// tid = lock pid. Spans are "X" complete events (doorway and cs nest);
// recovery arms and instance switches are additionally instant events on
// the executing pid's track. Timestamps are microseconds relative to the
// first event, from the ring's CLOCK_MONOTONIC stamps (one timebase per
// host, so cross-process spans line up).
#pragma once

#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "aml/model/types.hpp"
#include "aml/obs/shm_metrics.hpp"

namespace aml::obs {

struct PassageSpan {
  model::Pid pid = 0;          ///< whose passage this is (the victim, for
                               ///  forced closes)
  std::uint32_t stripe = 0;
  std::uint32_t slot = kNoSlot;
  std::uint32_t instance = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t granted_ns = 0;  ///< 0 when never granted
  std::uint64_t end_ns = 0;      ///< 0 while unclosed
  bool granted = false;
  bool closed = false;
  bool forced = false;           ///< closed by a survivor's recovery arm
  ShmEventKind close_kind = ShmEventKind::kEnter;  ///< terminal event kind
  model::Pid recovered_by = ShmEvent::kNoPid;      ///< executor, when forced
};

/// Fold the event stream into spans. Events must be in ring order (as
/// ring_snapshot() returns them). Robust to a wrapped ring: a grant or
/// terminal whose opening event was overwritten still yields a (partial)
/// span rather than being dropped, so the tail of a long run stays useful.
inline std::vector<PassageSpan> assemble_passage_spans(
    const std::vector<ShmEvent>& events) {
  std::vector<PassageSpan> spans;
  std::unordered_map<model::Pid, std::size_t> open;  // pid -> span index

  const auto open_span = [&](const ShmEvent& e, model::Pid pid) {
    PassageSpan s;
    s.pid = pid;
    s.stripe = e.stripe;
    s.slot = e.slot;
    s.instance = e.instance;
    s.begin_ns = e.mono_ns;
    spans.push_back(s);
    open[pid] = spans.size() - 1;
    return spans.size() - 1;
  };

  const auto close_span = [&](const ShmEvent& e, model::Pid victim,
                              bool forced) {
    auto it = open.find(victim);
    std::size_t idx;
    if (it == open.end()) {
      // Opening event lost to ring wrap (or, for a zombie retire, the
      // victim died before journaling an attempt): synthesize a span so
      // the terminal still shows on the timeline.
      idx = open_span(e, victim);
      spans[idx].slot = e.slot;
    } else {
      idx = it->second;
      open.erase(it);
    }
    PassageSpan& s = spans[idx];
    s.end_ns = e.mono_ns;
    s.closed = true;
    s.close_kind = e.kind;
    s.forced = forced;
    if (forced) s.recovered_by = e.pid;
    if (e.kind == ShmEventKind::kCompleteGrant && !s.granted) {
      // The survivor completed the victim's grant before exiting on its
      // behalf: the passage *was* granted, at recovery time.
      s.granted = true;
      s.granted_ns = e.mono_ns;
    }
    open.erase(victim);
  };

  for (const ShmEvent& e : events) {
    switch (e.kind) {
      case ShmEventKind::kEnter: {
        // A fresh attempt while one is still open means the opener's
        // terminal was lost: leave the stale span unclosed and move on.
        open.erase(e.pid);
        open_span(e, e.pid);
        break;
      }
      case ShmEventKind::kGranted: {
        auto it = open.find(e.pid);
        const std::size_t idx =
            it != open.end() ? it->second : open_span(e, e.pid);
        spans[idx].granted = true;
        spans[idx].granted_ns = e.mono_ns;
        if (spans[idx].slot == kNoSlot) spans[idx].slot = e.slot;
        break;
      }
      case ShmEventKind::kAbort:
      case ShmEventKind::kExit:
        close_span(e, e.pid, /*forced=*/false);
        break;
      case ShmEventKind::kForcedExit:
      case ShmEventKind::kCompleteGrant:
      case ShmEventKind::kAbortOnBehalf:
      case ShmEventKind::kResignal:
      case ShmEventKind::kZombieRetire:
      case ShmEventKind::kFaCompleted:
      case ShmEventKind::kFaCompensated:
        close_span(e, e.victim, /*forced=*/true);
        break;
      case ShmEventKind::kSwitch:
      case ShmEventKind::kReentry:
      case ShmEventKind::kZombieReclaim:
        // Instants, not spans: switches are stripe-local blips, re-entry
        // and zombie reclamation are whole-service transitions.
        break;
    }
  }
  return spans;
}

namespace detail {

inline double trace_us(std::uint64_t ns, std::uint64_t base_ns) {
  return static_cast<double>(ns - base_ns) / 1000.0;
}

inline void write_span_args(std::ostream& os, const PassageSpan& s) {
  os << "{\"pid\":" << s.pid << ",\"stripe\":" << s.stripe;
  if (s.slot != kNoSlot) os << ",\"slot\":" << s.slot;
  os << ",\"instance\":" << s.instance
     << ",\"granted\":" << (s.granted ? "true" : "false")
     << ",\"forced\":" << (s.forced ? "true" : "false");
  if (s.closed) {
    os << ",\"outcome\":\"" << shm_event_kind_name(s.close_kind) << "\"";
  } else {
    os << ",\"unclosed\":true";
  }
  if (s.forced && s.recovered_by != ShmEvent::kNoPid) {
    os << ",\"recovered_by\":" << s.recovered_by;
  }
  os << "}";
}

}  // namespace detail

/// Emit the stream as Chrome trace-event JSON (the {"traceEvents":[...]}
/// object form Perfetto and chrome://tracing both load).
inline void write_chrome_trace(std::ostream& os,
                               const std::vector<ShmEvent>& events) {
  std::uint64_t base_ns = ~std::uint64_t{0};
  std::uint64_t last_ns = 0;
  for (const ShmEvent& e : events) {
    if (e.mono_ns < base_ns) base_ns = e.mono_ns;
    if (e.mono_ns > last_ns) last_ns = e.mono_ns;
  }
  if (events.empty()) base_ns = 0;

  const std::vector<PassageSpan> spans = assemble_passage_spans(events);

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Track naming: one trace-pid per stripe, one trace-tid per lock pid.
  std::vector<std::uint32_t> stripes_seen;
  for (const PassageSpan& s : spans) {
    bool seen = false;
    for (std::uint32_t x : stripes_seen) seen = seen || x == s.stripe;
    if (!seen) stripes_seen.push_back(s.stripe);
  }
  for (std::uint32_t stripe : stripes_seen) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << stripe
       << ",\"args\":{\"name\":\"stripe " << stripe << "\"}}";
  }

  for (const PassageSpan& s : spans) {
    const std::uint64_t end = s.closed ? s.end_ns : last_ns;
    sep();
    os << "{\"name\":\"passage\",\"ph\":\"X\",\"pid\":" << s.stripe
       << ",\"tid\":" << s.pid
       << ",\"ts\":" << detail::trace_us(s.begin_ns, base_ns)
       << ",\"dur\":" << detail::trace_us(end, s.begin_ns) << ",\"args\":";
    detail::write_span_args(os, s);
    os << "}";
    if (s.granted && s.granted_ns != 0) {
      sep();
      os << "{\"name\":\"cs\",\"ph\":\"X\",\"pid\":" << s.stripe
         << ",\"tid\":" << s.pid
         << ",\"ts\":" << detail::trace_us(s.granted_ns, base_ns)
         << ",\"dur\":" << detail::trace_us(end, s.granted_ns)
         << ",\"args\":";
      detail::write_span_args(os, s);
      os << "}";
    }
  }

  for (const ShmEvent& e : events) {
    const bool recovery = shm_event_is_recovery(e.kind);
    if (!recovery && e.kind != ShmEventKind::kSwitch) continue;
    sep();
    os << "{\"name\":\"" << shm_event_kind_name(e.kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.stripe
       << ",\"tid\":" << e.pid
       << ",\"ts\":" << detail::trace_us(e.mono_ns, base_ns)
       << ",\"args\":{";
    if (recovery) {
      os << "\"victim\":" << e.victim << ",\"executor\":" << e.pid
         << ",\"arm\":\"" << shm_event_kind_name(e.kind) << "\"";
    } else {
      os << "\"instance\":" << e.instance;
    }
    os << "}}";
  }

  os << "\n]}\n";
}

}  // namespace aml::obs
