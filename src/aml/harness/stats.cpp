#include "aml/harness/stats.hpp"

#include <algorithm>
#include <cmath>

#include "aml/pal/config.hpp"

namespace aml::harness {

Summary summarize(std::vector<std::uint64_t> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  double total = 0;
  for (std::uint64_t v : samples) total += static_cast<double>(v);
  s.mean = total / static_cast<double>(samples.size());
  // Nearest-rank percentiles: the q-th percentile is the ceil(q*n)-th
  // smallest sample. (The previous q*(n-1)+0.5 rounding collapsed p90/p99
  // onto max for small n — e.g. n = 10 made p50 return the 6th sample.)
  auto pct = [&](double q) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank < 1) rank = 1;
    if (rank > samples.size()) rank = samples.size();
    return samples[rank - 1];
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  return s;
}

const char* growth_name(Growth growth) {
  switch (growth) {
    case Growth::kConstant: return "constant";
    case Growth::kLogarithmic: return "logarithmic";
    case Growth::kLinear: return "linear";
    case Growth::kSuperlinear: return "superlinear";
  }
  return "?";
}

double log_log_slope(const std::vector<std::pair<double, double>>& xy) {
  AML_ASSERT(xy.size() >= 2, "need at least two points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : xy) {
    AML_ASSERT(x > 0 && y > 0, "log-log fit needs positive data");
    const double lx = std::log(x);
    const double ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double n = static_cast<double>(xy.size());
  const double denom = n * sxx - sx * sx;
  AML_ASSERT(denom > 1e-12, "degenerate x range for log-log fit");
  return (n * sxy - sx * sy) / denom;
}

Growth classify_growth(const std::vector<std::pair<double, double>>& xy) {
  const double alpha = log_log_slope(xy);
  if (alpha < 0.15) return Growth::kConstant;
  if (alpha < 0.65) return Growth::kLogarithmic;
  if (alpha < 1.4) return Growth::kLinear;
  return Growth::kSuperlinear;
}

}  // namespace aml::harness
