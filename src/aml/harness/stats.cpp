#include "aml/harness/stats.hpp"

#include <algorithm>
#include <cmath>

#include "aml/pal/config.hpp"

namespace aml::harness {

Summary summarize(std::vector<std::uint64_t> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  double total = 0;
  for (std::uint64_t v : samples) total += static_cast<double>(v);
  s.mean = total / static_cast<double>(samples.size());
  auto pct = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[idx];
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  return s;
}

const char* growth_name(Growth growth) {
  switch (growth) {
    case Growth::kConstant: return "constant";
    case Growth::kLogarithmic: return "logarithmic";
    case Growth::kLinear: return "linear";
    case Growth::kSuperlinear: return "superlinear";
  }
  return "?";
}

double log_log_slope(const std::vector<std::pair<double, double>>& xy) {
  AML_ASSERT(xy.size() >= 2, "need at least two points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : xy) {
    AML_ASSERT(x > 0 && y > 0, "log-log fit needs positive data");
    const double lx = std::log(x);
    const double ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double n = static_cast<double>(xy.size());
  const double denom = n * sxx - sx * sx;
  AML_ASSERT(denom > 1e-12, "degenerate x range for log-log fit");
  return (n * sxy - sx * sy) / denom;
}

Growth classify_growth(const std::vector<std::pair<double, double>>& xy) {
  const double alpha = log_log_slope(xy);
  if (alpha < 0.15) return Growth::kConstant;
  if (alpha < 0.65) return Growth::kLogarithmic;
  if (alpha < 1.4) return Growth::kLinear;
  return Growth::kSuperlinear;
}

}  // namespace aml::harness
