#include "aml/harness/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace aml::harness {

Table& Table::headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells, bool align_right) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      const bool right = align_right && looks_numeric(cell);
      const std::size_t pad = widths[i] - cell.size();
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << (i + 1 < widths.size() ? "  " : "");
    }
    os << "\n";
  };
  emit(headers_, false);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& r : rows_) emit(r, true);
  os << "\n";
}

void Table::print() const {
  print(std::cout);
  const char* dir = std::getenv("AMLOCK_BENCH_CSV");
  if (dir == nullptr || *dir == '\0') return;
  std::string slug;
  for (char c : title_) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
    if (slug.size() >= 80) break;
  }
  std::ofstream out(std::string(dir) + "/" + slug + ".csv");
  if (out) out << to_csv();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i] << (i + 1 < cells.size() ? "," : "");
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace aml::harness
