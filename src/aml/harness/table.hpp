// Plain-text table rendering for the benchmark harnesses: aligned columns on
// stdout (the paper-style tables EXPERIMENTS.md quotes) plus optional CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aml::harness {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& headers(std::vector<std::string> headers);
  Table& row(std::vector<std::string> cells);

  /// Render with aligned columns (numbers right-aligned heuristically).
  /// If the environment variable AMLOCK_BENCH_CSV names a directory, the
  /// parameterless overload additionally writes <dir>/<slug(title)>.csv for
  /// machine-readable archiving of bench results.
  void print(std::ostream& os) const;
  void print() const;  ///< to stdout (+ optional CSV side file)

  std::string to_csv() const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header_row() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

  // Cell formatting helpers.
  static std::string num(std::uint64_t v);
  static std::string num(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aml::harness
