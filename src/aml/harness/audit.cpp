#include "aml/harness/audit.hpp"

#include <map>
#include <sstream>

#include "aml/pal/config.hpp"

namespace aml::harness {

void EventLog::record(model::Pid pid, EventKind kind, std::uint32_t slot) {
  std::lock_guard<std::mutex> guard(mu_);
  events_.push_back(Event{next_seq_++, pid, kind, slot});
}

void EventLog::clear() {
  std::lock_guard<std::mutex> guard(mu_);
  events_.clear();
  next_seq_ = 0;
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> guard(mu_);
  return events_;
}

namespace {

AuditReport audit_common(const std::vector<Event>& events, bool one_shot) {
  AuditReport report;
  bool inside = false;
  model::Pid holder = model::kNoPid;
  std::map<model::Pid, std::uint64_t> acquires_by_pid;
  std::map<model::Pid, std::int64_t> open_attempts;  // doorways - resolutions
  bool have_last_slot = false;
  std::uint32_t last_slot = 0;

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kDoorway:
        report.doorways++;
        open_attempts[e.pid]++;
        break;
      case EventKind::kAcquire:
        report.acquires++;
        acquires_by_pid[e.pid]++;
        open_attempts[e.pid]--;
        if (inside) report.mutex_ok = false;  // overlap
        inside = true;
        holder = e.pid;
        if (have_last_slot && e.slot <= last_slot) {
          report.fcfs_inversions++;
        }
        last_slot = e.slot;
        have_last_slot = true;
        break;
      case EventKind::kRelease:
        report.releases++;
        if (!inside || holder != e.pid) report.conservation_ok = false;
        inside = false;
        holder = model::kNoPid;
        break;
      case EventKind::kAbort:
        report.aborts++;
        open_attempts[e.pid]--;
        break;
    }
  }
  if (inside) report.conservation_ok = false;  // acquire without release
  if (report.acquires != report.releases) report.conservation_ok = false;
  // Starvation freedom: per process, every doorway must have resolved into
  // an acquire or an abort by the end of the history. (Aborts recorded
  // before the doorway — an attempt abandoned on the spin-node wait, before
  // joining an instance — make the per-pid balance negative; only positive
  // balances are starvation.)
  for (const auto& [pid, open] : open_attempts) {
    if (open > 0) {
      report.unresolved_attempts += static_cast<std::uint64_t>(open);
    }
  }
  report.starvation_ok = report.unresolved_attempts == 0;
  if (one_shot) {
    for (const auto& [pid, count] : acquires_by_pid) {
      if (count > 1) report.conservation_ok = false;  // double acquire
    }
  }
  return report;
}

}  // namespace

AuditReport audit_one_shot(const std::vector<Event>& events) {
  return audit_common(events, /*one_shot=*/true);
}

AuditReport audit_long_lived(const std::vector<Event>& events) {
  return audit_common(events, /*one_shot=*/false);
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << "audit{mutex=" << (mutex_ok ? "ok" : "VIOLATED")
     << " conservation=" << (conservation_ok ? "ok" : "VIOLATED")
     << " starvation=" << (starvation_ok ? "ok" : "VIOLATED")
     << " fcfs_inversions=" << fcfs_inversions
     << " unresolved=" << unresolved_attempts
     << " doorways=" << doorways << " acquires=" << acquires
     << " releases=" << releases << " aborts=" << aborts << "}";
  return os.str();
}

}  // namespace aml::harness
