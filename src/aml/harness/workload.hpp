// Abort workload plans: which processes abort and when their signal is
// raised relative to the simulated execution.
#pragma once

#include <cstdint>
#include <vector>

namespace aml::harness {

enum class AbortWhen : std::uint8_t {
  kNever,      ///< the process never aborts
  kPreRaised,  ///< signal already up before the attempt starts
  kOnIdle,     ///< raised (one per idle event) when nothing is runnable —
               ///< i.e. while the process is parked waiting for the lock
  kAtStep,     ///< raised at a fixed global step number
};

struct AbortPlan {
  AbortWhen when = AbortWhen::kNever;
  std::uint64_t step = 0;  ///< for kAtStep
};

/// Nobody aborts.
std::vector<AbortPlan> plan_none(std::uint32_t n);

/// Processes 1..k abort (process 0 always survives and holds the CS).
std::vector<AbortPlan> plan_first_k(std::uint32_t n, std::uint32_t k,
                                    AbortWhen when = AbortWhen::kOnIdle);

/// Everyone except `survivor` aborts.
std::vector<AbortPlan> plan_all_but(std::uint32_t n, std::uint32_t survivor,
                                    AbortWhen when = AbortWhen::kOnIdle);

/// k distinct processes other than process 0 abort, chosen by seed.
std::vector<AbortPlan> plan_random_k(std::uint32_t n, std::uint32_t k,
                                     std::uint64_t seed,
                                     AbortWhen when = AbortWhen::kOnIdle);

/// Number of aborters in a plan.
std::uint32_t plan_aborters(const std::vector<AbortPlan>& plans);

}  // namespace aml::harness
