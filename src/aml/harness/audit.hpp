// Execution auditing: a thread-safe event log that lock workloads append
// doorway/acquire/release/abort events to, and an auditor that checks the
// paper's safety and fairness properties over the recorded history:
//
//   * mutual exclusion — acquire/release strictly alternate;
//   * conservation     — every acquire has a release; every attempt ends;
//   * FCFS             — critical-section order follows doorway (queue
//                        slot) order among completers (one-shot lock);
//   * single shot      — no process acquires twice (one-shot workloads);
//   * starvation freedom — every attempt that completed its doorway resolved
//                        (acquired or aborted) by the end of the history: a
//                        process still parked when the run is over is a lost
//                        wake-up, the failure mode of a broken hand-off.
//
// Tests and the fairness bench build on this instead of re-deriving ad-hoc
// checks.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "aml/model/types.hpp"

namespace aml::harness {

enum class EventKind : std::uint8_t {
  kDoorway,  ///< doorway completed (slot assigned)
  kAcquire,  ///< entered the critical section
  kRelease,  ///< exited the critical section
  kAbort,    ///< attempt abandoned
};

struct Event {
  std::uint64_t seq;   ///< global order of recording
  model::Pid pid;
  EventKind kind;
  std::uint32_t slot;  ///< queue slot (kDoorway/kAcquire), else 0
};

/// Append-only, thread-safe event log. Recording takes a mutex: under the
/// deterministic scheduler that adds no nondeterminism (one process runs at
/// a time), and in native runs the log order is a linearization consistent
/// with real time.
class EventLog {
 public:
  void record(model::Pid pid, EventKind kind, std::uint32_t slot = 0);
  void clear();

  /// Snapshot of all events (call after the run).
  std::vector<Event> events() const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::uint64_t next_seq_ = 0;
};

struct AuditReport {
  bool mutex_ok = true;          ///< no overlapping critical sections
  bool conservation_ok = true;   ///< acquires == releases, no double acquire
  bool starvation_ok = true;     ///< every doorway resolved by history end
  std::uint64_t fcfs_inversions = 0;  ///< CS entries out of slot order
  std::uint64_t unresolved_attempts = 0;  ///< doorways never acquired/aborted
  std::uint64_t doorways = 0;
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  std::uint64_t aborts = 0;

  bool clean() const {
    return mutex_ok && conservation_ok && starvation_ok &&
           fcfs_inversions == 0;
  }
  std::string to_string() const;
};

/// Audit a one-shot-style history (each process attempts once).
AuditReport audit_one_shot(const std::vector<Event>& events);

/// Audit a long-lived history: mutual exclusion and conservation only
/// (the long-lived lock is not FCFS; fcfs_inversions is still reported,
/// informationally).
AuditReport audit_long_lived(const std::vector<Event>& events);

}  // namespace aml::harness
