// Machine-readable benchmark reports: every bench_* binary builds a
// BenchReport alongside its text tables and writes BENCH_<name>.json for
// the PR-over-PR regression trail (see EXPERIMENTS.md).
//
// Schema (all keys always present, in this order):
//
//   {
//     "bench":   "<name>",
//     "git_rev": "<short rev the binary was configured from>",
//     "config":  { "<key>": <number|string>, ... },
//     "samples": { "<series>": [<number>, ...], ... },
//     "summary": { "<key>": <number>, ... },
//     "tables":  [ {"title": ..., "headers": [...], "rows": [[...], ...]} ]
//   }
//
// Emission is deterministic: keys keep insertion order, numbers render via
// a fixed format, and nothing (timestamps, hostnames, pointers) varies
// between runs — so counting-model benches produce byte-identical JSON for
// identical seeds, which the schema test asserts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "aml/harness/stats.hpp"
#include "aml/harness/table.hpp"

namespace aml::harness {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  // --- config (scalar parameters of the run) -----------------------------

  BenchReport& config(const std::string& key, std::uint64_t v);
  BenchReport& config(const std::string& key, std::int64_t v);
  BenchReport& config(const std::string& key, double v);
  BenchReport& config(const std::string& key, const std::string& v);
  BenchReport& config(const std::string& key, const char* v);

  // --- samples (raw measurement series) ----------------------------------

  BenchReport& sample(const std::string& series, double v);
  BenchReport& samples(const std::string& series,
                       const std::vector<double>& vs);
  BenchReport& samples(const std::string& series,
                       const std::vector<std::uint64_t>& vs);

  // --- summary (derived scalars) -----------------------------------------

  BenchReport& summary(const std::string& key, double v);
  BenchReport& summary(const std::string& key, std::uint64_t v);
  /// Expands to <key>_count/min/max/mean/p50/p90/p99.
  BenchReport& summary(const std::string& key, const Summary& s);

  // --- tables (the text tables, archived verbatim) -----------------------

  BenchReport& table(const Table& t);

  // --- output ------------------------------------------------------------

  const std::string& name() const { return name_; }
  std::string to_json() const;

  /// Write BENCH_<name>.json into $AMLOCK_BENCH_DIR (or the working
  /// directory when unset). Returns the path written, empty on I/O failure
  /// (reported to stderr; benches should not die over a read-only dir).
  std::string write() const;

 private:
  struct Value {
    enum class Kind { kNumber, kString } kind = Kind::kNumber;
    std::string text;  ///< pre-rendered JSON token
  };
  using Entry = std::pair<std::string, Value>;

  struct TableDump {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::vector<Entry> config_;
  std::vector<std::pair<std::string, std::vector<std::string>>> samples_;
  std::vector<Entry> summary_;
  std::vector<TableDump> tables_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Render a double as a JSON number token: integral values without a
/// fraction, others with up to 17 significant digits (round-trippable),
/// non-finite values as 0 (JSON has no inf/nan).
std::string json_number(double v);

/// The source revision baked in at configure time (AMLOCK_GIT_REV), else
/// the AMLOCK_GIT_REV environment variable, else "unknown".
std::string git_rev();

}  // namespace aml::harness
