// Summary statistics over per-passage measurements, and growth-shape
// classification used by the property tests to assert complexity claims
// (flat / logarithmic / linear) from measured series.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace aml::harness {

struct Summary {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

/// Compute a Summary (copies and sorts the samples).
Summary summarize(std::vector<std::uint64_t> samples);

/// Coarse growth classes for measured cost-vs-size series.
enum class Growth {
  kConstant,     ///< y essentially flat in x
  kLogarithmic,  ///< y grows, but much slower than x (log-like)
  kLinear,       ///< y ~ x
  kSuperlinear,  ///< y grows faster than x
};

const char* growth_name(Growth growth);

/// Least-squares slope of log(y) vs log(x) — the power-law exponent alpha
/// in y ~ x^alpha. Requires >= 2 points with positive x and y.
double log_log_slope(const std::vector<std::pair<double, double>>& xy);

/// Classify a series by its power-law exponent:
///   alpha < 0.15 -> constant;  < 0.65 -> logarithmic-like (sublinear);
///   < 1.4 -> linear;  else superlinear.
/// Thresholds are deliberately wide: the tests feed decades of x range, so
/// the classes separate cleanly.
Growth classify_growth(const std::vector<std::pair<double, double>>& xy);

}  // namespace aml::harness
