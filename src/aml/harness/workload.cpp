#include "aml/harness/workload.hpp"

#include "aml/pal/config.hpp"
#include "aml/pal/rng.hpp"

namespace aml::harness {

std::vector<AbortPlan> plan_none(std::uint32_t n) {
  return std::vector<AbortPlan>(n);
}

std::vector<AbortPlan> plan_first_k(std::uint32_t n, std::uint32_t k,
                                    AbortWhen when) {
  AML_ASSERT(k < n, "need at least one survivor");
  std::vector<AbortPlan> plans(n);
  for (std::uint32_t p = 1; p <= k; ++p) plans[p].when = when;
  return plans;
}

std::vector<AbortPlan> plan_all_but(std::uint32_t n, std::uint32_t survivor,
                                    AbortWhen when) {
  std::vector<AbortPlan> plans(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    if (p != survivor) plans[p].when = when;
  }
  return plans;
}

std::vector<AbortPlan> plan_random_k(std::uint32_t n, std::uint32_t k,
                                     std::uint64_t seed, AbortWhen when) {
  AML_ASSERT(k < n, "need at least one survivor");
  std::vector<AbortPlan> plans(n);
  pal::Xoshiro256 rng(seed);
  std::uint32_t chosen = 0;
  while (chosen < k) {
    const std::uint32_t p =
        1 + static_cast<std::uint32_t>(rng.below(n - 1));
    if (plans[p].when == AbortWhen::kNever) {
      plans[p].when = when;
      ++chosen;
    }
  }
  return plans;
}

std::uint32_t plan_aborters(const std::vector<AbortPlan>& plans) {
  std::uint32_t count = 0;
  for (const AbortPlan& plan : plans) {
    if (plan.when != AbortWhen::kNever) ++count;
  }
  return count;
}

}  // namespace aml::harness
