// RMR experiment drivers: run lock workloads on the counting memory models
// under the deterministic scheduler and collect per-passage RMR counts.
//
// Two drivers:
//   * run_single_pass — every process performs one acquisition attempt
//     (the paper's one-shot setting and the Table 1 per-passage columns).
//     Optionally holds the first critical section closed behind a harness
//     gate until the planned aborts have executed, producing exactly the
//     "A_i processes abort during the passage" scenario of Theorem 2.
//   * run_long_lived — every process performs R rounds on a long-lived
//     lock with randomized abort marking, exercising instance switching,
//     lazy reset, and spin-node recycling (Section 6).
//
// Both check mutual exclusion on the fly and are deterministic per seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "aml/core/eager_space.hpp"
#include "aml/core/longlived.hpp"
#include "aml/core/oneshot.hpp"
#include "aml/harness/stats.hpp"
#include "aml/harness/workload.hpp"
#include "aml/model/counting_cc.hpp"
#include "aml/model/counting_dsm.hpp"
#include "aml/obs/metrics.hpp"
#include "aml/pal/config.hpp"
#include "aml/sched/scheduler.hpp"

namespace aml::harness {

using model::Pid;

struct PassageRecord {
  Pid pid = 0;
  bool acquired = false;
  bool marked = false;  ///< long-lived runner: attempt was planned to abort
  std::uint32_t slot = 0;
  std::uint64_t rmr_enter = 0;
  std::uint64_t rmr_exit = 0;
  std::uint64_t remote_spin_episodes = 0;

  std::uint64_t rmr_total() const { return rmr_enter + rmr_exit; }
};

struct RunResult {
  std::vector<PassageRecord> records;
  std::uint64_t steps = 0;
  std::uint32_t completed = 0;
  std::uint32_t aborted = 0;
  bool mutex_ok = true;
  std::uint64_t switches = 0;      ///< long-lived only: successful instance
                                   ///< switches (Cleanup CAS installs)
  std::uint64_t incarnations = 0;  ///< long-lived only: total space reuses
                                   ///< (next_incarnation bumps, including
                                   ///< those of switches whose install CAS
                                   ///< lost) — >= switches

  std::vector<std::uint64_t> rmrs_of(bool acquired) const {
    std::vector<std::uint64_t> out;
    for (const auto& r : records) {
      if (r.acquired == acquired) out.push_back(r.rmr_total());
    }
    return out;
  }
  Summary complete_summary() const { return summarize(rmrs_of(true)); }
  Summary aborted_summary() const { return summarize(rmrs_of(false)); }
  std::uint64_t max_complete_rmr() const { return complete_summary().max; }
  std::uint64_t max_aborted_rmr() const { return aborted_summary().max; }
  std::uint64_t total_remote_spin_episodes() const {
    std::uint64_t total = 0;
    for (const auto& r : records) total += r.remote_spin_episodes;
    return total;
  }
};

struct SinglePassOptions {
  std::uint64_t seed = 1;
  /// Grant first steps in pid order so queue slot i == process i
  /// (reproducible slot layouts for the adversarial workloads).
  bool ordered_doorway = true;
  /// Hold the first critical section closed until all planned aborts have
  /// run, so they count toward that passage's A_i.
  bool gate_cs = true;
  std::vector<AbortPlan> plans;  ///< size n (defaults to no aborts)
  std::uint64_t max_steps = 20'000'000;
  /// Optional observability sink: bound to the lock (when the lock was
  /// instantiated with the obs::Metrics sink type) for event/counter/latency
  /// capture alongside the model's RMR accounting.
  obs::Metrics* metrics = nullptr;
};

namespace detail {

/// Normalize enter() across lock flavors: the paper locks return
/// EnterResult, the baselines return bool.
template <typename Lock>
std::pair<bool, std::uint32_t> do_enter(Lock& lock, Pid p,
                                        const std::atomic<bool>* stop) {
  if constexpr (requires(Lock& l) { l.enter(p, stop).acquired; }) {
    const auto r = lock.enter(p, stop);
    return {r.acquired, r.slot};
  } else {
    return {lock.enter(p, stop), 0u};
  }
}

}  // namespace detail

/// Run one acquisition attempt per process on `lock` over `model`. The lock
/// must already be constructed from `model`; counters are reset first so the
/// result reflects passage costs only.
template <typename Model, typename Lock>
RunResult run_single_pass(Model& model, Lock& lock,
                          const SinglePassOptions& opts) {
  const Pid n = model.nprocs();
  if constexpr (requires { lock.set_metrics(opts.metrics); }) {
    if (opts.metrics != nullptr) lock.set_metrics(opts.metrics);
  }
  std::vector<AbortPlan> plans = opts.plans;
  plans.resize(n);

  typename Model::Word* gate =
      opts.gate_cs ? model.alloc(1, 0) : nullptr;
  model.reset_counters();

  std::deque<std::atomic<bool>> signals(n);
  for (Pid p = 0; p < n; ++p) {
    signals[p].store(plans[p].when == AbortWhen::kPreRaised,
                     std::memory_order_relaxed);
  }

  sched::StepScheduler::Config cfg;
  cfg.seed = opts.seed;
  cfg.max_steps = opts.max_steps;
  sched::Policy base = sched::policies::random();
  if (opts.ordered_doorway) {
    cfg.policy = [base](const sched::PickContext& ctx) {
      for (std::size_t p = 0; p < ctx.steps_of.size(); ++p) {
        if (ctx.steps_of[p] == 0) return static_cast<Pid>(p);
      }
      return base(ctx);
    };
  } else {
    cfg.policy = base;
  }
  sched::StepScheduler scheduler(n, std::move(cfg));

  scheduler.set_step_callback([&](std::uint64_t step) {
    for (Pid p = 0; p < n; ++p) {
      if (plans[p].when == AbortWhen::kAtStep && plans[p].step <= step &&
          !signals[p].load(std::memory_order_relaxed)) {
        signals[p].store(true, std::memory_order_release);
      }
    }
  });

  bool gate_open = (gate == nullptr);
  std::size_t next_idle_abort = 0;
  scheduler.set_idle_callback([&]() {
    while (next_idle_abort < n) {
      const Pid p = static_cast<Pid>(next_idle_abort++);
      if (plans[p].when == AbortWhen::kOnIdle &&
          !signals[p].load(std::memory_order_relaxed)) {
        signals[p].store(true, std::memory_order_release);
        return true;
      }
    }
    if (!gate_open) {
      gate_open = true;
      model.poke(*gate, 1);
      return true;
    }
    return false;
  });

  RunResult result;
  result.records.resize(n);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};

  model.set_hook(&scheduler);
  const auto run = scheduler.run([&](Pid p) {
    auto& counters = model.counters(p);
    PassageRecord& rec = result.records[p];
    rec.pid = p;
    const std::uint64_t r0 = counters.rmrs;
    const std::uint64_t spin0 = counters.remote_spin_episodes;
    const auto [acquired, slot] = detail::do_enter(lock, p, &signals[p]);
    rec.rmr_enter = counters.rmrs - r0;
    // Remote-spin accounting covers the lock's enter only: the harness CS
    // gate below is a remote word by construction and must not pollute it.
    rec.remote_spin_episodes = counters.remote_spin_episodes - spin0;
    rec.acquired = acquired;
    rec.slot = slot;
    if (acquired) {
      if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0) {
        violation.store(true, std::memory_order_release);
      }
      if (gate != nullptr) {
        model.wait(
            p, *gate, [](std::uint64_t v) { return v != 0; }, nullptr);
      }
      in_cs.fetch_sub(1, std::memory_order_acq_rel);
      const std::uint64_t r2 = counters.rmrs;
      lock.exit(p);
      rec.rmr_exit = counters.rmrs - r2;
    }
  });
  model.set_hook(nullptr);

  result.steps = run.steps;
  result.mutex_ok = !violation.load(std::memory_order_acquire);
  for (const auto& rec : result.records) {
    if (rec.acquired) result.completed++;
    else result.aborted++;
  }
  return result;
}

// --- convenience builders for the paper's lock flavors -------------------

/// One-shot lock (CC variant) on the counting CC model. Instantiated with
/// the obs::Metrics sink type so opts.metrics can be bound; when it is null
/// every hook is a skipped null-check (observability stays quiet).
inline RunResult oneshot_cc_run(Pid n, std::uint32_t w, core::Find find,
                                const SinglePassOptions& opts) {
  model::CountingCcModel model(n);
  core::OneShotLock<model::CountingCcModel, obs::Metrics> lock(model, n, w,
                                                               find);
  return run_single_pass(model, lock, opts);
}

/// One-shot lock on the counting DSM model: `dsm_variant` selects the
/// paper's DSM algorithm (announce/spin-bit indirection) versus running the
/// CC algorithm on DSM memory (which busy-waits remotely — the failure mode
/// the variant exists to avoid).
inline RunResult oneshot_dsm_run(Pid n, std::uint32_t w, core::Find find,
                                 bool dsm_variant,
                                 const SinglePassOptions& opts) {
  model::CountingDsmModel model(n);
  if (dsm_variant) {
    core::OneShotLockDsm<model::CountingDsmModel, obs::Metrics> lock(
        model, n, w, n, find);
    return run_single_pass(model, lock, opts);
  }
  core::OneShotLock<model::CountingDsmModel, obs::Metrics> lock(model, n, w,
                                                                find);
  return run_single_pass(model, lock, opts);
}

/// Any lock constructible by `factory(model)` (used for the baselines).
template <typename Model, typename Factory>
RunResult single_pass_with(Pid n, Factory&& factory,
                           const SinglePassOptions& opts) {
  Model model(n);
  auto lock = factory(model);
  return run_single_pass(model, *lock, opts);
}

// --- long-lived driver ----------------------------------------------------

struct LongLivedOptions {
  Pid n = 4;
  std::uint32_t w = 8;
  core::Find find = core::Find::kAdaptive;
  std::uint32_t rounds = 8;      ///< acquisition attempts per process
  std::uint32_t abort_ppm = 0;   ///< probability an attempt is marked to abort
  std::uint64_t seed = 1;
  std::uint64_t raise_every = 61;  ///< force-raise one pending signal every k
                                   ///< steps (0 = only when idle)
  std::uint64_t max_steps = 50'000'000;
  /// Optional observability sink, bound to the lock for the run.
  obs::Metrics* metrics = nullptr;
};

/// Run `rounds` passes per process over a long-lived lock built on the
/// counting CC model. SpacePolicy selects lazy (VersionedSpace) or eager
/// (EagerSpace) instance recycling.
template <template <typename> class SpacePolicy = core::VersionedSpace>
RunResult run_long_lived(const LongLivedOptions& opts) {
  using Model = model::CountingCcModel;
  Model model(opts.n);
  core::LongLivedLock<Model, SpacePolicy, core::OneShotLock, obs::Metrics>
      lock(model, {.nprocs = opts.n, .w = opts.w, .find = opts.find});
  if (opts.metrics != nullptr) lock.set_metrics(opts.metrics);
  model.reset_counters();

  // Per-(process, round) abort marking, fixed up front for determinism.
  pal::Xoshiro256 mark_rng(opts.seed * 7919 + 13);
  std::vector<std::vector<bool>> marked(opts.n);
  for (Pid p = 0; p < opts.n; ++p) {
    marked[p].resize(opts.rounds);
    for (std::uint32_t r = 0; r < opts.rounds; ++r) {
      marked[p][r] = mark_rng.chance_ppm(opts.abort_ppm);
    }
  }

  std::deque<std::atomic<bool>> signals(opts.n);
  // 1 = the current attempt wants its signal raised.
  std::deque<std::atomic<std::uint8_t>> wants(opts.n);

  auto raise_one = [&]() {
    for (Pid p = 0; p < opts.n; ++p) {
      if (wants[p].load(std::memory_order_acquire) == 1 &&
          !signals[p].load(std::memory_order_relaxed)) {
        signals[p].store(true, std::memory_order_release);
        return true;
      }
    }
    return false;
  };

  sched::StepScheduler::Config cfg;
  cfg.seed = opts.seed;
  cfg.max_steps = opts.max_steps;
  sched::StepScheduler scheduler(opts.n, std::move(cfg));
  scheduler.set_step_callback([&](std::uint64_t step) {
    if (opts.raise_every != 0 && step % opts.raise_every == 0) raise_one();
  });
  scheduler.set_idle_callback([&]() { return raise_one(); });

  RunResult result;
  result.records.reserve(static_cast<std::size_t>(opts.n) * opts.rounds);
  std::vector<std::vector<PassageRecord>> records(opts.n);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};

  model.set_hook(&scheduler);
  const auto run = scheduler.run([&](Pid p) {
    auto& counters = model.counters(p);
    for (std::uint32_t round = 0; round < opts.rounds; ++round) {
      signals[p].store(false, std::memory_order_release);
      wants[p].store(marked[p][round] ? 1 : 0, std::memory_order_release);
      PassageRecord rec;
      rec.pid = p;
      rec.marked = marked[p][round];
      const std::uint64_t r0 = counters.rmrs;
      const core::EnterResult res = lock.enter(p, &signals[p]);
      rec.rmr_enter = counters.rmrs - r0;
      rec.acquired = res.acquired;
      rec.slot = res.slot;
      wants[p].store(0, std::memory_order_release);
      if (res.acquired) {
        if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0) {
          violation.store(true, std::memory_order_release);
        }
        in_cs.fetch_sub(1, std::memory_order_acq_rel);
        const std::uint64_t r2 = counters.rmrs;
        lock.exit(p);
        rec.rmr_exit = counters.rmrs - r2;
      }
      records[p].push_back(rec);
    }
  });
  model.set_hook(nullptr);

  result.steps = run.steps;
  result.mutex_ok = !violation.load(std::memory_order_acquire);
  result.switches = lock.total_switches();
  result.incarnations = lock.total_incarnations();
  for (Pid p = 0; p < opts.n; ++p) {
    for (const auto& rec : records[p]) {
      if (rec.acquired) result.completed++;
      else result.aborted++;
      result.records.push_back(rec);
    }
  }
  return result;
}

}  // namespace aml::harness
